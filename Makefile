GO ?= go

.PHONY: all build vet test test-short test-race test-simdebug bench bench-json bench-compare results results-paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast suite for CI: skips the heavier experiment smoke tests.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the parallel experiment runner and everything else,
# plus the sharded-engine bit-identity proofs (serial vs sharded at several
# shard counts, randomized-topology model check, runpool token sharing).
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestParallelDeterminism' ./internal/experiments/
	$(GO) test -race -run 'TestSharded|TestByteIdentitySharded' ./internal/experiments/

# The simulator suites again with use-after-free tripwires armed: recycled
# events/packets are poisoned and any stale access panics with generation
# diagnostics. Run this first when debugging a determinism break.
test-simdebug:
	$(GO) test -tags simdebug ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Write a BENCH_<timestamp>.json snapshot of the hot-path metrics (ns/event,
# ns/packet-hop, allocs, per-experiment wall-clock and events/sec) into the
# repo root.
bench-json:
	$(GO) run ./cmd/fbbench -json

# Diff the two newest BENCH_*.json snapshots; exits nonzero if any headline
# metric regressed by more than 10%. This is the local perf gate — CI only
# smoke-runs the benchmarks.
bench-compare:
	$(GO) run ./cmd/fbbench -compare

# Regenerate the paper's tables/figures at the 64-server scale. Simulation
# points fan out across all cores (-parallel 0 = GOMAXPROCS); output is
# byte-identical to a sequential run. ~15 min on one core, ~15/N on N.
results:
	$(GO) run ./cmd/fbbench -scale small | tee results_small.txt

# The full 128-server instances of Table 1 and Figures 3/4 (~1 h on one
# core; scales down with core count).
results-paper:
	$(GO) run ./cmd/fbsim -exp table1 -scale paper | tee results_paper_table1.txt
	$(GO) run ./cmd/fbsim -exp alltoall -scale paper | tee results_paper_alltoall.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/websearch -flows 400
	$(GO) run ./examples/incast -jobs 40
	$(GO) run ./examples/hotspot
	$(GO) run ./examples/linkfailure
	$(GO) run ./examples/trace > /dev/null

clean:
	$(GO) clean ./...
