// Command fbtopo inspects the simulated fabrics: it audits reachability and
// path diversity, and shows exactly which path each FlowBender tag value V
// maps to between a pair of hosts — the mechanism the whole scheme rides on.
//
// Usage:
//
//	fbtopo -scale small                 # audit the fat-tree
//	fbtopo -scale paper -src 0 -dst 96  # show the V -> path mapping
package main

import (
	"flag"
	"fmt"
	"os"

	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
)

func main() {
	var (
		scale = flag.String("scale", "small", "fabric scale: tiny, small, paper")
		src   = flag.Int("src", -1, "source host for a V->path listing")
		dst   = flag.Int("dst", -1, "destination host for a V->path listing")
		tags  = flag.Uint("tags", 8, "size of the path-tag range to enumerate")
	)
	flag.Parse()

	var p topo.Params
	switch *scale {
	case "tiny":
		p = topo.TinyScale()
	case "small":
		p = topo.SmallScale()
	case "paper":
		p = topo.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "fbtopo: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(routing.ECMP{})

	fmt.Printf("fat-tree %s: %d pods x (%d ToR + %d agg), %d cores, %d servers\n",
		*scale, p.Pods, p.TorsPerPod, p.AggsPerPod, p.NumCores(), p.NumHosts())
	fmt.Printf("rates: access %d Gbps, tor-agg %d Gbps; oversubscription %.0fx; %d inter-pod paths\n\n",
		p.LinkRateBps/topo.Gbps, p.TorAggRateBps()/topo.Gbps, p.Oversubscription(), p.PathsBetweenPods())

	if *src >= 0 && *dst >= 0 {
		if *src >= p.NumHosts() || *dst >= p.NumHosts() || *src == *dst {
			fmt.Fprintln(os.Stderr, "fbtopo: invalid host pair")
			os.Exit(2)
		}
		fmt.Printf("V -> path for host %d -> host %d (switch IDs start at %d):\n", *src, *dst, p.NumHosts())
		paths := ft.PathsByTag(*src, *dst, uint32(*tags))
		distinct := map[string]bool{}
		for tag := uint32(0); tag < uint32(*tags); tag++ {
			path := paths[tag]
			key := fmt.Sprint(path)
			marker := " "
			if !distinct[key] {
				distinct[key] = true
				marker = "*"
			}
			fmt.Printf("  V=%d %s %v\n", tag, marker, path)
		}
		fmt.Printf("%d distinct paths across %d tag values (* = first occurrence)\n", len(distinct), *tags)
		return
	}

	rep := ft.Audit(uint32(*tags))
	fmt.Print(rep.Format())
	if rep.Unreachable > 0 {
		os.Exit(1)
	}
}
