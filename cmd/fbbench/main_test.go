package main

import (
	"os"
	"path/filepath"
	"testing"

	"flowbender/internal/benchkit"
)

func writeSnapshot(t *testing.T, dir, stamp, body string) string {
	t.Helper()
	path := filepath.Join(dir, benchkit.FilePrefix+stamp+".json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareNeedsTwoSnapshots(t *testing.T) {
	dir := t.TempDir()
	if code := runCompare(dir, "", 0.10); code != 1 {
		t.Fatalf("runCompare on empty dir = %d, want 1", code)
	}
	writeSnapshot(t, dir, "20260101-000000", `{"metrics":{"packet_hop_ns_per_hop":200}}`)
	if code := runCompare(dir, "", 0.10); code != 1 {
		t.Fatalf("runCompare with one snapshot = %d, want 1", code)
	}
}

func TestRunCompareRefusesMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	// Same metrics, different machine shape: the diff would measure the
	// hardware change, so -compare must refuse rather than report numbers.
	writeSnapshot(t, dir, "20260101-000000",
		`{"shards":4,"gomaxprocs":8,"cpu":"boxA","metrics":{"packet_hop_ns_per_hop":200}}`)
	writeSnapshot(t, dir, "20260201-000000",
		`{"shards":1,"gomaxprocs":1,"cpu":"boxB","metrics":{"packet_hop_ns_per_hop":200}}`)
	if code := runCompare(dir, "", 0.10); code != 1 {
		t.Fatalf("runCompare across configurations = %d, want 1 (refusal)", code)
	}

	// A legacy baseline with no recorded configuration still compares.
	dir = t.TempDir()
	writeSnapshot(t, dir, "20260101-000000", `{"metrics":{"packet_hop_ns_per_hop":200}}`)
	writeSnapshot(t, dir, "20260201-000000",
		`{"shards":4,"gomaxprocs":8,"cpu":"boxA","metrics":{"packet_hop_ns_per_hop":190}}`)
	if code := runCompare(dir, "", 0.10); code != 0 {
		t.Fatalf("runCompare with legacy baseline = %d, want 0", code)
	}
}

func TestRunCompareBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeSnapshot(t, dir, "20260101-000000", `{"metrics":{"packet_hop_ns_per_hop":200,"exp_a_tiny_events_per_sec":1000000}}`)

	// The only snapshot is the baseline itself: a clear error, not a
	// self-comparison reporting an empty diff.
	if code := runCompare(dir, base, 0.10); code != 1 {
		t.Fatalf("runCompare(baseline=newest) = %d, want 1", code)
	}

	// Newer snapshot improves both directions: passes against the baseline.
	writeSnapshot(t, dir, "20260201-000000", `{"metrics":{"packet_hop_ns_per_hop":150,"exp_a_tiny_events_per_sec":2000000}}`)
	if code := runCompare(dir, base, 0.10); code != 0 {
		t.Fatalf("runCompare improved = %d, want 0", code)
	}

	// Throughput collapse regresses even though the latency metric held.
	writeSnapshot(t, dir, "20260301-000000", `{"metrics":{"packet_hop_ns_per_hop":200,"exp_a_tiny_events_per_sec":100000}}`)
	if code := runCompare(dir, base, 0.10); code != 1 {
		t.Fatalf("runCompare throughput collapse = %d, want 1", code)
	}

	// A missing baseline file is an error.
	if code := runCompare(dir, filepath.Join(dir, "nope.json"), 0.10); code != 1 {
		t.Fatalf("runCompare missing baseline = %d, want 1", code)
	}
}
