// Command fbbench regenerates every table and figure of the paper's
// evaluation in one run and prints them in order, suitable for diffing
// against EXPERIMENTS.md.
//
// Usage:
//
//	fbbench [-scale small] [-seed 1] [-v]
//
// Benchmark-trajectory modes:
//
//	fbbench -json [-scales tiny] [-o .]   write a BENCH_<timestamp>.json
//	                                      snapshot: engine ns/event,
//	                                      ns/packet-hop, allocs/op, and
//	                                      wall-clock per experiment at each
//	                                      listed scale
//	fbbench -compare [-o .] [-tol 0.10]   diff the two newest snapshots and
//	                                      exit 1 on any headline metric
//	                                      regressing past the tolerance
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"flowbender/internal/benchkit"
	"flowbender/internal/experiments"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.String("scale", "small", "fabric scale: tiny, small, paper")
		parallel = flag.Int("parallel", 0, "max concurrent simulation points (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		seeds    = flag.Int("seeds", 0, "replicate each point over this many seeds and report mean ± stddev")
		watchdog = flag.Duration("watchdog", 0, "wall-clock limit per simulation point; exceeding points report FAILED instead of hanging the run (0 = off)")
		verb     = flag.Bool("v", false, "log per-run progress to stderr")

		jsonMode = flag.Bool("json", false, "write a BENCH_<timestamp>.json benchmark snapshot instead of printing tables")
		compare  = flag.Bool("compare", false, "compare the two newest BENCH_*.json snapshots and exit 1 on regression")
		scales   = flag.String("scales", "tiny", "comma-separated experiment scales to wall-clock in -json mode")
		outDir   = flag.String("o", ".", "directory for -json output / -compare input")
		tol      = flag.Float64("tol", 0.10, "fractional regression tolerance for -compare")
	)
	flag.Parse()

	switch {
	case *compare:
		os.Exit(runCompare(*outDir, *tol))
	case *jsonMode:
		os.Exit(runJSON(*outDir, *scales, *seed, *parallel))
	}

	o := experiments.Options{Seed: *seed, Parallelism: *parallel, Seeds: *seeds, Watchdog: *watchdog}
	sc, ok := parseScale(*scale)
	if !ok {
		fmt.Fprintln(os.Stderr, "fbbench: scale must be tiny, small, or paper")
		os.Exit(2)
	}
	o.Scale = sc
	if *verb {
		o.Log = os.Stderr
	}

	start := time.Now()
	fmt.Printf("FlowBender reproduction — full evaluation (scale=%s seed=%d)\n\n", *scale, *seed)
	experiments.RunAll(o, os.Stdout)
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Second))
}

func parseScale(s string) (experiments.ScaleLevel, bool) {
	switch s {
	case "tiny":
		return experiments.ScaleTiny, true
	case "small":
		return experiments.ScaleSmall, true
	case "paper":
		return experiments.ScalePaper, true
	}
	return 0, false
}

// runJSON measures the hot-path micro-benchmarks and the wall clock of every
// registered experiment at each requested scale, then writes the snapshot.
func runJSON(dir, scaleList string, seed int64, parallel int) int {
	snap := benchkit.NewSnapshot(runtime.Version(), seed)

	fmt.Fprintln(os.Stderr, "fbbench: measuring engine_schedule ...")
	snap.Measure("engine_schedule", benchkit.EngineSchedule)
	fmt.Fprintln(os.Stderr, "fbbench: measuring packet_hop ...")
	snap.Measure("packet_hop", benchkit.PacketHop)
	fmt.Fprintln(os.Stderr, "fbbench: measuring tcp_transfer_10mb ...")
	snap.Measure("tcp_transfer_10mb", func(b *testing.B) { benchkit.TCPTransfer(b, 10_000_000) })

	for _, sc := range strings.Split(scaleList, ",") {
		sc = strings.TrimSpace(sc)
		if sc == "" {
			continue
		}
		level, ok := parseScale(sc)
		if !ok {
			fmt.Fprintf(os.Stderr, "fbbench: unknown scale %q in -scales\n", sc)
			return 2
		}
		snap.Scales = append(snap.Scales, sc)
		o := experiments.Options{Seed: seed, Scale: level, Parallelism: parallel}
		for _, e := range experiments.Registry {
			fmt.Fprintf(os.Stderr, "fbbench: timing %s at %s ...\n", e.Name, sc)
			start := time.Now()
			e.Run(o)
			snap.Metrics[fmt.Sprintf("exp_%s_%s_wall_ms", e.Name, sc)] =
				float64(time.Since(start).Microseconds()) / 1000
		}
	}

	path, err := snap.Write(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	fmt.Println(path)
	return 0
}

// runCompare diffs the two newest snapshots in dir.
func runCompare(dir string, tol float64) int {
	olderPath, newerPath, err := benchkit.NewestTwo(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	older, err := benchkit.Load(olderPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	newer, err := benchkit.Load(newerPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	fmt.Printf("comparing %s (old) vs %s (new), tolerance %.0f%%\n", olderPath, newerPath, tol*100)
	regs := benchkit.Compare(older, newer, tol)
	if len(regs) == 0 {
		fmt.Println("OK: no headline metric regressed")
		return 0
	}
	for _, r := range regs {
		fmt.Println("REGRESSION:", r)
	}
	return 1
}
