// Command fbbench regenerates every table and figure of the paper's
// evaluation in one run and prints them in order, suitable for diffing
// against EXPERIMENTS.md.
//
// Usage:
//
//	fbbench [-scale small] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flowbender/internal/experiments"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.String("scale", "small", "fabric scale: tiny, small, paper")
		parallel = flag.Int("parallel", 0, "max concurrent simulation points (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		seeds    = flag.Int("seeds", 0, "replicate each point over this many seeds and report mean ± stddev")
		watchdog = flag.Duration("watchdog", 0, "wall-clock limit per simulation point; exceeding points report FAILED instead of hanging the run (0 = off)")
		verb     = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()

	o := experiments.Options{Seed: *seed, Parallelism: *parallel, Seeds: *seeds, Watchdog: *watchdog}
	switch *scale {
	case "tiny":
		o.Scale = experiments.ScaleTiny
	case "small":
		o.Scale = experiments.ScaleSmall
	case "paper":
		o.Scale = experiments.ScalePaper
	default:
		fmt.Fprintln(os.Stderr, "fbbench: scale must be tiny, small, or paper")
		os.Exit(2)
	}
	if *verb {
		o.Log = os.Stderr
	}

	start := time.Now()
	fmt.Printf("FlowBender reproduction — full evaluation (scale=%s seed=%d)\n\n", *scale, *seed)
	experiments.RunAll(o, os.Stdout)
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Second))
}
