// Command fbbench regenerates every table and figure of the paper's
// evaluation in one run and prints them in order, suitable for diffing
// against EXPERIMENTS.md.
//
// Usage:
//
//	fbbench [-scale small] [-engine packet|fluid] [-seed 1] [-v]
//
// Benchmark-trajectory modes:
//
//	fbbench -json [-scales tiny] [-o .]   write a BENCH_<timestamp>.json
//	                                      snapshot: engine ns/event,
//	                                      ns/packet-hop, allocs/op,
//	                                      wall-clock and simulator
//	                                      throughput (events/sec) per
//	                                      experiment at each listed scale
//	fbbench -compare [-o .] [-tol 0.10]   diff the two newest snapshots and
//	                                      exit 1 on any headline metric
//	                                      regressing past the tolerance;
//	                                      -baseline <file> pins the old side
//	                                      to a specific snapshot instead
//
// Profiling: -cpuprofile / -memprofile write pprof profiles covering the
// whole run, in any mode (see EXPERIMENTS.md for the workflow).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"flowbender/internal/benchkit"
	"flowbender/internal/checkpoint"
	"flowbender/internal/experiments"
	"flowbender/internal/sim"
)

// ckptSettle is how long the signal handler waits after requesting a flush
// before saving and exiting: long enough for running points to reach their
// next quiescent barrier and mark, short enough that ^C still feels prompt.
const ckptSettle = 1500 * time.Millisecond

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.String("scale", "small", "fabric scale: tiny, small, paper")
		engineF  = flag.String("engine", "packet", "simulation engine for the evaluation run and -json experiment timings: packet or fluid (experiments without a fluid path run packet regardless)")
		parallel = flag.Int("parallel", 0, "max concurrent simulation points (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		shards   = flag.Int("shards", 0, "split each ECMP simulation point across this many engine shards (0/1 = serial; output is identical at any count)")
		seeds    = flag.Int("seeds", 0, "replicate each point over this many seeds and report mean ± stddev")
		watchdog = flag.Duration("watchdog", 0, "wall-clock limit per simulation point; exceeding points report FAILED instead of hanging the run (0 = off)")
		verb     = flag.Bool("v", false, "log per-run progress to stderr")

		ckptPath  = flag.String("checkpoint", "", "make the run crash-safe: journal completed experiments and record progress watermarks to this file (refuses an existing file; SIGINT/SIGTERM checkpoint and exit 130)")
		ckptEvery = flag.Duration("checkpoint-every", 0, "virtual-time cadence between checkpoint watermarks (simulated time, not wall clock; 0 = 500ms; must match across -resume)")
		resumeP   = flag.String("resume", "", "resume an interrupted run from this checkpoint file: completed experiments are served from its journal, in-flight points replay and verify their recorded watermarks")

		jsonMode = flag.Bool("json", false, "write a BENCH_<timestamp>.json benchmark snapshot instead of printing tables")
		compare  = flag.Bool("compare", false, "compare the two newest BENCH_*.json snapshots and exit 1 on regression")
		baseline = flag.String("baseline", "", "with -compare: compare the newest snapshot against this file instead of the second-newest")
		scales   = flag.String("scales", "tiny", "comma-separated experiment scales to wall-clock in -json mode")
		outDir   = flag.String("o", ".", "directory for -json output / -compare input")
		tol      = flag.Float64("tol", 0.10, "fractional regression tolerance for -compare")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if (*ckptPath != "" || *resumeP != "") && (*jsonMode || *compare) {
		fmt.Fprintln(os.Stderr, "fbbench: -checkpoint/-resume apply to the evaluation run, not -json/-compare modes")
		exit(2)
	}
	engine, ok := experiments.EngineByName(*engineF)
	if !ok {
		fmt.Fprintln(os.Stderr, "fbbench: engine must be packet or fluid")
		exit(2)
	}
	switch {
	case *compare:
		exit(runCompare(*outDir, *baseline, *tol))
	case *jsonMode:
		exit(runJSON(*outDir, *scales, *seed, *parallel, *shards, engine))
	}

	o := experiments.Options{Seed: *seed, Parallelism: *parallel, Shards: *shards, Seeds: *seeds, Watchdog: *watchdog, Engine: engine}
	sc, ok := parseScale(*scale)
	if !ok {
		fmt.Fprintln(os.Stderr, "fbbench: scale must be tiny, small, or paper")
		exit(2)
	}
	o.Scale = sc
	if *verb {
		o.Log = os.Stderr
	}

	desc := checkpoint.Descriptor{
		Tool:            "fbbench",
		Seed:            *seed,
		Scale:           *scale,
		Shards:          *shards,
		Seeds:           *seeds,
		CheckpointEvery: int64(*ckptEvery),
	}
	// Legacy checkpoints carry no engine tag and mean the packet engine.
	if engine != experiments.EnginePacket {
		desc.Extra = "engine=" + engine.String()
	}
	mgr, err := checkpoint.FromFlags(*ckptPath, *resumeP, desc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		exit(2)
	}
	if mgr != nil {
		o.Ckpt = mgr
		o.CheckpointEvery = sim.Time(*ckptEvery)
		stop := checkpoint.HandleSignals(mgr, os.Stderr, ckptSettle)
		defer stop()
	}

	start := time.Now()
	fmt.Printf("FlowBender reproduction — full evaluation (scale=%s seed=%d)\n\n", *scale, *seed)
	experiments.RunAll(o, os.Stdout)
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Second))
	if mgr != nil {
		if err := mgr.SaveErr(); err != nil {
			fmt.Fprintln(os.Stderr, "fbbench: checkpoint:", err)
		}
	}
	exit(0)
}

// startProfiles arms the requested pprof outputs and returns a function that
// flushes them; it is safe to call the stop function multiple times.
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fbbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fbbench:", err)
			}
		}
	}, nil
}

func parseScale(s string) (experiments.ScaleLevel, bool) {
	switch s {
	case "tiny":
		return experiments.ScaleTiny, true
	case "small":
		return experiments.ScaleSmall, true
	case "paper":
		return experiments.ScalePaper, true
	}
	return 0, false
}

// expRounds is how many times each experiment is wall-clocked in -json mode;
// the best round of each metric goes into the snapshot (see Snapshot.Fold).
const expRounds = 3

// shardBenchFlows is the flow count of the paper-scale sharded benchmark
// point: large enough that the 128-server fabric reaches steady state and
// the bounded-lag barriers amortize, small enough that three rounds at two
// shard counts stay affordable on a laptop-class box.
const shardBenchFlows = 800

// fluidBenchFlows is the flow count of the fluid-engine micro-benchmark: a
// full tiny-scale all-to-all per op, large enough that solver re-solves (not
// setup) dominate.
const fluidBenchFlows = 2000

// runJSON measures the hot-path micro-benchmarks and the wall clock plus
// simulator throughput of every registered experiment at each requested
// scale, then writes the snapshot. The experiment timings run under the given
// engine and the snapshot records which, so -compare can refuse cross-engine
// diffs; the micro-benchmarks are engine-independent and always included.
func runJSON(dir, scaleList string, seed int64, parallel, shards int, engine experiments.EngineKind) int {
	snap := benchkit.NewSnapshot(runtime.Version(), seed)
	snap.Shards = shards
	snap.Engine = engine.String()

	fmt.Fprintln(os.Stderr, "fbbench: measuring engine_schedule ...")
	snap.Measure("engine_schedule", benchkit.EngineSchedule)
	fmt.Fprintln(os.Stderr, "fbbench: measuring packet_hop ...")
	snap.Measure("packet_hop", benchkit.PacketHop)
	fmt.Fprintln(os.Stderr, "fbbench: measuring tcp_transfer_10mb ...")
	snap.Measure("tcp_transfer_10mb", func(b *testing.B) { benchkit.TCPTransfer(b, 10_000_000) })
	fmt.Fprintln(os.Stderr, "fbbench: measuring fluid_a2a ...")
	snap.Measure(fmt.Sprintf("fluid_a2a_%d", fluidBenchFlows),
		func(b *testing.B) { benchkit.FluidAllToAll(b, fluidBenchFlows) })
	fmt.Fprintln(os.Stderr, "fbbench: measuring fluid_a2a_flowbender ...")
	snap.Measure(fmt.Sprintf("fluid_a2a_flowbender_%d", fluidBenchFlows),
		func(b *testing.B) { benchkit.FluidAllToAllFlowBender(b, fluidBenchFlows) })
	// Solver-shards sweep: the same fluid point with the component-parallel
	// solve engaged. Results are bit-identical to serial at any count; the
	// sweep prices the dispatch (a win only materializes on a multi-core
	// box — see the snapshot's gomaxprocs/cpu metadata for what this run
	// actually had).
	for _, s := range []int{1, 2, 4, 8} {
		fmt.Fprintf(os.Stderr, "fbbench: measuring fluid_a2a solver-shards=%d ...\n", s)
		s := s
		snap.Measure(fmt.Sprintf("fluid_a2a_%d_sshards%d", fluidBenchFlows, s),
			func(b *testing.B) { benchkit.FluidAllToAllShards(b, fluidBenchFlows, s) })
	}

	for _, sc := range strings.Split(scaleList, ",") {
		sc = strings.TrimSpace(sc)
		if sc == "" {
			continue
		}
		level, ok := parseScale(sc)
		if !ok {
			fmt.Fprintf(os.Stderr, "fbbench: unknown scale %q in -scales\n", sc)
			return 2
		}
		snap.Scales = append(snap.Scales, sc)
		for _, e := range experiments.Registry {
			fmt.Fprintf(os.Stderr, "fbbench: timing %s at %s ...\n", e.Name, sc)
			prefix := fmt.Sprintf("exp_%s_%s", e.Name, sc)
			// Same best-of-N folding as the micro-benchmarks: one run's
			// wall clock is hostage to whatever else the machine is doing.
			for round := 0; round < expRounds; round++ {
				var perf experiments.PerfStats
				o := experiments.Options{Seed: seed, Scale: level, Parallelism: parallel, Shards: shards, Perf: &perf, Engine: engine}
				start := time.Now()
				e.Run(o)
				wall := time.Since(start)
				snap.Fold(prefix+"_wall_ms", float64(wall.Microseconds())/1000)
				snap.Fold(prefix+"_events_per_sec", perf.EventsPerSec(wall))
				snap.Fold(prefix+"_simsec_per_wallsec", perf.SimSecPerWallSec(wall))
				snap.Fold(prefix+"_flows_per_sec", perf.FlowsPerSec(wall))
			}
		}
	}

	// Paper-scale sharded-engine benchmark: the same 128-server all-to-all
	// point, serial and split four and eight ways. The shards-N/shards-1
	// wall-clock ratio is the conservative-parallel engine's headline speedup
	// (it only materializes on a multi-core box — see the snapshot's
	// gomaxprocs/cpu metadata for what this run actually had). Sharding is a
	// packet-engine mechanism, so a fluid snapshot skips the sweep.
	shardCounts := []int{1, 4, 8}
	if engine != experiments.EnginePacket {
		shardCounts = nil
	}
	for _, s := range shardCounts {
		fmt.Fprintf(os.Stderr, "fbbench: timing paper all-to-all at shards=%d ...\n", s)
		prefix := fmt.Sprintf("exp_paper_a2a_ecmp_shards%d", s)
		for round := 0; round < expRounds; round++ {
			var perf experiments.PerfStats
			o := experiments.Options{Seed: seed, Scale: experiments.ScalePaper, Shards: s, Perf: &perf}
			start := time.Now()
			experiments.ShardBench(o, 0.6, shardBenchFlows)
			wall := time.Since(start)
			snap.Fold(prefix+"_wall_ms", float64(wall.Microseconds())/1000)
			snap.Fold(prefix+"_events_per_sec", perf.EventsPerSec(wall))
		}
	}

	path, err := snap.Write(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	fmt.Println(path)
	return 0
}

// runCompare diffs the newest snapshot in dir against the second-newest, or
// against an explicit baseline file when one is given.
func runCompare(dir, baseline string, tol float64) int {
	var olderPath, newerPath string
	var err error
	if baseline != "" {
		olderPath = baseline
		newerPath, err = benchkit.Newest(dir)
		if err == nil && sameFile(olderPath, newerPath) {
			err = fmt.Errorf("newest snapshot %s is the baseline itself; run -json to write a new snapshot first", newerPath)
		}
	} else {
		olderPath, newerPath, err = benchkit.NewestTwo(dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	older, err := benchkit.Load(olderPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	newer, err := benchkit.Load(newerPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbench:", err)
		return 1
	}
	if err := benchkit.Comparable(older, newer); err != nil {
		fmt.Fprintf(os.Stderr, "fbbench: refusing to compare %s vs %s: %v\n", olderPath, newerPath, err)
		return 1
	}
	fmt.Printf("comparing %s (old) vs %s (new), tolerance %.0f%%\n", olderPath, newerPath, tol*100)
	regs := benchkit.Compare(older, newer, tol)
	if len(regs) == 0 {
		fmt.Println("OK: no headline metric regressed")
		return 0
	}
	for _, r := range regs {
		fmt.Println("REGRESSION:", r)
	}
	return 1
}

// sameFile reports whether two paths name the same snapshot file.
func sameFile(a, b string) bool {
	ia, errA := os.Stat(a)
	ib, errB := os.Stat(b)
	if errA != nil || errB != nil {
		return a == b
	}
	return os.SameFile(ia, ib)
}
