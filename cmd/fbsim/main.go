// Command fbsim runs a single FlowBender reproduction experiment.
//
// Usage:
//
//	fbsim -exp alltoall -scale small -seed 1 -v
//	fbsim -exp faults -faults cut,flap10ms,gray1 -scale small
//	fbsim -list
//
// Each experiment regenerates one table or figure of the paper (see
// DESIGN.md for the experiment index).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"flowbender/internal/checkpoint"
	"flowbender/internal/experiments"
	"flowbender/internal/sim"
	"flowbender/internal/workload"
)

// ckptSettle is how long the signal handler waits after requesting a flush
// before saving and exiting: long enough for running points to reach their
// next quiescent barrier and mark, short enough that ^C still feels prompt.
const ckptSettle = 1500 * time.Millisecond

func main() {
	var (
		exp      = flag.String("exp", "", "experiment name (see -list)")
		list     = flag.Bool("list", false, "list available experiments")
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.String("scale", "small", "fabric scale: tiny, small, paper, hyper (10k hosts), or mega (102k hosts); hyper and mega need -engine fluid")
		engineF  = flag.String("engine", "packet", "simulation engine: packet (per-packet, reference fidelity) or fluid (flow-level fast path; honored by alltoall, table1, production, and fidelity — other experiments keep the packet engine)")
		flows    = flag.Int("flows", 0, "override per-run flow count")
		jobs     = flag.Int("jobs", 0, "override partition-aggregate job count")
		parallel = flag.Int("parallel", 0, "max concurrent simulation points (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		shards   = flag.Int("shards", 0, "split each shardable simulation point (ECMP/Flowlet/FlowDyn, see -list-schemes) across this many engine shards (0/1 = serial; output is identical at any count)")
		solverSh = flag.Int("solver-shards", 0, "max parallel workers for the fluid engine's incremental rate solver (0/1 = serial; output is bit-identical at any count; -engine fluid only)")
		seeds    = flag.Int("seeds", 0, "replicate each point over this many seeds and report mean ± stddev")
		cdfPath  = flag.String("cdf", "", "flow-size CDF file for all-to-all workloads (lines of \"<bytes> <cumulative-prob>\")")
		workld   = flag.String("workload", "", "production-mix workload for -exp production: websearch (diurnal arrivals with a load spike) or datamining (Poisson); empty = websearch")
		loadFrac = flag.Float64("load", 0, "production-mix offered load as a fraction of bisection bandwidth (0 = 0.5)")
		schemesF = flag.String("schemes", "", "comma-separated schemes for -exp production (see -list-schemes; empty = ECMP,FlowBender,RepFlow,DiffFlow)")
		faultSel = flag.String("faults", "", "comma-separated fault scenarios for -exp faults (empty = all; see -list-faults)")
		listF    = flag.Bool("list-faults", false, "list available fault scenarios")
		listS    = flag.Bool("list-schemes", false, "list the load-balancing schemes experiments compare")
		watchdog = flag.Duration("watchdog", 0, "wall-clock limit per simulation point; exceeding points report FAILED instead of hanging the run (0 = off)")
		verb     = flag.Bool("v", false, "log per-run progress (and simulator throughput) to stderr")
		asJSON   = flag.Bool("json", false, "emit the result as JSON instead of a table")

		ckptPath  = flag.String("checkpoint", "", "make the run crash-safe: record progress watermarks and the completed result to this file (refuses an existing file; SIGINT/SIGTERM checkpoint and exit 130)")
		ckptEvery = flag.Duration("checkpoint-every", 0, "virtual-time cadence between checkpoint watermarks (simulated time, not wall clock; 0 = 500ms; must match across -resume)")
		resumeP   = flag.String("resume", "", "resume an interrupted run from this checkpoint file: completed work is served from its journal, in-flight points replay and verify their recorded watermarks")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProf := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fbsim:", err)
			os.Exit(1)
		}
		stopProf = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	writeMemProfile := func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsim:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fbsim:", err)
		}
	}
	exit := func(code int) {
		stopProf()
		writeMemProfile()
		os.Exit(code)
	}

	if *listF {
		fmt.Println("available fault scenarios (for -exp faults -faults ...):")
		for _, name := range experiments.FaultScenarioNames() {
			fmt.Printf("  %s\n", name)
		}
		exit(0)
	}
	if *listS {
		experiments.PrintSchemes(os.Stdout)
		exit(0)
	}
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-12s %s\n", e.Name, e.Desc)
		}
		if *exp == "" && !*list {
			exit(2)
		}
		exit(0)
	}

	run, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "fbsim: unknown experiment %q (use -list)\n", *exp)
		exit(2)
	}
	o := experiments.Options{
		Seed:         *seed,
		FlowCount:    *flows,
		JobCount:     *jobs,
		Parallelism:  *parallel,
		Shards:       *shards,
		SolverShards: *solverSh,
		Seeds:        *seeds,
		Watchdog:     *watchdog,
	}
	if *faultSel != "" {
		for _, name := range strings.Split(*faultSel, ",") {
			if name = strings.TrimSpace(name); name != "" {
				o.FaultScenarios = append(o.FaultScenarios, name)
			}
		}
	}
	if *workld != "" {
		if _, err := workload.NamedCDF(*workld); err != nil {
			fmt.Fprintln(os.Stderr, "fbsim:", err)
			exit(2)
		}
		o.Workload = *workld
	}
	o.Load = *loadFrac
	if *schemesF != "" {
		for _, name := range strings.Split(*schemesF, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			s, ok := experiments.SchemeByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "fbsim: unknown scheme %q (use -list-schemes)\n", name)
				exit(2)
			}
			o.MixSchemes = append(o.MixSchemes, s)
		}
	}
	if *cdfPath != "" {
		f, err := os.Open(*cdfPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsim:", err)
			exit(2)
		}
		cdf, err := workload.ParseCDF(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fbsim: %s: %v\n", *cdfPath, err)
			exit(2)
		}
		o.CDF = cdf
	}
	switch *scale {
	case "tiny":
		o.Scale = experiments.ScaleTiny
	case "small":
		o.Scale = experiments.ScaleSmall
	case "paper":
		o.Scale = experiments.ScalePaper
	case "hyper":
		o.Scale = experiments.ScaleHyper
	case "mega":
		o.Scale = experiments.ScaleMega
	default:
		fmt.Fprintf(os.Stderr, "fbsim: unknown scale %q\n", *scale)
		exit(2)
	}
	engine, ok := experiments.EngineByName(*engineF)
	if !ok {
		fmt.Fprintf(os.Stderr, "fbsim: unknown engine %q (want packet or fluid)\n", *engineF)
		exit(2)
	}
	o.Engine = engine
	if o.Scale >= experiments.ScaleHyper && engine != experiments.EngineFluid {
		// A 10k-host (let alone 102k-host) packet run would need days and
		// tens of GB; refuse rather than wedge.
		fmt.Fprintf(os.Stderr, "fbsim: -scale %s requires -engine fluid\n", *scale)
		exit(2)
	}
	if *verb {
		o.Log = os.Stderr
	}

	if (*ckptPath != "" || *resumeP != "") && *asJSON {
		// The journal records rendered tables; serving them as JSON would
		// silently change the output format, so the modes don't combine.
		fmt.Fprintln(os.Stderr, "fbsim: -checkpoint/-resume and -json are mutually exclusive")
		exit(2)
	}
	desc := checkpoint.Descriptor{
		Tool:            "fbsim:" + *exp,
		Seed:            *seed,
		Scale:           *scale,
		FlowCount:       *flows,
		JobCount:        *jobs,
		Shards:          *shards,
		Seeds:           *seeds,
		CheckpointEvery: int64(*ckptEvery),
	}
	var extra []string
	if engine != experiments.EnginePacket {
		// The engine is part of the run's identity (legacy checkpoints carry
		// no engine tag and are all packet runs, so the default stays out).
		extra = append(extra, "engine="+engine.String())
	}
	if *faultSel != "" || *cdfPath != "" {
		extra = append(extra, fmt.Sprintf("faults=%s cdf=%s", *faultSel, *cdfPath))
	}
	if *workld != "" || *loadFrac != 0 || *schemesF != "" {
		// Workload shape is part of the run's identity: a resume under a
		// different production configuration must be refused.
		extra = append(extra, fmt.Sprintf("workload=%s load=%g schemes=%s", *workld, *loadFrac, *schemesF))
	}
	desc.Extra = strings.Join(extra, " ")
	mgr, err := checkpoint.FromFlags(*ckptPath, *resumeP, desc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbsim:", err)
		exit(2)
	}
	if mgr != nil {
		o.Ckpt = mgr
		o.CheckpointEvery = sim.Time(*ckptEvery)
		stop := checkpoint.HandleSignals(mgr, os.Stderr, ckptSettle)
		defer stop()

		// Journal hit: the resumed file already holds this experiment's
		// completed output — serve it without simulating anything.
		if ent, ok := mgr.Done(*exp); ok {
			fmt.Fprintf(os.Stderr, "fbsim: %s served from checkpoint journal (%s)\n", *exp, mgr.Path())
			fmt.Print(ent.Output)
			exit(0)
		}
	}

	var perf experiments.PerfStats
	o.Perf = &perf
	start := time.Now()
	res, err := runProtected(run, o)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fbsim: experiment %s failed: %v\n", *exp, err)
		exit(1)
	}
	if *verb {
		fmt.Fprintf(os.Stderr, "fbsim: %d events in %v (%.3g events/sec, %.3g sim-sec/wall-sec)\n",
			perf.Events.Load(), wall.Round(time.Millisecond),
			perf.EventsPerSec(wall), perf.SimSecPerWallSec(wall))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(os.Stderr, "fbsim: %d flows completed (%.3g flows/sec), peak memory %d MB from OS\n",
			perf.FlowsCompleted.Load(), perf.FlowsPerSec(wall), ms.Sys/(1<<20))
	}
	if *asJSON {
		if err := experiments.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "fbsim: json:", err)
			exit(1)
		}
		exit(0)
	}
	if mgr != nil {
		// Render to a buffer so the journal records exactly the bytes the
		// user saw; a rerun with -resume then serves them verbatim.
		var buf bytes.Buffer
		res.Print(&buf)
		mgr.RecordDone(*exp, buf.String())
		if err := mgr.SaveErr(); err != nil {
			fmt.Fprintln(os.Stderr, "fbsim: checkpoint:", err)
		}
		os.Stdout.WriteString(buf.String())
		exit(0)
	}
	res.Print(os.Stdout)
	exit(0)
}

// runProtected converts a panicking experiment into an error exit with a
// message, instead of a bare crash: individual simulation points are
// already recovered inside the harness, so this only catches failures in
// the experiment driver itself.
func runProtected(run func(experiments.Options) experiments.Printable, o experiments.Options) (res experiments.Printable, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return run(o), nil
}
