// Command fbsim runs a single FlowBender reproduction experiment.
//
// Usage:
//
//	fbsim -exp alltoall -scale small -seed 1 -v
//	fbsim -list
//
// Each experiment regenerates one table or figure of the paper (see
// DESIGN.md for the experiment index).
package main

import (
	"flag"
	"fmt"
	"os"

	"flowbender/internal/experiments"
	"flowbender/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment name (see -list)")
		list     = flag.Bool("list", false, "list available experiments")
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.String("scale", "small", "fabric scale: tiny, small, paper")
		flows    = flag.Int("flows", 0, "override per-run flow count")
		jobs     = flag.Int("jobs", 0, "override partition-aggregate job count")
		parallel = flag.Int("parallel", 0, "max concurrent simulation points (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		seeds    = flag.Int("seeds", 0, "replicate each point over this many seeds and report mean ± stddev")
		cdfPath  = flag.String("cdf", "", "flow-size CDF file for all-to-all workloads (lines of \"<bytes> <cumulative-prob>\")")
		verb     = flag.Bool("v", false, "log per-run progress to stderr")
		asJSON   = flag.Bool("json", false, "emit the result as JSON instead of a table")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-12s %s\n", e.Name, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	run, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "fbsim: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	o := experiments.Options{
		Seed:        *seed,
		FlowCount:   *flows,
		JobCount:    *jobs,
		Parallelism: *parallel,
		Seeds:       *seeds,
	}
	if *cdfPath != "" {
		f, err := os.Open(*cdfPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbsim:", err)
			os.Exit(2)
		}
		cdf, err := workload.ParseCDF(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fbsim: %s: %v\n", *cdfPath, err)
			os.Exit(2)
		}
		o.CDF = cdf
	}
	switch *scale {
	case "tiny":
		o.Scale = experiments.ScaleTiny
	case "small":
		o.Scale = experiments.ScaleSmall
	case "paper":
		o.Scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "fbsim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *verb {
		o.Log = os.Stderr
	}
	res := run(o)
	if *asJSON {
		if err := experiments.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "fbsim: json:", err)
			os.Exit(1)
		}
		return
	}
	res.Print(os.Stdout)
}
