module flowbender

go 1.22
