package benchkit

import (
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/fluid"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// fluidBenchLoad is the offered load of the fluid benchmark workload, matched
// to the fidelity matrix's default so the benchmarked regime is the validated
// one.
const fluidBenchLoad = 0.4

// fluidArrivals pre-draws one deterministic all-to-all schedule on the tiny
// fat-tree. Drawing happens outside the benchmark timer so every op replays
// the identical workload and the measurement is pure engine cost.
func fluidArrivals(p topo.Params, flows int) []workload.ArrivalIdx {
	cdf := workload.WebSearchCDF()
	gen := &workload.AllToAll{
		RNG:      sim.NewRNG(1).Fork("workload"),
		NumHosts: p.NumHosts(),
		CDF:      cdf,
		MeanInterarrival: workload.AggregateInterarrival(
			fluidBenchLoad, p.BisectionBps(), p.InterPodFraction(), cdf.Mean()),
	}
	return gen.PredrawIdx(flows)
}

// FluidAllToAll measures the fluid engine end to end: one op is a complete
// all-to-all run of `flows` transfers on the tiny fat-tree — arrivals, rate
// reallocations, slow-start rounds, completions. The headline extra metric is
// "flows/sec", the fluid engine's composite throughput (the analogue of the
// packet engine's exp_*_flows_per_sec, measured per-engine so the two are
// never confused in a snapshot diff).
func FluidAllToAll(b *testing.B, flows int) {
	p := topo.TinyScale()
	arrivals := fluidArrivals(p, flows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFluidOnce(b, fluid.Config{Params: p}, arrivals)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(flows)/b.Elapsed().Seconds(), "flows/sec")
}

// FluidAllToAllFlowBender is FluidAllToAll with a FlowBender controller on
// every flow: the epoch ticks, marking estimates, and reroute-triggered
// re-solves are the fluid engine's most expensive steady-state work, so this
// is the upper bound on per-flow cost.
func FluidAllToAllFlowBender(b *testing.B, flows int) {
	p := topo.TinyScale()
	arrivals := fluidArrivals(p, flows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := fluid.Config{
			Params:     p,
			FlowBender: &core.Config{T: 0.05, N: 1, RNG: sim.NewRNG(99)},
		}
		runFluidOnce(b, cfg, arrivals)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(flows)/b.Elapsed().Seconds(), "flows/sec")
}

// runFluidOnce builds a fresh fluid simulation, replays the pre-drawn
// schedule, and drains it to completion.
func runFluidOnce(b *testing.B, cfg fluid.Config, arrivals []workload.ArrivalIdx) {
	eng := sim.NewEngine()
	fs := fluid.NewSim(eng, cfg)
	for j := range arrivals {
		a := arrivals[j]
		id := netsim.FlowID(j + 1)
		eng.At(a.At, func() { fs.Arrive(id, a.Src, a.Dst, a.Size, 0) })
	}
	eng.RunUntilIdle()
	if fs.Completed != int64(len(arrivals)) {
		b.Fatalf("fluid run incomplete: %d of %d flows", fs.Completed, len(arrivals))
	}
}
