package benchkit

import (
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/fluid"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// fluidBenchLoad is the offered load of the fluid benchmark workload, matched
// to the fidelity matrix's default so the benchmarked regime is the validated
// one.
const fluidBenchLoad = 0.4

// fluidArrivals pre-draws one deterministic all-to-all schedule on the tiny
// fat-tree. Drawing happens outside the benchmark timer so every op replays
// the identical workload and the measurement is pure engine cost.
func fluidArrivals(p topo.Params, flows int) []workload.ArrivalIdx {
	cdf := workload.WebSearchCDF()
	gen := &workload.AllToAll{
		RNG:      sim.NewRNG(1).Fork("workload"),
		NumHosts: p.NumHosts(),
		CDF:      cdf,
		MeanInterarrival: workload.AggregateInterarrival(
			fluidBenchLoad, p.BisectionBps(), p.InterPodFraction(), cdf.Mean()),
	}
	return gen.PredrawIdx(flows)
}

// FluidAllToAll measures the fluid engine's steady state end to end: one op
// is a complete all-to-all run of `flows` transfers on the tiny fat-tree —
// arrivals, incremental rate re-solves, slow-start rounds, completions. The
// engine, simulation, and arrival closures are built once and replayed at
// shifted virtual times each op, so after the untimed warm-up op the
// measurement is the zero-allocation steady-state loop (allocs/op here is
// the CI allocation-regression gate's early-warning twin). The headline
// extra metric is "flows/sec", the fluid engine's composite throughput (the
// analogue of the packet engine's exp_*_flows_per_sec, measured per-engine
// so the two are never confused in a snapshot diff).
func FluidAllToAll(b *testing.B, flows int) {
	fluidSteadyState(b, fluid.Config{Params: topo.TinyScale()}, flows)
}

// FluidAllToAllFlowBender is FluidAllToAll with a FlowBender controller on
// every flow: the epoch ticks, marking estimates, and reroute-triggered
// re-solves are the fluid engine's most expensive steady-state work, so this
// is the upper bound on per-flow cost.
func FluidAllToAllFlowBender(b *testing.B, flows int) {
	cfg := fluid.Config{
		Params:     topo.TinyScale(),
		FlowBender: &core.Config{T: 0.05, N: 1, RNG: sim.NewRNG(99)},
	}
	fluidSteadyState(b, cfg, flows)
}

// FluidAllToAllShards is FluidAllToAll with the solver's component-parallel
// path engaged (threshold included) at the given worker count. Results are
// bit-identical to serial at any shard count; the bench shows what the
// dispatch costs (or wins) on the current box.
func FluidAllToAllShards(b *testing.B, flows, shards int) {
	cfg := fluid.Config{Params: topo.TinyScale(), SolverShards: shards}
	fluidSteadyState(b, cfg, flows)
}

// fluidSteadyState builds one warm fluid simulation and replays the
// pre-drawn schedule once per op at the engine's current instant. Arrivals
// are injected through a beacon chain — each one schedules the next before
// firing — so the engine never holds more than one pending arrival (the same
// injection shape the experiment runners use; pre-scheduling the whole
// schedule would make every op measure a flows-deep overflow heap instead of
// the steady state).
func fluidSteadyState(b *testing.B, cfg fluid.Config, flows int) {
	arrivals := fluidArrivals(cfg.Params, flows)
	eng := sim.NewEngine()
	fs := fluid.NewSim(eng, cfg)
	var base sim.Time
	idx := 0
	var beacon func()
	beacon = func() {
		j := idx
		idx++
		if idx < len(arrivals) {
			eng.At(base+arrivals[idx].At, beacon)
		}
		a := arrivals[j]
		fs.Arrive(netsim.FlowID(j+1), a.Src, a.Dst, a.Size, 0)
	}
	runOnce := func() {
		base = eng.Now()
		idx = 0
		fs.Completed = 0
		eng.At(base+arrivals[0].At, beacon)
		eng.RunUntilIdle()
		if fs.Completed != int64(len(arrivals)) {
			b.Fatalf("fluid run incomplete: %d of %d flows", fs.Completed, len(arrivals))
		}
	}
	runOnce() // untimed warm-up: size the arenas, pools, and event wheel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(flows)/b.Elapsed().Seconds(), "flows/sec")
}
