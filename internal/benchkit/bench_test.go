package benchkit

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
)

// go test -bench wrappers around the snapshot benchmark bodies, so the same
// code paths fbbench -json persists can be profiled interactively.

func BenchmarkEngineSchedule(b *testing.B)  { EngineSchedule(b) }
func BenchmarkPacketHop(b *testing.B)       { PacketHop(b) }
func BenchmarkTCPTransfer1MB(b *testing.B)  { TCPTransfer(b, 1_000_000) }
func BenchmarkTCPTransfer10MB(b *testing.B) { TCPTransfer(b, 10_000_000) }

// Fluid-engine throughput: one op is a full all-to-all run; the headline
// extras are flows/sec and allocs/op (the fluid engine's per-run footprint).
func BenchmarkFluidAllToAll(b *testing.B)           { FluidAllToAll(b, 2000) }
func BenchmarkFluidAllToAllFlowBender(b *testing.B) { FluidAllToAllFlowBender(b, 2000) }
func BenchmarkFluidAllToAllShards2(b *testing.B)    { FluidAllToAllShards(b, 2000, 2) }
func BenchmarkFluidAllToAllShards8(b *testing.B)    { FluidAllToAllShards(b, 2000, 8) }

// benchSwitch builds an 8-port switch with an 8-way ECMP route for every
// destination, mirroring a core switch's forwarding state.
func benchSwitch() (*netsim.Switch, *netsim.Packet) {
	eng := sim.NewEngine()
	sw := netsim.NewSwitch(eng, 100, 8, 10_000_000_000, netsim.SwitchConfig{})
	all := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	routes := make([][]int32, 32)
	for i := range routes {
		routes[i] = all
	}
	sw.SetRoutes(routes)
	sw.SetSelector(routing.ECMP{})
	pkt := &netsim.Packet{
		Flow:    7,
		Src:     3,
		Dst:     13,
		SrcPort: 41000,
		DstPort: 80,
		Proto:   netsim.ProtoTCP,
		PathTag: 2,
	}
	return sw, pkt
}

var portSink int32

// BenchmarkSwitchSelectUncached measures ECMP egress selection with no hash
// prefix on the packet: the memo cache cannot engage, so every call runs the
// full flow-key hash. This was the per-hop cost before prefix caching.
func BenchmarkSwitchSelectUncached(b *testing.B) {
	sw, pkt := benchSwitch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		portSink = sw.SelectEgress(pkt)
	}
}

// BenchmarkSwitchSelectCached measures the steady-state path: the packet
// carries its transport-stamped prefix and the switch's selector memo holds
// the flow's choice, so selection is one direct-mapped cache probe.
func BenchmarkSwitchSelectCached(b *testing.B) {
	sw, pkt := benchSwitch()
	pkt.HashPrefix = routing.FlowHashPrefix(pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto)
	pkt.HashPrefixOK = true
	sw.SelectEgress(pkt) // warm the memo slot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		portSink = sw.SelectEgress(pkt)
	}
}

// nopHandler is a no-op flow handler for dispatch benchmarks.
type nopHandler struct{}

func (nopHandler) Deliver(*netsim.Packet) {}

// dispatchFlows is the live-handler population for the dispatch benchmarks —
// a busy host terminating a few hundred concurrent flows.
const dispatchFlows = 256

var handlerSink netsim.Handler

// BenchmarkHostDispatchFlat measures per-packet handler lookup through the
// host's open-addressed handler table (the production dispatch path).
func BenchmarkHostDispatchFlat(b *testing.B) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, 1, 10_000_000_000, 0)
	for f := 0; f < dispatchFlows; f++ {
		h.Register(netsim.FlowID(f), nopHandler{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handlerSink = h.Handler(netsim.FlowID(i % dispatchFlows))
	}
}

// BenchmarkHostDispatchMap is the baseline the flat table replaced: the same
// lookups through a built-in map, for comparison in bench output.
func BenchmarkHostDispatchMap(b *testing.B) {
	m := make(map[netsim.FlowID]netsim.Handler)
	for f := 0; f < dispatchFlows; f++ {
		m[netsim.FlowID(f)] = nopHandler{}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handlerSink = m[netsim.FlowID(i%dispatchFlows)]
	}
}
