package benchkit

import (
	"testing"

	"flowbender/internal/fluid"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
)

// TestFluidSteadyStateZeroAlloc is the allocation-regression gate's
// whole-engine half: after one warm-up run has sized the arenas, pools,
// and event wheel, a complete 2000-flow all-to-all — arrivals, incremental
// re-solves, slow-start rounds, completions — must perform zero heap
// allocations. The benchmark twin (BenchmarkFluidAllToAll) reports the
// same number; this test makes it a hard CI failure instead of a snapshot
// diff.
func TestFluidSteadyStateZeroAlloc(t *testing.T) {
	cfg := fluid.Config{Params: topo.TinyScale()}
	arrivals := fluidArrivals(cfg.Params, 2000)
	eng := sim.NewEngine()
	fs := fluid.NewSim(eng, cfg)
	var base sim.Time
	idx := 0
	var beacon func()
	beacon = func() {
		j := idx
		idx++
		if idx < len(arrivals) {
			eng.At(base+arrivals[idx].At, beacon)
		}
		a := arrivals[j]
		fs.Arrive(netsim.FlowID(j+1), a.Src, a.Dst, a.Size, 0)
	}
	runOnce := func() {
		base = eng.Now()
		idx = 0
		fs.Completed = 0
		eng.At(base+arrivals[0].At, beacon)
		eng.RunUntilIdle()
		if fs.Completed != int64(len(arrivals)) {
			t.Fatalf("fluid run incomplete: %d of %d flows", fs.Completed, len(arrivals))
		}
	}
	runOnce() // untimed warm-up (AllocsPerRun's own warm-up call is run two)
	if n := testing.AllocsPerRun(5, runOnce); n != 0 {
		t.Fatalf("steady-state fluid run allocates %v times per run, want 0", n)
	}
}
