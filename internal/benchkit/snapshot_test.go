package benchkit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewestAndNewestTwo(t *testing.T) {
	dir := t.TempDir()
	if _, err := Newest(dir); err == nil {
		t.Fatal("Newest on empty dir: want error")
	}
	if _, _, err := NewestTwo(dir); err == nil || !strings.Contains(err.Error(), "need at least two") {
		t.Fatalf("NewestTwo on empty dir: got %v, want 'need at least two' error", err)
	}
	a := filepath.Join(dir, FilePrefix+"20260101-000000.json")
	b := filepath.Join(dir, FilePrefix+"20260201-000000.json")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte(`{"metrics":{}}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Newest(dir)
	if err != nil || got != b {
		t.Fatalf("Newest = %q, %v; want %q", got, err, b)
	}
	older, newer, err := NewestTwo(dir)
	if err != nil || older != a || newer != b {
		t.Fatalf("NewestTwo = %q, %q, %v; want %q, %q", older, newer, err, a, b)
	}
}

func snap(metrics map[string]float64) *Snapshot {
	return &Snapshot{Metrics: metrics}
}

func regressionNames(regs []Regression) []string {
	var names []string
	for _, r := range regs {
		names = append(names, r.Metric)
	}
	return names
}

func TestCompareDirections(t *testing.T) {
	old := snap(map[string]float64{
		"packet_hop_ns_per_hop":                200, // lower is better
		"engine_schedule_allocs_op":            0,   // zero stays zero
		"exp_alltoall_tiny_wall_ms":            100, // lower is better, 3x tolerance
		"exp_alltoall_tiny_events_per_sec":     1e6, // higher is better, 3x tolerance
		"exp_alltoall_tiny_simsec_per_wallsec": 2.0, // higher is better
		"vanished_metric":                      5,
	})
	cases := []struct {
		name    string
		metrics map[string]float64
		want    []string
	}{
		{
			name: "all within tolerance",
			metrics: map[string]float64{
				"packet_hop_ns_per_hop":                210, // +5%
				"engine_schedule_allocs_op":            0,
				"exp_alltoall_tiny_wall_ms":            125,   // +25% < 30%
				"exp_alltoall_tiny_events_per_sec":     0.8e6, // -20% < 30%
				"exp_alltoall_tiny_simsec_per_wallsec": 1.9,
				"vanished_metric":                      5,
				"brand_new_metric":                     1, // new-only: ignored
			},
			want: nil,
		},
		{
			name: "latency up, throughput down, metric gone",
			metrics: map[string]float64{
				"packet_hop_ns_per_hop":                230,   // +15% > 10%
				"engine_schedule_allocs_op":            1,     // 0 -> nonzero
				"exp_alltoall_tiny_wall_ms":            140,   // +40% > 30%
				"exp_alltoall_tiny_events_per_sec":     0.6e6, // -40% > 30%
				"exp_alltoall_tiny_simsec_per_wallsec": 2.5,   // improved: fine
			},
			want: []string{
				"engine_schedule_allocs_op",
				"exp_alltoall_tiny_events_per_sec",
				"exp_alltoall_tiny_wall_ms",
				"packet_hop_ns_per_hop",
				"vanished_metric (missing)",
			},
		},
		{
			name: "throughput gains never regress",
			metrics: map[string]float64{
				"packet_hop_ns_per_hop":                150,
				"engine_schedule_allocs_op":            0,
				"exp_alltoall_tiny_wall_ms":            50,
				"exp_alltoall_tiny_events_per_sec":     5e6,
				"exp_alltoall_tiny_simsec_per_wallsec": 10,
				"vanished_metric":                      5,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := regressionNames(Compare(old, snap(tc.metrics), 0.10))
			if len(got) != len(tc.want) {
				t.Fatalf("Compare: got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Compare: got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestComparable(t *testing.T) {
	base := func() *Snapshot {
		return &Snapshot{Shards: 4, Procs: 8, CPU: "Intel Test CPU @ 2.10GHz"}
	}
	if err := Comparable(base(), base()); err != nil {
		t.Errorf("identical configurations: got %v, want nil", err)
	}
	// Legacy snapshots (no metadata at all) are accepted against anything.
	if err := Comparable(&Snapshot{}, base()); err != nil {
		t.Errorf("legacy baseline: got %v, want nil", err)
	}
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		want   string
	}{
		{"shards", func(s *Snapshot) { s.Shards = 1 }, "shards"},
		{"procs", func(s *Snapshot) { s.Procs = 1 }, "GOMAXPROCS"},
		{"cpu", func(s *Snapshot) { s.CPU = "other" }, "CPU"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newer := base()
			tc.mutate(newer)
			err := Comparable(base(), newer)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error naming %q", err, tc.want)
			}
		})
	}
}

func TestComparableRefusesCrossEngine(t *testing.T) {
	packet := &Snapshot{Shards: 1, Procs: 1, CPU: "box", Engine: "packet"}
	fluid := &Snapshot{Shards: 1, Procs: 1, CPU: "box", Engine: "fluid"}
	if err := Comparable(packet, fluid); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Errorf("packet vs fluid: got %v, want engine refusal", err)
	}
	// A legacy snapshot (no engine field, no config) is a packet measurement:
	// it still refuses a fluid counterpart even though the config check is
	// skipped, and still accepts an explicit packet one.
	if err := Comparable(&Snapshot{}, fluid); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Errorf("legacy vs fluid: got %v, want engine refusal", err)
	}
	if err := Comparable(&Snapshot{}, packet); err != nil {
		t.Errorf("legacy vs packet: got %v, want nil", err)
	}
	if err := Comparable(fluid, fluid); err != nil {
		t.Errorf("fluid vs fluid: got %v, want nil", err)
	}
}

func TestRegressionStringUnits(t *testing.T) {
	cases := []struct {
		metric string
		want   string
	}{
		{"exp_production_tiny_flows_per_sec", "flows/s"},
		{"exp_alltoall_tiny_events_per_sec", "events/s"},
		{"exp_alltoall_tiny_wall_ms", "ms"},
		{"engine_schedule_ns_op", "ns/op"},
		{"fluid_a2a_2000_flows_per_sec", "flows/s"},
	}
	for _, tc := range cases {
		got := Regression{Metric: tc.metric, Old: 100, New: 50}.String()
		if !strings.Contains(got, tc.want) {
			t.Errorf("Regression.String(%s) = %q, want it to carry unit %q", tc.metric, got, tc.want)
		}
	}
	// Units appear on both the old and new value.
	s := Regression{Metric: "exp_a_tiny_flows_per_sec", Old: 200, New: 100}.String()
	if strings.Count(s, " flows/s") != 2 {
		t.Errorf("Regression.String = %q, want the unit on both values", s)
	}
}

func TestCPUModelNonEmpty(t *testing.T) {
	if CPUModel() == "" {
		t.Error("CPUModel returned an empty string")
	}
}

func TestFoldKeepsBestRound(t *testing.T) {
	s := snap(map[string]float64{})
	// Lower-is-better: the minimum across rounds wins.
	for _, v := range []float64{10, 8, 12} {
		s.Fold("engine_schedule_ns_op", v)
	}
	if got := s.Metrics["engine_schedule_ns_op"]; got != 8 {
		t.Errorf("fold lower-is-better: got %v, want 8", got)
	}
	// Higher-is-better: the maximum across rounds wins.
	for _, v := range []float64{5, 9, 7} {
		s.Fold("exp_alltoall_tiny_events_per_sec", v)
	}
	if got := s.Metrics["exp_alltoall_tiny_events_per_sec"]; got != 9 {
		t.Errorf("fold higher-is-better: got %v, want 9", got)
	}
}

func TestHigherIsBetter(t *testing.T) {
	cases := map[string]bool{
		"exp_alltoall_tiny_events_per_sec":     true,
		"exp_alltoall_tiny_simsec_per_wallsec": true,
		"packet_hop_ns_per_hop":                false, // sanitized "ns/hop": a rate of time, still lower-is-better
		"packet_hop_allocs_per_hop":            false,
		"engine_schedule_ns_op":                false,
		"exp_alltoall_tiny_wall_ms":            false,
	}
	for name, want := range cases {
		if got := higherIsBetter(name); got != want {
			t.Errorf("higherIsBetter(%q) = %v, want %v", name, got, want)
		}
	}
}
