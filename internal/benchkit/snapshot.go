package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Snapshot is one point of the persisted benchmark trajectory, written as
// BENCH_<timestamp>.json in the repository root. Metrics are lower-is-better
// except the throughput metrics (suffix "_per_sec" or "_per_wallsec"), which
// are higher-is-better; Compare treats each one as a headline.
type Snapshot struct {
	Schema    int    `json:"schema"`
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	// Scales lists the experiment scales whose wall-clock times are
	// included (micro-benchmarks are scale-independent).
	Scales []string `json:"scales"`
	Seed   int64    `json:"seed"`
	// Shards, Procs, and CPU identify the execution configuration the
	// wall-clock metrics were measured under: the -shards flag in effect,
	// runtime.GOMAXPROCS, and the CPU model. Wall-clock numbers from
	// different configurations are not comparable — a 4-shard run on an
	// 8-core box against a serial run on a laptop measures the hardware,
	// not the code — so Comparable (and fbbench -compare) refuses to diff
	// across a mismatch. Snapshots written before these fields existed
	// carry zero values and skip the check.
	Shards int    `json:"shards,omitempty"`
	Procs  int    `json:"gomaxprocs,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Engine names the simulation engine the exp_* wall-clock metrics were
	// measured with ("packet" or "fluid"). Both engines emit the same metric
	// names for the same experiments, so a cross-engine diff would compare
	// two different simulators — not a code change — and Comparable refuses
	// it outright. Snapshots written before this field existed carry "" and
	// mean the packet engine.
	Engine string `json:"engine,omitempty"`
	// Metrics maps metric name -> value. Conventions:
	//   engine_schedule_ns_op / _allocs_op       per-event scheduler cost
	//   packet_hop_ns / packet_hop_allocs        per switch-hop fabric cost
	//   tcp_transfer_10mb_ms / _allocs           one 10 MB transfer
	//   exp_<name>_<scale>_wall_ms               one experiment run's wall clock
	//   exp_<name>_<scale>_events_per_sec        engine events per wall second
	//   exp_<name>_<scale>_simsec_per_wallsec    simulated s per wall second
	//   exp_<name>_<scale>_flows_per_sec         completed flows per wall second
	//   fluid_a2a_<flows>_flows_per_sec          fluid-engine all-to-all throughput
	Metrics map[string]float64 `json:"metrics"`
}

// FilePrefix and pattern for trajectory snapshots.
const FilePrefix = "BENCH_"

// NewSnapshot returns an empty snapshot stamped with the current time,
// toolchain, and execution environment (GOMAXPROCS and CPU model; the shard
// configuration is the caller's to set).
func NewSnapshot(goVersion string, seed int64) *Snapshot {
	return &Snapshot{
		Schema:    1,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: goVersion,
		Seed:      seed,
		Procs:     runtime.GOMAXPROCS(0),
		CPU:       CPUModel(),
		Metrics:   map[string]float64{},
	}
}

// CPUModel returns the processor model string from /proc/cpuinfo, or the
// architecture name where that is unavailable (non-Linux, restricted /proc).
func CPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
			}
		}
	}
	return runtime.GOARCH
}

// Comparable reports (as an error) whether old's wall-clock metrics can be
// meaningfully diffed against new's: the shard configuration, GOMAXPROCS,
// and CPU model must all match. Legacy snapshots with no recorded
// configuration are accepted as-is — there is nothing to check against.
func Comparable(old, new *Snapshot) error {
	// Engine identity is checked even against legacy snapshots: a legacy
	// snapshot is by definition a packet-engine measurement, and a fluid
	// snapshot's exp_* metrics describe a different simulator entirely.
	if eo, en := engineName(old.Engine), engineName(new.Engine); eo != en {
		return fmt.Errorf("benchkit: snapshots measure different engines (%s vs %s); their experiment metrics share names but describe different simulators — re-measure with -engine %s or pick a matching -baseline", eo, en, eo)
	}
	if old.Shards == 0 && old.Procs == 0 && old.CPU == "" {
		return nil
	}
	var diffs []string
	if old.Shards != new.Shards {
		diffs = append(diffs, fmt.Sprintf("shards %d vs %d", old.Shards, new.Shards))
	}
	if old.Procs != new.Procs {
		diffs = append(diffs, fmt.Sprintf("GOMAXPROCS %d vs %d", old.Procs, new.Procs))
	}
	if old.CPU != new.CPU {
		diffs = append(diffs, fmt.Sprintf("CPU %q vs %q", old.CPU, new.CPU))
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("benchkit: snapshots were measured under different configurations (%s); wall-clock diffs would compare hardware, not code — re-measure with a matching setup or pick a -baseline from the same machine",
		strings.Join(diffs, ", "))
}

// Filename returns the canonical snapshot filename for the creation time.
func (s *Snapshot) Filename() string {
	t, err := time.Parse(time.RFC3339, s.CreatedAt)
	if err != nil {
		t = time.Now().UTC()
	}
	return FilePrefix + t.Format("20060102-150405") + ".json"
}

// Write stores the snapshot under dir with its canonical filename and
// returns the full path.
func (s *Snapshot) Write(dir string) (string, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, s.Filename())
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads one snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	if s.Metrics == nil {
		return nil, fmt.Errorf("benchkit: %s: no metrics", path)
	}
	return &s, nil
}

// NewestTwo returns the paths of the two newest snapshots in dir, older
// first. Snapshot filenames embed their UTC timestamp, so lexicographic
// order is chronological order.
func NewestTwo(dir string) (older, newer string, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, FilePrefix+"*.json"))
	if err != nil {
		return "", "", err
	}
	if len(paths) < 2 {
		return "", "", fmt.Errorf("benchkit: need at least two %s*.json snapshots in %s, found %d", FilePrefix, dir, len(paths))
	}
	sort.Strings(paths)
	return paths[len(paths)-2], paths[len(paths)-1], nil
}

// Newest returns the path of the single newest snapshot in dir.
func Newest(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, FilePrefix+"*.json"))
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("benchkit: no %s*.json snapshots in %s", FilePrefix, dir)
	}
	sort.Strings(paths)
	return paths[len(paths)-1], nil
}

// higherIsBetter reports whether a metric is a throughput (bigger numbers
// are improvements): the events-per-second and simulated-time-per-wall-
// second rates the experiment harness reports.
func higherIsBetter(name string) bool {
	return strings.HasSuffix(name, "_per_sec") || strings.HasSuffix(name, "_per_wallsec")
}

// engineName normalizes a snapshot's engine label: snapshots written before
// the Engine field existed are packet-engine measurements.
func engineName(e string) string {
	if e == "" {
		return "packet"
	}
	return e
}

// UnitOf maps a metric name to its display unit by suffix convention, so
// -compare output reads as measurements rather than bare numbers. Unknown
// suffixes get no unit.
func UnitOf(name string) string {
	switch {
	case strings.HasSuffix(name, "_flows_per_sec"):
		return " flows/s"
	case strings.HasSuffix(name, "_events_per_sec"):
		return " events/s"
	case strings.HasSuffix(name, "_simsec_per_wallsec"):
		return " sim-s/s"
	case strings.HasSuffix(name, "_wall_ms"), strings.HasSuffix(name, "_ms"):
		return " ms"
	case strings.HasSuffix(name, "_ns_op"):
		return " ns/op"
	case strings.HasSuffix(name, "_allocs_op"):
		return " allocs/op"
	case strings.HasSuffix(name, "_ns_per_hop"):
		return " ns/hop"
	case strings.HasSuffix(name, "_allocs_per_hop"):
		return " allocs/hop"
	}
	return ""
}

// Regression is one headline metric that got worse past the tolerance.
type Regression struct {
	Metric   string
	Old, New float64
}

func (r Regression) String() string {
	unit := UnitOf(r.Metric)
	return fmt.Sprintf("%s: %.4g%s -> %.4g%s (%+.1f%%)", r.Metric, r.Old, unit, r.New, unit, 100*(r.New-r.Old)/nonzero(r.Old))
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Compare checks every metric present in old against new with the given
// fractional tolerance (0.10 = fail on >10% worse). Metrics are
// lower-is-better except throughputs (see higherIsBetter), which regress by
// shrinking instead of growing. A metric missing from new, or a zero
// lower-is-better metric (e.g. allocs/op) that becomes nonzero, is a
// regression. Metrics only present in new are informational and ignored.
// Experiment metrics (exp_*) are single-shot timings and inherently noisier
// than the averaged micro-benchmarks, so they get 3x the tolerance.
func Compare(old, new *Snapshot, tolerance float64) []Regression {
	var regs []Regression
	names := make([]string, 0, len(old.Metrics))
	for name := range old.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tol := tolerance
		if strings.HasPrefix(name, "exp_") {
			tol = 3 * tolerance
		}
		ov := old.Metrics[name]
		nv, ok := new.Metrics[name]
		switch {
		case !ok:
			regs = append(regs, Regression{Metric: name + " (missing)", Old: ov, New: 0})
		case higherIsBetter(name):
			if ov > 0 && nv < ov*(1-tol) {
				regs = append(regs, Regression{Metric: name, Old: ov, New: nv})
			}
		case ov == 0 && nv > 0.5:
			// An allocation-free path growing any allocations is a
			// regression regardless of the relative tolerance.
			regs = append(regs, Regression{Metric: name, Old: ov, New: nv})
		case ov > 0 && nv > ov*(1+tol):
			regs = append(regs, Regression{Metric: name, Old: ov, New: nv})
		}
	}
	return regs
}

// measureRounds is how many times Measure repeats each micro-benchmark,
// folding in the best round per metric. A single testing.Benchmark draw is
// hostage to whatever else the machine does during that second; the best of
// a few spaced draws is the reproducible cost of the code itself, which is
// what the trajectory tracks.
const measureRounds = 3

// Measure runs fn under testing.Benchmark measureRounds times and folds the
// best round of each metric into the snapshot: <name>_ns_op and
// <name>_allocs_op, plus any b.ReportMetric extras as <name>_<metric> (with
// "/" mapped to "_per_"). "Best" is the minimum, or the maximum for
// throughput metrics (see higherIsBetter). The last round's raw result is
// returned for callers that want iteration counts.
func (s *Snapshot) Measure(name string, fn func(b *testing.B)) testing.BenchmarkResult {
	var res testing.BenchmarkResult
	for round := 0; round < measureRounds; round++ {
		res = testing.Benchmark(fn)
		s.Fold(name+"_ns_op", float64(res.NsPerOp()))
		s.Fold(name+"_allocs_op", float64(res.AllocsPerOp()))
		for metric, v := range res.Extra {
			s.Fold(name+"_"+sanitize(metric), v)
		}
	}
	return res
}

// Fold records v under name, keeping the better of v and any prior round's
// value.
func (s *Snapshot) Fold(name string, v float64) {
	old, ok := s.Metrics[name]
	if !ok || (higherIsBetter(name) && v > old) || (!higherIsBetter(name) && v < old) {
		s.Metrics[name] = v
	}
}

func sanitize(metric string) string {
	out := make([]rune, 0, len(metric))
	for _, r := range metric {
		if r == '/' {
			out = append(out, '_', 'p', 'e', 'r', '_')
		} else {
			out = append(out, r)
		}
	}
	return string(out)
}
