// Package benchkit holds the micro-benchmark bodies and snapshot machinery
// behind the repository's persisted benchmark trajectory.
//
// The same benchmark functions are driven two ways: `go test -bench` (via
// the wrappers in bench_test.go) for interactive work, and cmd/fbbench's
// -json mode (via testing.Benchmark) to write a BENCH_<timestamp>.json
// snapshot. `fbbench -compare` (wired as `make bench-compare`) diffs the two
// newest snapshots and fails on >10% regression of any headline metric, so
// the hot-path cost of the simulator is guarded the same way its output
// bytes are guarded by golden files.
package benchkit

import (
	"runtime"
	"testing"

	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/udp"
)

// EngineSchedule measures the engine's raw event throughput: each op
// schedules one event; batches of 1024 are then drained so the heap stays at
// a realistic occupancy. ns/op and allocs/op are therefore per event.
func EngineSchedule(b *testing.B) {
	EngineScheduleN(b, 1024)
}

// EngineScheduleN is EngineSchedule with a configurable batch size: larger
// batches mean a deeper heap when events fire, exposing the sift cost's
// dependence on occupancy.
func EngineScheduleN(b *testing.B, batch int) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(sim.Time(i%1000), func() {})
		if i%batch == batch-1 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
}

// PacketHop drives a fixed-rate UDP stream across the tiny fat-tree for one
// virtual millisecond per op and reports the cost per switch hop — the
// end-to-end price of a packet traversing the fabric (port serialization,
// wire delay, switch pipeline, queue, selector), including the share of
// engine events that moves it. Headline metrics are the ReportMetric values
// "ns/hop" and "allocs/hop"; ns/op is per simulated millisecond.
func PacketHop(b *testing.B) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})
	src := ft.Hosts[0]
	dst := ft.Hosts[len(ft.Hosts)-1] // inter-pod: 5 switch hops
	sink := udp.NewSink()
	dst.Register(1, sink)
	snd := udp.NewSender(eng, 1, src, dst, 5_000_000_000, 1000)
	snd.Start()
	// Warm up: let the stream reach steady state (and fill any pools).
	eng.Run(eng.Now() + sim.Millisecond)

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	hops0 := totalSwitchRx(ft)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + sim.Millisecond)
	}
	b.StopTimer()
	hops := totalSwitchRx(ft) - hops0
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	snd.Stop()
	if hops > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(hops), "ns/hop")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(hops), "allocs/hop")
	}
}

func totalSwitchRx(ft *topo.FatTree) int64 {
	var n int64
	for _, sw := range ft.AllSwitches() {
		n += sw.RxPackets
	}
	return n
}

// TCPTransfer measures one full TCP transfer of size bytes across the tiny
// fat-tree, end to end (events, TCP state machines, queues, routing) — the
// composite metric the experiments are made of.
func TCPTransfer(b *testing.B, size int64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		ft := topo.NewFatTree(eng, topo.TinyScale())
		ft.SetSelector(routing.ECMP{})
		f := tcp.StartFlow(eng, tcp.DefaultConfig(), 1, ft.Hosts[0], ft.Hosts[12], size)
		eng.Run(10 * sim.Second)
		if !f.Done() {
			b.Fatal("flow incomplete")
		}
	}
}
