package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Manager coordinates one run's checkpoint file across concurrently
// executing simulation points. All methods are safe for concurrent use;
// every mutation is persisted with an atomic Save, so the on-disk file is
// consistent at every instant and a SIGKILL can at worst lose the most
// recent mutation, never corrupt the file.
type Manager struct {
	mu   sync.Mutex
	path string
	file File

	// loadedMarks and loadedDone hold the state read from a resumed file:
	// expectations to verify (marks) and results to serve (journal). They
	// are kept apart from the live file so a resumed run's own fresh marks
	// never masquerade as recorded history.
	loadedMarks map[string]PointMark
	loadedDone  map[string]Entry

	// flush is set by the signal handler to request an immediate mark from
	// every running point, so the file captures current progress rather
	// than the last cadence boundary before the process exits.
	flush atomic.Bool

	// saveErr remembers the first persistence failure; checkpointing
	// degrades to a warning rather than killing a healthy simulation.
	saveErrOnce sync.Once
	saveErr     error
}

// Create starts a fresh checkpoint at path. It refuses to overwrite an
// existing file — a crashed run's checkpoint is resumed with Open, never
// silently clobbered.
func Create(path string, d Descriptor) (*Manager, error) {
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("checkpoint: %s already exists; resume it with -resume %s or delete it first", path, path)
	}
	m := &Manager{path: path, file: File{Descriptor: d}}
	if err := m.Save(); err != nil {
		return nil, err
	}
	return m, nil
}

// Open resumes the checkpoint at path, validating that it was produced by
// the identical run configuration. The loaded journal entries become
// servable results and the loaded marks become verification obligations;
// the file then continues to accumulate this run's progress.
func Open(path string, d Descriptor) (*Manager, error) {
	f, err := Load(path)
	if err != nil {
		return nil, err
	}
	if f.Descriptor != d {
		want, _ := json.Marshal(f.Descriptor)
		got, _ := json.Marshal(d)
		return nil, fmt.Errorf("checkpoint: %s was written by a different run configuration:\n  checkpoint: %s\n  this run:   %s\nresume with the original flags (parallelism and watchdog may differ; everything else must match)",
			path, want, got)
	}
	// The loaded journal and marks carry forward into the live file: a
	// resumed run that is itself interrupted before a point re-marks must
	// not have lost that point's last known barrier.
	m := &Manager{
		path:        path,
		file:        File{Descriptor: d, Done: f.Done, Marks: f.Marks},
		loadedMarks: make(map[string]PointMark, len(f.Marks)),
		loadedDone:  make(map[string]Entry, len(f.Done)),
	}
	for _, pm := range f.Marks {
		m.loadedMarks[pm.Key] = pm
	}
	for _, e := range f.Done {
		m.loadedDone[e.Name] = e
	}
	return m, nil
}

// FromFlags resolves the -checkpoint/-resume CLI flag pair into a Manager:
// -checkpoint starts fresh (refusing an existing file), -resume loads an
// existing one, neither returns nil. Setting both is an error.
func FromFlags(checkpointPath, resumePath string, d Descriptor) (*Manager, error) {
	switch {
	case checkpointPath != "" && resumePath != "":
		return nil, fmt.Errorf("checkpoint: -checkpoint and -resume are mutually exclusive; -resume continues writing to the resumed file")
	case resumePath != "":
		return Open(resumePath, d)
	case checkpointPath != "":
		return Create(checkpointPath, d)
	}
	return nil, nil
}

// Path returns the checkpoint file's location.
func (m *Manager) Path() string { return m.path }

// Resumed reports whether this manager continues a previous run's file.
func (m *Manager) Resumed() bool { return m.loadedMarks != nil }

// Done returns the journaled output of a completed experiment from the
// resumed file, verifying its content hash. A hash mismatch returns false:
// the entry is re-run rather than served corrupted (the CRC should make
// this unreachable, but the journal is the source of published results and
// gets its own belt).
func (m *Manager) Done(name string) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.loadedDone[name]
	if !ok || hashOutput(e.Output) != e.SHA256 {
		return Entry{}, false
	}
	return e, true
}

// RecordDone journals a completed experiment's rendered output and
// persists the file.
func (m *Manager) RecordDone(name, output string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.file.Done {
		if m.file.Done[i].Name == name {
			m.file.Done[i] = Entry{Name: name, SHA256: hashOutput(output), Output: output}
			m.save()
			return
		}
	}
	m.file.Done = append(m.file.Done, Entry{Name: name, SHA256: hashOutput(output), Output: output})
	m.save()
}

// Mark upserts one point's watermark and persists the file. The latest
// mark per key wins: resume only ever needs the most recent barrier.
func (m *Manager) Mark(pm PointMark) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.file.Marks {
		if m.file.Marks[i].Key == pm.Key {
			if m.file.Marks[i].Wedged {
				pm.Wedged = true // a wedged flag is sticky for the point
			}
			m.file.Marks[i] = pm
			m.save()
			return
		}
	}
	m.file.Marks = append(m.file.Marks, pm)
	m.save()
}

// FlagWedged marks the named point's watermark as having been abandoned by
// a watchdog, preserving its last barrier state for post-mortem resume.
func (m *Manager) FlagWedged(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.file.Marks {
		if m.file.Marks[i].Key == key {
			m.file.Marks[i].Wedged = true
			m.save()
			return
		}
	}
	m.file.Marks = append(m.file.Marks, PointMark{Key: key, Wedged: true})
	m.save()
}

// Expected returns the resumed file's watermark for a point, if any: the
// state the replaying point must reproduce exactly when it passes the
// recorded barrier instant.
func (m *Manager) Expected(key string) (PointMark, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pm, ok := m.loadedMarks[key]
	return pm, ok
}

// RequestFlush asks every running point to mark at its next quiescent
// barrier regardless of cadence. The signal handler calls it so the file
// captures up-to-the-moment progress before the process exits.
func (m *Manager) RequestFlush() { m.flush.Store(true) }

// FlushRequested reports whether an immediate mark has been requested.
func (m *Manager) FlushRequested() bool { return m.flush.Load() }

// Save persists the current state atomically.
func (m *Manager) Save() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.save()
}

// SaveErr returns the first persistence failure, if any. Checkpoint writes
// never abort a healthy run; callers surface this at exit instead.
func (m *Manager) SaveErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saveErr
}

// save persists under the caller-held lock.
func (m *Manager) save() error {
	err := Save(m.path, &m.file)
	if err != nil {
		m.saveErrOnce.Do(func() { m.saveErr = err })
	}
	return err
}

func hashOutput(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
