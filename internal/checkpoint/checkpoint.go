// Package checkpoint makes long simulation runs crash-safe: it persists a
// versioned, self-describing file holding (1) a journal of completed
// experiments' rendered output, keyed by content hash, and (2) per-point
// engine watermarks taken at quiescent barriers, so an interrupted run can
// be resumed and *proven* byte-identical to an uninterrupted one.
//
// # Design note — watermarks, not byte dumps
//
// Pending events in this simulator are closures over live object graphs
// (flows, ports, switches, timers), so the calendar queue has no direct
// serialized form. What the repository does have is a hard determinism
// invariant: every simulation point is a pure function of (options, seed),
// bit-identical at any -parallel and -shards setting. A checkpoint
// therefore records *where* each in-flight point was — virtual time plus a
// sim.EngineState per shard, whose QueueDigest fingerprints every pending
// event's (time, stamp, seq) key in pop order — and restore re-executes
// the point deterministically, cross-checking the recorded watermark as
// the replay passes it (sim.Engine.VerifyRestore). Anything regenerable
// (ECMP memos, hash-prefix caches, flowlet tables, free lists) is
// deliberately not recorded: the queue digest is downstream of all of it,
// so a single diverging RNG draw or reordered event trips verification
// instead of corrupting results. Completed work is never re-executed —
// RunAll serves journaled experiments straight from the file.
//
// # File format
//
// The file is JSON: an outer envelope carrying a magic string, a format
// version, a simulation-state version, and a CRC32 over the raw payload
// bytes; the payload holds the run descriptor, the journal, and the marks.
// Loading verifies all four before touching the payload, so a truncated,
// corrupted, or version-skewed file fails with a clear error instead of
// resuming into garbage. Saves go through a temp file + rename in the
// target directory, so a crash mid-write leaves the previous checkpoint
// intact — there is never a moment where the only copy is half-written.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"flowbender/internal/sim"
)

const (
	// Magic identifies checkpoint files.
	Magic = "flowbender-checkpoint"
	// FormatVersion is the envelope layout version. Bump on any change to
	// the envelope or payload schema.
	FormatVersion = 1
	// StateVersion names the simulation semantics this checkpoint's
	// watermarks depend on. Bump whenever event ordering, RNG stream
	// layout, or scheduling semantics change: watermarks from an older
	// state cannot verify against the new engine and must be rejected up
	// front rather than failing mid-replay.
	StateVersion = "fb-state-1"
)

// Descriptor pins the run configuration a checkpoint belongs to. Resuming
// under a different configuration is refused: the journal outputs and the
// watermarks are only valid for the exact deterministic run they came
// from. Parallelism and the watchdog are deliberately absent — the repo's
// determinism contract makes output independent of both, so a run may be
// resumed at a different -parallel setting; -shards changes the per-shard
// engine states and so must match.
type Descriptor struct {
	// Tool names the producing command and mode, e.g. "fbbench" or
	// "fbsim:alltoall".
	Tool      string `json:"tool"`
	Seed      int64  `json:"seed"`
	Scale     string `json:"scale"`
	FlowCount int    `json:"flow_count,omitempty"`
	JobCount  int    `json:"job_count,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Seeds     int    `json:"seeds,omitempty"`
	// CheckpointEvery is the watermark cadence in virtual nanoseconds. It
	// must match across resume: marks are taken on the cadence grid, and a
	// resumed run verifies them by passing the same grid instants.
	CheckpointEvery int64 `json:"checkpoint_every"`
	// Extra carries tool-specific configuration that alters output
	// (e.g. fbsim's -faults selection or -cdf path).
	Extra string `json:"extra,omitempty"`
}

// PointMark is one in-flight simulation point's watermark: the quiescent
// barrier instant it had reached and the engine state of every shard
// (serial points have exactly one).
type PointMark struct {
	Key     string            `json:"key"`
	SimTime int64             `json:"sim_time"`
	Engines []sim.EngineState `json:"engines"`
	// Wedged records that a wall-clock watchdog fired while this point was
	// running: the mark preserves the last good barrier state of a run
	// that would otherwise have been discarded.
	Wedged bool `json:"wedged,omitempty"`
}

// Entry is one journaled completed experiment: its rendered output and the
// output's SHA-256, so a resumed RunAll can serve the result without
// re-simulating and the reader can detect tampering.
type Entry struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Output string `json:"output"`
}

// File is the checkpoint payload.
type File struct {
	Descriptor Descriptor  `json:"descriptor"`
	Done       []Entry     `json:"done"`
	Marks      []PointMark `json:"marks"`
}

// envelope is the outer, version-checked wrapper.
type envelope struct {
	Magic   string          `json:"magic"`
	Format  int             `json:"format"`
	State   string          `json:"state"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// Save writes f to path atomically: the payload is marshaled, wrapped in a
// checksummed envelope, written to a temp file in the same directory, and
// renamed into place. A crash at any instant leaves either the old file or
// the new one, never a torn write.
func Save(path string, f *File) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	env := envelope{
		Magic:   Magic,
		Format:  FormatVersion,
		State:   StateVersion,
		CRC32:   crc32.ChecksumIEEE(payload),
		Payload: payload,
	}
	// Compact on purpose: indentation would rewrite the embedded payload's
	// bytes and break the checksum's byte-exact contract.
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and validates a checkpoint file. Magic, format version, state
// version, and payload checksum are all verified before the payload is
// decoded, each failure with an error that says what is wrong and what the
// reader expected — a mismatched or corrupted checkpoint must never be
// half-trusted.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint file: %w", path, err)
	}
	if env.Magic != Magic {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint file (magic %q, want %q)", path, env.Magic, Magic)
	}
	if env.Format != FormatVersion {
		return nil, fmt.Errorf("checkpoint: %s has format version %d; this binary reads version %d — regenerate the checkpoint with the matching tool", path, env.Format, FormatVersion)
	}
	if env.State != StateVersion {
		return nil, fmt.Errorf("checkpoint: %s was written for simulation state %q; this binary is %q — the engine semantics changed, so its watermarks cannot be verified; rerun from scratch", path, env.State, StateVersion)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC32 {
		return nil, fmt.Errorf("checkpoint: %s payload checksum mismatch (file %08x, computed %08x): the file is corrupted", path, env.CRC32, got)
	}
	var f File
	if err := json.Unmarshal(env.Payload, &f); err != nil {
		return nil, fmt.Errorf("checkpoint: %s payload: %w", path, err)
	}
	return &f, nil
}
