package checkpoint

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ExitCodeInterrupted is the process exit status after a graceful
// checkpoint-and-exit (128 + SIGINT, the shell convention).
const ExitCodeInterrupted = 130

// HandleSignals arms graceful shutdown for a checkpointed run. The first
// SIGINT/SIGTERM requests an immediate watermark from every running point,
// waits `settle` wall-clock for those marks to land, saves the file, prints
// a resume hint, and exits with status 130; a second signal during the
// settle window hard-exits immediately. It returns a stop function that
// disarms the handler (call it once the run has completed normally, so a
// late ^C behaves like a plain interrupt again).
func HandleSignals(m *Manager, w io.Writer, settle time.Duration) (stop func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(w, "\n%v: checkpointing to %s (send again to exit immediately) ...\n", sig, m.Path())
		m.RequestFlush()
		go func() {
			if _, ok := <-ch; ok {
				os.Exit(ExitCodeInterrupted)
			}
		}()
		time.Sleep(settle)
		if err := m.Save(); err != nil {
			fmt.Fprintf(w, "checkpoint save failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "checkpoint saved; resume with -resume %s\n", m.Path())
		os.Exit(ExitCodeInterrupted)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}
