package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowbender/internal/sim"
)

func testDesc() Descriptor {
	return Descriptor{Tool: "test", Seed: 7, Scale: "tiny", Shards: 2, CheckpointEvery: int64(5 * sim.Millisecond)}
}

func testFile() *File {
	return &File{
		Descriptor: testDesc(),
		Done:       []Entry{{Name: "alltoall", SHA256: hashOutput("table\n"), Output: "table\n"}},
		Marks: []PointMark{{
			Key:     "alltoall/load=0.4/ECMP/seed=7",
			SimTime: int64(10 * sim.Millisecond),
			Engines: []sim.EngineState{{Now: 10 * sim.Millisecond, Seq: 123, Executed: 100, Pending: 4, QueueDigest: 0xdead}},
		}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := testFile()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if string(wj) != string(gj) {
		t.Fatalf("round trip changed the file:\n want %s\n got  %s", wj, gj)
	}
}

// mutateEnvelope rewrites one envelope field of a saved checkpoint.
func mutateEnvelope(t *testing.T, path string, mutate func(map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	mutate(env)
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(map[string]any)
		wantErr string
	}{
		{"magic", func(e map[string]any) { e["magic"] = "something-else" }, "not a checkpoint file"},
		{"format", func(e map[string]any) { e["format"] = FormatVersion + 1 }, "format version"},
		{"state", func(e map[string]any) { e["state"] = "fb-state-0" }, "simulation state"},
		{"crc", func(e map[string]any) { e["crc32"] = float64(12345) }, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			if err := Save(path, testFile()); err != nil {
				t.Fatal(err)
			}
			mutateEnvelope(t, path, tc.mutate)
			_, err := Load(path)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Load error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, testFile()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a truncated file")
	}
}

func TestManagerLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, err := Create(path, testDesc())
	if err != nil {
		t.Fatal(err)
	}
	if m.Resumed() {
		t.Fatal("fresh manager claims to be resumed")
	}

	// Create refuses to clobber.
	if _, err := Create(path, testDesc()); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("second Create = %v, want already-exists refusal", err)
	}

	mark := PointMark{Key: "p1", SimTime: 5, Engines: []sim.EngineState{{Now: 5, Seq: 9, Executed: 3, Pending: 1, QueueDigest: 42}}}
	m.Mark(mark)
	m.Mark(PointMark{Key: "p1", SimTime: 10, Engines: mark.Engines}) // upsert: latest wins
	m.RecordDone("alltoall", "rendered output\n")
	m.FlagWedged("p2")

	// Resume and check everything came back.
	r, err := Open(path, testDesc())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Resumed() {
		t.Fatal("Open result not marked resumed")
	}
	if e, ok := r.Done("alltoall"); !ok || e.Output != "rendered output\n" {
		t.Fatalf("Done = %+v, %v", e, ok)
	}
	if _, ok := r.Done("table1"); ok {
		t.Fatal("Done returned an unjournaled experiment")
	}
	pm, ok := r.Expected("p1")
	if !ok || pm.SimTime != 10 {
		t.Fatalf("Expected(p1) = %+v, %v; want latest mark (SimTime 10)", pm, ok)
	}
	if pm, ok := r.Expected("p2"); !ok || !pm.Wedged {
		t.Fatalf("Expected(p2) = %+v, %v; want wedged mark", pm, ok)
	}

	// A wedged point that marks again stays flagged.
	r.Mark(PointMark{Key: "p2", SimTime: 3})
	r2, err := Open(path, testDesc())
	if err != nil {
		t.Fatal(err)
	}
	if pm, _ := r2.Expected("p2"); !pm.Wedged {
		t.Fatal("wedged flag was not sticky across a fresh mark")
	}
}

func TestOpenRejectsDescriptorMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := Create(path, testDesc()); err != nil {
		t.Fatal(err)
	}
	d := testDesc()
	d.Seed = 8
	if _, err := Open(path, d); err == nil || !strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("Open with changed seed = %v, want configuration refusal", err)
	}
}

func TestDoneRejectsTamperedOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := testFile()
	f.Done[0].Output = "tampered\n" // hash no longer matches
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path, testDesc())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Done("alltoall"); ok {
		t.Fatal("Done served an entry whose hash does not match")
	}
}

func TestFromFlags(t *testing.T) {
	dir := t.TempDir()
	fresh := filepath.Join(dir, "a.ckpt")

	if m, err := FromFlags("", "", testDesc()); err != nil || m != nil {
		t.Fatalf("FromFlags with no flags = %v, %v", m, err)
	}
	if _, err := FromFlags(fresh, fresh, testDesc()); err == nil {
		t.Fatal("FromFlags accepted both flags at once")
	}
	m, err := FromFlags(fresh, "", testDesc())
	if err != nil || m == nil {
		t.Fatalf("FromFlags create = %v, %v", m, err)
	}
	r, err := FromFlags("", fresh, testDesc())
	if err != nil || r == nil || !r.Resumed() {
		t.Fatalf("FromFlags resume = %v, %v", r, err)
	}
	if _, err := FromFlags("", filepath.Join(dir, "missing.ckpt"), testDesc()); err == nil {
		t.Fatal("FromFlags resumed a missing file")
	}
}
