// Package udp provides a fixed-rate unreliable sender and a byte-counting
// sink. The paper's hotspot experiment (§4.3.1) uses a rate-limited 6 Gbps
// UDP flow pinned to one path (a static hash, i.e. fixed PathTag) to create
// an asymmetric hotspot that FlowBender's TCP traffic must steer around.
// The sender can alternatively spray bursts across paths with a
// core.Sprayer, the paper's §3.4.3 suggestion for UDP load balancing.
package udp

import (
	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
)

// Sender emits fixed-size datagrams at a constant bit rate.
type Sender struct {
	eng  *sim.Engine
	id   netsim.FlowID
	src  *netsim.Host
	dst  *netsim.Host
	rate int64 // bits per second (of wire bytes)
	size int   // payload bytes per datagram

	// PathTag is the static tag used when Sprayer is nil.
	PathTag uint32
	// Sprayer, when set, re-draws the tag every burst (§3.4.3).
	Sprayer *core.Sprayer

	srcPort, dstPort uint16
	// hashPrefix is the flow-constant selector hash state stamped into every
	// datagram (see routing.FlowHashPrefix).
	hashPrefix uint64
	interval   sim.Time
	stopped    bool
	seq        int64
	tickFn     func() // prebuilt so each tick schedules without allocating

	Sent int64 // datagrams emitted
}

// NewSender creates a UDP source from src to dst at rateBps with the given
// payload size per datagram. Call Start to begin.
func NewSender(eng *sim.Engine, id netsim.FlowID, src, dst *netsim.Host, rateBps int64, payload int) *Sender {
	if payload <= 0 {
		payload = 1460
	}
	wire := int64(payload + netsim.HeaderBytes)
	s := &Sender{
		eng:      eng,
		id:       id,
		src:      src,
		dst:      dst,
		rate:     rateBps,
		size:     payload,
		srcPort:  uint16(20000 + (uint64(id)*2654435761)%40000),
		dstPort:  5002,
		interval: sim.Time(wire * 8 * int64(sim.Second) / rateBps),
	}
	s.tickFn = s.tick
	s.hashPrefix = routing.FlowHashPrefix(src.ID(), dst.ID(), s.srcPort, s.dstPort, netsim.ProtoUDP)
	return s
}

// Probe returns a representative (untransmitted) packet with the given path
// tag, for callers that want to predict which port a switch's selector would
// assign this sender's traffic to.
func (s *Sender) Probe(tag uint32) *netsim.Packet {
	return &netsim.Packet{
		Flow: s.id, Src: s.src.ID(), Dst: s.dst.ID(),
		SrcPort: s.srcPort, DstPort: s.dstPort,
		Proto: netsim.ProtoUDP, Kind: netsim.KindData, PathTag: tag,
		Payload: s.size, Size: s.size + netsim.HeaderBytes,
	}
}

// Start begins the periodic transmission.
func (s *Sender) Start() {
	s.stopped = false
	s.tick()
}

// Stop halts transmission after the current datagram.
func (s *Sender) Stop() { s.stopped = true }

func (s *Sender) tick() {
	if s.stopped {
		return
	}
	tag := s.PathTag
	if s.Sprayer != nil {
		tag = s.Sprayer.Tag(s.size)
	}
	pkt := s.src.NewPacket()
	pkt.Flow = s.id
	pkt.Src = s.src.ID()
	pkt.Dst = s.dst.ID()
	pkt.SrcPort = s.srcPort
	pkt.DstPort = s.dstPort
	pkt.Proto = netsim.ProtoUDP
	pkt.Kind = netsim.KindData
	pkt.PathTag = tag
	pkt.HashPrefix = s.hashPrefix
	pkt.HashPrefixOK = true
	pkt.Seq = s.seq
	pkt.Payload = s.size
	pkt.Size = s.size + netsim.HeaderBytes
	pkt.SentAt = s.eng.Now()
	pkt.EchoTS = -1
	s.seq += int64(s.size)
	s.Sent++
	s.src.Send(pkt)
	s.eng.Schedule(s.interval, s.tickFn)
}

// Sink counts arriving datagrams for a flow.
type Sink struct {
	Packets int64
	Bytes   int64
	// OutOfOrder counts datagrams arriving below the highest sequence seen.
	OutOfOrder int64
	maxSeq     int64
}

// NewSink returns a sink; register it on the destination host for the
// sender's flow ID.
func NewSink() *Sink { return &Sink{maxSeq: -1} }

// Deliver implements netsim.Handler.
func (k *Sink) Deliver(pkt *netsim.Packet) {
	k.Packets++
	k.Bytes += int64(pkt.Payload)
	if pkt.Seq < k.maxSeq {
		k.OutOfOrder++
	} else {
		k.maxSeq = pkt.Seq
	}
}
