package udp

import (
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

func hostPair(eng *sim.Engine) (*netsim.Host, *netsim.Host) {
	a := netsim.NewHost(eng, 0, 10_000_000_000, 0)
	b := netsim.NewHost(eng, 1, 10_000_000_000, 0)
	a.NIC.Link = netsim.Link{To: b}
	b.NIC.Link = netsim.Link{To: a}
	return a, b
}

func TestSenderRate(t *testing.T) {
	eng := sim.NewEngine()
	a, b := hostPair(eng)
	s := NewSender(eng, 1, a, b, 6_000_000_000, 1460)
	sink := NewSink()
	b.Register(1, sink)
	s.Start()
	eng.Run(10 * sim.Millisecond)
	s.Stop()
	eng.Run(20 * sim.Millisecond)

	// 6 Gbps of 1500-byte wire datagrams over 10 ms = 7.5 MB.
	gotBps := float64(sink.Packets*1500*8) / 0.010
	if gotBps < 5.8e9 || gotBps > 6.2e9 {
		t.Fatalf("delivered rate %.2f Gbps, want ~6", gotBps/1e9)
	}
	if sink.Bytes != sink.Packets*1460 {
		t.Fatalf("payload accounting wrong: %d bytes, %d pkts", sink.Bytes, sink.Packets)
	}
	if sink.OutOfOrder != 0 {
		t.Fatal("single-path UDP reordered")
	}
}

func TestSenderStop(t *testing.T) {
	eng := sim.NewEngine()
	a, b := hostPair(eng)
	s := NewSender(eng, 1, a, b, 1_000_000_000, 1460)
	b.Register(1, NewSink())
	s.Start()
	eng.Run(sim.Millisecond)
	sent := s.Sent
	s.Stop()
	eng.Run(10 * sim.Millisecond)
	if s.Sent != sent {
		t.Fatalf("sender kept transmitting after Stop: %d -> %d", sent, s.Sent)
	}
}

func TestSprayerChangesTags(t *testing.T) {
	eng := sim.NewEngine()
	a, b := hostPair(eng)
	s := NewSender(eng, 1, a, b, 2_000_000_000, 1460)
	s.Sprayer = core.NewSprayer(8, 16*1024, sim.NewRNG(1))
	tags := map[uint32]bool{}
	sink := NewSink()
	b.Register(1, sink)
	// Observe tags on the wire via a counting handler wrapper is complex;
	// instead watch the sprayer's change counter.
	s.Start()
	eng.Run(2 * sim.Millisecond)
	s.Stop()
	eng.RunUntilIdle()
	if s.Sprayer.Changes < 10 {
		t.Fatalf("sprayer changed tags only %d times", s.Sprayer.Changes)
	}
	_ = tags
}

func TestSinkOutOfOrderAccounting(t *testing.T) {
	sink := NewSink()
	sink.Deliver(&netsim.Packet{Seq: 0, Payload: 100})
	sink.Deliver(&netsim.Packet{Seq: 200, Payload: 100})
	sink.Deliver(&netsim.Packet{Seq: 100, Payload: 100}) // late
	if sink.OutOfOrder != 1 {
		t.Fatalf("OutOfOrder = %d", sink.OutOfOrder)
	}
	if sink.Packets != 3 || sink.Bytes != 300 {
		t.Fatalf("counters wrong: %+v", sink)
	}
}
