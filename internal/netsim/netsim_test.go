package netsim

import (
	"testing"
	"testing/quick"

	"flowbender/internal/sim"
)

func TestQueuePushPopFIFO(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		if !q.Push(&Packet{Seq: int64(i), Size: 100}) {
			t.Fatal("unbounded queue rejected a packet")
		}
	}
	if q.Bytes() != 100*100 || q.Len() != 100 {
		t.Fatalf("bytes=%d len=%d", q.Bytes(), q.Len())
	}
	for i := 0; i < 100; i++ {
		pkt := q.Pop()
		if pkt == nil || pkt.Seq != int64(i) {
			t.Fatalf("pop %d returned %v", i, pkt)
		}
	}
	if q.Pop() != nil || !q.Empty() {
		t.Fatal("queue not empty at end")
	}
}

func TestQueueDropTail(t *testing.T) {
	q := Queue{Cap: 250}
	if !q.Push(&Packet{Size: 100}) || !q.Push(&Packet{Size: 100}) {
		t.Fatal("packets within capacity rejected")
	}
	if q.Push(&Packet{Size: 100}) {
		t.Fatal("over-capacity packet accepted")
	}
	if q.Dropped != 1 {
		t.Fatalf("Dropped = %d", q.Dropped)
	}
	// A smaller packet that fits is still accepted (byte, not slot, limit).
	if !q.Push(&Packet{Size: 50}) {
		t.Fatal("fitting packet rejected after a drop")
	}
}

func TestQueueECNMarking(t *testing.T) {
	q := Queue{MarkK: 150}
	p1 := &Packet{Size: 100, ECT: true}
	q.Push(p1)
	if p1.CE {
		t.Fatal("marked below threshold")
	}
	p2 := &Packet{Size: 100, ECT: true}
	q.Push(p2)
	if !p2.CE {
		t.Fatal("not marked above threshold")
	}
	p3 := &Packet{Size: 100} // not ECN-capable
	q.Push(p3)
	if p3.CE {
		t.Fatal("non-ECT packet marked")
	}
	if q.Marked != 1 {
		t.Fatalf("Marked = %d", q.Marked)
	}
}

// Property: queue byte accounting is exact under any push/pop sequence.
func TestQueueAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q Queue
		want := 0
		n := 0
		for _, op := range ops {
			if op%3 == 0 && n > 0 {
				pkt := q.Pop()
				want -= pkt.Size
				n--
			} else {
				size := int(op)%1400 + 40
				q.Push(&Packet{Size: size})
				want += size
				n++
			}
			if q.Bytes() != want || q.Len() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// sinkDevice records arrivals for link tests.
type sinkDevice struct {
	id  NodeID
	got []*Packet
	at  []sim.Time
	eng *sim.Engine
}

func (d *sinkDevice) ID() NodeID { return d.id }
func (d *sinkDevice) Receive(pkt *Packet, _ int) {
	d.got = append(d.got, pkt)
	d.at = append(d.at, d.eng.Now())
}

func TestPortSerialization(t *testing.T) {
	eng := sim.NewEngine()
	sink := &sinkDevice{id: 1, eng: eng}
	p := NewPort(eng, 1_000_000_000) // 1 Gbps: 1000-byte packet = 8 us
	p.Link = Link{To: sink, Delay: 2 * sim.Microsecond}

	p.Enqueue(&Packet{Size: 1000})
	p.Enqueue(&Packet{Size: 1000})
	eng.RunUntilIdle()

	if len(sink.got) != 2 {
		t.Fatalf("delivered %d packets", len(sink.got))
	}
	// First: 8 us serialization + 2 us propagation; second queued behind.
	if sink.at[0] != 10*sim.Microsecond {
		t.Fatalf("first arrival at %v, want 10us", sink.at[0])
	}
	if sink.at[1] != 18*sim.Microsecond {
		t.Fatalf("second arrival at %v, want 18us", sink.at[1])
	}
	if p.TxPackets != 2 || p.TxBytes[ProtoTCP] != 2000 {
		t.Fatalf("counters: pkts=%d bytes=%d", p.TxPackets, p.TxBytes[ProtoTCP])
	}
}

func TestPortPause(t *testing.T) {
	eng := sim.NewEngine()
	sink := &sinkDevice{id: 1, eng: eng}
	p := NewPort(eng, 1_000_000_000)
	p.Link = Link{To: sink}
	p.SetPaused(true)
	p.Enqueue(&Packet{Size: 1000})
	eng.RunUntilIdle()
	if len(sink.got) != 0 {
		t.Fatal("paused port transmitted")
	}
	p.SetPaused(false)
	eng.RunUntilIdle()
	if len(sink.got) != 1 {
		t.Fatal("resumed port did not transmit")
	}
}

func TestPauseFinishesCurrentPacket(t *testing.T) {
	eng := sim.NewEngine()
	sink := &sinkDevice{id: 1, eng: eng}
	p := NewPort(eng, 1_000_000_000)
	p.Link = Link{To: sink}
	p.Enqueue(&Packet{Size: 1000, Seq: 1})
	p.Enqueue(&Packet{Size: 1000, Seq: 2})
	// Pause mid-serialization of packet 1.
	eng.Schedule(4*sim.Microsecond, func() { p.SetPaused(true) })
	eng.Run(sim.Second)
	if len(sink.got) != 1 || sink.got[0].Seq != 1 {
		t.Fatalf("in-flight packet handling wrong: %d delivered", len(sink.got))
	}
}

func TestLinkDownDropsPackets(t *testing.T) {
	eng := sim.NewEngine()
	sink := &sinkDevice{id: 1, eng: eng}
	p := NewPort(eng, 1_000_000_000)
	p.Link = Link{To: sink}
	p.Link.Down = true
	p.Enqueue(&Packet{Size: 1000})
	eng.RunUntilIdle()
	if len(sink.got) != 0 {
		t.Fatal("down link delivered a packet")
	}
	if p.Link.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d", p.Link.DroppedDown)
	}
}

func TestHostDemux(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 7, 10_000_000_000, 0)
	var got []*Packet
	h.Register(42, handlerFunc(func(pkt *Packet) { got = append(got, pkt) }))
	h.Receive(&Packet{Flow: 42}, 0)
	h.Receive(&Packet{Flow: 43}, 0) // unclaimed
	eng.RunUntilIdle()
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	if h.Unclaimed != 1 {
		t.Fatalf("Unclaimed = %d", h.Unclaimed)
	}
	h.Unregister(42)
	h.Receive(&Packet{Flow: 42}, 0)
	eng.RunUntilIdle()
	if h.Unclaimed != 2 {
		t.Fatal("unregister did not take effect")
	}
}

func TestHostDuplicateRegisterPanics(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 7, 10_000_000_000, 0)
	h.Register(1, handlerFunc(func(*Packet) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	h.Register(1, handlerFunc(func(*Packet) {}))
}

func TestHostDelayApplied(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 7, 10_000_000_000, 20*sim.Microsecond)
	var deliveredAt sim.Time = -1
	h.Register(1, handlerFunc(func(*Packet) { deliveredAt = eng.Now() }))
	h.Receive(&Packet{Flow: 1}, 0)
	eng.RunUntilIdle()
	if deliveredAt != 20*sim.Microsecond {
		t.Fatalf("delivered at %v, want 20us", deliveredAt)
	}
}

type handlerFunc func(*Packet)

func (f handlerFunc) Deliver(pkt *Packet) { f(pkt) }
