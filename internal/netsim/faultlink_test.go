package netsim

import (
	"strings"
	"testing"

	"flowbender/internal/sim"
)

// duplexFixture wires two sink devices with one full-duplex cable.
func duplexFixture() (*sim.Engine, *Duplex, *sinkDevice, *sinkDevice) {
	eng := sim.NewEngine()
	a := &sinkDevice{id: 1, eng: eng}
	b := &sinkDevice{id: 2, eng: eng}
	pa := NewPort(eng, 1_000_000_000)
	pb := NewPort(eng, 1_000_000_000)
	pa.Link = Link{To: b}
	pb.Link = Link{To: a}
	return eng, &Duplex{AtoB: pa, BtoA: pb}, a, b
}

func TestDuplexHalfOpen(t *testing.T) {
	eng, d, a, b := duplexFixture()
	if d.Failed() || d.HalfOpen() {
		t.Fatal("fresh cable reports a failure")
	}
	d.FailAtoB()
	if d.Failed() {
		t.Fatal("half-open cable reported fully Failed")
	}
	if !d.HalfOpen() {
		t.Fatal("HalfOpen not reported")
	}
	// Traffic still flows B->A but not A->B.
	d.AtoB.Enqueue(&Packet{Size: 100})
	d.BtoA.Enqueue(&Packet{Size: 100})
	eng.RunUntilIdle()
	if len(b.got) != 0 {
		t.Fatal("packet crossed the cut direction")
	}
	if len(a.got) != 1 {
		t.Fatal("packet lost on the healthy direction")
	}
	if d.AtoB.Link.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d", d.AtoB.Link.DroppedDown)
	}
	d.FailBtoA()
	if !d.Failed() || d.HalfOpen() {
		t.Fatal("fully cut cable misreported")
	}
	d.Restore()
	if d.Failed() || d.HalfOpen() {
		t.Fatal("restore incomplete")
	}
}

func TestDuplexFailedRequiresBothDirections(t *testing.T) {
	_, d, _, _ := duplexFixture()
	// Regression: Failed used to look only at the A->B direction, so a cut
	// of B->A alone was invisible.
	d.FailBtoA()
	if d.Failed() {
		t.Fatal("B->A-only cut reported as fully Failed")
	}
	if !d.HalfOpen() {
		t.Fatal("B->A-only cut not reported as half-open")
	}
}

func TestLinkTransitionsCounter(t *testing.T) {
	_, d, _, _ := duplexFixture()
	for i := 0; i < 3; i++ {
		d.Fail()
		d.Fail() // idempotent: no extra transition
		d.Restore()
	}
	if got := d.AtoB.Link.Transitions; got != 6 {
		t.Fatalf("A->B transitions = %d, want 6", got)
	}
	if got := d.BtoA.Link.Transitions; got != 6 {
		t.Fatalf("B->A transitions = %d, want 6", got)
	}
}

func TestLinkGrayDrop(t *testing.T) {
	eng, d, _, b := duplexFixture()
	// Deterministic 1-in-3 drop pattern.
	n := 0
	d.AtoB.Link.DropFn = func(*Packet) bool {
		n++
		return n%3 == 0
	}
	for i := 0; i < 9; i++ {
		d.AtoB.Enqueue(&Packet{Size: 100})
	}
	eng.RunUntilIdle()
	if len(b.got) != 6 {
		t.Fatalf("delivered %d packets, want 6", len(b.got))
	}
	if d.AtoB.Link.DroppedGray != 3 {
		t.Fatalf("DroppedGray = %d, want 3", d.AtoB.Link.DroppedGray)
	}
	// A down link drops before the gray hook is consulted.
	d.FailAtoB()
	d.AtoB.Enqueue(&Packet{Size: 100})
	eng.RunUntilIdle()
	if d.AtoB.Link.DroppedGray != 3 || d.AtoB.Link.DroppedDown != 1 {
		t.Fatalf("down-link drop misattributed: gray=%d down=%d",
			d.AtoB.Link.DroppedGray, d.AtoB.Link.DroppedDown)
	}
}

func TestTracePathNamesDownDirection(t *testing.T) {
	h0, _, swA, _ := traceFixture(t)
	swA.Ports[1].Link.Down = true
	_, err := TracePath(h0, &Packet{Src: 0, Dst: 1}, 0)
	if err == nil {
		t.Fatal("trace crossed a failed link")
	}
	// swA (id 2) -> swB (id 3) is the direction that is down.
	if !strings.Contains(err.Error(), "2->3") {
		t.Fatalf("error does not name the down direction: %v", err)
	}
}
