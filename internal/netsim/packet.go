// Package netsim models a store-and-forward packet fabric: hosts, switches,
// links, drop-tail queues with DCTCP-style ECN marking, and optional
// Priority Flow Control (PFC) for lossless operation (used by DeTail).
//
// The fabric is deliberately protocol-agnostic: transports live in
// internal/tcp and internal/udp and exchange *Packet values with the fabric
// through the Host type. Path selection at switches is pluggable through the
// Selector interface (implemented in internal/routing), which is how ECMP,
// RPS, and DeTail differ; FlowBender needs only the ECMP selector because its
// adaptivity lives at the host (the PathTag field below).
package netsim

import (
	"fmt"

	"flowbender/internal/sim"
)

// NodeID identifies a host or switch in the network. Hosts and switches are
// numbered in separate spaces by the topology builder.
type NodeID int32

// FlowID uniquely identifies a transport flow within one simulation.
type FlowID int64

// Proto is the transport protocol of a packet.
type Proto uint8

const (
	// ProtoTCP marks TCP segments (data and ACKs).
	ProtoTCP Proto = iota
	// ProtoUDP marks unreliable datagrams.
	ProtoUDP
	numProtos
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Kind distinguishes data segments from acknowledgments.
type Kind uint8

const (
	// KindData is a payload-carrying segment.
	KindData Kind = iota
	// KindAck is a (payload-free) TCP acknowledgment.
	KindAck
	// KindSyn opens a connection (only when handshake modeling is enabled).
	KindSyn
	// KindSynAck completes the handshake.
	KindSynAck
)

// HeaderBytes is the modeled wire overhead per packet (Ethernet + IP + TCP).
const HeaderBytes = 40

// Packet is one simulated packet. Packets are passed by pointer and are not
// copied as they traverse the fabric; a packet must not be reused by the
// sender after it has been handed to the network.
type Packet struct {
	Flow     FlowID
	Src, Dst NodeID
	SrcPort  uint16
	DstPort  uint16
	Proto    Proto
	Kind     Kind

	// PathTag is the paper's flexible hash field "V" (e.g. TTL or VLAN ID):
	// switches fold it into the ECMP hash, so changing it re-routes the flow.
	PathTag uint32

	// Seq is the first payload byte for data segments, or the cumulative
	// acknowledgment number for ACKs.
	Seq     int64
	Payload int // payload bytes carried
	Size    int // total wire size in bytes (Payload + HeaderBytes)

	ECT  bool // ECN-capable transport
	CE   bool // congestion experienced (set by marking queues)
	ECE  bool // on ACKs: echo of the acked segment's CE bit
	Retx bool // segment is a retransmission (excluded from RTT sampling)

	SentAt sim.Time // virtual time the transport emitted the packet
	EchoTS sim.Time // on ACKs: SentAt of the segment being acknowledged, or -1

	// Sacks carries the receiver's selective-acknowledgment blocks on ACKs:
	// byte ranges above Seq that have been received. Real stacks cap the
	// option at 3-4 blocks; the receiver here reports the blocks nearest
	// the cumulative ACK point, which is what matters for recovery.
	Sacks []SackBlock

	// DSACK marks an ACK triggered by a fully duplicate data segment — the
	// signal (RFC 2883) senders use to detect spurious retransmissions and
	// undo the congestion-window reduction, as Linux does.
	DSACK bool

	// ReorderDist, on ACKs, is how many bytes below the highest received
	// sequence the (original, non-retransmitted) triggering data segment
	// arrived — the receiver-observed reordering depth that lets senders
	// adapt their reordering window, as Linux's SACK-based
	// tcp_update_reordering does.
	ReorderDist int64

	Hops int // switch hops traversed so far, for diagnostics

	// PFC ingress accounting (set by switches with PFC enabled).
	pfcSw *Switch
	pfcIn int
}

func (p *Packet) String() string {
	k := "data"
	if p.Kind == KindAck {
		k = "ack"
	}
	return fmt.Sprintf("%s %s flow=%d %d->%d seq=%d len=%d tag=%d ce=%v",
		p.Proto, k, p.Flow, p.Src, p.Dst, p.Seq, p.Payload, p.PathTag, p.CE)
}

// SackBlock is one selectively acknowledged byte range [Start, End).
type SackBlock struct {
	Start, End int64
}

// Device is anything packets can be delivered to: a Host or a Switch.
type Device interface {
	// ID returns the device's node identifier.
	ID() NodeID
	// Receive accepts a packet arriving on input port inPort.
	Receive(pkt *Packet, inPort int)
}
