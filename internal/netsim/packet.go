// Package netsim models a store-and-forward packet fabric: hosts, switches,
// links, drop-tail queues with DCTCP-style ECN marking, and optional
// Priority Flow Control (PFC) for lossless operation (used by DeTail).
//
// The fabric is deliberately protocol-agnostic: transports live in
// internal/tcp and internal/udp and exchange *Packet values with the fabric
// through the Host type. Path selection at switches is pluggable through the
// Selector interface (implemented in internal/routing), which is how ECMP,
// RPS, and DeTail differ; FlowBender needs only the ECMP selector because its
// adaptivity lives at the host (the PathTag field below).
package netsim

import (
	"fmt"

	"flowbender/internal/sim"
)

// NodeID identifies a host or switch in the network. Hosts and switches are
// numbered in separate spaces by the topology builder.
type NodeID int32

// FlowID uniquely identifies a transport flow within one simulation.
type FlowID int64

// Proto is the transport protocol of a packet.
type Proto uint8

const (
	// ProtoTCP marks TCP segments (data and ACKs).
	ProtoTCP Proto = iota
	// ProtoUDP marks unreliable datagrams.
	ProtoUDP
	numProtos
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Kind distinguishes data segments from acknowledgments.
type Kind uint8

const (
	// KindData is a payload-carrying segment.
	KindData Kind = iota
	// KindAck is a (payload-free) TCP acknowledgment.
	KindAck
	// KindSyn opens a connection (only when handshake modeling is enabled).
	KindSyn
	// KindSynAck completes the handshake.
	KindSynAck
)

// HeaderBytes is the modeled wire overhead per packet (Ethernet + IP + TCP).
const HeaderBytes = 40

// Packet is one simulated packet. Packets are passed by pointer and are not
// copied as they traverse the fabric; a packet must not be reused by the
// sender after it has been handed to the network. Packets drawn from a
// PacketPool (Host.NewPacket) are additionally recycled by the fabric once
// consumed — see the PacketPool ownership contract.
type Packet struct {
	Flow     FlowID
	Src, Dst NodeID
	SrcPort  uint16
	DstPort  uint16
	Proto    Proto
	Kind     Kind

	// PathTag is the paper's flexible hash field "V" (e.g. TTL or VLAN ID):
	// switches fold it into the ECMP hash, so changing it re-routes the flow.
	PathTag uint32

	// HashPrefix, when HashPrefixOK is set, carries the selector hash state
	// after mixing the flow-constant header fields (Src, Dst, SrcPort,
	// DstPort, Proto) — see routing.FlowHashPrefix. Transports stamp it once
	// per endpoint so every switch on the path resumes the hash instead of
	// recomputing the flow-constant half; it also keys the per-switch
	// selector memo cache. Both fields are zeroed by pool recycling, so a
	// recycled packet can never leak a stale prefix.
	HashPrefix   uint64
	HashPrefixOK bool

	// Seq is the first payload byte for data segments, or the cumulative
	// acknowledgment number for ACKs.
	Seq     int64
	Payload int // payload bytes carried
	Size    int // total wire size in bytes (Payload + HeaderBytes)

	ECT  bool // ECN-capable transport
	CE   bool // congestion experienced (set by marking queues)
	ECE  bool // on ACKs: echo of the acked segment's CE bit
	Retx bool // segment is a retransmission (excluded from RTT sampling)

	// Spray asks spray-aware selectors (routing.DiffFlow) to pick this
	// packet's egress per packet instead of per flow. Transports stamp it on
	// every packet of flows below the configured short-flow cutoff
	// (tcp.Config.SprayShortCutoff); selectors that don't differentiate
	// ignore it. Zeroed by pool recycling like every exported field.
	Spray bool

	SentAt sim.Time // virtual time the transport emitted the packet
	EchoTS sim.Time // on ACKs: SentAt of the segment being acknowledged, or -1

	// Sacks carries the receiver's selective-acknowledgment blocks on ACKs:
	// byte ranges above Seq that have been received. Real stacks cap the
	// option at 3-4 blocks; the receiver here reports the blocks nearest
	// the cumulative ACK point, which is what matters for recovery.
	Sacks []SackBlock

	// DSACK marks an ACK triggered by a fully duplicate data segment — the
	// signal (RFC 2883) senders use to detect spurious retransmissions and
	// undo the congestion-window reduction, as Linux does.
	DSACK bool

	// ReorderDist, on ACKs, is how many bytes below the highest received
	// sequence the (original, non-retransmitted) triggering data segment
	// arrived — the receiver-observed reordering depth that lets senders
	// adapt their reordering window, as Linux's SACK-based
	// tcp_update_reordering does.
	ReorderDist int64

	Hops int // switch hops traversed so far, for diagnostics

	// PFC ingress accounting (set by switches with PFC enabled).
	pfcSw *Switch
	pfcIn int

	// Hop-step scratch state: a packet has at most one pending fabric event
	// at a time (propagation, forwarding pipeline, or host delay), so the
	// pending hop is encoded in these fields and dispatched through the
	// single prebuilt stepFn closure instead of a fresh closure per hop.
	// stepFn survives pool recycling, so after warm-up forwarding a packet
	// across the fabric performs zero allocations.
	step     uint8
	stepPort int32
	stepDev  Device
	stepFn   func()

	// Free-list management (see PacketPool).
	owned  bool   // drawn from a pool; recycled at the packet's terminal point
	pooled bool   // currently in the free list (simdebug tripwire)
	gen    uint32 // incremented on each recycle (simdebug diagnostics)
}

// Hop steps a packet can be waiting on. stepIdle (zero) means no pending
// fabric event.
const (
	stepIdle    uint8 = iota
	stepReceive       // link propagation done -> Device.Receive
	stepForward       // switch forwarding pipeline done -> Switch.forward
	stepDeliver       // host ingress delay done -> Host.deliver
	stepEnqueue       // host egress delay done -> NIC enqueue
)

// tagKindTx is the orderTag event class of a port's serialization-complete
// event (Port.finishTx); the packet step kinds above are the other classes.
const tagKindTx = stepEnqueue + 1

// orderTag encodes a fabric event's intrinsic same-instant identity — event
// class, device, port — as a sim ordering tag (3+9+4 bits). Two fabric
// events with equal due time and insertion instant are ordered by this
// identity rather than by engine insertion sequence, which is what makes the
// schedule a property of the simulated network: a sharded run files cross-
// boundary arrivals under the same tag a serial run would, so same-instant
// queue contention resolves identically at any shard count.
//
// The identity is unique per (at, ins): a given input port has exactly one
// upstream transmitter whose serialization spacing forbids two same-instant
// arrivals, a port finishes at most one transmission per instant, and the
// residual collisions (e.g. a host's ingress-vs-egress pipeline events) are
// always shard-local on both sides, where insertion order is already
// reproducible. Oversized identities (fabrics beyond 512 nodes or 16 ports,
// which the shard partitioner refuses) degrade to TagNone, i.e. to plain
// insertion order.
func orderTag(kind uint8, dev NodeID, port int) uint16 {
	if dev < 0 || dev >= 1<<9 || port < 0 || port >= 1<<4 {
		return sim.TagNone
	}
	return uint16(kind)<<13 | uint16(dev)<<4 | uint16(port)
}

// scheduleStep arms the packet's single pending hop: after d, dev is invoked
// per step. The one-pending-event invariant holds because each fabric stage
// schedules the next only from inside the previous stage's completion.
func (p *Packet) scheduleStep(eng *sim.Engine, d sim.Time, step uint8, dev Device, port int) {
	p.step, p.stepDev, p.stepPort = step, dev, int32(port)
	if p.stepFn == nil {
		p.stepFn = p.runStep
	}
	now := eng.Now()
	eng.AtTagged(now+d, now, orderTag(step, dev.ID(), port), p.stepFn)
}

// scheduleStepAt is scheduleStep with an absolute due time and insertion
// stamp, used when a packet is injected across a shard boundary: the arrival
// happened at a past instant `stamp` of the producing shard's clock, so its
// effect must land at arrival-time-plus-delay rather than now-plus-delay,
// and must tie-break against same-due-time events exactly as a serial run
// would — same insertion instant, same (step, device, port) tag.
func (p *Packet) scheduleStepAt(eng *sim.Engine, at, stamp sim.Time, step uint8, dev Device, port int) {
	p.step, p.stepDev, p.stepPort = step, dev, int32(port)
	if p.stepFn == nil {
		p.stepFn = p.runStep
	}
	eng.AtTagged(at, stamp, orderTag(step, dev.ID(), port), p.stepFn)
}

func (p *Packet) runStep() {
	step, dev, port := p.step, p.stepDev, int(p.stepPort)
	// Clear before dispatch: the step may end in the pool, which must not
	// retain device references.
	p.step, p.stepDev = stepIdle, nil
	switch step {
	case stepReceive:
		dev.Receive(p, port)
	case stepForward:
		dev.(*Switch).forward(p)
	case stepDeliver:
		dev.(*Host).deliver(p)
	case stepEnqueue:
		dev.(*Host).NIC.Enqueue(p)
	}
}

func (p *Packet) String() string {
	k := "data"
	if p.Kind == KindAck {
		k = "ack"
	}
	return fmt.Sprintf("%s %s flow=%d %d->%d seq=%d len=%d tag=%d ce=%v",
		p.Proto, k, p.Flow, p.Src, p.Dst, p.Seq, p.Payload, p.PathTag, p.CE)
}

// SackBlock is one selectively acknowledged byte range [Start, End).
type SackBlock struct {
	Start, End int64
}

// Device is anything packets can be delivered to: a Host or a Switch.
type Device interface {
	// ID returns the device's node identifier.
	ID() NodeID
	// Receive accepts a packet arriving on input port inPort.
	Receive(pkt *Packet, inPort int)
}
