//go:build simdebug

package netsim

import (
	"strings"
	"testing"

	"flowbender/internal/sim"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v; want substring %q", r, want)
		}
	}()
	fn()
}

// A mailbox whose contents bypass the merge sort must trip the order check:
// out-of-order injection would assign engine insertion sequences that differ
// from serial execution, silently breaking bit-identity.
func TestSimdebugCrossMergeOrderTripwire(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 0, 10_000_000_000, 20*sim.Microsecond)
	msgs := []CrossMsg{
		{At: 2000, Pkt: h.NewPacket(), Dst: h},
		{At: 1000, Pkt: h.NewPacket(), Dst: h}, // deliberately out of order
	}
	mustPanic(t, "out of merge order", func() { applyCross(msgs, 1000) })
}

// An arrival whose effect lands inside the window must trip the lookahead
// check: it means the bounded-lag window was wider than the fabric's true
// minimum cross-shard delay, i.e. the consuming shard's clock may already
// have passed the effect time.
func TestSimdebugCrossLookaheadTripwire(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 0, 10_000_000_000, 20*sim.Microsecond)
	msgs := []CrossMsg{{At: 1000, Pkt: h.NewPacket(), Dst: h}}
	// Effect at 1000 + 20µs; claim the window extends far beyond it.
	mustPanic(t, "lookahead violated", func() { applyCross(msgs, 1000+40*sim.Microsecond) })
}

// The happy path must not trip either check.
func TestSimdebugCrossMergeClean(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 0, 10_000_000_000, 20*sim.Microsecond)
	msgs := []CrossMsg{
		{At: 1000, Pkt: h.NewPacket(), Dst: h},
		{At: 2000, Pkt: h.NewPacket(), Dst: h},
	}
	MergeCross(msgs, 1000)
	if got := eng.Pending(); got != 2 {
		t.Fatalf("merged %d events; want 2", got)
	}
}
