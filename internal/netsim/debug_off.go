//go:build !simdebug

package netsim

import "flowbender/internal/sim"

// debugCheckLive, debugAlloc, debugPoison, and debugDoubleFree are no-ops in
// release builds, so the pool tripwires cost nothing on the hot path. Build
// with `-tags simdebug` for the checked versions, which panic on any use of
// a recycled packet.
func (p *Packet) debugCheckLive(string) {}

func (p *Packet) debugAlloc()      {}
func (p *Packet) debugPoison()     {}
func (p *Packet) debugDoubleFree() {}

// debugCheckSelect is a no-op in release builds; with -tags simdebug every
// selector-memo hit is cross-checked against a fresh Select call.
func (s *Switch) debugCheckSelect(*Packet, []int32, int32) {}

// debugCheckCross is a no-op in release builds; with -tags simdebug every
// cross-shard merge verifies the lookahead bound and the mailbox merge
// order.
func debugCheckCross([]CrossMsg, int, sim.Time) {}
