package netsim

import (
	"testing"

	"flowbender/internal/sim"
)

// sharedBufSwitch builds a 3-port switch (two sources in, one slow egress)
// with a shared pool.
func TestSharedBufferBoundsTotal(t *testing.T) {
	eng := sim.NewEngine()
	rate := int64(10_000_000_000)
	cfg := SwitchConfig{QueueCap: 1 << 30, SharedBuffer: 10_000}
	sw := NewSwitch(eng, 9, 2, rate, cfg)
	dst := NewHost(eng, 1, rate, 0)
	src := NewHost(eng, 0, rate, 0)
	WireHost(src, sw, 0, 0)
	WireHost(dst, sw, 1, 0)
	sw.SetRoutes([][]int32{0: {0}, 1: {1}})
	sw.Ports[1].RateBps = 10_000_000 // severe bottleneck: queue builds

	var got int
	dst.Register(1, handlerFunc(func(*Packet) { got++ }))
	for i := 0; i < 100; i++ {
		src.Send(&Packet{Flow: 1, Dst: 1, Size: 1000})
	}
	eng.Run(sim.Second)

	if sw.DropsNoBuf == 0 {
		t.Fatal("no drops despite shared pool exhaustion")
	}
	if got+int(sw.DropsNoBuf) != 100 {
		t.Fatalf("conservation: %d delivered + %d dropped != 100", got, sw.DropsNoBuf)
	}
	// The high-water occupancy of the egress queue can never exceed the
	// shared pool.
	if sw.Ports[1].Q.MaxBytes > 10_000 {
		t.Fatalf("queue exceeded shared pool: %d", sw.Ports[1].Q.MaxBytes)
	}
	eng.RunUntilIdle()
	if sw.BufferedBytes() != 0 {
		t.Fatalf("buffer accounting leak: %d bytes after drain", sw.BufferedBytes())
	}
}

func TestSharedBufferAccountsAcrossPorts(t *testing.T) {
	eng := sim.NewEngine()
	rate := int64(10_000_000_000)
	cfg := SwitchConfig{QueueCap: 1 << 30, SharedBuffer: 5_000}
	sw := NewSwitch(eng, 9, 3, rate, cfg)
	src := NewHost(eng, 0, rate, 0)
	d1 := NewHost(eng, 1, rate, 0)
	d2 := NewHost(eng, 2, rate, 0)
	WireHost(src, sw, 0, 0)
	WireHost(d1, sw, 1, 0)
	WireHost(d2, sw, 2, 0)
	sw.SetRoutes([][]int32{0: {0}, 1: {1}, 2: {2}})
	sw.Ports[1].RateBps = 1_000_000
	sw.Ports[2].RateBps = 1_000_000
	d1.Register(1, handlerFunc(func(*Packet) {}))
	d2.Register(2, handlerFunc(func(*Packet) {}))

	// Fill both egress queues from one input: the POOL must limit the sum.
	for i := 0; i < 20; i++ {
		src.Send(&Packet{Flow: 1, Dst: 1, Size: 1000})
		src.Send(&Packet{Flow: 2, Dst: 2, Size: 1000})
	}
	eng.Run(10 * sim.Millisecond)
	sum := sw.Ports[1].Q.MaxBytes + sw.Ports[2].Q.MaxBytes
	if sum > 5_000+2_000 { // pool + one serializing packet per port
		t.Fatalf("combined occupancy %d exceeded the shared pool", sum)
	}
	if sw.DropsNoBuf == 0 {
		t.Fatal("pool never rejected anything")
	}
}
