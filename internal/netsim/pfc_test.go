package netsim

import (
	"testing"

	"flowbender/internal/sim"
)

// twoSwitchLine builds host -> swA -> swB -> host with PFC enabled and
// returns the pieces.
func twoSwitchLine(t *testing.T, pfc *PFCConfig, rate int64) (*sim.Engine, *Host, *Switch, *Switch, *Host) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := SwitchConfig{QueueCap: 1 << 20, PFC: pfc}
	src := NewHost(eng, 0, rate, 0)
	dst := NewHost(eng, 1, rate, 0)
	// Port 0 of each switch faces the host side, port 1 the other switch.
	swA := NewSwitch(eng, 2, 2, rate, cfg)
	swB := NewSwitch(eng, 3, 2, rate, cfg)
	WireHost(src, swA, 0, 0)
	WireSwitches(swA, 1, swB, 0, 0)
	WireHost(dst, swB, 1, 0)
	// Routing: host 1 behind swB port 1; host 0 behind swA port 0.
	swA.SetRoutes([][]int32{0: {0}, 1: {1}})
	swB.SetRoutes([][]int32{0: {0}, 1: {1}})
	return eng, src, swA, swB, dst
}

func TestPFCLossless(t *testing.T) {
	// Slow the receiver's last hop by giving swB's egress to dst a slower
	// drain: emulate by a 10x slower rate on that port.
	eng, src, swA, swB, dst := twoSwitchLine(t, &PFCConfig{Pause: 5000, Unpause: 2500}, 10_000_000_000)
	swB.Ports[1].RateBps = 1_000_000_000 // bottleneck

	var got int
	dst.Register(1, handlerFunc(func(*Packet) { got++ }))
	// Blast 200 packets line-rate from the source.
	for i := 0; i < 200; i++ {
		src.Send(&Packet{Flow: 1, Dst: 1, Size: 1500})
	}
	eng.RunUntilIdle()

	if got != 200 {
		t.Fatalf("lossless fabric delivered %d/200", got)
	}
	if swA.DropsNoBuf != 0 || swB.DropsNoBuf != 0 {
		t.Fatal("PFC fabric dropped packets")
	}
	if swB.PauseEvents == 0 {
		t.Fatal("bottleneck never generated a pause")
	}
}

func TestPFCBackpressurePausesUpstream(t *testing.T) {
	eng, src, _, swB, dst := twoSwitchLine(t, &PFCConfig{Pause: 3000, Unpause: 1500}, 10_000_000_000)
	swB.Ports[1].RateBps = 100_000_000 // severe bottleneck

	dst.Register(1, handlerFunc(func(*Packet) {}))
	for i := 0; i < 50; i++ {
		src.Send(&Packet{Flow: 1, Dst: 1, Size: 1500})
	}
	// Run briefly: swB's ingress should exceed the pause threshold and pause
	// swA's egress toward swB.
	eng.Run(sim.Millisecond)
	paused := swB.pausedUp[0]
	if !paused {
		t.Fatal("upstream port not paused under backpressure")
	}
	eng.RunUntilIdle()
	if swB.pausedUp[0] {
		t.Fatal("pause not released after drain")
	}
}

func TestNonPFCDropsWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	rate := int64(10_000_000_000)
	cfg := SwitchConfig{QueueCap: 5000} // ~3 packets
	src := NewHost(eng, 0, rate, 0)
	dst := NewHost(eng, 1, rate, 0)
	sw := NewSwitch(eng, 2, 2, rate, cfg)
	WireHost(src, sw, 0, 0)
	WireHost(dst, sw, 1, 0)
	sw.SetRoutes([][]int32{0: {0}, 1: {1}})
	sw.Ports[1].RateBps = 100_000_000

	var got int
	dst.Register(1, handlerFunc(func(*Packet) { got++ }))
	for i := 0; i < 50; i++ {
		src.Send(&Packet{Flow: 1, Dst: 1, Size: 1500})
	}
	eng.RunUntilIdle()
	if sw.DropsNoBuf == 0 {
		t.Fatal("expected drop-tail drops on the bottleneck")
	}
	if got+int(sw.DropsNoBuf) != 50 {
		t.Fatalf("conservation violated: delivered %d + dropped %d != 50", got, sw.DropsNoBuf)
	}
}

func TestSwitchHopCount(t *testing.T) {
	eng, src, _, _, dst := twoSwitchLine(t, nil, 10_000_000_000)
	var hops int
	dst.Register(1, handlerFunc(func(pkt *Packet) { hops = pkt.Hops }))
	src.Send(&Packet{Flow: 1, Dst: 1, Size: 100})
	eng.RunUntilIdle()
	if hops != 2 {
		t.Fatalf("hops = %d, want 2", hops)
	}
}
