package netsim

import (
	"testing"

	"flowbender/internal/sim"
)

func TestPacketPoolRecycle(t *testing.T) {
	pl := NewPacketPool()
	p1 := pl.Get()
	p1.Seq = 42
	p1.Sacks = append(p1.Sacks, SackBlock{Start: 1, End: 2})
	p1.CE = true
	p1.Hops = 3
	sackCap := cap(p1.Sacks)
	pl.Put(p1)

	// LIFO reuse: the same object comes back, fully zeroed, with the Sacks
	// backing array retained.
	p2 := pl.Get()
	if p2 != p1 {
		t.Fatal("pool did not recycle the freed packet")
	}
	if p2.Seq != 0 || p2.CE || p2.Hops != 0 || len(p2.Sacks) != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", p2)
	}
	if cap(p2.Sacks) != sackCap {
		t.Fatalf("Sacks capacity not retained: %d, want %d", cap(p2.Sacks), sackCap)
	}
	if pl.Gets != 2 || pl.Puts != 1 || pl.Misses != 1 || pl.Live() != 1 {
		t.Fatalf("counters: gets=%d puts=%d misses=%d live=%d", pl.Gets, pl.Puts, pl.Misses, pl.Live())
	}
}

func TestPacketPoolNilSafe(t *testing.T) {
	var pl *PacketPool
	pkt := pl.Get()
	if pkt == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pl.Put(pkt) // no-op
	if pl.Live() != 0 {
		t.Fatal("nil pool Live != 0")
	}
}

// Packets built with composite literals (tests, tools, udp.Probe) must pass
// through pooled fabrics untouched: Put ignores them.
func TestPacketPoolIgnoresForeignPackets(t *testing.T) {
	pl := NewPacketPool()
	foreign := &Packet{Seq: 9}
	pl.Put(foreign)
	if pl.Puts != 0 || foreign.Seq != 9 {
		t.Fatalf("pool recycled a foreign packet (puts=%d, seq=%d)", pl.Puts, foreign.Seq)
	}
}

func TestPacketPoolDoubleFree(t *testing.T) {
	if sim.Debug {
		t.Skip("simdebug panics on double free (TestSimdebugPacketTripwires)")
	}
	pl := NewPacketPool()
	pkt := pl.Get()
	pl.Put(pkt)
	pl.Put(pkt) // release builds: ignored, free list stays consistent
	if pl.Puts != 1 {
		t.Fatalf("double free recorded twice (puts=%d)", pl.Puts)
	}
	a, b := pl.Get(), pl.Get()
	if a == b {
		t.Fatal("double free aliased two live packets")
	}
}

// End-to-end recycling through a minimal pooled fabric: host -> switch ->
// host, with the delivered packet recycled after the handler returns and the
// pool's live count returning to zero.
func TestFabricRecyclesPackets(t *testing.T) {
	eng := sim.NewEngine()
	pl := NewPacketPool()
	src := NewHost(eng, 0, 10_000_000_000, 0)
	dst := NewHost(eng, 1, 10_000_000_000, 0)
	sw := NewSwitch(eng, 2, 2, 10_000_000_000, SwitchConfig{})
	WireHost(src, sw, 0, sim.Microsecond)
	WireHost(dst, sw, 1, sim.Microsecond)
	sw.SetRoutes([][]int32{{0}, {1}})
	src.UsePool(pl)
	dst.UsePool(pl)
	sw.UsePool(pl)

	delivered := 0
	dst.Register(7, handlerFunc(func(pkt *Packet) {
		if pkt.Seq != int64(delivered)*100 {
			t.Errorf("payload corrupted: seq=%d, want %d", pkt.Seq, delivered*100)
		}
		delivered++
	}))
	for i := 0; i < 50; i++ {
		pkt := src.NewPacket()
		pkt.Flow = 7
		pkt.Dst = 1
		pkt.Seq = int64(i) * 100
		pkt.Size = 1000
		src.Send(pkt)
		eng.RunUntilIdle()
	}
	if delivered != 50 {
		t.Fatalf("delivered %d packets, want 50", delivered)
	}
	if pl.Live() != 0 {
		t.Fatalf("pool leaked: %d packets still live", pl.Live())
	}
	// Sequential sends reuse one warm packet: only the first Get misses.
	if pl.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (recycling broken)", pl.Misses)
	}
}

// Packets dropped inside the fabric (full queue, down link, gray link, no
// route) must be recycled at the drop site, not leaked.
func TestDropSitesRecyclePackets(t *testing.T) {
	eng := sim.NewEngine()
	pl := NewPacketPool()
	src := NewHost(eng, 0, 10_000_000_000, 0)
	dst := NewHost(eng, 1, 10_000_000_000, 0)
	sw := NewSwitch(eng, 2, 2, 10_000_000_000, SwitchConfig{QueueCap: 1500})
	WireHost(src, sw, 0, 0)
	WireHost(dst, sw, 1, 0)
	sw.SetRoutes([][]int32{{0}, {1}})
	src.UsePool(pl)
	dst.UsePool(pl)
	sw.UsePool(pl)

	dst.Register(7, handlerFunc(func(*Packet) {}))

	// Queue overflow: a slow egress port makes the burst overrun the
	// 1500-byte cap.
	sw.Ports[1].RateBps = 1_000_000_000
	for i := 0; i < 10; i++ {
		pkt := src.NewPacket()
		pkt.Flow = 7
		pkt.Dst = 1
		pkt.Size = 1000
		src.Send(pkt)
	}
	eng.RunUntilIdle()
	if sw.Ports[1].Q.Dropped == 0 {
		t.Fatal("expected queue drops")
	}
	if pl.Live() != 0 {
		t.Fatalf("queue drops leaked %d packets", pl.Live())
	}

	// Down link.
	sw.Ports[1].Link.SetDown(true)
	pkt := src.NewPacket()
	pkt.Flow = 7
	pkt.Dst = 1
	pkt.Size = 1000
	src.Send(pkt)
	eng.RunUntilIdle()
	if sw.Ports[1].Link.DroppedDown != 1 || pl.Live() != 0 {
		t.Fatalf("down-link drop leaked (droppedDown=%d live=%d)",
			sw.Ports[1].Link.DroppedDown, pl.Live())
	}
	sw.Ports[1].Link.SetDown(false)

	// Gray link.
	sw.Ports[1].Link.DropFn = func(*Packet) bool { return true }
	pkt = src.NewPacket()
	pkt.Flow = 7
	pkt.Dst = 1
	pkt.Size = 1000
	src.Send(pkt)
	eng.RunUntilIdle()
	if sw.Ports[1].Link.DroppedGray != 1 || pl.Live() != 0 {
		t.Fatalf("gray drop leaked (droppedGray=%d live=%d)",
			sw.Ports[1].Link.DroppedGray, pl.Live())
	}
	sw.Ports[1].Link.DropFn = nil

	// No route.
	sw.SetRoutes([][]int32{{0}, {}})
	pkt = src.NewPacket()
	pkt.Flow = 7
	pkt.Dst = 1
	pkt.Size = 1000
	src.Send(pkt)
	eng.RunUntilIdle()
	if sw.NoRoute != 1 || pl.Live() != 0 {
		t.Fatalf("no-route drop leaked (noRoute=%d live=%d)", sw.NoRoute, pl.Live())
	}
}

// Under -tags simdebug, retaining a pooled packet past its terminal point
// and re-injecting it panics at the fabric entry points.
func TestSimdebugPacketTripwires(t *testing.T) {
	if !sim.Debug {
		t.Skip("requires -tags simdebug")
	}
	eng := sim.NewEngine()
	pl := NewPacketPool()
	h := NewHost(eng, 0, 10_000_000_000, 0)
	h.UsePool(pl)
	h.Register(1, handlerFunc(func(*Packet) {}))

	pkt := h.NewPacket()
	pkt.Flow = 1
	h.Receive(pkt, 0) // delivered synchronously, then recycled

	mustPanicNetsim(t, "Send of recycled packet", func() { h.Send(pkt) })
	mustPanicNetsim(t, "Receive of recycled packet", func() { h.Receive(pkt, 0) })
	mustPanicNetsim(t, "Enqueue of recycled packet", func() { h.NIC.Enqueue(pkt) })
	mustPanicNetsim(t, "double free", func() { pl.Put(pkt) })
}

func mustPanicNetsim(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}
