package netsim

import "flowbender/internal/sim"

// Duplex is a handle to a full-duplex cable between two devices, usable to
// inject failures (both directions at once, as a cut cable behaves).
type Duplex struct {
	AtoB *Port // a's egress toward b
	BtoA *Port // b's egress toward a
}

// Fail cuts the cable: packets serialized onto either direction are lost.
// Switch forwarding tables are deliberately left stale, modeling the
// O(seconds) routing reconvergence the paper contrasts against FlowBender's
// O(RTO) end-to-end recovery.
func (d *Duplex) Fail() {
	d.AtoB.Link.Down = true
	d.BtoA.Link.Down = true
}

// Restore brings the cable back up.
func (d *Duplex) Restore() {
	d.AtoB.Link.Down = false
	d.BtoA.Link.Down = false
}

// Failed reports whether the cable is currently down.
func (d *Duplex) Failed() bool { return d.AtoB.Link.Down }

// WireSwitches connects egress port ap of a to input/egress port bp of b in
// both directions with the given propagation delay. Port rates were fixed at
// switch construction.
func WireSwitches(a *Switch, ap int, b *Switch, bp int, delay sim.Time) *Duplex {
	a.Ports[ap].Link = Link{To: b, ToPort: bp, Delay: delay}
	b.Ports[bp].Link = Link{To: a, ToPort: ap, Delay: delay}
	a.upstream[ap] = b.Ports[bp]
	b.upstream[bp] = a.Ports[ap]
	return &Duplex{AtoB: a.Ports[ap], BtoA: b.Ports[bp]}
}

// WireHost connects host h to switch port sp of sw in both directions.
func WireHost(h *Host, sw *Switch, sp int, delay sim.Time) *Duplex {
	h.NIC.Link = Link{To: sw, ToPort: sp, Delay: delay}
	sw.Ports[sp].Link = Link{To: h, ToPort: 0, Delay: delay}
	sw.upstream[sp] = h.NIC
	return &Duplex{AtoB: h.NIC, BtoA: sw.Ports[sp]}
}
