package netsim

import "flowbender/internal/sim"

// Duplex is a handle to a full-duplex cable between two devices, usable to
// inject failures (both directions at once, as a cut cable behaves).
type Duplex struct {
	AtoB *Port // a's egress toward b
	BtoA *Port // b's egress toward a
}

// Fail cuts the cable: packets serialized onto either direction are lost.
// Switch forwarding tables are deliberately left stale, modeling the
// O(seconds) routing reconvergence the paper contrasts against FlowBender's
// O(RTO) end-to-end recovery.
func (d *Duplex) Fail() {
	d.AtoB.Link.SetDown(true)
	d.BtoA.Link.SetDown(true)
}

// Restore brings the cable back up (both directions).
func (d *Duplex) Restore() {
	d.AtoB.Link.SetDown(false)
	d.BtoA.Link.SetDown(false)
}

// FailAtoB cuts only the A-to-B direction (a half-open failure: traffic
// still flows B-to-A). FailBtoA is its mirror.
func (d *Duplex) FailAtoB() { d.AtoB.Link.SetDown(true) }

// FailBtoA cuts only the B-to-A direction.
func (d *Duplex) FailBtoA() { d.BtoA.Link.SetDown(true) }

// Failed reports whether the cable is fully down: both directions cut. A
// half-open cable (one direction down) is NOT Failed — use HalfOpen to
// detect it.
func (d *Duplex) Failed() bool { return d.AtoB.Link.Down && d.BtoA.Link.Down }

// HalfOpen reports whether exactly one direction of the cable is down — the
// half-open failure mode where data flows one way but nothing returns.
func (d *Duplex) HalfOpen() bool { return d.AtoB.Link.Down != d.BtoA.Link.Down }

// WireSwitches connects egress port ap of a to input/egress port bp of b in
// both directions with the given propagation delay. Port rates were fixed at
// switch construction.
func WireSwitches(a *Switch, ap int, b *Switch, bp int, delay sim.Time) *Duplex {
	a.Ports[ap].Link = Link{To: b, ToPort: bp, Delay: delay}
	b.Ports[bp].Link = Link{To: a, ToPort: ap, Delay: delay}
	a.upstream[ap] = b.Ports[bp]
	b.upstream[bp] = a.Ports[ap]
	return &Duplex{AtoB: a.Ports[ap], BtoA: b.Ports[bp]}
}

// WireHost connects host h to switch port sp of sw in both directions.
func WireHost(h *Host, sw *Switch, sp int, delay sim.Time) *Duplex {
	h.NIC.Link = Link{To: sw, ToPort: sp, Delay: delay}
	sw.Ports[sp].Link = Link{To: h, ToPort: 0, Delay: delay}
	sw.upstream[sp] = h.NIC
	return &Duplex{AtoB: h.NIC, BtoA: sw.Ports[sp]}
}
