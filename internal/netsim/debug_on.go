//go:build simdebug

package netsim

import "fmt"

// poisonSeq is written into recycled packets so stale reads see an absurd
// sequence number even if they bypass the panics below.
const poisonSeq int64 = -0x5151515151515151

// debugCheckLive panics when a packet that sits in a pool's free list is
// handed back to the fabric — a use-after-free that silently corrupts runs
// in release builds if a caller violates the ownership contract. The fabric
// calls it at every packet entry point (Host.Send/Receive, Switch.Receive,
// Port.Enqueue).
func (p *Packet) debugCheckLive(site string) {
	if p.pooled {
		panic(fmt.Sprintf("netsim: %s on recycled packet (gen %d): packet retained after delivery or drop", site, p.gen))
	}
}

// debugAlloc validates a packet coming off the free list and clears the
// poison so callers see a fully zeroed packet.
func (p *Packet) debugAlloc() {
	if !p.pooled {
		panic(fmt.Sprintf("netsim: free list returned a live packet (gen %d)", p.gen))
	}
	if p.Seq != poisonSeq {
		panic(fmt.Sprintf("netsim: free-list packet not poisoned (seq=%d, gen %d): double release or external write", p.Seq, p.gen))
	}
	p.Seq = 0
}

// debugPoison marks a packet as it enters the free list.
func (p *Packet) debugPoison() {
	p.Seq = poisonSeq
}

// debugDoubleFree panics on a second Put of the same packet.
func (p *Packet) debugDoubleFree() {
	panic(fmt.Sprintf("netsim: double free of packet (gen %d)", p.gen))
}
