//go:build simdebug

package netsim

import (
	"fmt"

	"flowbender/internal/sim"
)

// poisonSeq is written into recycled packets so stale reads see an absurd
// sequence number even if they bypass the panics below.
const poisonSeq int64 = -0x5151515151515151

// debugCheckLive panics when a packet that sits in a pool's free list is
// handed back to the fabric — a use-after-free that silently corrupts runs
// in release builds if a caller violates the ownership contract. The fabric
// calls it at every packet entry point (Host.Send/Receive, Switch.Receive,
// Port.Enqueue).
func (p *Packet) debugCheckLive(site string) {
	if p.pooled {
		panic(fmt.Sprintf("netsim: %s on recycled packet (gen %d): packet retained after delivery or drop", site, p.gen))
	}
}

// debugAlloc validates a packet coming off the free list and clears the
// poison so callers see a fully zeroed packet.
func (p *Packet) debugAlloc() {
	if !p.pooled {
		panic(fmt.Sprintf("netsim: free list returned a live packet (gen %d)", p.gen))
	}
	if p.Seq != poisonSeq {
		panic(fmt.Sprintf("netsim: free-list packet not poisoned (seq=%d, gen %d): double release or external write", p.Seq, p.gen))
	}
	p.Seq = 0
}

// debugPoison marks a packet as it enters the free list.
func (p *Packet) debugPoison() {
	p.Seq = poisonSeq
}

// debugDoubleFree panics on a second Put of the same packet.
func (p *Packet) debugDoubleFree() {
	panic(fmt.Sprintf("netsim: double free of packet (gen %d)", p.gen))
}

// debugCheckSelect cross-checks a memoized selector choice against a fresh
// Select call. The cache is only consulted for cacheable (pure) selectors,
// so the recomputation is side-effect-free. A divergence means the memo key
// missed a dependency of the selector's choice, or an invalidation (route or
// selector change) failed to bump the generation — either would silently
// misroute flows in release builds.
func (s *Switch) debugCheckSelect(pkt *Packet, eligible []int32, cached int32) {
	want := s.sel.Select(s, pkt, eligible)
	if want != cached {
		panic(fmt.Sprintf(
			"netsim: selector memo divergence at switch %d: cached port %d, recomputed %d (flow %d dst %d tag %d gen %d)",
			s.id, cached, want, pkt.Flow, pkt.Dst, pkt.PathTag, s.selGen))
	}
}

// debugCheckCross validates one cross-shard arrival at merge time:
//
//  1. Lookahead: the arrival's scheduled effect (forward at +FwdDelay,
//     deliver at +HostDelay) must land at or after the window boundary. A
//     violation means the bounded-lag window was wider than the fabric's true
//     minimum cross-shard delay — the consuming shard's clock has already
//     passed the effect time, and release builds would corrupt causality.
//  2. Merge order: the mailbox contents must arrive in strictly increasing
//     (time, destination, port) key order; a violation means a mailbox was
//     mutated outside the barrier protocol or the sort was bypassed, either
//     of which silently breaks bit-identity with serial execution.
func debugCheckCross(msgs []CrossMsg, i int, windowEnd sim.Time) {
	m := &msgs[i]
	effect := m.At
	switch d := m.Dst.(type) {
	case *Switch:
		effect += d.cfg.FwdDelay
	case *Host:
		effect += d.Delay
	}
	if effect < windowEnd {
		panic(fmt.Sprintf(
			"netsim: shard lookahead violated: cross-shard arrival at %d has effect at %d before window end %d (dst %d port %d)",
			m.At, effect, windowEnd, m.Dst.ID(), m.InPort))
	}
	if i > 0 && !crossKeyLess(msgs[i-1], *m) {
		panic(fmt.Sprintf(
			"netsim: cross-shard mailbox out of merge order at index %d (dst %d port %d at %d)",
			i, m.Dst.ID(), m.InPort, m.At))
	}
}

// DebugPokeSelectCache plants a (deliberately wrong) memoized choice for
// pkt's key under the cache's current generation, as if an invalidation had
// been missed. Only the simdebug build has it: tests use it to prove the
// cross-check above actually fires. Panics if the switch has no memo cache.
func (s *Switch) DebugPokeSelectCache(pkt *Packet, port int32) {
	if s.selCache == nil {
		panic("netsim: DebugPokeSelectCache on a switch without a selector memo cache")
	}
	sl := &s.selCache[selCacheIndex(pkt.HashPrefix, pkt.Dst, pkt.PathTag)]
	*sl = selSlot{prefix: pkt.HashPrefix, dst: pkt.Dst, tag: pkt.PathTag, gen: s.selGen, port: port}
}
