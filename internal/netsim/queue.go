package netsim

// Queue is a FIFO byte-bounded drop-tail packet queue with DCTCP-style ECN
// marking: every ECN-capable packet that arrives while the (post-arrival)
// occupancy exceeds MarkK bytes has its CE bit set, mirroring the
// instantaneous single-threshold marking DCTCP configures on commodity
// switches.
type Queue struct {
	// Cap is the maximum occupancy in bytes; 0 means unbounded (lossless).
	Cap int
	// MarkK is the ECN marking threshold in bytes; 0 disables marking.
	MarkK int

	bytes int
	buf   []*Packet
	head  int

	// Counters.
	Enqueued int64
	Dropped  int64
	Marked   int64
	MaxBytes int
}

// Push appends pkt, marking its CE bit if the queue exceeds MarkK. It
// returns false (and counts a drop) if the packet does not fit.
func (q *Queue) Push(pkt *Packet) bool {
	if q.Cap > 0 && q.bytes+pkt.Size > q.Cap {
		q.Dropped++
		return false
	}
	q.bytes += pkt.Size
	if q.bytes > q.MaxBytes {
		q.MaxBytes = q.bytes
	}
	if q.MarkK > 0 && pkt.ECT && q.bytes > q.MarkK {
		if !pkt.CE {
			q.Marked++
		}
		pkt.CE = true
	}
	q.buf = append(q.buf, pkt)
	q.Enqueued++
	return true
}

// Pop removes and returns the oldest packet, or nil when empty.
func (q *Queue) Pop() *Packet {
	if q.head >= len(q.buf) {
		return nil
	}
	pkt := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	q.bytes -= pkt.Size
	// Compact lazily so the backing array does not grow without bound.
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return pkt
}

// Presize reserves capacity for n queued packets so early enqueues do not
// repeatedly grow the backing array. It applies only to an empty queue.
func (q *Queue) Presize(n int) {
	if q.Len() == 0 && cap(q.buf) < n {
		q.buf = make([]*Packet, 0, n)
		q.head = 0
	}
}

// Bytes returns the current occupancy in bytes.
func (q *Queue) Bytes() int { return q.bytes }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Empty reports whether no packets are queued.
func (q *Queue) Empty() bool { return q.Len() == 0 }
