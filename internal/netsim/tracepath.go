package netsim

import "fmt"

// TracePath walks the forwarding decision chain a packet would take from a
// host to its destination, without transmitting anything: at each switch it
// consults the routing table and (for multipath entries) the installed
// selector, then follows the chosen egress link. It returns the node IDs
// visited, starting with the source host and ending with the destination
// host.
//
// The walk is exact for deterministic selectors (ECMP, WCMP — the hash
// fully determines the port). For randomized selectors (RPS) it consumes
// random draws and returns *a* possible path. Queue-state-dependent
// selectors (DeTail) are evaluated against current queue occupancies.
//
// It fails if the path exceeds maxHops (a routing loop), crosses a failed
// link, or reaches a device with no route.
func TracePath(from *Host, pkt *Packet, maxHops int) ([]NodeID, error) {
	if maxHops <= 0 {
		maxHops = 16
	}
	path := []NodeID{from.ID()}
	link := &from.NIC.Link
	for hop := 0; hop < maxHops; hop++ {
		if link.To == nil {
			return path, fmt.Errorf("netsim: trace: dangling link at %d", path[len(path)-1])
		}
		if link.Down {
			return path, fmt.Errorf("netsim: trace: link down in the %d->%d direction",
				path[len(path)-1], link.To.ID())
		}
		switch dev := link.To.(type) {
		case *Host:
			path = append(path, dev.ID())
			if dev.ID() != pkt.Dst {
				return path, fmt.Errorf("netsim: trace: delivered to host %d, want %d", dev.ID(), pkt.Dst)
			}
			return path, nil
		case *Switch:
			path = append(path, dev.ID())
			routes := dev.Routes()
			if int(pkt.Dst) >= len(routes) || len(routes[pkt.Dst]) == 0 {
				return path, fmt.Errorf("netsim: trace: switch %d has no route to %d", dev.ID(), pkt.Dst)
			}
			eligible := routes[pkt.Dst]
			out := eligible[0]
			if len(eligible) > 1 {
				if dev.sel == nil {
					return path, fmt.Errorf("netsim: trace: switch %d has multipath entry but no selector", dev.ID())
				}
				out = dev.sel.Select(dev, pkt, eligible)
			}
			link = &dev.Ports[out].Link
		default:
			return path, fmt.Errorf("netsim: trace: unknown device type %T", dev)
		}
	}
	return path, fmt.Errorf("netsim: trace: exceeded %d hops (routing loop?)", maxHops)
}
