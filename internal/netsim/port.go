package netsim

import "flowbender/internal/sim"

// Link is the unidirectional wire attached to an egress Port. Its peer is
// the device (and input-port number) that receives what the port transmits.
// Because each Link is one direction of a cable, failure state is inherently
// per-direction: a half-open cut is one Link down while its reverse stays up
// (see Duplex).
type Link struct {
	To     Device
	ToPort int
	// Delay is the propagation delay.
	Delay sim.Time
	// Down marks a failed link: transmissions complete but packets are lost.
	// Prefer SetDown, which also counts the up/down transition.
	Down bool
	// DroppedDown counts packets lost to a failed link.
	DroppedDown int64

	// DropFn, when set, is consulted for every packet that would otherwise
	// be delivered; returning true silently discards it. Fault injection
	// uses it for gray (probabilistically lossy) links; the hook keeps the
	// fabric free of any RNG dependency.
	DropFn func(pkt *Packet) bool
	// DroppedGray counts packets discarded by DropFn.
	DroppedGray int64

	// Transitions counts up<->down state changes made through SetDown
	// (flap accounting).
	Transitions int64
}

// SetDown changes the link's failure state, counting the transition. Setting
// the current state again is a no-op.
func (l *Link) SetDown(down bool) {
	if l.Down == down {
		return
	}
	l.Down = down
	l.Transitions++
}

// Port is an egress port: a queue draining into a serializing transmitter at
// a fixed rate onto a Link. A Port may be paused by downstream PFC.
type Port struct {
	eng *sim.Engine
	// RateBps is the line rate in bits per second.
	RateBps int64
	Q       Queue
	Link    Link

	busy   bool
	paused bool

	// LastTxEnd is the engine time this port last finished serializing a
	// packet, or -1 before any transmission. Flowlet-style selectors
	// (routing.FlowDyn) read it to judge how long an egress has been idle —
	// an idle port has drained whatever queue the estimate saw.
	LastTxEnd sim.Time

	// tag is the port's intrinsic ordering identity for serialization-
	// complete events (orderTag of tagKindTx, owning device, port index),
	// set when the owning switch or host is built. Bare ports default to
	// TagNone, i.e. plain insertion order.
	tag uint16

	// Serialization-delay memo: steady-state traffic on one port repeats a
	// single packet size, so the division in SerializationDelay is paid once
	// per (size, rate) change. The rate is part of the key because fault
	// injection degrades RateBps in place mid-run.
	memoSize  int
	memoRate  int64
	memoDelay sim.Time

	// pool, when set, recycles packets this port's link drops.
	pool *PacketPool
	// txPkt is the packet currently serializing; txDone is the prebuilt
	// completion callback, so starting a transmission allocates nothing.
	txPkt  *Packet
	txDone func()
	// pauseFn/resumeFn are the prebuilt PFC control-frame callbacks.
	pauseFn, resumeFn func()

	// onSent, if set, runs when a packet's serialization completes (used by
	// PFC switches to release ingress accounting).
	onSent func(pkt *Packet)

	// TxBytes counts transmitted wire bytes per protocol (hotspot experiment).
	TxBytes [numProtos]int64
	// TxPackets counts transmitted packets.
	TxPackets int64
}

// NewPort returns a port transmitting at rateBps driven by eng.
func NewPort(eng *sim.Engine, rateBps int64) *Port {
	p := &Port{eng: eng, RateBps: rateBps, tag: sim.TagNone, LastTxEnd: -1}
	p.txDone = p.finishTx
	p.pauseFn = func() { p.SetPaused(true) }
	p.resumeFn = func() { p.SetPaused(false) }
	return p
}

// SerializationDelay returns the time to put size bytes on the wire.
func (p *Port) SerializationDelay(size int) sim.Time {
	if size == p.memoSize && p.RateBps == p.memoRate {
		return p.memoDelay
	}
	d := sim.Time(int64(size) * 8 * int64(sim.Second) / p.RateBps)
	p.memoSize, p.memoRate, p.memoDelay = size, p.RateBps, d
	return d
}

// Enqueue offers a packet to the port. It returns false if the queue dropped
// the packet (the caller owns a rejected packet and is responsible for
// recycling it).
func (p *Port) Enqueue(pkt *Packet) bool {
	pkt.debugCheckLive("Port.Enqueue")
	if !p.Q.Push(pkt) {
		return false
	}
	p.kick()
	return true
}

// SetPaused pauses or resumes the transmitter (PFC). A packet already being
// serialized finishes; pausing only prevents starting the next one.
func (p *Port) SetPaused(v bool) {
	if p.paused == v {
		return
	}
	p.paused = v
	if !v {
		p.kick()
	}
}

// Paused reports whether the port is currently PFC-paused.
func (p *Port) Paused() bool { return p.paused }

// QueuedBytes returns the occupancy of the egress queue.
func (p *Port) QueuedBytes() int { return p.Q.Bytes() }

func (p *Port) kick() {
	if p.busy || p.paused || p.Q.Empty() {
		return
	}
	pkt := p.Q.Pop()
	p.busy = true
	p.txPkt = pkt
	now := p.eng.Now()
	p.eng.AtTagged(now+p.SerializationDelay(pkt.Size), now, p.tag, p.txDone)
}

// finishTx completes the current packet's serialization: counters, the
// onSent hook (PFC/shared-buffer release), then the link outcome — loss on
// a down or gray link (recycling the packet) or handoff to the peer device.
// Statement order matters: events scheduled here (PFC control frames,
// propagation) must be created in exactly the order the pre-pooling closure
// produced, so runs stay bit-identical.
func (p *Port) finishTx() {
	pkt := p.txPkt
	p.txPkt = nil
	p.busy = false
	p.LastTxEnd = p.eng.Now()
	p.TxBytes[pkt.Proto] += int64(pkt.Size)
	p.TxPackets++
	if p.onSent != nil {
		p.onSent(pkt)
	}
	if p.Link.Down || p.Link.To == nil {
		p.Link.DroppedDown++
		p.pool.Put(pkt)
	} else if p.Link.DropFn != nil && p.Link.DropFn(pkt) {
		p.Link.DroppedGray++
		p.pool.Put(pkt)
	} else if p.Link.Delay > 0 {
		pkt.scheduleStep(p.eng, p.Link.Delay, stepReceive, p.Link.To, p.Link.ToPort)
	} else {
		p.Link.To.Receive(pkt, p.Link.ToPort)
	}
	p.kick()
}
