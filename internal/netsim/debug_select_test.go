//go:build simdebug

package netsim_test

import (
	"strings"
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
)

// TestSelectorMemoTripwire proves the simdebug hit cross-check actually
// fires: a memo slot poisoned with a wrong port (as if an invalidation had
// been missed) must panic on the next lookup instead of silently misrouting.
func TestSelectorMemoTripwire(t *testing.T) {
	eng := sim.NewEngine()
	sw := netsim.NewSwitch(eng, 100, 8, 10_000_000_000, netsim.SwitchConfig{})
	all := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	routes := make([][]int32, 16)
	for i := range routes {
		routes[i] = all
	}
	sw.SetRoutes(routes)
	sw.SetSelector(routing.ECMP{})

	pkt := &netsim.Packet{
		Flow: 7, Src: 3, Dst: 13, SrcPort: 41000, DstPort: 80,
		Proto: netsim.ProtoTCP, PathTag: 2,
	}
	pkt.HashPrefix = routing.FlowHashPrefix(pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto)
	pkt.HashPrefixOK = true

	// Warm the memo and check hits agree with the selector while consistent.
	want := sw.SelectEgress(pkt)
	if got := sw.SelectEgress(pkt); got != want {
		t.Fatalf("memoized choice %d != first choice %d", got, want)
	}

	// Poison the slot with a different port under the current generation.
	wrong := (want + 1) % 8
	sw.DebugPokeSelectCache(pkt, wrong)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("poisoned memo slot was served without tripping the cross-check")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "selector memo divergence") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	sw.SelectEgress(pkt)
}
