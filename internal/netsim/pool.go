package netsim

// PacketPool is a free list of Packet objects shared by every device of one
// simulated fabric. Transports draw packets through Host.NewPacket and the
// fabric recycles them at each packet's terminal point — after the
// destination handler's Deliver returns, or at the drop site for packets
// lost to full queues, failed links, gray links, missing routes, or a full
// shared buffer. In steady state every experiment therefore runs with a
// bounded working set of Packet objects (roughly the in-flight count) and
// zero per-packet allocation.
//
// # Ownership contract
//
// Only packets obtained from Get (Host.NewPacket) are recycled; a packet
// built with a plain composite literal passes through the fabric untouched
// and stays garbage-collected, so tests and tools that hand-craft packets
// need no changes. A pooled packet handed to Host.Send belongs to the
// fabric: the sender must not touch it again, and a Handler must not retain
// the packet or its Sacks backing array past its Deliver call. Build with
// `-tags simdebug` to turn violations (use after free, double free) into
// panics with generation diagnostics.
//
// Pools are not safe for concurrent use — like the Engine, one pool belongs
// to one simulation goroutine. Parallel experiment runs each build their own
// topology and therefore their own pool.
type PacketPool struct {
	free []*Packet

	// Gets counts allocations served (hits + misses), Misses the ones that
	// fell through to the Go heap, and Puts the packets recycled. Live
	// packets at any instant = Gets - Puts.
	Gets   int64
	Misses int64
	Puts   int64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool {
	return &PacketPool{free: make([]*Packet, 0, 1024)}
}

// Get returns a zeroed packet. A nil pool is valid and degrades to plain
// heap allocation with no recycling.
func (pl *PacketPool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.Gets++
	if n := len(pl.free); n > 0 {
		pkt := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pkt.debugAlloc()
		pkt.pooled = false
		return pkt
	}
	pl.Misses++
	return &Packet{owned: true}
}

// Put recycles a consumed packet. Packets not drawn from a pool (and nil)
// are ignored, so every terminal site in the fabric can call Put
// unconditionally. The Sacks backing array and the packet's prebuilt step
// callback survive recycling, which is what makes SACK-carrying ACKs and
// multi-hop forwarding allocation-free after warm-up.
func (pl *PacketPool) Put(pkt *Packet) {
	if pl == nil || pkt == nil || !pkt.owned {
		return
	}
	if pkt.pooled {
		pkt.debugDoubleFree()
		return
	}
	sacks := pkt.Sacks[:0]
	fn := pkt.stepFn
	gen := pkt.gen + 1
	*pkt = Packet{Sacks: sacks, stepFn: fn, owned: true, pooled: true, gen: gen}
	pkt.debugPoison()
	pl.free = append(pl.free, pkt)
	pl.Puts++
}

// Live returns the number of packets currently checked out of the pool.
func (pl *PacketPool) Live() int64 {
	if pl == nil {
		return 0
	}
	return pl.Gets - pl.Puts
}
