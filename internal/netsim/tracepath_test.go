package netsim

import (
	"testing"

	"flowbender/internal/sim"
)

// traceFixture: host0 -> swA -> swB -> host1 with single routes.
func traceFixture(t *testing.T) (*Host, *Host, *Switch, *Switch) {
	t.Helper()
	eng := sim.NewEngine()
	rate := int64(10_000_000_000)
	cfg := SwitchConfig{}
	h0 := NewHost(eng, 0, rate, 0)
	h1 := NewHost(eng, 1, rate, 0)
	swA := NewSwitch(eng, 2, 2, rate, cfg)
	swB := NewSwitch(eng, 3, 2, rate, cfg)
	WireHost(h0, swA, 0, 0)
	WireSwitches(swA, 1, swB, 0, 0)
	WireHost(h1, swB, 1, 0)
	swA.SetRoutes([][]int32{0: {0}, 1: {1}})
	swB.SetRoutes([][]int32{0: {0}, 1: {1}})
	return h0, h1, swA, swB
}

func TestTracePathLinear(t *testing.T) {
	h0, _, _, _ := traceFixture(t)
	path, err := TracePath(h0, &Packet{Src: 0, Dst: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{0, 2, 3, 1}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestTracePathFailedLink(t *testing.T) {
	h0, _, swA, _ := traceFixture(t)
	swA.Ports[1].Link.Down = true
	if _, err := TracePath(h0, &Packet{Src: 0, Dst: 1}, 0); err == nil {
		t.Fatal("trace crossed a failed link")
	}
}

func TestTracePathNoRoute(t *testing.T) {
	h0, _, swA, _ := traceFixture(t)
	swA.SetRoutes([][]int32{0: {0}, 1: {}})
	if _, err := TracePath(h0, &Packet{Src: 0, Dst: 1}, 0); err == nil {
		t.Fatal("trace found a path with no route")
	}
}

func TestTracePathLoopDetected(t *testing.T) {
	h0, _, swA, swB := traceFixture(t)
	// Point swB back at swA for dst 1: a routing loop.
	swB.SetRoutes([][]int32{0: {0}, 1: {0}})
	swA.SetRoutes([][]int32{0: {0}, 1: {1}})
	if _, err := TracePath(h0, &Packet{Src: 0, Dst: 1}, 8); err == nil {
		t.Fatal("loop not detected")
	}
}

func TestTracePathMultipathNeedsSelector(t *testing.T) {
	eng := sim.NewEngine()
	rate := int64(10_000_000_000)
	h0 := NewHost(eng, 0, rate, 0)
	h1 := NewHost(eng, 1, rate, 0)
	sw := NewSwitch(eng, 3, 3, rate, SwitchConfig{})
	WireHost(h0, sw, 0, 0)
	WireHost(h1, sw, 1, 0)
	WireHost(h1, sw, 2, 0) // two parallel links to h1
	sw.SetRoutes([][]int32{0: {0}, 1: {1, 2}})
	if _, err := TracePath(h0, &Packet{Src: 0, Dst: 1}, 0); err == nil {
		t.Fatal("multipath without selector should fail the trace")
	}
	sw.SetSelector(firstEligible{})
	path, err := TracePath(h0, &Packet{Src: 0, Dst: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
}

type firstEligible struct{}

func (firstEligible) Select(_ *Switch, _ *Packet, e []int32) int32 { return e[0] }
