// Cross-shard packet handoff for the conservative-parallel execution mode
// (sim.ShardSet). A fabric cable whose endpoints live on different shards is
// interposed with a CrossLink proxy: instead of invoking the remote device's
// Receive — which would race with the remote shard's goroutine — the proxy
// records the arrival in a single-producer/single-consumer mailbox. At each
// bounded-lag window barrier the consuming shard drains its mailboxes and
// injects the arrivals in a deterministic order, so the merged schedule is
// bit-identical to serial execution.
//
// Determinism argument. Serial execution orders same-instant arrivals by
// engine insertion sequence, which a sharded run cannot reconstruct. Instead
// the merge sorts by the intrinsic key (arrival time, destination device ID,
// destination input port). The key is total: a given input port has exactly
// one upstream transmitter, whose serialization delay makes two completions
// at the same instant impossible, so no two in-flight messages ever share
// all three coordinates. Because both the immediate effects of an arrival
// (receive counters, hop count) are commutative additions and the scheduled
// effect (forward/deliver) lands strictly after the window boundary, the
// deferred injection is invisible to the simulation's observable behavior.
package netsim

import (
	"fmt"
	"sort"

	"flowbender/internal/sim"
)

// CrossMsg is one packet arrival crossing a shard boundary: the packet, where
// it arrived, and the producing shard's clock when it did.
type CrossMsg struct {
	At     sim.Time
	Pkt    *Packet
	Dst    Device
	InPort int32
}

// crossKeyLess orders cross-shard arrivals by the deterministic merge key
// (arrival time, destination device, destination input port).
func crossKeyLess(a, b CrossMsg) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if ai, bi := a.Dst.ID(), b.Dst.ID(); ai != bi {
		return ai < bi
	}
	return a.InPort < b.InPort
}

// CrossBox is the mailbox for one directed (producer shard, consumer shard)
// pair. The producer appends during a window; the consumer drains at the
// barrier. The window barrier is the only synchronization — the box itself
// is a plain slice, which is exactly why each pair gets its own.
type CrossBox struct {
	msgs []CrossMsg
}

// Len reports the number of undelivered messages (for tests and tripwires).
func (b *CrossBox) Len() int { return len(b.msgs) }

// Drain appends the box's messages to dst and empties it, dropping packet
// references so recycled packets are not retained.
func (b *CrossBox) Drain(dst []CrossMsg) []CrossMsg {
	dst = append(dst, b.msgs...)
	for i := range b.msgs {
		b.msgs[i] = CrossMsg{}
	}
	b.msgs = b.msgs[:0]
	return dst
}

// CrossLink is the proxy interposed as Link.To on a cable that crosses a
// shard boundary. It impersonates the remote endpoint (same ID) but turns
// arrivals into mailbox entries stamped with the producing shard's clock.
type CrossLink struct {
	eng *sim.Engine // producing shard's clock
	box *CrossBox
	dst Device // the real remote endpoint
}

// NewCrossLink builds a proxy for dst reachable from the shard driven by eng,
// depositing into box.
func NewCrossLink(eng *sim.Engine, box *CrossBox, dst Device) *CrossLink {
	return &CrossLink{eng: eng, box: box, dst: dst}
}

// ID implements Device, impersonating the remote endpoint.
func (c *CrossLink) ID() NodeID { return c.dst.ID() }

// Target returns the device the proxy stands in for.
func (c *CrossLink) Target() Device { return c.dst }

// Receive implements Device: the packet has finished link propagation on the
// producer's clock; park it for the consumer's next merge.
func (c *CrossLink) Receive(pkt *Packet, inPort int) {
	c.box.msgs = append(c.box.msgs, CrossMsg{At: c.eng.Now(), Pkt: pkt, Dst: c.dst, InPort: int32(inPort)})
}

// MergeCross sorts the drained messages by the deterministic merge key and
// injects them into the consuming shard (each destination device schedules
// on its own engine). windowEnd is the first instant of the next window; the
// bounded-lag contract guarantees every injected effect lands at or after it
// (the simdebug build verifies this).
func MergeCross(msgs []CrossMsg, windowEnd sim.Time) {
	sort.Slice(msgs, func(i, j int) bool { return crossKeyLess(msgs[i], msgs[j]) })
	applyCross(msgs, windowEnd)
}

// applyCross injects pre-sorted messages. Split from MergeCross so the
// simdebug order tripwire can be exercised directly.
func applyCross(msgs []CrossMsg, windowEnd sim.Time) {
	for i := range msgs {
		debugCheckCross(msgs, i, windowEnd)
		m := &msgs[i]
		switch d := m.Dst.(type) {
		case *Switch:
			d.receiveAt(m.Pkt, int(m.InPort), m.At)
		case *Host:
			d.receiveAt(m.Pkt, m.At)
		default:
			panic(fmt.Sprintf("netsim: cross-shard delivery to unsupported device type %T", m.Dst))
		}
	}
}

// receiveAt is Receive for a packet that crossed a shard boundary: the
// arrival's immediate effects are commutative counters, applied here at the
// merge barrier instead of the arrival instant, and the forwarding pipeline
// is scheduled at the absolute arrival time plus the forwarding delay, which
// the bounded-lag window guarantees has not yet passed on this shard.
func (s *Switch) receiveAt(pkt *Packet, inPort int, at sim.Time) {
	pkt.debugCheckLive("Switch.receiveAt")
	if s.cfg.PFC != nil {
		// PFC pause state is read synchronously by upstream ports; it
		// cannot be deferred to a barrier. The partitioner refuses to
		// shard PFC fabrics, so this is unreachable on supported paths.
		panic("netsim: cross-shard delivery to a PFC-enabled switch")
	}
	s.RxPackets++
	pkt.Hops++
	pkt.scheduleStepAt(s.eng, at+s.cfg.FwdDelay, at, stepForward, s, inPort)
}

func (h *Host) receiveAt(pkt *Packet, at sim.Time) {
	pkt.debugCheckLive("Host.receiveAt")
	h.RxPackets++
	h.RxBytes += int64(pkt.Size)
	pkt.scheduleStepAt(h.eng, at+h.Delay, at, stepDeliver, h, 0)
}

// Engine returns the engine (shard) this host executes on.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Engine returns the engine (shard) this switch executes on.
func (s *Switch) Engine() *sim.Engine { return s.eng }
