package netsim

// handlerTable maps FlowID -> Handler for per-packet delivery dispatch. It
// replaces the built-in map on the hot path: open addressing with linear
// probing over a power-of-two slot array means a lookup is one multiply and
// (almost always) one cache line, with no hashing through runtime interfaces.
// Deletion uses backward-shift compaction instead of tombstones, so a host
// that churns many short flows keeps its probe chains dense and its table
// sized by the *peak live* handler count — it cannot grow without bound the
// way an insert-only structure (or a tombstone-accumulating one) would.
type handlerTable struct {
	slots []handlerSlot // power-of-two length, nil until the first put
	mask  uint64
	n     int
}

// handlerSlot is one open-addressed entry; hd == nil marks an empty slot.
type handlerSlot struct {
	flow FlowID
	hd   Handler
}

// handlerTableMinSlots is the initial allocation: most hosts terminate a
// handful of concurrent flows.
const handlerTableMinSlots = 16

// home returns the preferred slot for a flow: a Fibonacci multiply whose
// high bits are taken, which spreads the dense, sequential FlowIDs the
// workload allocators produce uniformly across slots.
func (t *handlerTable) home(f FlowID) uint64 {
	return (uint64(f) * 0x9e3779b97f4a7c15 >> 33) & t.mask
}

// get returns the handler for f, or nil.
func (t *handlerTable) get(f FlowID) Handler {
	if t.n == 0 {
		return nil
	}
	for i := t.home(f); ; i = (i + 1) & t.mask {
		sl := &t.slots[i]
		if sl.hd == nil {
			return nil
		}
		if sl.flow == f {
			return sl.hd
		}
	}
}

// put inserts (f, hd); it reports false when f is already present. hd must
// be non-nil (nil marks emptiness).
func (t *handlerTable) put(f FlowID, hd Handler) bool {
	if t.slots == nil {
		t.grow(handlerTableMinSlots)
	} else if 4*(t.n+1) > 3*len(t.slots) {
		t.grow(2 * len(t.slots))
	}
	for i := t.home(f); ; i = (i + 1) & t.mask {
		sl := &t.slots[i]
		if sl.hd == nil {
			*sl = handlerSlot{flow: f, hd: hd}
			t.n++
			return true
		}
		if sl.flow == f {
			return false
		}
	}
}

// del removes f's entry (no-op when absent), back-shifting the probe chain
// so no tombstone is left behind.
func (t *handlerTable) del(f FlowID) {
	if t.n == 0 {
		return
	}
	i := t.home(f)
	for {
		sl := &t.slots[i]
		if sl.hd == nil {
			return
		}
		if sl.flow == f {
			break
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift: walk the chain after the hole and move back every
	// entry whose home position does not lie strictly after the hole (in
	// circular probe order), then clear the final vacated slot.
	j := i
	for {
		j = (j + 1) & t.mask
		sl := &t.slots[j]
		if sl.hd == nil {
			break
		}
		if (j-t.home(sl.flow))&t.mask >= (j-i)&t.mask {
			t.slots[i] = *sl
			i = j
		}
	}
	t.slots[i] = handlerSlot{}
	t.n--
}

// grow rehashes into a table of newSize slots (a power of two).
func (t *handlerTable) grow(newSize int) {
	old := t.slots
	t.slots = make([]handlerSlot, newSize)
	t.mask = uint64(newSize - 1)
	for _, sl := range old {
		if sl.hd == nil {
			continue
		}
		for i := t.home(sl.flow); ; i = (i + 1) & t.mask {
			if t.slots[i].hd == nil {
				t.slots[i] = sl
				break
			}
		}
	}
}
