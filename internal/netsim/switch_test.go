package netsim

import (
	"testing"

	"flowbender/internal/sim"
)

// TestSingleRouteNeedsNoSelector: deterministic next hops must forward even
// when no selector is installed.
func TestSingleRouteNeedsNoSelector(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 10, 2, 10_000_000_000, SwitchConfig{})
	dst := NewHost(eng, 1, 10_000_000_000, 0)
	WireHost(dst, sw, 1, 0)
	sw.SetRoutes([][]int32{0: {0}, 1: {1}})

	var got int
	dst.Register(5, handlerFunc(func(*Packet) { got++ }))
	sw.Receive(&Packet{Flow: 5, Dst: 1, Size: 100}, 0)
	eng.RunUntilIdle()
	if got != 1 {
		t.Fatal("single-route packet not forwarded")
	}
}

func TestSwitchNoRouteCounted(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 10, 2, 10_000_000_000, SwitchConfig{})
	sw.SetRoutes([][]int32{0: {}, 1: {1}})
	sw.Receive(&Packet{Flow: 5, Dst: 0, Size: 100}, 0)
	eng.RunUntilIdle()
	if sw.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", sw.NoRoute)
	}
}

func TestPortProtoCounters(t *testing.T) {
	eng := sim.NewEngine()
	sink := &sinkDevice{id: 1, eng: eng}
	p := NewPort(eng, 10_000_000_000)
	p.Link = Link{To: sink}
	p.Enqueue(&Packet{Proto: ProtoTCP, Size: 1000})
	p.Enqueue(&Packet{Proto: ProtoUDP, Size: 500})
	p.Enqueue(&Packet{Proto: ProtoTCP, Size: 200})
	eng.RunUntilIdle()
	if p.TxBytes[ProtoTCP] != 1200 || p.TxBytes[ProtoUDP] != 500 {
		t.Fatalf("proto counters: tcp=%d udp=%d", p.TxBytes[ProtoTCP], p.TxBytes[ProtoUDP])
	}
}

func TestQueueDoesNotRecountMarkedPackets(t *testing.T) {
	q := Queue{MarkK: 50}
	pkt := &Packet{Size: 100, ECT: true, CE: true} // already marked upstream
	q.Push(pkt)
	if q.Marked != 0 {
		t.Fatalf("pre-marked packet counted as a new mark")
	}
	if !pkt.CE {
		t.Fatal("CE lost")
	}
}

func TestQueueMaxBytesHighWater(t *testing.T) {
	var q Queue
	q.Push(&Packet{Size: 100})
	q.Push(&Packet{Size: 200})
	q.Pop()
	q.Push(&Packet{Size: 50})
	if q.MaxBytes != 300 {
		t.Fatalf("MaxBytes = %d, want 300", q.MaxBytes)
	}
}

func TestQueueCompaction(t *testing.T) {
	// Push/pop far more packets than the initial backing array to exercise
	// the lazy compaction path; FIFO order must be preserved throughout.
	var q Queue
	next := int64(0)
	seq := int64(0)
	for i := 0; i < 10_000; i++ {
		q.Push(&Packet{Seq: seq, Size: 100})
		seq++
		if i%3 != 0 {
			pkt := q.Pop()
			if pkt.Seq != next {
				t.Fatalf("FIFO violated at %d: got %d want %d", i, pkt.Seq, next)
			}
			next++
		}
	}
	for {
		pkt := q.Pop()
		if pkt == nil {
			break
		}
		if pkt.Seq != next {
			t.Fatalf("FIFO violated in drain: got %d want %d", pkt.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("drained %d, pushed %d", next, seq)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" {
		t.Fatal("proto names wrong")
	}
	if Proto(9).String() == "" {
		t.Fatal("unknown proto has empty name")
	}
}

func TestPacketString(t *testing.T) {
	pkt := &Packet{Proto: ProtoTCP, Kind: KindData, Flow: 7, Src: 1, Dst: 2, Seq: 100, Payload: 10}
	if s := pkt.String(); s == "" {
		t.Fatal("empty packet string")
	}
	ack := &Packet{Proto: ProtoTCP, Kind: KindAck}
	if s := ack.String(); s == "" {
		t.Fatal("empty ack string")
	}
}
