package netsim

import (
	"fmt"

	"flowbender/internal/sim"
)

// Selector picks an egress port for a packet among the eligible equal-cost
// ports of a switch. Implementations live in internal/routing: hash-based
// ECMP (also used by FlowBender), per-packet random (RPS), and least-queued
// (DeTail's packet-level adaptive routing).
type Selector interface {
	// Select returns one element of eligible (len(eligible) >= 2).
	Select(sw *Switch, pkt *Packet, eligible []int32) int32
}

// CacheableSelector marks Selector implementations whose choice is a pure
// function of (switch identity, destination, flow-constant header fields,
// PathTag) — true for static hash selectors like ECMP, never for selectors
// that consult an RNG (RPS) or live queue state (DeTail). Switches memoize
// the choices of a cacheable selector in a small per-switch direct-mapped
// cache keyed by the exact (HashPrefix, Dst, PathTag) triple, so
// steady-state packets of a flow skip hashing entirely. SetSelector and
// SetRoutes invalidate the cache by bumping its generation, which is
// sufficient: fault injection mutates links and rates in place but the
// forwarding table and selector only ever change through those two setters.
type CacheableSelector interface {
	Selector
	// Cacheable reports whether Select's choices may be memoized.
	Cacheable() bool
}

// selCacheSlots is the size of each switch's selector memo cache. It must be
// a power of two; 1024 exact-keyed slots comfortably cover the concurrent
// (flow, tag) working set of one switch in the paper's workloads.
const selCacheSlots = 1024

// selSlot is one direct-mapped selector-memo entry. The full key is stored
// (not a fingerprint): a hit is only declared on exact (prefix, dst, tag)
// equality, which is what makes the memo provably bit-identical to calling
// the selector.
type selSlot struct {
	prefix uint64
	dst    NodeID
	tag    uint32
	gen    uint32
	port   int32
}

// PFCConfig enables Priority Flow Control on a switch: when the per-input
// ingress accounting exceeds Pause bytes the upstream transmitter is paused,
// and it is resumed once the accounting drains below Unpause bytes. With PFC
// enabled the egress queues are lossless (unbounded), matching DeTail's
// requirement.
type PFCConfig struct {
	Pause   int
	Unpause int
}

// SwitchConfig describes a switch's per-port queues and forwarding pipeline.
type SwitchConfig struct {
	// QueueCap is the per-egress-port drop-tail capacity in bytes
	// (ignored — lossless — when PFC is set).
	QueueCap int
	// SharedBuffer, when > 0, additionally bounds the switch-wide buffered
	// bytes across all egress ports — the shared-memory architecture of the
	// paper's testbed switches (2 MB shared, §4.3). A packet is dropped
	// when either its port queue or the shared pool is full.
	SharedBuffer int
	// MarkK is the DCTCP ECN marking threshold in bytes (0 disables).
	MarkK int
	// FwdDelay is the per-packet forwarding latency through the switch.
	FwdDelay sim.Time
	// PFC, when non-nil, makes the switch lossless with pause/unpause
	// thresholds on the per-input ingress accounting.
	PFC *PFCConfig
}

// Switch is an output-queued switch (optionally combined input–output queued
// via PFC ingress accounting, as the paper's DeTail setup requires).
type Switch struct {
	eng *sim.Engine
	id  NodeID
	cfg SwitchConfig

	// Ports are the egress ports, indexed by port number.
	Ports []*Port
	// upstream[i] is the egress port on the neighbouring device that feeds
	// our input port i (needed to deliver PFC pause frames).
	upstream []*Port

	// table maps destination host NodeID -> eligible egress ports.
	table [][]int32
	sel   Selector
	pool  *PacketPool

	// Selector memo cache (nil unless the installed selector is cacheable).
	// A slot is valid only while its gen equals selGen; SetSelector and
	// SetRoutes bump selGen, invalidating every slot in O(1).
	selCache []selSlot
	selGen   uint32

	// selScratch is opaque per-switch storage for stateful selectors (the
	// flowlet table of routing.Flowlet/FlowDyn). It is owned by whichever
	// selector is installed and cleared by SetSelector, so a replacement
	// selector never observes a predecessor's state.
	selScratch any

	// PFC ingress accounting.
	ingressBytes []int
	pausedUp     []bool

	// Shared-buffer accounting (bytes buffered across all egress ports,
	// including the packet currently serializing).
	buffered int64

	// Counters.
	RxPackets   int64
	NoRoute     int64
	DropsNoBuf  int64
	PauseEvents int64
}

// NewSwitch creates a switch with nPorts egress ports all at rateBps.
func NewSwitch(eng *sim.Engine, id NodeID, nPorts int, rateBps int64, cfg SwitchConfig) *Switch {
	s := &Switch{
		eng:          eng,
		id:           id,
		cfg:          cfg,
		Ports:        make([]*Port, nPorts),
		upstream:     make([]*Port, nPorts),
		ingressBytes: make([]int, nPorts),
		pausedUp:     make([]bool, nPorts),
	}
	// Pre-size the egress queues so steady-state enqueues rarely grow the
	// backing array: capacity for a queue full of MSS-sized packets (ACK
	// bursts can still exceed this and fall back to amortized append).
	slots := 256
	if cfg.PFC == nil && cfg.QueueCap > 0 {
		if slots = cfg.QueueCap/1500 + 16; slots > 4096 {
			slots = 4096
		}
	}
	for i := range s.Ports {
		p := NewPort(eng, rateBps)
		p.tag = orderTag(tagKindTx, id, i)
		p.Q.MarkK = cfg.MarkK
		if cfg.PFC == nil {
			p.Q.Cap = cfg.QueueCap
		}
		p.Q.Presize(slots)
		if cfg.PFC != nil || cfg.SharedBuffer > 0 {
			p.onSent = s.onPortSent
		}
		s.Ports[i] = p
	}
	return s
}

// UsePool makes the switch (and its egress ports) recycle packets dropped
// inside the fabric into pl.
func (s *Switch) UsePool(pl *PacketPool) {
	s.pool = pl
	for _, p := range s.Ports {
		p.pool = pl
	}
}

// onPortSent releases per-packet buffer accounting when an egress port
// finishes serializing a packet.
func (s *Switch) onPortSent(pkt *Packet) {
	if s.cfg.SharedBuffer > 0 {
		s.buffered -= int64(pkt.Size)
	}
	if s.cfg.PFC != nil {
		s.releaseIngress(pkt)
	}
}

// BufferedBytes returns the switch-wide buffered byte count (only tracked
// when SharedBuffer is configured).
func (s *Switch) BufferedBytes() int64 { return s.buffered }

// ID returns the switch's node identifier.
func (s *Switch) ID() NodeID { return s.id }

// SetSelector installs the multipath port selector, enabling the per-switch
// choice memo when the selector declares itself cacheable (and invalidating
// any previously memoized choices either way).
func (s *Switch) SetSelector(sel Selector) {
	s.sel = sel
	s.selGen++
	s.selScratch = nil
	if cs, ok := sel.(CacheableSelector); ok && cs.Cacheable() {
		if s.selCache == nil {
			s.selCache = make([]selSlot, selCacheSlots)
		}
	} else {
		s.selCache = nil
	}
}

// Now returns the owning engine's clock. Stateful selectors (flowlet
// switching) read it from inside Select to measure inter-packet idle gaps.
func (s *Switch) Now() sim.Time { return s.eng.Now() }

// SelectorScratch returns the opaque per-switch state installed by the
// current selector (nil until the selector stores something).
func (s *Switch) SelectorScratch() any { return s.selScratch }

// SetSelectorScratch installs opaque per-switch selector state. It is
// cleared whenever SetSelector runs.
func (s *Switch) SetSelectorScratch(v any) { s.selScratch = v }

// SetRoutes installs the forwarding table: routes[dst] lists the eligible
// egress ports toward host dst. Installing routes invalidates the selector
// memo cache — a memoized choice is only valid against the eligible list it
// was computed from.
func (s *Switch) SetRoutes(routes [][]int32) {
	s.table = routes
	s.selGen++
}

// Routes returns the installed forwarding table (for tests and tools).
func (s *Switch) Routes() [][]int32 { return s.table }

// QueueBytes returns the egress occupancy of the given port, used by
// adaptive selectors such as DeTail.
func (s *Switch) QueueBytes(port int32) int { return s.Ports[port].Q.Bytes() }

// SetMarking enables or disables ECN marking on every egress queue. A muted
// switch keeps forwarding but stops setting CE — the gray failure mode where
// a congestion signal silently disappears (fault injection's EcnMute).
func (s *Switch) SetMarking(on bool) {
	k := 0
	if on {
		k = s.cfg.MarkK
	}
	for _, p := range s.Ports {
		p.Q.MarkK = k
	}
}

// MarkingEnabled reports whether the switch currently ECN-marks (false when
// muted or when MarkK was never configured).
func (s *Switch) MarkingEnabled() bool {
	return len(s.Ports) > 0 && s.Ports[0].Q.MarkK > 0
}

// Receive implements Device.
func (s *Switch) Receive(pkt *Packet, inPort int) {
	pkt.debugCheckLive("Switch.Receive")
	s.RxPackets++
	if s.cfg.PFC != nil {
		s.ingressBytes[inPort] += pkt.Size
		pkt.pfcSw = s
		pkt.pfcIn = inPort
		s.checkPause(inPort)
	}
	pkt.Hops++
	if s.cfg.FwdDelay > 0 {
		pkt.scheduleStep(s.eng, s.cfg.FwdDelay, stepForward, s, inPort)
	} else {
		s.forward(pkt)
	}
}

func (s *Switch) forward(pkt *Packet) {
	if int(pkt.Dst) >= len(s.table) {
		panic(fmt.Sprintf("netsim: switch %d has no table entry for dst %d", s.id, pkt.Dst))
	}
	eligible := s.table[pkt.Dst]
	var out int32
	switch {
	case len(eligible) == 0:
		s.NoRoute++
		s.dropPFC(pkt)
		s.pool.Put(pkt)
		return
	case len(eligible) == 1:
		out = eligible[0]
	default:
		out = s.selectPort(pkt, eligible)
	}
	if sb := s.cfg.SharedBuffer; sb > 0 && s.buffered+int64(pkt.Size) > int64(sb) {
		s.DropsNoBuf++
		s.dropPFC(pkt)
		s.pool.Put(pkt)
		return
	}
	if !s.Ports[out].Enqueue(pkt) {
		s.DropsNoBuf++
		s.dropPFC(pkt)
		s.pool.Put(pkt)
		return
	}
	if s.cfg.SharedBuffer > 0 {
		s.buffered += int64(pkt.Size)
	}
}

// selectPort picks among >= 2 eligible egress ports, consulting the memo
// cache when the installed selector is cacheable. Only packets carrying a
// valid hash prefix participate: together with (Dst, PathTag) the prefix
// exactly determines a static selector's choice, so a hit returns the very
// port the selector would have computed. Misses fall through to the selector
// and memoize its answer. Under -tags simdebug every hit is cross-checked
// against a fresh Select call.
func (s *Switch) selectPort(pkt *Packet, eligible []int32) int32 {
	if s.selCache == nil || !pkt.HashPrefixOK {
		return s.sel.Select(s, pkt, eligible)
	}
	sl := &s.selCache[selCacheIndex(pkt.HashPrefix, pkt.Dst, pkt.PathTag)]
	if sl.gen == s.selGen && sl.prefix == pkt.HashPrefix && sl.dst == pkt.Dst && sl.tag == pkt.PathTag {
		s.debugCheckSelect(pkt, eligible, sl.port)
		return sl.port
	}
	out := s.sel.Select(s, pkt, eligible)
	*sl = selSlot{prefix: pkt.HashPrefix, dst: pkt.Dst, tag: pkt.PathTag, gen: s.selGen, port: out}
	return out
}

// selCacheIndex maps a memo key to a direct-mapped slot. The prefix is
// already avalanche-quality entropy; dst and tag are folded in with odd
// multipliers so flows to nearby destinations (or adjacent tags of one flow)
// land in distinct slots.
func selCacheIndex(prefix uint64, dst NodeID, tag uint32) int {
	x := prefix ^ uint64(uint32(dst))*0x9e3779b97f4a7c15 ^ uint64(tag)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	return int(x & (selCacheSlots - 1))
}

// SelectEgress returns the egress port the switch would forward pkt on
// (including the memo cache, exactly as the data path does), or -1 when the
// destination has no route. Exported for benchmarks and path-prediction
// tools; it does not enqueue or mutate counters.
func (s *Switch) SelectEgress(pkt *Packet) int32 {
	if int(pkt.Dst) >= len(s.table) {
		return -1
	}
	eligible := s.table[pkt.Dst]
	switch {
	case len(eligible) == 0:
		return -1
	case len(eligible) == 1:
		return eligible[0]
	}
	return s.selectPort(pkt, eligible)
}

// dropPFC releases the PFC ingress accounting for a packet dropped inside
// this switch (can only happen via NoRoute when PFC is on).
func (s *Switch) dropPFC(pkt *Packet) {
	if pkt.pfcSw == s {
		s.releaseIngress(pkt)
	}
}

func (s *Switch) releaseIngress(pkt *Packet) {
	if pkt.pfcSw != s {
		return
	}
	in := pkt.pfcIn
	pkt.pfcSw = nil
	s.ingressBytes[in] -= pkt.Size
	s.checkPause(in)
}

func (s *Switch) checkPause(in int) {
	cfg := s.cfg.PFC
	up := s.upstream[in]
	if up == nil {
		return
	}
	switch {
	case !s.pausedUp[in] && s.ingressBytes[in] > cfg.Pause:
		s.pausedUp[in] = true
		s.PauseEvents++
		s.sendPFC(up, true)
	case s.pausedUp[in] && s.ingressBytes[in] <= cfg.Unpause:
		s.pausedUp[in] = false
		s.sendPFC(up, false)
	}
}

// sendPFC delivers a pause/unpause control frame to the upstream transmitter
// after the reverse-direction propagation delay. Control frames are modeled
// as out-of-band (they do not occupy queue space), which is how PFC frames
// bypass data queuing in real NICs.
func (s *Switch) sendPFC(up *Port, pause bool) {
	d := up.Link.Delay
	if d > 0 {
		fn := up.resumeFn
		if pause {
			fn = up.pauseFn
		}
		s.eng.Schedule(d, fn)
	} else {
		up.SetPaused(pause)
	}
}
