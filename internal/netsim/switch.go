package netsim

import (
	"fmt"

	"flowbender/internal/sim"
)

// Selector picks an egress port for a packet among the eligible equal-cost
// ports of a switch. Implementations live in internal/routing: hash-based
// ECMP (also used by FlowBender), per-packet random (RPS), and least-queued
// (DeTail's packet-level adaptive routing).
type Selector interface {
	// Select returns one element of eligible (len(eligible) >= 2).
	Select(sw *Switch, pkt *Packet, eligible []int32) int32
}

// PFCConfig enables Priority Flow Control on a switch: when the per-input
// ingress accounting exceeds Pause bytes the upstream transmitter is paused,
// and it is resumed once the accounting drains below Unpause bytes. With PFC
// enabled the egress queues are lossless (unbounded), matching DeTail's
// requirement.
type PFCConfig struct {
	Pause   int
	Unpause int
}

// SwitchConfig describes a switch's per-port queues and forwarding pipeline.
type SwitchConfig struct {
	// QueueCap is the per-egress-port drop-tail capacity in bytes
	// (ignored — lossless — when PFC is set).
	QueueCap int
	// SharedBuffer, when > 0, additionally bounds the switch-wide buffered
	// bytes across all egress ports — the shared-memory architecture of the
	// paper's testbed switches (2 MB shared, §4.3). A packet is dropped
	// when either its port queue or the shared pool is full.
	SharedBuffer int
	// MarkK is the DCTCP ECN marking threshold in bytes (0 disables).
	MarkK int
	// FwdDelay is the per-packet forwarding latency through the switch.
	FwdDelay sim.Time
	// PFC, when non-nil, makes the switch lossless with pause/unpause
	// thresholds on the per-input ingress accounting.
	PFC *PFCConfig
}

// Switch is an output-queued switch (optionally combined input–output queued
// via PFC ingress accounting, as the paper's DeTail setup requires).
type Switch struct {
	eng *sim.Engine
	id  NodeID
	cfg SwitchConfig

	// Ports are the egress ports, indexed by port number.
	Ports []*Port
	// upstream[i] is the egress port on the neighbouring device that feeds
	// our input port i (needed to deliver PFC pause frames).
	upstream []*Port

	// table maps destination host NodeID -> eligible egress ports.
	table [][]int32
	sel   Selector
	pool  *PacketPool

	// PFC ingress accounting.
	ingressBytes []int
	pausedUp     []bool

	// Shared-buffer accounting (bytes buffered across all egress ports,
	// including the packet currently serializing).
	buffered int64

	// Counters.
	RxPackets   int64
	NoRoute     int64
	DropsNoBuf  int64
	PauseEvents int64
}

// NewSwitch creates a switch with nPorts egress ports all at rateBps.
func NewSwitch(eng *sim.Engine, id NodeID, nPorts int, rateBps int64, cfg SwitchConfig) *Switch {
	s := &Switch{
		eng:          eng,
		id:           id,
		cfg:          cfg,
		Ports:        make([]*Port, nPorts),
		upstream:     make([]*Port, nPorts),
		ingressBytes: make([]int, nPorts),
		pausedUp:     make([]bool, nPorts),
	}
	// Pre-size the egress queues so steady-state enqueues rarely grow the
	// backing array: capacity for a queue full of MSS-sized packets (ACK
	// bursts can still exceed this and fall back to amortized append).
	slots := 256
	if cfg.PFC == nil && cfg.QueueCap > 0 {
		if slots = cfg.QueueCap/1500 + 16; slots > 4096 {
			slots = 4096
		}
	}
	for i := range s.Ports {
		p := NewPort(eng, rateBps)
		p.Q.MarkK = cfg.MarkK
		if cfg.PFC == nil {
			p.Q.Cap = cfg.QueueCap
		}
		p.Q.Presize(slots)
		if cfg.PFC != nil || cfg.SharedBuffer > 0 {
			p.onSent = s.onPortSent
		}
		s.Ports[i] = p
	}
	return s
}

// UsePool makes the switch (and its egress ports) recycle packets dropped
// inside the fabric into pl.
func (s *Switch) UsePool(pl *PacketPool) {
	s.pool = pl
	for _, p := range s.Ports {
		p.pool = pl
	}
}

// onPortSent releases per-packet buffer accounting when an egress port
// finishes serializing a packet.
func (s *Switch) onPortSent(pkt *Packet) {
	if s.cfg.SharedBuffer > 0 {
		s.buffered -= int64(pkt.Size)
	}
	if s.cfg.PFC != nil {
		s.releaseIngress(pkt)
	}
}

// BufferedBytes returns the switch-wide buffered byte count (only tracked
// when SharedBuffer is configured).
func (s *Switch) BufferedBytes() int64 { return s.buffered }

// ID returns the switch's node identifier.
func (s *Switch) ID() NodeID { return s.id }

// SetSelector installs the multipath port selector.
func (s *Switch) SetSelector(sel Selector) { s.sel = sel }

// SetRoutes installs the forwarding table: routes[dst] lists the eligible
// egress ports toward host dst.
func (s *Switch) SetRoutes(routes [][]int32) { s.table = routes }

// Routes returns the installed forwarding table (for tests and tools).
func (s *Switch) Routes() [][]int32 { return s.table }

// QueueBytes returns the egress occupancy of the given port, used by
// adaptive selectors such as DeTail.
func (s *Switch) QueueBytes(port int32) int { return s.Ports[port].Q.Bytes() }

// SetMarking enables or disables ECN marking on every egress queue. A muted
// switch keeps forwarding but stops setting CE — the gray failure mode where
// a congestion signal silently disappears (fault injection's EcnMute).
func (s *Switch) SetMarking(on bool) {
	k := 0
	if on {
		k = s.cfg.MarkK
	}
	for _, p := range s.Ports {
		p.Q.MarkK = k
	}
}

// MarkingEnabled reports whether the switch currently ECN-marks (false when
// muted or when MarkK was never configured).
func (s *Switch) MarkingEnabled() bool {
	return len(s.Ports) > 0 && s.Ports[0].Q.MarkK > 0
}

// Receive implements Device.
func (s *Switch) Receive(pkt *Packet, inPort int) {
	pkt.debugCheckLive("Switch.Receive")
	s.RxPackets++
	if s.cfg.PFC != nil {
		s.ingressBytes[inPort] += pkt.Size
		pkt.pfcSw = s
		pkt.pfcIn = inPort
		s.checkPause(inPort)
	}
	pkt.Hops++
	if s.cfg.FwdDelay > 0 {
		pkt.scheduleStep(s.eng, s.cfg.FwdDelay, stepForward, s, inPort)
	} else {
		s.forward(pkt)
	}
}

func (s *Switch) forward(pkt *Packet) {
	if int(pkt.Dst) >= len(s.table) {
		panic(fmt.Sprintf("netsim: switch %d has no table entry for dst %d", s.id, pkt.Dst))
	}
	eligible := s.table[pkt.Dst]
	var out int32
	switch {
	case len(eligible) == 0:
		s.NoRoute++
		s.dropPFC(pkt)
		s.pool.Put(pkt)
		return
	case len(eligible) == 1:
		out = eligible[0]
	default:
		out = s.sel.Select(s, pkt, eligible)
	}
	if sb := s.cfg.SharedBuffer; sb > 0 && s.buffered+int64(pkt.Size) > int64(sb) {
		s.DropsNoBuf++
		s.dropPFC(pkt)
		s.pool.Put(pkt)
		return
	}
	if !s.Ports[out].Enqueue(pkt) {
		s.DropsNoBuf++
		s.dropPFC(pkt)
		s.pool.Put(pkt)
		return
	}
	if s.cfg.SharedBuffer > 0 {
		s.buffered += int64(pkt.Size)
	}
}

// dropPFC releases the PFC ingress accounting for a packet dropped inside
// this switch (can only happen via NoRoute when PFC is on).
func (s *Switch) dropPFC(pkt *Packet) {
	if pkt.pfcSw == s {
		s.releaseIngress(pkt)
	}
}

func (s *Switch) releaseIngress(pkt *Packet) {
	if pkt.pfcSw != s {
		return
	}
	in := pkt.pfcIn
	pkt.pfcSw = nil
	s.ingressBytes[in] -= pkt.Size
	s.checkPause(in)
}

func (s *Switch) checkPause(in int) {
	cfg := s.cfg.PFC
	up := s.upstream[in]
	if up == nil {
		return
	}
	switch {
	case !s.pausedUp[in] && s.ingressBytes[in] > cfg.Pause:
		s.pausedUp[in] = true
		s.PauseEvents++
		s.sendPFC(up, true)
	case s.pausedUp[in] && s.ingressBytes[in] <= cfg.Unpause:
		s.pausedUp[in] = false
		s.sendPFC(up, false)
	}
}

// sendPFC delivers a pause/unpause control frame to the upstream transmitter
// after the reverse-direction propagation delay. Control frames are modeled
// as out-of-band (they do not occupy queue space), which is how PFC frames
// bypass data queuing in real NICs.
func (s *Switch) sendPFC(up *Port, pause bool) {
	d := up.Link.Delay
	if d > 0 {
		fn := up.resumeFn
		if pause {
			fn = up.pauseFn
		}
		s.eng.Schedule(d, fn)
	} else {
		up.SetPaused(pause)
	}
}
