package netsim

import (
	"math/rand"
	"testing"
)

type idHandler int

func (idHandler) Deliver(*Packet) {}

// TestHandlerTableAgainstMap drives random put/get/del sequences through the
// open-addressed table and a map reference; contents must agree after every
// operation batch, including across growth and backward-shift deletion.
func TestHandlerTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tab handlerTable
	ref := make(map[FlowID]Handler)
	// Keys cluster in a small range so probe chains collide and deletions
	// exercise the backward shift, with occasional far keys.
	key := func() FlowID {
		if rng.Intn(10) == 0 {
			return FlowID(rng.Int63())
		}
		return FlowID(rng.Intn(200))
	}
	for op := 0; op < 20000; op++ {
		f := key()
		switch rng.Intn(3) {
		case 0: // put
			hd := idHandler(f)
			_, dup := ref[f]
			if ok := tab.put(f, hd); ok == dup {
				t.Fatalf("op %d: put(%d) = %v with present=%v", op, f, ok, dup)
			}
			if !dup {
				ref[f] = hd
			}
		case 1: // del
			tab.del(f)
			delete(ref, f)
		case 2: // get
			got := tab.get(f)
			want := ref[f]
			if got != want {
				t.Fatalf("op %d: get(%d) = %v, want %v", op, f, got, want)
			}
		}
		if tab.n != len(ref) {
			t.Fatalf("op %d: size %d, reference %d", op, tab.n, len(ref))
		}
	}
	// Full sweep: every reference entry resolvable, every absent key nil.
	for f, want := range ref {
		if got := tab.get(f); got != want {
			t.Fatalf("final: get(%d) = %v, want %v", f, got, want)
		}
	}
	for i := 0; i < 1000; i++ {
		f := FlowID(rng.Int63())
		if _, ok := ref[f]; !ok && tab.get(f) != nil {
			t.Fatalf("final: get(%d) nonzero for absent key", f)
		}
	}
}

// TestHandlerTableBoundedByPeak checks the deletion path actually reclaims
// slots: after churning far more flows than are ever live at once, the slot
// array is sized by peak concurrency, not by the total number of flows seen.
func TestHandlerTableBoundedByPeak(t *testing.T) {
	var tab handlerTable
	const live = 8
	for f := FlowID(0); f < 10000; f++ {
		tab.put(f, idHandler(f))
		if f >= live {
			tab.del(f - live)
		}
	}
	if tab.n != live {
		t.Fatalf("live count %d, want %d", tab.n, live)
	}
	// 8 live entries fit the minimum table; growth beyond one doubling of
	// the minimum means deleted slots were never reclaimed.
	if len(tab.slots) > 2*handlerTableMinSlots {
		t.Fatalf("table grew to %d slots for %d live handlers: churn is leaking slots", len(tab.slots), live)
	}
}
