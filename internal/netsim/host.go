package netsim

import (
	"fmt"

	"flowbender/internal/sim"
)

// Handler receives packets addressed to a flow terminating at a host.
// TCP senders/receivers and UDP sinks implement it.
//
// On hosts with a packet pool installed (every topology built by
// internal/topo), the delivered packet is recycled as soon as Deliver
// returns: implementations must not retain pkt or its Sacks backing array
// past the call. Values copied out of the packet are, of course, fine.
type Handler interface {
	Deliver(pkt *Packet)
}

// Host is an end host with a single NIC. The paper's per-direction host
// processing delay (20 µs in §4.2, covering kernel + NIC latency) is applied
// both when sending and when receiving, so the bare-metal inter-pod RTT of
// the simulated fat-tree matches the paper's 90 µs.
type Host struct {
	eng *sim.Engine
	id  NodeID
	// NIC is the host's egress port.
	NIC *Port
	// Delay is the per-direction host processing delay.
	Delay sim.Time

	handlers handlerTable
	pool     *PacketPool

	// Counters.
	RxPackets  int64
	RxBytes    int64
	Unclaimed  int64 // packets with no registered handler
	SentwArmed int64
}

// NewHost creates a host whose NIC transmits at rateBps. The NIC queue is
// unbounded: the sending transport's window, not the local NIC, is the
// modeled bottleneck.
func NewHost(eng *sim.Engine, id NodeID, rateBps int64, delay sim.Time) *Host {
	h := &Host{
		eng:   eng,
		id:    id,
		NIC:   NewPort(eng, rateBps),
		Delay: delay,
	}
	h.NIC.Q.Presize(256)
	h.NIC.tag = orderTag(tagKindTx, id, 0)
	return h
}

// ID returns the host's node identifier.
func (h *Host) ID() NodeID { return h.id }

// UsePool routes the host's packet lifecycle through pl: NewPacket draws
// from it, and packets this host consumes (delivered or unclaimed) are
// recycled into it.
func (h *Host) UsePool(pl *PacketPool) {
	h.pool = pl
	h.NIC.pool = pl
}

// NewPacket returns a zeroed packet, drawn from the host's pool when one is
// installed (heap-allocated otherwise). Pool-drawn packets are recycled by
// the fabric at their terminal point — see the PacketPool ownership
// contract.
func (h *Host) NewPacket() *Packet { return h.pool.Get() }

// Register attaches a flow handler; packets for flow are delivered to it.
// Handlers live in a flat open-addressed table (not a map): delivery is the
// per-packet hot path, and the table reclaims slots on Unregister, so a run
// that churns many short flows keeps the table bounded by its peak
// concurrency.
func (h *Host) Register(flow FlowID, hd Handler) {
	if hd == nil {
		panic(fmt.Sprintf("netsim: host %d: nil handler for flow %d", h.id, flow))
	}
	if !h.handlers.put(flow, hd) {
		panic(fmt.Sprintf("netsim: host %d: duplicate handler for flow %d", h.id, flow))
	}
}

// Unregister detaches a flow handler, releasing its dispatch slot. Absent
// flows are a no-op, so teardown paths may call it unconditionally.
func (h *Host) Unregister(flow FlowID) { h.handlers.del(flow) }

// Handler returns the handler registered for flow, or nil.
func (h *Host) Handler(flow FlowID) Handler { return h.handlers.get(flow) }

// HandlerCount returns the number of currently registered flow handlers.
func (h *Host) HandlerCount() int { return h.handlers.n }

// Send emits a packet from this host after the host processing delay.
func (h *Host) Send(pkt *Packet) {
	pkt.debugCheckLive("Host.Send")
	if h.Delay > 0 {
		pkt.scheduleStep(h.eng, h.Delay, stepEnqueue, h, 0)
	} else {
		h.NIC.Enqueue(pkt)
	}
}

// Receive implements Device.
func (h *Host) Receive(pkt *Packet, _ int) {
	pkt.debugCheckLive("Host.Receive")
	h.RxPackets++
	h.RxBytes += int64(pkt.Size)
	if h.Delay > 0 {
		pkt.scheduleStep(h.eng, h.Delay, stepDeliver, h, 0)
	} else {
		h.deliver(pkt)
	}
}

// deliver hands the packet to its flow's handler and then recycles it: the
// host is every packet's terminal point on the success path.
func (h *Host) deliver(pkt *Packet) {
	if hd := h.handlers.get(pkt.Flow); hd != nil {
		hd.Deliver(pkt)
	} else {
		h.Unclaimed++
	}
	h.pool.Put(pkt)
}
