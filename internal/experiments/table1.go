package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// Table1Row is one row of the paper's Table 1: mean and max completion time
// (ms) of k simultaneous equal-size ToR-to-ToR flows, under ECMP and
// FlowBender.
type Table1Row struct {
	Flows           int
	ECMPMeanMs      float64
	ECMPMaxMs       float64
	FBMeanMs        float64
	FBMaxMs         float64
	IdealMs         float64 // k/P * size / rate: perfect balance, instant convergence
	ECMPMaxOverMean float64
	FBMaxOverMean   float64
}

// Table1Result reproduces Table 1 (§4.2.1, functionality validation).
type Table1Result struct {
	FlowBytes int64
	Paths     int
	Rows      []Table1Row
}

// Table1 runs the validation microbenchmark: k ∈ FlowCounts simultaneous
// flows of FlowBytes each from the hosts of one ToR in pod 0 to the hosts of
// one ToR in pod 1. The paper uses 250 MB flows; the scaled default is
// 25 MB (one decade smaller, preserving many-RTT flows and the flows-per-
// path ratios 1, 2, 3 x paths).
func Table1(o Options) *Table1Result {
	p := o.params()
	paths := p.PathsBetweenPods()
	// The paper uses 250 MB flows; reduced scales use 50 MB (still
	// thousands of RTTs per flow, so rerouting has room to converge).
	var size int64 = 50_000_000
	if o.Scale == ScalePaper {
		size = 250_000_000
	}
	if o.Scale == ScaleTiny {
		size = 25_000_000
	}
	counts := []int{1 * paths, 2 * paths, 3 * paths}

	res := &Table1Result{FlowBytes: size, Paths: paths}
	for _, k := range counts {
		row := Table1Row{Flows: k}
		row.IdealMs = float64(k) / float64(paths) * float64(size) * 8 / float64(p.LinkRateBps) * 1000
		for _, scheme := range []Scheme{ECMP, FlowBender} {
			// Micro-benchmarks with a handful of flows are dominated by the
			// luck of the hash draw, so average the mean and max over
			// several seeds below paper scale.
			var mean, max float64
			reps := o.repeats()
			for r := 0; r < reps; r++ {
				oo := o
				oo.Seed = o.Seed + int64(r)*1000
				m, x := oo.runValidation(scheme, k, size)
				mean += m / float64(reps)
				max += x / float64(reps)
			}
			if scheme == ECMP {
				row.ECMPMeanMs, row.ECMPMaxMs = mean, max
			} else {
				row.FBMeanMs, row.FBMaxMs = mean, max
			}
			o.logf("table1: %s k=%d mean=%.1fms max=%.1fms", scheme, k, mean, max)
		}
		row.ECMPMaxOverMean = row.ECMPMaxMs / row.ECMPMeanMs
		row.FBMaxOverMean = row.FBMaxMs / row.FBMeanMs
		res.Rows = append(res.Rows, row)
	}
	return res
}

func (o Options) runValidation(scheme Scheme, k int, size int64) (meanMs, maxMs float64) {
	rng := sim.NewRNG(o.Seed)
	return o.runValidationSetup(scheme.setup(rng.Fork("scheme"), core.Config{}), k, size)
}

// runValidationSetup runs the ToR-to-ToR microbenchmark with an explicit
// scheme setup (the ablation experiment passes raw FlowBender configs).
func (o Options) runValidationSetup(set schemeSetup, k int, size int64) (meanMs, maxMs float64) {
	eng := sim.NewEngine()

	p := o.params()
	p.PFC = set.pfc
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(set.sel)

	ids := workload.NewIDAllocator(netsim.FlowID(o.Seed * 131))
	flows := workload.Validation(ids,
		func(id netsim.FlowID, src, dst *netsim.Host, sz int64) *tcp.Flow {
			return tcp.StartFlow(eng, set.cfg, id, src, dst, sz)
		},
		hostsOf(ft, 0, 0), hostsOf(ft, 1, 0), k, size)

	drain(eng, 60*sim.Second, allFlowsDone(flows))

	var s stats.Sample
	for _, f := range flows {
		if f.Done() {
			s.Add(f.FCT().Seconds() * 1000)
		}
	}
	return s.Mean(), s.Max()
}

// Print writes the table in the paper's layout.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 1: flow completion times, %d MB ToR-to-ToR flows, %d paths\n",
		r.FlowBytes/1_000_000, r.Paths)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Flows\tECMP mean (ms)\tECMP max (ms)\tFlowBender mean (ms)\tFlowBender max (ms)\tideal (ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			row.Flows, row.ECMPMeanMs, row.ECMPMaxMs, row.FBMeanMs, row.FBMaxMs, row.IdealMs)
	}
	tw.Flush()
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  k=%d: max/mean ECMP=%.2f FlowBender=%.2f\n",
			row.Flows, row.ECMPMaxOverMean, row.FBMaxOverMean)
	}
}
