package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// Table1Row is one row of the paper's Table 1: mean and max completion time
// (ms) of k simultaneous equal-size ToR-to-ToR flows, for every scheme in
// Table1Result.Schemes. The per-scheme slices are indexed in parallel with
// Schemes; the values are means over the run's replicate seeds, and
// MeanStdMs carries the across-seed standard deviation of the per-seed
// means.
type Table1Row struct {
	Flows       int
	IdealMs     float64 // k/P * size / rate: perfect balance, instant convergence
	MeanMs      []float64
	MaxMs       []float64
	MeanStdMs   []float64
	MaxOverMean []float64
}

// Table1Result reproduces Table 1 (§4.2.1, functionality validation),
// extended from the paper's two columns to the full comparison set.
type Table1Result struct {
	FlowBytes int64
	Paths     int
	Schemes   []Scheme
	Rows      []Table1Row
	// Seeds is non-zero when Options.Seeds requested explicit multi-seed
	// replication; Print then renders mean ± stddev.
	Seeds int
}

// Cell returns scheme s's mean and max completion time (ms) in row ri. It
// panics if s is not in Schemes.
func (r *Table1Result) Cell(ri int, s Scheme) (meanMs, maxMs float64) {
	for si, sc := range r.Schemes {
		if sc == s {
			return r.Rows[ri].MeanMs[si], r.Rows[ri].MaxMs[si]
		}
	}
	panic(fmt.Sprintf("experiments: scheme %v not in Table1 result", s))
}

// Table1 runs the validation microbenchmark: k ∈ FlowCounts simultaneous
// flows of FlowBytes each from the hosts of one ToR in pod 0 to the hosts of
// one ToR in pod 1. The paper uses 250 MB flows; the scaled default is
// 25 MB (one decade smaller, preserving many-RTT flows and the flows-per-
// path ratios 1, 2, 3 x paths).
func Table1(o Options) *Table1Result {
	p := o.params()
	paths := p.PathsBetweenPods()
	// The paper uses 250 MB flows; reduced scales use 50 MB (still
	// thousands of RTTs per flow, so rerouting has room to converge).
	var size int64 = 50_000_000
	if o.Scale == ScalePaper {
		size = 250_000_000
	}
	if o.Scale == ScaleTiny {
		size = 25_000_000
	}
	counts := []int{1 * paths, 2 * paths, 3 * paths}

	// Micro-benchmarks with a handful of flows are dominated by the luck
	// of the hash draw, so average the mean and max over several seeds
	// below paper scale. Every (k, scheme, seed) triple is an isolated
	// simulation; fan them all out on the pool and aggregate in order.
	type t1Point struct {
		k      int
		scheme Scheme
		rep    int
	}
	reps := o.repeats()
	schemes := AllSchemes
	var points []t1Point
	for _, k := range counts {
		for _, scheme := range schemes {
			for r := 0; r < reps; r++ {
				points = append(points, t1Point{k: k, scheme: scheme, rep: r})
			}
		}
	}
	type t1Out struct{ meanMs, maxMs float64 }
	name := func(pt t1Point) string {
		return o.pointLabel("table1/k=%d/%s/seed=%d", pt.k, pt.scheme, o.seedAt(pt.rep))
	}
	outs := runpool.MapNamed(o.pool(), points, name, func(pt t1Point) t1Out {
		oo := o
		oo.Seed = o.seedAt(pt.rep)
		oo.pointKey = name(pt)
		m, x := oo.runValidation(pt.scheme, pt.k, size)
		return t1Out{meanMs: m, maxMs: x}
	})
	idx := func(ki, si, rep int) int { return (ki*len(schemes)+si)*reps + rep }

	res := &Table1Result{FlowBytes: size, Paths: paths, Schemes: schemes, Seeds: o.Seeds}
	for ki, k := range counts {
		row := Table1Row{
			Flows:       k,
			MeanMs:      make([]float64, len(schemes)),
			MaxMs:       make([]float64, len(schemes)),
			MeanStdMs:   make([]float64, len(schemes)),
			MaxOverMean: make([]float64, len(schemes)),
		}
		row.IdealMs = float64(k) / float64(paths) * float64(size) * 8 / float64(p.LinkRateBps) * 1000
		for si, scheme := range schemes {
			means := make([]float64, reps)
			var mean, max float64
			for r := 0; r < reps; r++ {
				out := outs[idx(ki, si, r)]
				means[r] = out.meanMs
				mean += out.meanMs / float64(reps)
				max += out.maxMs / float64(reps)
			}
			row.MeanMs[si] = mean
			row.MaxMs[si] = max
			row.MeanStdMs[si] = stats.Summarize(means).Std
			row.MaxOverMean[si] = max / mean
			o.logf("table1: %s k=%d mean=%.1fms max=%.1fms", scheme, k, mean, max)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func (o Options) runValidation(scheme Scheme, k int, size int64) (meanMs, maxMs float64) {
	if o.Engine == EngineFluid {
		return o.runValidationFluid(scheme, k, size)
	}
	rng := sim.NewRNG(o.Seed)
	return o.runValidationSetup(scheme.setup(rng.Fork("scheme"), core.Config{}), k, size)
}

// runValidationSetup runs the ToR-to-ToR microbenchmark with an explicit
// scheme setup (the ablation experiment passes raw FlowBender configs).
func (o Options) runValidationSetup(set schemeSetup, k int, size int64) (meanMs, maxMs float64) {
	eng := sim.NewEngine()

	p := o.params()
	p.PFC = set.pfc
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(set.sel)

	ids := workload.NewIDAllocator(netsim.FlowID(o.Seed * 131))
	flows := workload.Validation(ids,
		func(id netsim.FlowID, src, dst *netsim.Host, sz int64) *tcp.Flow {
			return tcp.StartFlow(eng, set.cfg, id, src, dst, sz)
		},
		hostsOf(ft, 0, 0), hostsOf(ft, 1, 0), k, size)

	o.drain(eng, 60*sim.Second, allFlowsDone(flows))
	o.recordPerf(eng)

	var s stats.Sketch
	for _, f := range flows {
		if f.Done() {
			s.Add(f.FCT().Seconds() * 1000)
		}
	}
	return s.Mean(), s.Max()
}

// Print writes the table in the paper's layout, one line per (k, scheme)
// pair — the paper's two columns widened to the full comparison set.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 1: flow completion times, %d MB ToR-to-ToR flows, %d paths\n",
		r.FlowBytes/1_000_000, r.Paths)
	if r.Seeds > 1 {
		fmt.Fprintf(w, "(means ± stddev over %d seeds)\n", r.Seeds)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Flows\tscheme\tmean (ms)\tmax (ms)\tmax/mean\tideal (ms)")
	for _, row := range r.Rows {
		for si, scheme := range r.Schemes {
			if r.Seeds > 1 {
				fmt.Fprintf(tw, "%d\t%s\t%.0f±%.0f\t%.0f\t%.2f\t%.0f\n",
					row.Flows, scheme, row.MeanMs[si], row.MeanStdMs[si],
					row.MaxMs[si], row.MaxOverMean[si], row.IdealMs)
			} else {
				fmt.Fprintf(tw, "%d\t%s\t%.0f\t%.0f\t%.2f\t%.0f\n",
					row.Flows, scheme, row.MeanMs[si], row.MaxMs[si],
					row.MaxOverMean[si], row.IdealMs)
			}
		}
	}
	tw.Flush()
}
