package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fixedFaultMatrix builds a deterministic result with recognizable values,
// including one failed cell, to pin the rendered table.
func fixedFaultMatrix() *FaultMatrixResult {
	res := &FaultMatrixResult{
		FlowBytes: 10_000_000,
		FailAt:    1_000_000,     // 1ms
		Deadline:  2_000_000_000, // 2s
		Scenarios: []string{"cut", "gray1"},
		Schemes:   []Scheme{ECMP, FlowBender},
		Cells: map[string]map[Scheme]FaultCell{
			"cut": {
				ECMP: {Total: 8, Completed: 2, Affected: 6,
					MeanAffectedFCTms: 812.5, MeanRecoveryMs: 640.2, FlapTransitions: 2},
				FlowBender: {Total: 8, Completed: 8, Affected: 6,
					MeanAffectedFCTms: 48.1, MeanRecoveryMs: 21.7, Reroutes: 27, FlapTransitions: 2},
			},
			"gray1": {
				ECMP:       {Total: 8, Completed: 8, Affected: 1, MeanAffectedFCTms: 33.3, MeanRecoveryMs: 12.0, GrayDrops: 76},
				FlowBender: {Err: "task panicked: point exploded"},
			},
		},
	}
	return res
}

func TestGoldenFaultMatrixPrint(t *testing.T) {
	var buf bytes.Buffer
	fixedFaultMatrix().Print(&buf)
	checkGolden(t, "faultmatrix", buf.String())
}

// TestFaultMatrixSmoke runs a reduced real matrix (two scenarios at tiny
// scale) and checks the paper's §3.3.2 qualitative claims hold: FlowBender
// completes at least as many flows as ECMP under a clean cut, reroutes, and
// the gray scenario records silent drops. It runs in short mode: this is
// the CI smoke for the fault-injection path.
func TestFaultMatrixSmoke(t *testing.T) {
	o := Options{Seed: 7, Scale: ScaleTiny, Parallelism: 4,
		FaultScenarios: []string{"cut", "gray1"}}
	res := FaultMatrix(o)
	for _, name := range []string{"cut", "gray1"} {
		for _, s := range res.Schemes {
			c := res.Cells[name][s]
			if c.Err != "" {
				t.Fatalf("%s/%s failed: %s", name, s, c.Err)
			}
			if c.Total == 0 {
				t.Fatalf("%s/%s started no flows", name, s)
			}
		}
	}
	cut := res.Cells["cut"]
	if cut[FlowBender].Completed < cut[ECMP].Completed {
		t.Errorf("FlowBender completed %d < ECMP %d under a clean cut",
			cut[FlowBender].Completed, cut[ECMP].Completed)
	}
	if cut[FlowBender].Reroutes == 0 {
		t.Error("FlowBender never rerouted around the cut")
	}
	if cut[ECMP].Reroutes != 0 {
		t.Errorf("ECMP reported %d reroutes", cut[ECMP].Reroutes)
	}
	if res.Cells["gray1"][ECMP].GrayDrops == 0 {
		t.Error("gray scenario recorded no silent drops")
	}
}

func renderFaultMatrix(o Options) string {
	var buf bytes.Buffer
	FaultMatrix(o).Print(&buf)
	return buf.String()
}

// TestParallelDeterminismFaultMatrix extends the runpool contract to the
// fault matrix: the full suite prints byte-identical tables at parallelism
// 1 and 8 (fault events and RNG jitter are all engine-driven). The name
// matches CI's dedicated 'TestParallelDeterminism' race job.
func TestParallelDeterminismFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 7, Scale: ScaleTiny}

	o.Parallelism = 1
	seq := renderFaultMatrix(o)
	o.Parallelism = 8
	par := renderFaultMatrix(o)
	if par != seq {
		t.Fatalf("fault matrix differs at P=8 vs P=1:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestFaultMatrixPanickingPointReported pins the crash-proof harness
// contract end to end: a simulation point that panics (here via an unknown
// scenario name, whose plan builder panics inside the worker) is rendered
// as a FAILED cell while every other point still completes.
func TestFaultMatrixPanickingPointReported(t *testing.T) {
	o := Options{Seed: 7, Scale: ScaleTiny, Parallelism: 4,
		FaultScenarios: []string{"cut", "bogus"}}
	res := FaultMatrix(o)
	for _, s := range res.Schemes {
		c := res.Cells["bogus"][s]
		if c.Err == "" {
			t.Fatalf("bogus/%s reported no error", s)
		}
		if !strings.Contains(c.Err, "unknown fault scenario") {
			t.Fatalf("bogus/%s error does not name the cause: %s", s, c.Err)
		}
		if good := res.Cells["cut"][s]; good.Err != "" || good.Total == 0 {
			t.Fatalf("healthy point cut/%s did not survive the panicking neighbor: %+v", s, good)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "FAILED:") {
		t.Fatal("rendered table does not surface the failed point")
	}
}

// TestFaultCellJSONHandlesNaN pins that a cell with no completed affected
// flows (NaN mean FCT) still encodes — encoding/json rejects raw NaN.
func TestFaultCellJSONHandlesNaN(t *testing.T) {
	res := fixedFaultMatrix()
	cell := res.Cells["cut"][ECMP]
	cell.MeanAffectedFCTms = math.NaN()
	res.Cells["cut"][ECMP] = cell
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatalf("NaN cell failed to encode: %v", err)
	}
	if !strings.Contains(buf.String(), `"MeanAffectedFCTms": null`) {
		t.Fatalf("NaN not rendered as null:\n%s", buf.String())
	}
}

// TestRunAllSurvivesPanickingExperiment pins the harness-level recovery: one
// experiment panicking mid-run must not take down the others.
func TestRunAllSurvivesPanickingExperiment(t *testing.T) {
	reg := []RegistryEntry{
		{"boom", "always panics",
			func(Options) Printable { panic("experiment exploded") }},
		{"faults-subset", "healthy fault run",
			func(o Options) Printable {
				o.FaultScenarios = []string{"cut"}
				return FaultMatrix(o)
			}},
	}
	var buf bytes.Buffer
	runExperiments(Options{Seed: 7, Scale: ScaleTiny, Parallelism: 4}, &buf, reg)
	out := buf.String()
	if !strings.Contains(out, "==== boom") || !strings.Contains(out, "FAILED: experiment exploded") {
		t.Fatalf("panicking experiment not reported inline:\n%s", out)
	}
	if !strings.Contains(out, "==== faults-subset") || !strings.Contains(out, "cut") ||
		strings.Contains(out, "faults-subset — healthy fault run ====\nFAILED") {
		t.Fatalf("healthy experiment did not complete:\n%s", out)
	}
}
