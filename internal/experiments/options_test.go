package experiments

import (
	"strings"
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/sim"
)

func TestScaleParams(t *testing.T) {
	cases := map[ScaleLevel]int{
		ScaleTiny:  16,
		ScaleSmall: 64,
		ScalePaper: 128,
	}
	for scale, hosts := range cases {
		o := Options{Scale: scale}
		if got := o.params().NumHosts(); got != hosts {
			t.Errorf("%v: hosts = %d, want %d", scale, got, hosts)
		}
	}
}

func TestScaleStrings(t *testing.T) {
	for _, s := range []ScaleLevel{ScaleTiny, ScaleSmall, ScalePaper} {
		if strings.Contains(s.String(), "?") {
			t.Errorf("scale %d has no name", int(s))
		}
	}
}

func TestFlowCountOverride(t *testing.T) {
	o := Options{Scale: ScaleSmall}
	if o.flowCount() != 1500 {
		t.Errorf("default small flow count = %d", o.flowCount())
	}
	o.FlowCount = 7
	if o.flowCount() != 7 {
		t.Error("override ignored")
	}
}

func TestRepeats(t *testing.T) {
	if (Options{Scale: ScaleSmall}).repeats() != 3 {
		t.Error("small scale should repeat 3x")
	}
	if (Options{Scale: ScalePaper}).repeats() != 1 {
		t.Error("paper scale should repeat 1x")
	}
	if (Options{Scale: ScaleSmall, Repeats: 5}).repeats() != 5 {
		t.Error("explicit repeats ignored")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Scale != ScaleSmall || o.Seed != 1 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestStabilityGapApplied(t *testing.T) {
	setup := FlowBender.setup(newTestRNG(), zeroFB())
	if setup.cfg.FlowBender == nil {
		t.Fatal("FlowBender config missing")
	}
	if setup.cfg.FlowBender.MinEpochGap != StabilityGap {
		t.Errorf("gap = %d, want %d", setup.cfg.FlowBender.MinEpochGap, StabilityGap)
	}
	if !setup.cfg.FlowBender.DesyncN {
		t.Error("desync not applied by default")
	}
}

func TestSchemeSetups(t *testing.T) {
	ecmp := ECMP.setup(newTestRNG(), zeroFB())
	if ecmp.cfg.FlowBender != nil || ecmp.pfc != nil {
		t.Error("ECMP setup carries extras")
	}
	detail := DeTail.setup(newTestRNG(), zeroFB())
	if detail.pfc == nil || !detail.cfg.DisableFastRetx {
		t.Error("DeTail setup missing PFC or fast-retx disable")
	}
	if detail.pfc.Pause != 20_000 || detail.pfc.Unpause != 10_000 {
		t.Errorf("DeTail PFC thresholds wrong: %+v", detail.pfc)
	}
	rps := RPS.setup(newTestRNG(), zeroFB())
	if rps.sel == nil || rps.pfc != nil {
		t.Error("RPS setup wrong")
	}
}

func newTestRNG() *sim.RNG { return sim.NewRNG(1) }

func zeroFB() core.Config { return core.Config{} }
