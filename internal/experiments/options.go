package experiments

import (
	"io"
	"time"

	"flowbender/internal/checkpoint"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// ScaleLevel selects the fabric size and sample counts of a run.
type ScaleLevel int

// Supported scales.
const (
	// ScaleTiny is for unit tests: 16 servers, very few flows.
	ScaleTiny ScaleLevel = iota
	// ScaleSmall (default) preserves the paper's oversubscription and
	// flows-per-path ratio on a 64-server fabric.
	ScaleSmall
	// ScalePaper is the full §4.2 configuration: 128 servers, 8 paths
	// between pods, and larger samples.
	ScalePaper
	// ScaleHyper is a 10k-host fabric (16 pods × 16 ToRs × 40 servers)
	// far beyond what the packet engine can execute; it exists for the
	// fluid engine's scaling runs and refuses to run under EnginePacket.
	ScaleHyper
	// ScaleMega is a 102,400-host fabric (32 pods × 32 ToRs × 100
	// servers), the incremental fluid solver's headline rung. Like hyper
	// it is fluid-only; per-link and per-host state is dense arrays, so
	// the whole fabric fits in tens of MB.
	ScaleMega
)

func (s ScaleLevel) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	case ScaleHyper:
		return "hyper"
	case ScaleMega:
		return "mega"
	}
	return "scale?"
}

// EngineKind selects the simulation fidelity tier experiments run on.
type EngineKind int

const (
	// EnginePacket is the discrete-event packet engine (default): per-packet
	// forwarding, DCTCP marking, retransmission — the reference fidelity.
	EnginePacket EngineKind = iota
	// EngineFluid is the flow-level engine (internal/fluid): flows are rate
	// allocations re-solved on arrival/finish/reroute events. Orders of
	// magnitude faster; congestion signals are modeled, not emergent. Only
	// the alltoall, table1, and production experiments support it.
	EngineFluid
)

func (e EngineKind) String() string {
	switch e {
	case EnginePacket:
		return "packet"
	case EngineFluid:
		return "fluid"
	}
	return "engine?"
}

// EngineByName parses an -engine flag value.
func EngineByName(name string) (EngineKind, bool) {
	switch name {
	case "", "packet":
		return EnginePacket, true
	case "fluid":
		return EngineFluid, true
	}
	return EnginePacket, false
}

// Options configures an experiment run.
type Options struct {
	// Seed drives all randomness; identical Options give identical results.
	Seed int64
	// Scale selects fabric size and sample counts.
	Scale ScaleLevel
	// Engine selects the simulation fidelity tier (packet or fluid). The
	// zero value is the packet engine, so existing call sites and
	// checkpoint descriptors are unchanged.
	Engine EngineKind
	// FlowCount overrides the per-run number of workload flows (0 = the
	// scale's default).
	FlowCount int
	// JobCount overrides the number of partition-aggregate jobs.
	JobCount int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// MaxWait bounds how long (virtual time) a run waits for in-flight
	// flows to drain after arrivals stop. 0 = 10 s.
	MaxWait sim.Time
	// Repeats averages micro-benchmarks (Table 1) over this many seeds;
	// 0 picks a scale-appropriate default (3 below paper scale, 1 at it).
	Repeats int

	// Parallelism bounds how many independent simulation points run
	// concurrently. Each point is an isolated sim.Engine with its own
	// forked RNG, and outcomes are collected in submission order, so
	// results are byte-identical for every value of this field. 0 means
	// GOMAXPROCS; 1 is fully sequential.
	Parallelism int

	// Shards splits each fat-tree simulation point across this many
	// conservatively synchronized engine shards (bounded-lag windows, see
	// sim.ShardSet). 0 or 1 runs serial. Results are byte-identical at any
	// value: points that cannot shard safely — schemes with shared mid-run
	// randomness (FlowBender's desync draws, RPS's and DiffFlow's spray
	// selectors), host-side replica planning (RepFlow), or synchronous
	// fabric back-pressure (DeTail's PFC) — automatically fall back to
	// serial execution; ECMP, Flowlet, and FlowDyn points shard (see
	// Scheme.shardable). Shards composes with Parallelism: the
	// shard workers borrow CPU tokens from the same pool that admits
	// sibling points, so `-parallel N -shards M` never oversubscribes.
	Shards int

	// SolverShards bounds how many workers the fluid engine's incremental
	// rate solver may use for one commit's independent bottleneck
	// components (see fluid.Config.SolverShards). 0 or 1 solves serially.
	// Results are bit-identical at any value — the partition and the
	// merge order are deterministic — so, like Parallelism, it is not
	// part of a run's checkpoint identity. Only fluid-engine runs read it.
	SolverShards int

	// Seeds replicates each measured point over this many seeds (Seed,
	// Seed+1000, Seed+2000, ...) and reports mean ± stddev where the
	// experiment supports it (all-to-all, sensitivity, partition-
	// aggregate; Table 1 folds it into Repeats). 0 or 1 runs one seed.
	Seeds int

	// CDF overrides the flow-size distribution of the all-to-all and
	// production workloads (nil = the paper's web-search CDF, or the CDF
	// the production Workload names). Load with workload.ParseCDF to run
	// external distributions.
	CDF workload.CDF

	// FaultScenarios restricts the fault-matrix experiment to the named
	// scenarios (see FaultScenarioNames); empty runs the whole suite.
	FaultScenarios []string

	// Workload names the production-mix traffic shape: "websearch"
	// (heavy-tailed sizes, diurnal arrivals with a load spike) or
	// "datamining" (mice/elephant split, Poisson arrivals). Empty =
	// websearch. Only the production experiment reads it.
	Workload string

	// Load is the production-mix offered load as a fraction of bisection
	// bandwidth (0 = 0.5). Only the production experiment reads it.
	Load float64

	// MixSchemes restricts the production experiment's scheme comparison
	// (nil = ECMP, FlowBender, RepFlow, DiffFlow — the schemes whose
	// designs target production flow-size mixes).
	MixSchemes []Scheme

	// FullSampleStats switches the production experiment's FCT accounting
	// from the streaming sketch to the legacy hold-every-sample path. Used
	// by the differential test proving the two render identical output at
	// small scale; memory grows with flow count, so never use it at
	// production sizes.
	FullSampleStats bool

	// Perf, when non-nil, accumulates simulator throughput (events
	// executed, virtual time advanced) across every simulation point the
	// experiment runs. Purely observational: it never alters scheduling,
	// so attaching it cannot change experiment output.
	Perf *PerfStats

	// Watchdog, when > 0, bounds each simulation point's wall-clock time:
	// a point exceeding it is reported as failed instead of hanging the
	// run. Off by default — whether a borderline point trips it depends on
	// machine speed, so leave it off when byte-identical output matters.
	Watchdog time.Duration

	// Ckpt, when non-nil, makes the run crash-safe: completed experiments
	// are journaled (a resumed RunAll serves them from the file instead of
	// re-simulating), in-flight points record engine watermarks at
	// quiescent barriers, and a resumed point verifies the recorded
	// watermark as its deterministic replay passes it. nil (the default)
	// changes nothing: every simulation path is byte-identical with and
	// without a manager attached.
	Ckpt *checkpoint.Manager

	// CheckpointEvery is the virtual-time cadence between watermarks when
	// Ckpt is set (0 = 500 ms). It is part of the checkpoint descriptor:
	// resume must use the same cadence so the replay passes the same mark
	// instants.
	CheckpointEvery sim.Time

	// pointKey labels the simulation point this Options copy is executing
	// (e.g. "alltoall/load=0.4/FlowBender/seed=7/shards=1"). Set by the
	// fan-out call sites; it keys the point's checkpoint watermarks and is
	// the same label runpool attaches to failures.
	pointKey string

	// sharedPool, when non-nil, is used instead of a fresh pool so that
	// RunAll can bound concurrency across experiments with one limit.
	sharedPool *runpool.Pool

	// execPool is the pool whose slot the current simulation point is
	// running under; the sharded runner borrows extra worker tokens from
	// it (see Pool.TryAcquire) so shard workers and sibling points share
	// one CPU budget. Set by the Map call sites that fan points out.
	execPool *runpool.Pool

	// debugShardWindow (simdebug tripwire tests only) overrides the
	// computed bounded-lag window and forces single-worker execution so
	// the resulting lookahead violation panics on the caller's goroutine.
	debugShardWindow sim.Time
}

// DefaultOptions returns the defaults used by the benchmark harness.
func DefaultOptions() Options {
	return Options{Seed: 1, Scale: ScaleSmall}
}

func (o Options) params() topo.Params {
	switch o.Scale {
	case ScaleTiny:
		return topo.TinyScale()
	case ScalePaper:
		return topo.PaperScale()
	case ScaleHyper:
		return topo.HyperScale()
	case ScaleMega:
		return topo.MegaScale()
	default:
		return topo.SmallScale()
	}
}

func (o Options) flowCount() int {
	if o.FlowCount > 0 {
		return o.FlowCount
	}
	switch o.Scale {
	case ScaleTiny:
		return 200
	case ScalePaper:
		return 4000
	case ScaleHyper:
		return 100000
	case ScaleMega:
		return 250000
	default:
		return 1500
	}
}

func (o Options) jobCount() int {
	if o.JobCount > 0 {
		return o.JobCount
	}
	switch o.Scale {
	case ScaleTiny:
		return 30
	case ScalePaper:
		return 300
	default:
		return 150
	}
}

func (o Options) repeats() int {
	if o.Repeats > 0 {
		return o.Repeats
	}
	if o.Seeds > 1 {
		return o.Seeds
	}
	if o.Scale >= ScalePaper {
		return 1
	}
	return 3
}

// seeds is the replication count for experiments that support Options.Seeds.
func (o Options) seeds() int {
	if o.Seeds > 1 {
		return o.Seeds
	}
	return 1
}

// seedAt returns the seed of replicate rep (rep 0 = the base seed). The
// stride keeps replicate streams far apart and matches Table 1's historical
// Seed+1000r convention.
func (o Options) seedAt(rep int) int64 {
	return o.Seed + int64(rep)*1000
}

// pool returns the worker pool simulation points fan out on: the shared
// pool inside RunAll, otherwise a fresh one sized by Parallelism with the
// watchdog armed.
func (o Options) pool() *runpool.Pool {
	if o.sharedPool != nil {
		return o.sharedPool
	}
	p := runpool.New(o.Parallelism)
	p.SetWatchdog(o.Watchdog)
	return p
}

func (o Options) maxWait() sim.Time {
	if o.MaxWait > 0 {
		return o.MaxWait
	}
	return 10 * sim.Second
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		_, _ = io.WriteString(o.Log, sprintfLn(format, args...))
	}
}
