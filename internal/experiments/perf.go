package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"flowbender/internal/sim"
)

// PerfStats accumulates simulator throughput over every simulation point an
// experiment runs: total events executed and total virtual time simulated.
// Combined with the wall-clock time of the run it yields the two headline
// throughput figures — events per wall second and simulated seconds per wall
// second — that the benchmark snapshots track alongside latency metrics.
//
// Points run concurrently on the experiment pool, so the counters are
// atomic; attach one PerfStats via Options.Perf and read it after the
// experiment returns.
type PerfStats struct {
	// Events counts engine events executed across all points.
	Events atomic.Int64
	// SimNanos sums the virtual time each point's engine reached.
	SimNanos atomic.Int64
	// FlowsCompleted counts transport flows that delivered their full
	// payload, across all points of the experiments that report it (the
	// production mix and the all-to-all family).
	FlowsCompleted atomic.Int64

	mu sync.Mutex
	// shardEvents[i] accumulates events executed by shard i across all
	// sharded points (empty when every point ran serial).
	shardEvents []int64
}

// ShardEvents returns per-shard executed-event totals accumulated over every
// sharded simulation point, or nil if no point ran sharded. The slice is a
// copy.
func (p *PerfStats) ShardEvents() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.shardEvents) == 0 {
		return nil
	}
	out := make([]int64, len(p.shardEvents))
	copy(out, p.shardEvents)
	return out
}

func (p *PerfStats) addShard(shard int, events int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.shardEvents) <= shard {
		p.shardEvents = append(p.shardEvents, 0)
	}
	p.shardEvents[shard] += events
}

// FlowsPerSec returns completed flows per wall-clock second.
func (p *PerfStats) FlowsPerSec(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(p.FlowsCompleted.Load()) / wall.Seconds()
}

// EventsPerSec returns executed events per wall-clock second.
func (p *PerfStats) EventsPerSec(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(p.Events.Load()) / wall.Seconds()
}

// SimSecPerWallSec returns simulated seconds advanced per wall-clock second.
func (p *PerfStats) SimSecPerWallSec(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return (sim.Time(p.SimNanos.Load())).Seconds() / wall.Seconds()
}

// recordFlows folds one finished simulation point's completed-flow count
// into the attached PerfStats, if any.
func (o Options) recordFlows(n int64) {
	if o.Perf == nil {
		return
	}
	o.Perf.FlowsCompleted.Add(n)
}

// recordPerf folds one finished simulation point's engine totals into the
// attached PerfStats, if any. Every experiment calls it right after its
// engine drains.
func (o Options) recordPerf(eng *sim.Engine) {
	if o.Perf == nil {
		return
	}
	o.Perf.Events.Add(int64(eng.Executed))
	o.Perf.SimNanos.Add(int64(eng.Now()))
}

// recordPerfShards folds one finished sharded point into the attached
// PerfStats: total events across shards, the furthest virtual time any shard
// reached, and a per-shard event breakdown.
func (o Options) recordPerfShards(engs []*sim.Engine) {
	if o.Perf == nil {
		return
	}
	var total int64
	var maxNow sim.Time
	for i, eng := range engs {
		total += int64(eng.Executed)
		if eng.Now() > maxNow {
			maxNow = eng.Now()
		}
		o.Perf.addShard(i, int64(eng.Executed))
	}
	o.Perf.Events.Add(total)
	o.Perf.SimNanos.Add(int64(maxNow))
}
