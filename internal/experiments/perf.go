package experiments

import (
	"sync/atomic"
	"time"

	"flowbender/internal/sim"
)

// PerfStats accumulates simulator throughput over every simulation point an
// experiment runs: total events executed and total virtual time simulated.
// Combined with the wall-clock time of the run it yields the two headline
// throughput figures — events per wall second and simulated seconds per wall
// second — that the benchmark snapshots track alongside latency metrics.
//
// Points run concurrently on the experiment pool, so the counters are
// atomic; attach one PerfStats via Options.Perf and read it after the
// experiment returns.
type PerfStats struct {
	// Events counts engine events executed across all points.
	Events atomic.Int64
	// SimNanos sums the virtual time each point's engine reached.
	SimNanos atomic.Int64
}

// EventsPerSec returns executed events per wall-clock second.
func (p *PerfStats) EventsPerSec(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(p.Events.Load()) / wall.Seconds()
}

// SimSecPerWallSec returns simulated seconds advanced per wall-clock second.
func (p *PerfStats) SimSecPerWallSec(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return (sim.Time(p.SimNanos.Load())).Seconds() / wall.Seconds()
}

// recordPerf folds one finished simulation point's engine totals into the
// attached PerfStats, if any. Every experiment calls it right after its
// engine drains.
func (o Options) recordPerf(eng *sim.Engine) {
	if o.Perf == nil {
		return
	}
	o.Perf.Events.Add(int64(eng.Executed))
	o.Perf.SimNanos.Add(int64(eng.Now()))
}
