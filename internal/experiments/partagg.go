package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// DefaultFanIns are Figure 5's x-axis values.
var DefaultFanIns = []int{4, 8, 16, 32}

// PartAggResult reproduces Figure 5: the average completion time of
// partition-aggregate jobs (the last flow of each incast), normalized to
// ECMP, as the fan-in degree varies at 40% load.
type PartAggResult struct {
	FanIns  []int
	Schemes []Scheme
	// NormJCT[fanin][scheme]: average job completion normalized to ECMP.
	NormJCT map[int]map[Scheme]float64
	// AbsJCTms[fanin][scheme]: absolute average job completion in ms
	// (mean across seeds).
	AbsJCTms map[int]map[Scheme]float64
	// JCTStdMs[fanin][scheme]: across-seed stddev of the average job
	// completion (0 with one seed).
	JCTStdMs map[int]map[Scheme]float64
	Load     float64
	JobBytes int64
	// Seeds is the replication count the averages were aggregated over.
	Seeds int
}

// PartitionAggregate runs the §4.2.4 incast workload: 1 MB transactions
// split evenly across n workers, arriving as a Poisson process at 40% load.
// The (fan-in, scheme, seed) points fan out across Options.Parallelism
// workers.
func PartitionAggregate(o Options) *PartAggResult {
	reps := o.seeds()
	res := &PartAggResult{
		FanIns:   DefaultFanIns,
		Schemes:  AllSchemes,
		NormJCT:  make(map[int]map[Scheme]float64),
		AbsJCTms: make(map[int]map[Scheme]float64),
		JCTStdMs: make(map[int]map[Scheme]float64),
		Load:     0.4,
		JobBytes: 1_000_000,
		Seeds:    reps,
	}
	type point struct {
		fanIn  int
		scheme Scheme
		rep    int
	}
	var points []point
	for _, fanIn := range res.FanIns {
		for _, s := range res.Schemes {
			for rep := 0; rep < reps; rep++ {
				points = append(points, point{fanIn: fanIn, scheme: s, rep: rep})
			}
		}
	}
	name := func(pt point) string {
		return o.pointLabel("partagg/fanin=%d/%s/seed=%d", pt.fanIn, pt.scheme, o.seedAt(pt.rep))
	}
	outs := runpool.MapNamed(o.pool(), points, name, func(pt point) float64 {
		oo := o
		oo.Seed = o.seedAt(pt.rep)
		oo.pointKey = name(pt)
		return oo.runPartAgg(pt.scheme, pt.fanIn, res.Load, res.JobBytes)
	})
	idx := func(fi, si, rep int) int { return (fi*len(res.Schemes)+si)*reps + rep }

	for fi, fanIn := range res.FanIns {
		norm := make(map[Scheme]float64)
		abs := make(map[Scheme]float64)
		std := make(map[Scheme]float64)
		for si, s := range res.Schemes {
			jcts := make([]float64, reps)
			for rep := 0; rep < reps; rep++ {
				jcts[rep] = outs[idx(fi, si, rep)]
			}
			agg := stats.Summarize(jcts)
			abs[s] = agg.Mean * 1000
			std[s] = agg.Std * 1000
			o.logf("part-agg: fanin=%d %s avgJCT=%.3gms", fanIn, s, agg.Mean*1000)
		}
		for _, s := range res.Schemes {
			norm[s] = stats.Ratio(abs[s], abs[ECMP])
		}
		res.NormJCT[fanIn] = norm
		res.AbsJCTms[fanIn] = abs
		res.JCTStdMs[fanIn] = std
	}
	return res
}

func (o Options) runPartAgg(scheme Scheme, fanIn int, load float64, jobBytes int64) float64 {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)
	set := scheme.setup(rng.Fork("scheme"), core.Config{})

	p := o.params()
	p.PFC = set.pfc
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(set.sel)

	gen := &workload.PartitionAggregate{
		Eng:   eng,
		RNG:   rng.Fork("workload"),
		Hosts: ft.Hosts,
		IDs:   &workload.IDAllocator{},
		Start: func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
			return tcp.StartFlow(eng, set.cfg, id, src, dst, size)
		},
		JobBytes: jobBytes,
		FanIn:    fanIn,
		MeanInterarrival: workload.JobInterarrival(
			load, p.BisectionBps(), p.InterPodFraction(), jobBytes),
		MaxJobs: o.jobCount(),
	}
	gen.Run()
	o.drain(eng, o.maxWait(), func() bool {
		if len(gen.Jobs) < gen.MaxJobs {
			return false
		}
		for _, j := range gen.Jobs {
			if !j.Done() {
				return false
			}
		}
		return true
	})
	o.recordPerf(eng)

	var s stats.Sketch
	for _, j := range gen.Jobs {
		if j.Done() {
			s.Add(j.CompletionTime().Seconds())
		}
	}
	return s.Mean()
}

// Print writes Figure 5 as a table.
func (r *PartAggResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: partition-aggregate avg job completion time normalized to ECMP (load %.0f%%, %d KB jobs)\n",
		r.Load*100, r.JobBytes/1000)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "fan-in")
	for _, s := range r.Schemes {
		if s == ECMP {
			continue
		}
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw, "\tECMP abs (ms)")
	for _, fanIn := range r.FanIns {
		fmt.Fprintf(tw, "%d", fanIn)
		for _, s := range r.Schemes {
			if s == ECMP {
				continue
			}
			fmt.Fprintf(tw, "\t%.2f", r.NormJCT[fanIn][s])
		}
		fmt.Fprintf(tw, "\t%.2f\n", r.AbsJCTms[fanIn][ECMP])
	}
	tw.Flush()
}
