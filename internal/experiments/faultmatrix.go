package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/faults"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// faultScenario is one named chaos scenario of the matrix: a declarative
// fault plan built from the run's fault time and deadline.
type faultScenario struct {
	name string
	desc string
	plan func(failAt, deadline sim.Time) faults.Plan
}

// faultTarget is the cable every scenario stresses: pod 0's first
// aggregation-to-core uplink, the same cable the linkfailure experiment
// cuts, so the two experiments are directly comparable.
const faultTarget = "aggcore:0/0/0"

// faultScenarios is the scenario suite, in presentation order.
var faultScenarios = []faultScenario{
	{"cut", "clean bidirectional cable cut, never restored",
		func(failAt, _ sim.Time) faults.Plan {
			return faults.Plan{Events: []faults.Event{faults.Cut(failAt, faultTarget)}}
		}},
	{"halfopen", "one direction cut: traffic enters, ACKs never return",
		func(failAt, _ sim.Time) faults.Plan {
			return faults.Plan{Events: []faults.Event{
				faults.HalfOpenCut(failAt, faultTarget, faults.AtoB)}}
		}},
	{"flap10ms", "cable flaps down/up every 10 ms (±20% jitter) for a quarter of the run",
		func(failAt, deadline sim.Time) faults.Plan {
			return faults.Plan{Events: []faults.Event{faults.FlapLink(
				failAt, faultTarget, 10*sim.Millisecond, 10*sim.Millisecond, 0.2, deadline/4)}}
		}},
	{"flap100ms", "cable flaps down/up every 100 ms (±20% jitter) for a quarter of the run",
		func(failAt, deadline sim.Time) faults.Plan {
			return faults.Plan{Events: []faults.Event{faults.FlapLink(
				failAt, faultTarget, 100*sim.Millisecond, 100*sim.Millisecond, 0.2, deadline/4)}}
		}},
	{"gray01", "gray failure: cable silently drops 0.1% of packets",
		func(failAt, _ sim.Time) faults.Plan {
			return faults.Plan{Events: []faults.Event{faults.Gray(failAt, faultTarget, 0.001)}}
		}},
	{"gray1", "gray failure: cable silently drops 1% of packets",
		func(failAt, _ sim.Time) faults.Plan {
			return faults.Plan{Events: []faults.Event{faults.Gray(failAt, faultTarget, 0.01)}}
		}},
	{"degrade25", "cable degraded to 25% of its line rate",
		func(failAt, _ sim.Time) faults.Plan {
			return faults.Plan{Events: []faults.Event{
				faults.DegradeLink(failAt, faultTarget, 0.25)}}
		}},
}

// FaultScenarioNames lists the selectable fault scenarios (for -faults).
func FaultScenarioNames() []string {
	names := make([]string, len(faultScenarios))
	for i, s := range faultScenarios {
		names[i] = s.name
	}
	return names
}

// FaultCell is one (scenario, scheme) measurement.
type FaultCell struct {
	Total     int // flows started
	Completed int // finished before the deadline
	Affected  int // flows that saw at least one RTO
	// MeanAffectedFCTms is the mean completion time of affected flows that
	// did complete (NaN when none did).
	MeanAffectedFCTms float64
	// MeanRecoveryMs averages the per-flow time-to-recover episodes (first
	// post-fault RTO to the next delivered ACK).
	MeanRecoveryMs float64
	// Reroutes counts FlowBender path re-draws across all flows.
	Reroutes int64
	// GrayDrops counts packets silently lost on the faulted cable.
	GrayDrops int64
	// FlapTransitions counts the faulted cable's down/up state changes
	// (per direction, summed).
	FlapTransitions int64
	// Err is non-empty when the point failed (panic, watchdog, bad plan)
	// instead of producing a measurement.
	Err string
}

// FaultMatrixResult is the scenario x scheme comparison.
type FaultMatrixResult struct {
	FlowBytes int64
	FailAt    sim.Time
	Deadline  sim.Time

	Scenarios []string // row order
	Schemes   []Scheme // column order
	Cells     map[string]map[Scheme]FaultCell
}

// faultPoint is one simulation point of the matrix.
type faultPoint struct {
	scenario faultScenario
	scheme   Scheme
}

// FaultMatrix runs the chaos-scenario suite: every fault scenario crossed
// with the full scheme comparison set, measuring completion rate,
// affected-flow FCT, time-to-recover, and reroute counts. Points run in
// parallel on the pool; a point that panics or trips the watchdog is
// reported as a failed cell and the rest of the matrix still completes.
func FaultMatrix(o Options) *FaultMatrixResult {
	res := &FaultMatrixResult{
		FlowBytes: 10_000_000,
		FailAt:    1 * sim.Millisecond,
		Deadline:  2 * sim.Second,
		Schemes:   AllSchemes,
		Cells:     make(map[string]map[Scheme]FaultCell),
	}
	if o.Scale == ScaleTiny {
		res.FlowBytes = 1_000_000
	}
	scenarios := selectScenarios(o.FaultScenarios)
	var points []faultPoint
	for _, sc := range scenarios {
		res.Scenarios = append(res.Scenarios, sc.name)
		res.Cells[sc.name] = make(map[Scheme]FaultCell)
		for _, scheme := range res.Schemes {
			points = append(points, faultPoint{scenario: sc, scheme: scheme})
		}
	}
	name := func(pt faultPoint) string {
		return o.pointLabel("faults/%s/%s/seed=%d", pt.scenario.name, pt.scheme, o.Seed)
	}
	outs := runpool.MapResultsNamed(o.pool(), points, name, func(pt faultPoint) FaultCell {
		oo := o
		oo.pointKey = name(pt)
		return res.runOne(oo, pt)
	})
	for i, pt := range points {
		cell := outs[i].Val
		if outs[i].Err != nil {
			cell = FaultCell{Err: outs[i].Err.Error()}
		}
		res.Cells[pt.scenario.name][pt.scheme] = cell
		if cell.Err != "" {
			o.logf("faults: %s/%s FAILED: %s", pt.scenario.name, pt.scheme, cell.Err)
		} else {
			o.logf("faults: %s/%s completed=%d/%d affected=%d recovery=%.1fms",
				pt.scenario.name, pt.scheme, cell.Completed, cell.Total,
				cell.Affected, cell.MeanRecoveryMs)
		}
	}
	return res
}

// selectScenarios filters the suite by name; nil selects everything.
// Unknown names become placeholder scenarios whose runs fail cleanly, so a
// typo in -faults is a visible FAILED row, not a silent omission.
func selectScenarios(names []string) []faultScenario {
	if len(names) == 0 {
		return faultScenarios
	}
	byName := make(map[string]faultScenario, len(faultScenarios))
	for _, sc := range faultScenarios {
		byName[sc.name] = sc
	}
	var out []faultScenario
	for _, n := range names {
		sc, ok := byName[n]
		if !ok {
			n := n
			sc = faultScenario{name: n, desc: "unknown scenario",
				plan: func(_, _ sim.Time) faults.Plan {
					panic(fmt.Sprintf("unknown fault scenario %q (see -faults usage)", n))
				}}
		}
		out = append(out, sc)
	}
	return out
}

// runOne simulates one (scenario, scheme) point. It reads only the result's
// scenario constants, never writes, so parallel calls are safe.
func (r *FaultMatrixResult) runOne(o Options, pt faultPoint) FaultCell {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)
	set := pt.scheme.setup(rng.Fork("scheme"), core.Config{})

	p := o.params()
	p.PFC = set.pfc
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(set.sel)

	if _, err := faults.Apply(eng, rng.Fork("faults"), faults.FatTreeFabric{FT: ft},
		pt.scenario.plan(r.FailAt, r.Deadline)); err != nil {
		return FaultCell{Err: err.Error()}
	}

	// One flow per pod-0 host to the corresponding pod-1 host, the same
	// traffic pattern as the linkfailure experiment, so several flows hash
	// across the faulted uplink.
	ids := &workload.IDAllocator{}
	var flows []*tcp.Flow
	perPod := p.TorsPerPod * p.ServersPerTor
	for i := 0; i < perPod; i++ {
		flows = append(flows, tcp.StartFlow(eng, set.cfg, ids.Next(),
			ft.Hosts[i], ft.Hosts[perPod+i], r.FlowBytes))
	}

	o.drain(eng, r.Deadline, allFlowsDone(flows))
	o.recordPerf(eng)

	cell := FaultCell{Total: len(flows)}
	var affected stats.Sketch
	var recTotal sim.Time
	var recCount int64
	for _, f := range flows {
		hadTimeout := f.Sender().Timeouts > 0
		if hadTimeout {
			cell.Affected++
		}
		if f.Done() {
			cell.Completed++
			if hadTimeout {
				affected.Add(f.FCT().Seconds() * 1000)
			}
		}
		rec := f.Recovery()
		recTotal += rec.Total
		recCount += rec.Count
		cell.Reroutes += f.FlowBenderStats().Reroutes
	}
	cell.MeanAffectedFCTms = affected.Mean()
	if recCount > 0 {
		cell.MeanRecoveryMs = (recTotal / sim.Time(recCount)).Seconds() * 1000
	}
	dx := ft.AggCoreLinks[0][0][0]
	cell.GrayDrops = dx.AtoB.Link.DroppedGray + dx.BtoA.Link.DroppedGray
	cell.FlapTransitions = dx.AtoB.Link.Transitions + dx.BtoA.Link.Transitions
	return cell
}

// Print renders the matrix.
func (r *FaultMatrixResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fault matrix: %d MB inter-pod flows, fault on %s at %v, deadline %v\n",
		r.FlowBytes/1_000_000, faultTarget, r.FailAt, r.Deadline)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tscheme\tcompleted\taffected\tFCT(affected)\trecovery\treroutes\tgray\tflaps")
	for _, name := range r.Scenarios {
		for _, s := range r.Schemes {
			c := r.Cells[name][s]
			if c.Err != "" {
				fmt.Fprintf(tw, "%s\t%s\tFAILED: %s\t\t\t\t\t\t\n", name, s, c.Err)
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%d\t%s\t%s\t%d\t%d\t%d\n",
				name, s, c.Completed, c.Total, c.Affected,
				ms(c.MeanAffectedFCTms), recoveryMs(c.MeanRecoveryMs),
				c.Reroutes, c.GrayDrops, c.FlapTransitions)
		}
	}
	tw.Flush()
	fmt.Fprintln(w, "  (recovery = mean time from a flow's first post-fault RTO to its next delivered ACK;")
	fmt.Fprintln(w, "   FlowBender re-draws V on RTO, so it recovers within ~RTO where static ECMP stays stuck)")
}

// recoveryMs formats a mean-recovery value; 0 means no RTO episodes at all.
func recoveryMs(v float64) string {
	if v == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f ms", v)
}
