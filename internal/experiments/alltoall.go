package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/runpool"
	"flowbender/internal/stats"
)

// DefaultLoads are the paper's evaluated network loads (Figures 3, 4, 8).
var DefaultLoads = []float64{0.2, 0.4, 0.6}

// AllToAllCell is one (load, scheme, size-bin) cell of Figures 3 and 4:
// latency normalized to ECMP at the same load and bin. With multi-seed
// replication (Options.Seeds), the values are means across seeds and the
// Std fields carry the across-seed standard deviation (each seed is
// normalized against its own ECMP run before aggregating).
type AllToAllCell struct {
	MeanNorm    float64
	P99Norm     float64
	MeanNormStd float64
	P99NormStd  float64
	MeanSec     float64
	P99Sec      float64
	N           int
}

// AllToAllResult holds the all-to-all comparison that Figures 3 and 4 (and
// the out-of-order accounting of §4.2.3) are drawn from.
type AllToAllResult struct {
	Loads   []float64
	Schemes []Scheme
	// Cells[load][scheme][bin].
	Cells map[float64]map[Scheme][stats.NumBins]AllToAllCell
	// OOO[scheme] is the max over loads (and seeds) of the fraction of
	// data packets arriving out of order.
	OOO map[Scheme]float64
	// Reroutes[load] counts FlowBender path changes at that load
	// (averaged across seeds).
	Reroutes map[float64]int64
	// Incomplete flags any flows that failed to finish before MaxWait.
	Incomplete int
	// Seeds is the replication count the cells were aggregated over.
	Seeds int
}

// a2aPoint identifies one independent simulation point of the sweep.
type a2aPoint struct {
	load   float64
	scheme Scheme
	rep    int
}

// AllToAll runs the §4.2.2 workload: heavy-tailed flow sizes, Poisson
// arrivals, uniform random all-to-all traffic at each load, for every
// scheme. Every scheme sees the identical flow arrival sequence. The
// (load, scheme, seed) points are independent simulations, so they fan out
// across Options.Parallelism workers; outcomes are collected in submission
// order, keeping the tables byte-identical at any parallelism.
func AllToAll(o Options) *AllToAllResult {
	reps := o.seeds()
	res := &AllToAllResult{
		Loads:    DefaultLoads,
		Schemes:  AllSchemes,
		Cells:    make(map[float64]map[Scheme][stats.NumBins]AllToAllCell),
		OOO:      make(map[Scheme]float64),
		Reroutes: make(map[float64]int64),
		Seeds:    reps,
	}
	ecmpIdx := 0
	for i, s := range res.Schemes {
		if s == ECMP {
			ecmpIdx = i
		}
	}

	var points []a2aPoint
	for _, load := range res.Loads {
		for _, s := range res.Schemes {
			for rep := 0; rep < reps; rep++ {
				points = append(points, a2aPoint{load: load, scheme: s, rep: rep})
			}
		}
	}
	pl := o.pool()
	name := func(pt a2aPoint) string {
		return o.pointLabel("alltoall/load=%g/%s/seed=%d", pt.load, pt.scheme, o.seedAt(pt.rep))
	}
	outs := runpool.MapNamed(pl, points, name, func(pt a2aPoint) *runOutcome {
		oo := o
		oo.Seed = o.seedAt(pt.rep)
		oo.execPool = pl
		oo.pointKey = name(pt)
		return oo.runAllToAll(allToAllSpec{scheme: pt.scheme, load: pt.load, flows: o.flowCount(), srcTor: -1})
	})
	idx := func(li, si, rep int) int { return (li*len(res.Schemes)+si)*reps + rep }

	for li, load := range res.Loads {
		for si, s := range res.Schemes {
			var reroutes int64
			for rep := 0; rep < reps; rep++ {
				out := outs[idx(li, si, rep)]
				res.Incomplete += out.Incomplete
				if f := out.OOOFraction(); f > res.OOO[s] {
					res.OOO[s] = f
				}
				reroutes += out.Reroutes
				seedTag := ""
				if reps > 1 {
					seedTag = fmt.Sprintf(" seed=%d", o.seedAt(rep))
				}
				o.logf("all-to-all: load=%.0f%% %s%s mean=%.3gms p99=%.3gms ooo=%.5f%% incomplete=%d",
					load*100, s, seedTag, out.FCT.All().Mean()*1000,
					out.FCT.All().Percentile(99)*1000, out.OOOFraction()*100, out.Incomplete)
			}
			if s == FlowBender {
				res.Reroutes[load] = reroutes / int64(reps)
			}
		}
		cells := make(map[Scheme][stats.NumBins]AllToAllCell)
		for si, s := range res.Schemes {
			var row [stats.NumBins]AllToAllCell
			for b := 0; b < int(stats.NumBins); b++ {
				means := make([]float64, 0, reps)
				p99s := make([]float64, 0, reps)
				meanNorms := make([]float64, 0, reps)
				p99Norms := make([]float64, 0, reps)
				n := 0
				for rep := 0; rep < reps; rep++ {
					mine := &outs[idx(li, si, rep)].FCT.Bins[b]
					ref := &outs[idx(li, ecmpIdx, rep)].FCT.Bins[b]
					means = append(means, mine.Mean())
					p99s = append(p99s, mine.Percentile(99))
					meanNorms = append(meanNorms, stats.Ratio(mine.Mean(), ref.Mean()))
					p99Norms = append(p99Norms, stats.Ratio(mine.Percentile(99), ref.Percentile(99)))
					n += int(mine.N())
				}
				mn := stats.Summarize(meanNorms)
				pn := stats.Summarize(p99Norms)
				row[b] = AllToAllCell{
					MeanSec:     stats.Summarize(means).Mean,
					P99Sec:      stats.Summarize(p99s).Mean,
					MeanNorm:    mn.Mean,
					MeanNormStd: mn.Std,
					P99Norm:     pn.Mean,
					P99NormStd:  pn.Std,
					N:           n,
				}
			}
			cells[s] = row
		}
		res.Cells[load] = cells
	}
	return res
}

// Print writes Figure 3 (mean) and Figure 4 (99th percentile) as tables,
// plus the §4.2.3 out-of-order summary.
func (r *AllToAllResult) Print(w io.Writer) {
	r.printFigure(w, "Figure 3: all-to-all MEAN latency normalized to ECMP (lower is better)",
		func(c AllToAllCell) (float64, float64) { return c.MeanNorm, c.MeanNormStd })
	fmt.Fprintln(w)
	r.printFigure(w, "Figure 4: all-to-all 99th-PERCENTILE latency normalized to ECMP (lower is better)",
		func(c AllToAllCell) (float64, float64) { return c.P99Norm, c.P99NormStd })
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Out-of-order data packets (fraction of all data packets, max across loads; §4.2.3):")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, "  %-11s %.5f%%\n", s, r.OOO[s]*100)
	}
}

func (r *AllToAllResult) printFigure(w io.Writer, title string, get func(AllToAllCell) (val, std float64)) {
	fmt.Fprintln(w, title)
	if r.Seeds > 1 {
		fmt.Fprintf(w, "(mean ± stddev over %d seeds)\n", r.Seeds)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "load\tscheme")
	for b := 0; b < int(stats.NumBins); b++ {
		fmt.Fprintf(tw, "\t%s", stats.SizeBin(b))
	}
	fmt.Fprintln(tw)
	for _, load := range r.Loads {
		for _, s := range r.Schemes {
			if s == ECMP {
				continue // the baseline is 1.0 by construction
			}
			fmt.Fprintf(tw, "%.0f%%\t%s", load*100, s)
			cells := r.Cells[load][s]
			for b := 0; b < int(stats.NumBins); b++ {
				v, std := get(cells[b])
				if r.Seeds > 1 {
					fmt.Fprintf(tw, "\t%.2f±%.2f", v, std)
				} else {
					fmt.Fprintf(tw, "\t%.2f", v)
				}
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// runFlowBenderAllToAll shares the all-to-all machinery for Figures 6 and 7
// (evaluation defaults applied on top of fb).
func (o Options) runFlowBenderAllToAll(fb core.Config, load float64) *runOutcome {
	return o.runAllToAll(allToAllSpec{scheme: FlowBender, fb: fb, load: load, flows: o.flowCount(), srcTor: -1})
}

// runFlowBenderAllToAllRaw is the same but takes fb verbatim (ablations).
func (o Options) runFlowBenderAllToAllRaw(fb core.Config, load float64) *runOutcome {
	return o.runAllToAll(allToAllSpec{scheme: FlowBender, fb: fb, load: load, flows: o.flowCount(), srcTor: -1, rawFB: true})
}
