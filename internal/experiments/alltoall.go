package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/stats"
)

// DefaultLoads are the paper's evaluated network loads (Figures 3, 4, 8).
var DefaultLoads = []float64{0.2, 0.4, 0.6}

// AllToAllCell is one (load, scheme, size-bin) cell of Figures 3 and 4:
// latency normalized to ECMP at the same load and bin.
type AllToAllCell struct {
	MeanNorm float64
	P99Norm  float64
	MeanSec  float64
	P99Sec   float64
	N        int
}

// AllToAllResult holds the all-to-all comparison that Figures 3 and 4 (and
// the out-of-order accounting of §4.2.3) are drawn from.
type AllToAllResult struct {
	Loads   []float64
	Schemes []Scheme
	// Cells[load][scheme][bin].
	Cells map[float64]map[Scheme][stats.NumBins]AllToAllCell
	// OOO[scheme] is the max over loads of the fraction of data packets
	// arriving out of order.
	OOO map[Scheme]float64
	// Reroutes[load] counts FlowBender path changes at that load.
	Reroutes map[float64]int64
	// Incomplete flags any flows that failed to finish before MaxWait.
	Incomplete int
}

// AllToAll runs the §4.2.2 workload: heavy-tailed flow sizes, Poisson
// arrivals, uniform random all-to-all traffic at each load, for every
// scheme. Every scheme sees the identical flow arrival sequence.
func AllToAll(o Options) *AllToAllResult {
	res := &AllToAllResult{
		Loads:    DefaultLoads,
		Schemes:  AllSchemes,
		Cells:    make(map[float64]map[Scheme][stats.NumBins]AllToAllCell),
		OOO:      make(map[Scheme]float64),
		Reroutes: make(map[float64]int64),
	}
	for _, load := range res.Loads {
		perScheme := make(map[Scheme]*runOutcome)
		for _, s := range res.Schemes {
			out := o.runAllToAll(allToAllSpec{scheme: s, load: load, flows: o.flowCount(), srcTor: -1})
			perScheme[s] = out
			res.Incomplete += out.Incomplete
			if f := out.OOOFraction(); f > res.OOO[s] {
				res.OOO[s] = f
			}
			if s == FlowBender {
				res.Reroutes[load] = out.Reroutes
			}
			o.logf("all-to-all: load=%.0f%% %s mean=%.3gms p99=%.3gms ooo=%.5f%% incomplete=%d",
				load*100, s, perScheme[s].FCT.All().Mean()*1000,
				perScheme[s].FCT.All().Percentile(99)*1000, out.OOOFraction()*100, out.Incomplete)
		}
		base := perScheme[ECMP]
		cells := make(map[Scheme][stats.NumBins]AllToAllCell)
		for _, s := range res.Schemes {
			var row [stats.NumBins]AllToAllCell
			for b := 0; b < int(stats.NumBins); b++ {
				mine := &perScheme[s].FCT.Bins[b]
				ref := &base.FCT.Bins[b]
				row[b] = AllToAllCell{
					MeanSec:  mine.Mean(),
					P99Sec:   mine.Percentile(99),
					MeanNorm: stats.Ratio(mine.Mean(), ref.Mean()),
					P99Norm:  stats.Ratio(mine.Percentile(99), ref.Percentile(99)),
					N:        mine.N(),
				}
			}
			cells[s] = row
		}
		res.Cells[load] = cells
	}
	return res
}

// Print writes Figure 3 (mean) and Figure 4 (99th percentile) as tables,
// plus the §4.2.3 out-of-order summary.
func (r *AllToAllResult) Print(w io.Writer) {
	r.printFigure(w, "Figure 3: all-to-all MEAN latency normalized to ECMP (lower is better)",
		func(c AllToAllCell) float64 { return c.MeanNorm })
	fmt.Fprintln(w)
	r.printFigure(w, "Figure 4: all-to-all 99th-PERCENTILE latency normalized to ECMP (lower is better)",
		func(c AllToAllCell) float64 { return c.P99Norm })
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Out-of-order data packets (fraction of all data packets, max across loads; §4.2.3):")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, "  %-11s %.5f%%\n", s, r.OOO[s]*100)
	}
}

func (r *AllToAllResult) printFigure(w io.Writer, title string, get func(AllToAllCell) float64) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "load\tscheme")
	for b := 0; b < int(stats.NumBins); b++ {
		fmt.Fprintf(tw, "\t%s", stats.SizeBin(b))
	}
	fmt.Fprintln(tw)
	for _, load := range r.Loads {
		for _, s := range r.Schemes {
			if s == ECMP {
				continue // the baseline is 1.0 by construction
			}
			fmt.Fprintf(tw, "%.0f%%\t%s", load*100, s)
			cells := r.Cells[load][s]
			for b := 0; b < int(stats.NumBins); b++ {
				fmt.Fprintf(tw, "\t%.2f", get(cells[b]))
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// runFlowBenderAllToAll shares the all-to-all machinery for Figures 6 and 7
// (evaluation defaults applied on top of fb).
func (o Options) runFlowBenderAllToAll(fb core.Config, load float64) *runOutcome {
	return o.runAllToAll(allToAllSpec{scheme: FlowBender, fb: fb, load: load, flows: o.flowCount(), srcTor: -1})
}

// runFlowBenderAllToAllRaw is the same but takes fb verbatim (ablations).
func (o Options) runFlowBenderAllToAllRaw(fb core.Config, load float64) *runOutcome {
	return o.runAllToAll(allToAllSpec{scheme: FlowBender, fb: fb, load: load, flows: o.flowCount(), srcTor: -1, rawFB: true})
}
