package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"flowbender/internal/runpool"
)

// Fidelity divergence bounds: the documented contract between the two
// engines on the all-to-all workload at overlapping scales. The CI
// fidelity-smoke job and TestFidelityMatrixBounds assert them; EXPERIMENTS.md
// documents them as the fidelity ladder's rung spacing.
const (
	// FidelityP50Bound caps |fluid - packet| / packet on the median FCT.
	FidelityP50Bound = 0.10
	// FidelityP99Bound caps the same on the 99th percentile, where the
	// packet engine's emergent queueing transients are hardest to mirror.
	FidelityP99Bound = 0.25
)

// FidelitySchemes is the cross-validated scheme set: the schemes the fluid
// engine models faithfully enough to compare (Flowlet/FlowDyn degrade to
// ECMP in fluid mode and RPS/DeTail to plain spraying, so validating them
// would measure the documented model gaps, not engine fidelity).
var FidelitySchemes = []Scheme{ECMP, FlowBender, RepFlow, DiffFlow}

// FidelityCell is one (scale, scheme) comparison: both engines run the
// identical all-to-all workload — same arrival draws, same flow IDs, same
// hash streams — and the cell reports how far the fluid FCT distribution
// lands from the packet one, plus the event-count ratio (the speedup proxy
// that, unlike wall clock, is deterministic).
type FidelityCell struct {
	Scale  ScaleLevel
	Scheme Scheme

	PktP50ms, PktP99ms float64
	FlP50ms, FlP99ms   float64
	P50Div, P99Div     float64 // |fluid-packet|/packet

	PktEvents, FlEvents int64
	Incomplete          int // across both engines; non-zero poisons the cell
}

// FidelityResult is the cross-validation matrix of the two engines.
type FidelityResult struct {
	Load  float64
	Flows map[ScaleLevel]int
	Cells []FidelityCell
}

// WithinBounds reports whether every cell's divergence sits inside the
// documented fidelity bounds.
func (r *FidelityResult) WithinBounds() bool {
	for _, c := range r.Cells {
		if c.P50Div > FidelityP50Bound || c.P99Div > FidelityP99Bound || c.Incomplete > 0 {
			return false
		}
	}
	return true
}

// FidelityMatrix runs both engines on the identical all-to-all workload at
// every scale up to Options.Scale that the packet engine can still execute
// (tiny through paper; hyper is capped at paper) and reports per-scheme
// p50/p99 FCT divergence. It is the validation harness that licenses the fluid engine's
// 10k-host runs: the fluid model is only trustworthy at scales the packet
// engine cannot reach because it tracks the packet engine at scales it can.
func FidelityMatrix(o Options) *FidelityResult {
	scales := []ScaleLevel{ScaleTiny}
	if o.Scale >= ScaleSmall {
		scales = append(scales, ScaleSmall)
	}
	if o.Scale >= ScalePaper {
		scales = append(scales, ScalePaper)
	}
	load := 0.4
	if o.Load > 0 {
		load = o.Load
	}

	type fPoint struct {
		scale  ScaleLevel
		scheme Scheme
		engine EngineKind
	}
	var points []fPoint
	for _, sc := range scales {
		for _, s := range FidelitySchemes {
			for _, e := range []EngineKind{EnginePacket, EngineFluid} {
				points = append(points, fPoint{scale: sc, scheme: s, engine: e})
			}
		}
	}
	type fOut struct {
		p50, p99   float64
		events     int64
		incomplete int
	}
	name := func(pt fPoint) string {
		return o.pointLabel("fidelity/%s/%s/%s/seed=%d", pt.scale, pt.scheme, pt.engine, o.Seed)
	}
	res := &FidelityResult{Load: load, Flows: make(map[ScaleLevel]int)}
	for _, sc := range scales {
		oo := o
		oo.Scale = sc
		res.Flows[sc] = oo.flowCount()
	}
	outs := runpool.MapNamed(o.pool(), points, name, func(pt fPoint) fOut {
		oo := o
		oo.Scale = pt.scale
		oo.Engine = pt.engine
		oo.pointKey = name(pt)
		// A private PerfStats isolates this point's event count; fold it
		// into the caller's collector afterwards so -exp fidelity still
		// reports aggregate throughput.
		perf := &PerfStats{}
		oo.Perf = perf
		out := oo.runAllToAllParams(oo.params(), pt.scheme, load)
		if o.Perf != nil {
			o.Perf.Events.Add(perf.Events.Load())
			o.Perf.SimNanos.Add(perf.SimNanos.Load())
			o.Perf.FlowsCompleted.Add(perf.FlowsCompleted.Load())
		}
		all := out.FCT.All()
		return fOut{
			p50:        all.Percentile(50),
			p99:        all.Percentile(99),
			events:     perf.Events.Load(),
			incomplete: out.Incomplete,
		}
	})

	div := func(fl, pkt float64) float64 {
		if pkt <= 0 {
			return math.Inf(1)
		}
		return math.Abs(fl-pkt) / pkt
	}
	idx := 0
	for _, sc := range scales {
		for _, s := range FidelitySchemes {
			pkt, fl := outs[idx], outs[idx+1]
			idx += 2
			cell := FidelityCell{
				Scale:      sc,
				Scheme:     s,
				PktP50ms:   pkt.p50 * 1000,
				PktP99ms:   pkt.p99 * 1000,
				FlP50ms:    fl.p50 * 1000,
				FlP99ms:    fl.p99 * 1000,
				P50Div:     div(fl.p50, pkt.p50),
				P99Div:     div(fl.p99, pkt.p99),
				PktEvents:  pkt.events,
				FlEvents:   fl.events,
				Incomplete: pkt.incomplete + fl.incomplete,
			}
			res.Cells = append(res.Cells, cell)
			o.logf("fidelity: %s %s p50 %.3f/%.3fms (%.1f%%) p99 %.3f/%.3fms (%.1f%%) events %d/%d",
				sc, s, cell.PktP50ms, cell.FlP50ms, cell.P50Div*100,
				cell.PktP99ms, cell.FlP99ms, cell.P99Div*100, cell.PktEvents, cell.FlEvents)
		}
	}
	return res
}

// Print renders the matrix with the divergence bounds it is judged against.
func (r *FidelityResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Engine fidelity matrix: packet vs fluid, all-to-all at %.0f%% load\n", r.Load*100)
	fmt.Fprintf(w, "(bounds: p50 within %.0f%%, p99 within %.0f%%; events = executed engine events, the deterministic cost proxy)\n",
		FidelityP50Bound*100, FidelityP99Bound*100)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scale\tscheme\tpkt p50 (ms)\tfluid p50\tdiv\tpkt p99 (ms)\tfluid p99\tdiv\tpkt events\tfluid events\tratio")
	for _, c := range r.Cells {
		ratio := "-"
		if c.FlEvents > 0 {
			ratio = fmt.Sprintf("%.0fx", float64(c.PktEvents)/float64(c.FlEvents))
		}
		mark := ""
		if c.P50Div > FidelityP50Bound || c.P99Div > FidelityP99Bound || c.Incomplete > 0 {
			mark = " !"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.1f%%\t%.3f\t%.3f\t%.1f%%\t%d\t%d\t%s%s\n",
			c.Scale, c.Scheme, c.PktP50ms, c.FlP50ms, c.P50Div*100,
			c.PktP99ms, c.FlP99ms, c.P99Div*100, c.PktEvents, c.FlEvents, ratio, mark)
	}
	tw.Flush()
	if r.WithinBounds() {
		fmt.Fprintln(w, "verdict: all cells within bounds")
	} else {
		fmt.Fprintln(w, "verdict: DIVERGED (cells marked !)")
	}
}
