package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// WCMPVariant is one row of the asymmetry experiment.
type WCMPVariant struct {
	Name       string
	FlowBender bool
	Weights    map[int32]int // per-uplink WCMP weights (nil = plain ECMP)
}

// WCMPResult covers the §4.3.1 discussion of Weighted Cost Multipathing:
// on an asymmetric fabric (one spine path at half capacity), plain ECMP
// oversubscribes the thin path; WCMP with correct weights fixes it; WCMP
// with coarse (table-limited) weights still missubscribes it — and
// FlowBender dynamically compensates for the weight misconfiguration.
type WCMPResult struct {
	Variants []WCMPVariant
	// MeanMs/P99Ms per variant.
	MeanMs []float64
	P99Ms  []float64
	// ThinShare is the fraction of TCP bytes sent onto the half-capacity
	// path (ideal = capacity share = 1/7 for 5 Gbps of 35 Gbps).
	ThinShare []float64
	ThinGbps  float64
}

// WCMP runs a ToR-to-ToR shuffle over a leaf-spine where spine path 0 runs
// at half rate, under ECMP, exact WCMP, coarse WCMP, and coarse WCMP with
// FlowBender on top.
func WCMP(o Options) *WCMPResult {
	res := &WCMPResult{
		ThinGbps: 5,
		Variants: []WCMPVariant{
			{Name: "ECMP (oblivious)"},
			{Name: "WCMP exact weights", Weights: map[int32]int{0: 1, 1: 2, 2: 2, 3: 2}},
			{Name: "WCMP coarse weights (1:1:1:2)", Weights: map[int32]int{0: 1, 1: 1, 2: 1, 3: 2}},
			{Name: "coarse WCMP + FlowBender", FlowBender: true, Weights: map[int32]int{0: 1, 1: 1, 2: 1, 3: 2}},
			{Name: "ECMP + FlowBender", FlowBender: true},
		},
	}
	// Each variant is an independent simulation point.
	name := func(v WCMPVariant) string {
		return o.pointLabel("wcmp/%s/seed=%d", v.Name, o.Seed)
	}
	outs := runpool.MapNamed(o.pool(), res.Variants, name, func(v WCMPVariant) [3]float64 {
		oo := o
		oo.pointKey = name(v)
		mean, p99, share := oo.runWCMP(v)
		return [3]float64{mean, p99, share}
	})
	for i, v := range res.Variants {
		mean, p99, share := outs[i][0], outs[i][1], outs[i][2]
		res.MeanMs = append(res.MeanMs, mean*1000)
		res.P99Ms = append(res.P99Ms, p99*1000)
		res.ThinShare = append(res.ThinShare, share)
		o.logf("wcmp: %-30s mean=%.3gms p99=%.3gms thinShare=%.3f", v.Name, mean*1000, p99*1000, share)
	}
	return res
}

func (o Options) runWCMP(v WCMPVariant) (mean, p99, thinShare float64) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)

	lp := topo.SmallTestbed()
	if o.Scale == ScalePaper {
		lp = topo.TestbedScale()
	}
	ls := topo.NewLeafSpine(eng, lp)

	// Make spine path 0 half-rate in both directions between ToR 0 and 1
	// (an incremental-deployment asymmetry).
	for _, t := range []int{0, 1} {
		ls.UpLinks[t][0].AtoB.RateBps = lp.LinkRateBps / 2
		ls.UpLinks[t][0].BtoA.RateBps = lp.LinkRateBps / 2
	}

	var sel netsim.Selector = routing.ECMP{}
	if v.Weights != nil {
		w := make(map[int32]int, len(v.Weights))
		for k, wt := range v.Weights {
			w[int32(lp.ServersPerTor)+k] = wt // uplink ports follow server ports
		}
		sel = &routing.WCMP{Weights: w}
	}
	ls.SetSelector(sel)

	cfg := tcp.DefaultConfig()
	if v.FlowBender {
		cfg.FlowBender = &core.Config{
			MinEpochGap: StabilityGap, DesyncN: true, RNG: rng.Fork("fb"),
		}
	}

	srcs, dsts := ls.TorHosts(0), ls.TorHosts(1)
	srcHosts := make([]*netsim.Host, len(srcs))
	dstHosts := make([]*netsim.Host, len(dsts))
	for i := range srcs {
		srcHosts[i], dstHosts[i] = ls.Hosts[srcs[i]], ls.Hosts[dsts[i]]
	}
	// Offered load: 60% of the asymmetric ToR-pair capacity (3.5 links).
	capBps := float64(lp.LinkRateBps) * (float64(lp.Spines) - 0.5)
	const flowBytes = 1_000_000
	gen := &workload.AllToAll{
		Eng: eng, RNG: rng.Fork("workload"),
		Hosts: dstHosts, SrcHosts: srcHosts,
		CDF: workload.Fixed(flowBytes),
		IDs: &workload.IDAllocator{},
		Start: func(id netsim.FlowID, src, dst *netsim.Host, sz int64) *tcp.Flow {
			return tcp.StartFlow(eng, cfg, id, src, dst, sz)
		},
		MeanInterarrival: sim.Time(float64(sim.Second) * flowBytes * 8 / (0.6 * capBps)),
		MaxFlows:         o.flowCount() / 2,
	}
	gen.Run()
	o.drain(eng, o.maxWait(), allFlowsDone2(gen))
	o.recordPerf(eng)

	var s stats.Sketch
	for _, f := range gen.Flows {
		if f.Done() {
			s.Add(f.FCT().Seconds())
		}
	}
	var thin, total int64
	for i, l := range ls.UpLinks[0] {
		b := l.AtoB.TxBytes[netsim.ProtoTCP]
		total += b
		if i == 0 {
			thin = b
		}
	}
	if total > 0 {
		thinShare = float64(thin) / float64(total)
	}
	return s.Mean(), s.Percentile(99), thinShare
}

// Print writes the asymmetry comparison.
func (r *WCMPResult) Print(w io.Writer) {
	fmt.Fprintln(w, "WCMP / asymmetric fabric (§4.3.1 discussion): spine path 0 at half rate")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tmean FCT (ms)\tp99 FCT (ms)\tbytes on thin path\t(capacity share 0.143)")
	for i, v := range r.Variants {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.3f\t\n", v.Name, r.MeanMs[i], r.P99Ms[i], r.ThinShare[i])
	}
	tw.Flush()
	fmt.Fprintln(w, "  (FlowBender compensates for coarse/missing weights by steering flows off the congested thin path)")
}
