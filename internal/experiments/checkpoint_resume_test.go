package experiments

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"flowbender/internal/checkpoint"
	"flowbender/internal/sim"
)

// These tests pin the crash-safety contract end to end: a run that is
// interrupted at any checkpoint and resumed must produce output
// byte-identical to an uninterrupted run. The checkpoint layer is
// replay-based (see internal/checkpoint's package doc), so the property
// decomposes into three obligations covered here: (1) attaching a manager
// changes nothing about the simulation, (2) a resumed run serves completed
// experiments from the journal and re-executes in-flight points through
// their recorded watermarks, verifying them, and (3) a watermark that does
// NOT match the replay — tampering, skewed configuration, changed engine
// semantics — fails loudly instead of publishing silently-different results.

func ckptOpts() Options {
	return Options{Seed: 7, Scale: ScaleTiny, FlowCount: 40, Repeats: 1,
		CheckpointEvery: 10 * sim.Millisecond}
}

func ckptDesc(o Options) checkpoint.Descriptor {
	return checkpoint.Descriptor{Tool: "test", Seed: o.Seed, Scale: o.Scale.String(),
		FlowCount: o.FlowCount, Shards: o.Shards, CheckpointEvery: int64(o.CheckpointEvery)}
}

func renderRegistry(o Options, reg []RegistryEntry) string {
	var buf bytes.Buffer
	runExperiments(o, &buf, reg)
	return buf.String()
}

// TestCheckpointAttachIsInvisible: the same run with and without a manager
// attached renders byte-identical output — checkpointing must observe the
// simulation, never steer it.
func TestCheckpointAttachIsInvisible(t *testing.T) {
	o := ckptOpts()
	o.Parallelism = 4
	var base bytes.Buffer
	AllToAll(o).Print(&base)

	m, err := checkpoint.Create(filepath.Join(t.TempDir(), "run.ckpt"), ckptDesc(o))
	if err != nil {
		t.Fatal(err)
	}
	oc := o
	oc.Ckpt = m
	var got bytes.Buffer
	AllToAll(oc).Print(&got)
	if got.String() != base.String() {
		t.Fatalf("attaching a checkpoint manager changed the output:\n--- without ---\n%s\n--- with ---\n%s", base.String(), got.String())
	}
}

// TestCheckpointWatermarkVerifiedOnResume: a run records watermarks; the
// resumed run replays every point through the recorded barrier, where
// sim.Engine.VerifyRestore demands full state equality (any divergence
// panics, failing this test), and still renders identical bytes.
func TestCheckpointWatermarkVerifiedOnResume(t *testing.T) {
	o := ckptOpts()
	o.Parallelism = 4
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, err := checkpoint.Create(path, ckptDesc(o))
	if err != nil {
		t.Fatal(err)
	}
	oc := o
	oc.Ckpt = m
	var first bytes.Buffer
	AllToAll(oc).Print(&first)

	f, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	withEngines := 0
	for _, pm := range f.Marks {
		if len(pm.Engines) > 0 {
			withEngines++
		}
	}
	if withEngines == 0 {
		t.Fatalf("run recorded no verifiable watermarks (marks: %d)", len(f.Marks))
	}

	r, err := checkpoint.Open(path, ckptDesc(o))
	if err != nil {
		t.Fatal(err)
	}
	or := o
	or.Ckpt = r
	var second bytes.Buffer
	AllToAll(or).Print(&second)
	if second.String() != first.String() {
		t.Fatalf("resumed run differs from original:\n--- original ---\n%s\n--- resumed ---\n%s", first.String(), second.String())
	}
}

// TestResumeDetectsTamperedWatermark: corrupt one recorded engine digest
// and the resumed replay must panic with a divergence report naming the
// point, not silently continue.
func TestResumeDetectsTamperedWatermark(t *testing.T) {
	o := ckptOpts()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, err := checkpoint.Create(path, ckptDesc(o))
	if err != nil {
		t.Fatal(err)
	}
	oc := o
	oc.Ckpt = m
	AllToAll(oc).Print(&bytes.Buffer{})

	f, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for i := range f.Marks {
		if len(f.Marks[i].Engines) > 0 {
			f.Marks[i].Engines[0].QueueDigest ^= 1
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no watermark with engine state to tamper with")
	}
	if err := checkpoint.Save(path, f); err != nil {
		t.Fatal(err)
	}

	r, err := checkpoint.Open(path, ckptDesc(o))
	if err != nil {
		t.Fatal(err)
	}
	or := o
	or.Ckpt = r
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("resumed run accepted a tampered watermark")
		}
		msg := fmt.Sprint(rec)
		if !strings.Contains(msg, "diverged from checkpoint") {
			t.Fatalf("panic does not report divergence: %s", msg)
		}
		if !strings.Contains(msg, "point alltoall/") {
			t.Fatalf("panic does not identify the point: %s", msg)
		}
	}()
	AllToAll(or)
}

// TestCheckpointResumeParallelAndSharded: the resume property holds when
// points fan out across workers and when a point splits across engine
// shards (multi-engine watermarks, verified shard by shard).
func TestCheckpointResumeParallelAndSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, cfg := range []struct{ parallel, shards int }{{4, 0}, {1, 2}, {4, 4}} {
		t.Run(fmt.Sprintf("parallel=%d_shards=%d", cfg.parallel, cfg.shards), func(t *testing.T) {
			o := ckptOpts()
			o.Parallelism = cfg.parallel
			o.Shards = cfg.shards
			render := func(oo Options) string {
				var buf bytes.Buffer
				AllToAll(oo).Print(&buf)
				return buf.String()
			}
			base := render(o)

			path := filepath.Join(t.TempDir(), "run.ckpt")
			m, err := checkpoint.Create(path, ckptDesc(o))
			if err != nil {
				t.Fatal(err)
			}
			oc := o
			oc.Ckpt = m
			if got := render(oc); got != base {
				t.Fatal("checkpointed run differs from plain run")
			}
			if cfg.shards > 1 {
				f, err := checkpoint.Load(path)
				if err != nil {
					t.Fatal(err)
				}
				multi := 0
				for _, pm := range f.Marks {
					if len(pm.Engines) > 1 {
						multi++
					}
				}
				if multi == 0 {
					t.Fatal("sharded run recorded no multi-engine watermarks")
				}
			}
			r, err := checkpoint.Open(path, ckptDesc(o))
			if err != nil {
				t.Fatal(err)
			}
			or := o
			or.Ckpt = r
			if got := render(or); got != base {
				t.Fatal("resumed run differs from plain run")
			}
		})
	}
}

// staticPrintable is a deterministic stand-in experiment result: the
// journal operates on rendered experiment output, so these tests don't
// need a real simulation underneath (killresume.sh covers that end to
// end against the live registry).
type staticPrintable string

func (s staticPrintable) Print(w io.Writer) { fmt.Fprintln(w, string(s)) }

// TestRunAllJournalSkipsCompleted simulates the crash-and-rerun workflow:
// one experiment completes (journaled), one crashes (not journaled). The
// resumed RunAll serves the completed experiment from the journal — proven
// by an execution counter — re-runs only the crashed one, and renders
// byte-identical output.
func TestRunAllJournalSkipsCompleted(t *testing.T) {
	var runs atomic.Int32
	reg := []RegistryEntry{
		{"t1", "counted healthy experiment",
			func(o Options) Printable { runs.Add(1); return staticPrintable("table one") }},
		{"boom", "always panics",
			func(Options) Printable { panic("experiment exploded") }},
	}
	o := ckptOpts()
	o.Parallelism = 2
	base := renderRegistry(o, reg)
	if !strings.Contains(base, "FAILED: experiment exploded") {
		t.Fatalf("baseline does not report the crashed experiment:\n%s", base)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, err := checkpoint.Create(path, ckptDesc(o))
	if err != nil {
		t.Fatal(err)
	}
	oc := o
	oc.Ckpt = m
	if got := renderRegistry(oc, reg); got != base {
		t.Fatal("checkpointed run differs from plain run")
	}
	if runs.Load() != 2 {
		t.Fatalf("healthy experiment ran %d times before resume, want 2", runs.Load())
	}
	if _, ok := m.Done("boom"); ok {
		t.Fatal("crashed experiment was journaled as done")
	}

	r, err := checkpoint.Open(path, ckptDesc(o))
	if err != nil {
		t.Fatal(err)
	}
	or := o
	or.Ckpt = r
	var log bytes.Buffer
	or.Log = &log
	if got := renderRegistry(or, reg); got != base {
		t.Fatal("resumed run differs from plain run")
	}
	if runs.Load() != 2 {
		t.Fatalf("resume re-ran the journaled experiment (%d executions, want still 2)", runs.Load())
	}
	if !strings.Contains(log.String(), "served from checkpoint journal") {
		t.Fatalf("resume log does not mention the journal hit:\n%s", log.String())
	}
}

// TestFailedPointCarriesLabel: a panicking simulation point is reported
// with its full point label (experiment, coordinates, scheme, seed), so the
// FAILED line alone reproduces it.
func TestFailedPointCarriesLabel(t *testing.T) {
	o := Options{Seed: 7, Scale: ScaleTiny, Parallelism: 2,
		FaultScenarios: []string{"bogus"}}
	res := FaultMatrix(o)
	c := res.Cells["bogus"][ECMP]
	if !strings.Contains(c.Err, "point faults/bogus/ECMP/seed=7 panicked") {
		t.Fatalf("failed cell does not identify its point: %q", c.Err)
	}
}

// FuzzCheckpointResume is the kill-and-resume property test: for arbitrary
// (seed, cadence, scheme), running a point with checkpointing on and then
// replaying it from the file must verify every recorded watermark and
// reproduce the identical outcome. The seed corpus parks watermark instants
// inside the mechanisms most sensitive to replay order: RepFlow's
// replica-completion races, Flowlet's inter-burst gap boundaries, FlowDyn's
// load-refresh epochs, and FlowBender's congestion-driven reroute epochs.
func FuzzCheckpointResume(f *testing.F) {
	f.Add(int64(7), int64(5*sim.Millisecond), int64(6))    // RepFlow: marks between replica race arrivals
	f.Add(int64(3), int64(1*sim.Millisecond), int64(4))    // Flowlet: every engine chunk, inside flowlet gaps
	f.Add(int64(11), int64(25*sim.Millisecond), int64(5))  // FlowDyn: across load-refresh epochs
	f.Add(int64(1), int64(2*sim.Millisecond), int64(1))    // FlowBender: inside reroute epochs
	f.Add(int64(42), int64(50*sim.Millisecond), int64(0))  // ECMP baseline, sparse marks
	f.Add(int64(13), int64(10*sim.Millisecond), int64(7))  // DiffFlow spray selection
	f.Fuzz(func(t *testing.T, seed, cadence, si int64) {
		// Normalize fuzz inputs to a valid configuration: positive cadence
		// no coarser than the tiny run's duration, a registered scheme.
		cadence %= int64(100 * sim.Millisecond)
		if cadence <= 0 {
			cadence += int64(100 * sim.Millisecond)
		}
		scheme := AllSchemes[int(uint64(si)%uint64(len(AllSchemes)))]
		o := Options{Seed: seed % 10_000, Scale: ScaleTiny,
			CheckpointEvery: sim.Time(cadence)}
		o.pointKey = fmt.Sprintf("fuzz/%s", scheme)
		spec := allToAllSpec{scheme: scheme, load: 0.4, flows: 30, srcTor: -1}

		path := filepath.Join(t.TempDir(), "run.ckpt")
		desc := ckptDesc(o)
		m, err := checkpoint.Create(path, desc)
		if err != nil {
			t.Fatal(err)
		}
		o1 := o
		o1.Ckpt = m
		out1 := o1.runAllToAll(spec)

		r, err := checkpoint.Open(path, desc)
		if err != nil {
			t.Fatal(err)
		}
		o2 := o
		o2.Ckpt = r
		out2 := o2.runAllToAll(spec) // panics if any watermark fails to verify

		if out1.SimTime != out2.SimTime ||
			out1.DataPackets != out2.DataPackets ||
			out1.OutOfOrder != out2.OutOfOrder ||
			out1.Retransmits != out2.Retransmits ||
			out1.FCT.All().Mean() != out2.FCT.All().Mean() {
			t.Fatalf("replayed point diverged: first {t=%v pkts=%d ooo=%d rtx=%d mean=%v} second {t=%v pkts=%d ooo=%d rtx=%d mean=%v}",
				out1.SimTime, out1.DataPackets, out1.OutOfOrder, out1.Retransmits, out1.FCT.All().Mean(),
				out2.SimTime, out2.DataPackets, out2.OutOfOrder, out2.Retransmits, out2.FCT.All().Mean())
		}
	})
}
