package experiments

import (
	"math/rand"
	"testing"

	"flowbender/internal/topo"
)

// randShardSpec draws a random small fat-tree and workload (within the
// topology builder's validity rules) plus a shard count, all from seed. The
// same seed always draws the same case, so fuzz findings replay exactly.
func randShardSpec(seed int64) (allToAllSpec, int) {
	rng := rand.New(rand.NewSource(seed))
	p := topo.TinyScale()
	p.Pods = 2 + rng.Intn(2)
	p.TorsPerPod = 1 + rng.Intn(3)
	p.AggsPerPod = 1 + rng.Intn(2)
	p.ServersPerTor = p.AggsPerPod * (1 + rng.Intn(3))
	p.CoreUplinksPerAgg = 1 + rng.Intn(2)
	spec := allToAllSpec{
		scheme: ECMP,
		load:   0.2 + 0.5*rng.Float64(),
		flows:  20 + rng.Intn(100),
		srcTor: -1,
		params: &p,
	}
	return spec, 2 + rng.Intn(7)
}

// checkShardCase runs one randomized case serially and sharded and requires
// identical per-flow observables. Cases whose partition degenerates (one
// shard, or no positive lookahead) exercise the serial-fallback path instead,
// which is correct by construction.
func checkShardCase(t *testing.T, seed int64) {
	t.Helper()
	spec, shards := randShardSpec(seed)
	o := Options{Seed: seed, Scale: ScaleTiny}
	want := flowFingerprint(o.runAllToAll(spec))
	os := o
	os.Shards = shards
	out, ok := os.tryRunAllToAllSharded(spec)
	if !ok {
		return
	}
	if got := flowFingerprint(out); got != want {
		t.Errorf("seed %d shards=%d topo=%+v flows=%d: sharded diverges from serial:\n%s",
			seed, shards, *spec.params, spec.flows, firstDiff(want, got))
	}
}

// TestShardedModelCheck is the quick randomized sweep: a spread of small
// topologies, loads, flow counts, and shard counts, each compared flow-by-
// flow against serial execution.
func TestShardedModelCheck(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		checkShardCase(t, seed)
	}
}

// FuzzSharded lets the fuzzer hunt for (topology, workload, shard count)
// combinations where the sharded engine diverges from serial. The checked-in
// corpus pins the cases that caught real bugs during development.
func FuzzSharded(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkShardCase(t, seed)
	})
}
