// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): Table 1's validation microbenchmark, the all-to-all
// latency comparisons of Figures 3 and 4, the out-of-order accounting of
// §4.2.3, the partition-aggregate jobs of Figure 5, the N and T sensitivity
// sweeps of Figures 6 and 7, the testbed-style leaf-spine runs of Figure 8,
// the UDP hotspot of §4.3.1, the path-diversity analysis of §4.3.2, plus a
// link-failure recovery experiment for the paper's §3.3.2 claim and
// ablations for the §3.4/§5 design options.
//
// Every experiment is deterministic for a given Options value and reports
// the same rows/series as the paper, normalized to ECMP where the paper
// normalizes. Default scales are reduced to finish quickly on one core; set
// Options.Scale to ScalePaper for the full 128-server configuration.
package experiments

import (
	"fmt"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// Scheme identifies one of the load-balancing schemes under comparison.
type Scheme int

// The schemes evaluated by the paper.
const (
	ECMP Scheme = iota
	FlowBender
	RPS
	DeTail
)

// AllSchemes lists the paper's comparison set in presentation order.
var AllSchemes = []Scheme{ECMP, FlowBender, RPS, DeTail}

func (s Scheme) String() string {
	switch s {
	case ECMP:
		return "ECMP"
	case FlowBender:
		return "FlowBender"
	case RPS:
		return "RPS"
	case DeTail:
		return "DeTail"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// schemeSetup captures everything a scheme changes relative to the ECMP
// baseline: the transport configuration, the switch port selector, and
// whether the fabric runs lossless PFC.
type schemeSetup struct {
	cfg tcp.Config
	sel netsim.Selector
	pfc *netsim.PFCConfig
}

// StabilityGap is the default minimum number of RTT epochs between
// congestion-triggered reroutes (the paper's §5.1 extension). The paper's
// minimal FlowBender (no limiter) reroutes on every congested RTT; on this
// substrate that level of churn keeps DCTCP windows collapsed whenever every
// path is busy (see DESIGN.md), so the evaluation applies the paper's own
// stability mitigation by default and the ablation experiment quantifies it.
const StabilityGap = 5

// setup builds the per-scheme configuration exactly as §4.2 describes:
// every scheme runs over DCTCP; FlowBender adds the controller with T = 5%,
// N = 1 by default (plus the §5.1 reroute rate limit, see StabilityGap);
// DeTail gets lossless PFC (pause 20 KB / unpause 10 KB) with fast
// retransmit disabled; RPS sprays per packet.
func (s Scheme) setup(rng *sim.RNG, fb core.Config) schemeSetup {
	return s.setupRaw(rng, fb, false)
}

// setupRaw is setup with the option to take the FlowBender config verbatim
// (raw = true), without applying the StabilityGap/DesyncN evaluation
// defaults — the ablation experiment uses this to measure the paper's
// minimal configuration.
func (s Scheme) setupRaw(rng *sim.RNG, fb core.Config, raw bool) schemeSetup {
	cfg := tcp.DefaultConfig()
	out := schemeSetup{cfg: cfg, sel: routing.ECMP{}}
	switch s {
	case ECMP:
	case FlowBender:
		if fb.RNG == nil {
			fb.RNG = rng.Fork("flowbender")
		}
		if !raw {
			if fb.MinEpochGap == 0 {
				fb.MinEpochGap = StabilityGap
			}
			if !fb.DesyncN {
				// Randomized reroute desynchronization (§3.4.2): without
				// it, flows sharing a congested link observe the marks in
				// the same RTT and all reroute together, cascading into
				// rerouting waves.
				fb.DesyncN = true
			}
		}
		out.cfg.FlowBender = &fb
	case RPS:
		out.sel = &routing.RPS{RNG: rng.Fork("rps")}
	case DeTail:
		out.sel = routing.DeTail{}
		out.cfg.DisableFastRetx = true
		out.pfc = &netsim.PFCConfig{Pause: 20 * topo.KB, Unpause: 10 * topo.KB}
	default:
		panic("experiments: unknown scheme")
	}
	return out
}
