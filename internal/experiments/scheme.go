// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): Table 1's validation microbenchmark, the all-to-all
// latency comparisons of Figures 3 and 4, the out-of-order accounting of
// §4.2.3, the partition-aggregate jobs of Figure 5, the N and T sensitivity
// sweeps of Figures 6 and 7, the testbed-style leaf-spine runs of Figure 8,
// the UDP hotspot of §4.3.1, the path-diversity analysis of §4.3.2, plus a
// link-failure recovery experiment for the paper's §3.3.2 claim and
// ablations for the §3.4/§5 design options.
//
// Every experiment is deterministic for a given Options value and reports
// the same rows/series as the paper, normalized to ECMP where the paper
// normalizes. Default scales are reduced to finish quickly on one core; set
// Options.Scale to ScalePaper for the full 128-server configuration.
package experiments

import (
	"fmt"
	"strings"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// Scheme identifies one of the load-balancing schemes under comparison.
type Scheme int

// The comparison set: the paper's §4 schemes (ECMP, FlowBender, RPS,
// DeTail) plus the competitor matrix v2 — flowlet switching with a fixed
// gap, FlowDyn-style dynamic gap detection, RepFlow short-flow replication,
// and DiffFlow short/long differentiation.
const (
	ECMP Scheme = iota
	FlowBender
	RPS
	DeTail
	Flowlet
	FlowDyn
	RepFlow
	DiffFlow
)

// AllSchemes lists the comparison set in presentation order: the paper's
// §4 schemes first, then the post-2014 competitors.
var AllSchemes = []Scheme{ECMP, FlowBender, RPS, DeTail, Flowlet, FlowDyn, RepFlow, DiffFlow}

func (s Scheme) String() string {
	switch s {
	case ECMP:
		return "ECMP"
	case FlowBender:
		return "FlowBender"
	case RPS:
		return "RPS"
	case DeTail:
		return "DeTail"
	case Flowlet:
		return "Flowlet"
	case FlowDyn:
		return "FlowDyn"
	case RepFlow:
		return "RepFlow"
	case DiffFlow:
		return "DiffFlow"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// SchemeByName resolves a scheme by its String() name, case-insensitively
// (for the -schemes command-line flag).
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range AllSchemes {
		if strings.EqualFold(s.String(), name) {
			return s, true
		}
	}
	return 0, false
}

// schemeSetup captures everything a scheme changes relative to the ECMP
// baseline: the transport configuration, the switch port selector, and
// whether the fabric runs lossless PFC.
type schemeSetup struct {
	cfg tcp.Config
	sel netsim.Selector
	pfc *netsim.PFCConfig
}

// Default parameters of the competitor schemes. Exposed as constants so the
// docs, the -list-schemes registry, and the tests agree on one value.
const (
	// DefaultFlowletGap is the fixed idle-gap threshold of the Flowlet
	// scheme: roughly 2x the fabric's base RTT, the classical "safe to
	// switch" operating point.
	DefaultFlowletGap = 200 * sim.Microsecond
	// RepFlowCutoff is RepFlow's short-flow replication threshold (the
	// paper's 100 KB).
	RepFlowCutoff int64 = 100 * 1024
	// DiffFlowCutoff is DiffFlow's short-flow spray threshold: flows below
	// it are sprayed per packet, flows at or above stay on per-flow paths.
	DiffFlowCutoff int64 = 100 * 1024
)

// StabilityGap is the default minimum number of RTT epochs between
// congestion-triggered reroutes (the paper's §5.1 extension). The paper's
// minimal FlowBender (no limiter) reroutes on every congested RTT; on this
// substrate that level of churn keeps DCTCP windows collapsed whenever every
// path is busy (see DESIGN.md), so the evaluation applies the paper's own
// stability mitigation by default and the ablation experiment quantifies it.
const StabilityGap = 5

// setup builds the per-scheme configuration exactly as §4.2 describes:
// every scheme runs over DCTCP; FlowBender adds the controller with T = 5%,
// N = 1 by default (plus the §5.1 reroute rate limit, see StabilityGap);
// DeTail gets lossless PFC (pause 20 KB / unpause 10 KB) with fast
// retransmit disabled; RPS sprays per packet.
func (s Scheme) setup(rng *sim.RNG, fb core.Config) schemeSetup {
	return s.setupRaw(rng, fb, false)
}

// setupRaw is setup with the option to take the FlowBender config verbatim
// (raw = true), without applying the StabilityGap/DesyncN evaluation
// defaults — the ablation experiment uses this to measure the paper's
// minimal configuration.
func (s Scheme) setupRaw(rng *sim.RNG, fb core.Config, raw bool) schemeSetup {
	cfg := tcp.DefaultConfig()
	out := schemeSetup{cfg: cfg, sel: routing.ECMP{}}
	switch s {
	case ECMP:
	case FlowBender:
		if fb.RNG == nil {
			fb.RNG = rng.Fork("flowbender")
		}
		if !raw {
			if fb.MinEpochGap == 0 {
				fb.MinEpochGap = StabilityGap
			}
			if !fb.DesyncN {
				// Randomized reroute desynchronization (§3.4.2): without
				// it, flows sharing a congested link observe the marks in
				// the same RTT and all reroute together, cascading into
				// rerouting waves.
				fb.DesyncN = true
			}
		}
		out.cfg.FlowBender = &fb
	case RPS:
		out.sel = &routing.RPS{RNG: rng.Fork("rps")}
	case DeTail:
		out.sel = routing.DeTail{}
		out.cfg.DisableFastRetx = true
		out.pfc = &netsim.PFCConfig{Pause: 20 * topo.KB, Unpause: 10 * topo.KB}
	case Flowlet:
		out.sel = &routing.Flowlet{Gap: DefaultFlowletGap}
	case FlowDyn:
		out.sel = routing.NewFlowDyn()
	case RepFlow:
		out.cfg.Replicate = &tcp.ReplicateConfig{Cutoff: RepFlowCutoff}
	case DiffFlow:
		// Forked under the same label RPS uses so the cutoff-∞ degenerate
		// configuration draws the identical stream as an RPS run — the
		// differential test pins bit-identity between the two.
		out.sel = &routing.DiffFlow{RNG: rng.Fork("rps")}
		out.cfg.SprayShortCutoff = DiffFlowCutoff
	default:
		panic("experiments: unknown scheme")
	}
	return out
}

// shardable reports whether an all-to-all point of this scheme may split
// across conservatively synchronized engine shards and stay bit-identical
// to the serial run. ECMP, Flowlet, and FlowDyn qualify: their selectors
// are deterministic functions of switch-local state (the flow hash, the
// per-switch flowlet table, egress queue depths, and the switch's own
// clock), and the sharded schedule replays every switch's packet-arrival
// sequence exactly. FlowBender, RPS, and DiffFlow draw from one shared RNG
// stream at packet-send/selection time (splitting consumers across shards
// would reorder the draws), RepFlow plans replica sub-flows at the host
// (the sharded planner pre-plans exactly one flow per arrival), and DeTail
// needs PFC, whose synchronous back-pressure leaves zero cross-shard
// lookahead — those four take the documented serial fallback.
func (s Scheme) shardable() bool {
	switch s {
	case ECMP, Flowlet, FlowDyn:
		return true
	}
	return false
}
