package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/sim"
)

// SchemeInfo describes one load-balancing scheme for discoverability
// tooling (fbsim -list-schemes).
type SchemeInfo struct {
	Scheme Scheme
	// Desc is a one-line description of the mechanism.
	Desc string
	// Params lists the scheme's tunable parameters with their defaults
	// (empty for parameterless schemes).
	Params string
	// Sharded reports whether the scheme's all-to-all points run on the
	// sharded conservative-parallel path (false = documented serial
	// fallback).
	Sharded bool
}

// SchemeInfos returns the scheme registry in presentation order.
func SchemeInfos() []SchemeInfo {
	infos := make([]SchemeInfo, 0, len(AllSchemes))
	for _, s := range AllSchemes {
		info := SchemeInfo{Scheme: s, Sharded: s.shardable()}
		switch s {
		case ECMP:
			info.Desc = "static per-flow hashing over equal-cost paths"
		case FlowBender:
			info.Desc = "host reroutes congested/failed flows by re-drawing the hash field V"
			info.Params = fmt.Sprintf("T=%.0f%% N=1 stability-gap=%d epochs", 5.0, StabilityGap)
		case RPS:
			info.Desc = "random packet spraying: uniform random path per packet"
		case DeTail:
			info.Desc = "per-packet least-queued adaptive routing on a lossless (PFC) fabric"
		case Flowlet:
			info.Desc = "flowlet switching: path redraw after a fixed idle gap"
			info.Params = fmt.Sprintf("gap=%dus (InfiniteGap degenerates to ECMP)",
				DefaultFlowletGap/sim.Microsecond)
		case FlowDyn:
			info.Desc = "flowlet switching with a dynamic per-port gap from tracked drain times"
			info.Params = "gap=[20us,1ms] mult=2.0 ewma-gain=0.25"
		case RepFlow:
			info.Desc = "short flows replicated on two ECMP paths; first finisher wins"
			info.Params = fmt.Sprintf("cutoff=%dKB replication-factor=2", RepFlowCutoff/1024)
		case DiffFlow:
			info.Desc = "short flows sprayed per packet, long flows pinned per flow"
			info.Params = fmt.Sprintf("cutoff=%dKB (0 degenerates to ECMP, unbounded to RPS)",
				DiffFlowCutoff/1024)
		}
		infos = append(infos, info)
	}
	return infos
}

// PrintSchemes renders the scheme registry (fbsim -list-schemes).
func PrintSchemes(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\talltoall path\tdescription\tparameters")
	for _, info := range SchemeInfos() {
		path := "serial"
		if info.Sharded {
			path = "sharded"
		}
		params := info.Params
		if params == "" {
			params = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", info.Scheme, path, info.Desc, params)
	}
	tw.Flush()
}
