package experiments

import (
	"fmt"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

func sprintfLn(format string, args ...any) string {
	s := fmt.Sprintf(format, args...)
	if len(s) == 0 || s[len(s)-1] != '\n' {
		s += "\n"
	}
	return s
}

// runOutcome aggregates one simulation run's measurements.
type runOutcome struct {
	Flows []*tcp.Flow
	Jobs  []*workload.Job

	// Binned receiver-side flow completion times, in seconds. The sketch
	// stays exact (bit-identical to the historical BinnedSample) below its
	// per-bin cap, which every table-scale run fits; past the cap it
	// collapses to flat-memory streaming quantiles.
	FCT stats.BinnedSketch

	DataPackets int64
	OutOfOrder  int64
	Timeouts    int64
	Retransmits int64
	Reroutes    int64
	Incomplete  int
	SimTime     sim.Time
}

func (r *runOutcome) collect() {
	for _, f := range r.Flows {
		if !f.Done() {
			r.Incomplete++
			continue
		}
		r.FCT.Add(f.Size, f.FCT().Seconds())
		r.DataPackets += f.DataPackets()
		r.OutOfOrder += f.OutOfOrder()
		r.Timeouts += f.Sender().Timeouts
		r.Retransmits += f.Sender().Retransmits
		r.Reroutes += f.FlowBenderStats().Reroutes
	}
}

// OOOFraction returns the fraction of data packets that arrived out of
// order (§4.2.3's metric).
func (r *runOutcome) OOOFraction() float64 {
	if r.DataPackets == 0 {
		return 0
	}
	return float64(r.OutOfOrder) / float64(r.DataPackets)
}

// drain advances the engine in chunks until done() or the deadline,
// servicing the point's checkpoint obligations at every chunk boundary:
// the engine is quiescent there (Run leaves now == the boundary), making
// it a safe — and deterministically reproducible — watermark instant.
func (o Options) drain(eng *sim.Engine, deadline sim.Time, done func() bool) {
	const chunk = 5 * sim.Millisecond
	ck := o.ckptTracker()
	for eng.Now() < deadline && !done() {
		next := eng.Now() + chunk
		if next > deadline {
			next = deadline
		}
		eng.Run(next)
		ck.tick(eng.Now(), eng)
		if eng.Pending() == 0 {
			return
		}
	}
}

func allFlowsDone(flows []*tcp.Flow) func() bool {
	return func() bool {
		for _, f := range flows {
			if !f.Done() {
				return false
			}
		}
		return true
	}
}

// allToAllSpec parameterizes one all-to-all run.
type allToAllSpec struct {
	scheme Scheme
	fb     core.Config // FlowBender overrides (zero = paper defaults)
	load   float64
	flows  int
	cdf    workload.CDF
	// srcTor, when >= 0, restricts senders to that ToR of pod 0 (Figure 8's
	// testbed pattern); -1 = every host sends.
	srcTor int
	// rawFB takes the fb config verbatim, without evaluation defaults.
	rawFB bool
	// params overrides the Options-derived fat-tree parameters.
	params *topo.Params
	// setupFn, when non-nil, replaces the scheme's standard setup (the
	// degenerate-config differential tests inject edge-case parameters
	// through it). Such runs always take the serial path.
	setupFn func(rng *sim.RNG) schemeSetup
}

// runAllToAllParams runs the all-to-all workload on an explicit fat-tree.
func (o Options) runAllToAllParams(p topo.Params, scheme Scheme, load float64) *runOutcome {
	return o.runAllToAll(allToAllSpec{scheme: scheme, load: load, flows: o.flowCount(), srcTor: -1, params: &p})
}

// runAllToAll executes one all-to-all run on a fat-tree at the given options
// and returns its measurements. The workload RNG stream is independent of
// the scheme, so every scheme sees the identical arrival sequence.
func (o Options) runAllToAll(spec allToAllSpec) *runOutcome {
	// The fluid engine covers the standard all-to-all shape; points with an
	// injected setup or a restricted sender set (packet-only features) keep
	// the packet engine regardless of Options.Engine.
	if o.Engine == EngineFluid && spec.setupFn == nil && spec.srcTor < 0 {
		return o.runAllToAllFluid(spec)
	}
	if out, ok := o.tryRunAllToAllSharded(spec); ok {
		return out
	}
	eng := sim.NewEngine()
	rootRNG := sim.NewRNG(o.Seed)
	schemeRNG := rootRNG.Fork("scheme")
	var set schemeSetup
	if spec.setupFn != nil {
		set = spec.setupFn(schemeRNG)
	} else {
		set = spec.scheme.setupRaw(schemeRNG, spec.fb, spec.rawFB)
	}

	p := o.params()
	if spec.params != nil {
		p = *spec.params
	}
	p.PFC = set.pfc
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(set.sel)

	cdf := spec.cdf
	if cdf == nil {
		cdf = o.CDF
	}
	if cdf == nil {
		cdf = workload.WebSearchCDF()
	}
	gen := &workload.AllToAll{
		Eng:   eng,
		RNG:   rootRNG.Fork("workload"),
		Hosts: ft.Hosts,
		CDF:   cdf,
		IDs:   &workload.IDAllocator{},
		Start: func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
			return tcp.StartFlow(eng, set.cfg, id, src, dst, size)
		},
		MeanInterarrival: workload.AggregateInterarrival(
			spec.load, p.BisectionBps(), p.InterPodFraction(), cdf.Mean()),
		MaxFlows: spec.flows,
	}
	if spec.srcTor >= 0 {
		gen.SrcHosts = hostsOf(ft, 0, spec.srcTor)
	}
	gen.Run()
	o.drain(eng, o.maxWait(), allFlowsDone2(gen))
	o.recordPerf(eng)

	out := &runOutcome{Flows: gen.Flows, SimTime: eng.Now()}
	out.collect()
	o.recordFlows(int64(len(out.Flows) - out.Incomplete))
	return out
}

func hostsOf(ft *topo.FatTree, pod, tor int) []*netsim.Host {
	idx := ft.TorHosts(pod, tor)
	out := make([]*netsim.Host, len(idx))
	for i, h := range idx {
		out[i] = ft.Hosts[h]
	}
	return out
}

// allFlowsDone2 is the drain predicate for a generator: all arrivals issued
// and all issued flows complete.
func allFlowsDone2(gen *workload.AllToAll) func() bool {
	return func() bool {
		if gen.MaxFlows > 0 && len(gen.Flows) < gen.MaxFlows {
			return false
		}
		for _, f := range gen.Flows {
			if !f.Done() {
				return false
			}
		}
		return true
	}
}
