package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"flowbender/internal/runpool"
)

// Printable is implemented by every experiment result.
type Printable interface {
	Print(w io.Writer)
}

// RegistryEntry is one named experiment runner.
type RegistryEntry struct {
	Name string
	Desc string
	Run  func(Options) Printable
}

// Registry maps experiment names (as used by cmd/fbsim -exp) to runners.
var Registry = []RegistryEntry{
	{"table1", "Table 1: validation, equal elephant flows ToR-to-ToR, ECMP vs FlowBender",
		func(o Options) Printable { return Table1(o) }},
	{"alltoall", "Figures 3+4 and §4.2.3: all-to-all latency and out-of-order accounting",
		func(o Options) Printable { return AllToAll(o) }},
	{"partagg", "Figure 5: partition-aggregate job completion vs fan-in",
		func(o Options) Printable { return PartitionAggregate(o) }},
	{"sens-n", "Figure 6: sensitivity to N",
		func(o Options) Printable { return SensitivityN(o) }},
	{"sens-t", "Figure 7: sensitivity to T",
		func(o Options) Printable { return SensitivityT(o) }},
	{"testbed", "Figure 8: leaf-spine testbed latency reduction",
		func(o Options) Printable { return Testbed(o) }},
	{"hotspot", "§4.3.1: decongesting a pinned-UDP hotspot",
		func(o Options) Printable { return Hotspot(o) }},
	{"topodep", "§4.3.2: dependence on path diversity",
		func(o Options) Printable { return TopoDependence(o) }},
	{"linkfailure", "§3.3.2: recovery from a link failure within ~RTO",
		func(o Options) Printable { return LinkFailure(o) }},
	{"faults", "chaos suite: cuts, flaps, gray drops, degraded links x scheme",
		func(o Options) Printable { return FaultMatrix(o) }},
	{"wcmp", "§4.3.1: asymmetric fabric, WCMP weights, and FlowBender robustness",
		func(o Options) Printable { return WCMP(o) }},
	{"production", "production workloads: empirical size mixes, diurnal arrivals, incast and storage patterns, streaming FCT quantiles",
		func(o Options) Printable { return ProductionMix(o) }},
	{"fidelity", "engine cross-validation: packet vs fluid FCT divergence at overlapping scales",
		func(o Options) Printable { return FidelityMatrix(o) }},
	{"udpspray", "§3.4.3: burst-level path spraying for unreliable transports",
		func(o Options) Printable { return UDPSpray(o) }},
	{"ablations", "§3.4/§5: FlowBender design-option ablations",
		func(o Options) Printable { return Ablations(o) }},
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (func(Options) Printable, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e.Run, true
		}
	}
	return nil, false
}

// syncWriter serializes concurrent writes to one underlying writer, so
// progress logs from experiments running in parallel don't interleave
// mid-line (their order across experiments is scheduling-dependent; the
// result tables are not).
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// RunAll executes every registered experiment and prints each result to w
// in registry order. All experiments run concurrently, sharing one worker
// pool bounded by Options.Parallelism, so total simulation concurrency
// stays bounded; each experiment's output is buffered and emitted in
// order, byte-identical to a sequential run. An experiment that panics is
// reported FAILED inline and the rest still complete.
func RunAll(o Options, w io.Writer) {
	runExperiments(o, w, Registry)
}

// runExperiments is RunAll over an explicit registry slice (tests inject
// deliberately crashing experiments through it).
func runExperiments(o Options, w io.Writer, reg []RegistryEntry) {
	o.sharedPool = runpool.New(o.Parallelism)
	o.sharedPool.SetWatchdog(o.Watchdog)
	if o.Log != nil {
		o.Log = &syncWriter{w: o.Log}
	}
	bufs := make([]bytes.Buffer, len(reg))
	var wg sync.WaitGroup
	for i, e := range reg {
		// Journal hit: a resumed run serves a completed experiment's
		// recorded output (content-hash verified) instead of re-simulating.
		if o.Ckpt != nil {
			if ent, ok := o.Ckpt.Done(e.Name); ok {
				bufs[i].WriteString(ent.Output)
				o.logf("%s: served from checkpoint journal (%s)", e.Name, o.Ckpt.Path())
				continue
			}
		}
		wg.Add(1)
		go func(i int, name string, run func(Options) Printable) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Named pool errors (PanicError/WatchdogError) render
					// with their point label, so the FAILED line identifies
					// the experiment, scheme, seed, and shard that died.
					bufs[i].Reset()
					fmt.Fprintf(&bufs[i], "FAILED: %v\n", r)
					if pe, ok := r.(*runpool.PanicError); ok {
						o.logf("%s FAILED: %v\n%s", name, pe, pe.Stack)
					}
					if we, ok := r.(*runpool.WatchdogError); ok && o.Ckpt != nil && we.Point != "" {
						// Preserve the wedged point's last barrier state for
						// post-mortem inspection of the checkpoint file.
						o.Ckpt.FlagWedged(we.Point)
					}
				}
			}()
			run(o).Print(&bufs[i])
			if o.Ckpt != nil {
				o.Ckpt.RecordDone(name, bufs[i].String())
			}
		}(i, e.Name, e.Run)
	}
	wg.Wait()
	for i, e := range reg {
		fmt.Fprintf(w, "==== %s — %s ====\n", e.Name, e.Desc)
		_, _ = bufs[i].WriteTo(w)
		fmt.Fprintln(w)
	}
}
