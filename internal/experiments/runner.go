package experiments

import (
	"fmt"
	"io"
)

// Printable is implemented by every experiment result.
type Printable interface {
	Print(w io.Writer)
}

// Registry maps experiment names (as used by cmd/fbsim -exp) to runners.
var Registry = []struct {
	Name string
	Desc string
	Run  func(Options) Printable
}{
	{"table1", "Table 1: validation, equal elephant flows ToR-to-ToR, ECMP vs FlowBender",
		func(o Options) Printable { return Table1(o) }},
	{"alltoall", "Figures 3+4 and §4.2.3: all-to-all latency and out-of-order accounting",
		func(o Options) Printable { return AllToAll(o) }},
	{"partagg", "Figure 5: partition-aggregate job completion vs fan-in",
		func(o Options) Printable { return PartitionAggregate(o) }},
	{"sens-n", "Figure 6: sensitivity to N",
		func(o Options) Printable { return SensitivityN(o) }},
	{"sens-t", "Figure 7: sensitivity to T",
		func(o Options) Printable { return SensitivityT(o) }},
	{"testbed", "Figure 8: leaf-spine testbed latency reduction",
		func(o Options) Printable { return Testbed(o) }},
	{"hotspot", "§4.3.1: decongesting a pinned-UDP hotspot",
		func(o Options) Printable { return Hotspot(o) }},
	{"topodep", "§4.3.2: dependence on path diversity",
		func(o Options) Printable { return TopoDependence(o) }},
	{"linkfailure", "§3.3.2: recovery from a link failure within ~RTO",
		func(o Options) Printable { return LinkFailure(o) }},
	{"wcmp", "§4.3.1: asymmetric fabric, WCMP weights, and FlowBender robustness",
		func(o Options) Printable { return WCMP(o) }},
	{"udpspray", "§3.4.3: burst-level path spraying for unreliable transports",
		func(o Options) Printable { return UDPSpray(o) }},
	{"ablations", "§3.4/§5: FlowBender design-option ablations",
		func(o Options) Printable { return Ablations(o) }},
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (func(Options) Printable, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e.Run, true
		}
	}
	return nil, false
}

// RunAll executes every registered experiment and prints each result to w.
func RunAll(o Options, w io.Writer) {
	for _, e := range Registry {
		fmt.Fprintf(w, "==== %s — %s ====\n", e.Name, e.Desc)
		e.Run(o).Print(w)
		fmt.Fprintln(w)
	}
}
