package experiments

import (
	"runtime"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// tryRunAllToAllSharded executes one all-to-all point across Options.Shards
// conservatively synchronized engine shards and returns measurements
// byte-identical to the serial runAllToAll. It reports ok=false — sending
// the caller down the serial path — whenever sharding cannot be both safe
// and bit-identical:
//
//   - Shards <= 1: nothing to split.
//   - a non-shardable scheme (see Scheme.shardable): FlowBender, RPS, and
//     DiffFlow draw from per-scheme RNG streams at packet-send/selection
//     time — splitting consumers across shards would reorder those draws
//     relative to serial; RepFlow plans replica sub-flows at the host while
//     this planner pre-plans exactly one flow per arrival; DeTail needs PFC
//     (below). ECMP, Flowlet, and FlowDyn shard: their selectors depend only
//     on switch-local state, which the shard protocol replays exactly.
//   - a custom setupFn (differential tests): its semantics are unknown here.
//   - PFC configured: pause/unpause is synchronous fabric back-pressure
//     with zero slack, so the cross-shard lookahead would be zero.
//   - the partition degenerates to one shard (tiny fabrics), or has no
//     positive lookahead (zero-delay cross-shard paths).
//
// The workload is pre-drawn (workload.Predraw consumes the RNG exactly as
// the live arrival process would), and each shard replays the arrival
// schedule through a private beacon chain: beacon i fires at arrival i's
// instant, starts the receiver if the destination is shard-local, then the
// sender if the source is, then schedules beacon i+1. This reproduces the
// serial generator's event-insertion order — receiver before sender, packet
// events before the next-arrival event — which is what same-instant
// tie-breaking keys on. Shards hosting neither endpoint pay one no-op event
// per flow, a rounding error next to the packet traffic.
// ShardBench runs one ECMP all-to-all point — the sharded engine's target
// workload — and discards the tables: fbbench -json wall-clocks it at
// different shard counts (via o.Shards) to track the conservative-parallel
// engine's speedup in the benchmark trajectory. flows overrides the scale's
// default flow count so the bench cost is tunable independently of the
// experiment defaults; o.Perf receives event counts as usual.
func ShardBench(o Options, load float64, flows int) {
	o.runAllToAll(allToAllSpec{scheme: ECMP, load: load, flows: flows, srcTor: -1})
}

func (o Options) tryRunAllToAllSharded(spec allToAllSpec) (*runOutcome, bool) {
	if o.Shards <= 1 || !spec.scheme.shardable() || spec.flows <= 0 || spec.setupFn != nil {
		return nil, false
	}
	p := o.params()
	if spec.params != nil {
		p = *spec.params
	}
	part := topo.PartitionFatTree(p, o.Shards)
	if part.Shards < 2 {
		return nil, false
	}
	if w, ok := part.Lookahead(p); !ok || w <= 0 {
		return nil, false
	}

	// Identical fork structure to the serial path: the scheme stream is
	// forked (and, for ECMP, unused) before the workload stream.
	rootRNG := sim.NewRNG(o.Seed)
	set := spec.scheme.setupRaw(rootRNG.Fork("scheme"), spec.fb, spec.rawFB)
	if set.pfc != nil {
		return nil, false
	}
	p.PFC = set.pfc

	engines := make([]*sim.Engine, part.Shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	sft := topo.NewShardedFatTree(engines, p, part)
	sft.SetSelector(set.sel)

	cdf := spec.cdf
	if cdf == nil {
		cdf = o.CDF
	}
	if cdf == nil {
		cdf = workload.WebSearchCDF()
	}
	gen := &workload.AllToAll{
		RNG:   rootRNG.Fork("workload"),
		Hosts: sft.Hosts,
		CDF:   cdf,
		MeanInterarrival: workload.AggregateInterarrival(
			spec.load, p.BisectionBps(), p.InterPodFraction(), cdf.Mean()),
	}
	if spec.srcTor >= 0 {
		gen.SrcHosts = hostsOf(sft.FatTree, 0, spec.srcTor)
	}
	arrivals := gen.Predraw(spec.flows)

	shardOf := make(map[*netsim.Host]int, len(sft.Hosts))
	for h, host := range sft.Hosts {
		shardOf[host] = part.HostShard[h]
	}
	pending := make([]*tcp.PendingFlow, len(arrivals))
	srcShard := make([]int, len(arrivals))
	dstShard := make([]int, len(arrivals))
	for i, a := range arrivals {
		pending[i] = tcp.PlanFlow(set.cfg, netsim.FlowID(i+1), a.Src, a.Dst, a.Size)
		srcShard[i] = shardOf[a.Src]
		dstShard[i] = shardOf[a.Dst]
	}

	// One beacon chain per shard. The first arrival is handled synchronously
	// at setup, mirroring the serial generator's Run() call at time zero.
	for s := range engines {
		s, eng := s, engines[s]
		next := 0
		var beacon func()
		beacon = func() {
			i := next
			next++
			if dstShard[i] == s {
				pending[i].StartReceiver()
			}
			if srcShard[i] == s {
				pending[i].StartSender()
			}
			if next < len(arrivals) {
				eng.At(arrivals[next].At, beacon)
			}
		}
		beacon()
	}

	window := sft.Window
	workers := part.Shards
	borrowed := 0
	switch {
	case o.debugShardWindow > 0:
		// Tripwire mode: an oversized window plus a single worker, so the
		// simdebug lookahead check panics on the calling goroutine.
		window = o.debugShardWindow
		workers = 1
	case o.execPool != nil:
		// Borrow the extra workers' CPU tokens from the pool this point is
		// running under; the point's own slot covers worker zero.
		borrowed = o.execPool.TryAcquire(part.Shards - 1)
		defer o.execPool.Release(borrowed)
		workers = 1 + borrowed
	default:
		if mp := runtime.GOMAXPROCS(0); workers > mp {
			workers = mp
		}
	}

	scratch := make([][]netsim.CrossMsg, part.Shards)
	ss := &sim.ShardSet{
		Engines: engines,
		Window:  window,
		Merge: func(shard int, windowEnd sim.Time) {
			buf := sft.DrainInbox(shard, scratch[shard][:0])
			netsim.MergeCross(buf, windowEnd)
			scratch[shard] = buf
		},
	}
	done := func() bool {
		for _, pf := range pending {
			if f := pf.Flow(); f.Start < 0 || !f.Done() {
				return false
			}
		}
		return true
	}
	if ck := o.ckptTracker(); ck != nil {
		// Chunk boundaries are the sharded run's quiescent barriers: worker
		// zero observes every shard idle exactly at the boundary instant, the
		// same grid a resumed run will pass through (the descriptor pins the
		// shard count, so the window — and with it the grid — reproduces).
		ss.Tick = func(boundary sim.Time) { ck.tick(boundary, engines...) }
	}
	ss.Run(o.maxWait(), 5*sim.Millisecond, done, workers)
	o.recordPerfShards(engines)

	// Mirror the serial outcome exactly: gen.Flows holds only flows whose
	// arrival event ran before the run stopped, in arrival order.
	flows := make([]*tcp.Flow, 0, len(pending))
	for _, pf := range pending {
		if f := pf.Flow(); f.Start >= 0 {
			flows = append(flows, f)
		}
	}
	var simTime sim.Time
	for _, eng := range engines {
		if eng.Now() > simTime {
			simTime = eng.Now()
		}
	}
	out := &runOutcome{Flows: flows, SimTime: simTime}
	out.collect()
	o.recordFlows(int64(len(out.Flows) - out.Incomplete))
	return out, true
}
