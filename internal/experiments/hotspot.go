package experiments

import (
	"fmt"
	"io"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/udp"
	"flowbender/internal/workload"
)

// HotspotResult reproduces §4.3.1: an aggregate 14 Gbps TCP shuffle between
// two ToRs shares four 10 Gbps paths with a pinned 6 Gbps UDP flow; a good
// load balancer moves TCP traffic off the UDP path U.
type HotspotResult struct {
	Paths   int
	UDPGbps float64
	TCPGbps float64
	// TCPOnU[scheme] is the average TCP rate (Gbps) crossing the hotspot
	// path during the measurement window. The paper reports ~3.5 for ECMP
	// and ~1.5 for FlowBender.
	TCPOnU map[Scheme]float64
	// PerLink[scheme] is the full TCP Gbps split across the uplinks.
	PerLink map[Scheme][]float64
	// UDPDelivered[scheme] is the fraction of UDP datagrams delivered.
	UDPDelivered map[Scheme]float64
}

// hotspotOut is one scheme's measurement.
type hotspotOut struct {
	paths        int
	tcpOnU       float64
	perLink      []float64
	udpDelivered float64
}

// Hotspot runs the decongestion experiment for ECMP and FlowBender; the
// two scheme runs are independent and execute in parallel on the pool.
func Hotspot(o Options) *HotspotResult {
	res := &HotspotResult{
		UDPGbps:      6,
		TCPGbps:      14,
		TCPOnU:       make(map[Scheme]float64),
		PerLink:      make(map[Scheme][]float64),
		UDPDelivered: make(map[Scheme]float64),
	}
	schemes := []Scheme{ECMP, FlowBender}
	name := func(s Scheme) string {
		return o.pointLabel("hotspot/%s/seed=%d", s, o.Seed)
	}
	outs := runpool.MapNamed(o.pool(), schemes, name, func(s Scheme) hotspotOut {
		oo := o
		oo.pointKey = name(s)
		return oo.runHotspot(s)
	})
	for i, scheme := range schemes {
		out := outs[i]
		res.Paths = out.paths
		res.TCPOnU[scheme] = out.tcpOnU
		res.PerLink[scheme] = out.perLink
		res.UDPDelivered[scheme] = out.udpDelivered
		o.logf("hotspot: %s tcpOnU=%.2fGbps perLink=%v udpDelivered=%.3f",
			scheme, out.tcpOnU, out.perLink, out.udpDelivered)
	}
	return res
}

func (o Options) runHotspot(scheme Scheme) hotspotOut {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)
	set := scheme.setup(rng.Fork("scheme"), core.Config{})

	lp := topo.SmallTestbed()
	lp.PFC = set.pfc
	ls := topo.NewLeafSpine(eng, lp)
	ls.SetSelector(set.sel)
	out := hotspotOut{paths: lp.Spines}

	srcIdx := ls.TorHosts(0)
	dstIdx := ls.TorHosts(1)

	// Pinned UDP hotspot: 6 Gbps, fixed path tag, so it statically hashes
	// onto one of the spine paths.
	udpSender := udp.NewSender(eng, 1_000_000, ls.Hosts[srcIdx[0]], ls.Hosts[dstIdx[0]], 6*topo.Gbps, 1460)
	sink := udp.NewSink()
	ls.Hosts[dstIdx[0]].Register(1_000_000, sink)
	udpSender.Start()

	// TCP shuffle: 1 MB flows ToR0 -> ToR1 at an aggregate 14 Gbps.
	const flowBytes = 1_000_000
	flowsPerSec := 14 * float64(topo.Gbps) / (flowBytes * 8)
	srcHosts := make([]*netsim.Host, len(srcIdx))
	dstHosts := make([]*netsim.Host, len(dstIdx))
	for i := range srcIdx {
		srcHosts[i] = ls.Hosts[srcIdx[i]]
	}
	for i := range dstIdx {
		dstHosts[i] = ls.Hosts[dstIdx[i]]
	}
	gen := &workload.AllToAll{
		Eng:      eng,
		RNG:      rng.Fork("workload"),
		Hosts:    dstHosts,
		SrcHosts: srcHosts,
		CDF:      workload.Fixed(flowBytes),
		IDs:      &workload.IDAllocator{},
		Start: func(id netsim.FlowID, src, dst *netsim.Host, sz int64) *tcp.Flow {
			return tcp.StartFlow(eng, set.cfg, id, src, dst, sz)
		},
		MeanInterarrival: sim.Time(float64(sim.Second) / flowsPerSec),
	}
	gen.Run()

	// Warm up, snapshot counters, measure, snapshot again.
	warm := 20 * sim.Millisecond
	meas := 80 * sim.Millisecond
	if o.Scale == ScaleTiny {
		warm, meas = 5*sim.Millisecond, 20*sim.Millisecond
	}
	eng.Run(warm)
	uplinks := ls.UpLinks[0]
	startTCP := make([]int64, len(uplinks))
	startUDP := make([]int64, len(uplinks))
	for i, l := range uplinks {
		startTCP[i] = l.AtoB.TxBytes[netsim.ProtoTCP]
		startUDP[i] = l.AtoB.TxBytes[netsim.ProtoUDP]
	}
	eng.Run(warm + meas)
	o.recordPerf(eng)
	gen.Stop()
	udpSender.Stop()

	perLink := make([]float64, len(uplinks))
	uIdx, uBytes := 0, int64(-1)
	for i, l := range uplinks {
		dTCP := l.AtoB.TxBytes[netsim.ProtoTCP] - startTCP[i]
		dUDP := l.AtoB.TxBytes[netsim.ProtoUDP] - startUDP[i]
		perLink[i] = float64(dTCP) * 8 / meas.Seconds() / float64(topo.Gbps)
		if dUDP > uBytes {
			uBytes, uIdx = dUDP, i
		}
	}
	out.perLink = perLink
	out.tcpOnU = perLink[uIdx]
	if udpSender.Sent > 0 {
		out.udpDelivered = float64(sink.Packets) / float64(udpSender.Sent)
	}
	return out
}

// Print writes the hotspot summary.
func (r *HotspotResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Hotspot decongestion (§4.3.1): %d paths, %.0f Gbps pinned UDP + %.0f Gbps TCP shuffle\n",
		r.Paths, r.UDPGbps, r.TCPGbps)
	for _, s := range []Scheme{ECMP, FlowBender} {
		fmt.Fprintf(w, "  %-11s TCP on hotspot path U: %.2f Gbps   per-link TCP Gbps:", s, r.TCPOnU[s])
		for _, g := range r.PerLink[s] {
			fmt.Fprintf(w, " %.2f", g)
		}
		fmt.Fprintf(w, "   UDP delivery %.1f%%\n", r.UDPDelivered[s]*100)
	}
	fmt.Fprintln(w, "  (paper: ECMP leaves ~3.5 Gbps of TCP on U; FlowBender ~1.5 Gbps)")
}
