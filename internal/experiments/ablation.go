package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
)

// AblationVariant is one FlowBender design option under test.
type AblationVariant struct {
	Name string
	Cfg  core.Config
}

// DefaultAblations covers the paper's §3.4 options and §5 extensions:
// randomized N desync, EWMA smoothing of F, the reroute-rate limiter, and
// the size of the V range (the paper notes even 2 values work). Configs are
// taken verbatim (no evaluation defaults), so the first entry reproduces
// this harness's default stack and the second the paper's minimal scheme.
func DefaultAblations() []AblationVariant {
	return []AblationVariant{
		{Name: "evaluation default (gap=5 + desync)", Cfg: core.Config{MinEpochGap: StabilityGap, DesyncN: true}},
		{Name: "paper minimal (T=5%,N=1,V=8)", Cfg: core.Config{}},
		{Name: "desync only", Cfg: core.Config{DesyncN: true}},
		{Name: "gap=5 only", Cfg: core.Config{MinEpochGap: StabilityGap}},
		{Name: "reroute gap >= 10 RTTs", Cfg: core.Config{MinEpochGap: 10, DesyncN: true}},
		{Name: "N=2", Cfg: core.Config{N: 2, MinEpochGap: StabilityGap}},
		{Name: "N=2 + desync (N±1)", Cfg: core.Config{N: 2, MinEpochGap: StabilityGap, DesyncN: true}},
		{Name: "EWMA F (gamma=0.5)", Cfg: core.Config{EWMAGamma: 0.5, MinEpochGap: StabilityGap, DesyncN: true}},
		{Name: "V range = 2", Cfg: core.Config{NumValues: 2, MinEpochGap: StabilityGap, DesyncN: true}},
		{Name: "V range = 16", Cfg: core.Config{NumValues: 16, MinEpochGap: StabilityGap, DesyncN: true}},
	}
}

// AblationResult compares FlowBender variants on the 40% all-to-all
// workload, normalized to the default configuration, plus the saturated
// ToR-to-ToR validation scenario where the stability options matter most
// (every path carries several elephants, so an unlimited N=1 controller
// reroutes every congested RTT and keeps DCTCP windows collapsed).
type AblationResult struct {
	Load     float64
	Variants []AblationVariant
	MeanNorm []float64
	P99Norm  []float64
	AbsMs    []float64
	Reroutes []int64

	// Validation-scenario results (k = 3 * paths equal flows).
	ValFlows   int
	ValMeanMs  []float64
	ValMaxMs   []float64
	ValIdealMs float64
}

// Ablations runs the variant comparison. Every variant (in both the
// all-to-all and the saturated validation scenario) is an independent
// simulation point, so all of them fan out on the pool at once.
func Ablations(o Options) *AblationResult {
	res := &AblationResult{Load: 0.4, Variants: DefaultAblations()}

	// The saturated validation scenario: 3 flows per path.
	p := o.params()
	res.ValFlows = 3 * p.PathsBetweenPods()
	var size int64 = 50_000_000
	if o.Scale == ScaleTiny {
		size = 10_000_000
	}
	res.ValIdealMs = 3 * float64(size) * 8 / float64(p.LinkRateBps) * 1000

	pool := o.pool()
	type valOut struct{ mean, max float64 }
	a2aName := func(v AblationVariant) string {
		return o.pointLabel("ablations/a2a/%s/seed=%d", v.Name, o.Seed)
	}
	a2aOuts := runpool.MapNamed(pool, res.Variants, a2aName, func(v AblationVariant) *runOutcome {
		oo := o
		oo.pointKey = a2aName(v)
		return oo.runFlowBenderAllToAllRaw(v.Cfg, res.Load)
	})
	valName := func(v AblationVariant) string {
		return o.pointLabel("ablations/val/%s/seed=%d", v.Name, o.Seed)
	}
	valOuts := runpool.MapNamed(pool, res.Variants, valName, func(v AblationVariant) valOut {
		oo := o
		oo.pointKey = valName(v)
		rng := sim.NewRNG(o.Seed)
		fb := v.Cfg
		if fb.RNG == nil {
			fb.RNG = rng.Fork("flowbender")
		}
		set := FlowBender.setupRaw(rng.Fork("scheme"), fb, true)
		mean, max := oo.runValidationSetup(set, res.ValFlows, size)
		return valOut{mean: mean, max: max}
	})

	var baseMean, baseP99 float64
	for i, v := range res.Variants {
		out := a2aOuts[i]
		mean := out.FCT.All().Mean()
		p99 := out.FCT.All().Percentile(99)
		if i == 0 {
			baseMean, baseP99 = mean, p99
		}
		res.MeanNorm = append(res.MeanNorm, stats.Ratio(mean, baseMean))
		res.P99Norm = append(res.P99Norm, stats.Ratio(p99, baseP99))
		res.AbsMs = append(res.AbsMs, mean*1000)
		res.Reroutes = append(res.Reroutes, out.Reroutes)
		o.logf("ablation: %-24s mean=%.3gms reroutes=%d", v.Name, mean*1000, out.Reroutes)
	}
	for i, v := range res.Variants {
		val := valOuts[i]
		res.ValMeanMs = append(res.ValMeanMs, val.mean)
		res.ValMaxMs = append(res.ValMaxMs, val.max)
		o.logf("ablation-validation: %-24s mean=%.1fms max=%.1fms", v.Name, val.mean, val.max)
	}
	return res
}

// Print writes the ablation table.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "FlowBender design ablations (§3.4/§5 options), all-to-all at %.0f%% load, normalized to the first row\n", r.Load*100)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tmean (norm)\tp99 (norm)\tmean (ms)\treroutes")
	for i, v := range r.Variants {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%d\n",
			v.Name, r.MeanNorm[i], r.P99Norm[i], r.AbsMs[i], r.Reroutes[i])
	}
	tw.Flush()

	fmt.Fprintf(w, "\nSaturated validation scenario (%d equal flows, ideal %.0f ms):\n", r.ValFlows, r.ValIdealMs)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tmean FCT (ms)\tmax FCT (ms)")
	for i, v := range r.Variants {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\n", v.Name, r.ValMeanMs[i], r.ValMaxMs[i])
	}
	tw.Flush()
}
