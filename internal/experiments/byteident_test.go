package experiments

import (
	"bytes"
	"testing"
)

// These tests pin the *behavioral* output of whole experiments to golden
// files captured on the pre-pooling seed tree. The event-engine rewrite
// (monomorphic 4-ary heap + event free list) and the packet free lists are
// required to be bit-invisible: every table these experiments print must not
// change by a single byte, at any parallelism level. A diff here means the
// optimisation changed scheduling order or recycled state leaked between
// packets/events — exactly the class of bug pooling introduces silently.
//
// Unlike golden_test.go (which pins formatting of fixed results), these run
// the real simulations, so they cover engine ordering, RNG draw order, TCP
// state machines, fault injection, and rendering end to end.
//
// The goldens were re-pinned once when same-instant event ordering became
// intrinsic (keyed by insertion instant, device, and port — see
// sim.AtTagged): the conservative-parallel sharded engine needs a tie order
// that is a property of the simulated network, not of engine insertion
// history, and serial execution adopts the identical keys so the two modes
// stay provably bit-identical. The re-pin moved a handful of tie-sensitive
// cells by seed-level noise (qualitative results unchanged) and bought
// shard-count invariance: the same goldens now pin serial, -parallel, and
// -shards execution alike.

func byteIdentOpts() Options {
	return Options{Seed: 7, Scale: ScaleTiny, FlowCount: 40, Repeats: 1}
}

// checkByteIdentity renders the experiment at parallelism 1, 4, and 8 and
// requires all three to equal the checked-in golden capture.
func checkByteIdentity(t *testing.T, name string, render func(Options) string) {
	t.Helper()
	o := byteIdentOpts()
	o.Parallelism = 1
	seq := render(o)
	checkGolden(t, name, seq)
	for _, p := range []int{4, 8} {
		o.Parallelism = p
		if got := render(o); got != seq {
			t.Errorf("%s: output at -parallel %d differs from sequential", name, p)
		}
	}
}

func TestByteIdentityTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkByteIdentity(t, "byteident_table1", func(o Options) string {
		var buf bytes.Buffer
		Table1(o).Print(&buf)
		return buf.String()
	})
}

func TestByteIdentityAllToAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkByteIdentity(t, "byteident_alltoall", renderAllToAll)
}

// TestByteIdentityPaperFatTree pins the all-to-all output on the full §4.2
// fabric: 128 servers, 8 paths between pods. The tiny-scale pins above cover
// the logic; this one covers the paper-scale geometry — deeper ECMP fan-out,
// longer paths, and far larger concurrent event and flow populations — where
// an ordering bug in the calendar queue, the selector memo, or the dispatch
// table would surface even if the 16-server fabric masked it. The flow count
// is trimmed to keep the run affordable in CI.
func TestByteIdentityPaperFatTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 7, Scale: ScalePaper, FlowCount: 120, Repeats: 1}
	o.Parallelism = 1
	seq := renderAllToAll(o)
	checkGolden(t, "byteident_paper_alltoall", seq)
	for _, p := range []int{4, 8} {
		o.Parallelism = p
		if got := renderAllToAll(o); got != seq {
			t.Errorf("paper fat-tree: output at -parallel %d differs from sequential", p)
		}
	}
}

// TestByteIdentityShardedAllToAll pins the sharded engine to the same golden
// as serial execution: the conservative bounded-lag protocol must be
// bit-invisible at every shard count, exactly as -parallel must be.
func TestByteIdentityShardedAllToAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := byteIdentOpts()
	o.Parallelism = 1
	for _, s := range []int{1, 2, 4, 8} {
		o.Shards = s
		checkGolden(t, "byteident_alltoall", renderAllToAll(o))
	}
}

// TestByteIdentityShardedPaperFatTree is the shard-count analogue of
// TestByteIdentityPaperFatTree: the 128-server fabric partitions across
// pods, so every shard count below exercises real cross-shard mailboxes.
func TestByteIdentityShardedPaperFatTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 7, Scale: ScalePaper, FlowCount: 120, Repeats: 1}
	o.Parallelism = 1
	for _, s := range []int{2, 4, 8} {
		o.Shards = s
		checkGolden(t, "byteident_paper_alltoall", renderAllToAll(o))
	}
}

func TestByteIdentityFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkByteIdentity(t, "byteident_faultmatrix", func(o Options) string {
		// A three-scenario slice keeps the matrix affordable while still
		// covering clean cuts, flapping, and gray loss — the fault paths
		// that exercise link-drop packet frees and event cancellation.
		o.FaultScenarios = []string{"cut", "flap10ms", "gray1"}
		return renderFaultMatrix(o)
	})
}
