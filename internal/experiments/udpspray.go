package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
	"flowbender/internal/udp"
)

// UDPSprayResult covers the §3.4.3 extension: unreliable transports can
// re-draw the path tag every burst instead of only on congestion, spraying
// load across paths at a controlled pace (applications over UDP tolerate
// reordering). We compare a pinned UDP flow, per-burst spraying at several
// burst sizes, and per-packet spraying, by the balance they achieve across
// the spine paths and the reordering they induce.
type UDPSprayResult struct {
	Variants []string
	// MaxShare is the largest fraction of the flow's bytes on any single
	// path (1.0 = pinned; 1/Paths = perfectly spread).
	MaxShare []float64
	// OOOFrac is the fraction of datagrams arriving out of order.
	OOOFrac []float64
	Paths   int
}

// UDPSpray runs one 8 Gbps UDP flow across the leaf-spine for each variant.
func UDPSpray(o Options) *UDPSprayResult {
	type variant struct {
		name  string
		burst int64 // 0 = pinned, 1 = per-packet
	}
	variants := []variant{
		{"pinned (single path)", 0},
		{"spray per 256 KB burst", 256 * 1024},
		{"spray per 64 KB burst", 64 * 1024},
		{"spray per packet", 1},
	}
	res := &UDPSprayResult{Paths: topo.SmallTestbed().Spines}
	// Each variant is an independent simulation point.
	name := func(v variant) string {
		return o.pointLabel("udpspray/%s/seed=%d", v.name, o.Seed)
	}
	outs := runpool.MapNamed(o.pool(), variants, name, func(v variant) [2]float64 {
		oo := o
		oo.pointKey = name(v)
		maxShare, ooo := oo.runUDPSpray(v.burst)
		return [2]float64{maxShare, ooo}
	})
	for i, v := range variants {
		res.Variants = append(res.Variants, v.name)
		res.MaxShare = append(res.MaxShare, outs[i][0])
		res.OOOFrac = append(res.OOOFrac, outs[i][1])
		o.logf("udpspray: %-24s maxShare=%.3f ooo=%.4f", v.name, outs[i][0], outs[i][1])
	}
	return res
}

func (o Options) runUDPSpray(burst int64) (maxShare, oooFrac float64) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)
	lp := topo.SmallTestbed()
	ls := topo.NewLeafSpine(eng, lp)
	ls.SetSelector(routing.ECMP{})

	src := ls.Hosts[ls.TorHosts(0)[0]]
	dst := ls.Hosts[ls.TorHosts(1)[0]]
	s := udp.NewSender(eng, 1, src, dst, 8*topo.Gbps, 1460)
	if burst > 0 {
		s.Sprayer = core.NewSprayer(core.DefaultNumValues, burst, rng.Fork("spray"))
	}
	sink := udp.NewSink()
	dst.Register(1, sink)
	s.Start()

	// Background traffic from a third ToR toward the destination builds a
	// standing queue on one spine-to-destination downlink, so the sprayed
	// flow's paths really do differ in depth — the condition under which
	// spraying reorders. (It originates elsewhere so the source ToR's
	// uplink counters measure only the foreground flow.)
	bg := udp.NewSender(eng, 2, ls.Hosts[ls.TorHosts(2)[0]], ls.Hosts[ls.TorHosts(1)[1]], 7*topo.Gbps, 1460)
	ls.Hosts[ls.TorHosts(1)[1]].Register(2, udp.NewSink())
	bg.Start()

	eng.Run(20 * sim.Millisecond)
	s.Stop()
	bg.Stop()
	eng.Run(25 * sim.Millisecond)
	o.recordPerf(eng)

	var total, max int64
	for _, l := range ls.UpLinks[0] {
		b := l.AtoB.TxBytes[netsim.ProtoUDP]
		total += b
		if b > max {
			max = b
		}
	}
	if total > 0 {
		maxShare = float64(max) / float64(total)
	}
	if sink.Packets > 0 {
		oooFrac = float64(sink.OutOfOrder) / float64(sink.Packets)
	}
	return maxShare, oooFrac
}

// Print writes the spray comparison.
func (r *UDPSprayResult) Print(w io.Writer) {
	fmt.Fprintln(w, "UDP burst-level spraying (§3.4.3): one 8 Gbps UDP flow over 4 spine paths")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tmax per-path byte share\tout-of-order fraction")
	for i, v := range r.Variants {
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\n", v, r.MaxShare[i], r.OOOFrac[i])
	}
	tw.Flush()
	fmt.Fprintln(w, "  (smaller bursts spread load better at the cost of reordering, which UDP applications tolerate)")
}
