package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/runpool"
	"flowbender/internal/stats"
)

// SensitivityResult holds Figure 6 (sensitivity to N) or Figure 7
// (sensitivity to T): mean all-to-all latency normalized to the default
// parameter value.
type SensitivityResult struct {
	Param   string // "N" or "T"
	Values  []float64
	Default float64
	// Norm[i] is mean latency at Values[i] normalized to the default.
	Norm []float64
	// AbsMs[i] is the absolute mean latency in ms.
	AbsMs []float64
	// StdMs[i] is the across-seed stddev of the mean latency (0 with one
	// seed).
	StdMs []float64
	Load  float64
	// Seeds is the replication count the sweep was aggregated over.
	Seeds int
}

// SensitivityN reproduces Figure 6: FlowBender with N in {1,2,3,4} on the
// 40%-load all-to-all workload, mean latency normalized to N=1.
func SensitivityN(o Options) *SensitivityResult {
	res := &SensitivityResult{Param: "N", Values: []float64{1, 2, 3, 4}, Default: 1, Load: 0.4}
	res.run(o, func(v float64) core.Config { return core.Config{N: int(v)} })
	return res
}

// SensitivityT reproduces Figure 7: FlowBender with T in {1%,5%,10%,20%} on
// the 40%-load all-to-all workload, mean latency normalized to T=5%.
func SensitivityT(o Options) *SensitivityResult {
	res := &SensitivityResult{Param: "T", Values: []float64{0.01, 0.05, 0.10, 0.20}, Default: 0.05, Load: 0.4}
	res.run(o, func(v float64) core.Config { return core.Config{T: v} })
	return res
}

func (r *SensitivityResult) run(o Options, cfgOf func(v float64) core.Config) {
	// Every (value, seed) pair is an independent simulation point.
	reps := o.seeds()
	r.Seeds = reps
	type point struct {
		vi  int
		rep int
	}
	var points []point
	for vi := range r.Values {
		for rep := 0; rep < reps; rep++ {
			points = append(points, point{vi: vi, rep: rep})
		}
	}
	name := func(pt point) string {
		return o.pointLabel("sensitivity/%s=%g/FlowBender/seed=%d", r.Param, r.Values[pt.vi], o.seedAt(pt.rep))
	}
	outs := runpool.MapNamed(o.pool(), points, name, func(pt point) float64 {
		oo := o
		oo.Seed = o.seedAt(pt.rep)
		oo.pointKey = name(pt)
		return oo.runFlowBenderAllToAll(cfgOf(r.Values[pt.vi]), r.Load).FCT.All().Mean()
	})

	abs := make([]float64, len(r.Values))
	r.StdMs = make([]float64, len(r.Values))
	var def float64
	for vi, v := range r.Values {
		s := stats.Summarize(outs[vi*reps : (vi+1)*reps])
		abs[vi] = s.Mean
		r.StdMs[vi] = s.Std * 1000
		if v == r.Default {
			def = abs[vi]
		}
		o.logf("sensitivity %s=%v: mean=%.3gms", r.Param, v, abs[vi]*1000)
	}
	r.AbsMs = make([]float64, len(abs))
	r.Norm = make([]float64, len(abs))
	for i := range abs {
		r.AbsMs[i] = abs[i] * 1000
		r.Norm[i] = stats.Ratio(abs[i], def)
	}
}

// Print writes the sensitivity sweep as a table.
func (r *SensitivityResult) Print(w io.Writer) {
	fig := "Figure 6"
	if r.Param == "T" {
		fig = "Figure 7"
	}
	fmt.Fprintf(w, "%s: FlowBender sensitivity to %s (mean latency normalized to default %v, load %.0f%%)\n",
		fig, r.Param, r.Default, r.Load*100)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if r.Seeds > 1 {
		fmt.Fprintf(tw, "%s\tnormalized mean\tabs mean (ms)\tstddev over %d seeds (ms)\n", r.Param, r.Seeds)
	} else {
		fmt.Fprintf(tw, "%s\tnormalized mean\tabs mean (ms)\n", r.Param)
	}
	for i, v := range r.Values {
		label := fmt.Sprintf("%g", v)
		if r.Param == "T" {
			label = fmt.Sprintf("%g%%", v*100)
		}
		if r.Seeds > 1 {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", label, r.Norm[i], r.AbsMs[i], r.StdMs[i])
		} else {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", label, r.Norm[i], r.AbsMs[i])
		}
	}
	tw.Flush()
}
