package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flowbender/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file instead when -update is set. The golden files pin the exact table
// layout so formatting drift (tabwriter widths, ± rendering, header text)
// is a reviewed diff, not a silent change.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// fixedAllToAll builds a fully deterministic AllToAllResult with
// recognizable values: cell (load, scheme, bin) encodes its coordinates.
func fixedAllToAll(seeds int) *AllToAllResult {
	res := &AllToAllResult{
		Loads:    DefaultLoads,
		Schemes:  AllSchemes,
		Cells:    make(map[float64]map[Scheme][stats.NumBins]AllToAllCell),
		OOO: map[Scheme]float64{
			ECMP: 0.0000123, FlowBender: 0.000345, RPS: 0.0456, DeTail: 0.0078,
			Flowlet: 0.0011, FlowDyn: 0.0022, RepFlow: 0.0000456, DiffFlow: 0.0234,
		},
		Reroutes: map[float64]int64{0.2: 12, 0.4: 34, 0.6: 56},
		Seeds:    seeds,
	}
	for li, load := range res.Loads {
		cells := make(map[Scheme][stats.NumBins]AllToAllCell)
		for si, s := range res.Schemes {
			var row [stats.NumBins]AllToAllCell
			for b := 0; b < int(stats.NumBins); b++ {
				row[b] = AllToAllCell{
					MeanNorm:    1 - 0.1*float64(si) + 0.01*float64(li) + 0.001*float64(b),
					P99Norm:     1 - 0.2*float64(si) + 0.02*float64(li) + 0.002*float64(b),
					MeanNormStd: 0.01 * float64(si+1),
					P99NormStd:  0.02 * float64(si+1),
					N:           100,
				}
			}
			cells[s] = row
		}
		res.Cells[load] = cells
	}
	return res
}

func TestGoldenAllToAllPrint(t *testing.T) {
	var buf bytes.Buffer
	fixedAllToAll(1).Print(&buf)
	checkGolden(t, "alltoall", buf.String())
}

func TestGoldenAllToAllPrintMultiSeed(t *testing.T) {
	var buf bytes.Buffer
	fixedAllToAll(3).Print(&buf)
	checkGolden(t, "alltoall_seeds", buf.String())
}

func fixedTable1(seeds int) *Table1Result {
	// Two hand-built scheme columns keep the fixture readable while still
	// pinning the per-(row, scheme) line layout that the full set uses.
	return &Table1Result{
		FlowBytes: 50_000_000,
		Paths:     4,
		Seeds:     seeds,
		Schemes:   []Scheme{ECMP, FlowBender},
		Rows: []Table1Row{
			{Flows: 4, IdealMs: 400,
				MeanMs:      []float64{812, 462},
				MaxMs:       []float64{1530, 497},
				MeanStdMs:   []float64{41, 9},
				MaxOverMean: []float64{1.88, 1.08}},
			{Flows: 8, IdealMs: 800,
				MeanMs:      []float64{1420, 841},
				MaxMs:       []float64{2410, 902},
				MeanStdMs:   []float64{66, 12},
				MaxOverMean: []float64{1.70, 1.07}},
			{Flows: 12, IdealMs: 1200,
				MeanMs:      []float64{1980, 1265},
				MaxMs:       []float64{3100, 1388},
				MeanStdMs:   []float64{90, 21},
				MaxOverMean: []float64{1.57, 1.10}},
		},
	}
}

func TestGoldenTable1Print(t *testing.T) {
	var buf bytes.Buffer
	fixedTable1(0).Print(&buf)
	checkGolden(t, "table1", buf.String())
}

func TestGoldenTable1PrintMultiSeed(t *testing.T) {
	var buf bytes.Buffer
	fixedTable1(5).Print(&buf)
	checkGolden(t, "table1_seeds", buf.String())
}

// TestGoldenSchemes pins fbsim -list-schemes output: the full comparison
// set, each scheme's sharded-vs-serial all-to-all path, and its parameters.
func TestGoldenSchemes(t *testing.T) {
	var buf bytes.Buffer
	PrintSchemes(&buf)
	checkGolden(t, "schemes", buf.String())
}
