package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// MarshalText makes Scheme usable as a JSON map key.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// loadKey renders a load fraction as a stable JSON key ("20%", "40%", ...).
func loadKey(load float64) string { return fmt.Sprintf("%g%%", load*100) }

// MarshalJSON flattens the float-keyed maps into string-keyed objects.
func (r *AllToAllResult) MarshalJSON() ([]byte, error) {
	type cellRow map[Scheme][]AllToAllCell
	out := struct {
		Loads      []float64
		Schemes    []string
		Cells      map[string]cellRow
		OOO        map[Scheme]float64
		Reroutes   map[string]int64
		Incomplete int
	}{
		Loads:      r.Loads,
		Cells:      map[string]cellRow{},
		OOO:        r.OOO,
		Reroutes:   map[string]int64{},
		Incomplete: r.Incomplete,
	}
	for _, s := range r.Schemes {
		out.Schemes = append(out.Schemes, s.String())
	}
	for load, per := range r.Cells {
		row := cellRow{}
		for s, cells := range per {
			row[s] = cells[:]
		}
		out.Cells[loadKey(load)] = row
	}
	for load, n := range r.Reroutes {
		out.Reroutes[loadKey(load)] = n
	}
	return json.Marshal(out)
}

// MarshalJSON flattens the float-keyed maps into string-keyed objects.
func (r *TestbedResult) MarshalJSON() ([]byte, error) {
	out := struct {
		Loads     []float64
		Norm      map[string][3]float64
		ECMPAbsMs map[string][3]float64
		FlowBytes int64
		Tors      int
		Spines    int
	}{
		Loads:     r.Loads,
		Norm:      map[string][3]float64{},
		ECMPAbsMs: map[string][3]float64{},
		FlowBytes: r.FlowBytes,
		Tors:      r.Tors,
		Spines:    r.Spines,
	}
	for load, v := range r.Norm {
		out.Norm[loadKey(load)] = v
	}
	for load, v := range r.ECMPAbsMs {
		out.ECMPAbsMs[loadKey(load)] = v
	}
	return json.Marshal(out)
}

// MarshalJSON renders the NaN mean (no affected flow completed) as null,
// which encoding/json otherwise rejects.
func (c FaultCell) MarshalJSON() ([]byte, error) {
	type alias FaultCell // drop the method to avoid recursion
	out := struct {
		alias
		MeanAffectedFCTms *float64
	}{alias: alias(c)}
	if !math.IsNaN(c.MeanAffectedFCTms) {
		out.MeanAffectedFCTms = &c.MeanAffectedFCTms
	}
	return json.Marshal(out)
}

// MarshalJSON renders empty-bin NaN quantiles as null, which encoding/json
// otherwise rejects.
func (c MixBinCell) MarshalJSON() ([]byte, error) {
	q := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return json.Marshal(struct {
		N      int64
		P50ms  *float64
		P99ms  *float64
		P999ms *float64
	}{c.N, q(c.P50ms), q(c.P99ms), q(c.P999ms)})
}

// WriteJSON encodes any experiment result as indented JSON.
func WriteJSON(w io.Writer, res Printable) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
