package experiments

import (
	"fmt"
	"io"

	"flowbender/internal/runpool"
	"flowbender/internal/stats"
	"flowbender/internal/topo"
)

// TopoDepResult reproduces §4.3.2: FlowBender's improvement over ECMP is
// governed by the ratio R = L/P of large flows to paths, so quadrupling path
// diversity (while load scales with capacity) leaves the improvement nearly
// unchanged — ECMP's per-path flow count is binomial with mean R and
// variance R(1 - 1/P), which barely moves with P.
type TopoDepResult struct {
	// Per fabric: path count P, FlowBender mean-latency improvement over
	// ECMP (ECMP/FlowBender, >1 is better), and the binomial variance
	// factor R(1-1/P)/R = 1-1/P.
	Paths       []int
	Improvement []float64
	VarFactor   []float64
	Load        float64
}

// TopoDependence runs the 40% all-to-all workload on two fat-trees with
// different path diversity (the small 4-path and the paper's 8-path fabric,
// host count scaled with capacity) and compares FlowBender's improvement.
func TopoDependence(o Options) *TopoDepResult {
	res := &TopoDepResult{Load: 0.4}

	configs := []struct {
		scale ScaleLevel
		p     topo.Params
	}{
		{ScaleSmall, topo.SmallScale()},
		{ScalePaper, topo.PaperScale()},
	}
	if o.Scale == ScaleTiny {
		tiny4 := topo.TinyScale()
		tiny4.CoreUplinksPerAgg = 2 // 4 paths on the tiny fabric
		configs = []struct {
			scale ScaleLevel
			p     topo.Params
		}{
			{ScaleTiny, topo.TinyScale()},
			{ScaleTiny, tiny4},
		}
	}

	// Each (fabric, scheme) pair is an independent simulation point.
	type point struct {
		ci     int
		scheme Scheme
	}
	var points []point
	for ci := range configs {
		points = append(points, point{ci, ECMP}, point{ci, FlowBender})
	}
	pl := o.pool()
	name := func(pt point) string {
		return o.pointLabel("topodep/fabric=%d/%s/seed=%d", pt.ci, pt.scheme, o.Seed)
	}
	outs := runpool.MapNamed(pl, points, name, func(pt point) float64 {
		opt := o
		opt.Scale = configs[pt.ci].scale
		opt.execPool = pl
		opt.pointKey = name(pt)
		return opt.runAllToAllOn(configs[pt.ci].p, pt.scheme, res.Load)
	})
	for ci, c := range configs {
		ecmp, fb := outs[2*ci], outs[2*ci+1]
		imp := stats.Ratio(ecmp, fb)
		paths := c.p.PathsBetweenPods()
		res.Paths = append(res.Paths, paths)
		res.Improvement = append(res.Improvement, imp)
		res.VarFactor = append(res.VarFactor, 1-1/float64(paths))
		o.logf("topodep: P=%d ecmp=%.3gms fb=%.3gms improvement=%.2fx", paths, ecmp*1000, fb*1000, imp)
	}
	return res
}

// runAllToAllOn is runAllToAll with an explicit topology (mean FCT seconds).
func (o Options) runAllToAllOn(p topo.Params, scheme Scheme, load float64) float64 {
	saved := o
	out := saved.runAllToAllParams(p, scheme, load)
	return out.FCT.All().Mean()
}

// Print writes the path-diversity comparison.
func (r *TopoDepResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Topological dependence (§4.3.2): FlowBender improvement vs path diversity, load %.0f%%\n", r.Load*100)
	for i := range r.Paths {
		fmt.Fprintf(w, "  P=%d paths: mean-latency improvement over ECMP %.2fx (binomial variance factor 1-1/P = %.3f)\n",
			r.Paths[i], r.Improvement[i], r.VarFactor[i])
	}
	fmt.Fprintln(w, "  (paper: improvement is nearly independent of P because R = L/P stays fixed)")
}
