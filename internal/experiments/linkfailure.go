package experiments

import (
	"fmt"
	"io"
	"math"

	"flowbender/internal/core"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// LinkFailureResult quantifies the §3.3.2 claim: FlowBender routes around a
// failed link within about one RTO, while static ECMP flows whose hash maps
// onto the dead link stay stuck until routing reconverges (not modeled —
// the paper puts it at O(seconds)).
type LinkFailureResult struct {
	FlowBytes int64
	FailAt    sim.Time
	Deadline  sim.Time
	RTOMin    sim.Time

	// Per scheme: flows completed before the deadline / total.
	Completed map[Scheme]int
	Total     int
	// AffectedTimeouts[scheme]: flows that saw at least one RTO.
	Affected map[Scheme]int
	// MeanAffectedFCTms: mean completion time of affected flows (only
	// meaningful where they complete at all).
	MeanAffectedFCTms map[Scheme]float64
	// MeanUnaffectedFCTms: baseline completion of untouched flows.
	MeanUnaffectedFCTms map[Scheme]float64
}

// linkFailureOut is one scheme's measurement.
type linkFailureOut struct {
	total            int
	completed        int
	affected         int
	meanAffectedMs   float64
	meanUnaffectedMs float64
}

// LinkFailure starts one long flow per source host from pod 0 to pod 1,
// fails one aggregation-to-core cable shortly after, and compares ECMP's
// and FlowBender's ability to finish the transfers. The two scheme runs
// execute in parallel on the pool.
func LinkFailure(o Options) *LinkFailureResult {
	res := &LinkFailureResult{
		FlowBytes: 10_000_000,
		FailAt:    1 * sim.Millisecond,
		Deadline:  2 * sim.Second,
		RTOMin:    10 * sim.Millisecond,
		Completed: make(map[Scheme]int),
		Affected:  make(map[Scheme]int),

		MeanAffectedFCTms:   make(map[Scheme]float64),
		MeanUnaffectedFCTms: make(map[Scheme]float64),
	}
	schemes := []Scheme{ECMP, FlowBender}
	name := func(s Scheme) string {
		return o.pointLabel("linkfailure/%s/seed=%d", s, o.Seed)
	}
	outs := runpool.MapNamed(o.pool(), schemes, name, func(s Scheme) linkFailureOut {
		oo := o
		oo.pointKey = name(s)
		return res.runOne(oo, s)
	})
	for i, scheme := range schemes {
		out := outs[i]
		res.Total = out.total
		res.Completed[scheme] = out.completed
		res.Affected[scheme] = out.affected
		res.MeanAffectedFCTms[scheme] = out.meanAffectedMs
		res.MeanUnaffectedFCTms[scheme] = out.meanUnaffectedMs
		o.logf("linkfailure: %s completed=%d/%d affected=%d meanAffectedFCT=%.1fms",
			scheme, out.completed, out.total, out.affected, out.meanAffectedMs)
	}
	return res
}

// runOne runs one scheme; it only reads the result's scenario constants
// (FlowBytes, FailAt, Deadline), never writes, so parallel calls are safe.
func (r *LinkFailureResult) runOne(o Options, scheme Scheme) linkFailureOut {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)
	set := scheme.setup(rng.Fork("scheme"), core.Config{})

	p := o.params()
	p.PFC = set.pfc
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(set.sel)

	// One flow per pod-0 host, each to the corresponding pod-1 host, so the
	// up-paths carry several flows and at least some hash across the link
	// we are about to cut.
	ids := &workload.IDAllocator{}
	var flows []*tcp.Flow
	perPod := p.TorsPerPod * p.ServersPerTor
	for i := 0; i < perPod; i++ {
		src := ft.Hosts[i]
		dst := ft.Hosts[perPod+i]
		flows = append(flows, tcp.StartFlow(eng, set.cfg, ids.Next(), src, dst, r.FlowBytes))
	}
	out := linkFailureOut{total: len(flows)}

	// Cut the first aggregation switch's first core uplink in pod 0.
	eng.At(r.FailAt, func() { ft.AggCoreLinks[0][0][0].Fail() })

	o.drain(eng, r.Deadline, allFlowsDone(flows))
	o.recordPerf(eng)

	var affected, unaffected stats.Sketch
	for _, f := range flows {
		hadTimeout := f.Sender().Timeouts > 0
		if hadTimeout {
			out.affected++
		}
		if f.Done() {
			out.completed++
			if hadTimeout {
				affected.Add(f.FCT().Seconds() * 1000)
			} else {
				unaffected.Add(f.FCT().Seconds() * 1000)
			}
		}
	}
	out.meanAffectedMs = affected.Mean()
	out.meanUnaffectedMs = unaffected.Mean()
	return out
}

// ms formats a millisecond value, rendering NaN (no samples) as "n/a".
func ms(v float64) string {
	if math.IsNaN(v) {
		return "n/a (none completed)"
	}
	return fmt.Sprintf("%.1f ms", v)
}

// Print writes the link-failure summary.
func (r *LinkFailureResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Link failure recovery (§3.3.2): %d MB inter-pod flows, one core uplink cut at %v (RTOmin %v)\n",
		r.FlowBytes/1_000_000, r.FailAt, r.RTOMin)
	for _, s := range []Scheme{ECMP, FlowBender} {
		fmt.Fprintf(w, "  %-11s completed %d/%d; flows hitting RTO: %d; mean FCT affected %s vs unaffected %s\n",
			s, r.Completed[s], r.Total, r.Affected[s],
			ms(r.MeanAffectedFCTms[s]), ms(r.MeanUnaffectedFCTms[s]))
	}
	fmt.Fprintln(w, "  (FlowBender re-draws V on each RTO: affected flows finish ~one RTO late; static ECMP flows on the dead path never finish)")
}
