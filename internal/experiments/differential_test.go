package experiments

import (
	"math"
	"testing"

	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// Differential tests: every competitor scheme has a degenerate configuration
// that collapses onto one of the paper's baselines, and the collapse must be
// bit-identical, not merely statistically similar. Each test runs the same
// all-to-all point twice — once with the baseline scheme, once with the
// degenerate competitor injected through allToAllSpec.setupFn — and compares
// full per-flow fingerprints.

func diffSpec(scheme Scheme) allToAllSpec {
	return allToAllSpec{scheme: scheme, load: 0.6, flows: 150, srcTor: -1}
}

func diffOpts() Options {
	return Options{Seed: 11, Scale: ScaleTiny}
}

// Flowlet switching with an infinite idle gap never opens a second flowlet,
// so every flow keeps its base hash draw forever: exactly per-flow ECMP.
// This also pins that the flowlet table machinery itself (lookups, LRU
// touches, the disabled expiry) is invisible to packet forwarding.
func TestDifferentialFlowletInfiniteGapIsECMP(t *testing.T) {
	o := diffOpts()
	want := flowFingerprint(o.runAllToAll(diffSpec(ECMP)))

	spec := diffSpec(Flowlet)
	spec.setupFn = func(rng *sim.RNG) schemeSetup {
		return schemeSetup{cfg: tcp.DefaultConfig(), sel: &routing.Flowlet{Gap: routing.InfiniteGap}}
	}
	got := flowFingerprint(o.runAllToAll(spec))
	if got != want {
		t.Errorf("Flowlet(Gap=∞) diverges from ECMP:\n%s", firstDiff(want, got))
	}

	// Control: the default finite gap must NOT collapse to ECMP on the same
	// workload, or the degenerate test above proves nothing.
	if ctrl := flowFingerprint(o.runAllToAll(diffSpec(Flowlet))); ctrl == want {
		t.Error("control failed: Flowlet with the default gap is indistinguishable from ECMP")
	}
}

// DiffFlow with a zero short-flow cutoff marks no packet for spraying, so
// its selector always takes the hash branch: exactly ECMP.
func TestDifferentialDiffFlowZeroCutoffIsECMP(t *testing.T) {
	o := diffOpts()
	want := flowFingerprint(o.runAllToAll(diffSpec(ECMP)))

	spec := diffSpec(DiffFlow)
	spec.setupFn = func(rng *sim.RNG) schemeSetup {
		cfg := tcp.DefaultConfig()
		cfg.SprayShortCutoff = 0
		return schemeSetup{cfg: cfg, sel: &routing.DiffFlow{RNG: rng.Fork("rps")}}
	}
	got := flowFingerprint(o.runAllToAll(spec))
	if got != want {
		t.Errorf("DiffFlow(cutoff=0) diverges from ECMP:\n%s", firstDiff(want, got))
	}
}

// DiffFlow with an unbounded cutoff marks every packet for spraying, and its
// selector forks the RNG under the same label RPS uses, so the per-packet
// draw sequence — and therefore every queue, mark, and completion — must be
// bit-identical to RPS.
func TestDifferentialDiffFlowUnboundedCutoffIsRPS(t *testing.T) {
	o := diffOpts()
	want := flowFingerprint(o.runAllToAll(diffSpec(RPS)))

	spec := diffSpec(DiffFlow)
	spec.setupFn = func(rng *sim.RNG) schemeSetup {
		cfg := tcp.DefaultConfig()
		cfg.SprayShortCutoff = math.MaxInt64
		return schemeSetup{cfg: cfg, sel: &routing.DiffFlow{RNG: rng.Fork("rps")}}
	}
	got := flowFingerprint(o.runAllToAll(spec))
	if got != want {
		t.Errorf("DiffFlow(cutoff=∞) diverges from RPS:\n%s", firstDiff(want, got))
	}

	// Control: the default cutoff (sprayed shorts, pinned longs) must match
	// neither baseline.
	ctrl := flowFingerprint(o.runAllToAll(diffSpec(DiffFlow)))
	if ctrl == want {
		t.Error("control failed: default-cutoff DiffFlow is indistinguishable from RPS")
	}
	if ecmp := flowFingerprint(o.runAllToAll(diffSpec(ECMP))); ctrl == ecmp {
		t.Error("control failed: default-cutoff DiffFlow is indistinguishable from ECMP")
	}
}

// singlePathFCT runs one small inter-ToR flow on a loss-free leaf-spine with
// a single spine — one path, so replication cannot find a better route — and
// returns the flow.
func singlePathFCT(t *testing.T, replicate bool) *tcp.Flow {
	t.Helper()
	eng := sim.NewEngine()
	p := topo.SmallTestbed()
	p.Spines = 1
	ls := topo.NewLeafSpine(eng, p)
	ls.SetSelector(routing.ECMP{})

	cfg := tcp.DefaultConfig()
	if replicate {
		cfg.Replicate = &tcp.ReplicateConfig{Cutoff: RepFlowCutoff}
	}
	src := ls.Hosts[ls.TorHosts(0)[0]]
	dst := ls.Hosts[ls.TorHosts(1)[0]]
	f := tcp.StartFlow(eng, cfg, 1, src, dst, 20_000)
	Options{}.drain(eng, sim.Second, func() bool { return f.Done() })
	if !f.Done() {
		t.Fatalf("flow (replicate=%v) incomplete", replicate)
	}
	if f.Sender().Timeouts != 0 {
		t.Fatalf("flow (replicate=%v) took %d timeouts on a loss-free fabric", replicate, f.Sender().Timeouts)
	}
	return f
}

// RepFlow's worst case is a topology with no path diversity: the replica
// competes with the primary for the only path and buys nothing. The paper's
// claim is that replication is then nearly free for short flows — the winner
// finishes within one RTT of what the unreplicated flow achieves.
func TestDifferentialRepFlowSinglePathWithinOneRTT(t *testing.T) {
	solo := singlePathFCT(t, false).FCT()
	rep := singlePathFCT(t, true).FCT()

	// One base RTT of the fabric: host NIC delays, three store-and-forward
	// switch pipeline delays, and four hops' serialization of one MTU, both
	// ways. Generous but principled — well under the multi-RTT FCT itself.
	p := topo.SmallTestbed()
	ser := sim.Time(1500 * 8 * int64(sim.Second) / p.LinkRateBps)
	rtt := 2 * (2*p.HostDelay + 3*p.SwitchDelay + 4*(p.LinkDelay+ser))

	diff := rep - solo
	if diff < 0 {
		diff = -diff
	}
	if diff > rtt {
		t.Errorf("RepFlow FCT %v vs unreplicated %v: differs by %v, more than one RTT (%v)",
			rep, solo, diff, rtt)
	}
}
