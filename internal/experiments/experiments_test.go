package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func tinyOpts() Options {
	return Options{Seed: 1, Scale: ScaleTiny, FlowCount: 80, JobCount: 12, Repeats: 1}
}

func TestSchemeString(t *testing.T) {
	for _, s := range AllSchemes {
		if strings.Contains(s.String(), "scheme(") {
			t.Fatalf("missing name for scheme %d", int(s))
		}
	}
}

func TestLookup(t *testing.T) {
	for _, e := range Registry {
		if _, ok := Lookup(e.Name); !ok {
			t.Fatalf("registry entry %q not found by Lookup", e.Name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found a nonexistent experiment")
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Table1(tinyOpts())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(res.Schemes) != len(AllSchemes) {
		t.Fatalf("schemes = %d, want %d", len(res.Schemes), len(AllSchemes))
	}
	for ri, row := range res.Rows {
		if row.IdealMs <= 0 {
			t.Fatalf("row %d: non-positive ideal: %+v", ri, row)
		}
		for si, s := range res.Schemes {
			if row.MeanMs[si] <= 0 {
				t.Fatalf("row %d %v: non-positive mean %v", ri, s, row.MeanMs[si])
			}
			if row.MaxMs[si] < row.MeanMs[si] {
				t.Fatalf("row %d %v: max %v below mean %v", ri, s, row.MaxMs[si], row.MeanMs[si])
			}
			// No scheme's last finisher can beat the work-conserving ideal
			// by more than jitter. (The mean legitimately can: a scheme with
			// unfair path sharing finishes some flows early — DeTail's PFC
			// fabric does — so only the max is bounded below by the ideal.)
			if row.MaxMs[si] < row.IdealMs*0.95 {
				t.Fatalf("row %d %v: max %v below ideal %v", ri, s, row.MaxMs[si], row.IdealMs)
			}
		}
		// Fair-shared per-flow schemes keep even the mean at or above ideal.
		for _, s := range []Scheme{ECMP, FlowBender} {
			if mean, _ := res.Cell(ri, s); mean < row.IdealMs*0.95 {
				t.Fatalf("row %d %v: mean %v below ideal %v", ri, s, mean, row.IdealMs)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("Print output missing title")
	}
}

func TestAllToAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := tinyOpts()
	res := AllToAll(o)
	if res.Incomplete != 0 {
		t.Fatalf("%d flows incomplete", res.Incomplete)
	}
	// ECMP cells must normalize to exactly 1.
	for _, load := range res.Loads {
		for b, cell := range res.Cells[load][ECMP] {
			if cell.N == 0 {
				continue
			}
			if math.Abs(cell.MeanNorm-1) > 1e-9 {
				t.Fatalf("ECMP normalization broken at load %v bin %d: %v", load, b, cell.MeanNorm)
			}
		}
	}
	// Reordering ordering: ECMP has none; RPS reorders more than FlowBender.
	if res.OOO[ECMP] != 0 {
		t.Fatalf("ECMP reordered packets: %v", res.OOO[ECMP])
	}
	if res.OOO[RPS] <= res.OOO[FlowBender] {
		t.Fatalf("RPS (%v) should reorder more than FlowBender (%v)", res.OOO[RPS], res.OOO[FlowBender])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 4") {
		t.Fatal("Print output missing figures")
	}
}

func TestPartitionAggregateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := PartitionAggregate(tinyOpts())
	for _, fanIn := range res.FanIns {
		for _, s := range res.Schemes {
			if v := res.NormJCT[fanIn][s]; math.IsNaN(v) || v <= 0 {
				t.Fatalf("fanin %d scheme %v: norm JCT %v", fanIn, s, v)
			}
		}
		if math.Abs(res.NormJCT[fanIn][ECMP]-1) > 1e-9 {
			t.Fatal("ECMP JCT must normalize to 1")
		}
	}
}

func TestSensitivitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, res := range []*SensitivityResult{SensitivityN(tinyOpts()), SensitivityT(tinyOpts())} {
		found := false
		for i, v := range res.Values {
			if v == res.Default {
				found = true
				if math.Abs(res.Norm[i]-1) > 1e-9 {
					t.Fatalf("%s: default point not normalized to 1", res.Param)
				}
			}
			if res.AbsMs[i] <= 0 {
				t.Fatalf("%s: non-positive latency", res.Param)
			}
		}
		if !found {
			t.Fatalf("%s: default value missing from sweep", res.Param)
		}
	}
}

func TestTestbedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Testbed(tinyOpts())
	for _, load := range res.Loads {
		n := res.Norm[load]
		for i, v := range n {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("load %v metric %d: %v", load, i, v)
			}
		}
	}
}

func TestHotspotSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Hotspot(tinyOpts())
	for _, s := range []Scheme{ECMP, FlowBender} {
		if res.TCPOnU[s] < 0 || res.TCPOnU[s] > 10 {
			t.Fatalf("%v TCP on U = %v Gbps", s, res.TCPOnU[s])
		}
		if res.UDPDelivered[s] < 0.5 {
			t.Fatalf("%v UDP delivery collapsed: %v", s, res.UDPDelivered[s])
		}
	}
	// The point of the experiment: FlowBender moves TCP off the hotspot.
	if res.TCPOnU[FlowBender] > res.TCPOnU[ECMP]*1.2 {
		t.Fatalf("FlowBender left more TCP on U (%v) than ECMP (%v)",
			res.TCPOnU[FlowBender], res.TCPOnU[ECMP])
	}
}

func TestLinkFailureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := LinkFailure(tinyOpts())
	if res.Completed[FlowBender] <= res.Completed[ECMP] {
		t.Fatalf("FlowBender (%d/%d) should outlive ECMP (%d/%d) after a cut",
			res.Completed[FlowBender], res.Total, res.Completed[ECMP], res.Total)
	}
}

func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := tinyOpts()
	o.FlowCount = 40
	a := o.runAllToAll(allToAllSpec{scheme: FlowBender, load: 0.4, flows: o.FlowCount, srcTor: -1})
	b := o.runAllToAll(allToAllSpec{scheme: FlowBender, load: 0.4, flows: o.FlowCount, srcTor: -1})
	if a.FCT.All().Mean() != b.FCT.All().Mean() || a.OutOfOrder != b.OutOfOrder || a.Reroutes != b.Reroutes {
		t.Fatal("identically seeded runs diverged")
	}
}

func TestWCMPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := tinyOpts()
	o.FlowCount = 60
	res := WCMP(o)
	if len(res.Variants) != len(res.MeanMs) || len(res.Variants) != len(res.ThinShare) {
		t.Fatal("ragged result")
	}
	for i, v := range res.Variants {
		if res.MeanMs[i] <= 0 || math.IsNaN(res.MeanMs[i]) {
			t.Fatalf("%s: mean %v", v.Name, res.MeanMs[i])
		}
		if res.ThinShare[i] < 0 || res.ThinShare[i] > 1 {
			t.Fatalf("%s: thin share %v", v.Name, res.ThinShare[i])
		}
	}
	// Exact WCMP must put less on the thin path than oblivious ECMP.
	if res.ThinShare[1] >= res.ThinShare[0] {
		t.Fatalf("exact WCMP (%v) should beat ECMP (%v) on the thin path",
			res.ThinShare[1], res.ThinShare[0])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "WCMP") {
		t.Fatal("print missing title")
	}
}

func TestUDPSpraySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := UDPSpray(tinyOpts())
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	// Pinned: everything on one path, nothing reordered.
	if res.MaxShare[0] != 1 || res.OOOFrac[0] != 0 {
		t.Fatalf("pinned: share=%v ooo=%v", res.MaxShare[0], res.OOOFrac[0])
	}
	// Any spraying spreads the load.
	for i := 1; i < len(res.Variants); i++ {
		if res.MaxShare[i] >= 0.9 {
			t.Fatalf("%s did not spread: %v", res.Variants[i], res.MaxShare[i])
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := tinyOpts()
	o.FlowCount = 50
	res := Ablations(o)
	if len(res.MeanNorm) != len(res.Variants) || len(res.ValMeanMs) != len(res.Variants) {
		t.Fatal("ragged ablation result")
	}
	if math.Abs(res.MeanNorm[0]-1) > 1e-9 {
		t.Fatal("first variant must normalize to 1")
	}
	for i, v := range res.Variants {
		if res.ValMeanMs[i] < res.ValIdealMs*0.95 {
			t.Fatalf("%s: validation mean %v below ideal %v", v.Name, res.ValMeanMs[i], res.ValIdealMs)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Saturated validation") {
		t.Fatal("print missing validation section")
	}
}
