package experiments

import (
	"fmt"

	"flowbender/internal/checkpoint"
	"flowbender/internal/sim"
)

// defaultCheckpointEvery is the watermark cadence used when checkpointing
// is on and no explicit cadence was given: 500 ms of virtual time is ~100
// drain chunks between marks — frequent enough that an interrupted run
// loses little progress context, rare enough that the file writes never
// show up next to the simulation itself.
const defaultCheckpointEvery = 500 * sim.Millisecond

func (o Options) ckptCadence() sim.Time {
	if o.CheckpointEvery > 0 {
		return o.CheckpointEvery
	}
	return defaultCheckpointEvery
}

// pointLabel builds the canonical point label the fan-out sites pass to
// the named runpool APIs and set as pointKey: experiment name, point
// coordinates, and seed, plus the shard count when sharding is on. One
// string serves both purposes — a FAILED line identifies the exact
// simulation point, and the same label keys its checkpoint watermarks.
func (o Options) pointLabel(format string, args ...any) string {
	s := fmt.Sprintf(format, args...)
	if o.Shards > 1 {
		s += fmt.Sprintf("/shards=%d", o.Shards)
	}
	return s
}

// ckptTracker carries one simulation point's checkpoint obligations
// through its drain loop (serial) or window-barrier ticks (sharded):
// record a watermark every cadence interval (or immediately when a flush
// was requested by the signal handler), and verify the watermark loaded
// from a resumed file as the replay passes its recorded barrier instant.
//
// All tracker methods are nil-safe no-ops, so the simulation loops call
// them unconditionally and pay nothing when checkpointing is off.
type ckptTracker struct {
	m       *checkpoint.Manager
	key     string
	cadence sim.Time
	next    sim.Time
	expect  *checkpoint.PointMark
}

// ckptTracker returns the tracker for the current point, or nil when
// checkpointing is off or the point was launched without a label.
func (o Options) ckptTracker() *ckptTracker {
	if o.Ckpt == nil || o.pointKey == "" {
		return nil
	}
	t := &ckptTracker{m: o.Ckpt, key: o.pointKey, cadence: o.ckptCadence()}
	t.next = t.cadence
	// A wedged flag recorded without engine state (the point never reached
	// a barrier) carries no verifiable watermark.
	if pm, ok := o.Ckpt.Expected(o.pointKey); ok && len(pm.Engines) > 0 {
		t.expect = &pm
	}
	return t
}

// tick is called at every quiescent barrier — a serial drain-chunk
// boundary or a sharded window chunk boundary — with every engine idle
// exactly at `boundary`. Barriers are the only instants marks are taken
// at, because they are the only instants a deterministic replay is
// guaranteed to pass through again: both grids are pure functions of the
// run configuration the checkpoint descriptor pins.
func (t *ckptTracker) tick(boundary sim.Time, engines ...*sim.Engine) {
	if t == nil {
		return
	}
	if e := t.expect; e != nil && boundary >= sim.Time(e.SimTime) {
		t.verify(boundary, engines)
		t.expect = nil
	}
	if boundary >= t.next || t.m.FlushRequested() {
		pm := checkpoint.PointMark{Key: t.key, SimTime: int64(boundary)}
		for _, eng := range engines {
			pm.Engines = append(pm.Engines, eng.Snapshot())
		}
		t.m.Mark(pm)
		for boundary >= t.next {
			t.next += t.cadence
		}
	}
}

// verify cross-checks the replayed engines against the resumed file's
// watermark. Reaching the barrier instant off-grid, with a different
// shard count, or with any engine diverged means the resumed run is NOT
// the run that wrote the checkpoint — fail loudly rather than publish
// results that silently differ from what the interrupted run would have
// produced.
func (t *ckptTracker) verify(boundary sim.Time, engines []*sim.Engine) {
	e := t.expect
	if boundary != sim.Time(e.SimTime) {
		panic(fmt.Sprintf("checkpoint: point %s replayed past its recorded barrier: replay reached %v, checkpoint was taken at %v — the run configuration does not match the checkpoint",
			t.key, boundary, sim.Time(e.SimTime)))
	}
	if len(engines) != len(e.Engines) {
		panic(fmt.Sprintf("checkpoint: point %s replayed with %d engine shard(s), checkpoint recorded %d",
			t.key, len(engines), len(e.Engines)))
	}
	for i, eng := range engines {
		eng.VerifyRestore(e.Engines[i])
	}
}
