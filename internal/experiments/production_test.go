package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

func renderProduction(o Options) string {
	var buf bytes.Buffer
	ProductionMix(o).Print(&buf)
	return buf.String()
}

// TestProductionSmoke runs the default websearch mix at tiny scale and
// checks the delivery accounting is internally consistent for every scheme:
// all scheduled flows start and complete, kind counts partition the
// completions, and the per-bin sample counts sum to the total.
func TestProductionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 1, Scale: ScaleTiny, FlowCount: 120}
	res := ProductionMix(o)
	if res.Workload != "websearch" {
		t.Fatalf("default workload = %q", res.Workload)
	}
	for _, s := range res.Schemes {
		c := res.Cells[s]
		if c.Started != int64(res.Flows) || c.NotStarted != 0 {
			t.Errorf("%v: started %d of %d (not started %d)", s, c.Started, res.Flows, c.NotStarted)
		}
		if c.Completed != c.Started || c.Incomplete != 0 {
			t.Errorf("%v: completed %d/%d", s, c.Completed, c.Started)
		}
		if c.Plain+c.Incast+c.Storage != c.Completed {
			t.Errorf("%v: kinds %d+%d+%d don't partition %d completions",
				s, c.Plain, c.Incast, c.Storage, c.Completed)
		}
		if c.Incast == 0 || c.Storage == 0 {
			t.Errorf("%v: mix produced no incast (%d) or storage (%d) flows", s, c.Incast, c.Storage)
		}
		var binned int64
		for _, b := range c.Bins {
			binned += b.N
		}
		if binned != c.Completed || c.All.N != c.Completed {
			t.Errorf("%v: bin counts %d / all %d vs completed %d", s, binned, c.All.N, c.Completed)
		}
		if !(c.All.P50ms > 0) || !(c.All.P999ms >= c.All.P99ms) || !(c.All.P99ms >= c.All.P50ms) {
			t.Errorf("%v: quantiles not ordered: p50=%v p99=%v p99.9=%v",
				s, c.All.P50ms, c.All.P99ms, c.All.P999ms)
		}
	}
}

// TestProductionDatamining covers the Poisson-arrival workload and pins
// serial/sharded identity for it (the diurnal path is pinned by the
// byte-identity goldens below).
func TestProductionDatamining(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 5, Scale: ScaleTiny, FlowCount: 80,
		Workload: "datamining", MixSchemes: []Scheme{ECMP}}
	serial := renderProduction(o)
	res := ProductionMix(o)
	c := res.Cells[ECMP]
	if c.Completed == 0 {
		t.Fatal("datamining mix completed no flows")
	}
	o.Shards = 4
	if got := renderProduction(o); got != serial {
		t.Errorf("datamining output at -shards 4 differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s", serial, got)
	}
}

// TestProductionUnknownWorkload pins the failure mode of a bad -workload.
func TestProductionUnknownWorkload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ProductionMix accepted an unknown workload")
		}
	}()
	ProductionMix(Options{Seed: 1, Scale: ScaleTiny, FlowCount: 10, Workload: "nope"})
}

// TestByteIdentityProduction pins the production experiment's rendered
// output to a golden capture at parallelism 1, 4, and 8.
func TestByteIdentityProduction(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkByteIdentity(t, "byteident_production", func(o Options) string {
		o.FlowCount = 200
		return renderProduction(o)
	})
}

// TestByteIdentityShardedProduction pins the sharded production runner to
// the same golden as serial execution at every shard count. Only ECMP of the
// default scheme set shards; the others take the serial fallback, which must
// be equally invisible.
func TestByteIdentityShardedProduction(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := byteIdentOpts()
	o.FlowCount = 200
	o.Parallelism = 1
	for _, s := range []int{1, 2, 4, 8} {
		o.Shards = s
		checkGolden(t, "byteident_production", renderProduction(o))
	}
}

// TestProductionSketchDifferential is the satellite differential test: below
// the sketch's exact cap, the streaming-sketch path and the legacy
// hold-every-sample path must render byte-identical output, at every
// parallelism and shard count. This is the end-to-end proof that swapping
// the FCT accounting to sketches changed nothing observable at table scale.
func TestProductionSketchDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := byteIdentOpts()
	o.FlowCount = 200
	o.Parallelism = 1
	base := renderProduction(o)
	for _, tc := range []struct{ parallel, shards int }{
		{1, 1}, {4, 1}, {8, 1}, {1, 2}, {1, 4}, {1, 8},
	} {
		for _, full := range []bool{false, true} {
			oo := o
			oo.Parallelism, oo.Shards = tc.parallel, tc.shards
			oo.FullSampleStats = full
			if got := renderProduction(oo); got != base {
				t.Errorf("production output (parallel=%d shards=%d fullSample=%v) differs from baseline",
					tc.parallel, tc.shards, full)
			}
		}
	}
}

// TestProductionPerfCounters checks the FlowsCompleted telemetry the cmd
// tools report: every completed flow of every scheme point is counted.
func TestProductionPerfCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var perf PerfStats
	o := Options{Seed: 2, Scale: ScaleTiny, FlowCount: 60, Perf: &perf}
	res := ProductionMix(o)
	var want int64
	for _, s := range res.Schemes {
		want += res.Cells[s].Completed
	}
	if got := perf.FlowsCompleted.Load(); got != want {
		t.Errorf("FlowsCompleted = %d, want %d", got, want)
	}
	if perf.FlowsPerSec(0) != 0 {
		t.Error("FlowsPerSec(0) should be 0")
	}
}

// TestSchemeByName pins the -schemes flag's name resolution.
func TestSchemeByName(t *testing.T) {
	for _, s := range AllSchemes {
		got, ok := SchemeByName(s.String())
		if !ok || got != s {
			t.Errorf("SchemeByName(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if got, ok := SchemeByName("flowbender"); !ok || got != FlowBender {
		t.Errorf("case-insensitive lookup failed: %v, %v", got, ok)
	}
	if _, ok := SchemeByName("nope"); ok {
		t.Error("SchemeByName accepted an unknown name")
	}
}

// TestProductionMixSchemesOption checks the scheme-set override reaches the
// result and its label order is preserved.
func TestProductionMixSchemesOption(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 1, Scale: ScaleTiny, FlowCount: 40,
		MixSchemes: []Scheme{FlowDyn, ECMP}}
	res := ProductionMix(o)
	if fmt.Sprint(res.Schemes) != fmt.Sprint([]Scheme{FlowDyn, ECMP}) {
		t.Errorf("schemes = %v", res.Schemes)
	}
	for _, s := range res.Schemes {
		if res.Cells[s].Completed == 0 {
			t.Errorf("%v: no completions", s)
		}
	}
}
