package experiments

import (
	"bytes"
	"testing"
)

// TestFidelityMatrixBounds is the fidelity-smoke assertion: at tiny scale
// (16 servers) both engines run the identical all-to-all workload and every
// scheme's p50/p99 FCT divergence must sit inside the documented bounds.
// This is the contract that licenses the fluid engine's beyond-packet-scale
// runs; a model change that drifts outside it must either be fixed or
// re-documented, never silently absorbed.
func TestFidelityMatrixBounds(t *testing.T) {
	o := DefaultOptions()
	o.Scale = ScaleTiny // tiny-only: the 16-server rung, cheap enough for tier 1
	res := FidelityMatrix(o)
	for _, c := range res.Cells {
		if c.Incomplete > 0 {
			t.Errorf("%s/%s: %d incomplete flows", c.Scale, c.Scheme, c.Incomplete)
		}
		if c.P50Div > FidelityP50Bound {
			t.Errorf("%s/%s: p50 divergence %.1f%% > %.0f%% (packet %.3fms, fluid %.3fms)",
				c.Scale, c.Scheme, c.P50Div*100, FidelityP50Bound*100, c.PktP50ms, c.FlP50ms)
		}
		if c.P99Div > FidelityP99Bound {
			t.Errorf("%s/%s: p99 divergence %.1f%% > %.0f%% (packet %.3fms, fluid %.3fms)",
				c.Scale, c.Scheme, c.P99Div*100, FidelityP99Bound*100, c.PktP99ms, c.FlP99ms)
		}
		// The event-count ratio is the deterministic speedup proxy; the
		// fluid engine must be at least two orders of magnitude cheaper.
		if c.FlEvents*100 > c.PktEvents {
			t.Errorf("%s/%s: fluid events %d not <1%% of packet events %d",
				c.Scale, c.Scheme, c.FlEvents, c.PktEvents)
		}
	}
}

// TestFluidEngineParallelismInvariance pins the fluid engine's experiment
// output as byte-identical across Options.Parallelism values, exactly like
// the packet engine's equivalent guarantee: every point is an isolated
// engine, so the pool's scheduling must never leak into results.
func TestFluidEngineParallelismInvariance(t *testing.T) {
	render := func(parallel int) string {
		o := DefaultOptions()
		o.Scale = ScaleTiny
		o.Engine = EngineFluid
		o.Parallelism = parallel
		var buf bytes.Buffer
		AllToAll(o).Print(&buf)
		Table1(o).Print(&buf)
		ProductionMix(o).Print(&buf)
		return buf.String()
	}
	ref := render(1)
	if ref == "" {
		t.Fatal("empty render")
	}
	for _, par := range []int{4, 8} {
		if got := render(par); got != ref {
			t.Errorf("fluid output differs between -parallel 1 and -parallel %d", par)
		}
	}
}

// TestFluidProductionKindsMatchPacket checks that the fluid production run
// consumes the identical pre-drawn schedule as the packet run: same flow
// counts per pattern kind, same started/planned totals. (FCTs differ by
// design; the workload must not.)
func TestFluidProductionKindsMatchPacket(t *testing.T) {
	run := func(e EngineKind) MixCell {
		o := DefaultOptions()
		o.Scale = ScaleTiny
		o.Engine = e
		o.MixSchemes = []Scheme{ECMP}
		return ProductionMix(o).Cells[ECMP]
	}
	pkt, fl := run(EnginePacket), run(EngineFluid)
	if pkt.Started != fl.Started || pkt.Plain != fl.Plain ||
		pkt.Incast != fl.Incast || pkt.Storage != fl.Storage {
		t.Errorf("schedules diverged: packet started=%d plain=%d incast=%d storage=%d, fluid started=%d plain=%d incast=%d storage=%d",
			pkt.Started, pkt.Plain, pkt.Incast, pkt.Storage,
			fl.Started, fl.Plain, fl.Incast, fl.Storage)
	}
	if fl.Completed != fl.Started {
		t.Errorf("fluid left %d of %d flows incomplete", fl.Started-fl.Completed, fl.Started)
	}
}
