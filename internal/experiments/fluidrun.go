package experiments

import (
	"math"

	"flowbender/internal/core"
	"flowbender/internal/fluid"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// fluidConfig maps a scheme onto the fluid engine's knobs, mirroring
// Scheme.setupRaw's packet-side configuration decisions (FlowBender's
// evaluation defaults included) so the two engines run the same policy:
//
//   - ECMP, Flowlet, FlowDyn: per-flow hashed paths. The fluid model has no
//     packet gaps, so flowlet switching degrades to plain ECMP — a
//     documented fidelity limit, not a wiring accident.
//   - FlowBender: the real core.FlowBender controller per flow, fed from
//     the fluid marking estimate once per RTT epoch.
//   - RPS, DeTail: every flow sprayed over all paths (DeTail's PFC
//     back-pressure is not modeled; its spray half is).
//   - RepFlow: short flows replicated, first copy wins.
//   - DiffFlow: short flows sprayed, long flows on per-flow paths.
func fluidConfig(p topo.Params, scheme Scheme, fb core.Config, raw bool, rng *sim.RNG) fluid.Config {
	cfg := fluid.Config{Params: p}
	switch scheme {
	case ECMP, Flowlet, FlowDyn:
	case FlowBender:
		if fb.RNG == nil {
			fb.RNG = rng.Fork("flowbender")
		}
		if !raw {
			if fb.MinEpochGap == 0 {
				fb.MinEpochGap = StabilityGap
			}
			if !fb.DesyncN {
				fb.DesyncN = true
			}
		}
		cfg.FlowBender = &fb
	case RPS, DeTail:
		cfg.Spray = true
		cfg.ShortCutoff = math.MaxInt64
	case RepFlow:
		cfg.Replicate = true
		cfg.ShortCutoff = RepFlowCutoff
	case DiffFlow:
		cfg.Spray = true
		cfg.ShortCutoff = DiffFlowCutoff
	default:
		panic("experiments: unknown scheme")
	}
	return cfg
}

// runAllToAllFluid is the fluid-engine body of runAllToAll: the identical
// workload stream (same RNG forks, same arrival draws, same flow IDs)
// played into a fluid.Sim instead of a packet fabric. Always serial — one
// fluid point is orders of magnitude cheaper than its packet twin, so
// sharding has nothing to win.
func (o Options) runAllToAllFluid(spec allToAllSpec) *runOutcome {
	eng := sim.NewEngine()
	rootRNG := sim.NewRNG(o.Seed)
	schemeRNG := rootRNG.Fork("scheme")

	p := o.params()
	if spec.params != nil {
		p = *spec.params
	}
	cfg := fluidConfig(p, spec.scheme, spec.fb, spec.rawFB, schemeRNG)
	cfg.SolverShards = o.SolverShards

	cdf := spec.cdf
	if cdf == nil {
		cdf = o.CDF
	}
	if cdf == nil {
		cdf = workload.WebSearchCDF()
	}
	gen := &workload.AllToAll{
		RNG:      rootRNG.Fork("workload"),
		NumHosts: p.NumHosts(),
		CDF:      cdf,
		MeanInterarrival: workload.AggregateInterarrival(
			spec.load, p.BisectionBps(), p.InterPodFraction(), cdf.Mean()),
	}
	arrivals := gen.PredrawIdx(spec.flows)

	fs := fluid.NewSim(eng, cfg)
	out := &runOutcome{}
	fs.OnDone = func(d fluid.Done) { out.FCT.Add(d.Size, d.FCT.Seconds()) }
	// Beacon-chained injection (as in runProductionFluid): the engine holds
	// one pending arrival instead of all of them, which keeps the event queue
	// flat — at the mega rung the up-front schedule would otherwise be
	// millions of pending events deep. The next beacon is armed before the
	// current flow arrives so a same-instant burst still batches into one
	// solver commit.
	idx := 0
	var beacon func()
	beacon = func() {
		j := idx
		idx++
		if idx < len(arrivals) {
			eng.At(arrivals[idx].At, beacon)
		}
		a := arrivals[j]
		fs.Arrive(netsim.FlowID(j+1), a.Src, a.Dst, a.Size, 0)
	}
	if len(arrivals) > 0 {
		eng.At(arrivals[0].At, beacon)
	}

	total := int64(len(arrivals))
	o.drain(eng, o.maxWait(), func() bool { return fs.Completed == total })
	o.recordPerf(eng)
	o.recordFlows(fs.Completed)

	out.Reroutes = fs.Reroutes
	out.Incomplete = int(total - fs.Completed)
	out.SimTime = eng.Now()
	return out
}

// runValidationFluid is the fluid-engine body of Table 1's microbenchmark:
// k simultaneous equal flows from the hosts of ToR 0 / pod 0 to the hosts
// of ToR 0 / pod 1, same flow-ID stream as the packet path (the IDs feed
// the port draws feeding the ECMP hashes, so the hash-collision luck being
// measured is shared).
func (o Options) runValidationFluid(scheme Scheme, k int, size int64) (meanMs, maxMs float64) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)
	schemeRNG := rng.Fork("scheme")

	p := o.params()
	cfg := fluidConfig(p, scheme, core.Config{}, false, schemeRNG)
	cfg.SolverShards = o.SolverShards
	fs := fluid.NewSim(eng, cfg)

	var s stats.Sketch
	fs.OnDone = func(d fluid.Done) { s.Add(d.FCT.Seconds() * 1000) }

	// Host index (pod, tor, srv) = (pod*Tors+tor)*Servers+srv; the two ToRs
	// are pod 0 ToR 0 and pod 1 ToR 0, exactly hostsOf's picks.
	ids := workload.NewIDAllocator(netsim.FlowID(o.Seed * 131))
	srcBase := int32(0)
	dstBase := int32(p.TorsPerPod * p.ServersPerTor)
	for i := 0; i < k; i++ {
		srv := int32(i % p.ServersPerTor)
		fs.Arrive(ids.Next(), srcBase+srv, dstBase+srv, size, 0)
	}

	o.drain(eng, 60*sim.Second, func() bool { return fs.Completed == int64(k) })
	o.recordPerf(eng)
	return s.Mean(), s.Max()
}

// recordFluid is mixOutcome.record for a fluid completion: the same
// streaming accounting, minus the packet-only counters (the fluid engine
// has no timeouts, retransmits, or reordering to count).
func (m *mixOutcome) recordFluid(d fluid.Done) {
	m.completed++
	m.kinds[workload.PatternKind(d.UserTag)]++
	m.rec.add(d.Size, d.FCT.Seconds())
	m.reroutes += d.Reroutes
}

// runProductionFluid is the fluid-engine body of runProduction: the same
// lazily-pulled batch schedule (the Mix draws indices, so the stream is
// identical with no hosts constructed) through the same beacon chain, with
// completions recorded from fluid.Done instead of tcp.Flow.
func (o Options) runProductionFluid(scheme Scheme, cdf workload.CDF, flows int) *mixOutcome {
	eng := sim.NewEngine()
	rootRNG := sim.NewRNG(o.Seed)
	schemeRNG := rootRNG.Fork("scheme")

	p := o.params()
	cfg := fluidConfig(p, scheme, core.Config{}, false, schemeRNG)
	cfg.SolverShards = o.SolverShards
	fs := fluid.NewSim(eng, cfg)

	mix, deadline := o.newMix(rootRNG.Fork("workload"), nil, p, cdf, flows)
	out := &mixOutcome{planned: int64(flows), rec: newMixRecorder(o.FullSampleStats)}
	fs.OnDone = func(d fluid.Done) { out.recordFluid(d) }

	var pending []workload.FlowSpec
	var beacon func()
	beacon = func() {
		spec := pending[0]
		pending = pending[1:]
		out.started++
		fs.Arrive(netsim.FlowID(out.started), spec.SrcIdx, spec.DstIdx, spec.Size, int32(spec.Kind))
		if len(pending) == 0 {
			pending = mix.NextBatch()
		}
		if len(pending) > 0 {
			eng.At(pending[0].At, beacon)
		}
	}
	pending = mix.NextBatch()
	if len(pending) > 0 {
		beacon()
	}

	done := func() bool {
		return mix.Done() && len(pending) == 0 && out.completed == out.started
	}
	o.drain(eng, deadline, done)
	o.recordPerf(eng)
	o.recordFlows(out.completed)
	out.simTime = eng.Now()
	return out
}
