package experiments

import (
	"bytes"
	"testing"
)

// renderAllToAll runs the all-to-all experiment and returns its printed
// tables, the artifact whose bytes must not depend on scheduling.
func renderAllToAll(o Options) string {
	var buf bytes.Buffer
	AllToAll(o).Print(&buf)
	return buf.String()
}

// TestParallelDeterminism locks in the runpool contract: the same seed
// produces byte-identical printed results at parallelism 1 and 8, and two
// sequential runs are byte-identical to each other (the sim package's
// event-ordering contract).
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 7, Scale: ScaleTiny, FlowCount: 40, Repeats: 1}

	o.Parallelism = 1
	seq := renderAllToAll(o)
	seq2 := renderAllToAll(o)
	if seq != seq2 {
		t.Fatalf("two sequential runs diverged:\n--- first ---\n%s\n--- second ---\n%s", seq, seq2)
	}

	o.Parallelism = 8
	par := renderAllToAll(o)
	if par != seq {
		t.Fatalf("parallel (P=8) output differs from sequential (P=1):\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestParallelDeterminismMultiSeed repeats the check with Options.Seeds
// replication, where aggregation order across seeds could otherwise leak
// scheduling into the mean ± stddev cells.
func TestParallelDeterminismMultiSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Seed: 7, Scale: ScaleTiny, FlowCount: 30, Seeds: 2}

	o.Parallelism = 1
	seq := renderAllToAll(o)
	o.Parallelism = 8
	par := renderAllToAll(o)
	if par != seq {
		t.Fatalf("multi-seed parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestSeedsChangeResults is the sanity inverse: different seeds must
// actually produce different measurements (otherwise the replication knob
// silently aggregates one sample).
func TestSeedsChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a := Options{Seed: 1, Scale: ScaleTiny, FlowCount: 40, Parallelism: 2}
	b := a
	b.Seed = 99
	if renderAllToAll(a) == renderAllToAll(b) {
		t.Fatal("seed 1 and seed 99 printed identical results")
	}
}
