//go:build simdebug

package experiments

import (
	"strings"
	"testing"

	"flowbender/internal/sim"
)

// Widening the bounded-lag window beyond the fabric's true minimum cross-
// shard delay must trip the simdebug lookahead check at the first merge that
// receives traffic: a too-wide window means a consuming shard's clock can
// pass an inbound effect's due time before the merge delivers it, which is
// exactly the class of bug the conservative protocol exists to rule out.
func TestSimdebugShardLookaheadTripwire(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized bounded-lag window did not trip the lookahead check")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lookahead violated") {
			t.Fatalf("panic = %v; want the lookahead tripwire", r)
		}
	}()
	o := Options{Seed: 7, Scale: ScaleTiny, Shards: 2}
	// TinyScale's true lookahead is the 1µs switch forwarding delay; claim 4x.
	o.debugShardWindow = 4 * sim.Microsecond
	o.tryRunAllToAllSharded(allToAllSpec{scheme: ECMP, load: 0.6, flows: 50, srcTor: -1})
}
