package experiments

import (
	"fmt"
	"strings"
	"testing"

	"flowbender/internal/routing"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// firstDiff reports the first line where two fingerprints disagree.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "<eof>", "<eof>"
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n  serial:  %s\n  sharded: %s", i, wl, gl)
		}
	}
	return "no diff"
}

// flowFingerprint renders every per-flow observable the harness collects, so
// two runs with equal fingerprints are indistinguishable to every consumer.
func flowFingerprint(out *runOutcome) string {
	s := fmt.Sprintf("flows=%d incomplete=%d data=%d ooo=%d to=%d rtx=%d\n",
		len(out.Flows), out.Incomplete, out.DataPackets, out.OutOfOrder,
		out.Timeouts, out.Retransmits)
	for _, f := range out.Flows {
		s += fmt.Sprintf("id=%d %d->%d size=%d start=%d recv=%d send=%d ooo=%d data=%d to=%d rtx=%d\n",
			f.ID, f.Src.ID(), f.Dst.ID(), f.Size, f.Start, f.RecvDone, f.SendDone,
			f.OutOfOrder(), f.DataPackets(), f.Sender().Timeouts, f.Sender().Retransmits)
	}
	return s
}

// The sharded runner must be bit-identical to serial execution at every
// shard count: same flows, same per-flow event history observables.
func TestShardedMatchesSerialTiny(t *testing.T) {
	spec := allToAllSpec{scheme: ECMP, load: 0.6, flows: 200, srcTor: -1}
	o := Options{Seed: 7, Scale: ScaleTiny}
	want := flowFingerprint(o.runAllToAll(spec))

	for _, shards := range []int{2, 4, 8} {
		os := o
		os.Shards = shards
		out, ok := os.tryRunAllToAllSharded(spec)
		if !ok {
			t.Fatalf("shards=%d: sharded runner refused an ECMP point", shards)
		}
		if got := flowFingerprint(out); got != want {
			t.Errorf("shards=%d diverges from serial:\n%s", shards, firstDiff(want, got))
		}
	}
}

// A sharded point running under the experiment runner's CPU-token pool must
// borrow its extra workers from that shared budget (so -parallel N -shards M
// never oversubscribes the box), give identical results however many tokens
// it wins, and return every borrowed token when the point finishes.
func TestShardedBorrowsPoolTokens(t *testing.T) {
	spec := allToAllSpec{scheme: ECMP, load: 0.5, flows: 120, srcTor: -1}
	base := Options{Seed: 3, Scale: ScaleTiny}
	want := flowFingerprint(base.runAllToAll(spec))

	for _, tokens := range []int{1, 2, 8} {
		pl := runpool.New(tokens)
		o := base
		o.Shards = 4
		o.execPool = pl
		out, ok := o.tryRunAllToAllSharded(spec)
		if !ok {
			t.Fatalf("tokens=%d: sharded runner refused", tokens)
		}
		if got := flowFingerprint(out); got != want {
			t.Errorf("tokens=%d: result depends on borrowed worker count:\n%s", tokens, firstDiff(want, got))
		}
		if got := pl.TryAcquire(tokens); got != tokens {
			t.Errorf("tokens=%d: %d tokens leaked by the sharded run", tokens, tokens-got)
		}
	}
}

// The flowlet-family selectors keep all their state per switch, so their
// points must shard and stay bit-identical to serial execution — the same
// guarantee TestShardedMatchesSerialTiny pins for ECMP.
func TestShardedMatchesSerialFlowletSchemes(t *testing.T) {
	for _, scheme := range []Scheme{Flowlet, FlowDyn} {
		spec := allToAllSpec{scheme: scheme, load: 0.6, flows: 150, srcTor: -1}
		o := Options{Seed: 7, Scale: ScaleTiny}
		want := flowFingerprint(o.runAllToAll(spec))
		for _, shards := range []int{2, 4, 8} {
			os := o
			os.Shards = shards
			out, ok := os.tryRunAllToAllSharded(spec)
			if !ok {
				t.Fatalf("%v shards=%d: sharded runner refused a shardable point", scheme, shards)
			}
			if got := flowFingerprint(out); got != want {
				t.Errorf("%v shards=%d diverges from serial:\n%s", scheme, shards, firstDiff(want, got))
			}
		}
	}
}

// Points that cannot shard safely must fall back to serial execution.
func TestShardedFallbacks(t *testing.T) {
	o := Options{Seed: 1, Scale: ScaleTiny, Shards: 4}
	for _, scheme := range []Scheme{FlowBender, RPS, DeTail, RepFlow, DiffFlow} {
		if _, ok := o.tryRunAllToAllSharded(allToAllSpec{scheme: scheme, load: 0.3, flows: 50, srcTor: -1}); ok {
			t.Errorf("scheme %v must not shard (shared RNG, replica planning, or PFC)", scheme)
		}
	}
	// Differential tests inject custom setups whose semantics the sharded
	// planner cannot know; those points must always run serial.
	custom := allToAllSpec{scheme: ECMP, load: 0.3, flows: 50, srcTor: -1,
		setupFn: func(rng *sim.RNG) schemeSetup {
			return schemeSetup{cfg: tcp.DefaultConfig(), sel: routing.ECMP{}}
		}}
	if _, ok := o.tryRunAllToAllSharded(custom); ok {
		t.Error("setupFn point must fall back to serial")
	}
	// A fabric with zero switch and link delay has no cross-shard slack.
	zero := topo.TinyScale()
	zero.LinkDelay, zero.SwitchDelay = 0, 0
	if _, ok := o.tryRunAllToAllSharded(allToAllSpec{scheme: ECMP, load: 0.3, flows: 50, srcTor: -1, params: &zero}); ok {
		t.Error("zero-lookahead fabric must fall back to serial")
	}
}
