package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// Production-mix composition: the fractions and fan-outs of the non-plain
// traffic patterns. Fixed constants (not Options) so a workload name plus a
// seed fully determines the schedule.
const (
	// MixIncastFrac is the fraction of batches that are partition-aggregate
	// responses (MixFanIn workers converging on one aggregator).
	MixIncastFrac = 0.15
	// MixStorageFrac is the fraction of batches that are replicated storage
	// writes (one writer, MixReplicas copies).
	MixStorageFrac = 0.10
	// MixFanIn is the incast width.
	MixFanIn = 8
	// MixReplicas is the storage replication factor.
	MixReplicas = 3
)

// DefaultMixSchemes is the production experiment's comparison set: the
// schemes whose designs explicitly target production flow-size mixes —
// the ECMP baseline, FlowBender, and the two short-flow-aware competitors.
var DefaultMixSchemes = []Scheme{ECMP, FlowBender, RepFlow, DiffFlow}

func (o Options) mixSchemes() []Scheme {
	if len(o.MixSchemes) > 0 {
		return o.MixSchemes
	}
	return DefaultMixSchemes
}

func (o Options) workloadName() string {
	if o.Workload != "" {
		return o.Workload
	}
	return "websearch"
}

func (o Options) load() float64 {
	if o.Load > 0 {
		return o.Load
	}
	return 0.5
}

// newMix builds the production workload generator for one simulation point.
// Everything — the size CDF, the arrival process and its diurnal shape, the
// deadline — is a pure function of (options, topology, flow count), so the
// serial and sharded runners draw byte-identical schedules. The returned
// deadline covers the expected makespan with 50% slack plus the usual
// post-arrival drain budget, so it too is deterministic.
func (o Options) newMix(rng *sim.RNG, hosts []*netsim.Host, p topo.Params, cdf workload.CDF, flows int) (*workload.Mix, sim.Time) {
	m := &workload.Mix{
		RNG:         rng,
		Hosts:       hosts,
		NumHosts:    p.NumHosts(),
		CDF:         cdf,
		IncastFrac:  MixIncastFrac,
		StorageFrac: MixStorageFrac,
		FanIn:       MixFanIn,
		Replicas:    MixReplicas,
		MaxFlows:    flows,
	}
	gap := workload.AggregateInterarrival(
		o.load(), p.BisectionBps(), p.InterPodFraction(), m.MeanBatchBytes())
	// Expected flows per batch, hence expected batch count and makespan.
	perBatch := 1*(1-MixIncastFrac-MixStorageFrac) + MixFanIn*MixIncastFrac + MixReplicas*MixStorageFrac
	makespan := sim.Time(float64(gap) * float64(flows) / perBatch)
	switch o.workloadName() {
	case "datamining":
		// The data-mining story is steady background load: plain Poisson.
		m.Arrivals = workload.Poisson{Mean: gap}
	default:
		// The web-search story is a service under diurnal load: one full
		// sinusoidal cycle over the run with a 3x request spike a quarter
		// of the way through, lasting 5% of the run.
		m.Arrivals = workload.Diurnal{
			Mean:      gap,
			Amplitude: 0.3,
			Period:    makespan,
			Spikes: []workload.Spike{
				{At: makespan / 4, Duration: makespan / 20, Factor: 3},
			},
		}
	}
	return m, makespan + makespan/2 + o.maxWait()
}

// mixRecorder accumulates completed-flow FCTs for one simulation point (or
// one shard of it), on either the streaming-sketch path (default: flat
// memory at any flow count) or the legacy hold-every-sample path (the
// differential test proving both render identical output at small scale).
// Rendering reads only counts and quantiles — both order-independent given
// the same observation multiset — which is what makes the sharded runner's
// shard-order merge bit-identical to the serial run.
type mixRecorder struct {
	sketch stats.BinnedSketch
	sample *stats.BinnedSample
}

func newMixRecorder(fullSample bool) *mixRecorder {
	r := &mixRecorder{}
	if fullSample {
		r.sample = &stats.BinnedSample{}
	}
	return r
}

func (r *mixRecorder) add(size int64, fct float64) {
	if r.sample != nil {
		r.sample.Add(size, fct)
		return
	}
	r.sketch.Add(size, fct)
}

// merge folds o into r (bin by bin, in o's insertion order).
func (r *mixRecorder) merge(o *mixRecorder) {
	if r.sample != nil {
		for b := range r.sample.Bins {
			for _, x := range o.sample.Bins[b].Values() {
				r.sample.Bins[b].Add(x)
			}
		}
		return
	}
	for b := range r.sketch.Bins {
		r.sketch.Bins[b].Merge(&o.sketch.Bins[b])
	}
}

// bin returns one size bin's count and {p50, p99, p99.9} in seconds.
func (r *mixRecorder) bin(b int) (n int64, p50, p99, p999 float64) {
	if r.sample != nil {
		s := &r.sample.Bins[b]
		return int64(s.N()), s.Percentile(50), s.Percentile(99), s.Percentile(99.9)
	}
	s := &r.sketch.Bins[b]
	return s.N(), s.Percentile(50), s.Percentile(99), s.Percentile(99.9)
}

// all returns the same over every bin combined.
func (r *mixRecorder) all() (n int64, p50, p99, p999 float64) {
	if r.sample != nil {
		s := r.sample.All()
		return int64(s.N()), s.Percentile(50), s.Percentile(99), s.Percentile(99.9)
	}
	s := r.sketch.All()
	return s.N(), s.Percentile(50), s.Percentile(99), s.Percentile(99.9)
}

// mixOutcome aggregates one production point's measurements. Unlike
// runOutcome it holds no per-flow state: every field is updated streamingly
// from OnComplete, so memory stays flat at million-flow counts.
type mixOutcome struct {
	rec *mixRecorder

	planned   int64 // flows the schedule holds
	started   int64 // arrival events that ran
	completed int64 // receivers that got their full payload

	kinds [3]int64 // completed flows by workload.PatternKind

	dataPackets int64
	outOfOrder  int64
	timeouts    int64
	retransmits int64
	reroutes    int64

	simTime sim.Time
}

// record is the per-flow OnComplete accounting. It runs at the completion
// instant — the same virtual time on the serial and sharded schedules — so
// every counter it reads has the identical value on both paths (counters
// can keep moving after completion while retransmits drain, so end-of-run
// reads would not be shard-stable).
func (m *mixOutcome) record(kind workload.PatternKind, f *tcp.Flow) {
	m.completed++
	m.kinds[kind]++
	m.rec.add(f.Size, f.FCT().Seconds())
	m.dataPackets += f.DataPackets()
	m.outOfOrder += f.OutOfOrder()
	m.timeouts += f.Sender().Timeouts
	m.retransmits += f.Sender().Retransmits
	m.reroutes += f.FlowBenderStats().Reroutes
}

// fold merges a shard's outcome into the point total (called in shard-index
// order, once per shard, after the run).
func (m *mixOutcome) fold(o *mixOutcome) {
	m.rec.merge(o.rec)
	m.started += o.started
	m.completed += o.completed
	for k := range m.kinds {
		m.kinds[k] += o.kinds[k]
	}
	m.dataPackets += o.dataPackets
	m.outOfOrder += o.outOfOrder
	m.timeouts += o.timeouts
	m.retransmits += o.retransmits
	m.reroutes += o.reroutes
}

// runProduction executes one (scheme) point of the production experiment.
func (o Options) runProduction(scheme Scheme, cdf workload.CDF, flows int) *mixOutcome {
	if o.Engine == EngineFluid {
		return o.runProductionFluid(scheme, cdf, flows)
	}
	if out, ok := o.tryRunProductionSharded(scheme, cdf, flows); ok {
		return out
	}
	eng := sim.NewEngine()
	rootRNG := sim.NewRNG(o.Seed)
	set := scheme.setup(rootRNG.Fork("scheme"), core.Config{})

	p := o.params()
	p.PFC = set.pfc
	ft := topo.NewFatTree(eng, p)
	ft.SetSelector(set.sel)

	mix, deadline := o.newMix(rootRNG.Fork("workload"), ft.Hosts, p, cdf, flows)
	out := &mixOutcome{planned: int64(flows), rec: newMixRecorder(o.FullSampleStats)}

	// Beacon chain mirroring the sharded planner: exactly one flow starts
	// per beacon event and the next beacon is scheduled from inside it, so
	// the event-insertion order — receiver, sender, next arrival — matches
	// the sharded replay. Batches are pulled from the mix lazily and flow
	// references are dropped at start (OnComplete owns all accounting; the
	// hosts tear endpoints down after close), so memory is flat in the flow
	// count.
	var pending []workload.FlowSpec
	var beacon func()
	beacon = func() {
		spec := pending[0]
		pending = pending[1:]
		out.started++
		f := tcp.StartFlow(eng, set.cfg, netsim.FlowID(out.started), spec.Src, spec.Dst, spec.Size)
		kind := spec.Kind
		f.OnComplete = func(f *tcp.Flow) { out.record(kind, f) }
		if len(pending) == 0 {
			pending = mix.NextBatch()
		}
		if len(pending) > 0 {
			eng.At(pending[0].At, beacon)
		}
	}
	pending = mix.NextBatch()
	if len(pending) > 0 {
		beacon() // the first arrival is at time zero, handled at setup
	}

	done := func() bool {
		return mix.Done() && len(pending) == 0 && out.completed == out.started
	}
	o.drain(eng, deadline, done)
	o.recordPerf(eng)
	o.recordFlows(out.completed)
	out.simTime = eng.Now()
	return out
}

// tryRunProductionSharded is the production analogue of
// tryRunAllToAllSharded: the same guards, the same pre-drawn schedule
// replayed through per-shard beacon chains, the same bounded-lag execution.
// Per-shard accounting is the one addition: each flow's OnComplete records
// into its destination shard's private recorder (completions on different
// shards run concurrently), and the per-shard outcomes fold in shard-index
// order after the run. The rendered output reads only counts and quantiles,
// both order-independent, so the fold is bit-identical to the serial path.
// Unlike the serial runner this plans all flows up front — O(flows) plan
// memory; the flat-memory guarantee belongs to the serial path.
func (o Options) tryRunProductionSharded(scheme Scheme, cdf workload.CDF, flows int) (*mixOutcome, bool) {
	if o.Shards <= 1 || !scheme.shardable() || flows <= 0 {
		return nil, false
	}
	p := o.params()
	part := topo.PartitionFatTree(p, o.Shards)
	if part.Shards < 2 {
		return nil, false
	}
	if w, ok := part.Lookahead(p); !ok || w <= 0 {
		return nil, false
	}

	rootRNG := sim.NewRNG(o.Seed)
	set := scheme.setup(rootRNG.Fork("scheme"), core.Config{})
	if set.pfc != nil {
		return nil, false
	}
	p.PFC = set.pfc

	engines := make([]*sim.Engine, part.Shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	sft := topo.NewShardedFatTree(engines, p, part)
	sft.SetSelector(set.sel)

	mix, deadline := o.newMix(rootRNG.Fork("workload"), sft.Hosts, p, cdf, flows)
	arrivals := mix.PredrawFlows()

	shardOf := make(map[*netsim.Host]int, len(sft.Hosts))
	for h, host := range sft.Hosts {
		shardOf[host] = part.HostShard[h]
	}
	outs := make([]*mixOutcome, part.Shards)
	for i := range outs {
		outs[i] = &mixOutcome{rec: newMixRecorder(o.FullSampleStats)}
	}
	pending := make([]*tcp.PendingFlow, len(arrivals))
	srcShard := make([]int, len(arrivals))
	dstShard := make([]int, len(arrivals))
	for i, a := range arrivals {
		pending[i] = tcp.PlanFlow(set.cfg, netsim.FlowID(i+1), a.Src, a.Dst, a.Size)
		srcShard[i] = shardOf[a.Src]
		dstShard[i] = shardOf[a.Dst]
		kind := a.Kind
		dst := outs[dstShard[i]]
		pending[i].Flow().OnComplete = func(f *tcp.Flow) { dst.record(kind, f) }
	}

	// One beacon chain per shard, as in the all-to-all runner; the start
	// counter lives on the source shard, where the sender event runs.
	for s := range engines {
		s, eng := s, engines[s]
		next := 0
		var beacon func()
		beacon = func() {
			i := next
			next++
			if dstShard[i] == s {
				pending[i].StartReceiver()
			}
			if srcShard[i] == s {
				pending[i].StartSender()
				outs[s].started++
			}
			if next < len(arrivals) {
				eng.At(arrivals[next].At, beacon)
			}
		}
		beacon()
	}

	window := sft.Window
	workers := part.Shards
	borrowed := 0
	switch {
	case o.debugShardWindow > 0:
		window = o.debugShardWindow
		workers = 1
	case o.execPool != nil:
		borrowed = o.execPool.TryAcquire(part.Shards - 1)
		defer o.execPool.Release(borrowed)
		workers = 1 + borrowed
	default:
		if mp := runtime.GOMAXPROCS(0); workers > mp {
			workers = mp
		}
	}

	scratch := make([][]netsim.CrossMsg, part.Shards)
	ss := &sim.ShardSet{
		Engines: engines,
		Window:  window,
		Merge: func(shard int, windowEnd sim.Time) {
			buf := sft.DrainInbox(shard, scratch[shard][:0])
			netsim.MergeCross(buf, windowEnd)
			scratch[shard] = buf
		},
	}
	// Shard counters are written on their own shard's events and read by
	// worker zero at window barriers, where ShardSet already synchronizes.
	done := func() bool {
		var started, completed int64
		for _, so := range outs {
			started += so.started
			completed += so.completed
		}
		return started == int64(len(arrivals)) && completed == started
	}
	if ck := o.ckptTracker(); ck != nil {
		ss.Tick = func(boundary sim.Time) { ck.tick(boundary, engines...) }
	}
	ss.Run(deadline, 5*sim.Millisecond, done, workers)
	o.recordPerfShards(engines)

	out := &mixOutcome{planned: int64(len(arrivals)), rec: newMixRecorder(o.FullSampleStats)}
	for _, so := range outs {
		out.fold(so)
	}
	for _, eng := range engines {
		if eng.Now() > out.simTime {
			out.simTime = eng.Now()
		}
	}
	o.recordFlows(out.completed)
	return out, true
}

// MixBinCell is one (scheme, size-bin) cell: completed-flow count and FCT
// quantiles in milliseconds.
type MixBinCell struct {
	N      int64
	P50ms  float64
	P99ms  float64
	P999ms float64
}

// MixCell is one scheme's production measurement.
type MixCell struct {
	Started    int64
	Completed  int64
	Incomplete int64 // started but not completed by the deadline
	NotStarted int64 // scheduled arrivals the run never reached

	Plain   int64 // completed flows by pattern kind
	Incast  int64
	Storage int64

	OOOFrac     float64
	Timeouts    int64
	Retransmits int64
	Reroutes    int64

	Bins [stats.NumBins]MixBinCell
	All  MixBinCell
}

func (m *mixOutcome) cell() MixCell {
	c := MixCell{
		Started:     m.started,
		Completed:   m.completed,
		Incomplete:  m.started - m.completed,
		NotStarted:  m.planned - m.started,
		Plain:       m.kinds[workload.KindPlain],
		Incast:      m.kinds[workload.KindIncast],
		Storage:     m.kinds[workload.KindStorage],
		Timeouts:    m.timeouts,
		Retransmits: m.retransmits,
		Reroutes:    m.reroutes,
	}
	if m.dataPackets > 0 {
		c.OOOFrac = float64(m.outOfOrder) / float64(m.dataPackets)
	}
	toCell := func(n int64, p50, p99, p999 float64) MixBinCell {
		return MixBinCell{N: n, P50ms: p50 * 1000, P99ms: p99 * 1000, P999ms: p999 * 1000}
	}
	for b := 0; b < int(stats.NumBins); b++ {
		c.Bins[b] = toCell(m.rec.bin(b))
	}
	c.All = toCell(m.rec.all())
	return c
}

// ProductionMixResult holds the production-workload comparison.
type ProductionMixResult struct {
	Workload    string
	Load        float64
	Flows       int
	IncastFrac  float64
	StorageFrac float64
	FanIn       int
	Replicas    int

	Schemes []Scheme
	Cells   map[Scheme]MixCell
}

// ProductionMix runs the production-workload experiment: an open-loop mix of
// plain flows, incast jobs, and replicated storage writes, sizes drawn from
// the named empirical CDF, arrivals Poisson (datamining) or diurnal with a
// load spike (websearch), for every scheme in the comparison set. FCTs
// stream into mergeable quantile sketches, so the experiment runs at
// million-flow counts with memory independent of the flow count; at small
// counts the sketches are exact and Options.FullSampleStats pins the
// rendered output bit-for-bit against the legacy hold-every-sample path.
func ProductionMix(o Options) *ProductionMixResult {
	cdf, err := workload.NamedCDF(o.workloadName())
	if err != nil {
		panic(err)
	}
	if o.CDF != nil {
		// -cdf overrides the size distribution while the workload name keeps
		// selecting the arrival process; the CI memory-ceiling smoke uses a
		// mice-only CDF to run a genuine million-flow schedule cheaply.
		cdf = o.CDF
	}
	schemes := o.mixSchemes()
	flows := o.flowCount()
	res := &ProductionMixResult{
		Workload:    o.workloadName(),
		Load:        o.load(),
		Flows:       flows,
		IncastFrac:  MixIncastFrac,
		StorageFrac: MixStorageFrac,
		FanIn:       MixFanIn,
		Replicas:    MixReplicas,
		Schemes:     schemes,
		Cells:       make(map[Scheme]MixCell),
	}
	pl := o.pool()
	name := func(s Scheme) string {
		return o.pointLabel("production/%s/%s/seed=%d", res.Workload, s, o.Seed)
	}
	outs := runpool.MapNamed(pl, schemes, name, func(s Scheme) *mixOutcome {
		oo := o
		oo.execPool = pl
		oo.pointKey = name(s)
		return oo.runProduction(s, cdf, flows)
	})
	for i, s := range schemes {
		cell := outs[i].cell()
		res.Cells[s] = cell
		o.logf("production: %s %s completed=%d/%d p50=%sms p99=%sms p99.9=%sms ooo=%.5f%%",
			res.Workload, s, cell.Completed, cell.Started,
			msq(cell.All.P50ms), msq(cell.All.P99ms), msq(cell.All.P999ms), cell.OOOFrac*100)
	}
	return res
}

// msq formats a quantile in ms; empty cells render as a dash.
func msq(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// Print renders the per-size-class quantile table and the per-scheme
// delivery summary.
func (r *ProductionMixResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Production mix (%s): %d flows at %.0f%% bisection load (incast %.0f%% fan-in %d, storage %.0f%% x%d replicas)\n",
		r.Workload, r.Flows, r.Load*100,
		r.IncastFrac*100, r.FanIn, r.StorageFrac*100, r.Replicas)
	fmt.Fprintln(w, "FCT quantiles by size class (ms; streaming sketch, 1% relative accuracy past the exact cap):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tbin\tN\tp50\tp99\tp99.9")
	for _, s := range r.Schemes {
		c := r.Cells[s]
		for b := 0; b < int(stats.NumBins); b++ {
			cell := c.Bins[b]
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\n",
				s, stats.SizeBin(b), cell.N, msq(cell.P50ms), msq(cell.P99ms), msq(cell.P999ms))
		}
		fmt.Fprintf(tw, "%s\tall\t%d\t%s\t%s\t%s\n",
			s, c.All.N, msq(c.All.P50ms), msq(c.All.P99ms), msq(c.All.P999ms))
	}
	tw.Flush()
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tcompleted\tincomplete\tnot started\tplain\tincast\tstorage\tooo\ttimeouts\tretx\treroutes")
	for _, s := range r.Schemes {
		c := r.Cells[s]
		fmt.Fprintf(tw, "%s\t%d/%d\t%d\t%d\t%d\t%d\t%d\t%.5f%%\t%d\t%d\t%d\n",
			s, c.Completed, c.Started, c.Incomplete, c.NotStarted,
			c.Plain, c.Incast, c.Storage, c.OOOFrac*100,
			c.Timeouts, c.Retransmits, c.Reroutes)
	}
	tw.Flush()
}
