package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/runpool"
	"flowbender/internal/sim"
	"flowbender/internal/stats"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
	"flowbender/internal/workload"
)

// TestbedResult reproduces Figure 8: FlowBender's completion time relative
// to ECMP on the testbed-style leaf-spine topology, at the mean, 99th, and
// 99.9th percentiles, for 20/40/60% load.
type TestbedResult struct {
	Loads []float64
	// Norm[load] holds FlowBender/ECMP ratios {mean, p99, p999}.
	Norm map[float64][3]float64
	// ECMPAbsMs[load] holds the ECMP absolute values in ms for context.
	ECMPAbsMs map[float64][3]float64
	FlowBytes int64
	Tors      int
	Spines    int
}

// Testbed runs the §4.3 experiment on the simulated testbed: servers of one
// ToR initiate fixed 1 MB flows to random servers elsewhere, with
// exponential interarrivals sized so the ToR's uplinks (its slice of the
// bisection) carry the target load.
func Testbed(o Options) *TestbedResult {
	lp := topo.TestbedScale()
	if o.Scale == ScaleTiny {
		lp = topo.SmallTestbed()
	}
	res := &TestbedResult{
		Loads:     DefaultLoads,
		Norm:      make(map[float64][3]float64),
		ECMPAbsMs: make(map[float64][3]float64),
		FlowBytes: 1_000_000,
		Tors:      lp.Tors,
		Spines:    lp.Spines,
	}
	flows := o.flowCount()
	// Each (load, scheme) pair is an independent simulation point.
	schemes := []Scheme{ECMP, FlowBender}
	type point struct {
		load   float64
		scheme Scheme
	}
	var points []point
	for _, load := range res.Loads {
		for _, scheme := range schemes {
			points = append(points, point{load: load, scheme: scheme})
		}
	}
	name := func(pt point) string {
		return o.pointLabel("testbed/load=%g/%s/seed=%d", pt.load, pt.scheme, o.Seed)
	}
	outs := runpool.MapNamed(o.pool(), points, name, func(pt point) [3]float64 {
		oo := o
		oo.pointKey = name(pt)
		s := oo.runTestbed(lp, pt.scheme, pt.load, flows, res.FlowBytes)
		return [3]float64{s.Mean(), s.Percentile(99), s.Percentile(99.9)}
	})
	for li, load := range res.Loads {
		var vals [2][3]float64
		for i, scheme := range schemes {
			vals[i] = outs[li*len(schemes)+i]
			o.logf("testbed: load=%.0f%% %s mean=%.3gms p99=%.3gms p99.9=%.3gms",
				load*100, scheme, vals[i][0]*1000, vals[i][1]*1000, vals[i][2]*1000)
		}
		res.ECMPAbsMs[load] = [3]float64{vals[0][0] * 1000, vals[0][1] * 1000, vals[0][2] * 1000}
		res.Norm[load] = [3]float64{
			stats.Ratio(vals[1][0], vals[0][0]),
			stats.Ratio(vals[1][1], vals[0][1]),
			stats.Ratio(vals[1][2], vals[0][2]),
		}
	}
	return res
}

func (o Options) runTestbed(lp topo.LeafSpineParams, scheme Scheme, load float64, flows int, size int64) *stats.Sketch {
	eng := sim.NewEngine()
	rng := sim.NewRNG(o.Seed)
	set := scheme.setup(rng.Fork("scheme"), core.Config{})

	lp.PFC = set.pfc
	ls := topo.NewLeafSpine(eng, lp)
	ls.SetSelector(set.sel)

	srcHosts := make([]*netsim.Host, 0, lp.ServersPerTor)
	for _, h := range ls.TorHosts(0) {
		srcHosts = append(srcHosts, ls.Hosts[h])
	}

	// Load is relative to the source ToR's bisection slice: its uplinks.
	bisectionBps := float64(lp.Spines) * float64(lp.LinkRateBps)
	flowsPerSec := load * bisectionBps / (float64(size) * 8)
	gen := &workload.AllToAll{
		Eng:      eng,
		RNG:      rng.Fork("workload"),
		Hosts:    ls.Hosts,
		SrcHosts: srcHosts,
		CDF:      workload.Fixed(size),
		IDs:      &workload.IDAllocator{},
		Start: func(id netsim.FlowID, src, dst *netsim.Host, sz int64) *tcp.Flow {
			return tcp.StartFlow(eng, set.cfg, id, src, dst, sz)
		},
		MeanInterarrival: sim.Time(float64(sim.Second) / flowsPerSec),
		MaxFlows:         flows,
	}
	gen.Run()
	o.drain(eng, o.maxWait(), allFlowsDone2(gen))
	o.recordPerf(eng)

	var s stats.Sketch
	for _, f := range gen.Flows {
		if f.Done() {
			s.Add(f.FCT().Seconds())
		}
	}
	return &s
}

// Print writes Figure 8 as a table.
func (r *TestbedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: testbed (%d ToRs x %d spines) FlowBender latency normalized to ECMP, %d KB flows\n",
		r.Tors, r.Spines, r.FlowBytes/1000)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "load\tmean\t99th\t99.9th\tECMP mean (ms)\tECMP 99th (ms)\tECMP 99.9th (ms)")
	for _, load := range r.Loads {
		n := r.Norm[load]
		a := r.ECMPAbsMs[load]
		fmt.Fprintf(tw, "%.0f%%\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			load*100, n[0], n[1], n[2], a[0], a[1], a[2])
	}
	tw.Flush()
}
