package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"flowbender/internal/stats"
)

func TestAllToAllJSONRoundtrip(t *testing.T) {
	res := &AllToAllResult{
		Loads:   []float64{0.2, 0.4},
		Schemes: AllSchemes,
		Cells: map[float64]map[Scheme][stats.NumBins]AllToAllCell{
			0.2: {FlowBender: {{MeanNorm: 0.9}}},
		},
		OOO:      map[Scheme]float64{FlowBender: 0.01, RPS: 0.2},
		Reroutes: map[float64]int64{0.2: 42},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"20%"`, `"FlowBender"`, `"Reroutes"`, "0.9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
	// It must be valid JSON.
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
}

func TestTestbedJSON(t *testing.T) {
	res := &TestbedResult{
		Loads:     []float64{0.6},
		Norm:      map[float64][3]float64{0.6: {0.9, 0.7, 0.6}},
		ECMPAbsMs: map[float64][3]float64{0.6: {1, 2, 3}},
		FlowBytes: 1_000_000,
		Tors:      15,
		Spines:    4,
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"60%"`) {
		t.Fatalf("load key missing: %s", buf.String())
	}
}

func TestEveryResultTypeMarshals(t *testing.T) {
	// Every registry experiment's result must be JSON-encodable (the fbsim
	// -json flag relies on it). Use cheap zero-ish instances.
	results := []Printable{
		&Table1Result{},
		&AllToAllResult{},
		&PartAggResult{NormJCT: map[int]map[Scheme]float64{4: {FlowBender: 1}}},
		&SensitivityResult{},
		&TestbedResult{},
		&HotspotResult{TCPOnU: map[Scheme]float64{ECMP: 3.5}},
		&TopoDepResult{},
		&LinkFailureResult{Completed: map[Scheme]int{ECMP: 1}},
		&WCMPResult{},
		&UDPSprayResult{},
		&AblationResult{},
		// Empty bins carry NaN quantiles; the cell marshaler must render
		// them as null instead of failing the whole encode.
		&ProductionMixResult{Schemes: DefaultMixSchemes,
			Cells: map[Scheme]MixCell{ECMP: {All: MixBinCell{P50ms: math.NaN()}}}},
	}
	for i, r := range results {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, r); err != nil {
			t.Errorf("result %d (%T): %v", i, r, err)
		}
	}
}
