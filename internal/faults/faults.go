// Package faults is a deterministic, engine-driven fault-injection layer
// for the simulated fabric. A Plan is a schedule of typed events — clean and
// half-open link cuts, periodic flaps with RNG-jittered intervals, gray
// (probabilistically lossy) links, rate degradation, ECN muting, and
// whole-switch failures — applied to named topology elements (see Fabric).
//
// Every state change executes as a sim.Engine event and all randomness comes
// from streams forked off the simulation point's seed, so fault replay is
// byte-identical run to run and independent of host scheduling: the same
// Plan on the same seed produces the same packet-level history at any
// -parallel setting.
package faults

import (
	"fmt"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// Dir selects which direction(s) of a cable a link event affects. Cutting a
// single direction produces a half-open failure: traffic flows one way and
// silently dies the other.
type Dir uint8

// Cable directions.
const (
	// Both affects both directions (a cut cable).
	Both Dir = iota
	// AtoB affects only the Duplex's A-to-B direction.
	AtoB
	// BtoA affects only the Duplex's B-to-A direction.
	BtoA
)

func (d Dir) String() string {
	switch d {
	case Both:
		return "both"
	case AtoB:
		return "a->b"
	case BtoA:
		return "b->a"
	}
	return fmt.Sprintf("dir(%d)", uint8(d))
}

// links returns the unidirectional links of dx the direction selects.
func (d Dir) links(dx *netsim.Duplex) []*netsim.Link {
	switch d {
	case AtoB:
		return []*netsim.Link{&dx.AtoB.Link}
	case BtoA:
		return []*netsim.Link{&dx.BtoA.Link}
	default:
		return []*netsim.Link{&dx.AtoB.Link, &dx.BtoA.Link}
	}
}

// ports returns the egress ports of dx the direction selects.
func (d Dir) ports(dx *netsim.Duplex) []*netsim.Port {
	switch d {
	case AtoB:
		return []*netsim.Port{dx.AtoB}
	case BtoA:
		return []*netsim.Port{dx.BtoA}
	default:
		return []*netsim.Port{dx.AtoB, dx.BtoA}
	}
}

// Kind is the type of a fault event.
type Kind uint8

// Supported fault kinds.
const (
	// LinkDown cuts the selected direction(s) of a cable.
	LinkDown Kind = iota
	// LinkUp restores the selected direction(s).
	LinkUp
	// Flap toggles the cable down/up periodically: down for DownFor, up for
	// UpFor, each interval jittered by ±Jitter, until Until (0 = forever).
	Flap
	// GrayDrop makes the selected direction(s) silently lose each packet
	// with probability DropProb (0 clears the gray state).
	GrayDrop
	// Degrade reduces the selected direction(s)' line rate to RateFraction
	// of the built rate (1 restores it).
	Degrade
	// EcnMute stops the named switch from ECN-marking.
	EcnMute
	// EcnUnmute restores the named switch's ECN marking.
	EcnUnmute
	// SwitchDown fails every cable of the named switch (whole-switch
	// failure, reusing topo.FailAgg/FailCore/FailSpine).
	SwitchDown
	// SwitchUp restores the named switch's cables.
	SwitchUp
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case Flap:
		return "flap"
	case GrayDrop:
		return "gray-drop"
	case Degrade:
		return "degrade"
	case EcnMute:
		return "ecn-mute"
	case EcnUnmute:
		return "ecn-unmute"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault. Link-scoped kinds name a cable; switch-
// scoped kinds (EcnMute/EcnUnmute/SwitchDown/SwitchUp) name a switch.
type Event struct {
	// At is the virtual time the event takes effect.
	At sim.Time
	// Kind selects the fault type.
	Kind Kind
	// Link is the cable name (Fabric syntax) for link-scoped kinds.
	Link string
	// Dir selects the affected direction(s) of Link (default Both).
	Dir Dir
	// Switch is the switch name for switch-scoped kinds.
	Switch string

	// DownFor and UpFor are the Flap half-periods.
	DownFor, UpFor sim.Time
	// Jitter is the ± fraction each Flap interval is perturbed by, drawn
	// uniformly from the event's forked RNG stream (0 = strictly periodic).
	Jitter float64
	// Until stops a Flap (the cable is left up); 0 flaps forever.
	Until sim.Time

	// DropProb is GrayDrop's per-packet loss probability in [0, 1].
	DropProb float64
	// RateFraction is Degrade's new rate as a fraction of the built rate,
	// in (0, 1].
	RateFraction float64
}

// Plan is a schedule of fault events, applied together by Apply.
type Plan struct {
	Events []Event
}

// Cut returns a clean bidirectional cable cut at time at.
func Cut(at sim.Time, link string) Event {
	return Event{At: at, Kind: LinkDown, Link: link, Dir: Both}
}

// HalfOpenCut cuts only one direction of the cable at time at.
func HalfOpenCut(at sim.Time, link string, dir Dir) Event {
	return Event{At: at, Kind: LinkDown, Link: link, Dir: dir}
}

// FlapLink flaps the cable from time at: down downFor, up upFor, intervals
// jittered ±jitter, until until.
func FlapLink(at sim.Time, link string, downFor, upFor sim.Time, jitter float64, until sim.Time) Event {
	return Event{At: at, Kind: Flap, Link: link, Dir: Both,
		DownFor: downFor, UpFor: upFor, Jitter: jitter, Until: until}
}

// Gray makes the cable silently lossy at rate p from time at.
func Gray(at sim.Time, link string, p float64) Event {
	return Event{At: at, Kind: GrayDrop, Link: link, Dir: Both, DropProb: p}
}

// DegradeLink reduces the cable's rate to fraction of the built rate.
func DegradeLink(at sim.Time, link string, fraction float64) Event {
	return Event{At: at, Kind: Degrade, Link: link, Dir: Both, RateFraction: fraction}
}

func (ev *Event) linkScoped() bool {
	switch ev.Kind {
	case LinkDown, LinkUp, Flap, GrayDrop, Degrade:
		return true
	}
	return false
}

// validate checks the event's parameters (target names are resolved
// separately, against the fabric).
func (ev *Event) validate(i int) error {
	if ev.At < 0 {
		return fmt.Errorf("faults: event %d (%s): negative time %v", i, ev.Kind, ev.At)
	}
	switch ev.Kind {
	case Flap:
		if ev.DownFor <= 0 || ev.UpFor <= 0 {
			return fmt.Errorf("faults: event %d (flap): DownFor and UpFor must be > 0", i)
		}
		if ev.Jitter < 0 || ev.Jitter >= 1 {
			return fmt.Errorf("faults: event %d (flap): Jitter %v out of [0, 1)", i, ev.Jitter)
		}
	case GrayDrop:
		if ev.DropProb < 0 || ev.DropProb > 1 {
			return fmt.Errorf("faults: event %d (gray-drop): DropProb %v out of [0, 1]", i, ev.DropProb)
		}
	case Degrade:
		if ev.RateFraction <= 0 || ev.RateFraction > 1 {
			return fmt.Errorf("faults: event %d (degrade): RateFraction %v out of (0, 1]", i, ev.RateFraction)
		}
	}
	return nil
}

// Injector is the applied state of one Plan on one fabric instance.
type Injector struct {
	eng *sim.Engine
	rng *sim.RNG

	// origRates remembers each degraded port's built rate for restoration.
	origRates map[*netsim.Port]int64
}

// Apply validates the plan, resolves every target against the fabric, and
// schedules all events on the engine. Resolution is eager: a misnamed target
// is an error at Apply time, not a mid-run surprise. rng must be a stream
// forked from the point's seed (e.g. root.Fork("faults")); each event gets
// its own sub-stream, so adding an event never perturbs another's draws.
func Apply(eng *sim.Engine, rng *sim.RNG, fab Fabric, plan Plan) (*Injector, error) {
	inj := &Injector{eng: eng, rng: rng, origRates: make(map[*netsim.Port]int64)}
	for i := range plan.Events {
		ev := plan.Events[i]
		if err := ev.validate(i); err != nil {
			return nil, err
		}
		evRNG := rng.Fork(fmt.Sprintf("event/%d", i))
		if ev.linkScoped() {
			dx, err := fab.Cable(ev.Link)
			if err != nil {
				return nil, err
			}
			inj.scheduleLink(ev, dx, evRNG)
			continue
		}
		switch ev.Kind {
		case EcnMute, EcnUnmute:
			sw, err := fab.Switch(ev.Switch)
			if err != nil {
				return nil, err
			}
			on := ev.Kind == EcnUnmute
			eng.At(ev.At, func() { sw.SetMarking(on) })
		case SwitchDown, SwitchUp:
			// Resolve now, act later: SetSwitchDown both resolves and acts,
			// so validate the name eagerly with a dry resolve.
			if _, err := fab.Switch(ev.Switch); err != nil {
				return nil, err
			}
			down := ev.Kind == SwitchDown
			name := ev.Switch
			eng.At(ev.At, func() {
				// The name was resolved above; an error here is impossible
				// short of fabric mutation, which topo does not do.
				_ = fab.SetSwitchDown(name, down)
			})
		default:
			return nil, fmt.Errorf("faults: event %d: unknown kind %v", i, ev.Kind)
		}
	}
	return inj, nil
}

// scheduleLink schedules one link-scoped event on an already-resolved cable.
func (inj *Injector) scheduleLink(ev Event, dx *netsim.Duplex, evRNG *sim.RNG) {
	switch ev.Kind {
	case LinkDown, LinkUp:
		down := ev.Kind == LinkDown
		links := ev.Dir.links(dx)
		inj.eng.At(ev.At, func() {
			for _, l := range links {
				l.SetDown(down)
			}
		})
	case Flap:
		inj.eng.At(ev.At, func() { inj.flap(ev, dx, evRNG, true) })
	case GrayDrop:
		links := ev.Dir.links(dx)
		p := ev.DropProb
		inj.eng.At(ev.At, func() {
			for _, l := range links {
				if p <= 0 {
					l.DropFn = nil
					continue
				}
				rng := evRNG // one stream per event; draws interleave in engine order
				l.DropFn = func(*netsim.Packet) bool { return rng.Float64() < p }
			}
		})
	case Degrade:
		ports := ev.Dir.ports(dx)
		frac := ev.RateFraction
		inj.eng.At(ev.At, func() {
			for _, port := range ports {
				orig, ok := inj.origRates[port]
				if !ok {
					orig = port.RateBps
					inj.origRates[port] = orig
				}
				if frac >= 1 {
					port.RateBps = orig
					delete(inj.origRates, port)
					continue
				}
				rate := int64(float64(orig) * frac)
				if rate < 1 {
					rate = 1
				}
				port.RateBps = rate
			}
		})
	}
}

// flap runs one transition of a Flap event and schedules the next. Each
// interval is jittered multiplicatively: d * (1 + Jitter*(2u-1)), u uniform
// in [0,1) from the event's own RNG stream.
func (inj *Injector) flap(ev Event, dx *netsim.Duplex, evRNG *sim.RNG, goDown bool) {
	now := inj.eng.Now()
	if ev.Until > 0 && now >= ev.Until {
		for _, l := range ev.Dir.links(dx) {
			l.SetDown(false)
		}
		return
	}
	for _, l := range ev.Dir.links(dx) {
		l.SetDown(goDown)
	}
	d := ev.UpFor
	if goDown {
		d = ev.DownFor
	}
	if ev.Jitter > 0 {
		d = sim.Time(float64(d) * (1 + ev.Jitter*(2*evRNG.Float64()-1)))
		if d < 1 {
			d = 1
		}
	}
	inj.eng.Schedule(d, func() { inj.flap(ev, dx, evRNG, !goDown) })
}
