package faults

import (
	"strings"
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
)

func fatTreeFixture() (*sim.Engine, *topo.FatTree, FatTreeFabric) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	return eng, ft, FatTreeFabric{FT: ft}
}

func TestApplyCutAndRestore(t *testing.T) {
	eng, ft, fab := fatTreeFixture()
	plan := Plan{Events: []Event{
		Cut(1*sim.Millisecond, "aggcore:0/0/0"),
		{At: 5 * sim.Millisecond, Kind: LinkUp, Link: "aggcore:0/0/0"},
	}}
	if _, err := Apply(eng, sim.NewRNG(1).Fork("faults"), fab, plan); err != nil {
		t.Fatal(err)
	}
	dx := ft.AggCoreLinks[0][0][0]
	eng.Run(2 * sim.Millisecond)
	if !dx.Failed() {
		t.Fatal("cable not cut at 1ms")
	}
	eng.Run(6 * sim.Millisecond)
	if dx.Failed() || dx.HalfOpen() {
		t.Fatal("cable not restored at 5ms")
	}
}

func TestApplyHalfOpenCut(t *testing.T) {
	eng, ft, fab := fatTreeFixture()
	plan := Plan{Events: []Event{HalfOpenCut(1*sim.Millisecond, "aggcore:0/0/0", AtoB)}}
	if _, err := Apply(eng, sim.NewRNG(1).Fork("faults"), fab, plan); err != nil {
		t.Fatal(err)
	}
	eng.Run(2 * sim.Millisecond)
	dx := ft.AggCoreLinks[0][0][0]
	if dx.Failed() {
		t.Fatal("half-open cut reported fully failed")
	}
	if !dx.HalfOpen() {
		t.Fatal("half-open cut not applied")
	}
	if !dx.AtoB.Link.Down || dx.BtoA.Link.Down {
		t.Fatal("wrong direction cut")
	}
}

func TestFlapTogglesAndStops(t *testing.T) {
	eng, ft, fab := fatTreeFixture()
	// Strictly periodic (no jitter): down at 1ms, up at 3ms, down at 5ms,
	// ..., until 10ms.
	plan := Plan{Events: []Event{
		FlapLink(1*sim.Millisecond, "aggcore:0/0/0", 2*sim.Millisecond, 2*sim.Millisecond, 0, 10*sim.Millisecond),
	}}
	if _, err := Apply(eng, sim.NewRNG(1).Fork("faults"), fab, plan); err != nil {
		t.Fatal(err)
	}
	dx := ft.AggCoreLinks[0][0][0]
	eng.Run(2 * sim.Millisecond)
	if !dx.Failed() {
		t.Fatal("not down after first flap transition")
	}
	eng.Run(4 * sim.Millisecond)
	if dx.Failed() {
		t.Fatal("not up mid-flap")
	}
	eng.Run(20 * sim.Millisecond)
	if dx.Failed() || dx.HalfOpen() {
		t.Fatal("flap did not leave the cable up after Until")
	}
	// Transitions: down/up at 1,3,5,7,9 ms, plus the final restore when the
	// 11 ms tick sees Until has passed -> 6 state changes per direction.
	if got := dx.AtoB.Link.Transitions; got != 6 {
		t.Fatalf("A->B transitions = %d, want 6", got)
	}
}

func TestFlapJitterDeterministic(t *testing.T) {
	run := func() int64 {
		eng, ft, fab := fatTreeFixture()
		plan := Plan{Events: []Event{
			FlapLink(1*sim.Millisecond, "aggcore:0/0/0", 1*sim.Millisecond, 1*sim.Millisecond, 0.3, 50*sim.Millisecond),
		}}
		if _, err := Apply(eng, sim.NewRNG(7).Fork("faults"), fab, plan); err != nil {
			t.Fatal(err)
		}
		eng.Run(60 * sim.Millisecond)
		return ft.AggCoreLinks[0][0][0].AtoB.Link.Transitions
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("jittered flap not replayable: %d vs %d transitions", a, b)
	}
	if a < 10 {
		t.Fatalf("implausibly few transitions: %d", a)
	}
}

func TestGrayDropLossRate(t *testing.T) {
	eng, ft, fab := fatTreeFixture()
	plan := Plan{Events: []Event{Gray(0, "aggcore:0/0/0", 0.5)}}
	if _, err := Apply(eng, sim.NewRNG(3).Fork("faults"), fab, plan); err != nil {
		t.Fatal(err)
	}
	dx := ft.AggCoreLinks[0][0][0]
	eng.RunUntilIdle() // apply the event at t=0
	const n = 2000
	for i := 0; i < n; i++ {
		dx.AtoB.Enqueue(&netsim.Packet{Dst: 0, Size: 100})
		eng.RunUntilIdle()
	}
	got := dx.AtoB.Link.DroppedGray
	if got < n/3 || got > 2*n/3 {
		t.Fatalf("gray drops = %d of %d, want ~%d", got, n, n/2)
	}
	// Clearing: DropProb 0 removes the hook (scheduled after Now, since the
	// engine has already advanced past t=0).
	plan2 := Plan{Events: []Event{Gray(eng.Now()+1, "aggcore:0/0/0", 0)}}
	if _, err := Apply(eng, sim.NewRNG(3).Fork("faults2"), fab, plan2); err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	if dx.AtoB.Link.DropFn != nil {
		t.Fatal("gray state not cleared")
	}
}

func TestDegradeAndRestoreRate(t *testing.T) {
	eng, ft, fab := fatTreeFixture()
	plan := Plan{Events: []Event{
		DegradeLink(1*sim.Millisecond, "aggcore:0/0/0", 0.25),
		DegradeLink(5*sim.Millisecond, "aggcore:0/0/0", 1),
	}}
	if _, err := Apply(eng, sim.NewRNG(1).Fork("faults"), fab, plan); err != nil {
		t.Fatal(err)
	}
	dx := ft.AggCoreLinks[0][0][0]
	orig := dx.AtoB.RateBps
	eng.Run(2 * sim.Millisecond)
	if got := dx.AtoB.RateBps; got != orig/4 {
		t.Fatalf("degraded rate = %d, want %d", got, orig/4)
	}
	if got := dx.BtoA.RateBps; got != orig/4 {
		t.Fatalf("reverse direction not degraded: %d", got)
	}
	eng.Run(6 * sim.Millisecond)
	if got := dx.AtoB.RateBps; got != orig {
		t.Fatalf("restored rate = %d, want %d", got, orig)
	}
}

func TestEcnMuteUnmute(t *testing.T) {
	eng, ft, fab := fatTreeFixture()
	plan := Plan{Events: []Event{
		{At: 1 * sim.Millisecond, Kind: EcnMute, Switch: "agg:0/0"},
		{At: 5 * sim.Millisecond, Kind: EcnUnmute, Switch: "agg:0/0"},
	}}
	if _, err := Apply(eng, sim.NewRNG(1).Fork("faults"), fab, plan); err != nil {
		t.Fatal(err)
	}
	sw := ft.Aggs[0][0]
	if !sw.MarkingEnabled() {
		t.Fatal("marking off before the mute event")
	}
	eng.Run(2 * sim.Millisecond)
	if sw.MarkingEnabled() {
		t.Fatal("mute did not take effect")
	}
	eng.Run(6 * sim.Millisecond)
	if !sw.MarkingEnabled() {
		t.Fatal("unmute did not restore marking")
	}
}

func TestWholeSwitchDownUp(t *testing.T) {
	eng, ft, fab := fatTreeFixture()
	plan := Plan{Events: []Event{
		{At: 1 * sim.Millisecond, Kind: SwitchDown, Switch: "agg:0/1"},
		{At: 5 * sim.Millisecond, Kind: SwitchUp, Switch: "agg:0/1"},
	}}
	if _, err := Apply(eng, sim.NewRNG(1).Fork("faults"), fab, plan); err != nil {
		t.Fatal(err)
	}
	eng.Run(2 * sim.Millisecond)
	want := ft.P.TorsPerPod + ft.P.CoreUplinksPerAgg
	if got := ft.DownLinks(); got != want {
		t.Fatalf("down links = %d, want %d", got, want)
	}
	eng.Run(6 * sim.Millisecond)
	if ft.DownLinks() != 0 {
		t.Fatal("switch not restored")
	}
}

func TestApplyRejectsBadTargets(t *testing.T) {
	eng, _, fab := fatTreeFixture()
	cases := []Plan{
		{Events: []Event{Cut(0, "aggcore:9/9/9")}},
		{Events: []Event{Cut(0, "nonsense:0")}},
		{Events: []Event{Cut(0, "missing-colon")}},
		{Events: []Event{{At: 0, Kind: EcnMute, Switch: "spine:0"}}},
		{Events: []Event{{At: 0, Kind: SwitchDown, Switch: "agg:5/5"}}},
		{Events: []Event{Gray(0, "aggcore:0/0/0", 1.5)}},
		{Events: []Event{DegradeLink(0, "aggcore:0/0/0", 0)}},
		{Events: []Event{{At: 0, Kind: Flap, Link: "aggcore:0/0/0"}}},
		{Events: []Event{{At: -1, Kind: LinkDown, Link: "aggcore:0/0/0"}}},
	}
	for i, plan := range cases {
		if _, err := Apply(eng, sim.NewRNG(1).Fork("faults"), fab, plan); err == nil {
			t.Errorf("case %d: bad plan accepted", i)
		}
	}
}

func TestLeafSpineFabricResolution(t *testing.T) {
	eng := sim.NewEngine()
	ls := topo.NewLeafSpine(eng, topo.SmallTestbed())
	fab := LeafSpineFabric{LS: ls}
	dx, err := fab.Cable("up:1/2")
	if err != nil {
		t.Fatal(err)
	}
	if dx != ls.UpLinks[1][2] {
		t.Fatal("wrong cable resolved")
	}
	if _, err := fab.Cable("up:99/0"); err == nil {
		t.Fatal("out-of-range cable accepted")
	}
	sw, err := fab.Switch("spine:3")
	if err != nil {
		t.Fatal(err)
	}
	if sw != ls.Spines[3] {
		t.Fatal("wrong switch resolved")
	}
	if err := fab.SetSwitchDown("spine:0", true); err != nil {
		t.Fatal(err)
	}
	if ls.DownLinks() != ls.P.Tors {
		t.Fatal("spine not failed")
	}
	if err := fab.SetSwitchDown("tor:0", true); err == nil ||
		!strings.Contains(err.Error(), "not supported") {
		t.Fatalf("tor whole-switch failure should be unsupported, got %v", err)
	}
}
