package faults

import (
	"fmt"
	"strconv"
	"strings"

	"flowbender/internal/netsim"
	"flowbender/internal/topo"
)

// Fabric resolves the element names a Plan refers to against one built
// topology instance. Plans are declarative and topology-agnostic; each
// simulation point builds its own fabric and resolves the same names against
// it, which is what keeps a scenario replayable across points and seeds.
type Fabric interface {
	// Cable resolves a cable name to its duplex handle.
	Cable(name string) (*netsim.Duplex, error)
	// Switch resolves a switch name to its handle.
	Switch(name string) (*netsim.Switch, error)
	// SetSwitchDown fails (down=true) or restores every cable of the named
	// switch, reusing the topology's whole-switch failure helpers.
	SetSwitchDown(name string, down bool) error
}

// parseIndices splits "a/b/c" into integers.
func parseIndices(s string, want int) ([]int, error) {
	parts := strings.Split(s, "/")
	if len(parts) != want {
		return nil, fmt.Errorf("want %d '/'-separated indices, got %q", want, s)
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad index %q in %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

// splitName separates "kind:indices".
func splitName(name string) (kind, rest string, err error) {
	i := strings.IndexByte(name, ':')
	if i < 0 {
		return "", "", fmt.Errorf("faults: name %q is not of the form kind:indices", name)
	}
	return name[:i], name[i+1:], nil
}

func checkRange(what string, v, n int) error {
	if v < 0 || v >= n {
		return fmt.Errorf("faults: %s index %d out of range [0, %d)", what, v, n)
	}
	return nil
}

// FatTreeFabric adapts a built fat-tree. Element names:
//
//	cables:   "host:<h>"  "toragg:<pod>/<tor>/<agg>"  "aggcore:<pod>/<agg>/<k>"
//	switches: "tor:<pod>/<t>"  "agg:<pod>/<a>"  "core:<c>"
//
// SetSwitchDown supports "agg:..." (FailAgg/RestoreAgg) and "core:<c>"
// (FailCore/RestoreCore), the whole-switch failures the topology models.
type FatTreeFabric struct {
	FT *topo.FatTree
}

// Cable implements Fabric.
func (f FatTreeFabric) Cable(name string) (*netsim.Duplex, error) {
	kind, rest, err := splitName(name)
	if err != nil {
		return nil, err
	}
	p := f.FT.P
	switch kind {
	case "host":
		idx, err := parseIndices(rest, 1)
		if err != nil {
			return nil, fmt.Errorf("faults: cable %q: %v", name, err)
		}
		if err := checkRange("host", idx[0], p.NumHosts()); err != nil {
			return nil, err
		}
		return f.FT.HostLinks[idx[0]], nil
	case "toragg":
		idx, err := parseIndices(rest, 3)
		if err != nil {
			return nil, fmt.Errorf("faults: cable %q: %v", name, err)
		}
		if err := firstErr(
			checkRange("pod", idx[0], p.Pods),
			checkRange("tor", idx[1], p.TorsPerPod),
			checkRange("agg", idx[2], p.AggsPerPod)); err != nil {
			return nil, err
		}
		return f.FT.TorAggLinks[idx[0]][idx[1]][idx[2]], nil
	case "aggcore":
		idx, err := parseIndices(rest, 3)
		if err != nil {
			return nil, fmt.Errorf("faults: cable %q: %v", name, err)
		}
		if err := firstErr(
			checkRange("pod", idx[0], p.Pods),
			checkRange("agg", idx[1], p.AggsPerPod),
			checkRange("uplink", idx[2], p.CoreUplinksPerAgg)); err != nil {
			return nil, err
		}
		return f.FT.AggCoreLinks[idx[0]][idx[1]][idx[2]], nil
	}
	return nil, fmt.Errorf("faults: unknown fat-tree cable kind %q in %q", kind, name)
}

// Switch implements Fabric.
func (f FatTreeFabric) Switch(name string) (*netsim.Switch, error) {
	kind, rest, err := splitName(name)
	if err != nil {
		return nil, err
	}
	p := f.FT.P
	switch kind {
	case "tor":
		idx, err := parseIndices(rest, 2)
		if err != nil {
			return nil, fmt.Errorf("faults: switch %q: %v", name, err)
		}
		if err := firstErr(
			checkRange("pod", idx[0], p.Pods),
			checkRange("tor", idx[1], p.TorsPerPod)); err != nil {
			return nil, err
		}
		return f.FT.Tors[idx[0]][idx[1]], nil
	case "agg":
		idx, err := parseIndices(rest, 2)
		if err != nil {
			return nil, fmt.Errorf("faults: switch %q: %v", name, err)
		}
		if err := firstErr(
			checkRange("pod", idx[0], p.Pods),
			checkRange("agg", idx[1], p.AggsPerPod)); err != nil {
			return nil, err
		}
		return f.FT.Aggs[idx[0]][idx[1]], nil
	case "core":
		idx, err := parseIndices(rest, 1)
		if err != nil {
			return nil, fmt.Errorf("faults: switch %q: %v", name, err)
		}
		if err := checkRange("core", idx[0], p.NumCores()); err != nil {
			return nil, err
		}
		return f.FT.Cores[idx[0]], nil
	}
	return nil, fmt.Errorf("faults: unknown fat-tree switch kind %q in %q", kind, name)
}

// SetSwitchDown implements Fabric.
func (f FatTreeFabric) SetSwitchDown(name string, down bool) error {
	kind, rest, err := splitName(name)
	if err != nil {
		return err
	}
	switch kind {
	case "agg":
		idx, err := parseIndices(rest, 2)
		if err != nil {
			return fmt.Errorf("faults: switch %q: %v", name, err)
		}
		p := f.FT.P
		if err := firstErr(
			checkRange("pod", idx[0], p.Pods),
			checkRange("agg", idx[1], p.AggsPerPod)); err != nil {
			return err
		}
		if down {
			f.FT.FailAgg(idx[0], idx[1])
		} else {
			f.FT.RestoreAgg(idx[0], idx[1])
		}
		return nil
	case "core":
		idx, err := parseIndices(rest, 1)
		if err != nil {
			return fmt.Errorf("faults: switch %q: %v", name, err)
		}
		if err := checkRange("core", idx[0], f.FT.P.NumCores()); err != nil {
			return err
		}
		if down {
			f.FT.FailCore(idx[0])
		} else {
			f.FT.RestoreCore(idx[0])
		}
		return nil
	}
	return fmt.Errorf("faults: whole-switch failure not supported for %q", name)
}

// LeafSpineFabric adapts a built leaf-spine. Element names:
//
//	cables:   "host:<h>"  "up:<tor>/<spine>"
//	switches: "tor:<t>"  "spine:<s>"
//
// SetSwitchDown supports "spine:<s>" (FailSpine/RestoreSpine).
type LeafSpineFabric struct {
	LS *topo.LeafSpine
}

// Cable implements Fabric.
func (f LeafSpineFabric) Cable(name string) (*netsim.Duplex, error) {
	kind, rest, err := splitName(name)
	if err != nil {
		return nil, err
	}
	p := f.LS.P
	switch kind {
	case "host":
		idx, err := parseIndices(rest, 1)
		if err != nil {
			return nil, fmt.Errorf("faults: cable %q: %v", name, err)
		}
		if err := checkRange("host", idx[0], p.NumHosts()); err != nil {
			return nil, err
		}
		return f.LS.HostLinks[idx[0]], nil
	case "up":
		idx, err := parseIndices(rest, 2)
		if err != nil {
			return nil, fmt.Errorf("faults: cable %q: %v", name, err)
		}
		if err := firstErr(
			checkRange("tor", idx[0], p.Tors),
			checkRange("spine", idx[1], p.Spines)); err != nil {
			return nil, err
		}
		return f.LS.UpLinks[idx[0]][idx[1]], nil
	}
	return nil, fmt.Errorf("faults: unknown leaf-spine cable kind %q in %q", kind, name)
}

// Switch implements Fabric.
func (f LeafSpineFabric) Switch(name string) (*netsim.Switch, error) {
	kind, rest, err := splitName(name)
	if err != nil {
		return nil, err
	}
	p := f.LS.P
	switch kind {
	case "tor":
		idx, err := parseIndices(rest, 1)
		if err != nil {
			return nil, fmt.Errorf("faults: switch %q: %v", name, err)
		}
		if err := checkRange("tor", idx[0], p.Tors); err != nil {
			return nil, err
		}
		return f.LS.Tors[idx[0]], nil
	case "spine":
		idx, err := parseIndices(rest, 1)
		if err != nil {
			return nil, fmt.Errorf("faults: switch %q: %v", name, err)
		}
		if err := checkRange("spine", idx[0], p.Spines); err != nil {
			return nil, err
		}
		return f.LS.Spines[idx[0]], nil
	}
	return nil, fmt.Errorf("faults: unknown leaf-spine switch kind %q in %q", kind, name)
}

// SetSwitchDown implements Fabric.
func (f LeafSpineFabric) SetSwitchDown(name string, down bool) error {
	kind, rest, err := splitName(name)
	if err != nil {
		return err
	}
	if kind != "spine" {
		return fmt.Errorf("faults: whole-switch failure not supported for %q", name)
	}
	idx, err := parseIndices(rest, 1)
	if err != nil {
		return fmt.Errorf("faults: switch %q: %v", name, err)
	}
	if err := checkRange("spine", idx[0], f.LS.P.Spines); err != nil {
		return err
	}
	if down {
		f.LS.FailSpine(idx[0])
	} else {
		f.LS.RestoreSpine(idx[0])
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
