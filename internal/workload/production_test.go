package workload

import (
	"math"
	"os"
	"reflect"
	"sort"
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// fakeHosts builds n distinct Host pointers; Mix only compares and stores
// them, so empty structs suffice.
func fakeHosts(n int) []*netsim.Host {
	hs := make([]*netsim.Host, n)
	for i := range hs {
		hs[i] = &netsim.Host{}
	}
	return hs
}

// TestNamedCDFMatchesTestdata pins the built-in distributions to the
// checked-in .cdf files bit for bit: external tools reading the files see
// exactly what the simulator draws from.
func TestNamedCDFMatchesTestdata(t *testing.T) {
	for _, name := range WorkloadNames() {
		f, err := os.Open("testdata/" + name + ".cdf")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		parsed, err := ParseCDF(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		builtin, err := NamedCDF(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(parsed, builtin) {
			t.Errorf("%s: testdata file and builtin diverge:\nfile:    %v\nbuiltin: %v",
				name, parsed, builtin)
		}
		if err := builtin.Validate(); err != nil {
			t.Errorf("%s: builtin invalid: %v", name, err)
		}
	}
	if _, err := NamedCDF("nosuch"); err == nil {
		t.Error("NamedCDF accepted an unknown name")
	}
}

// TestPoissonKS: the inter-arrival gaps must actually be exponential with
// the requested mean — a Kolmogorov–Smirnov sanity check per seed against
// the exponential CDF, with a threshold loose enough (~p < 1e-4) that a
// correct generator never trips it on these fixed seeds.
func TestPoissonKS(t *testing.T) {
	const n = 20000
	mean := 50 * sim.Microsecond
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := sim.NewRNG(seed)
		p := Poisson{Mean: mean}
		us := make([]float64, n)
		var sum float64
		for i := range us {
			gap := p.Next(rng, 0)
			sum += float64(gap)
			// Probability integral transform: exponential gaps map to
			// Uniform(0,1).
			us[i] = 1 - math.Exp(-float64(gap)/float64(mean))
		}
		sort.Float64s(us)
		var d float64
		for i, u := range us {
			lo := math.Abs(u - float64(i)/n)
			hi := math.Abs(u - float64(i+1)/n)
			d = math.Max(d, math.Max(lo, hi))
		}
		if limit := 2.2 / math.Sqrt(n); d > limit {
			t.Errorf("seed %d: KS statistic %.5f > %.5f — gaps not exponential", seed, d, limit)
		}
		got := sum / n
		if want := float64(mean); math.Abs(got-want)/want > 0.05 {
			t.Errorf("seed %d: mean gap %.0f, want %.0f ± 5%%", seed, got, want)
		}
	}
}

// TestDiurnalEnvelope: every gap must respect the analytic envelope
// gap ∈ [draw/MaxRate, draw/minDiurnalRate]; with the rate bounded, time
// still advances, and the spike window must visibly densify arrivals.
func TestDiurnalEnvelope(t *testing.T) {
	mean := 100 * sim.Microsecond
	period := 100 * sim.Millisecond
	d := Diurnal{
		Mean:      mean,
		Amplitude: 0.5,
		Period:    period,
		Spikes:    []Spike{{At: 20 * sim.Millisecond, Duration: 10 * sim.Millisecond, Factor: 4}},
	}
	// Replay the same seed through a bare Poisson to recover the raw
	// exponential draws the diurnal process scales.
	raw := sim.NewRNG(11)
	rng := sim.NewRNG(11)
	maxRate := d.MaxRate()
	if want := 1.5 * 4; maxRate != want {
		t.Fatalf("MaxRate=%v, want %v", maxRate, want)
	}
	var now sim.Time
	var inSpike, outSpike int
	for i := 0; i < 50000 && now < period; i++ {
		e := float64(raw.Exp(mean))
		gap := d.Next(rng, now)
		lo := sim.Time(e / maxRate)
		hi := sim.Time(e/minDiurnalRate) + 1
		if gap < lo || gap > hi {
			t.Fatalf("gap %v outside envelope [%v, %v] at t=%v", gap, lo, hi, now)
		}
		if gap < 1 {
			t.Fatalf("non-positive gap %v", gap)
		}
		now += gap
		if now >= 20*sim.Millisecond && now < 30*sim.Millisecond {
			inSpike++
		} else if now >= 40*sim.Millisecond && now < 50*sim.Millisecond {
			outSpike++
		}
	}
	// The 4x spike window should hold several times the arrivals of an
	// equally long plain window; 2x is a loose, non-flaky floor.
	if inSpike < 2*outSpike {
		t.Errorf("spike window %d arrivals vs %d outside — spike not visible", inSpike, outSpike)
	}
}

// TestDiurnalZeroAmplitudeIsPoissonShaped: with no modulation and no
// spikes, Rate must be exactly 1 so gaps equal the raw exponential draws.
func TestDiurnalZeroAmplitudeIsPoissonShaped(t *testing.T) {
	d := Diurnal{Mean: 10 * sim.Microsecond}
	raw := sim.NewRNG(3)
	rng := sim.NewRNG(3)
	for i := 0; i < 1000; i++ {
		want := raw.Exp(d.Mean)
		if want < 1 {
			want = 1
		}
		if got := d.Next(rng, sim.Time(i)*sim.Millisecond); got != want {
			t.Fatalf("draw %d: got %v want %v", i, got, want)
		}
	}
}

// TestDiurnalRateFloor: a trough deeper than the floor clamps instead of
// stalling or flipping the rate negative.
func TestDiurnalRateFloor(t *testing.T) {
	d := Diurnal{Mean: sim.Microsecond, Amplitude: 0.99, Period: 4 * sim.Second,
		Spikes: []Spike{{At: 0, Duration: 4 * sim.Second, Factor: 0.01}}}
	// Near the trough (3/4 period) with a 0.01x "spike", the raw rate
	// would be ~0.0001; the floor must hold.
	if r := d.Rate(3 * sim.Second); r != minDiurnalRate {
		t.Fatalf("Rate=%v, want floor %v", r, minDiurnalRate)
	}
}

func testMix(seed int64, hosts []*netsim.Host, maxFlows int) *Mix {
	return &Mix{
		RNG:         sim.NewRNG(seed),
		Hosts:       hosts,
		CDF:         WebSearchCDF(),
		Arrivals:    Poisson{Mean: 20 * sim.Microsecond},
		IncastFrac:  0.15,
		StorageFrac: 0.10,
		FanIn:       4,
		Replicas:    3,
		MaxFlows:    maxFlows,
	}
}

// TestMixPredrawDeterminism: the same seed must yield the identical spec
// sequence whether batches are consumed lazily one at a time or pre-drawn
// flat up front — the property the sharded runner depends on.
func TestMixPredrawDeterminism(t *testing.T) {
	hosts := fakeHosts(16)
	flat := testMix(99, hosts, 5000).PredrawFlows()
	if len(flat) != 5000 {
		t.Fatalf("predraw emitted %d specs, want 5000", len(flat))
	}

	lazy := testMix(99, hosts, 5000)
	var got []FlowSpec
	for {
		b := lazy.NextBatch()
		if b == nil {
			break
		}
		got = append(got, b...)
	}
	if !reflect.DeepEqual(flat, got) {
		t.Fatal("lazy NextBatch stream diverges from PredrawFlows")
	}

	// And byte-identical across independent generator instances.
	again := testMix(99, hosts, 5000).PredrawFlows()
	if !reflect.DeepEqual(flat, again) {
		t.Fatal("two same-seed predraws diverge")
	}
	if diff := testMix(100, hosts, 5000).PredrawFlows(); reflect.DeepEqual(flat, diff) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestMixTruncationStable: cutting MaxFlows mid-batch must not shift the
// draw stream — the shared prefix of a longer and shorter run is identical.
func TestMixTruncationStable(t *testing.T) {
	hosts := fakeHosts(16)
	long := testMix(5, hosts, 3000).PredrawFlows()
	for _, n := range []int{1, 7, 100, 2999} {
		short := testMix(5, hosts, n).PredrawFlows()
		if len(short) != n {
			t.Fatalf("MaxFlows=%d emitted %d", n, len(short))
		}
		if !reflect.DeepEqual(short, long[:n]) {
			t.Fatalf("MaxFlows=%d is not a prefix of the longer run", n)
		}
	}
}

// TestMixIncastShape: an incast batch is FanIn flows at one instant from
// distinct sources into a single destination, splitting one job evenly.
func TestMixIncastShape(t *testing.T) {
	hosts := fakeHosts(32)
	m := testMix(21, hosts, 20000)
	m.IncastFrac = 1 // all batches incast
	m.StorageFrac = 0
	var batches int
	for {
		b := m.NextBatch()
		if b == nil {
			break
		}
		batches++
		if len(b) > m.FanIn {
			t.Fatalf("incast batch has %d flows, want <= FanIn=%d", len(b), m.FanIn)
		}
		full := len(b) == m.FanIn // the last batch may be truncated
		srcs := map[*netsim.Host]bool{}
		for _, s := range b {
			if s.Kind != KindIncast {
				t.Fatalf("kind %v in incast-only mix", s.Kind)
			}
			if s.At != b[0].At {
				t.Fatal("incast flows not simultaneous")
			}
			if s.Dst != b[0].Dst {
				t.Fatal("incast flows have different aggregators")
			}
			if s.Src == s.Dst {
				t.Fatal("worker equals aggregator")
			}
			if srcs[s.Src] {
				t.Fatal("duplicate worker")
			}
			srcs[s.Src] = true
			if s.Size != b[0].Size {
				t.Fatal("uneven job split")
			}
			if s.Size < 1 {
				t.Fatal("non-positive flow size")
			}
		}
		_ = full
	}
	if m.Emitted() != 20000 {
		t.Fatalf("emitted %d, want 20000", m.Emitted())
	}
	if batches < 20000/m.FanIn {
		t.Fatalf("only %d batches", batches)
	}
}

// TestMixStorageShape: a storage batch replicates one full-size payload
// from one writer to Replicas distinct servers at one instant.
func TestMixStorageShape(t *testing.T) {
	hosts := fakeHosts(32)
	m := testMix(22, hosts, 9999)
	m.IncastFrac = 0
	m.StorageFrac = 1
	for {
		b := m.NextBatch()
		if b == nil {
			break
		}
		if len(b) > m.Replicas {
			t.Fatalf("storage batch has %d flows, want <= Replicas=%d", len(b), m.Replicas)
		}
		dsts := map[*netsim.Host]bool{}
		for _, s := range b {
			if s.Kind != KindStorage {
				t.Fatalf("kind %v in storage-only mix", s.Kind)
			}
			if s.Src != b[0].Src || s.At != b[0].At || s.Size != b[0].Size {
				t.Fatal("replicas differ in writer, instant, or size")
			}
			if dsts[s.Dst] {
				t.Fatal("duplicate replica destination")
			}
			if s.Dst == s.Src {
				t.Fatal("replica written to the writer itself")
			}
			dsts[s.Dst] = true
		}
	}
}

// TestMixKindFractions: the pattern selector must hit the configured
// fractions within sampling noise, and batch arrival times must be
// strictly non-decreasing.
func TestMixKindFractions(t *testing.T) {
	hosts := fakeHosts(16)
	m := testMix(31, hosts, 30000)
	counts := map[PatternKind]int{}
	batches := 0
	var prev sim.Time
	for {
		b := m.NextBatch()
		if b == nil {
			break
		}
		batches++
		counts[b[0].Kind]++
		if b[0].At < prev {
			t.Fatal("arrival times went backwards")
		}
		prev = b[0].At
	}
	inc := float64(counts[KindIncast]) / float64(batches)
	sto := float64(counts[KindStorage]) / float64(batches)
	if math.Abs(inc-0.15) > 0.02 {
		t.Errorf("incast fraction %.3f, want 0.15 ± 0.02", inc)
	}
	if math.Abs(sto-0.10) > 0.02 {
		t.Errorf("storage fraction %.3f, want 0.10 ± 0.02", sto)
	}
}

// TestMixMeanBatchBytes: replication inflates offered bytes; the load
// calibration helper must account for it.
func TestMixMeanBatchBytes(t *testing.T) {
	hosts := fakeHosts(4)
	m := testMix(1, hosts, 10)
	want := m.CDF.Mean() * (1 + 0.10*2)
	if got := m.MeanBatchBytes(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("MeanBatchBytes=%v, want %v", got, want)
	}
}
