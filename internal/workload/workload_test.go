package workload

import (
	"testing"
	"testing/quick"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
)

func TestWebSearchCDFValid(t *testing.T) {
	if err := WebSearchCDF().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCDFValidateRejectsBadShapes(t *testing.T) {
	bad := []CDF{
		{},
		{{Bytes: 0, P: 1}},
		{{Bytes: 10, P: 0.5}, {Bytes: 5, P: 1}}, // sizes not increasing
		{{Bytes: 10, P: 0.8}, {Bytes: 20, P: 0.5}}, // P not monotone
		{{Bytes: 10, P: 0}, {Bytes: 20, P: 0.9}},   // does not reach 1
		{{Bytes: 10, P: -0.1}, {Bytes: 20, P: 1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestFixedCDF(t *testing.T) {
	c := Fixed(1_000_000)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		if got := c.Sample(rng); got != 1_000_000 {
			t.Fatalf("Fixed sample = %d", got)
		}
	}
	if c.Mean() != 1_000_000 {
		t.Fatalf("Fixed mean = %v", c.Mean())
	}
}

func TestCDFSampleWithinSupport(t *testing.T) {
	c := WebSearchCDF()
	rng := sim.NewRNG(7)
	lo, hi := c[0].Bytes, c[len(c)-1].Bytes
	for i := 0; i < 50_000; i++ {
		s := c.Sample(rng)
		if s < lo || s > hi {
			t.Fatalf("sample %d outside [%d, %d]", s, lo, hi)
		}
	}
}

func TestCDFSampleMeanMatchesAnalytic(t *testing.T) {
	c := WebSearchCDF()
	rng := sim.NewRNG(3)
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += float64(c.Sample(rng))
	}
	got := sum / n
	want := c.Mean()
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("empirical mean %v vs analytic %v", got, want)
	}
}

func TestCDFHeavyTail(t *testing.T) {
	// The defining property of the workload: most flows are small but most
	// bytes are in large flows.
	c := WebSearchCDF()
	rng := sim.NewRNG(5)
	var total, bigBytes float64
	big := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		s := float64(c.Sample(rng))
		total += s
		if s > 1_000_000 {
			big++
			bigBytes += s
		}
	}
	if frac := float64(big) / n; frac > 0.25 {
		t.Fatalf("large flows are %.0f%% of flows, want a small fraction", frac*100)
	}
	if frac := bigBytes / total; frac < 0.5 {
		t.Fatalf("large flows carry %.0f%% of bytes, want the majority", frac*100)
	}
}

// Property: inverse-transform sampling respects the CDF at its defining
// points: P(X <= Bytes_i) ~ P_i.
func TestCDFQuantileProperty(t *testing.T) {
	c := WebSearchCDF()
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		const n = 20_000
		counts := make([]int, len(c))
		for i := 0; i < n; i++ {
			s := c.Sample(rng)
			for j := range c {
				if s <= c[j].Bytes {
					counts[j]++
				}
			}
		}
		for j := range c {
			got := float64(counts[j]) / n
			if diff := got - c[j].P; diff > 0.03 || diff < -0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateInterarrival(t *testing.T) {
	// Bisection 80 Gbps, 3/4 of traffic crosses it, load 0.6:
	// total = 0.6*80/0.75 = 64 Gbps. Mean flow 1 MB = 8 Mb ->
	// 8000 flows/s -> 125 us interarrival.
	got := AggregateInterarrival(0.6, 80_000_000_000, 0.75, 1_000_000)
	want := sim.Time(125 * sim.Microsecond)
	if got < want-sim.Microsecond || got > want+sim.Microsecond {
		t.Fatalf("interarrival = %v, want ~%v", got, want)
	}
}

func TestJobInterarrival(t *testing.T) {
	got := JobInterarrival(0.6, 80_000_000_000, 0.75, 1_000_000)
	want := AggregateInterarrival(0.6, 80_000_000_000, 0.75, 1_000_000)
	if got != want {
		t.Fatalf("job interarrival %v != flow interarrival %v for same bytes", got, want)
	}
}

// fakeFactory records requested flows without simulating transport.
type fakeFactory struct {
	eng   *sim.Engine
	flows []*tcp.Flow
}

func (f *fakeFactory) start(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
	fl := &tcp.Flow{ID: id, Src: src, Dst: dst, Size: size, Start: f.eng.Now(), RecvDone: f.eng.Now(), SendDone: f.eng.Now()}
	f.flows = append(f.flows, fl)
	return fl
}

func testHosts(eng *sim.Engine, n int) []*netsim.Host {
	hosts := make([]*netsim.Host, n)
	for i := range hosts {
		hosts[i] = netsim.NewHost(eng, netsim.NodeID(i), 10_000_000_000, 0)
	}
	return hosts
}

func TestAllToAllGeneratesExactlyMaxFlows(t *testing.T) {
	eng := sim.NewEngine()
	hosts := testHosts(eng, 8)
	ff := &fakeFactory{eng: eng}
	gen := &AllToAll{
		Eng: eng, RNG: sim.NewRNG(1), Hosts: hosts, CDF: Fixed(1000),
		Start: ff.start, IDs: &IDAllocator{}, MeanInterarrival: sim.Microsecond, MaxFlows: 137,
	}
	gen.Run()
	eng.RunUntilIdle()
	if len(gen.Flows) != 137 {
		t.Fatalf("generated %d flows", len(gen.Flows))
	}
	for _, f := range gen.Flows {
		if f.Src == f.Dst {
			t.Fatal("flow with src == dst")
		}
	}
}

func TestAllToAllSrcSubset(t *testing.T) {
	eng := sim.NewEngine()
	hosts := testHosts(eng, 8)
	ff := &fakeFactory{eng: eng}
	gen := &AllToAll{
		Eng: eng, RNG: sim.NewRNG(2), Hosts: hosts, SrcHosts: hosts[:2], CDF: Fixed(1000),
		Start: ff.start, IDs: &IDAllocator{}, MeanInterarrival: sim.Microsecond, MaxFlows: 100,
	}
	gen.Run()
	eng.RunUntilIdle()
	for _, f := range gen.Flows {
		if f.Src != hosts[0] && f.Src != hosts[1] {
			t.Fatal("flow from outside the source subset")
		}
	}
}

func TestAllToAllSameWorkloadAcrossRuns(t *testing.T) {
	build := func() []*tcp.Flow {
		eng := sim.NewEngine()
		hosts := testHosts(eng, 8)
		ff := &fakeFactory{eng: eng}
		gen := &AllToAll{
			Eng: eng, RNG: sim.NewRNG(42), Hosts: hosts, CDF: WebSearchCDF(),
			Start: ff.start, IDs: &IDAllocator{}, MeanInterarrival: 10 * sim.Microsecond, MaxFlows: 200,
		}
		gen.Run()
		eng.RunUntilIdle()
		return gen.Flows
	}
	x, y := build(), build()
	if len(x) != len(y) {
		t.Fatal("runs generated different flow counts")
	}
	for i := range x {
		if x[i].Size != y[i].Size || x[i].Start != y[i].Start ||
			x[i].Src.ID() != y[i].Src.ID() || x[i].Dst.ID() != y[i].Dst.ID() {
			t.Fatalf("flow %d differs between identically seeded runs", i)
		}
	}
}

func TestPartitionAggregateJobs(t *testing.T) {
	eng := sim.NewEngine()
	hosts := testHosts(eng, 16)
	ff := &fakeFactory{eng: eng}
	gen := &PartitionAggregate{
		Eng: eng, RNG: sim.NewRNG(3), Hosts: hosts,
		Start: ff.start, IDs: &IDAllocator{},
		JobBytes: 1_000_000, FanIn: 8, MeanInterarrival: sim.Microsecond, MaxJobs: 20,
	}
	gen.Run()
	eng.RunUntilIdle()
	if len(gen.Jobs) != 20 {
		t.Fatalf("jobs = %d", len(gen.Jobs))
	}
	for _, j := range gen.Jobs {
		if len(j.Flows) != 8 {
			t.Fatalf("job has %d workers", len(j.Flows))
		}
		agg := j.Flows[0].Dst
		seen := map[netsim.NodeID]bool{}
		var total int64
		for _, f := range j.Flows {
			if f.Dst != agg {
				t.Fatal("workers respond to different aggregators")
			}
			if f.Src == agg {
				t.Fatal("aggregator responds to itself")
			}
			if seen[f.Src.ID()] {
				t.Fatal("duplicate worker in a job")
			}
			seen[f.Src.ID()] = true
			total += f.Size
		}
		if total < 999_992 || total > 1_000_000 {
			t.Fatalf("job bytes = %d", total)
		}
		if !j.Done() {
			t.Fatal("fake-completed job not Done")
		}
	}
}

func TestValidationFlows(t *testing.T) {
	eng := sim.NewEngine()
	hosts := testHosts(eng, 8)
	ff := &fakeFactory{eng: eng}
	flows := Validation(&IDAllocator{}, ff.start, hosts[:4], hosts[4:], 10, 777)
	if len(flows) != 10 {
		t.Fatalf("flows = %d", len(flows))
	}
	for i, f := range flows {
		if f.Size != 777 {
			t.Fatal("wrong size")
		}
		if f.Src != hosts[i%4] || f.Dst != hosts[4+i%4] {
			t.Fatalf("flow %d endpoints wrong", i)
		}
	}
}

func TestIDAllocatorUnique(t *testing.T) {
	var a IDAllocator
	seen := map[netsim.FlowID]bool{}
	for i := 0; i < 1000; i++ {
		id := a.Next()
		if seen[id] {
			t.Fatal("duplicate flow ID")
		}
		seen[id] = true
	}
}
