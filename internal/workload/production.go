package workload

import (
	"fmt"
	"math"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// DataMiningCDF is a flow-size distribution in the style of the
// data-mining workload measured by VL2 and reused by pFabric/RepFlow/
// DiffFlow: the vast majority of flows are mice under 10 KB, while nearly
// all bytes ride in multi-megabyte elephants. The tail is truncated at
// 100 MB (the published distributions reach 1 GB) to keep simulated byte
// volume proportional to what a discrete-event run can execute; the
// mice/elephant byte split the schemes react to is preserved.
func DataMiningCDF() CDF {
	return CDF{
		{100, 0},
		{180, 0.10},
		{250, 0.20},
		{560, 0.30},
		{900, 0.40},
		{1_100, 0.50},
		{1_870, 0.60},
		{3_160, 0.70},
		{10_000, 0.80},
		{100_000, 0.85},
		{1_000_000, 0.90},
		{10_000_000, 0.96},
		{100_000_000, 1.0},
	}
}

// NamedCDF returns a built-in flow-size distribution by workload name.
// The same distributions are checked in as testdata/*.cdf in ParseCDF
// format (a round-trip test pins file and builtin to each other), so
// external tools can consume identical bytes.
func NamedCDF(name string) (CDF, error) {
	switch name {
	case "websearch":
		return WebSearchCDF(), nil
	case "datamining":
		return DataMiningCDF(), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q (want websearch or datamining)", name)
}

// WorkloadNames lists the NamedCDF workloads in presentation order.
func WorkloadNames() []string { return []string{"websearch", "datamining"} }

// ArrivalProcess generates the gaps between batch arrivals of an open-loop
// workload. Implementations must draw from rng in a fixed order that
// depends only on (call sequence, now) — the determinism contract that
// lets the sharded runner pre-draw the identical schedule.
type ArrivalProcess interface {
	// Next returns the gap from the arrival at now to the following one.
	Next(rng *sim.RNG, now sim.Time) sim.Time
}

// Poisson is the memoryless open-loop arrival process: exponential gaps
// with the given mean, matching the paper's §4.2.2 arrivals.
type Poisson struct {
	Mean sim.Time
}

// Next draws one exponential gap.
func (p Poisson) Next(rng *sim.RNG, _ sim.Time) sim.Time { return rng.Exp(p.Mean) }

// Spike is one load spike of a Diurnal process: between At and
// At+Duration the arrival rate is multiplied by Factor.
type Spike struct {
	At       sim.Time
	Duration sim.Time
	Factor   float64
}

// Diurnal is a rate-modulated renewal process approximating diurnal
// traffic: exponential gaps scaled down where the instantaneous rate is
// high. The rate at time t is
//
//	rate(t) = 1 + Amplitude·sin(2πt/Period)
//
// times the product of the factors of any active Spikes, and each gap is
// Exp(Mean)/rate(t). Rates are clamped below at minDiurnalRate so a deep
// trough cannot stall the process.
type Diurnal struct {
	Mean      sim.Time
	Amplitude float64 // in [0, 1); 0 degenerates to Poisson
	Period    sim.Time
	Spikes    []Spike
}

// minDiurnalRate floors the modulation so gaps stay finite and bounded.
const minDiurnalRate = 0.1

// Rate returns the instantaneous rate multiplier at t (≥ minDiurnalRate).
func (d Diurnal) Rate(t sim.Time) float64 {
	r := 1.0
	if d.Amplitude != 0 && d.Period > 0 {
		r += d.Amplitude * math.Sin(2*math.Pi*float64(t)/float64(d.Period))
	}
	for _, s := range d.Spikes {
		if t >= s.At && t < s.At+s.Duration && s.Factor > 0 {
			r *= s.Factor
		}
	}
	if r < minDiurnalRate {
		r = minDiurnalRate
	}
	return r
}

// MaxRate returns an upper bound on Rate over all t (for envelope tests
// and capacity planning): every spike could overlap the diurnal crest.
func (d Diurnal) MaxRate() float64 {
	r := 1 + math.Abs(d.Amplitude)
	for _, s := range d.Spikes {
		if s.Factor > 1 {
			r *= s.Factor
		}
	}
	return r
}

// Next draws one gap: a single exponential draw scaled by the current
// rate. One draw per arrival keeps the RNG stream consumption identical
// between live generation and pre-draw.
func (d Diurnal) Next(rng *sim.RNG, now sim.Time) sim.Time {
	gap := float64(rng.Exp(d.Mean)) / d.Rate(now)
	if gap < 1 {
		gap = 1 // at least one tick, so arrivals can't pile up at one instant
	}
	return sim.Time(gap)
}

// PatternKind labels what a production-mix batch models.
type PatternKind uint8

const (
	// KindPlain is a single point-to-point flow.
	KindPlain PatternKind = iota
	// KindIncast is a partition-aggregate response: FanIn flows from
	// distinct workers converging on one aggregator at the same instant.
	KindIncast
	// KindStorage is a replicated storage write: the same payload sent
	// from one writer to Replicas distinct servers at the same instant.
	KindStorage
	numPatternKinds
)

func (k PatternKind) String() string {
	switch k {
	case KindPlain:
		return "plain"
	case KindIncast:
		return "incast"
	case KindStorage:
		return "storage"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FlowSpec is one pre-determined flow of a production workload: who sends
// how much to whom, when, and as part of what pattern. Flow IDs are
// positional — the i-th spec a Mix emits is flow ID i+1.
type FlowSpec struct {
	At       sim.Time
	Src, Dst *netsim.Host
	// SrcIdx, DstIdx are the endpoints as positions in the host list — the
	// form the fluid engine consumes. Always populated; Src/Dst are nil
	// when the Mix was configured with NumHosts instead of Hosts.
	SrcIdx, DstIdx int32
	Size           int64
	Kind           PatternKind
}

// Mix generates a production-shaped open-loop workload: batches arrive per
// an ArrivalProcess; each batch is a plain flow, an incast job, or a
// replicated storage write, chosen by fraction; flow sizes come from an
// empirical CDF.
//
// Determinism contract: every batch consumes RNG draws in a pinned order —
// pattern selector, then the pattern's own draws (sizes before endpoints),
// then the gap to the next batch. The whole schedule is therefore a pure
// function of (seed, configuration), independent of whether batches are
// consumed one at a time during a live run or pre-drawn up front for the
// sharded runner; MaxFlows truncation drops trailing flows of the final
// batch after its draws are consumed, so the cut cannot shift the stream.
type Mix struct {
	RNG   *sim.RNG
	Hosts []*netsim.Host
	// NumHosts is the host count used when Hosts is nil (index-only
	// generation for the fluid engine). Ignored when Hosts is set.
	NumHosts int
	CDF      CDF
	// Arrivals generates batch gaps; the first batch arrives at time 0.
	Arrivals ArrivalProcess

	// IncastFrac and StorageFrac select pattern kinds per batch; the
	// remainder is plain flows. Both default to 0.
	IncastFrac  float64
	StorageFrac float64
	// FanIn is the incast width (default 8); one CDF draw is the job size,
	// split evenly across workers.
	FanIn int
	// Replicas is the storage replication factor (default 3); each replica
	// receives the full CDF-drawn payload.
	Replicas int

	// MaxFlows stops generation once this many flows have been emitted
	// (mid-batch truncation included). Required: a Mix is open-loop and
	// would otherwise never stop.
	MaxFlows int

	t       sim.Time
	emitted int
	started bool
}

// hostCount returns the endpoint-draw range: len(Hosts), or NumHosts when
// generating index-only.
func (m *Mix) hostCount() int {
	if len(m.Hosts) > 0 {
		return len(m.Hosts)
	}
	return m.NumHosts
}

// host returns the i-th host pointer, or nil in index-only mode.
func (m *Mix) host(i int) *netsim.Host {
	if len(m.Hosts) > 0 {
		return m.Hosts[i]
	}
	return nil
}

func (m *Mix) fanIn() int {
	if m.FanIn <= 0 {
		return 8
	}
	return m.FanIn
}

func (m *Mix) replicas() int {
	if m.Replicas <= 0 {
		return 3
	}
	return m.Replicas
}

// MeanBatchBytes returns the expected payload bytes per batch: storage
// writes carry Replicas copies; plain flows and incast jobs carry one
// CDF-mean payload each.
func (m *Mix) MeanBatchBytes() float64 {
	return m.CDF.Mean() * (1 + m.StorageFrac*float64(m.replicas()-1))
}

// Emitted returns the number of flow specs generated so far.
func (m *Mix) Emitted() int { return m.emitted }

// Done reports whether generation has reached MaxFlows.
func (m *Mix) Done() bool { return m.emitted >= m.MaxFlows }

// NextBatch returns the next batch of flow specs (all sharing one arrival
// instant), or nil when MaxFlows is reached. Specs alias no internal
// state; the caller owns them.
func (m *Mix) NextBatch() []FlowSpec {
	if m.Done() {
		return nil
	}
	if m.started {
		m.t += m.Arrivals.Next(m.RNG, m.t)
	}
	m.started = true

	kind := KindPlain
	u := m.RNG.Float64()
	switch {
	case u < m.IncastFrac:
		kind = KindIncast
	case u < m.IncastFrac+m.StorageFrac:
		kind = KindStorage
	}

	// All endpoint draws are by index so the stream is identical whether
	// the Mix carries netsim hosts (packet engine) or bare counts (fluid).
	nh := m.hostCount()
	var batch []FlowSpec
	switch kind {
	case KindPlain:
		size := m.CDF.Sample(m.RNG)
		src := m.RNG.Intn(nh)
		dst := src
		for dst == src {
			dst = m.RNG.Intn(nh)
		}
		batch = append(batch, FlowSpec{At: m.t, Src: m.host(src), Dst: m.host(dst),
			SrcIdx: int32(src), DstIdx: int32(dst), Size: size, Kind: kind})
	case KindIncast:
		job := m.CDF.Sample(m.RNG)
		fan := m.fanIn()
		per := job / int64(fan)
		if per < 1 {
			per = 1
		}
		agg := m.RNG.Intn(nh)
		used := map[int]bool{agg: true}
		for w := 0; w < fan; w++ {
			src := m.RNG.IntnExcept(nh, agg)
			for used[src] && len(used) < nh {
				src = m.RNG.IntnExcept(nh, agg)
			}
			used[src] = true
			batch = append(batch, FlowSpec{
				At: m.t, Src: m.host(src), Dst: m.host(agg),
				SrcIdx: int32(src), DstIdx: int32(agg), Size: per, Kind: kind})
		}
	case KindStorage:
		size := m.CDF.Sample(m.RNG)
		wr := m.RNG.Intn(nh)
		used := map[int]bool{wr: true}
		for r := 0; r < m.replicas(); r++ {
			dst := m.RNG.IntnExcept(nh, wr)
			for used[dst] && len(used) < nh {
				dst = m.RNG.IntnExcept(nh, wr)
			}
			used[dst] = true
			batch = append(batch, FlowSpec{
				At: m.t, Src: m.host(wr), Dst: m.host(dst),
				SrcIdx: int32(wr), DstIdx: int32(dst), Size: size, Kind: kind})
		}
	}

	// Truncate at exactly MaxFlows — after the batch's draws, so the RNG
	// stream position does not depend on where the cut lands.
	if remain := m.MaxFlows - m.emitted; len(batch) > remain {
		batch = batch[:remain]
	}
	m.emitted += len(batch)
	return batch
}

// PredrawFlows consumes the generator exactly as repeated NextBatch calls
// would and returns the flattened schedule — the sharded runner's planning
// path. Call it instead of NextBatch, never in addition.
func (m *Mix) PredrawFlows() []FlowSpec {
	out := make([]FlowSpec, 0, m.MaxFlows-m.emitted)
	for {
		b := m.NextBatch()
		if b == nil {
			return out
		}
		out = append(out, b...)
	}
}
