package workload

import (
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
)

// FlowFactory starts one transport flow; experiments bind it to
// tcp.StartFlow with the scheme under test.
type FlowFactory func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow

// IDAllocator hands out unique flow IDs for one simulation run.
type IDAllocator struct{ next netsim.FlowID }

// NewIDAllocator returns an allocator starting above base. Varying the base
// across repeated runs varies the flows' port numbers (which are derived
// from the IDs) and therefore their ECMP hash draws.
func NewIDAllocator(base netsim.FlowID) *IDAllocator {
	return &IDAllocator{next: base}
}

// Next returns a fresh flow ID.
func (a *IDAllocator) Next() netsim.FlowID {
	a.next++
	return a.next
}

// AllToAll drives the paper's §4.2.2 workload: flows arrive as a Poisson
// process; each flow picks a uniform random source and a distinct uniform
// random destination, with sizes drawn from a heavy-tailed CDF. Load is
// expressed as the average fraction of each server's access-link rate
// divided by the fabric's oversubscription, matching the paper's
// "average network load relative to the bisection bandwidth".
type AllToAll struct {
	Eng   *sim.Engine
	RNG   *sim.RNG
	Hosts []*netsim.Host
	// NumHosts is the host count used by PredrawIdx when Hosts is nil —
	// the fluid engine plans workloads over bare host indices without
	// constructing netsim hosts at all. Ignored when Hosts is set.
	NumHosts int
	// SrcHosts, when non-empty, restricts senders to this subset (the
	// paper's testbed pattern has one ToR's servers initiate all flows);
	// destinations are still drawn from Hosts.
	SrcHosts []*netsim.Host
	CDF      CDF
	Start    FlowFactory
	IDs      *IDAllocator

	// MeanInterarrival between consecutive flow arrivals (aggregate).
	MeanInterarrival sim.Time
	// MaxFlows stops generating after this many flows (0 = until Stop).
	MaxFlows int

	Flows   []*tcp.Flow
	stopped bool
}

// AggregateInterarrival computes the aggregate Poisson interarrival time for
// a target load, where load is — as the paper reports it — the fraction of
// the fabric's bisection bandwidth consumed by the traffic that actually
// crosses the bisection. With uniform random destinations, interPodFrac of
// the offered bytes cross pods, so the total offered rate is
// load * bisectionBps / interPodFrac. At load 1.0 the aggregation-to-core
// stage is exactly saturated.
func AggregateInterarrival(load float64, bisectionBps int64, interPodFrac float64, meanFlowBytes float64) sim.Time {
	totalBps := load * float64(bisectionBps) / interPodFrac
	flowsPerSec := totalBps / (meanFlowBytes * 8)
	return sim.Time(float64(sim.Second) / flowsPerSec)
}

// Run begins the arrival process.
func (g *AllToAll) Run() { g.arrive() }

// Stop halts new arrivals; in-flight flows continue.
func (g *AllToAll) Stop() { g.stopped = true }

func (g *AllToAll) arrive() {
	if g.stopped || (g.MaxFlows > 0 && len(g.Flows) >= g.MaxFlows) {
		return
	}
	var src *netsim.Host
	if len(g.SrcHosts) > 0 {
		src = g.SrcHosts[g.RNG.Intn(len(g.SrcHosts))]
	} else {
		src = g.Hosts[g.RNG.Intn(len(g.Hosts))]
	}
	dst := src
	for dst == src {
		dst = g.Hosts[g.RNG.Intn(len(g.Hosts))]
	}
	size := g.CDF.Sample(g.RNG)
	f := g.Start(g.IDs.Next(), src, dst, size)
	g.Flows = append(g.Flows, f)
	g.Eng.Schedule(g.RNG.Exp(g.MeanInterarrival), g.arrive)
}

// Arrival is one pre-drawn all-to-all flow arrival: who sends what to whom,
// when. Flow IDs are positional — arrival i corresponds to the (i+1)-th
// ID the generator's allocator would hand out.
type Arrival struct {
	At       sim.Time
	Src, Dst *netsim.Host
	Size     int64
}

// ArrivalIdx is one pre-drawn all-to-all flow arrival by host index — the
// fluid engine's planning unit, requiring no netsim hosts to exist.
type ArrivalIdx struct {
	At       sim.Time
	Src, Dst int32
	Size     int64
}

// Predraw consumes the generator's RNG exactly as n live arrivals would and
// returns them without starting any flows. It lets the sharded runner plan
// the entire workload up front — every start becomes a pre-scheduled event
// on the owning shard's engine — while drawing the identical random stream,
// so the resulting traffic is byte-identical to Run's. Call it instead of
// Run, never in addition (both consume the same stream); Eng, Start, and
// IDs may be nil.
func (g *AllToAll) Predraw(n int) []Arrival {
	if len(g.SrcHosts) == 0 {
		// Delegate to the index-based planner so the two predraw forms are
		// one RNG stream by construction, not by parallel maintenance.
		idx := g.PredrawIdx(n)
		out := make([]Arrival, len(idx))
		for i, a := range idx {
			out[i] = Arrival{At: a.At, Src: g.Hosts[a.Src], Dst: g.Hosts[a.Dst], Size: a.Size}
		}
		return out
	}
	out := make([]Arrival, 0, n)
	var t sim.Time
	for i := 0; i < n; i++ {
		src := g.SrcHosts[g.RNG.Intn(len(g.SrcHosts))]
		dst := src
		for dst == src {
			dst = g.Hosts[g.RNG.Intn(len(g.Hosts))]
		}
		size := g.CDF.Sample(g.RNG)
		out = append(out, Arrival{At: t, Src: src, Dst: dst, Size: size})
		t += g.RNG.Exp(g.MeanInterarrival)
	}
	return out
}

// PredrawIdx is Predraw over bare host indices: the identical RNG draws,
// with sources and destinations as positions in Hosts (or in [0, NumHosts)
// when Hosts is nil). It panics if SrcHosts is set — the restricted-sender
// pattern is pointer-based and has no index form.
func (g *AllToAll) PredrawIdx(n int) []ArrivalIdx {
	if len(g.SrcHosts) > 0 {
		panic("workload: PredrawIdx does not support SrcHosts")
	}
	nh := len(g.Hosts)
	if nh == 0 {
		nh = g.NumHosts
	}
	out := make([]ArrivalIdx, 0, n)
	var t sim.Time
	for i := 0; i < n; i++ {
		src := g.RNG.Intn(nh)
		dst := src
		for dst == src {
			dst = g.RNG.Intn(nh)
		}
		size := g.CDF.Sample(g.RNG)
		out = append(out, ArrivalIdx{At: t, Src: int32(src), Dst: int32(dst), Size: size})
		t += g.RNG.Exp(g.MeanInterarrival)
	}
	return out
}

// Job is one partition–aggregate transaction: n workers respond
// simultaneously to one aggregator; the job completes when the slowest
// response finishes.
type Job struct {
	Flows []*tcp.Flow
	Start sim.Time
}

// Done reports whether every response has completed.
func (j *Job) Done() bool {
	for _, f := range j.Flows {
		if !f.Done() {
			return false
		}
	}
	return true
}

// CompletionTime returns the time of the last flow to finish, minus the
// job's start (the paper's metric in Figure 5).
func (j *Job) CompletionTime() sim.Time {
	var last sim.Time
	for _, f := range j.Flows {
		if f.RecvDone > last {
			last = f.RecvDone
		}
	}
	return last - j.Start
}

// PartitionAggregate drives the paper's §4.2.4 incast workload: jobs arrive
// as a Poisson process; each JobBytes transaction is split evenly across
// FanIn workers spread randomly in the fabric, all responding at once to a
// random aggregator.
type PartitionAggregate struct {
	Eng   *sim.Engine
	RNG   *sim.RNG
	Hosts []*netsim.Host
	Start FlowFactory
	IDs   *IDAllocator

	JobBytes         int64
	FanIn            int
	MeanInterarrival sim.Time
	MaxJobs          int

	Jobs    []*Job
	stopped bool
}

// JobInterarrival computes the Poisson interarrival for partition-aggregate
// jobs at the given load (same load definition as AggregateInterarrival).
func JobInterarrival(load float64, bisectionBps int64, interPodFrac float64, jobBytes int64) sim.Time {
	totalBps := load * float64(bisectionBps) / interPodFrac
	jobsPerSec := totalBps / (float64(jobBytes) * 8)
	return sim.Time(float64(sim.Second) / jobsPerSec)
}

// Run begins the arrival process.
func (g *PartitionAggregate) Run() { g.arrive() }

// Stop halts new arrivals.
func (g *PartitionAggregate) Stop() { g.stopped = true }

func (g *PartitionAggregate) arrive() {
	if g.stopped || (g.MaxJobs > 0 && len(g.Jobs) >= g.MaxJobs) {
		return
	}
	agg := g.RNG.Intn(len(g.Hosts))
	per := g.JobBytes / int64(g.FanIn)
	if per < 1 {
		per = 1
	}
	job := &Job{Start: g.Eng.Now()}
	used := map[int]bool{agg: true}
	for w := 0; w < g.FanIn; w++ {
		// Workers are distinct from the aggregator and, while possible,
		// from each other (with more workers than hosts they repeat).
		src := g.RNG.IntnExcept(len(g.Hosts), agg)
		for used[src] && len(used) < len(g.Hosts) {
			src = g.RNG.IntnExcept(len(g.Hosts), agg)
		}
		used[src] = true
		f := g.Start(g.IDs.Next(), g.Hosts[src], g.Hosts[agg], per)
		job.Flows = append(job.Flows, f)
	}
	g.Jobs = append(g.Jobs, job)
	g.Eng.Schedule(g.RNG.Exp(g.MeanInterarrival), g.arrive)
}

// Validation starts k equal-size flows from the hosts of one ToR to the
// hosts of another ToR simultaneously (Table 1's microbenchmark). srcHosts
// and dstHosts are the two ToRs' host sets; flow i runs from
// srcHosts[i mod len] to dstHosts[i mod len].
func Validation(ids *IDAllocator, start FlowFactory, srcHosts, dstHosts []*netsim.Host, k int, size int64) []*tcp.Flow {
	flows := make([]*tcp.Flow, 0, k)
	for i := 0; i < k; i++ {
		src := srcHosts[i%len(srcHosts)]
		dst := dstHosts[i%len(dstHosts)]
		flows = append(flows, start(ids.Next(), src, dst, size))
	}
	return flows
}
