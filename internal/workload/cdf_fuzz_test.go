package workload

import (
	"math"
	"strings"
	"testing"

	"flowbender/internal/sim"
)

// FuzzCDF feeds arbitrary text through ParseCDF and, for every input the
// parser accepts, checks the distribution's semantic contracts: Validate
// agrees, Quantile is monotone and within the size bounds, Sample stays in
// bounds, and the analytic Mean lands inside [min, max]. Nothing may
// panic either way.
func FuzzCDF(f *testing.F) {
	f.Add("1000 0\n6000 0.5\n20000 1\n")
	f.Add("# web search, truncated\n1000 0.15\n\n1333000 0.9\n3333000 1.0\n")
	f.Add("500 1\n")
	f.Add("1000 nan\n2000 1\n")
	f.Add("1000 0\n2000 0.5\n1500 1\n")   // sizes not increasing
	f.Add("1000 0.9\n2000 0.2\n")         // probabilities not monotone
	f.Add("1000 0\n2000 0.5\n")           // does not end at 1
	f.Add("-5 0.5\n10 1\n")               // negative size
	f.Add("9223372036854775806 0.5\n9223372036854775807 1\n") // near-max sizes
	f.Add("1000\n")                       // wrong field count
	f.Add("abc def\n")
	f.Add("1e3 1\n")                      // float size is rejected
	f.Add("1000 1 # trailing comment\n")

	f.Fuzz(func(t *testing.T, data string) {
		c, err := ParseCDF(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("ParseCDF accepted a CDF that Validate rejects: %v\ninput: %q", err, data)
		}

		minB, maxB := c[0].Bytes, c[len(c)-1].Bytes
		prev := int64(math.MinInt64)
		for i := 0; i <= 100; i++ {
			q := c.Quantile(float64(i) / 100)
			if q < prev {
				t.Fatalf("Quantile not monotone: Q(%v)=%d < %d\ninput: %q", float64(i)/100, q, prev, data)
			}
			if q < minB || q > maxB {
				t.Fatalf("Quantile(%v)=%d outside [%d, %d]\ninput: %q", float64(i)/100, q, minB, maxB, data)
			}
			prev = q
		}
		// Out-of-range arguments clamp rather than misbehave.
		if q := c.Quantile(-1); q != c.Quantile(0) {
			t.Fatalf("Quantile(-1)=%d != Quantile(0)=%d", q, c.Quantile(0))
		}
		if q := c.Quantile(2); q != c.Quantile(1) {
			t.Fatalf("Quantile(2)=%d != Quantile(1)=%d", q, c.Quantile(1))
		}

		mean := c.Mean()
		// The interpolated mean must land inside the support. Allow 1 ulp
		// of slack for the float midpoint arithmetic at int64 extremes.
		lo, hi := float64(minB), float64(maxB)
		if !(mean >= math.Nextafter(lo, math.Inf(-1)) && mean <= math.Nextafter(hi, math.Inf(1))) {
			t.Fatalf("Mean()=%v outside [%d, %d]\ninput: %q", mean, minB, maxB, data)
		}

		rng := sim.NewRNG(1)
		for i := 0; i < 50; i++ {
			if s := c.Sample(rng); s < minB || s > maxB {
				t.Fatalf("Sample()=%d outside [%d, %d]\ninput: %q", s, minB, maxB, data)
			}
		}
	})
}
