// Package workload generates the paper's traffic patterns: the heavy-tailed
// web-search flow-size distribution (modeled after reference [8], the DCTCP
// measurement study), Poisson all-to-all traffic (§4.2.2), synchronized
// partition–aggregate jobs (§4.2.4), the ToR-to-ToR validation flows of
// Table 1, and the TCP-shuffle-plus-UDP hotspot of §4.3.1.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"flowbender/internal/sim"
)

// CDFPoint is one point of an empirical CDF: P(flowsize <= Bytes) = P.
type CDFPoint struct {
	Bytes int64
	P     float64
}

// CDF is an empirical flow-size distribution, sampled by inverse transform
// with linear interpolation between points.
type CDF []CDFPoint

// WebSearchCDF is a heavy-tailed flow-size distribution modeled after the
// production web-search workload of the paper's reference [8] (Alizadeh et
// al., DCTCP): mostly sub-100 KB flows, with the few >1 MB flows carrying
// the large majority of bytes — exactly the regime where ECMP's static
// hashing leaves long-lived collisions for FlowBender to disperse.
func WebSearchCDF() CDF {
	return CDF{
		{1_000, 0},
		{6_000, 0.15},
		{13_000, 0.30},
		{19_000, 0.40},
		{33_000, 0.53},
		{53_000, 0.60},
		{133_000, 0.70},
		{667_000, 0.80},
		{1_333_000, 0.90},
		{3_333_000, 0.95},
		{6_667_000, 0.98},
		{20_000_000, 1.0},
	}
}

// Fixed returns a degenerate CDF: every flow has exactly the given size
// (Figure 8's 1 MB flows and the hotspot shuffle use this).
func Fixed(size int64) CDF { return CDF{{Bytes: size, P: 1}} }

// Validate checks that the CDF is well formed: increasing sizes, monotone
// probabilities from 0-ish to exactly 1.
func (c CDF) Validate() error {
	if len(c) < 1 {
		return fmt.Errorf("workload: CDF needs >= 1 point")
	}
	for i := range c {
		if c[i].Bytes <= 0 {
			return fmt.Errorf("workload: CDF point %d has non-positive size", i)
		}
		// The negated form also rejects NaN, which would otherwise slip
		// through both comparisons and the monotonicity check below.
		if !(c[i].P >= 0 && c[i].P <= 1) {
			return fmt.Errorf("workload: CDF point %d has probability %v", i, c[i].P)
		}
		if i > 0 && (c[i].Bytes <= c[i-1].Bytes || c[i].P < c[i-1].P) {
			return fmt.Errorf("workload: CDF not monotone at point %d", i)
		}
	}
	if c[len(c)-1].P != 1 {
		return fmt.Errorf("workload: CDF must end at P=1")
	}
	return nil
}

// Sample draws a flow size by inverse transform.
func (c CDF) Sample(rng *sim.RNG) int64 {
	return c.Quantile(rng.Float64())
}

// Quantile returns the flow size at cumulative probability u (the inverse
// transform Sample draws from), linearly interpolated between points and
// clamped to [0, 1]. It is non-decreasing in u.
func (c CDF) Quantile(u float64) int64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	i := sort.Search(len(c), func(i int) bool { return c[i].P >= u })
	if i == 0 {
		return c[0].Bytes
	}
	if i == len(c) {
		return c[len(c)-1].Bytes
	}
	lo, hi := c[i-1], c[i]
	if hi.P == lo.P {
		return hi.Bytes
	}
	frac := (u - lo.P) / (hi.P - lo.P)
	q := lo.Bytes + int64(frac*float64(hi.Bytes-lo.Bytes))
	// float64 has a 53-bit mantissa: for sizes past 2^53 the rounded
	// delta can overshoot the segment, so clamp to the bracketing points
	// (this also keeps the result monotone in u).
	if q < lo.Bytes {
		q = lo.Bytes
	}
	if q > hi.Bytes {
		q = hi.Bytes
	}
	return q
}

// ParseCDF reads an empirical flow-size distribution in the format common
// to datacenter simulators: one "<bytes> <cumulative-probability>" pair per
// line, whitespace-separated, with blank lines and #-comments ignored. The
// parsed CDF is validated (strictly increasing sizes, monotone
// probabilities ending at exactly 1) before being returned.
func ParseCDF(r io.Reader) (CDF, error) {
	var c CDF
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: cdf line %d: want \"<bytes> <prob>\", got %q", lineNo, line)
		}
		bytes, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: cdf line %d: bad size %q: %v", lineNo, fields[0], err)
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: cdf line %d: bad probability %q: %v", lineNo, fields[1], err)
		}
		c = append(c, CDFPoint{Bytes: bytes, P: p})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: cdf: %v", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Mean returns the analytic mean of the interpolated distribution.
func (c CDF) Mean() float64 {
	mean := float64(c[0].Bytes) * c[0].P
	for i := 1; i < len(c); i++ {
		dp := c[i].P - c[i-1].P
		// Convert before adding: the int64 sum of two near-max sizes
		// overflows, flipping the midpoint negative.
		mid := (float64(c[i-1].Bytes) + float64(c[i].Bytes)) / 2
		mean += dp * mid
	}
	return mean
}
