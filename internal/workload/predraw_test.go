package workload

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
)

// Predraw must consume the RNG exactly as the live arrival process does:
// same sources, destinations, sizes, and arrival instants, in order.
func TestPredrawMatchesLiveArrivals(t *testing.T) {
	const n = 200
	mkHosts := func(eng *sim.Engine) []*netsim.Host {
		hosts := make([]*netsim.Host, 16)
		for i := range hosts {
			hosts[i] = netsim.NewHost(eng, netsim.NodeID(i), 10_000_000_000, 0)
		}
		return hosts
	}

	for _, srcSubset := range []bool{false, true} {
		// Live run: record each arrival from the Start hook.
		eng := sim.NewEngine()
		hosts := mkHosts(eng)
		type rec struct {
			at       sim.Time
			src, dst netsim.NodeID
			size     int64
		}
		var live []rec
		gen := &AllToAll{
			Eng: eng, RNG: sim.NewRNG(42).Fork("workload"), Hosts: hosts,
			CDF: WebSearchCDF(), IDs: NewIDAllocator(0),
			MeanInterarrival: 50 * sim.Microsecond, MaxFlows: n,
			Start: func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
				live = append(live, rec{at: eng.Now(), src: src.ID(), dst: dst.ID(), size: size})
				return &tcp.Flow{ID: id, Src: src, Dst: dst, Size: size}
			},
		}
		if srcSubset {
			gen.SrcHosts = hosts[:3]
		}
		gen.Run()
		eng.RunUntilIdle()
		if len(live) != n {
			t.Fatalf("live run produced %d arrivals; want %d", len(live), n)
		}

		// Predraw from an identical fork, against hosts of a second build.
		eng2 := sim.NewEngine()
		hosts2 := mkHosts(eng2)
		gen2 := &AllToAll{
			RNG: sim.NewRNG(42).Fork("workload"), Hosts: hosts2,
			CDF: WebSearchCDF(), MeanInterarrival: 50 * sim.Microsecond,
		}
		if srcSubset {
			gen2.SrcHosts = hosts2[:3]
		}
		arr := gen2.Predraw(n)
		for i := range arr {
			if arr[i].At != live[i].at || arr[i].Src.ID() != live[i].src ||
				arr[i].Dst.ID() != live[i].dst || arr[i].Size != live[i].size {
				t.Fatalf("srcSubset=%v arrival %d: predraw {at %d %d->%d size %d} vs live {at %d %d->%d size %d}",
					srcSubset, i,
					arr[i].At, arr[i].Src.ID(), arr[i].Dst.ID(), arr[i].Size,
					live[i].at, live[i].src, live[i].dst, live[i].size)
			}
		}
	}
}
