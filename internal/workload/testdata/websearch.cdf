# Web-search flow-size CDF (DCTCP-style, see workload.WebSearchCDF).
# Format: <bytes> <cumulative probability>
1000 0
6000 0.15
13000 0.30
19000 0.40
33000 0.53
53000 0.60
133000 0.70
667000 0.80
1333000 0.90
3333000 0.95
6667000 0.98
20000000 1.0
