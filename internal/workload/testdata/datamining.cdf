# Data-mining flow-size CDF (VL2-style, tail truncated at 100 MB; see
# workload.DataMiningCDF).
# Format: <bytes> <cumulative probability>
100 0
180 0.10
250 0.20
560 0.30
900 0.40
1100 0.50
1870 0.60
3160 0.70
10000 0.80
100000 0.85
1000000 0.90
10000000 0.96
100000000 1.0
