package routing

import (
	"testing"

	"flowbender/internal/netsim"
)

// benchPacket is a representative inter-pod TCP data segment.
func benchPacket() *netsim.Packet {
	return &netsim.Packet{
		Flow:    7,
		Src:     3,
		Dst:     13,
		SrcPort: 41000,
		DstPort: 80,
		Proto:   netsim.ProtoTCP,
		PathTag: 2,
	}
}

var hashSink uint64

// BenchmarkFlowHashCold measures the full per-switch selector hash with no
// prefix: 16 byte-fold iterations over the flow-constant fields plus the
// per-hop suffix — what every packet paid at every switch before prefix
// caching.
func BenchmarkFlowHashCold(b *testing.B) {
	pkt := benchPacket()
	salt := uint64(0x1234567890abcdef)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hashSink = flowKeyHash(pkt, salt)
	}
}

// BenchmarkFlowHashResumed measures the same hash resumed from a stamped
// prefix (Packet.HashPrefix): only the PathTag and salt words are mixed, the
// flow-constant half having been folded once at the transport.
func BenchmarkFlowHashResumed(b *testing.B) {
	pkt := benchPacket()
	pkt.HashPrefix = FlowHashPrefix(pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto)
	pkt.HashPrefixOK = true
	salt := uint64(0x1234567890abcdef)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hashSink = flowKeyHash(pkt, salt)
	}
}
