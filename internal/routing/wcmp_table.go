package routing

// QuantizeWeights scales ideal (possibly fractional) path weights into
// integer replication counts that fit a forwarding table with at most
// tableEntries slots — the constraint the paper's §4.3.1 highlights: real
// ECMP tables hold few entries, so WCMP weights are represented coarsely,
// and the resulting missubscription is what FlowBender dynamically absorbs.
//
// The result preserves at least one entry per path with positive weight and
// minimizes the largest relative error greedily (largest-remainder method).
func QuantizeWeights(ideal []float64, tableEntries int) []int {
	n := len(ideal)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	if tableEntries < n {
		tableEntries = n // every live path needs at least one entry
	}
	var sum float64
	for _, w := range ideal {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	// Ideal fractional share of the table, floored, with one entry
	// guaranteed per positive-weight path.
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, n)
	used := 0
	for i, w := range ideal {
		if w <= 0 {
			continue
		}
		exact := w / sum * float64(tableEntries)
		fl := int(exact)
		if fl < 1 {
			fl = 1
		}
		out[i] = fl
		used += fl
		rems = append(rems, rem{i, exact - float64(fl)})
	}
	// Distribute leftover entries by largest remainder.
	for used < tableEntries {
		best := -1
		for j, r := range rems {
			if best < 0 || r.frac > rems[best].frac {
				best = j
			}
		}
		if best < 0 {
			break
		}
		out[rems[best].idx]++
		rems[best].frac -= 1
		used++
	}
	return out
}

// WeightError returns the largest relative error between the quantized
// weights and the ideal shares (0 = perfect representation).
func WeightError(ideal []float64, quantized []int) float64 {
	var sumI float64
	var sumQ int
	for _, w := range ideal {
		if w > 0 {
			sumI += w
		}
	}
	for _, q := range quantized {
		sumQ += q
	}
	if sumI == 0 || sumQ == 0 {
		return 0
	}
	var worst float64
	for i := range ideal {
		if ideal[i] <= 0 {
			continue
		}
		want := ideal[i] / sumI
		got := float64(quantized[i]) / float64(sumQ)
		err := (got - want) / want
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	return worst
}
