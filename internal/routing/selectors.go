package routing

import (
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// ECMP is the standard static hash selector: all packets of a flow (for a
// fixed PathTag) take the same port. FlowBender uses this exact selector —
// its adaptivity comes solely from the host changing the PathTag.
type ECMP struct{}

// Select implements netsim.Selector.
func (ECMP) Select(sw *netsim.Switch, pkt *netsim.Packet, eligible []int32) int32 {
	h := flowKeyHash(pkt, switchSalt(sw))
	return eligible[h%uint64(len(eligible))]
}

// Cacheable implements netsim.CacheableSelector: the choice depends only on
// the flow key, PathTag, and the switch's salt, so switches may memoize it.
// RPS (RNG) and DeTail (live queue state) deliberately do not implement
// this, and WCMP is excluded because its Weights map can be mutated without
// the switch observing a change.
func (ECMP) Cacheable() bool { return true }

// RPS is Random Packet Spraying: every packet independently picks a uniform
// random eligible port, maximizing instantaneous balance at the cost of
// heavy reordering.
type RPS struct {
	RNG *sim.RNG
}

// Select implements netsim.Selector.
func (r *RPS) Select(_ *netsim.Switch, _ *netsim.Packet, eligible []int32) int32 {
	return eligible[r.RNG.Intn(len(eligible))]
}

// DeTail is packet-level adaptive routing: each packet takes the eligible
// port with the smallest egress queue. Per the paper's methodology (§4.2) we
// implement the idealized variant that compares the exact occupancy of all
// eligible ports with no added latency, i.e. the best possible DeTail. Ties
// are broken by the flow hash so symmetric load does not synchronize onto
// one port.
type DeTail struct{}

// Select implements netsim.Selector.
func (DeTail) Select(sw *netsim.Switch, pkt *netsim.Packet, eligible []int32) int32 {
	best := eligible[0]
	bestQ := sw.QueueBytes(best)
	nBest := 1
	for _, e := range eligible[1:] {
		q := sw.QueueBytes(e)
		switch {
		case q < bestQ:
			best, bestQ, nBest = e, q, 1
		case q == bestQ:
			nBest++
		}
	}
	if nBest == 1 {
		return best
	}
	// Hash-based tie-break among the minima.
	k := int(flowKeyHash(pkt, switchSalt(sw)) % uint64(nBest))
	for _, e := range eligible {
		if sw.QueueBytes(e) == bestQ {
			if k == 0 {
				return e
			}
			k--
		}
	}
	return best
}

// WCMP is weighted-cost multipathing: a static hash spread over a replicated
// port list, where each eligible port appears in proportion to its
// configured weight. The paper discusses WCMP in §4.3.1 as the mechanism for
// asymmetric topologies; FlowBender composes with it unchanged.
type WCMP struct {
	// Weights maps an egress port number to its integer weight. Eligible
	// ports without an entry default to weight 1; weight 0 removes a port.
	Weights map[int32]int
}

// Select implements netsim.Selector.
func (w *WCMP) Select(sw *netsim.Switch, pkt *netsim.Packet, eligible []int32) int32 {
	total := 0
	for _, e := range eligible {
		total += w.weight(e)
	}
	if total == 0 {
		return eligible[0]
	}
	h := int(flowKeyHash(pkt, switchSalt(sw)) % uint64(total))
	for _, e := range eligible {
		h -= w.weight(e)
		if h < 0 {
			return e
		}
	}
	return eligible[len(eligible)-1]
}

func (w *WCMP) weight(port int32) int {
	if w.Weights == nil {
		return 1
	}
	wt, ok := w.Weights[port]
	if !ok {
		return 1
	}
	return wt
}
