//go:build simdebug

package routing

import (
	"strings"
	"testing"

	"flowbender/internal/netsim"
)

// TestDebugCheckPrefixFires proves the simdebug cross-check catches a packet
// carrying a stale or misstamped hash prefix: flowKeyHash must panic instead
// of silently resuming from the wrong state (which would misroute the flow in
// release builds).
func TestDebugCheckPrefixFires(t *testing.T) {
	pkt := &netsim.Packet{
		Src: 3, Dst: 13, SrcPort: 41000, DstPort: 80, Proto: netsim.ProtoTCP,
	}
	good := FlowHashPrefix(pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto)

	// A correct prefix resumes to exactly the cold hash.
	cold := flowKeyHash(pkt, 42)
	pkt.HashPrefix = good
	pkt.HashPrefixOK = true
	if got := flowKeyHash(pkt, 42); got != cold {
		t.Fatalf("resumed hash %#x != cold hash %#x", got, cold)
	}

	// A corrupted prefix must trip the tripwire.
	pkt.HashPrefix = good ^ 1
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("flowKeyHash accepted a corrupted hash prefix")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "hash-prefix divergence") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	flowKeyHash(pkt, 42)
}
