package routing

import (
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// DiffFlow differentiates short and long flows at the switch, following the
// DiffFlow idea of sending few-packet flows with packet spraying while
// long flows stay on per-flow paths: packets stamped Spray (the transport
// marks every packet of flows below tcp.Config.SprayShortCutoff) pick a
// uniform random eligible port per packet, exactly like RPS; unmarked
// packets use the exact per-flow ECMP hash. Short flows thus get RPS's
// instantaneous balance (their handful of packets rarely reorder), while
// long flows keep ECMP's in-order delivery.
//
// The degenerate configurations collapse to the baselines, and the
// differential tests pin both: a cutoff of 0 sprays nothing and is
// bit-identical to ECMP (no RNG draws at all), an unbounded cutoff sprays
// everything and is bit-identical to RPS when sharing RPS's RNG stream
// (one draw per Select, used identically).
type DiffFlow struct {
	RNG *sim.RNG
}

// Select implements netsim.Selector. Not cacheable: sprayed packets consume
// RNG, and whether a packet sprays is per-packet state.
func (d *DiffFlow) Select(sw *netsim.Switch, pkt *netsim.Packet, eligible []int32) int32 {
	if pkt.Spray {
		return eligible[d.RNG.Intn(len(eligible))]
	}
	h := flowKeyHash(pkt, switchSalt(sw))
	return eligible[h%uint64(len(eligible))]
}
