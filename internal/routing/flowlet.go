package routing

import (
	"math"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// InfiniteGap disables flowlet redraws and table expiry entirely: a Flowlet
// selector with Gap = InfiniteGap is bit-identical to per-flow ECMP (the
// degenerate-config differential test pins this).
const InfiniteGap = sim.Time(math.MaxInt64)

// flowletKey identifies one flowlet-table entry: the flow-constant hash
// prefix plus the fields the ECMP hash would otherwise fold in per packet.
// Keying on (prefix, dst, tag) rather than the raw 5-tuple keeps lookups to
// one word compare and reuses the HashPrefix machinery transports already
// stamp on every packet.
type flowletKey struct {
	prefix uint64
	dst    netsim.NodeID
	tag    uint32
}

// flowletEntry is one tracked flowlet. Entries form an intrusive LRU list
// ordered by last-seen time (head = most recent) and are recycled through a
// free list, so steady-state selection allocates nothing.
type flowletEntry struct {
	key  flowletKey
	last sim.Time // time of the most recent packet of this flowlet
	draw uint64   // 0 = base ECMP choice; otherwise the redraw seed
	port int32    // egress chosen at the last selection (gap tracking)

	prev, next *flowletEntry
}

// flowletState is the per-switch scratch a flowlet selector stores through
// Switch.SetSelectorScratch. It is created lazily on the switch's own
// engine goroutine, so sharded runs never share one across shards.
type flowletState struct {
	table      map[flowletKey]*flowletEntry
	head, tail *flowletEntry // LRU: head = most recently seen
	free       *flowletEntry

	// portEwma is FlowDyn's per-port drain-time estimate in float64
	// nanoseconds of sim.Time (allocated only by FlowDyn).
	portEwma []float64

	// Redraws counts flowlet-boundary path redraws; Evictions counts
	// entries expired from the LRU tail.
	Redraws   int64
	Evictions int64
}

func flowletStateOf(sw *netsim.Switch, dyn bool) *flowletState {
	if st, ok := sw.SelectorScratch().(*flowletState); ok {
		return st
	}
	st := &flowletState{table: make(map[flowletKey]*flowletEntry, 64)}
	if dyn {
		st.portEwma = make([]float64, len(sw.Ports))
	}
	sw.SetSelectorScratch(st)
	return st
}

// Len returns the number of live entries (fuzz harness leak checks).
func (st *flowletState) Len() int { return len(st.table) }

func keyOf(pkt *netsim.Packet) flowletKey {
	prefix := pkt.HashPrefix
	if !pkt.HashPrefixOK {
		prefix = FlowHashPrefix(pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto)
	}
	return flowletKey{prefix: prefix, dst: pkt.Dst, tag: pkt.PathTag}
}

// lookup returns the entry for pkt's flowlet, creating one (draw 0 — the
// base ECMP choice) on first sight.
func (st *flowletState) lookup(pkt *netsim.Packet, now sim.Time) (e *flowletEntry, isNew bool) {
	k := keyOf(pkt)
	if e = st.table[k]; e != nil {
		return e, false
	}
	if e = st.free; e != nil {
		st.free = e.next
		*e = flowletEntry{key: k, last: now}
	} else {
		e = &flowletEntry{key: k, last: now}
	}
	st.table[k] = e
	st.pushHead(e)
	return e, true
}

func (st *flowletState) pushHead(e *flowletEntry) {
	e.prev = nil
	e.next = st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
}

func (st *flowletState) unlink(e *flowletEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// touch moves e to the LRU head (most recently seen).
func (st *flowletState) touch(e *flowletEntry) {
	if st.head == e {
		return
	}
	st.unlink(e)
	st.pushHead(e)
}

// expire evicts entries idle longer than retention from the LRU tail.
// retention < 0 means never expire (the InfiniteGap regime).
func (st *flowletState) expire(now sim.Time, retention sim.Time) {
	if retention < 0 {
		return
	}
	for st.tail != nil && now-st.tail.last > retention {
		e := st.tail
		st.unlink(e)
		delete(st.table, e.key)
		e.next = st.free
		st.free = e
		st.Evictions++
	}
}

// retentionOf derives the table-expiry horizon from a switching gap: long
// enough (4x) that an entry can never be evicted while its flowlet is still
// within the gap, saturating to "never" when 4x would overflow — which is
// what makes Gap = InfiniteGap structurally identical to ECMP.
func retentionOf(gap sim.Time) sim.Time {
	if gap <= 0 || gap > InfiniteGap/4 {
		return -1
	}
	return 4 * gap
}

// flowletPort maps an entry's draw onto the eligible ports. Draw 0 uses the
// exact per-flow ECMP hash; a redraw remixes the hash with the draw seed
// through an avalanche so consecutive redraws are independent.
func flowletPort(sw *netsim.Switch, pkt *netsim.Packet, eligible []int32, draw uint64) int32 {
	h := flowKeyHash(pkt, switchSalt(sw))
	if draw != 0 {
		h ^= draw * 0x9e3779b97f4a7c15
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return eligible[h%uint64(len(eligible))]
}

// Flowlet is flowlet switching with a fixed idle-gap threshold (Kandula et
// al.'s FLARE observation): packets of a flow separated by less than Gap
// stay on the flow's current path; an idle gap of at least Gap opens a new
// flowlet, which redraws the path. Because a gap of one path's worth of
// queueing delay guarantees the old path has drained, redraws at that
// granularity cannot reorder packets. State is per switch (see
// flowletState); the selector is deliberately not cacheable — its choice
// depends on the clock.
type Flowlet struct {
	// Gap is the idle threshold that opens a new flowlet. InfiniteGap
	// never redraws (bit-identical to ECMP); Gap <= 0 redraws on every
	// packet.
	Gap sim.Time
}

// Select implements netsim.Selector.
func (f *Flowlet) Select(sw *netsim.Switch, pkt *netsim.Packet, eligible []int32) int32 {
	st := flowletStateOf(sw, false)
	now := sw.Now()
	e, isNew := st.lookup(pkt, now)
	if !isNew && now-e.last >= f.Gap {
		e.draw = uint64(now) + 1
		st.Redraws++
	}
	e.last = now
	st.touch(e)
	st.expire(now, retentionOf(f.Gap))
	e.port = flowletPort(sw, pkt, eligible, e.draw)
	return e.port
}

// FlowDyn is flowlet switching with a dynamically tracked gap (Bonato et
// al.): instead of one fixed threshold, each egress port maintains an EWMA
// of its drain time (queued bytes over line rate) and the switching gap for
// a flowlet currently pinned to port p is Mult x that estimate — the time a
// packet trailing through p's queue could still be in flight — minus
// however long p has already been idle, clamped to [MinGap, MaxGap]. Ports
// under pressure demand long gaps (safe), drained ports allow short ones
// (agile).
type FlowDyn struct {
	// MinGap and MaxGap clamp the dynamic threshold.
	MinGap sim.Time
	MaxGap sim.Time
	// Mult scales the drain-time estimate into a gap (safety factor).
	Mult float64
	// Gain is the EWMA gain applied to each new drain-time sample.
	Gain float64
}

// NewFlowDyn returns a FlowDyn selector with the default parameters: gap
// clamped to [20us, 1ms], 2x drain-time safety factor, EWMA gain 0.25.
func NewFlowDyn() *FlowDyn {
	return &FlowDyn{
		MinGap: 20 * sim.Microsecond,
		MaxGap: 1 * sim.Millisecond,
		Mult:   2.0,
		Gain:   0.25,
	}
}

// drainTime returns port p's instantaneous queue drain time.
func drainTime(sw *netsim.Switch, p int32) sim.Time {
	port := sw.Ports[p]
	return sim.Time(int64(sw.QueueBytes(p)) * 8 * int64(sim.Second) / port.RateBps)
}

// gapFor computes the switching threshold for a flowlet pinned to port p.
func (f *FlowDyn) gapFor(sw *netsim.Switch, st *flowletState, p int32) sim.Time {
	gap := f.MinGap + sim.Time(f.Mult*st.portEwma[p])
	if gap < f.MinGap || gap > f.MaxGap { // < MinGap catches overflow too
		gap = f.MaxGap
	}
	if last := sw.Ports[p].LastTxEnd; last >= 0 {
		if idle := sw.Now() - last; idle > 0 {
			gap -= idle
		}
	}
	if gap < f.MinGap {
		gap = f.MinGap
	}
	return gap
}

// observe folds port p's current drain time into its EWMA.
func (f *FlowDyn) observe(sw *netsim.Switch, st *flowletState, p int32) {
	s := float64(drainTime(sw, p))
	st.portEwma[p] += f.Gain * (s - st.portEwma[p])
}

// Select implements netsim.Selector.
func (f *FlowDyn) Select(sw *netsim.Switch, pkt *netsim.Packet, eligible []int32) int32 {
	st := flowletStateOf(sw, true)
	now := sw.Now()
	e, isNew := st.lookup(pkt, now)
	if !isNew && now-e.last >= f.gapFor(sw, st, e.port) {
		e.draw = uint64(now) + 1
		st.Redraws++
	}
	e.last = now
	st.touch(e)
	st.expire(now, retentionOf(f.MaxGap))
	e.port = flowletPort(sw, pkt, eligible, e.draw)
	f.observe(sw, st, e.port)
	return e.port
}
