// Package routing implements the multipath port-selection policies the paper
// compares: static hash-based ECMP (the substrate FlowBender rides on),
// per-packet Random Packet Spraying (RPS), DeTail's per-packet adaptive
// least-queued choice, and weighted ECMP (WCMP) for asymmetric fabrics.
package routing

import "flowbender/internal/netsim"

// flowKeyHash hashes the fields commodity switches feed their ECMP engines —
// the 5-tuple plus the paper's flexible field (PathTag) — together with a
// per-switch salt. The salt models the per-device hash seed real switches
// use; without it, consecutive tiers would make correlated choices and
// artificially collapse path diversity.
//
// FNV-1a over the fixed-width fields, followed by a murmur-style avalanche
// finalizer. The finalizer matters: raw FNV's low bits are an affine
// function of the last bytes mixed in, so "hash mod nports" would cycle in
// lockstep with the path tag at every switch — changing V would move the
// forward and reverse paths in a rigid pattern instead of re-drawing them
// independently, which breaks FlowBender's "statistical drift away from bad
// paths" argument (§3.3.2).
func flowKeyHash(pkt *netsim.Packet, salt uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(uint32(pkt.Src))<<32 | uint64(uint32(pkt.Dst)))
	mix(uint64(pkt.SrcPort)<<32 | uint64(pkt.DstPort)<<16 | uint64(pkt.Proto))
	mix(uint64(pkt.PathTag))
	mix(salt)
	// fmix64 avalanche (MurmurHash3 finalizer).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func switchSalt(sw *netsim.Switch) uint64 {
	// Derived purely from the switch's stable identity.
	x := uint64(sw.ID()) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
