// Package routing implements the multipath port-selection policies the paper
// compares: static hash-based ECMP (the substrate FlowBender rides on),
// per-packet Random Packet Spraying (RPS), DeTail's per-packet adaptive
// least-queued choice, and weighted ECMP (WCMP) for asymmetric fabrics.
package routing

import "flowbender/internal/netsim"

// FNV-1a parameters (64-bit).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one 64-bit word into the running FNV-1a state, byte-wise.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// FlowHashPrefix returns the FNV-1a state after folding in the flow-constant
// header fields (Src, Dst, SrcPort, DstPort, Proto) — the switch-independent
// prefix of flowKeyHash. FNV-1a is a sequential byte fold, so resuming from
// this state and mixing the remaining words (PathTag, per-switch salt)
// produces exactly the same hash as the from-scratch computation; equal
// prefixes plus equal suffixes give equal digests by construction.
//
// Transports compute the prefix once per endpoint and stamp it into every
// packet they emit (Packet.HashPrefix/HashPrefixOK), so a packet crossing k
// switches runs the 16 flow-constant mix iterations zero times instead of k.
func FlowHashPrefix(src, dst netsim.NodeID, srcPort, dstPort uint16, proto netsim.Proto) uint64 {
	h := fnvMix(fnvOffset, uint64(uint32(src))<<32|uint64(uint32(dst)))
	return fnvMix(h, uint64(srcPort)<<32|uint64(dstPort)<<16|uint64(proto))
}

// flowKeyHash hashes the fields commodity switches feed their ECMP engines —
// the 5-tuple plus the paper's flexible field (PathTag) — together with a
// per-switch salt. The salt models the per-device hash seed real switches
// use; without it, consecutive tiers would make correlated choices and
// artificially collapse path diversity.
//
// FNV-1a over the fixed-width fields, followed by a murmur-style avalanche
// finalizer. The finalizer matters: raw FNV's low bits are an affine
// function of the last bytes mixed in, so "hash mod nports" would cycle in
// lockstep with the path tag at every switch — changing V would move the
// forward and reverse paths in a rigid pattern instead of re-drawing them
// independently, which breaks FlowBender's "statistical drift away from bad
// paths" argument (§3.3.2).
//
// Packets carrying a valid HashPrefix resume from it instead of re-mixing
// the flow-constant fields (see FlowHashPrefix); under -tags simdebug the
// resumed prefix is cross-checked against a from-scratch recomputation.
func flowKeyHash(pkt *netsim.Packet, salt uint64) uint64 {
	var h uint64
	if pkt.HashPrefixOK {
		debugCheckPrefix(pkt)
		h = pkt.HashPrefix
	} else {
		h = FlowHashPrefix(pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto)
	}
	return PathKeyHash(h, pkt.PathTag, salt)
}

// PathKeyHash resumes the ECMP flow-key hash from a flow-constant prefix
// (see FlowHashPrefix), folding in the path tag and a per-switch salt and
// applying the avalanche finalizer — exactly the digest flowKeyHash computes
// for a packet carrying that prefix and tag at a switch with that salt. The
// fluid engine uses it (with NodeSalt) to reproduce the packet engine's
// per-flow path draws, hash collisions included, without constructing
// packets or switches.
func PathKeyHash(prefix uint64, tag uint32, salt uint64) uint64 {
	h := fnvMix(prefix, uint64(tag))
	h = fnvMix(h, salt)
	// fmix64 avalanche (MurmurHash3 finalizer).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NodeSalt returns the per-device ECMP hash seed of the switch with the
// given node ID — the same value switchSalt derives from a live switch, so
// callers that know a switch's ID arithmetically (the fluid engine derives
// fat-tree IDs from the topology shape) reproduce its hash draws exactly.
func NodeSalt(id netsim.NodeID) uint64 {
	// Derived purely from the switch's stable identity.
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func switchSalt(sw *netsim.Switch) uint64 {
	return NodeSalt(sw.ID())
}
