//go:build !simdebug

package routing

import "flowbender/internal/netsim"

// debugCheckPrefix is a no-op in release builds; with -tags simdebug it
// verifies every resumed hash prefix against a from-scratch recomputation.
func debugCheckPrefix(*netsim.Packet) {}
