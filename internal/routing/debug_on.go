//go:build simdebug

package routing

import (
	"fmt"

	"flowbender/internal/netsim"
)

// debugCheckPrefix cross-checks a packet's carried hash prefix against a
// from-scratch recomputation from its header fields. A divergence means a
// transport stamped the wrong prefix or a stale prefix survived packet
// recycling — either would silently re-route flows in release builds.
func debugCheckPrefix(pkt *netsim.Packet) {
	want := FlowHashPrefix(pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto)
	if pkt.HashPrefix != want {
		panic(fmt.Sprintf(
			"routing: hash-prefix divergence: packet carries %#x, fields (%d->%d %d:%d %v) give %#x — stale or misstamped prefix",
			pkt.HashPrefix, pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.Proto, want))
	}
}
