package routing

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// FuzzFlowletGap drives the flowlet idle-gap detector — both the fixed-gap
// Flowlet selector and FlowDyn's dynamic threshold update — with an
// arbitrary schedule of packet arrivals, time advances, and queue load
// changes, and checks the two safety invariants the schemes rest on:
//
//   - no table leak: the flowlet table never holds more entries than
//     distinct flows offered, and after every selection no entry has idled
//     past the retention horizon, so flow churn cannot grow state without
//     bound;
//   - reordering only across safe gaps: a flow's egress port may change
//     only when its idle gap reached the switching threshold in force at
//     that instant (the fixed Gap, or FlowDyn's per-port drain estimate).
//
// Each op is three bytes: flow index, time advance, and a queue load
// adjustment that feeds FlowDyn's drain-time EWMA.
func FuzzFlowletGap(f *testing.F) {
	// Short gaps, one flow: constant redraw pressure.
	f.Add(false, uint16(10), []byte{0, 1, 200, 0, 200, 200, 0, 1, 200, 0, 255, 200})
	// Classic gap with a mixed flow population and load churn.
	f.Add(false, uint16(200), []byte{1, 5, 10, 2, 5, 70, 1, 80, 20, 3, 0, 30, 1, 200, 90, 2, 255, 0})
	// Gap zero: every packet opens a new flowlet (threshold 0 is always met).
	f.Add(false, uint16(0), []byte{4, 0, 0, 4, 0, 0, 4, 1, 0})
	// FlowDyn with queue buildup and drains across the port set.
	f.Add(true, uint16(0), []byte{0, 2, 1, 0, 2, 2, 1, 2, 3, 0, 50, 65, 0, 2, 4, 1, 255, 80, 0, 255, 5})
	f.Fuzz(func(t *testing.T, dyn bool, gapUs uint16, ops []byte) {
		const nPorts = 8
		const nFlows = 16
		eng := sim.NewEngine()
		sw := netsim.NewSwitch(eng, 1, nPorts, 10_000_000_000, netsim.SwitchConfig{})
		eligible := make([]int32, nPorts)
		for i := range eligible {
			eligible[i] = int32(i)
		}

		var sel netsim.Selector
		var fl *Flowlet
		var fd *FlowDyn
		retention := retentionOf(sim.Time(gapUs) * sim.Microsecond)
		if dyn {
			fd = NewFlowDyn()
			sel = fd
			retention = retentionOf(fd.MaxGap)
		} else {
			fl = &Flowlet{Gap: sim.Time(gapUs) * sim.Microsecond}
			sel = fl
		}

		pkts := make([]*netsim.Packet, nFlows)
		for i := range pkts {
			pkts[i] = &netsim.Packet{
				Src: netsim.NodeID(i), Dst: netsim.NodeID(100 + i%3),
				SrcPort: uint16(1000 + i), DstPort: 80, Proto: netsim.ProtoTCP,
			}
		}
		lastPort := make(map[int]int32)
		queued := make([][]*netsim.Packet, nPorts)

		var now sim.Time
		for i := 0; i+2 < len(ops); i += 3 {
			fi := int(ops[i]) % nFlows
			now += sim.Time(ops[i+1]) * 5 * sim.Microsecond
			eng.Run(now)
			switch op := ops[i+2]; {
			case op < 64: // park an MTU on a port: lengthens the drain estimate
				p := int(op) % nPorts
				pk := &netsim.Packet{Size: 1500}
				sw.Ports[p].Q.Push(pk)
				queued[p] = append(queued[p], pk)
			case op < 96: // drain everything this harness parked on a port
				p := int(op) % nPorts
				for range queued[p] {
					sw.Ports[p].Q.Pop()
				}
				queued[p] = queued[p][:0]
			}

			// Capture the threshold in force for this packet before Select
			// mutates the entry; an evicted-and-recreated entry is a fresh
			// flowlet and exempt from the reorder check (its idle gap already
			// exceeded retention >= the gap).
			pkt := pkts[fi]
			st := flowletStateOf(sw, dyn)
			var threshold, idle sim.Time
			tracked := false
			if e := st.table[keyOf(pkt)]; e != nil {
				tracked = true
				idle = now - e.last
				if dyn {
					threshold = fd.gapFor(sw, st, e.port)
				} else {
					threshold = fl.Gap
				}
			}

			got := sel.Select(sw, pkt, eligible)
			if got < 0 || int(got) >= nPorts {
				t.Fatalf("selected port %d out of range", got)
			}
			if prev, ok := lastPort[fi]; ok && tracked && got != prev && idle < threshold {
				t.Fatalf("flow %d rerouted %d->%d after idle %v < threshold %v (dyn=%v)",
					fi, prev, got, idle, threshold, dyn)
			}
			lastPort[fi] = got

			if n := st.Len(); n > nFlows {
				t.Fatalf("table holds %d entries for %d flows", n, nFlows)
			}
			if retention >= 0 && st.tail != nil && now-st.tail.last > retention {
				t.Fatalf("tail entry idle %v past retention %v", now-st.tail.last, retention)
			}
		}
	})
}
