package routing

import (
	"testing"
	"testing/quick"
)

func TestQuantizeExact(t *testing.T) {
	got := QuantizeWeights([]float64{1, 2, 2, 2}, 7)
	want := []int{1, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if WeightError([]float64{1, 2, 2, 2}, got) != 0 {
		t.Fatal("exact representation has nonzero error")
	}
}

func TestQuantizeCoarse(t *testing.T) {
	// Ideal 1:2:2:2 squeezed into 4 entries: each path keeps >= 1 entry.
	got := QuantizeWeights([]float64{1, 2, 2, 2}, 4)
	total := 0
	for i, q := range got {
		if q < 1 {
			t.Fatalf("path %d lost its entry: %v", i, got)
		}
		total += q
	}
	if total != 4 {
		t.Fatalf("entries used = %d, want 4", total)
	}
	// Coarse tables misrepresent the weights.
	if WeightError([]float64{1, 2, 2, 2}, got) == 0 {
		t.Fatal("4 entries cannot represent 1:2:2:2 exactly")
	}
}

func TestQuantizeMoreEntriesReducesError(t *testing.T) {
	ideal := []float64{1, 3, 5, 7}
	prev := 10.0
	for _, entries := range []int{4, 8, 16, 64, 256} {
		q := QuantizeWeights(ideal, entries)
		err := WeightError(ideal, q)
		if err > prev+1e-9 {
			t.Fatalf("error did not shrink with table size: %d entries -> %v (prev %v)", entries, err, prev)
		}
		prev = err
	}
	if prev > 0.05 {
		t.Fatalf("256 entries still %v error", prev)
	}
}

func TestQuantizeDegenerate(t *testing.T) {
	if QuantizeWeights(nil, 8) != nil {
		t.Fatal("nil ideal should give nil")
	}
	got := QuantizeWeights([]float64{0, 0}, 8)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("all-zero weights: %v", got)
	}
	got = QuantizeWeights([]float64{5}, 1)
	if got[0] != 1 {
		t.Fatalf("single path: %v", got)
	}
}

// Property: total entries <= max(tableEntries, n); every positive path
// keeps at least one; zero-weight paths stay representable.
func TestQuantizeProperty(t *testing.T) {
	f := func(raw []uint8, entries uint8) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		ideal := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			ideal[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		te := int(entries%200) + 1
		q := QuantizeWeights(ideal, te)
		total := 0
		for i := range q {
			if ideal[i] > 0 && q[i] < 1 {
				return false
			}
			if q[i] < 0 {
				return false
			}
			total += q[i]
		}
		limit := te
		if len(raw) > limit {
			limit = len(raw)
		}
		// One guaranteed entry per path can push the total slightly over
		// the requested size, never beyond limit + len(raw).
		return total <= limit+len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
