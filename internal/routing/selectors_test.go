package routing

import (
	"testing"
	"testing/quick"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

func newSwitch(ports int) *netsim.Switch {
	return netsim.NewSwitch(sim.NewEngine(), 500, ports, 10_000_000_000, netsim.SwitchConfig{})
}

func pkt(src, dst netsim.NodeID, sport uint16, tag uint32) *netsim.Packet {
	return &netsim.Packet{Src: src, Dst: dst, SrcPort: sport, DstPort: 5001, PathTag: tag}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	sw := newSwitch(8)
	eligible := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	sel := ECMP{}
	p := pkt(1, 2, 1234, 0)
	first := sel.Select(sw, p, eligible)
	for i := 0; i < 100; i++ {
		if got := sel.Select(sw, p, eligible); got != first {
			t.Fatal("ECMP choice not stable for identical packets")
		}
	}
}

func TestECMPTagChangesMapping(t *testing.T) {
	sw := newSwitch(8)
	eligible := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	sel := ECMP{}
	base := sel.Select(sw, pkt(1, 2, 1234, 0), eligible)
	changed := false
	for tag := uint32(1); tag < 16; tag++ {
		if sel.Select(sw, pkt(1, 2, 1234, tag), eligible) != base {
			changed = true
		}
	}
	if !changed {
		t.Fatal("PathTag has no effect on the ECMP hash")
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	sw := newSwitch(8)
	eligible := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	sel := ECMP{}
	counts := make(map[int32]int)
	const n = 8000
	for i := 0; i < n; i++ {
		p := pkt(netsim.NodeID(i), netsim.NodeID(i*7+3), uint16(i*31), 0)
		counts[sel.Select(sw, p, eligible)]++
	}
	for port, c := range counts {
		if c < n/8/2 || c > n/8*2 {
			t.Fatalf("port %d got %d of %d (poor spread)", port, c, n)
		}
	}
}

func TestECMPPerSwitchDecorrelated(t *testing.T) {
	// Two different switches must not make identical choices for the same
	// flows (salted hash); otherwise tiers collapse diversity.
	a, b := newSwitchID(10, 8), newSwitchID(11, 8)
	eligible := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	sel := ECMP{}
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		p := pkt(netsim.NodeID(i), netsim.NodeID(i+1), uint16(i), 0)
		if sel.Select(a, p, eligible) == sel.Select(b, p, eligible) {
			same++
		}
	}
	if same > n/4 {
		t.Fatalf("switch salts correlated: %d/%d identical choices", same, n)
	}
}

func newSwitchID(id netsim.NodeID, ports int) *netsim.Switch {
	return netsim.NewSwitch(sim.NewEngine(), id, ports, 10_000_000_000, netsim.SwitchConfig{})
}

func TestECMPAlwaysEligible(t *testing.T) {
	sw := newSwitch(16)
	sel := ECMP{}
	f := func(src, dst int32, sport uint16, tag uint32, mask uint8) bool {
		n := int(mask%15) + 2
		eligible := make([]int32, n)
		for i := range eligible {
			eligible[i] = int32(i)
		}
		got := sel.Select(sw, pkt(netsim.NodeID(src), netsim.NodeID(dst), sport, tag), eligible)
		return got >= 0 && int(got) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestECMPTagDrawsDecorrelated guards against a subtle failure mode of weak
// hashes: if the low bits of the hash are an affine function of the tag, the
// forward-path and reverse-path draws cycle in lockstep across tag values,
// and a flow straddling a failed link can NEVER find a (fwd, rev) pair that
// avoids it. FlowBender's failure recovery depends on independent re-draws.
func TestECMPTagDrawsDecorrelated(t *testing.T) {
	fwdSw, revSw := newSwitchID(20, 4), newSwitchID(21, 4)
	eligible := []int32{0, 1, 2, 3}
	sel := ECMP{}
	// Over many flows and 8 tag values each, every (fwd, rev) combination
	// class must occur: in particular "fwd in low half AND rev in low half".
	combos := map[[2]bool]int{}
	for flow := 0; flow < 200; flow++ {
		src, dst := netsim.NodeID(flow), netsim.NodeID(1000+flow)
		sport := uint16(10000 + flow*7)
		for tag := uint32(0); tag < 8; tag++ {
			fwd := sel.Select(fwdSw, pkt(src, dst, sport, tag), eligible)
			rev := sel.Select(revSw, &netsim.Packet{Src: dst, Dst: src, SrcPort: 5001, DstPort: sport, PathTag: tag}, eligible)
			combos[[2]bool{fwd < 2, rev < 2}]++
		}
	}
	total := 200 * 8
	for _, k := range [][2]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		if c := combos[k]; c < total/8 {
			t.Fatalf("combo %v occurs only %d/%d times: fwd/rev draws correlated", k, c, total)
		}
	}
}

func TestRPSUniform(t *testing.T) {
	sw := newSwitch(4)
	sel := &RPS{RNG: sim.NewRNG(1)}
	eligible := []int32{0, 1, 2, 3}
	counts := make(map[int32]int)
	p := pkt(1, 2, 1234, 0)
	const n = 40_000
	for i := 0; i < n; i++ {
		counts[sel.Select(sw, p, eligible)]++
	}
	for port, c := range counts {
		if c < n/4*9/10 || c > n/4*11/10 {
			t.Fatalf("port %d got %d, want ~%d", port, c, n/4)
		}
	}
}

func TestDeTailPicksShortestQueue(t *testing.T) {
	sw := newSwitch(3)
	// Load port 0 and port 2 queues.
	sw.Ports[0].Q.Push(&netsim.Packet{Size: 3000})
	sw.Ports[2].Q.Push(&netsim.Packet{Size: 1000})
	sel := DeTail{}
	got := sel.Select(sw, pkt(1, 2, 1234, 0), []int32{0, 1, 2})
	if got != 1 {
		t.Fatalf("DeTail chose port %d, want the empty port 1", got)
	}
}

func TestDeTailTieBreakIsEligible(t *testing.T) {
	sw := newSwitch(4)
	sel := DeTail{}
	for i := 0; i < 100; i++ {
		got := sel.Select(sw, pkt(netsim.NodeID(i), 2, uint16(i), 0), []int32{1, 3})
		if got != 1 && got != 3 {
			t.Fatalf("tie-break returned ineligible port %d", got)
		}
	}
}

func TestWCMPWeights(t *testing.T) {
	sw := newSwitch(2)
	sel := &WCMP{Weights: map[int32]int{0: 3, 1: 1}}
	eligible := []int32{0, 1}
	counts := make(map[int32]int)
	const n = 8000
	for i := 0; i < n; i++ {
		p := pkt(netsim.NodeID(i), netsim.NodeID(i+9), uint16(i*13), 0)
		counts[sel.Select(sw, p, eligible)]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.2 || ratio > 4 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestWCMPZeroWeightExcludesPort(t *testing.T) {
	sw := newSwitch(2)
	sel := &WCMP{Weights: map[int32]int{0: 0}}
	for i := 0; i < 200; i++ {
		p := pkt(netsim.NodeID(i), 2, uint16(i), 0)
		if got := sel.Select(sw, p, []int32{0, 1}); got != 1 {
			t.Fatalf("zero-weight port selected")
		}
	}
}

func TestWCMPNilWeightsActsLikeECMP(t *testing.T) {
	sw := newSwitch(4)
	sel := &WCMP{}
	counts := make(map[int32]int)
	const n = 4000
	for i := 0; i < n; i++ {
		p := pkt(netsim.NodeID(i), netsim.NodeID(3*i+1), uint16(i*7), 0)
		counts[sel.Select(sw, p, []int32{0, 1, 2, 3})]++
	}
	for port, c := range counts {
		if c < n/4/2 || c > n/4*2 {
			t.Fatalf("port %d got %d of %d", port, c, n)
		}
	}
}
