package tcp_test

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// TestFlowTeardownReleasesHandlers churns many short sequential flows between
// one host pair and checks completed flows release their dispatch slots after
// the 2x RTOMax quiet period: host handler counts must track live flows, not
// total flows ever started.
func TestFlowTeardownReleasesHandlers(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})
	src, dst := ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1]

	// Short RTOMax so the quiet period (2x RTOMax = 20 ms) elapses within
	// the test's virtual time budget.
	cfg := tcp.DefaultConfig()
	cfg.RTOMax = 10 * sim.Millisecond

	const flows = 50
	var peak int
	for i := 0; i < flows; i++ {
		f := tcp.StartFlow(eng, cfg, netsim.FlowID(i+1), src, dst, 50_000)
		eng.Run(eng.Now() + 5*sim.Millisecond)
		if !f.Done() {
			t.Fatalf("flow %d incomplete after 5 ms", i)
		}
		if n := src.HandlerCount() + dst.HandlerCount(); n > peak {
			peak = n
		}
	}
	// Handlers outlive completion by the quiet period, so a few flows'
	// worth may coexist — but the peak must be far below the total churned.
	if peak >= flows {
		t.Fatalf("handler peak %d not bounded by live flows (churned %d)", peak, flows)
	}

	// After the last quiet period expires every slot must be released.
	eng.Run(eng.Now() + 3*cfg.RTOMax)
	if n := src.HandlerCount(); n != 0 {
		t.Errorf("src still holds %d handlers after teardown", n)
	}
	if n := dst.HandlerCount(); n != 0 {
		t.Errorf("dst still holds %d handlers after teardown", n)
	}
}
