// Package tcp implements a packet-level TCP for the simulated fabric:
// NewReno loss recovery (slow start, congestion avoidance, duplicate-ACK
// fast retransmit, fast recovery with partial-ACK retransmission, RTO with a
// 10 ms floor) with DCTCP congestion control on top (per-packet ECN echo,
// marked-fraction EWMA with g = 1/16, proportional window reduction), which
// is the base stack used for every scheme in the paper's evaluation (§4.2).
//
// A flow optionally carries a FlowBender controller (internal/core): the
// sender reports every ACK's ECN echo and every RTT epoch to it, stamps its
// path tag V into all outgoing packets, and notifies it on RTOs — this is
// the entirety of the "less than 50 lines of kernel code" host change the
// paper describes.
package tcp

import (
	"flowbender/internal/core"
	"flowbender/internal/sim"
)

// Config holds the transport parameters shared by the flows of a run.
type Config struct {
	// MSS is the maximum segment (payload) size in bytes. Default 1460.
	MSS int
	// InitCwnd is the initial congestion window in segments. Default 10.
	InitCwnd int
	// RTOMin is the minimum retransmission timeout. Default 10 ms (§4.2).
	RTOMin sim.Time
	// RTOMax caps exponential backoff. Default 1 s.
	RTOMax sim.Time
	// DupThresh is the duplicate-ACK fast-retransmit threshold. Default 3.
	// DeTail runs with fast retransmit disabled (set DisableFastRetx), per
	// the paper.
	DupThresh int
	// DisableFastRetx turns off duplicate-ACK retransmission entirely.
	DisableFastRetx bool
	// MaxCwnd caps the congestion window in bytes, modeling the bounds real
	// stacks impose (receive-window auto-tuning, TCP small queues): without
	// it, a NIC-bottlenecked flow sees neither marks nor drops and slow
	// start would grow the window to the whole flow size, making later
	// congestion reactions arbitrarily sluggish. Default 224 KB (~2x the
	// fabric's 112 KB bandwidth-delay product).
	MaxCwnd int
	// DCTCPg is the marked-fraction EWMA gain. Default 1/16.
	DCTCPg float64
	// DelayedAckCount is the receiver's ACK coalescing factor m: one ACK
	// per m in-order data packets, with DCTCP's two-state ECE machine
	// (RFC 3168 + DCTCP §3.2) emitting an immediate ACK whenever the CE
	// state of arriving packets flips, so the sender's marked-byte estimate
	// stays exact. Out-of-order arrivals are always ACKed immediately.
	// Default 1 (per-packet ACKs, the configuration used for the paper's
	// headline results); set 2 for the stock Linux behaviour.
	DelayedAckCount int
	// DelayedAckTimeout flushes a pending coalesced ACK at this deadline.
	// Default 500 us.
	DelayedAckTimeout sim.Time
	// DisableDCTCP falls back to plain NewReno+ECN halving (not used by the
	// paper's evaluation, available for ablation).
	DisableDCTCP bool
	// Handshake, when true, models connection establishment: the sender
	// transmits data only after a SYN/SYN-ACK exchange (one extra RTT per
	// flow, retried on RTO if lost). Off by default — the paper's
	// evaluation measures data-transfer latency on pre-established
	// connections, and "datacenter operators run the transport they
	// desire" (§3.3.1 footnote).
	Handshake bool
	// FlowBender, when non-nil, attaches a FlowBender controller with this
	// configuration to every flow.
	FlowBender *core.Config
	// FilterStaleFeedback excludes ACKs that echo a previous path tag from
	// FlowBender's marked-fraction accounting, so the one RTT of feedback
	// still in flight from the old path cannot trigger an immediate second
	// reroute. On by default via DefaultConfig; disable for ablation.
	FilterStaleFeedback bool
	// Replicate, when non-nil, enables RepFlow-style short-flow replication:
	// StartFlow transparently launches qualifying flows as two sub-flows
	// whose distinct port numbers give them independent ECMP path draws; the
	// first sub-flow to deliver the full payload wins and the loser is torn
	// down (see Flow.Replicated).
	Replicate *ReplicateConfig
	// SprayShortCutoff, when > 0, stamps Packet.Spray on every packet of
	// flows with Size < SprayShortCutoff. Spray-aware selectors
	// (routing.DiffFlow) route marked packets per packet, RPS-style, while
	// unmarked traffic stays on per-flow ECMP paths.
	SprayShortCutoff int64
}

// ReplicateConfig parameterizes RepFlow replication (Xu & Li): short flows
// are transmitted as ReplicationFactor identical sub-flows on independently
// hashed paths, and the application takes whichever copy completes first —
// trading a bounded amount of extra traffic (short flows carry a tiny
// fraction of datacenter bytes) for an FCT minimum over path draws.
type ReplicateConfig struct {
	// Cutoff: flows with Size < Cutoff bytes are replicated. RepFlow's
	// paper value is 100 KB.
	Cutoff int64
}

// ReplicationFactor is the number of copies a replicated flow transmits.
// RepFlow fixes this at 2: one replica already drives the probability that
// every copy hashes onto a congested path low enough that more copies buy
// almost nothing while doubling the overhead again.
const ReplicationFactor = 2

// DefaultConfig returns the paper's §4.2 transport settings.
func DefaultConfig() Config {
	c := Config{FilterStaleFeedback: true}
	return c.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	if c.RTOMin == 0 {
		c.RTOMin = 10 * sim.Millisecond
	}
	if c.RTOMax == 0 {
		c.RTOMax = 1 * sim.Second
	}
	if c.DupThresh == 0 {
		c.DupThresh = 3
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 224 * 1024
	}
	if c.DCTCPg == 0 {
		c.DCTCPg = 1.0 / 16.0
	}
	if c.DelayedAckCount == 0 {
		c.DelayedAckCount = 1
	}
	if c.DelayedAckTimeout == 0 {
		c.DelayedAckTimeout = 500 * sim.Microsecond
	}
	return c
}
