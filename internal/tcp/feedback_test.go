package tcp

import (
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// craftedAck builds an ACK as the receiver would send it.
func craftedAck(f *Flow, ackNo int64, ece bool, tag uint32) *netsim.Packet {
	return &netsim.Packet{
		Flow: f.ID, Src: f.Dst.ID(), Dst: f.Src.ID(),
		Proto: netsim.ProtoTCP, Kind: netsim.KindAck,
		Seq: ackNo, Size: netsim.HeaderBytes, ECT: true,
		ECE: ece, EchoTS: -1, PathTag: tag,
	}
}

// isolatedSender starts a flow whose packets go nowhere, so tests can feed
// the sender hand-crafted ACKs.
func isolatedSender(t *testing.T, cfg Config) (*sim.Engine, *Flow) {
	t.Helper()
	eng := sim.NewEngine()
	blackhole := devNullDevice{}
	src := netsim.NewHost(eng, 0, 10_000_000_000, 0)
	dst := netsim.NewHost(eng, 1, 10_000_000_000, 0)
	src.NIC.Link = netsim.Link{To: blackhole}
	dst.NIC.Link = netsim.Link{To: blackhole}
	f := StartFlow(eng, cfg, 1, src, dst, 1_000_000)
	eng.Run(10 * sim.Microsecond) // let the initial window leave
	return eng, f
}

type devNullDevice struct{}

func (devNullDevice) ID() netsim.NodeID           { return 99 }
func (devNullDevice) Receive(*netsim.Packet, int) {}

func TestStaleFeedbackFiltered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowBender = &core.Config{} // deterministic, tag starts at 0
	if !cfg.FilterStaleFeedback {
		t.Fatal("default config should filter stale feedback")
	}
	eng, f := isolatedSender(t, cfg)
	s := f.Sender()

	// ACKs echoing a stale tag must not be fed to FlowBender: the epoch
	// closes with zero observations and is not counted.
	s.Deliver(craftedAck(f, 1460, true, 7)) // current tag is 0
	eng.Run(eng.Now() + sim.Microsecond)
	if got := f.FlowBenderStats().Epochs; got != 0 {
		t.Fatalf("stale-tag ACK counted: epochs = %d", got)
	}

	// Matching-tag ACKs are counted (and an all-marked epoch reroutes).
	// The epoch closes once the cumulative ACK passes the sndNxt recorded
	// at the previous epoch boundary (the initial window), so acknowledge
	// past it.
	s.Deliver(craftedAck(f, 20_000, true, s.PathTag()))
	eng.Run(eng.Now() + sim.Microsecond)
	st := f.FlowBenderStats()
	if st.Epochs != 1 {
		t.Fatalf("matching-tag ACK not counted: epochs = %d", st.Epochs)
	}
	if st.Reroutes != 1 {
		t.Fatalf("fully marked epoch should reroute: %+v", st)
	}
}

func TestStaleFeedbackUnfilteredWhenDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FilterStaleFeedback = false
	cfg.FlowBender = &core.Config{}
	eng, f := isolatedSender(t, cfg)

	f.Sender().Deliver(craftedAck(f, 1460, true, 7))
	eng.Run(eng.Now() + sim.Microsecond)
	if got := f.FlowBenderStats().Epochs; got != 1 {
		t.Fatalf("unfiltered mode ignored the ACK: epochs = %d", got)
	}
}

func TestECNCutProportionalToAlpha(t *testing.T) {
	// With alpha ~ 0 the ECN cut is tiny; a plain-ECN (DisableDCTCP)
	// sender halves instead.
	for _, dctcp := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.DisableDCTCP = !dctcp
		eng, f := isolatedSender(t, cfg)
		s := f.Sender()
		before := s.Cwnd()
		s.Deliver(craftedAck(f, 1460, true, 0))
		eng.Run(eng.Now() + sim.Microsecond)
		after := s.Cwnd()
		// The new-ack growth adds <= 2 MSS before the cut applies.
		if dctcp {
			// alpha after one fully-marked epoch = g = 1/16; cut = alpha/2.
			if after < before*0.9 {
				t.Fatalf("DCTCP cut too deep: %v -> %v", before, after)
			}
		} else {
			if after > before*0.7 {
				t.Fatalf("plain ECN did not halve: %v -> %v", before, after)
			}
		}
	}
}
