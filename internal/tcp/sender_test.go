package tcp

import (
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// tamper sits between the two hosts and lets tests drop or inspect packets
// in either direction.
type tamper struct {
	eng  *sim.Engine
	a, b *netsim.Host
	// drop returns true to discard the packet.
	drop func(pkt *netsim.Packet) bool
	// seen observes every packet that passes.
	seen func(pkt *netsim.Packet)
}

func (t *tamper) ID() netsim.NodeID { return 99 }

func (t *tamper) Receive(pkt *netsim.Packet, _ int) {
	if t.seen != nil {
		t.seen(pkt)
	}
	if t.drop != nil && t.drop(pkt) {
		return
	}
	if pkt.Dst == t.a.ID() {
		t.a.Receive(pkt, 0)
	} else {
		t.b.Receive(pkt, 0)
	}
}

// pipe builds hostA <-> tamper <-> hostB at 10 Gbps with no host delay.
func pipe(eng *sim.Engine) (*netsim.Host, *netsim.Host, *tamper) {
	const rate = 10_000_000_000
	a := netsim.NewHost(eng, 0, rate, 0)
	b := netsim.NewHost(eng, 1, rate, 0)
	tm := &tamper{eng: eng, a: a, b: b}
	a.NIC.Link = netsim.Link{To: tm}
	b.NIC.Link = netsim.Link{To: tm}
	return a, b, tm
}

func TestBasicTransferAndCompletion(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 100_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.SendDone < f.RecvDone {
		t.Fatal("sender finished before receiver had the data")
	}
	if f.Sender().Retransmits != 0 || f.Sender().Timeouts != 0 {
		t.Fatal("retransmissions on a clean pipe")
	}
	if f.Receiver().AcksSent != f.Receiver().DataPackets {
		t.Fatal("per-packet ACKing violated")
	}
}

func TestSingleLossFastRetransmit(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	dropped := false
	tm.drop = func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.KindData && pkt.Seq == 14600 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 300_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete after a single loss")
	}
	s := f.Sender()
	if s.FastRetx != 1 {
		t.Fatalf("FastRetx = %d, want 1", s.FastRetx)
	}
	if s.Timeouts != 0 {
		t.Fatalf("single mid-window loss should not RTO (timeouts=%d)", s.Timeouts)
	}
	if s.Retransmits != 1 {
		t.Fatalf("SACK recovery should resend exactly the hole: retx=%d", s.Retransmits)
	}
	if s.SpuriousUndo != 0 {
		t.Fatal("genuine loss must not be undone")
	}
}

func TestBurstLossRecoversViaSACK(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	lost := map[int64]bool{14600: true, 16060: true, 20440: true}
	tm.drop = func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.KindData && lost[pkt.Seq] && !pkt.Retx {
			delete(lost, pkt.Seq)
			return true
		}
		return false
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 300_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete after burst loss")
	}
	if f.Sender().Retransmits != 3 {
		t.Fatalf("retx = %d, want exactly the 3 holes", f.Sender().Retransmits)
	}
}

func TestTailLossTimesOut(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	var lastData int64 = -1
	tm.drop = func(pkt *netsim.Packet) bool {
		// Drop the final segment's first transmission: no dupacks follow,
		// so only the RTO can recover it.
		if pkt.Kind == netsim.KindData && !pkt.Retx && pkt.Seq+int64(pkt.Payload) == 100_000 {
			lastData = pkt.Seq
			return true
		}
		return false
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 100_000)
	eng.Run(sim.Second)
	if lastData < 0 {
		t.Fatal("test never saw the last segment")
	}
	if !f.Done() {
		t.Fatal("flow incomplete after tail loss")
	}
	if f.Sender().Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", f.Sender().Timeouts)
	}
	// RTO floor: completion must be >= 10 ms.
	if f.FCT() < 10*sim.Millisecond {
		t.Fatalf("FCT %v below RTOmin", f.FCT())
	}
}

func TestECNMarkCutsWindowOncePerRTT(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	markFrom := int64(50_000)
	tm.seen = func(pkt *netsim.Packet) {
		if pkt.Kind == netsim.KindData && pkt.Seq >= markFrom && pkt.Seq < markFrom+30_000 {
			pkt.CE = true
		}
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 300_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.Receiver().MarkedData == 0 {
		t.Fatal("no marks observed")
	}
	if f.Sender().Alpha() == 0 {
		t.Fatal("DCTCP alpha never updated despite marks")
	}
}

func TestDCTCPAlphaConvergesToMarkRate(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	// Mark every packet: alpha must converge toward 1.
	tm.seen = func(pkt *netsim.Packet) {
		if pkt.Kind == netsim.KindData {
			pkt.CE = true
		}
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 2_000_000)
	eng.Run(10 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if got := f.Sender().Alpha(); got < 0.8 {
		t.Fatalf("alpha = %v after universal marking, want near 1", got)
	}
}

func TestFlowBenderTimeoutChangesTag(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	cfg := DefaultConfig()
	cfg.FlowBender = &core.Config{} // deterministic tag cycling
	blackhole := true
	tm.drop = func(pkt *netsim.Packet) bool {
		// Kill everything until the sender times out once.
		return blackhole
	}
	f := StartFlow(eng, cfg, 1, a, b, 50_000)
	eng.Run(15 * sim.Millisecond) // one RTOmin
	if f.Sender().Timeouts == 0 {
		t.Fatal("no timeout under blackhole")
	}
	if got := f.FlowBenderStats().TimeoutReroutes; got == 0 {
		t.Fatal("timeout did not reroute")
	}
	blackhole = false
	eng.Run(5 * sim.Second)
	if !f.Done() {
		t.Fatal("flow did not recover after blackhole lifted")
	}
}

func TestReorderingDoesNotRetransmit(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	// Delay one packet by 100 us: it arrives ~70 positions late at 10 Gbps.
	delayed := false
	tm.drop = func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.KindData && pkt.Seq == 29200 && !delayed {
			delayed = true
			cp := *pkt
			tm.eng.Schedule(100*sim.Microsecond, func() { tm.b.Receive(&cp, 0) })
			return true // swallow the original; the copy is the "late" one
		}
		return false
	}
	cfg := DefaultConfig()
	f := StartFlow(eng, cfg, 1, a, b, 1_000_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.OutOfOrder() == 0 {
		t.Fatal("reordering not observed by receiver")
	}
	// With DSACK undo and adaptive dupthresh the disturbance must not leave
	// lasting damage: at most one spurious episode, fully undone.
	s := f.Sender()
	if s.FastRetx > 1 {
		t.Fatalf("FastRetx = %d for a single reordered packet", s.FastRetx)
	}
	if s.FastRetx == 1 && s.SpuriousUndo != 1 {
		t.Fatalf("spurious retransmit not undone (undo=%d)", s.SpuriousUndo)
	}
}

func TestAdaptiveDupThreshRaises(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	delayCount, nData := 0, 0
	tm.drop = func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.KindData && !pkt.Retx {
			nData++
			if nData%50 == 0 && delayCount < 5 {
				delayCount++
				cp := *pkt
				tm.eng.Schedule(50*sim.Microsecond, func() { tm.b.Receive(&cp, 0) })
				return true
			}
		}
		return false
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 1_000_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if got := f.Sender().dynDupThresh; got <= 3 {
		t.Fatalf("dynDupThresh = %d, want raised above 3 after repeated reordering", got)
	}
}

func TestDisableFastRetxNeverFastRetransmits(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	dropped := false
	tm.drop = func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.KindData && pkt.Seq == 14600 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	cfg := DefaultConfig()
	cfg.DisableFastRetx = true // DeTail's stack
	f := StartFlow(eng, cfg, 1, a, b, 200_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.Sender().FastRetx != 0 {
		t.Fatal("fast retransmit fired despite DisableFastRetx")
	}
	if f.Sender().Timeouts == 0 {
		t.Fatal("loss must be recovered by RTO when fast retransmit is off")
	}
}

func TestMaxCwndBound(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	cfg := DefaultConfig()
	cfg.MaxCwnd = 64 * 1024
	f := StartFlow(eng, cfg, 1, a, b, 5_000_000)
	var maxSeen float64
	var tick func()
	tick = func() {
		if !f.Done() {
			if c := f.Sender().Cwnd(); c > maxSeen {
				maxSeen = c
			}
			eng.Schedule(100*sim.Microsecond, tick)
		}
	}
	eng.Schedule(0, tick)
	eng.Run(30 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if maxSeen > 64*1024 {
		t.Fatalf("cwnd %v exceeded MaxCwnd", maxSeen)
	}
}

func TestRTTEstimation(t *testing.T) {
	eng := sim.NewEngine()
	const rate = 10_000_000_000
	a := netsim.NewHost(eng, 0, rate, 10*sim.Microsecond)
	b := netsim.NewHost(eng, 1, rate, 10*sim.Microsecond)
	tm := &tamper{eng: eng, a: a, b: b}
	a.NIC.Link = netsim.Link{To: tm, Delay: 5 * sim.Microsecond}
	b.NIC.Link = netsim.Link{To: tm, Delay: 5 * sim.Microsecond}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 500_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	srtt := f.Sender().SRTT()
	// Baseline RTT = 2*(10+10+5) us = 50 us plus serialization/queueing.
	if srtt < 50*sim.Microsecond || srtt > 2*sim.Millisecond {
		t.Fatalf("SRTT = %v, implausible", srtt)
	}
	if got := f.Sender().RTO(); got < 10*sim.Millisecond {
		t.Fatalf("RTO %v below the 10 ms floor", got)
	}
}

func TestFlowBytesConservation(t *testing.T) {
	// Every byte is delivered exactly once to the application even under
	// random loss.
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	rng := sim.NewRNG(123)
	tm.drop = func(pkt *netsim.Packet) bool {
		return pkt.Kind == netsim.KindData && rng.Float64() < 0.02
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 2_000_000)
	eng.Run(60 * sim.Second)
	if !f.Done() {
		t.Fatalf("flow incomplete under 2%% loss: timeouts=%d", f.Sender().Timeouts)
	}
}

func TestSubMSSFlow(t *testing.T) {
	// A flow smaller than one segment completes in a single packet.
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	var dataPkts int
	tm.seen = func(pkt *netsim.Packet) {
		if pkt.Kind == netsim.KindData {
			dataPkts++
			if pkt.Payload != 700 {
				t.Errorf("payload = %d, want 700", pkt.Payload)
			}
		}
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 700)
	eng.Run(sim.Second)
	if !f.Done() || dataPkts != 1 {
		t.Fatalf("done=%v dataPkts=%d", f.Done(), dataPkts)
	}
}

func TestNonAlignedLastSegment(t *testing.T) {
	// 10000 bytes = 6 full segments + 1240-byte tail.
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	var sizes []int
	tm.seen = func(pkt *netsim.Packet) {
		if pkt.Kind == netsim.KindData {
			sizes = append(sizes, pkt.Payload)
		}
	}
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 10_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 10_000 {
		t.Fatalf("bytes on wire = %d", total)
	}
	if last := sizes[len(sizes)-1]; last != 10_000%1460 {
		t.Fatalf("tail segment = %d", last)
	}
}
