package tcp

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

func TestFCTPanicsWhenIncomplete(t *testing.T) {
	f := &Flow{RecvDone: -1}
	defer func() {
		if recover() == nil {
			t.Fatal("FCT on an incomplete flow did not panic")
		}
	}()
	_ = f.FCT()
}

func TestFlowAccessors(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	f := StartFlow(eng, DefaultConfig(), 42, a, b, 10_000)
	if f.Sender() == nil || f.Receiver() == nil {
		t.Fatal("endpoints missing")
	}
	if f.Done() {
		t.Fatal("done before running")
	}
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.FCT() <= 0 {
		t.Fatal("non-positive FCT")
	}
	if f.DataPackets() == 0 {
		t.Fatal("no data packets recorded")
	}
	// No FlowBender attached: stats are zero.
	if st := f.FlowBenderStats(); st.Reroutes != 0 || st.Epochs != 0 {
		t.Fatalf("phantom FlowBender stats: %+v", st)
	}
}

func TestOnCompleteCallback(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 10_000)
	var at sim.Time = -1
	f.OnComplete = func(fl *Flow) { at = eng.Now() }
	eng.Run(sim.Second)
	if at < 0 {
		t.Fatal("OnComplete never fired")
	}
	if at != f.RecvDone {
		t.Fatalf("OnComplete at %v, RecvDone %v", at, f.RecvDone)
	}
}

func TestPortDerivation(t *testing.T) {
	// Distinct flow IDs must get distinct source ports (hash entropy).
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	seen := map[uint16]bool{}
	dups := 0
	for i := 1; i <= 200; i++ {
		f := StartFlow(eng, DefaultConfig(), netsim.FlowID(i), a, b, 100)
		p := f.sender.srcPort
		if seen[p] {
			dups++
		}
		seen[p] = true
		a.Unregister(f.ID)
		b.Unregister(f.ID)
	}
	if dups > 4 {
		t.Fatalf("%d duplicate source ports in 200 flows", dups)
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	f := StartFlow(eng, DefaultConfig(), 1, a, b, 0)
	eng.Run(sim.Millisecond)
	// A zero-byte flow has nothing to deliver; the sender is trivially done.
	if f.SendDone >= 0 && f.Sender().Retransmits > 0 {
		t.Fatal("zero-byte flow retransmitted")
	}
}
