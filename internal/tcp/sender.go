package tcp

import (
	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
)

// Sender is the transmitting endpoint of a flow: NewReno loss recovery with
// DCTCP congestion control, optionally steered by a FlowBender controller.
type Sender struct {
	eng  *sim.Engine
	cfg  Config
	flow *Flow
	fb   *core.FlowBender

	srcPort, dstPort uint16
	mss              int64
	// hashPrefix is the flow-constant selector hash state stamped into every
	// emitted packet (see routing.FlowHashPrefix).
	hashPrefix uint64

	// Window state (bytes).
	cwnd     float64
	ssthresh float64
	sndUna   int64
	sndNxt   int64
	maxSent  int64 // highest byte ever transmitted (retransmission detection)

	// Loss recovery (SACK-based fast recovery, RFC 6675 in spirit).
	dupAcks      int
	dynDupThresh int // adaptive reordering window in segments (Linux-style)
	inRecovery   bool
	recover      int64
	retxNext     int64       // next candidate byte for hole retransmission
	sacked       intervalSet // receiver-reported blocks above sndUna

	// Spurious-retransmission undo (RFC 2883 DSACK, Linux-style): when every
	// retransmission of a recovery episode turns out to be a duplicate, the
	// window reduction is reverted. Reordering caused by a FlowBender path
	// change routinely trips fast retransmit; without undo each reroute
	// would permanently halve the window.
	undoValid    bool
	undoCwnd     float64
	undoSsthresh float64
	retxEpisode  int64
	dsackEpisode int64

	// RTT estimation / RTO (RFC 6298 shape).
	srtt    sim.Time
	rttvar  sim.Time
	rto     sim.Time
	backoff int
	timer   *sim.Event
	// Prebuilt timer callbacks, so (re)arming the RTO on every ACK does not
	// allocate a closure.
	timeoutFn, synFn func()

	// DCTCP state. Alpha is estimated over BYTES acknowledged per RTT
	// epoch, which stays exact under delayed ACKs because the receiver's
	// ECE state machine guarantees each cumulative ACK's ECE applies to
	// every byte it covers.
	alpha       float64
	ackedBytes  int64 // bytes acked this RTT epoch
	markedBytes int64 // of which were acked with ECE set
	epochEnd    int64 // sequence closing the current epoch
	cwrEnd      int64 // one-reduction-per-window guard

	// Handshake state (only used when cfg.Handshake is set).
	established bool

	// spray marks every emitted packet for per-packet selection (short
	// flows under Config.SprayShortCutoff; see routing.DiffFlow).
	spray bool
	// aborted permanently silences the sender (the losing sub-flow of a
	// replicated pair); see Abort.
	aborted bool

	// Counters.
	Retransmits  int64
	FastRetx     int64
	Timeouts     int64
	AcksReceived int64
	SpuriousUndo int64
	SynRetries   int64

	// Outage/recovery tracking (§3.3.2's time-to-recover): outageStart is
	// the virtual time of the first RTO of the current outage episode, or -1
	// when the flow is healthy. The episode closes on the next cumulative
	// ACK advance.
	outageStart sim.Time
	recovery    RecoveryStats
}

// RecoveryStats aggregates a flow's outage episodes: an episode opens at the
// first RTO after healthy operation and closes when the next cumulative ACK
// arrives (data flowing again). The duration is the paper's §3.3.2
// time-to-recover — how long the flow was stalled before rerouting (or the
// fabric healing) let it make progress again.
type RecoveryStats struct {
	// Count is the number of completed outage episodes.
	Count int64
	// Total is the summed duration of completed episodes.
	Total sim.Time
	// Max is the longest completed episode.
	Max sim.Time
}

// Mean returns the mean episode duration (0 when no episode completed).
func (r RecoveryStats) Mean() sim.Time {
	if r.Count == 0 {
		return 0
	}
	return r.Total / sim.Time(r.Count)
}

func newSender(eng *sim.Engine, cfg Config, flow *Flow, srcPort, dstPort uint16) *Sender {
	s := &Sender{
		eng:     eng,
		cfg:     cfg,
		flow:    flow,
		srcPort: srcPort,
		dstPort: dstPort,
		mss:     int64(cfg.MSS),
	}
	if cfg.FlowBender != nil {
		s.fb = core.New(*cfg.FlowBender)
	}
	s.hashPrefix = routing.FlowHashPrefix(flow.Src.ID(), flow.Dst.ID(), srcPort, dstPort, netsim.ProtoTCP)
	s.spray = cfg.SprayShortCutoff > 0 && flow.Size < cfg.SprayShortCutoff
	s.cwnd = float64(int64(cfg.InitCwnd) * s.mss)
	s.ssthresh = 1 << 40 // effectively unbounded until first loss signal
	s.rto = cfg.RTOMin
	s.dynDupThresh = cfg.DupThresh
	s.outageStart = -1
	s.timeoutFn = s.onTimeout
	s.synFn = s.onSynTimeout
	return s
}

// RecoveryStats returns the flow's completed outage episodes.
func (s *Sender) RecoveryStats() RecoveryStats { return s.recovery }

// InOutage reports whether the sender is currently inside an outage episode
// (an RTO fired and no ACK has advanced since).
func (s *Sender) InOutage() bool { return s.outageStart >= 0 }

func (s *Sender) start() {
	s.epochEnd = 0
	s.established = !s.cfg.Handshake
	if !s.established {
		s.sendSyn()
		return
	}
	s.trySend()
}

// sendSyn (re)transmits the connection-opening segment and arms the RTO.
func (s *Sender) sendSyn() {
	syn := s.flow.Src.NewPacket()
	syn.Flow = s.flow.ID
	syn.Src = s.flow.Src.ID()
	syn.Dst = s.flow.Dst.ID()
	syn.SrcPort = s.srcPort
	syn.DstPort = s.dstPort
	syn.Proto = netsim.ProtoTCP
	syn.Kind = netsim.KindSyn
	syn.HashPrefix = s.hashPrefix
	syn.HashPrefixOK = true
	syn.PathTag = s.PathTag()
	syn.Spray = s.spray
	syn.Size = netsim.HeaderBytes
	syn.ECT = true
	syn.SentAt = s.eng.Now()
	syn.EchoTS = -1
	s.flow.Src.Send(syn)
	s.cancelTimer()
	d := s.rto << s.backoff
	if d > s.cfg.RTOMax {
		d = s.cfg.RTOMax
	}
	s.timer = s.eng.Schedule(d, s.synFn)
}

// onSynTimeout retransmits a lost SYN with exponential backoff.
func (s *Sender) onSynTimeout() {
	s.timer = nil
	if s.established || s.aborted {
		return
	}
	s.SynRetries++
	if s.backoff < 16 {
		s.backoff++
	}
	// A lost SYN is indistinguishable from a broken path: re-draw V,
	// exactly as data RTOs do (§3.3.2).
	if s.fb != nil {
		s.fb.OnTimeout()
	}
	s.sendSyn()
}

// Cwnd returns the current congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Alpha returns DCTCP's current marked-fraction estimate.
func (s *Sender) Alpha() float64 { return s.alpha }

// PathTag returns the current FlowBender tag (0 without FlowBender).
func (s *Sender) PathTag() uint32 {
	if s.fb == nil {
		return 0
	}
	return s.fb.PathTag()
}

// trySend emits new segments while the window allows. When re-walking
// previously sent data (after an RTO), SACKed ranges are skipped.
func (s *Sender) trySend() {
	if !s.established || s.aborted {
		return
	}
	if max := float64(s.cfg.MaxCwnd); s.cwnd > max {
		s.cwnd = max
	}
	for s.sndNxt < s.flow.Size && float64(s.sndNxt-s.sndUna) < s.cwnd {
		if s.sndNxt < s.maxSent {
			s.sndNxt = s.sacked.nextUncovered(s.sndNxt)
			if s.sndNxt >= s.flow.Size {
				break
			}
		}
		n := s.mss
		if rem := s.flow.Size - s.sndNxt; rem < n {
			n = rem
		}
		s.emit(s.sndNxt, int(n), s.sndNxt < s.maxSent)
		s.sndNxt += n
		if s.sndNxt > s.maxSent {
			s.maxSent = s.sndNxt
		}
	}
	s.armTimer()
}

func (s *Sender) emit(seq int64, payload int, retx bool) {
	pkt := s.flow.Src.NewPacket()
	pkt.Flow = s.flow.ID
	pkt.Src = s.flow.Src.ID()
	pkt.Dst = s.flow.Dst.ID()
	pkt.SrcPort = s.srcPort
	pkt.DstPort = s.dstPort
	pkt.Proto = netsim.ProtoTCP
	pkt.Kind = netsim.KindData
	pkt.HashPrefix = s.hashPrefix
	pkt.HashPrefixOK = true
	pkt.PathTag = s.PathTag()
	pkt.Spray = s.spray
	pkt.Seq = seq
	pkt.Payload = payload
	pkt.Size = payload + netsim.HeaderBytes
	pkt.ECT = true
	pkt.Retx = retx
	pkt.SentAt = s.eng.Now()
	pkt.EchoTS = -1
	if retx {
		s.Retransmits++
	}
	s.flow.Src.Send(pkt)
}

// Deliver implements netsim.Handler for the sending host (ACK arrival).
func (s *Sender) Deliver(pkt *netsim.Packet) {
	if s.aborted {
		return
	}
	if pkt.Kind == netsim.KindSynAck {
		if !s.established {
			s.established = true
			s.backoff = 0
			if pkt.EchoTS >= 0 {
				s.sampleRTT(s.eng.Now() - pkt.EchoTS)
			}
			s.cancelTimer()
			s.trySend()
		}
		return
	}
	if pkt.Kind != netsim.KindAck {
		return
	}
	s.AcksReceived++
	now := s.eng.Now()

	// RTT sample (Karn-filtered by the receiver's echo suppression).
	if pkt.EchoTS >= 0 {
		s.sampleRTT(now - pkt.EchoTS)
	}

	// SACK scoreboard update.
	for _, b := range pkt.Sacks {
		if b.End > s.sndUna {
			s.sacked.add(b.Start, b.End)
		}
	}
	if pkt.DSACK {
		s.dsackEpisode++
		s.maybeUndo()
	}
	// Adaptive reordering window (Linux tcp_update_reordering): when the
	// receiver observes an original segment arriving ReorderDist bytes below
	// the highest sequence seen, the path reorders at least that deeply, so
	// duplicate ACKs within that depth must not trigger fast retransmit.
	// This is why the paper saw no difference between a reordering threshold
	// of 3 and 30 on its Linux testbed: the stack adapts either way.
	if pkt.ReorderDist > 0 {
		nd := int(pkt.ReorderDist/s.mss) + 1
		const maxReorder = 300 // Linux's cap
		if nd > maxReorder {
			nd = maxReorder
		}
		if nd > s.dynDupThresh {
			s.dynDupThresh = nd
		}
	}

	// FlowBender accounting. ACKs echo the path tag of the data packet that
	// triggered them, so feedback generated on a path the flow has already
	// left is excluded: right after a reroute one RTT of stale marks is
	// still in flight, and counting it against the new path would trigger
	// an immediate (futile) second reroute.
	if s.fb != nil && (!s.cfg.FilterStaleFeedback || pkt.PathTag == s.fb.PathTag()) {
		s.fb.OnAck(pkt.ECE)
	}

	ack := pkt.Seq
	switch {
	case ack > s.sndUna:
		// DCTCP byte accounting: the ACK's ECE covers every newly acked byte.
		newly := ack - s.sndUna
		s.ackedBytes += newly
		if pkt.ECE {
			s.markedBytes += newly
		}
		s.onNewAck(ack, pkt.ECE)
	case ack == s.sndUna && s.sndUna < s.sndNxt:
		s.onDupAck()
	}

	// Close the RTT epoch once an epoch's worth of data is acknowledged.
	if ack >= s.epochEnd {
		s.closeEpoch()
	}

	// ECN reaction: at most one window reduction per RTT.
	if pkt.ECE && ack > s.cwrEnd && !s.inRecovery {
		s.ecnCut()
	}

	s.trySend()

	if s.sndUna >= s.flow.Size && s.flow.SendDone < 0 {
		s.flow.SendDone = now
		s.cancelTimer()
		s.scheduleTeardown()
	}
}

// scheduleTeardown releases both endpoints' dispatch slots after a quiet
// period of 2x RTOMax. The flow is complete (every byte acknowledged), so
// the only traffic it can still receive is strays already in flight —
// duplicate ACKs and spurious retransmissions, whose lifetime is bounded by
// one path traversal, far below RTOMax. Waiting out the quiet period before
// unregistering therefore changes no observable behaviour (a stray landing
// before teardown still updates the endpoints exactly as it always did),
// while long churny runs get their handler slots back instead of growing
// host dispatch tables without bound.
func (s *Sender) scheduleTeardown() {
	s.eng.Schedule(2*s.cfg.RTOMax, s.teardown)
}

// Abort permanently silences the sender: RepFlow tears the losing sub-flow
// down with it once its sibling has delivered the payload. The RTO timer is
// canceled, no further segments are emitted, arriving strays are ignored,
// and the handler slots are released through the same 2x RTOMax quiet
// period completed flows use — in-flight traffic of the dead sub-flow has a
// lifetime bounded by one path traversal, far below that. Idempotent.
func (s *Sender) Abort() {
	if s.aborted {
		return
	}
	s.aborted = true
	s.cancelTimer()
	s.scheduleTeardown()
}

// Aborted reports whether Abort has silenced this sender.
func (s *Sender) Aborted() bool { return s.aborted }

func (s *Sender) teardown() {
	s.flow.Src.Unregister(s.flow.ID)
	if s.flow.Src.Engine() == s.flow.Dst.Engine() {
		s.flow.Dst.Unregister(s.flow.ID)
	}
	// Cross-shard flows release the destination slot from the receiver's
	// own teardown (see Receiver.Deliver), keeping every handler-table
	// mutation on its owning shard.
}

func (s *Sender) onNewAck(ack int64, _ bool) {
	newly := ack - s.sndUna
	s.sndUna = ack
	s.sacked.consume(s.sndUna)
	s.backoff = 0
	if s.outageStart >= 0 {
		// Data is flowing again: close the outage episode.
		d := s.eng.Now() - s.outageStart
		s.recovery.Count++
		s.recovery.Total += d
		if d > s.recovery.Max {
			s.recovery.Max = d
		}
		s.outageStart = -1
	}

	if s.inRecovery {
		if ack >= s.recover {
			// Full recovery: deflate to ssthresh.
			s.inRecovery = false
			s.dupAcks = 0
			s.cwnd = s.ssthresh
		} else {
			// Partial ACK: retransmit the next SACK hole, deflate by the
			// amount acked, and stay in recovery. The SACK scoreboard keeps
			// this from devolving into NewReno's one-retransmission-per-RTT
			// whole-window resend after reordering-induced (spurious) fast
			// retransmits — the behaviour of the Linux stacks the paper
			// deployed on.
			if s.retxNext < s.sndUna {
				s.retxNext = s.sndUna
			}
			s.retransmitHole()
			s.cwnd -= float64(newly)
			s.cwnd += float64(s.mss)
			if s.cwnd < float64(s.mss) {
				s.cwnd = float64(s.mss)
			}
		}
		s.armTimer()
		return
	}

	s.dupAcks = 0
	if s.cwnd < s.ssthresh {
		// Slow start with Appropriate Byte Counting (RFC 3465, L=2): grow
		// by the bytes acknowledged, capped at 2 MSS per ACK, so coalesced
		// (delayed) or lost ACKs do not slow the exponential ramp.
		inc := float64(newly)
		if max := 2 * float64(s.mss); inc > max {
			inc = max
		}
		s.cwnd += inc
	} else {
		// Congestion avoidance: MSS^2/cwnd per ACK.
		s.cwnd += float64(s.mss) * float64(s.mss) / s.cwnd
	}
	s.armTimer()
}

func (s *Sender) onDupAck() {
	if s.cfg.DisableFastRetx {
		return
	}
	if s.inRecovery {
		// Window inflation while the holes drain; newly revealed holes
		// (from fresh SACK blocks) are retransmitted as they appear.
		s.cwnd += float64(s.mss)
		s.retransmitHole()
		return
	}
	s.dupAcks++
	if s.dupAcks < s.dynDupThresh {
		return
	}
	// Fast retransmit + fast recovery.
	s.FastRetx++
	s.undoValid = true
	s.undoCwnd = s.cwnd
	s.undoSsthresh = s.ssthresh
	s.retxEpisode, s.dsackEpisode = 0, 0
	s.ssthresh = s.cwnd / 2
	if min := 2 * float64(s.mss); s.ssthresh < min {
		s.ssthresh = min
	}
	s.recover = s.sndNxt
	s.inRecovery = true
	s.retxNext = s.sndUna
	s.retransmitHole()
	s.cwnd = s.ssthresh + float64(s.dynDupThresh)*float64(s.mss)
	s.armTimer()
}

// retransmitHole resends the first un-SACKed segment at or above retxNext
// that is deemed lost (RFC 6675's IsLost: at least DupThresh segments' worth
// of SACKed bytes above it — a merely un-SACKed in-flight segment is not
// lost). retxNext advances past each retransmission so every hole is resent
// once per recovery episode.
func (s *Sender) retransmitHole() {
	seq := s.retxNext
	if seq < s.sndUna {
		seq = s.sndUna
	}
	seq = s.sacked.nextUncovered(seq)
	if seq >= s.recover || seq >= s.flow.Size {
		return
	}
	if s.sacked.bytesAbove(seq) < int64(s.dynDupThresh)*s.mss {
		return
	}
	n := s.mss
	if rem := s.flow.Size - seq; rem < n {
		n = rem
	}
	s.emit(seq, int(n), true)
	s.retxEpisode++
	s.retxNext = seq + n
}

// maybeUndo reverts a spurious window reduction once DSACKs have confirmed
// every retransmission of the episode was unnecessary.
func (s *Sender) maybeUndo() {
	if !s.undoValid || s.dsackEpisode < s.retxEpisode || s.retxEpisode == 0 {
		return
	}
	s.undoValid = false
	s.SpuriousUndo++
	s.inRecovery = false
	s.dupAcks = 0
	if s.undoCwnd > s.cwnd {
		s.cwnd = s.undoCwnd
	}
	if s.undoSsthresh > s.ssthresh {
		s.ssthresh = s.undoSsthresh
	}
}

// ecnCut applies DCTCP's proportional reduction (or a plain halving when
// DCTCP is disabled), once per window of data.
func (s *Sender) ecnCut() {
	s.cwrEnd = s.sndNxt
	var factor float64
	if s.cfg.DisableDCTCP {
		factor = 0.5
	} else {
		factor = 1 - s.alpha/2
	}
	s.cwnd *= factor
	if s.cwnd < float64(s.mss) {
		s.cwnd = float64(s.mss)
	}
	s.ssthresh = s.cwnd
}

// closeEpoch ends an RTT epoch: updates DCTCP's alpha from the epoch's
// marked fraction and lets FlowBender decide whether to reroute.
func (s *Sender) closeEpoch() {
	if s.ackedBytes > 0 {
		f := float64(s.markedBytes) / float64(s.ackedBytes)
		g := s.cfg.DCTCPg
		s.alpha = (1-g)*s.alpha + g*f
	}
	if s.fb != nil {
		s.fb.OnRTTEnd()
	}
	s.ackedBytes, s.markedBytes = 0, 0
	s.epochEnd = s.sndNxt
}

func (s *Sender) sampleRTT(rtt sim.Time) {
	if rtt <= 0 {
		rtt = 1
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.RTOMin {
		s.rto = s.cfg.RTOMin
	}
	if s.rto > s.cfg.RTOMax {
		s.rto = s.cfg.RTOMax
	}
}

// SRTT returns the smoothed RTT estimate.
func (s *Sender) SRTT() sim.Time { return s.srtt }

// RTO returns the current retransmission timeout (before backoff).
func (s *Sender) RTO() sim.Time { return s.rto }

func (s *Sender) armTimer() {
	if s.sndUna >= s.flow.Size || s.sndUna >= s.sndNxt {
		s.cancelTimer()
		return
	}
	s.cancelTimer()
	d := s.rto << s.backoff
	if d > s.cfg.RTOMax {
		d = s.cfg.RTOMax
	}
	s.timer = s.eng.Schedule(d, s.timeoutFn)
}

func (s *Sender) cancelTimer() {
	if s.timer != nil {
		s.eng.Cancel(s.timer)
		s.timer = nil
	}
}

func (s *Sender) onTimeout() {
	s.timer = nil
	if s.sndUna >= s.flow.Size || s.aborted {
		return
	}
	s.Timeouts++
	if s.outageStart < 0 {
		s.outageStart = s.eng.Now()
	}
	s.undoValid = false
	s.ssthresh = s.cwnd / 2
	if min := 2 * float64(s.mss); s.ssthresh < min {
		s.ssthresh = min
	}
	s.cwnd = float64(s.mss)
	s.sndNxt = s.sndUna
	s.dupAcks = 0
	s.inRecovery = false
	if s.backoff < 16 {
		s.backoff++
	}
	// FlowBender's failure story (§3.3.2): an RTO immediately re-draws V so
	// the retransmission probes a different path — this is what recovers
	// from link failures within ~one RTO.
	if s.fb != nil {
		s.fb.OnTimeout()
	}
	// Reset epoch accounting: the path likely changed.
	s.ackedBytes, s.markedBytes = 0, 0
	s.epochEnd = s.sndNxt
	s.trySend()
}
