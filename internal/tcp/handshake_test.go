package tcp

import (
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

func TestHandshakeAddsOneRTT(t *testing.T) {
	// With symmetric 10 us one-way host delays, the handshake costs one RTT
	// before the first data byte moves.
	fctFor := func(handshake bool) sim.Time {
		eng := sim.NewEngine()
		const rate = 10_000_000_000
		a := netsim.NewHost(eng, 0, rate, 10*sim.Microsecond)
		b := netsim.NewHost(eng, 1, rate, 10*sim.Microsecond)
		tm := &tamper{eng: eng, a: a, b: b}
		a.NIC.Link = netsim.Link{To: tm}
		b.NIC.Link = netsim.Link{To: tm}
		cfg := DefaultConfig()
		cfg.Handshake = handshake
		f := StartFlow(eng, cfg, 1, a, b, 100_000)
		eng.Run(sim.Second)
		if !f.Done() {
			t.Fatalf("flow incomplete (handshake=%v)", handshake)
		}
		return f.FCT()
	}
	without := fctFor(false)
	with := fctFor(true)
	delta := with - without
	// One RTT = 2 * (10+10) us = 40 us plus a little serialization.
	if delta < 35*sim.Microsecond || delta > 100*sim.Microsecond {
		t.Fatalf("handshake cost %v, want ~1 RTT (40 us)", delta)
	}
}

func TestHandshakeSynLossRetries(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	dropped := 0
	tm.drop = func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.KindSyn && dropped < 2 {
			dropped++
			return true
		}
		return false
	}
	cfg := DefaultConfig()
	cfg.Handshake = true
	f := StartFlow(eng, cfg, 1, a, b, 50_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete after SYN losses")
	}
	if f.Sender().SynRetries != 2 {
		t.Fatalf("SynRetries = %d, want 2", f.Sender().SynRetries)
	}
	// Two RTO-paced retries: completion takes at least 10+20 ms of backoff.
	if f.FCT() < 30*sim.Millisecond {
		t.Fatalf("FCT %v too fast for two SYN RTOs", f.FCT())
	}
}

func TestHandshakeSynLossReroutesFlowBender(t *testing.T) {
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	dropOne := true
	tm.drop = func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.KindSyn && dropOne {
			dropOne = false
			return true
		}
		return false
	}
	cfg := DefaultConfig()
	cfg.Handshake = true
	cfg.FlowBender = &core.Config{}
	f := StartFlow(eng, cfg, 1, a, b, 50_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if got := f.FlowBenderStats().TimeoutReroutes; got != 1 {
		t.Fatalf("SYN loss should re-draw V once: %d", got)
	}
}

func TestHandshakeDuplicateSynAckHarmless(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	cfg := DefaultConfig()
	cfg.Handshake = true
	f := StartFlow(eng, cfg, 1, a, b, 50_000)
	eng.Run(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	// Replay a SYN-ACK after completion: must be ignored.
	f.Sender().Deliver(&netsim.Packet{Kind: netsim.KindSynAck, EchoTS: -1})
	eng.RunUntilIdle()
	if f.Sender().Retransmits != 0 {
		t.Fatal("stale SYN-ACK disturbed the sender")
	}
}
