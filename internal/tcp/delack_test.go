package tcp

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

func delackHarness(t *testing.T, m int) *receiverHarness {
	t.Helper()
	h := newReceiverHarness(t, 1_000_000)
	cfg := DefaultConfig()
	cfg.DelayedAckCount = m
	h.r.cfg = cfg
	return h
}

// deliverNoIdle hands a packet to the receiver and advances virtual time by
// only 10 us, so a pending delayed-ACK timer (500 us) does not fire.
func (h *receiverHarness) deliverNoIdle(seq int64, payload int, ce bool) {
	pkt := &netsim.Packet{
		Flow: 9, Src: 0, Dst: 1, Proto: netsim.ProtoTCP, Kind: netsim.KindData,
		Seq: seq, Payload: payload, Size: payload + netsim.HeaderBytes,
		ECT: true, CE: ce, SentAt: h.eng.Now(), EchoTS: -1,
	}
	h.r.Deliver(pkt)
	h.eng.Run(h.eng.Now() + 10*sim.Microsecond)
}

func TestDelayedAckCoalesces(t *testing.T) {
	h := delackHarness(t, 2)
	h.deliverNoIdle(0, 1000, false)
	if len(h.acks) != 0 {
		t.Fatal("first in-order packet acked immediately under m=2")
	}
	h.deliverNoIdle(1000, 1000, false)
	if len(h.acks) != 1 {
		t.Fatalf("second packet should flush: %d acks", len(h.acks))
	}
	if got := h.lastAck(t).Seq; got != 2000 {
		t.Fatalf("coalesced ack = %d, want 2000", got)
	}
}

func TestDelayedAckTimerFlush(t *testing.T) {
	h := delackHarness(t, 4)
	h.deliverNoIdle(0, 1000, false)
	if len(h.acks) != 0 {
		t.Fatal("acked before timer")
	}
	h.eng.Run(h.eng.Now() + sim.Millisecond)
	if len(h.acks) != 1 {
		t.Fatalf("delack timer did not flush: %d acks", len(h.acks))
	}
	if h.lastAck(t).Seq != 1000 {
		t.Fatal("timer flush acked wrong seq")
	}
}

func TestDelayedAckCEFlipFlushesOldState(t *testing.T) {
	h := delackHarness(t, 10)
	h.deliverNoIdle(0, 1000, false)
	h.deliverNoIdle(1000, 1000, false)
	// CE flips: the pending ACK must flush with ECE = old state (false),
	// covering only the first two packets.
	h.deliverNoIdle(2000, 1000, true)
	if len(h.acks) != 1 {
		t.Fatalf("CE flip did not flush (acks=%d)", len(h.acks))
	}
	first := h.acks[0]
	if first.ECE || first.Seq != 2000 {
		t.Fatalf("flush ack wrong: ECE=%v seq=%d (want ECE=false seq=2000)", first.ECE, first.Seq)
	}
	// Flip back: the marked packet's ACK flushes with ECE = true.
	h.deliverNoIdle(3000, 1000, false)
	second := h.acks[1]
	if !second.ECE || second.Seq != 3000 {
		t.Fatalf("second flush wrong: ECE=%v seq=%d", second.ECE, second.Seq)
	}
	if h.r.FlushedByCE != 2 {
		t.Fatalf("FlushedByCE = %d", h.r.FlushedByCE)
	}
}

func TestDelayedAckImmediateOnOutOfOrder(t *testing.T) {
	h := delackHarness(t, 10)
	h.deliverNoIdle(0, 1000, false)
	h.deliverNoIdle(2000, 1000, false) // gap: must ACK now
	if len(h.acks) == 0 {
		t.Fatal("out-of-order arrival not acked immediately")
	}
}

func TestDelayedAckExactMarkAccounting(t *testing.T) {
	// End-to-end: with m=2 and a marking stretch, the sender's alpha must
	// track the true marked fraction, thanks to the CE state machine.
	eng := sim.NewEngine()
	a, b, tm := pipe(eng)
	marked, total := 0, 0
	tm.seen = func(pkt *netsim.Packet) {
		if pkt.Kind == netsim.KindData {
			total++
			if total%3 == 0 { // mark every 3rd packet: true fraction 1/3
				pkt.CE = true
				marked++
			}
		}
	}
	cfg := DefaultConfig()
	cfg.DelayedAckCount = 2
	f := StartFlow(eng, cfg, 1, a, b, 3_000_000)
	eng.Run(10 * sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	got := f.Sender().Alpha()
	want := float64(marked) / float64(total)
	if got < want-0.12 || got > want+0.12 {
		t.Fatalf("alpha = %.3f, true marked fraction %.3f", got, want)
	}
	// Coalescing really happened: fewer ACKs than data packets.
	if f.Receiver().AcksSent >= f.Receiver().DataPackets {
		t.Fatal("no coalescing under m=2")
	}
}

func TestDelayedAckTransferCompletes(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := pipe(eng)
	cfg := DefaultConfig()
	cfg.DelayedAckCount = 2
	f := StartFlow(eng, cfg, 1, a, b, 1_000_000)
	eng.Run(sim.Second)
	if !f.Done() {
		t.Fatal("flow incomplete with delayed ACKs")
	}
	if f.Sender().Retransmits != 0 {
		t.Fatalf("spurious retransmissions under delayed ACKs: %d", f.Sender().Retransmits)
	}
}
