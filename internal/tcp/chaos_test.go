package tcp

import (
	"testing"
	"testing/quick"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// TestChaosNetworkProperty subjects transfers to random drop, duplication,
// and delay-reordering at once and asserts the only thing that matters:
// every flow still delivers its full byte stream, under every stack variant
// (plain, FlowBender, delayed ACKs, handshake).
func TestChaosNetworkProperty(t *testing.T) {
	f := func(seed int64, dropPct, dupPct, delayPct uint8, variant uint8) bool {
		drop := float64(dropPct%10) / 100   // 0-9%
		dup := float64(dupPct%5) / 100      // 0-4%
		delay := float64(delayPct%20) / 100 // 0-19%

		eng := sim.NewEngine()
		a, b, tm := pipe(eng)
		rng := sim.NewRNG(seed)
		tm.drop = func(pkt *netsim.Packet) bool {
			r := rng.Float64()
			switch {
			case r < drop:
				return true
			case r < drop+dup:
				cp := *pkt
				eng.Schedule(20*sim.Microsecond, func() { tm.Receive(&cp, 0) })
				return false
			case r < drop+dup+delay:
				cp := *pkt
				eng.Schedule(sim.Time(rng.Intn(200))*sim.Microsecond, func() {
					if cp.Dst == tm.a.ID() {
						tm.a.Receive(&cp, 0)
					} else {
						tm.b.Receive(&cp, 0)
					}
				})
				return true
			}
			return false
		}

		cfg := DefaultConfig()
		switch variant % 4 {
		case 1:
			cfg.FlowBender = &core.Config{RNG: sim.NewRNG(seed).Fork("fb")}
		case 2:
			cfg.DelayedAckCount = 2
		case 3:
			cfg.Handshake = true
		}
		flow := StartFlow(eng, cfg, 1, a, b, 300_000)
		eng.Run(120 * sim.Second)
		return flow.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosManyFlowsOnFabric runs a burst of flows through the fat-tree
// while an adversarial schedule cuts and restores a core link; everything
// must still complete.
func TestChaosManyFlowsOnFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := sim.NewEngine()
	// Import cycle avoidance: the fat-tree lives in topo, which tcp must not
	// import in non-test code — but the e2e test file already builds one via
	// the external test package. Here, hand-build a two-switch fabric with
	// two parallel paths instead.
	const rate = 10_000_000_000
	cfgSw := netsim.SwitchConfig{QueueCap: 1 << 20, MarkK: 90_000, FwdDelay: sim.Microsecond}
	left := netsim.NewSwitch(eng, 100, 4, rate, cfgSw)
	right := netsim.NewSwitch(eng, 101, 4, rate, cfgSw)
	hosts := make([]*netsim.Host, 4)
	for i := range hosts {
		hosts[i] = netsim.NewHost(eng, netsim.NodeID(i), rate, 0)
	}
	netsim.WireHost(hosts[0], left, 0, 0)
	netsim.WireHost(hosts[1], left, 1, 0)
	netsim.WireHost(hosts[2], right, 0, 0)
	netsim.WireHost(hosts[3], right, 1, 0)
	pathA := netsim.WireSwitches(left, 2, right, 2, 0)
	netsim.WireSwitches(left, 3, right, 3, 0)
	left.SetRoutes([][]int32{0: {0}, 1: {1}, 2: {2, 3}, 3: {2, 3}})
	right.SetRoutes([][]int32{0: {2, 3}, 1: {2, 3}, 2: {0}, 3: {1}})
	left.SetSelector(tagSelector{})
	right.SetSelector(tagSelector{})

	cfg := DefaultConfig()
	cfg.FlowBender = &core.Config{RNG: sim.NewRNG(5)}
	var flows []*Flow
	for i := 0; i < 6; i++ {
		flows = append(flows, StartFlow(eng, cfg, netsim.FlowID(i+1),
			hosts[i%2], hosts[2+i%2], 2_000_000))
	}
	// Flap one of the two inter-switch paths.
	eng.At(1*sim.Millisecond, pathA.Fail)
	eng.At(30*sim.Millisecond, pathA.Restore)
	eng.Run(20 * sim.Second)
	for _, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete under link flap (timeouts=%d)", f.ID, f.Sender().Timeouts)
		}
	}
}

// tagSelector picks eligible[tag % len] — a minimal deterministic selector
// for tests that keeps the tcp package free of a routing dependency.
type tagSelector struct{}

func (tagSelector) Select(_ *netsim.Switch, pkt *netsim.Packet, e []int32) int32 {
	return e[int(pkt.PathTag)%len(e)]
}
