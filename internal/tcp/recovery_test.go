package tcp_test

import (
	"testing"

	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// TestRecoveryStatsTracksOutage cuts the single host uplink mid-transfer and
// checks the time-to-recover metric brackets the dark period: the episode
// opens at the first RTO after the cut and closes at the first ACK after the
// restore.
func TestRecoveryStatsTracksOutage(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})

	const (
		failAt    = 2 * sim.Millisecond
		restoreAt = 52 * sim.Millisecond
	)
	f := tcp.StartFlow(eng, tcp.DefaultConfig(), 1, ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1], 10_000_000)
	// Cut the source host's only uplink: every path is dark, so the flow
	// must stall until the restore no matter how it is routed.
	eng.At(failAt, func() { ft.HostLinks[0].Fail() })
	eng.At(restoreAt, func() { ft.HostLinks[0].Restore() })
	eng.Run(2 * sim.Second)

	if !f.Done() {
		t.Fatalf("flow did not complete after restore (timeouts=%d)", f.Sender().Timeouts)
	}
	rec := f.Recovery()
	if rec.Count == 0 {
		t.Fatal("no recovery episode recorded despite RTOs")
	}
	dark := restoreAt - failAt
	// The episode starts at the first RTO after the cut and ends at the
	// first ACK after restore. Exponential RTO backoff means the closing
	// retransmission can land up to roughly one doubled backoff interval
	// after the restore, so the episode may exceed the dark period — but
	// never by more than ~2x, and it must cover a substantial part of it.
	if rec.Max < dark/4 {
		t.Errorf("recovery %v implausibly short for a %v outage", rec.Max, dark)
	}
	if rec.Max > 3*dark {
		t.Errorf("recovery %v implausibly long for a %v outage", rec.Max, dark)
	}
	if rec.Mean() > rec.Max || rec.Mean() <= 0 {
		t.Errorf("mean %v inconsistent with max %v", rec.Mean(), rec.Max)
	}
	if f.Sender().InOutage() {
		t.Error("flow completed but still marked in-outage")
	}
}

// TestRecoveryStatsZeroWithoutTimeouts: a clean transfer records no episode.
func TestRecoveryStatsZeroWithoutTimeouts(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})
	f := tcp.StartFlow(eng, tcp.DefaultConfig(), 1, ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1], 1_000_000)
	eng.Run(1 * sim.Second)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if rec := f.Recovery(); rec.Count != 0 || rec.Total != 0 || rec.Max != 0 {
		t.Fatalf("clean flow recorded recovery episodes: %+v", rec)
	}
}
