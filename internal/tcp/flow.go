package tcp

import (
	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// Flow is one finite TCP transfer and its measured outcome.
type Flow struct {
	ID   netsim.FlowID
	Src  *netsim.Host
	Dst  *netsim.Host
	Size int64 // payload bytes to transfer

	Start    sim.Time // when the sender was started
	RecvDone sim.Time // when the last payload byte arrived in order (-1 until then)
	SendDone sim.Time // when the sender saw everything acked (-1 until then)

	// OnComplete, if set, runs when the receiver has the full payload.
	OnComplete func(f *Flow)

	sender   *Sender
	receiver *Receiver
}

// FCT returns the receiver-side flow completion time. It panics if the flow
// has not completed (call after the run, or from OnComplete).
func (f *Flow) FCT() sim.Time {
	if f.RecvDone < 0 {
		panic("tcp: FCT of incomplete flow")
	}
	return f.RecvDone - f.Start
}

// Done reports whether the receiver has the full payload.
func (f *Flow) Done() bool { return f.RecvDone >= 0 }

// Sender returns the flow's sender endpoint.
func (f *Flow) Sender() *Sender { return f.sender }

// Receiver returns the flow's receiver endpoint.
func (f *Flow) Receiver() *Receiver { return f.receiver }

// OutOfOrder returns the number of data packets that arrived after a
// higher-sequence packet had already been seen.
func (f *Flow) OutOfOrder() int64 { return f.receiver.OutOfOrder }

// DataPackets returns the number of data packets received (including
// retransmissions).
func (f *Flow) DataPackets() int64 { return f.receiver.DataPackets }

// Recovery returns the flow's outage-recovery statistics: each episode runs
// from the first RTO after healthy operation to the next delivered
// cumulative ACK (§3.3.2's time-to-recover).
func (f *Flow) Recovery() RecoveryStats { return f.sender.RecoveryStats() }

// FlowBenderStats returns the attached controller's counters, or a zero
// value when the flow runs without FlowBender.
func (f *Flow) FlowBenderStats() core.Stats {
	if f.sender.fb == nil {
		return core.Stats{}
	}
	return f.sender.fb.Stats()
}

// StartFlow creates a sender on src and a receiver on dst for size payload
// bytes and begins transmitting immediately. Port numbers are derived from
// the flow ID to give the ECMP hash its 5-tuple entropy. The eng parameter
// is retained for API stability; each endpoint runs on its own host's
// engine, which in serial builds is the same engine.
func StartFlow(eng *sim.Engine, cfg Config, id netsim.FlowID, src, dst *netsim.Host, size int64) *Flow {
	_ = eng
	pf := PlanFlow(cfg, id, src, dst, size)
	pf.StartReceiver()
	pf.StartSender()
	return pf.Flow()
}

// PendingFlow is a planned but not yet started flow. It decouples flow
// creation from endpoint activation so the sharded runner can plan every
// flow up front and then start each endpoint as a time-ordered event on its
// own shard's engine: StartReceiver must run on the destination host's
// engine and StartSender on the source host's, at the same virtual instant,
// receiver first when both share a shard (mirroring StartFlow's order).
type PendingFlow struct {
	f                *Flow
	cfg              Config
	srcPort, dstPort uint16
}

// PlanFlow validates the config and allocates the flow record without
// touching either host. Flow.Start stays unset until StartSender runs.
func PlanFlow(cfg Config, id netsim.FlowID, src, dst *netsim.Host, size int64) *PendingFlow {
	cfg = cfg.withDefaults()
	f := &Flow{
		ID: id, Src: src, Dst: dst, Size: size,
		Start: -1, RecvDone: -1, SendDone: -1,
	}
	return &PendingFlow{
		f:       f,
		cfg:     cfg,
		srcPort: uint16(10000 + (uint64(id)*2654435761)%50000),
		dstPort: 5001,
	}
}

// Flow returns the planned flow record.
func (pf *PendingFlow) Flow() *Flow { return pf.f }

// StartReceiver creates the receiver endpoint and claims the destination
// host's dispatch slot. No events are scheduled; the receiver only reacts
// to arriving packets.
func (pf *PendingFlow) StartReceiver() {
	pf.f.receiver = newReceiver(pf.f.Dst.Engine(), pf.cfg, pf.f, pf.dstPort, pf.srcPort)
	pf.f.Dst.Register(pf.f.ID, pf.f.receiver)
}

// StartSender creates the sender endpoint, claims the source host's dispatch
// slot, stamps Flow.Start with the source engine's clock, and begins
// transmitting.
func (pf *PendingFlow) StartSender() {
	eng := pf.f.Src.Engine()
	pf.f.Start = eng.Now()
	pf.f.sender = newSender(eng, pf.cfg, pf.f, pf.srcPort, pf.dstPort)
	pf.f.Src.Register(pf.f.ID, pf.f.sender)
	pf.f.sender.start()
}
