package tcp

import (
	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// Flow is one finite TCP transfer and its measured outcome.
type Flow struct {
	ID   netsim.FlowID
	Src  *netsim.Host
	Dst  *netsim.Host
	Size int64 // payload bytes to transfer

	Start    sim.Time // when the sender was started
	RecvDone sim.Time // when the last payload byte arrived in order (-1 until then)
	SendDone sim.Time // when the sender saw everything acked (-1 until then)

	// OnComplete, if set, runs when the receiver has the full payload.
	OnComplete func(f *Flow)

	sender   *Sender
	receiver *Receiver

	// rep is non-nil on the parent flow of a RepFlow-replicated pair.
	rep *repFlow
}

// repFlow tracks a replicated flow's sub-flows and which one won.
type repFlow struct {
	subs   [ReplicationFactor]*Flow
	winner int // index into subs, -1 until the first sub-flow completes
}

// FCT returns the receiver-side flow completion time. It panics if the flow
// has not completed (call after the run, or from OnComplete).
func (f *Flow) FCT() sim.Time {
	if f.RecvDone < 0 {
		panic("tcp: FCT of incomplete flow")
	}
	return f.RecvDone - f.Start
}

// Done reports whether the receiver has the full payload.
func (f *Flow) Done() bool { return f.RecvDone >= 0 }

// Sender returns the flow's sender endpoint.
func (f *Flow) Sender() *Sender { return f.sender }

// Receiver returns the flow's receiver endpoint.
func (f *Flow) Receiver() *Receiver { return f.receiver }

// OutOfOrder returns the number of data packets that arrived after a
// higher-sequence packet had already been seen.
func (f *Flow) OutOfOrder() int64 { return f.receiver.OutOfOrder }

// DataPackets returns the number of data packets received (including
// retransmissions).
func (f *Flow) DataPackets() int64 { return f.receiver.DataPackets }

// Recovery returns the flow's outage-recovery statistics: each episode runs
// from the first RTO after healthy operation to the next delivered
// cumulative ACK (§3.3.2's time-to-recover).
func (f *Flow) Recovery() RecoveryStats { return f.sender.RecoveryStats() }

// FlowBenderStats returns the attached controller's counters, or a zero
// value when the flow runs without FlowBender.
func (f *Flow) FlowBenderStats() core.Stats {
	if f.sender.fb == nil {
		return core.Stats{}
	}
	return f.sender.fb.Stats()
}

// StartFlow creates a sender on src and a receiver on dst for size payload
// bytes and begins transmitting immediately. Port numbers are derived from
// the flow ID to give the ECMP hash its 5-tuple entropy. The eng parameter
// is retained for API stability; each endpoint runs on its own host's
// engine, which in serial builds is the same engine.
//
// When cfg.Replicate is set and the flow qualifies (Size < Cutoff), the
// returned Flow is a replicated parent: it owns two live sub-flows on
// independently hashed paths and completes when the first of them delivers
// the payload (see Replicated).
func StartFlow(eng *sim.Engine, cfg Config, id netsim.FlowID, src, dst *netsim.Host, size int64) *Flow {
	_ = eng
	if rc := cfg.Replicate; rc != nil && size < rc.Cutoff {
		return startReplicated(cfg, id, src, dst, size)
	}
	pf := PlanFlow(cfg, id, src, dst, size)
	pf.StartReceiver()
	pf.StartSender()
	return pf.Flow()
}

// replicaIDBit distinguishes a replica sub-flow's ID from its primary's in
// the hosts' dispatch tables. Bit 62 keeps IDs positive and far above any
// workload allocator's range; the distinct ID also yields a distinct source
// port (PlanFlow derives ports from the ID), which is exactly what gives
// the replica an independent ECMP path draw.
const replicaIDBit netsim.FlowID = 1 << 62

// ReplicaID returns the flow ID RepFlow's replica sub-flow of id runs under.
func ReplicaID(id netsim.FlowID) netsim.FlowID { return id | replicaIDBit }

// startReplicated launches a RepFlow pair: two full copies of the payload
// under distinct flow IDs (hence distinct port draws), racing to the same
// receiver host. The parent flow holds no endpoints of its own; until a
// winner is declared it reports the primary sub-flow's, so harness code
// reading Sender() off incomplete flows keeps working.
func startReplicated(cfg Config, id netsim.FlowID, src, dst *netsim.Host, size int64) *Flow {
	parent := &Flow{
		ID: id, Src: src, Dst: dst, Size: size,
		Start: -1, RecvDone: -1, SendDone: -1,
		rep: &repFlow{winner: -1},
	}
	sub := cfg
	sub.Replicate = nil // sub-flows must not recurse
	pend := [ReplicationFactor]*PendingFlow{
		PlanFlow(sub, id, src, dst, size),
		PlanFlow(sub, ReplicaID(id), src, dst, size),
	}
	for i, pf := range pend {
		f := pf.Flow()
		f.OnComplete = parent.subDone
		parent.rep.subs[i] = f
	}
	// Mirror StartFlow's receiver-before-sender order for each sub-flow, all
	// receivers first: no sender may emit before every dispatch slot of the
	// pair is claimed.
	for _, pf := range pend {
		pf.StartReceiver()
	}
	for _, pf := range pend {
		pf.StartSender()
	}
	parent.Start = parent.rep.subs[0].Start
	parent.sender = parent.rep.subs[0].sender
	parent.receiver = parent.rep.subs[0].receiver
	return parent
}

// subDone is the OnComplete hook of both sub-flows: the first finisher
// becomes the winner and defines every parent observable (FCT, reordering,
// recovery stats — exactly one sub-flow's bytes count as delivered); the
// loser's sender is aborted and torn down. A loser whose in-flight data
// later completes its receiver lands here a second time and is ignored.
func (f *Flow) subDone(sub *Flow) {
	rep := f.rep
	if rep.winner >= 0 {
		return
	}
	w := 0
	for i, s := range rep.subs {
		if s == sub {
			w = i
		}
	}
	rep.winner = w
	f.sender = sub.sender
	f.receiver = sub.receiver
	f.RecvDone = sub.RecvDone
	rep.subs[1-w].sender.Abort()
	if f.OnComplete != nil {
		f.OnComplete(f)
	}
}

// Replicated reports whether this flow is a RepFlow parent.
func (f *Flow) Replicated() bool { return f.rep != nil }

// SubFlows returns a replicated parent's sub-flows (nil otherwise). The
// parent's own SendDone stays -1; per-sub-flow sender state lives on the
// sub-flows.
func (f *Flow) SubFlows() []*Flow {
	if f.rep == nil {
		return nil
	}
	return f.rep.subs[:]
}

// Winner returns the sub-flow that delivered the payload first, or nil
// while the race is still open (or for unreplicated flows).
func (f *Flow) Winner() *Flow {
	if f.rep == nil || f.rep.winner < 0 {
		return nil
	}
	return f.rep.subs[f.rep.winner]
}

// PendingFlow is a planned but not yet started flow. It decouples flow
// creation from endpoint activation so the sharded runner can plan every
// flow up front and then start each endpoint as a time-ordered event on its
// own shard's engine: StartReceiver must run on the destination host's
// engine and StartSender on the source host's, at the same virtual instant,
// receiver first when both share a shard (mirroring StartFlow's order).
type PendingFlow struct {
	f                *Flow
	cfg              Config
	srcPort, dstPort uint16
}

// PlanFlow validates the config and allocates the flow record without
// touching either host. Flow.Start stays unset until StartSender runs.
func PlanFlow(cfg Config, id netsim.FlowID, src, dst *netsim.Host, size int64) *PendingFlow {
	cfg = cfg.withDefaults()
	f := &Flow{
		ID: id, Src: src, Dst: dst, Size: size,
		Start: -1, RecvDone: -1, SendDone: -1,
	}
	srcPort, dstPort := PortsFor(id)
	return &PendingFlow{
		f:       f,
		cfg:     cfg,
		srcPort: srcPort,
		dstPort: dstPort,
	}
}

// PortsFor returns the port numbers a flow with this ID runs under — the
// ID-derived source port that gives the ECMP hash its 5-tuple entropy, and
// the fixed service port. Exported so the fluid engine reproduces the packet
// engine's per-flow hash draws from IDs alone.
func PortsFor(id netsim.FlowID) (srcPort, dstPort uint16) {
	return uint16(10000 + (uint64(id)*2654435761)%50000), 5001
}

// Flow returns the planned flow record.
func (pf *PendingFlow) Flow() *Flow { return pf.f }

// StartReceiver creates the receiver endpoint and claims the destination
// host's dispatch slot. No events are scheduled; the receiver only reacts
// to arriving packets.
func (pf *PendingFlow) StartReceiver() {
	pf.f.receiver = newReceiver(pf.f.Dst.Engine(), pf.cfg, pf.f, pf.dstPort, pf.srcPort)
	pf.f.Dst.Register(pf.f.ID, pf.f.receiver)
}

// StartSender creates the sender endpoint, claims the source host's dispatch
// slot, stamps Flow.Start with the source engine's clock, and begins
// transmitting.
func (pf *PendingFlow) StartSender() {
	eng := pf.f.Src.Engine()
	pf.f.Start = eng.Now()
	pf.f.sender = newSender(eng, pf.cfg, pf.f, pf.srcPort, pf.dstPort)
	pf.f.Src.Register(pf.f.ID, pf.f.sender)
	pf.f.sender.start()
}
