package tcp

import (
	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// Flow is one finite TCP transfer and its measured outcome.
type Flow struct {
	ID   netsim.FlowID
	Src  *netsim.Host
	Dst  *netsim.Host
	Size int64 // payload bytes to transfer

	Start    sim.Time // when the sender was started
	RecvDone sim.Time // when the last payload byte arrived in order (-1 until then)
	SendDone sim.Time // when the sender saw everything acked (-1 until then)

	// OnComplete, if set, runs when the receiver has the full payload.
	OnComplete func(f *Flow)

	sender   *Sender
	receiver *Receiver
}

// FCT returns the receiver-side flow completion time. It panics if the flow
// has not completed (call after the run, or from OnComplete).
func (f *Flow) FCT() sim.Time {
	if f.RecvDone < 0 {
		panic("tcp: FCT of incomplete flow")
	}
	return f.RecvDone - f.Start
}

// Done reports whether the receiver has the full payload.
func (f *Flow) Done() bool { return f.RecvDone >= 0 }

// Sender returns the flow's sender endpoint.
func (f *Flow) Sender() *Sender { return f.sender }

// Receiver returns the flow's receiver endpoint.
func (f *Flow) Receiver() *Receiver { return f.receiver }

// OutOfOrder returns the number of data packets that arrived after a
// higher-sequence packet had already been seen.
func (f *Flow) OutOfOrder() int64 { return f.receiver.OutOfOrder }

// DataPackets returns the number of data packets received (including
// retransmissions).
func (f *Flow) DataPackets() int64 { return f.receiver.DataPackets }

// Recovery returns the flow's outage-recovery statistics: each episode runs
// from the first RTO after healthy operation to the next delivered
// cumulative ACK (§3.3.2's time-to-recover).
func (f *Flow) Recovery() RecoveryStats { return f.sender.RecoveryStats() }

// FlowBenderStats returns the attached controller's counters, or a zero
// value when the flow runs without FlowBender.
func (f *Flow) FlowBenderStats() core.Stats {
	if f.sender.fb == nil {
		return core.Stats{}
	}
	return f.sender.fb.Stats()
}

// StartFlow creates a sender on src and a receiver on dst for size payload
// bytes and begins transmitting immediately. Port numbers are derived from
// the flow ID to give the ECMP hash its 5-tuple entropy.
func StartFlow(eng *sim.Engine, cfg Config, id netsim.FlowID, src, dst *netsim.Host, size int64) *Flow {
	cfg = cfg.withDefaults()
	f := &Flow{
		ID: id, Src: src, Dst: dst, Size: size,
		Start: eng.Now(), RecvDone: -1, SendDone: -1,
	}
	srcPort := uint16(10000 + (uint64(id)*2654435761)%50000)
	dstPort := uint16(5001)

	f.receiver = newReceiver(eng, cfg, f, dstPort, srcPort)
	f.sender = newSender(eng, cfg, f, srcPort, dstPort)
	dst.Register(id, f.receiver)
	src.Register(id, f.sender)
	f.sender.start()
	return f
}
