package tcp

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// receiverHarness wires a Receiver to a capture of the ACKs it emits.
type receiverHarness struct {
	eng  *sim.Engine
	r    *Receiver
	acks []*netsim.Packet
}

func newReceiverHarness(t *testing.T, size int64) *receiverHarness {
	t.Helper()
	eng := sim.NewEngine()
	// Hosts wired to a capture device standing in for the network.
	src := netsim.NewHost(eng, 0, 10_000_000_000, 0)
	dst := netsim.NewHost(eng, 1, 10_000_000_000, 0)
	h := &receiverHarness{eng: eng}
	cap := captureDevice{sink: &h.acks}
	dst.NIC.Link = netsim.Link{To: cap}
	src.NIC.Link = netsim.Link{To: cap}
	flow := &Flow{ID: 9, Src: src, Dst: dst, Size: size, RecvDone: -1, SendDone: -1}
	h.r = newReceiver(eng, DefaultConfig(), flow, 5001, 10100)
	return h
}

type captureDevice struct{ sink *[]*netsim.Packet }

func (c captureDevice) ID() netsim.NodeID { return 77 }
func (c captureDevice) Receive(pkt *netsim.Packet, _ int) {
	*c.sink = append(*c.sink, pkt)
}

func (h *receiverHarness) deliver(seq int64, payload int, ce, retx bool, tag uint32) *netsim.Packet {
	pkt := &netsim.Packet{
		Flow: 9, Src: 0, Dst: 1, Proto: netsim.ProtoTCP, Kind: netsim.KindData,
		Seq: seq, Payload: payload, Size: payload + netsim.HeaderBytes,
		ECT: true, CE: ce, Retx: retx, PathTag: tag,
		SentAt: h.eng.Now(), EchoTS: -1,
	}
	h.r.Deliver(pkt)
	h.eng.RunUntilIdle()
	return pkt
}

func (h *receiverHarness) lastAck(t *testing.T) *netsim.Packet {
	t.Helper()
	if len(h.acks) == 0 {
		t.Fatal("no ACK emitted")
	}
	return h.acks[len(h.acks)-1]
}

func TestReceiverCumulativeAck(t *testing.T) {
	h := newReceiverHarness(t, 10_000)
	h.deliver(0, 1000, false, false, 3)
	ack := h.lastAck(t)
	if ack.Seq != 1000 || ack.Kind != netsim.KindAck {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.Src != 1 || ack.Dst != 0 {
		t.Fatal("ack direction wrong")
	}
	if ack.PathTag != 3 {
		t.Fatal("ack must echo the data packet's path tag")
	}
}

func TestReceiverEchoesCE(t *testing.T) {
	h := newReceiverHarness(t, 10_000)
	h.deliver(0, 1000, true, false, 0)
	if !h.lastAck(t).ECE {
		t.Fatal("CE not echoed as ECE")
	}
	h.deliver(1000, 1000, false, false, 0)
	if h.lastAck(t).ECE {
		t.Fatal("clean packet acked with ECE (per-packet echo broken)")
	}
}

func TestReceiverHoleAndFill(t *testing.T) {
	h := newReceiverHarness(t, 10_000)
	h.deliver(0, 1000, false, false, 0)
	h.deliver(2000, 1000, false, false, 0) // hole at [1000, 2000)
	ack := h.lastAck(t)
	if ack.Seq != 1000 {
		t.Fatalf("dup-ack seq = %d, want 1000", ack.Seq)
	}
	if len(ack.Sacks) != 1 || ack.Sacks[0] != (netsim.SackBlock{Start: 2000, End: 3000}) {
		t.Fatalf("sacks = %+v", ack.Sacks)
	}
	h.deliver(1000, 1000, false, true, 0) // fill
	if got := h.lastAck(t).Seq; got != 3000 {
		t.Fatalf("ack after fill = %d, want 3000", got)
	}
}

func TestReceiverKarnEchoSuppression(t *testing.T) {
	h := newReceiverHarness(t, 10_000)
	h.deliver(0, 1000, false, true, 0) // retransmission
	if h.lastAck(t).EchoTS != -1 {
		t.Fatal("timestamp echoed for a retransmitted segment")
	}
	h.deliver(1000, 1000, false, false, 0)
	if h.lastAck(t).EchoTS < 0 {
		t.Fatal("timestamp missing for an original segment")
	}
}

func TestReceiverDSACKOnDuplicate(t *testing.T) {
	h := newReceiverHarness(t, 10_000)
	h.deliver(0, 1000, false, false, 0)
	if h.lastAck(t).DSACK {
		t.Fatal("fresh data flagged DSACK")
	}
	h.deliver(0, 1000, false, true, 0) // full duplicate below rcvNxt
	if !h.lastAck(t).DSACK {
		t.Fatal("duplicate below rcvNxt not flagged DSACK")
	}
	// Duplicate of an out-of-order (SACKed) block.
	h.deliver(5000, 1000, false, false, 0)
	h.deliver(5000, 1000, false, true, 0)
	if !h.lastAck(t).DSACK {
		t.Fatal("duplicate of a SACKed block not flagged DSACK")
	}
	if h.r.DupData != 2 {
		t.Fatalf("DupData = %d", h.r.DupData)
	}
}

func TestReceiverReorderDistReported(t *testing.T) {
	h := newReceiverHarness(t, 100_000)
	h.deliver(0, 1000, false, false, 0)
	h.deliver(10_000, 1000, false, false, 0)
	// An original segment arriving 9000 bytes below the max seen.
	h.deliver(1000, 1000, false, false, 0)
	if got := h.lastAck(t).ReorderDist; got != 9000 {
		t.Fatalf("ReorderDist = %d, want 9000", got)
	}
	if h.r.OutOfOrder != 1 {
		t.Fatalf("OutOfOrder = %d", h.r.OutOfOrder)
	}
	// Retransmissions never count as reordering.
	h.deliver(2000, 1000, false, true, 0)
	if got := h.lastAck(t).ReorderDist; got != 0 {
		t.Fatalf("retx reported reorder dist %d", got)
	}
	if h.r.OutOfOrder != 1 {
		t.Fatal("retransmission counted as out-of-order")
	}
}

func TestReceiverCompletion(t *testing.T) {
	h := newReceiverHarness(t, 3000)
	completed := false
	h.r.flow.OnComplete = func(f *Flow) { completed = true }
	h.deliver(0, 1000, false, false, 0)
	h.deliver(1000, 1000, false, false, 0)
	if completed || h.r.flow.Done() {
		t.Fatal("completed early")
	}
	h.deliver(2000, 1000, false, false, 0)
	if !completed || !h.r.flow.Done() {
		t.Fatal("completion not detected")
	}
}

func TestReceiverIgnoresAcks(t *testing.T) {
	h := newReceiverHarness(t, 1000)
	h.r.Deliver(&netsim.Packet{Kind: netsim.KindAck, Seq: 500})
	h.eng.RunUntilIdle()
	if len(h.acks) != 0 || h.r.DataPackets != 0 {
		t.Fatal("receiver reacted to an ACK")
	}
}
