package tcp_test

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

func repConfig() tcp.Config {
	cfg := tcp.DefaultConfig()
	cfg.Replicate = &tcp.ReplicateConfig{Cutoff: 100 * 1024}
	// Short RTOMax so loser-teardown quiet periods (2x RTOMax) elapse
	// within the tests' virtual time budget.
	cfg.RTOMax = 10 * sim.Millisecond
	return cfg
}

// TestRepFlowWinnerOnlyAccounting pins RepFlow's accounting contract: the
// parent flow reports exactly the winning sub-flow's measurements — bytes
// delivered, data packets, recovery episodes — never the sum over both
// replicas, and the losing replica's sender is aborted.
func TestRepFlowWinnerOnlyAccounting(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})

	cfg := repConfig()
	const size = 50_000
	f := tcp.StartFlow(eng, cfg, 1, ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1], size)
	if !f.Replicated() {
		t.Fatal("sub-cutoff flow not replicated")
	}
	subs := f.SubFlows()
	if len(subs) != tcp.ReplicationFactor {
		t.Fatalf("sub-flows = %d, want %d", len(subs), tcp.ReplicationFactor)
	}
	if subs[0].ID != 1 || subs[1].ID != tcp.ReplicaID(1) {
		t.Fatalf("sub-flow IDs = %d, %d; want %d, %d", subs[0].ID, subs[1].ID, 1, tcp.ReplicaID(1))
	}
	// The replica must take an independent ECMP draw: a distinct flow ID
	// maps to a distinct source port, so the fabric hashes it separately.
	if subs[0].Sender() == subs[1].Sender() {
		t.Fatal("replicas share a sender")
	}

	eng.Run(eng.Now() + 100*sim.Millisecond)
	if !f.Done() {
		t.Fatal("replicated flow incomplete")
	}
	w := f.Winner()
	if w == nil {
		t.Fatal("done flow has no winner")
	}

	// Parent observables are the winner's, verbatim.
	if f.Sender() != w.Sender() || f.Receiver() != w.Receiver() {
		t.Fatal("parent endpoints are not the winner's")
	}
	if f.RecvDone != w.RecvDone {
		t.Fatalf("parent RecvDone %v != winner's %v", f.RecvDone, w.RecvDone)
	}
	if f.DataPackets() != w.DataPackets() {
		t.Fatalf("parent data packets %d != winner's %d", f.DataPackets(), w.DataPackets())
	}
	if f.Recovery() != w.Recovery() {
		t.Fatalf("parent recovery %+v != winner's %+v", f.Recovery(), w.Recovery())
	}
	// One sub-flow's worth of segments, not two: replication must not
	// double-count delivered bytes. (Allow loss-free retransmit slack of a
	// couple of segments, but nowhere near 2x.)
	segs := int64((size + cfg.MSS - 1) / cfg.MSS)
	if f.DataPackets() < segs || f.DataPackets() > segs+segs/2 {
		t.Fatalf("parent data packets %d, want about %d (one replica's worth)", f.DataPackets(), segs)
	}

	// The loser is torn down, not raced to completion.
	for _, sub := range subs {
		if sub == w {
			if sub.Sender().Aborted() {
				t.Fatal("winner's sender aborted")
			}
			continue
		}
		if !sub.Sender().Aborted() {
			t.Fatal("loser's sender not aborted after the winner finished")
		}
	}
}

// TestRepFlowLoserHandlersReleased checks both replicas' dispatch slots —
// winner and aborted loser alike — are unregistered from the hosts after the
// quiet period, so replication cannot leak handler-table entries.
func TestRepFlowLoserHandlersReleased(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})
	src, dst := ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1]

	cfg := repConfig()
	f := tcp.StartFlow(eng, cfg, 1, src, dst, 50_000)
	eng.Run(eng.Now() + 5*sim.Millisecond)
	if !f.Done() {
		t.Fatal("replicated flow incomplete after 5 ms")
	}
	// Two senders at the source, two receivers at the destination.
	if n := src.HandlerCount() + dst.HandlerCount(); n == 0 {
		t.Fatal("no handlers registered while sub-flows are live")
	}
	eng.Run(eng.Now() + 3*cfg.RTOMax)
	if n := src.HandlerCount(); n != 0 {
		t.Errorf("src still holds %d handlers after replica teardown", n)
	}
	if n := dst.HandlerCount(); n != 0 {
		t.Errorf("dst still holds %d handlers after replica teardown", n)
	}
}

// TestRepFlowTeardownChurn is the replicated variant of
// TestFlowTeardownReleasesHandlers: sequential short flows, each spawning two
// sub-flows, must keep host handler counts bounded by live flows and drain to
// zero at the end — the loser's teardown path (abort, quiet period,
// unregister) has to keep up with churn just like normal completion does.
func TestRepFlowTeardownChurn(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})
	src, dst := ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1]

	cfg := repConfig()
	const flows = 50
	var peak int
	for i := 0; i < flows; i++ {
		f := tcp.StartFlow(eng, cfg, netsim.FlowID(i+1), src, dst, 50_000)
		eng.Run(eng.Now() + 5*sim.Millisecond)
		if !f.Done() {
			t.Fatalf("flow %d incomplete after 5 ms", i)
		}
		if n := src.HandlerCount() + dst.HandlerCount(); n > peak {
			peak = n
		}
	}
	// Each live flow holds up to 4 slots (two sub-flows x two endpoints);
	// the peak must track the handful of flows inside a quiet period, far
	// below the total churned.
	if peak >= 2*flows {
		t.Fatalf("handler peak %d not bounded by live flows (churned %d, 2 sub-flows each)", peak, flows)
	}
	eng.Run(eng.Now() + 3*cfg.RTOMax)
	if n := src.HandlerCount() + dst.HandlerCount(); n != 0 {
		t.Errorf("%d handlers leaked after replicated churn", n)
	}
}
