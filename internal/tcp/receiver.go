package tcp

import (
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
)

// Receiver is the data sink of a flow. It reassembles the byte stream,
// acknowledges data per the configured delayed-ACK policy, and accounts
// out-of-order arrivals.
//
// With DelayedAckCount = 1 (the default) every data packet is ACKed
// immediately and each ACK's ECE echoes that packet's CE bit exactly. With
// m > 1 the receiver coalesces in-order arrivals but runs DCTCP's two-state
// ECE machine: a change in the arriving CE state immediately flushes the
// pending ACK with the old state, so the sender's marked-byte accounting
// stays exact (DCTCP §3.2). Out-of-order data, duplicates, and
// retransmissions always trigger an immediate ACK (they carry loss-recovery
// signals the sender needs now).
type Receiver struct {
	eng  *sim.Engine
	cfg  Config
	flow *Flow

	srcPort, dstPort uint16 // for ACKs (receiver -> sender direction)
	// hashPrefix is the flow-constant selector hash state of the reverse
	// (ACK) direction, stamped into every packet the receiver emits.
	hashPrefix uint64
	// spray mirrors the sender's short-flow marking onto the reverse
	// direction so ACKs of sprayed flows are sprayed too.
	spray bool

	rcvNxt     int64
	maxSeqSeen int64
	sacked     intervalSet

	// Delayed-ACK state. ackTimer is non-nil exactly while a delayed-ACK
	// timer is pending: it is cleared both when the timer fires and when
	// flushAck cancels it, so the handle is never read after the engine has
	// recycled the event (the handle-lifetime contract in internal/sim).
	ceState     bool   // CE bit of the most recent data packet
	lastTag     uint32 // path tag of the most recent data packet (echoed)
	pending     int    // in-order packets not yet acknowledged
	pendingEcho sim.Time
	ackTimer    *sim.Event
	delackFn    func() // prebuilt timer callback

	// Counters.
	DataPackets int64
	OutOfOrder  int64
	DupData     int64 // data entirely below rcvNxt (spurious retransmissions)
	AcksSent    int64
	MarkedData  int64 // CE-marked data packets received
	FlushedByCE int64 // pending ACKs flushed by a CE state change
}

func newReceiver(eng *sim.Engine, cfg Config, flow *Flow, srcPort, dstPort uint16) *Receiver {
	r := &Receiver{
		eng: eng, cfg: cfg, flow: flow,
		srcPort: srcPort, dstPort: dstPort,
		maxSeqSeen: -1, pendingEcho: -1,
	}
	r.delackFn = r.onDelackTimer
	r.hashPrefix = routing.FlowHashPrefix(flow.Dst.ID(), flow.Src.ID(), srcPort, dstPort, netsim.ProtoTCP)
	r.spray = cfg.SprayShortCutoff > 0 && flow.Size < cfg.SprayShortCutoff
	return r
}

// onDelackTimer fires the delayed-ACK timeout: flush whatever is pending.
func (r *Receiver) onDelackTimer() {
	r.ackTimer = nil
	if r.pending > 0 {
		r.flushAck(false, 0)
	}
}

// Deliver implements netsim.Handler for the receiving host.
func (r *Receiver) Deliver(pkt *netsim.Packet) {
	if pkt.Kind == netsim.KindSyn {
		sa := r.flow.Dst.NewPacket()
		sa.Flow = r.flow.ID
		sa.Src = r.flow.Dst.ID()
		sa.Dst = r.flow.Src.ID()
		sa.SrcPort = r.srcPort
		sa.DstPort = r.dstPort
		sa.Proto = netsim.ProtoTCP
		sa.Kind = netsim.KindSynAck
		sa.HashPrefix = r.hashPrefix
		sa.HashPrefixOK = true
		sa.PathTag = pkt.PathTag
		sa.Spray = r.spray
		sa.Size = netsim.HeaderBytes
		sa.ECT = true
		sa.SentAt = r.eng.Now()
		sa.EchoTS = pkt.SentAt
		r.flow.Dst.Send(sa)
		return
	}
	if pkt.Kind != netsim.KindData {
		return
	}
	r.DataPackets++
	if pkt.CE {
		r.MarkedData++
	}

	// DCTCP ECE state machine: a CE transition flushes the coalesced ACK
	// under the old state before this packet is incorporated.
	if pkt.CE != r.ceState && r.pending > 0 {
		r.FlushedByCE++
		r.flushAck(false, 0)
	}
	r.ceState = pkt.CE
	r.lastTag = pkt.PathTag

	// Out-of-order accounting (§4.2.3): an original (non-retransmitted)
	// packet arriving below the highest sequence already seen was passed in
	// flight — the reordering that path changes and packet spraying cause.
	var reorderDist int64
	if pkt.Seq < r.maxSeqSeen && !pkt.Retx {
		r.OutOfOrder++
		reorderDist = r.maxSeqSeen - pkt.Seq
	}
	if pkt.Seq > r.maxSeqSeen {
		r.maxSeqSeen = pkt.Seq
	}

	end := pkt.Seq + int64(pkt.Payload)
	dup := false
	switch {
	case end <= r.rcvNxt:
		r.DupData++
		dup = true
	case pkt.Seq <= r.rcvNxt:
		r.rcvNxt = end
		r.rcvNxt = r.sacked.consume(r.rcvNxt)
	case r.sacked.covered(pkt.Seq, end):
		r.DupData++
		dup = true
	default:
		r.sacked.add(pkt.Seq, end)
	}

	done := r.rcvNxt >= r.flow.Size && r.flow.RecvDone < 0
	if done {
		r.flow.RecvDone = r.eng.Now()
		if r.flow.OnComplete != nil {
			r.flow.OnComplete(r.flow)
		}
		if r.flow.Src.Engine() != r.flow.Dst.Engine() {
			// Cross-shard flow: the sender's teardown cannot release this
			// host's dispatch slot from another engine, so the receiver
			// schedules its own — same 2x RTOMax quiet period, same
			// stray-traffic argument as Sender.scheduleTeardown.
			r.eng.Schedule(2*r.cfg.RTOMax, r.teardown)
		}
	}

	// Fold this packet into the pending-ACK state. Karn's rule: only
	// original segments contribute an RTT timestamp, and a coalesced ACK
	// echoes its earliest unacked one.
	r.pending++
	if r.pendingEcho < 0 && !pkt.Retx {
		r.pendingEcho = pkt.SentAt
	}

	immediate := dup || reorderDist > 0 || pkt.Retx || r.sacked.Len() > 0 ||
		done || r.pending >= r.cfg.DelayedAckCount
	if immediate {
		r.flushAck(dup, reorderDist)
		return
	}
	if r.ackTimer == nil {
		r.ackTimer = r.eng.Schedule(r.cfg.DelayedAckTimeout, r.delackFn)
	}
}

// teardown releases the receiver's dispatch slot on its own shard; used
// only for cross-shard flows (same-shard flows are torn down by the sender
// for both endpoints, preserving the serial unregister order).
func (r *Receiver) teardown() {
	r.flow.Dst.Unregister(r.flow.ID)
}

// flushAck emits the cumulative acknowledgment covering all pending data.
func (r *Receiver) flushAck(dsack bool, reorderDist int64) {
	ack := r.flow.Dst.NewPacket()
	ack.Flow = r.flow.ID
	ack.Src = r.flow.Dst.ID()
	ack.Dst = r.flow.Src.ID()
	ack.SrcPort = r.srcPort
	ack.DstPort = r.dstPort
	ack.Proto = netsim.ProtoTCP
	ack.Kind = netsim.KindAck
	ack.HashPrefix = r.hashPrefix
	ack.HashPrefixOK = true
	ack.Seq = r.rcvNxt
	ack.Size = netsim.HeaderBytes
	ack.ECT = true
	ack.ECE = r.ceState
	ack.SentAt = r.eng.Now()
	ack.EchoTS = r.pendingEcho
	ack.Sacks = r.sacked.appendBlocks(ack.Sacks[:0], maxSackBlocks)
	ack.DSACK = dsack
	ack.ReorderDist = reorderDist
	ack.PathTag = r.lastTag
	ack.Spray = r.spray
	r.pending = 0
	r.pendingEcho = -1
	if r.ackTimer != nil {
		r.eng.Cancel(r.ackTimer)
		r.ackTimer = nil
	}
	r.AcksSent++
	r.flow.Dst.Send(ack)
}

// intervalSet is a small sorted set of disjoint [start, end) byte ranges
// buffered above the in-order point.
type intervalSet struct {
	iv []ivl
}

type ivl struct{ s, e int64 }

// add inserts [s, e) and merges overlaps.
func (x *intervalSet) add(s, e int64) {
	if s >= e {
		return
	}
	// Find insertion point (sorted by start).
	i := 0
	for i < len(x.iv) && x.iv[i].s < s {
		i++
	}
	x.iv = append(x.iv, ivl{})
	copy(x.iv[i+1:], x.iv[i:])
	x.iv[i] = ivl{s, e}
	// Merge around i.
	j := i
	if j > 0 && x.iv[j-1].e >= x.iv[j].s {
		j--
	}
	for j+1 < len(x.iv) && x.iv[j].e >= x.iv[j+1].s {
		if x.iv[j+1].e > x.iv[j].e {
			x.iv[j].e = x.iv[j+1].e
		}
		x.iv = append(x.iv[:j+1], x.iv[j+2:]...)
	}
}

// consume advances next through any buffered interval that now abuts it and
// returns the new in-order point.
func (x *intervalSet) consume(next int64) int64 {
	for len(x.iv) > 0 && x.iv[0].s <= next {
		if x.iv[0].e > next {
			next = x.iv[0].e
		}
		x.iv = x.iv[1:]
	}
	return next
}

// Len returns the number of disjoint buffered ranges.
func (x *intervalSet) Len() int { return len(x.iv) }

// maxSackBlocks bounds the SACK option size, as the TCP option space does.
const maxSackBlocks = 4

// blocks returns up to max buffered ranges as SACK blocks, nearest the
// cumulative ACK point first (nil when empty).
func (x *intervalSet) blocks(max int) []netsim.SackBlock {
	return x.appendBlocks(nil, max)
}

// appendBlocks appends up to max buffered ranges to dst and returns the
// extended slice. Reusing dst's backing array is what keeps SACK-carrying
// ACKs allocation-free on pooled packets (the array survives recycling).
func (x *intervalSet) appendBlocks(dst []netsim.SackBlock, max int) []netsim.SackBlock {
	n := len(x.iv)
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		dst = append(dst, netsim.SackBlock{Start: x.iv[i].s, End: x.iv[i].e})
	}
	return dst
}

// covered returns whether [s, e) lies entirely inside one buffered range.
func (x *intervalSet) covered(s, e int64) bool {
	for _, r := range x.iv {
		if r.s <= s && e <= r.e {
			return true
		}
		if r.s > s {
			break
		}
	}
	return false
}

// bytesAbove returns how many buffered bytes lie at or above seq.
func (x *intervalSet) bytesAbove(seq int64) int64 {
	var n int64
	for _, r := range x.iv {
		if r.e <= seq {
			continue
		}
		s := r.s
		if s < seq {
			s = seq
		}
		n += r.e - s
	}
	return n
}

// nextUncovered returns the first byte >= seq not inside a buffered range.
func (x *intervalSet) nextUncovered(seq int64) int64 {
	for _, r := range x.iv {
		if seq < r.s {
			return seq
		}
		if seq < r.e {
			seq = r.e
		}
	}
	return seq
}
