package tcp_test

import (
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

func startOn(eng *sim.Engine, cfg tcp.Config) func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
	return func(id netsim.FlowID, src, dst *netsim.Host, size int64) *tcp.Flow {
		return tcp.StartFlow(eng, cfg, id, src, dst, size)
	}
}

// TestSingleFlowCompletes transfers 1 MB across the fat-tree and checks the
// completion time is in the physically sensible range.
func TestSingleFlowCompletes(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})

	const size = 1_000_000
	f := tcp.StartFlow(eng, tcp.DefaultConfig(), 1, ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1], size)
	eng.Run(1 * sim.Second)

	if !f.Done() {
		t.Fatalf("flow did not complete; sndUna stats: retx=%d timeouts=%d", f.Sender().Retransmits, f.Sender().Timeouts)
	}
	fct := f.FCT()
	// Line-rate lower bound: 1 MB at 10 Gbps is 800 us of serialization,
	// plus at least one RTT (~90 us) of slow-start ramp.
	if fct < 800*sim.Microsecond {
		t.Errorf("FCT %v faster than line rate", fct)
	}
	if fct > 20*sim.Millisecond {
		t.Errorf("FCT %v unreasonably slow for an idle fabric (timeouts=%d retx=%d)",
			fct, f.Sender().Timeouts, f.Sender().Retransmits)
	}
	if f.Sender().Timeouts != 0 {
		t.Errorf("unexpected timeouts on idle fabric: %d", f.Sender().Timeouts)
	}
	if f.OutOfOrder() != 0 {
		t.Errorf("unexpected out-of-order arrivals on a single path: %d", f.OutOfOrder())
	}
}

// TestFlowBenderFlowCompletes runs the same transfer with a FlowBender
// controller attached and DCTCP marking active.
func TestFlowBenderFlowCompletes(t *testing.T) {
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.TinyScale())
	ft.SetSelector(routing.ECMP{})

	cfg := tcp.DefaultConfig()
	fbCfg := core.Config{RNG: sim.NewRNG(7).Fork("fb")}
	cfg.FlowBender = &fbCfg

	// Two competing long flows from the same ToR to the same remote ToR.
	src := ft.TorHosts(0, 0)
	dst := ft.TorHosts(1, 0)
	f1 := tcp.StartFlow(eng, cfg, 1, ft.Hosts[src[0]], ft.Hosts[dst[0]], 5_000_000)
	f2 := tcp.StartFlow(eng, cfg, 2, ft.Hosts[src[1]], ft.Hosts[dst[1]], 5_000_000)
	eng.Run(4 * sim.Second)

	for _, f := range []*tcp.Flow{f1, f2} {
		if !f.Done() {
			t.Fatalf("flow %d did not complete", f.ID)
		}
	}
}

// TestManyFlowsConservation checks every byte of every flow is delivered
// under all four schemes, despite drops/reordering.
func TestManyFlowsConservation(t *testing.T) {
	for _, scheme := range []string{"ecmp", "rps", "detail", "flowbender"} {
		t.Run(scheme, func(t *testing.T) {
			eng := sim.NewEngine()
			p := topo.TinyScale()
			cfg := tcp.DefaultConfig()
			var sel netsim.Selector = routing.ECMP{}
			switch scheme {
			case "rps":
				sel = &routing.RPS{RNG: sim.NewRNG(3).Fork("rps")}
			case "detail":
				sel = routing.DeTail{}
				p.PFC = &netsim.PFCConfig{Pause: 20 * topo.KB, Unpause: 10 * topo.KB}
				cfg.DisableFastRetx = true
			case "flowbender":
				fb := core.Config{RNG: sim.NewRNG(3).Fork("fb")}
				cfg.FlowBender = &fb
			}
			ft := topo.NewFatTree(eng, p)
			ft.SetSelector(sel)

			rng := sim.NewRNG(42).Fork("flows")
			var flows []*tcp.Flow
			for i := 0; i < 40; i++ {
				src := rng.Intn(len(ft.Hosts))
				dst := rng.IntnExcept(len(ft.Hosts), src)
				size := int64(2_000 + rng.Intn(400_000))
				flows = append(flows, tcp.StartFlow(eng, cfg, netsim.FlowID(i+1), ft.Hosts[src], ft.Hosts[dst], size))
			}
			eng.Run(5 * sim.Second)
			for _, f := range flows {
				if !f.Done() {
					t.Errorf("flow %d (%d bytes) incomplete: retx=%d timeouts=%d",
						f.ID, f.Size, f.Sender().Retransmits, f.Sender().Timeouts)
				}
			}
		})
	}
}
