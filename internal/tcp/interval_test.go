package tcp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntervalAddMerge(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.add(20, 30) // bridges the gap
	if s.Len() != 1 || s.iv[0] != (ivl{10, 40}) {
		t.Fatalf("merge failed: %+v", s.iv)
	}
	s.add(5, 12) // overlaps the left edge
	if s.Len() != 1 || s.iv[0] != (ivl{5, 40}) {
		t.Fatalf("left merge failed: %+v", s.iv)
	}
	s.add(50, 50) // empty: ignored
	if s.Len() != 1 {
		t.Fatalf("empty interval inserted: %+v", s.iv)
	}
}

func TestIntervalConsume(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(20, 35)
	s.add(40, 50)
	if next := s.consume(10); next != 35 {
		t.Fatalf("consume(10) = %d, want 35", next)
	}
	if s.Len() != 1 {
		t.Fatalf("remaining = %+v", s.iv)
	}
	if next := s.consume(5); next != 5 {
		t.Fatalf("consume(5) = %d, want 5 (gap before 40)", next)
	}
}

func TestIntervalCoveredAndNextUncovered(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	if !s.covered(12, 18) || !s.covered(10, 20) {
		t.Fatal("covered() false negative")
	}
	if s.covered(15, 25) || s.covered(5, 12) || s.covered(20, 30) {
		t.Fatal("covered() false positive")
	}
	if got := s.nextUncovered(10); got != 20 {
		t.Fatalf("nextUncovered(10) = %d", got)
	}
	if got := s.nextUncovered(25); got != 25 {
		t.Fatalf("nextUncovered(25) = %d", got)
	}
	if got := s.nextUncovered(35); got != 40 {
		t.Fatalf("nextUncovered(35) = %d", got)
	}
}

func TestIntervalBytesAbove(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	if got := s.bytesAbove(0); got != 20 {
		t.Fatalf("bytesAbove(0) = %d", got)
	}
	if got := s.bytesAbove(15); got != 15 {
		t.Fatalf("bytesAbove(15) = %d", got)
	}
	if got := s.bytesAbove(40); got != 0 {
		t.Fatalf("bytesAbove(40) = %d", got)
	}
}

func TestIntervalBlocksCapped(t *testing.T) {
	var s intervalSet
	for i := int64(0); i < 10; i++ {
		s.add(i*100, i*100+50)
	}
	blocks := s.blocks(4)
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if blocks[0].Start != 0 || blocks[0].End != 50 {
		t.Fatalf("first block %+v", blocks[0])
	}
	if s.blocks(20) == nil || len(s.blocks(20)) != 10 {
		t.Fatal("uncapped blocks wrong")
	}
	var empty intervalSet
	if empty.blocks(4) != nil {
		t.Fatal("empty set should return nil blocks")
	}
}

// Property: intervalSet matches a reference bitmap implementation under
// random adds/consumes.
func TestIntervalSetMatchesReference(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s intervalSet
		ref := map[int64]bool{} // byte -> received
		const span = 400
		for range ops {
			a := int64(rng.Intn(span))
			b := a + int64(rng.Intn(40)) + 1
			s.add(a, b)
			for i := a; i < b; i++ {
				ref[i] = true
			}
			// Compare total bytes.
			var refBytes int64
			for i := int64(0); i < span+50; i++ {
				if ref[i] {
					refBytes++
				}
			}
			if got := s.bytesAbove(0); got != refBytes {
				return false
			}
			// Compare covered/nextUncovered at random probes.
			p := int64(rng.Intn(span))
			wantNext := p
			for ref[wantNext] {
				wantNext++
			}
			if s.nextUncovered(p) != wantNext {
				return false
			}
		}
		// Intervals must be sorted and disjoint.
		if !sort.SliceIsSorted(s.iv, func(i, j int) bool { return s.iv[i].s < s.iv[j].s }) {
			return false
		}
		for i := 1; i < len(s.iv); i++ {
			if s.iv[i-1].e >= s.iv[i].s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
