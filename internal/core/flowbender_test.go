package core

import (
	"testing"
	"testing/quick"

	"flowbender/internal/sim"
)

func feedEpoch(fb *FlowBender, marked, total int) bool {
	for i := 0; i < total; i++ {
		fb.OnAck(i < marked)
	}
	return fb.OnRTTEnd()
}

func TestDefaults(t *testing.T) {
	fb := New(Config{})
	if fb.cfg.T != DefaultT || fb.cfg.N != DefaultN || fb.cfg.NumValues != DefaultNumValues {
		t.Fatalf("defaults not applied: %+v", fb.cfg)
	}
	if fb.PathTag() != 0 {
		t.Fatalf("deterministic start tag should be 0, got %d", fb.PathTag())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	cases := []Config{
		{T: -0.1},
		{T: 1.5},
		{N: -1},
		{EWMAGamma: 2},
		{DesyncN: true}, // requires RNG
		{MinEpochGap: -2},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestNoRerouteBelowThreshold(t *testing.T) {
	fb := New(Config{T: 0.05})
	for i := 0; i < 100; i++ {
		// Exactly at threshold: F = 5% is NOT > T.
		if feedEpoch(fb, 5, 100) {
			t.Fatalf("rerouted at F == T on epoch %d", i)
		}
	}
	if fb.Stats().Reroutes != 0 {
		t.Fatalf("reroutes = %d, want 0", fb.Stats().Reroutes)
	}
}

func TestRerouteAboveThreshold(t *testing.T) {
	fb := New(Config{T: 0.05})
	if !feedEpoch(fb, 6, 100) {
		t.Fatal("no reroute at F = 6% > T = 5% with N = 1")
	}
	if got := fb.Stats().Reroutes; got != 1 {
		t.Fatalf("reroutes = %d, want 1", got)
	}
}

func TestTagChangesOnReroute(t *testing.T) {
	fb := New(Config{})
	before := fb.PathTag()
	feedEpoch(fb, 100, 100)
	if fb.PathTag() == before {
		t.Fatalf("tag did not change on reroute (still %d)", before)
	}
}

func TestTagChangesWithRNGNeverSame(t *testing.T) {
	fb := New(Config{RNG: sim.NewRNG(11)})
	for i := 0; i < 200; i++ {
		before := fb.PathTag()
		feedEpoch(fb, 10, 10)
		if fb.PathTag() == before {
			t.Fatalf("iteration %d: reroute kept tag %d", i, before)
		}
	}
}

func TestConsecutiveNRequirement(t *testing.T) {
	fb := New(Config{N: 3})
	if feedEpoch(fb, 10, 10) || feedEpoch(fb, 10, 10) {
		t.Fatal("rerouted before N=3 consecutive congested epochs")
	}
	if !feedEpoch(fb, 10, 10) {
		t.Fatal("did not reroute on the 3rd consecutive congested epoch")
	}
}

func TestCleanEpochResetsConsecutiveCount(t *testing.T) {
	fb := New(Config{N: 2})
	feedEpoch(fb, 10, 10) // congested 1
	feedEpoch(fb, 0, 10)  // clean: reset
	if feedEpoch(fb, 10, 10) {
		t.Fatal("rerouted with only 1 consecutive congested epoch after reset")
	}
	if !feedEpoch(fb, 10, 10) {
		t.Fatal("did not reroute after 2 consecutive congested epochs")
	}
}

func TestEmptyEpochIgnored(t *testing.T) {
	fb := New(Config{N: 2})
	feedEpoch(fb, 10, 10)
	if fb.OnRTTEnd() {
		t.Fatal("empty epoch caused a reroute")
	}
	if got := fb.Stats().Epochs; got != 1 {
		t.Fatalf("empty epoch was counted: epochs = %d, want 1", got)
	}
	// An ack-less epoch carries no information, so it must not reset the
	// consecutive-congested count either.
	if !feedEpoch(fb, 10, 10) {
		t.Fatal("congested streak lost across an empty epoch")
	}
}

func TestTimeoutAlwaysReroutes(t *testing.T) {
	fb := New(Config{MinEpochGap: 100})
	before := fb.PathTag()
	fb.OnTimeout()
	if fb.PathTag() == before {
		t.Fatal("timeout did not change the tag")
	}
	st := fb.Stats()
	if st.TimeoutReroutes != 1 || st.Reroutes != 1 {
		t.Fatalf("stats = %+v, want one timeout reroute", st)
	}
}

func TestMinEpochGapSuppresses(t *testing.T) {
	fb := New(Config{MinEpochGap: 3})
	feedEpoch(fb, 10, 10) // reroute 1
	if feedEpoch(fb, 10, 10) || feedEpoch(fb, 10, 10) {
		t.Fatal("reroute within the gap window")
	}
	if !feedEpoch(fb, 10, 10) {
		t.Fatal("no reroute after the gap expired")
	}
	if got := fb.Stats().SuppressedByGap; got != 2 {
		t.Fatalf("SuppressedByGap = %d, want 2", got)
	}
}

func TestEWMASmoothing(t *testing.T) {
	// With gamma = 0.5 a single 8% spike smooths to 4% < T: no reroute.
	fb := New(Config{T: 0.05, EWMAGamma: 0.5})
	if feedEpoch(fb, 8, 100) {
		t.Fatal("smoothed F should not exceed T after one spike")
	}
	// A second consecutive spike pushes the smoothed F to 6% > T.
	if !feedEpoch(fb, 8, 100) {
		t.Fatal("smoothed F should exceed T after two spikes")
	}
}

func TestDesyncNStaysInRange(t *testing.T) {
	fb := New(Config{N: 2, DesyncN: true, RNG: sim.NewRNG(5)})
	for i := 0; i < 500; i++ {
		feedEpoch(fb, 10, 10)
		if n := fb.RequiredN(); n < 1 || n > 3 {
			t.Fatalf("RequiredN = %d out of {1,2,3}", n)
		}
	}
}

// Property: the path tag always stays within [0, NumValues).
func TestTagRangeProperty(t *testing.T) {
	rng := sim.NewRNG(99)
	f := func(numValues uint8, marks []byte) bool {
		nv := uint32(numValues%16) + 1
		fb := New(Config{NumValues: nv, RNG: rng})
		for _, m := range marks {
			feedEpoch(fb, int(m%11), 10)
			fb.OnAck(true)
			if m%7 == 0 {
				fb.OnTimeout()
			}
			if fb.PathTag() >= nv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reroutes never exceed congested epochs + timeouts, and congested
// epochs never exceed total epochs.
func TestCounterInvariants(t *testing.T) {
	rng := sim.NewRNG(7)
	f := func(marks []byte, timeouts uint8) bool {
		fb := New(Config{RNG: rng})
		for _, m := range marks {
			feedEpoch(fb, int(m)%11, 10)
		}
		for i := 0; i < int(timeouts%5); i++ {
			fb.OnTimeout()
		}
		st := fb.Stats()
		return st.Reroutes <= st.CongestedEpochs+st.TimeoutReroutes &&
			st.CongestedEpochs <= st.Epochs &&
			st.Reroutes >= st.TimeoutReroutes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with N = 1 and no gap limiting, every congested epoch reroutes.
func TestEveryCongestedEpochReroutesWithN1(t *testing.T) {
	f := func(marks []byte) bool {
		fb := New(Config{})
		for _, m := range marks {
			mk := int(m) % 11
			rerouted := feedEpoch(fb, mk, 10)
			if (float64(mk)/10 > DefaultT) != rerouted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsLastF(t *testing.T) {
	fb := New(Config{})
	feedEpoch(fb, 3, 10)
	if got := fb.Stats().LastF; got != 0.3 {
		t.Fatalf("LastF = %v, want 0.3", got)
	}
}
