package core_test

import (
	"fmt"

	"flowbender/internal/core"
)

// The transport drives a FlowBender controller with one OnAck per
// acknowledgment and one OnRTTEnd per round trip; it stamps PathTag into
// every outgoing packet.
func ExampleFlowBender() {
	fb := core.New(core.Config{T: 0.05, N: 1}) // paper defaults, deterministic V

	// A clean round trip: 10 ACKs, none marked.
	for i := 0; i < 10; i++ {
		fb.OnAck(false)
	}
	fmt.Println("clean epoch rerouted:", fb.OnRTTEnd(), "tag:", fb.PathTag())

	// A congested round trip: 3 of 10 ACKs carry the ECN echo (30% > 5%).
	for i := 0; i < 10; i++ {
		fb.OnAck(i < 3)
	}
	fmt.Println("congested epoch rerouted:", fb.OnRTTEnd(), "tag:", fb.PathTag())

	// An RTO re-draws V immediately (failure recovery).
	fb.OnTimeout()
	fmt.Println("after timeout, tag:", fb.PathTag(), "reroutes:", fb.Stats().Reroutes)

	// Output:
	// clean epoch rerouted: false tag: 0
	// congested epoch rerouted: true tag: 1
	// after timeout, tag: 2 reroutes: 2
}

// A Sprayer re-draws the tag every burst, for unreliable transports.
func ExampleSprayer() {
	s := core.NewSprayer(8, 3000, nil) // new tag every 3000 bytes
	for i := 0; i < 4; i++ {
		fmt.Println("packet", i, "tag", s.Tag(1500))
	}
	// Output:
	// packet 0 tag 0
	// packet 1 tag 0
	// packet 2 tag 1
	// packet 3 tag 1
}
