// Package core implements FlowBender, the paper's contribution: end-host,
// flow-level adaptive routing for ECMP datacenter fabrics (Kabbani et al.,
// CoNEXT 2014).
//
// A FlowBender instance is attached to one transport flow. The transport
// feeds it one OnAck call per acknowledgment (with the ECN-echo bit) and one
// OnRTTEnd call per round-trip epoch; FlowBender tracks the fraction F of
// marked ACKs in the epoch and, when F exceeds the threshold T for N
// consecutive epochs — or when the transport suffers a retransmission
// timeout — it re-draws the flow's path tag V. The transport stamps V into a
// flexible header field (TTL, VLAN ID, ...) that switches fold into their
// ECMP hash, so a new V re-routes every subsequent packet of the flow onto
// an independently hashed path while keeping all packets of one V in order.
//
// The package is transport-agnostic: internal/tcp drives it from DCTCP's ECN
// stream, and Sprayer reuses the tag mechanism for the paper's §3.4.3
// burst-level spraying of unreliable (UDP) traffic.
package core

import (
	"fmt"

	"flowbender/internal/sim"
)

// Default parameter values, per §4.2 of the paper.
const (
	// DefaultT is the congestion threshold on the fraction of marked ACKs.
	DefaultT = 0.05
	// DefaultN is the number of consecutive congested RTTs before rerouting.
	DefaultN = 1
	// DefaultNumValues is the size of the path-tag range; the paper found 8
	// options empirically sufficient (even 2 were effective).
	DefaultNumValues = 8
)

// Config holds FlowBender's tuning knobs. The zero value is usable and maps
// to the paper's recommended settings.
type Config struct {
	// T is the congestion threshold: an RTT epoch is "congested" when the
	// fraction of ECN-marked ACKs exceeds T. 0 means DefaultT. The paper
	// found FlowBender effective across T in [1%, 10%] (§3.4, Figure 7).
	T float64

	// N is how many consecutive congested RTTs are required before the flow
	// is rerouted (§3.4.1). 0 means DefaultN (= 1, reroute immediately).
	N int

	// NumValues is the number of distinct path-tag values V is drawn from.
	// 0 means DefaultNumValues.
	NumValues uint32

	// DesyncN, when true, randomizes the required consecutive count among
	// {N-1, N, N+1} after each reroute, the paper's §3.4.2 option for
	// de-synchronizing simultaneous rerouting waves. Requires RNG.
	DesyncN bool

	// EWMAGamma, when in (0,1], smooths F across epochs as
	// F <- gamma*F_epoch + (1-gamma)*F before comparing against T — the
	// §3.4.1 footnote's optional smoother. 0 disables smoothing (paper
	// default: compare the raw per-epoch fraction).
	EWMAGamma float64

	// MinEpochGap, when > 0, enforces at least this many RTT epochs between
	// congestion-triggered reroutes — the §5.1 stability extension limiting
	// path-change thrashing. Timeout-triggered reroutes are never limited
	// (a broken path must be escaped immediately). A negative value means
	// explicitly disabled (useful where a caller treats 0 as "use default").
	MinEpochGap int

	// RNG supplies randomness for V draws and DesyncN. When nil, V cycles
	// deterministically through its range (V+1 mod NumValues), which is the
	// simplest conforming implementation and convenient for tests.
	RNG *sim.RNG

	// InitialTag fixes the starting V; with an RNG the default start is a
	// uniform draw, without one it is 0.
	InitialTag uint32
}

func (c Config) withDefaults() Config {
	if c.T == 0 {
		c.T = DefaultT
	}
	if c.N == 0 {
		c.N = DefaultN
	}
	if c.NumValues == 0 {
		c.NumValues = DefaultNumValues
	}
	return c
}

func (c Config) validate() error {
	if c.T < 0 || c.T > 1 {
		return fmt.Errorf("flowbender: T=%v out of [0,1]", c.T)
	}
	if c.N < 0 {
		return fmt.Errorf("flowbender: N=%d negative", c.N)
	}
	if c.EWMAGamma < 0 || c.EWMAGamma > 1 {
		return fmt.Errorf("flowbender: EWMAGamma=%v out of [0,1]", c.EWMAGamma)
	}
	if c.DesyncN && c.RNG == nil {
		return fmt.Errorf("flowbender: DesyncN requires an RNG")
	}
	if c.MinEpochGap < -1 {
		return fmt.Errorf("flowbender: MinEpochGap=%d invalid", c.MinEpochGap)
	}
	return nil
}

// Stats are cumulative counters describing one flow's rerouting history.
type Stats struct {
	Epochs          int64 // RTT epochs observed
	CongestedEpochs int64 // epochs with F > T
	Reroutes        int64 // total V changes
	TimeoutReroutes int64 // V changes triggered by RTOs
	SuppressedByGap int64 // reroutes skipped due to MinEpochGap
	LastF           float64
}

// FlowBender is the per-flow rerouting controller. It is not safe for
// concurrent use; a flow's transport drives it from the simulation loop.
type FlowBender struct {
	cfg Config

	tag           uint32
	marked, total int64 // ACK counts in the current epoch
	congested     int   // consecutive congested epochs
	requiredN     int   // current N target (varies under DesyncN)
	fSmooth       float64
	sinceReroute  int // epochs since last reroute (for MinEpochGap)

	stats Stats
}

// New returns a controller for one flow. It panics on an invalid Config
// (programmer error: the config is code, not input).
func New(cfg Config) *FlowBender {
	fb := Make(cfg)
	return &fb
}

// Make is New without the heap allocation: it returns the controller by
// value for embedding in caller-managed slot arrays (the fluid engine keeps
// one per transfer slot in a parallel slice so steady-state flow churn
// allocates nothing). Semantics are identical to New.
func Make(cfg Config) FlowBender {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	fb := FlowBender{cfg: cfg, requiredN: cfg.N, sinceReroute: 1 << 30}
	fb.tag = cfg.InitialTag % cfg.NumValues
	if cfg.RNG != nil && cfg.InitialTag == 0 {
		fb.tag = uint32(cfg.RNG.Intn(int(cfg.NumValues)))
	}
	if cfg.DesyncN {
		fb.drawRequiredN()
	}
	return fb
}

// PathTag returns the current value V to stamp into outgoing packets.
func (fb *FlowBender) PathTag() uint32 { return fb.tag }

// OnAck records one acknowledgment; marked is the ACK's ECN-echo bit.
func (fb *FlowBender) OnAck(marked bool) {
	fb.total++
	if marked {
		fb.marked++
	}
}

// OnRTTEnd closes the current RTT epoch, evaluating the pseudocode of §3.4.1:
//
//	F = marked/total
//	if F > T { if ++congested >= N { congested = 0; change V } }
//	else     { congested = 0 }
//
// It returns true when the flow was rerouted. Epochs with no ACKs are
// ignored (no information).
func (fb *FlowBender) OnRTTEnd() bool {
	if fb.total == 0 {
		return false
	}
	f := float64(fb.marked) / float64(fb.total)
	fb.marked, fb.total = 0, 0
	return fb.closeEpoch(f)
}

// OnEpochF closes one RTT epoch with an externally estimated marked-ACK
// fraction f, applying exactly the §3.4.1 decision rule OnRTTEnd applies to
// the counted fraction. The fluid engine drives it: there is no per-ACK
// stream at flow-level fidelity, so f comes from the M/M/1-style marking
// model over the flow's path utilization. Unlike OnRTTEnd, every call
// counts as an observed epoch (the estimate always carries information).
// Any ACK counts accumulated via OnAck are discarded.
func (fb *FlowBender) OnEpochF(f float64) bool {
	fb.marked, fb.total = 0, 0
	return fb.closeEpoch(f)
}

// closeEpoch is the shared tail of OnRTTEnd/OnEpochF: EWMA smoothing, epoch
// accounting, the N-consecutive congestion test, the MinEpochGap limiter,
// and the reroute itself. Returns true when the flow was rerouted.
func (fb *FlowBender) closeEpoch(f float64) bool {
	if g := fb.cfg.EWMAGamma; g > 0 {
		fb.fSmooth = g*f + (1-g)*fb.fSmooth
		f = fb.fSmooth
	}
	fb.stats.Epochs++
	fb.stats.LastF = f
	fb.sinceReroute++

	if f <= fb.cfg.T {
		fb.congested = 0
		return false
	}
	fb.stats.CongestedEpochs++
	fb.congested++
	if fb.congested < fb.requiredN {
		return false
	}
	fb.congested = 0
	if gap := fb.cfg.MinEpochGap; gap > 0 && fb.sinceReroute < gap {
		fb.stats.SuppressedByGap++
		return false
	}
	fb.reroute()
	return true
}

// OnTimeout reroutes immediately: an RTO signals a possibly broken path, and
// escaping it within one RTO is FlowBender's failure-recovery story (§3.3.2).
func (fb *FlowBender) OnTimeout() {
	fb.stats.TimeoutReroutes++
	fb.congested = 0
	fb.reroute()
}

func (fb *FlowBender) reroute() {
	fb.stats.Reroutes++
	fb.sinceReroute = 0
	n := int(fb.cfg.NumValues)
	if n <= 1 {
		return
	}
	if fb.cfg.RNG != nil {
		fb.tag = uint32(fb.cfg.RNG.IntnExcept(n, int(fb.tag)))
	} else {
		fb.tag = (fb.tag + 1) % uint32(n)
	}
	if fb.cfg.DesyncN {
		fb.drawRequiredN()
	}
}

// drawRequiredN re-draws the consecutive-RTT requirement among
// {N-1, N, N+1}, clamped to >= 1, so that flows sharing a congested link do
// not all reroute in the same RTT and cascade into a rerouting wave
// (§3.4.2). It is drawn at creation and after every reroute.
func (fb *FlowBender) drawRequiredN() {
	fb.requiredN = fb.cfg.N - 1 + fb.cfg.RNG.Intn(3)
	if fb.requiredN < 1 {
		fb.requiredN = 1
	}
}

// Stats returns a copy of the flow's rerouting counters.
func (fb *FlowBender) Stats() Stats { return fb.stats }

// RequiredN returns the current consecutive-congested-epoch requirement
// (varies only under DesyncN).
func (fb *FlowBender) RequiredN() int { return fb.requiredN }
