package core

import (
	"testing"

	"flowbender/internal/sim"
)

func TestSprayerChangesTagEveryBurst(t *testing.T) {
	s := NewSprayer(8, 1000, nil)
	first := s.Tag(400) // 400 bytes into burst
	if s.Tag(400) != first {
		t.Fatal("tag changed mid-burst")
	}
	// Third call starts at 800 < 1000, still same burst.
	if s.Tag(400) != first {
		t.Fatal("tag changed before burst boundary")
	}
	// Now 1200 >= 1000 accounted: next call rolls the tag.
	if s.Tag(400) == first {
		t.Fatal("tag did not change after burst boundary")
	}
	if s.Changes != 1 {
		t.Fatalf("Changes = %d, want 1", s.Changes)
	}
}

func TestSprayerTagInRange(t *testing.T) {
	s := NewSprayer(4, 100, sim.NewRNG(3))
	for i := 0; i < 10_000; i++ {
		if tag := s.Tag(64); tag >= 4 {
			t.Fatalf("tag %d out of range", tag)
		}
	}
	if s.TotalBytes() != 640_000 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestSprayerRandomNeverRepeatsOnChange(t *testing.T) {
	s := NewSprayer(8, 10, sim.NewRNG(4))
	prev := s.Tag(10)
	for i := 0; i < 1000; i++ {
		cur := s.Tag(10) // every call crosses the burst boundary
		if cur == prev {
			t.Fatalf("burst change kept tag %d", cur)
		}
		prev = cur
	}
}

func TestSprayerDefaults(t *testing.T) {
	s := NewSprayer(0, 0, nil)
	if s.numValues != DefaultNumValues {
		t.Fatalf("numValues = %d", s.numValues)
	}
	if s.burst != 64*1024 {
		t.Fatalf("burst = %d", s.burst)
	}
}
