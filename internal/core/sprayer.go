package core

import "flowbender/internal/sim"

// Sprayer implements the paper's §3.4.3 extension for unreliable transports:
// instead of rerouting only on congestion, a UDP-style flow changes its path
// tag every burst (every BurstBytes of payload), spraying bursts across
// paths at a controlled pace. Applications using UDP are typically robust to
// reordering, so the finer granularity trades ordering for balance.
type Sprayer struct {
	numValues uint32
	burst     int64
	rng       *sim.RNG

	tag   uint32
	sent  int64
	total int64

	// Changes counts tag changes, for tests and diagnostics.
	Changes int64
}

// NewSprayer returns a sprayer cycling through numValues tags every
// burstBytes of payload. rng may be nil for deterministic cycling.
func NewSprayer(numValues uint32, burstBytes int64, rng *sim.RNG) *Sprayer {
	if numValues == 0 {
		numValues = DefaultNumValues
	}
	if burstBytes <= 0 {
		burstBytes = 64 * 1024
	}
	s := &Sprayer{numValues: numValues, burst: burstBytes, rng: rng}
	if rng != nil {
		s.tag = uint32(rng.Intn(int(numValues)))
	}
	return s
}

// Tag returns the path tag for the next payload of n bytes and advances the
// burst accounting.
func (s *Sprayer) Tag(n int) uint32 {
	if s.sent >= s.burst {
		s.sent = 0
		s.Changes++
		if s.numValues > 1 {
			if s.rng != nil {
				s.tag = uint32(s.rng.IntnExcept(int(s.numValues), int(s.tag)))
			} else {
				s.tag = (s.tag + 1) % s.numValues
			}
		}
	}
	s.sent += int64(n)
	s.total += int64(n)
	return s.tag
}

// TotalBytes returns the cumulative payload accounted.
func (s *Sprayer) TotalBytes() int64 { return s.total }
