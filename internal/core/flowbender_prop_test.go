package core

import (
	"math/rand"
	"testing"

	"flowbender/internal/sim"
)

// propModel mirrors the observable pieces of the controller's state from
// the outside: what an auditor watching the OnAck/OnRTTEnd/OnTimeout
// stream can know without reading private fields.
type propModel struct {
	cfg Config // effective (defaults applied)

	// consecCongested counts consecutive congested non-empty epochs as
	// observed; it is >= the controller's internal counter (which also
	// resets on gap-suppressed firings), so it upper-bounds nothing but
	// lower-bounds are valid: a reroute with consecCongested < minimum
	// required N is a bug regardless of suppression history.
	consecCongested int
	// epochsSinceReroute counts non-empty epochs since the last observed
	// reroute of any kind (large at start: the first is unconstrained).
	epochsSinceReroute int
	fSmooth            float64
	sawReroute         bool
}

// minRequiredN is the smallest consecutive-congested requirement the
// controller may legally apply: N, or N-1 (clamped to 1) under DesyncN.
func (m *propModel) minRequiredN() int {
	n := m.cfg.N
	if m.cfg.DesyncN {
		n--
	}
	if n < 1 {
		n = 1
	}
	return n
}

// randomConfig draws a controller configuration across the whole knob
// space, including the defaults-selecting zero values.
func randomConfig(r *rand.Rand, trial int) Config {
	cfg := Config{
		T:           []float64{0, 0.01, 0.05, 0.2, 0.5}[r.Intn(5)],
		N:           r.Intn(4),                          // 0 = DefaultN
		NumValues:   []uint32{0, 1, 2, 8, 16}[r.Intn(5)], // 0 = DefaultNumValues
		MinEpochGap: r.Intn(8) - 1,                      // -1 = explicitly off
		DesyncN:     r.Intn(2) == 0,
		EWMAGamma:   []float64{0, 0, 0.5, 1}[r.Intn(4)],
	}
	if cfg.DesyncN || r.Intn(2) == 0 {
		cfg.RNG = sim.NewRNG(int64(trial))
	}
	return cfg
}

// TestFlowBenderInvariants drives random configurations with random mark
// sequences and checks the §3.4 state machine's contracts from the
// outside.
func TestFlowBenderInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		cfg := randomConfig(r, trial)
		fb := New(cfg)
		eff := cfg.withDefaults()
		m := &propModel{cfg: eff, epochsSinceReroute: 1 << 30}

		checkTag := func(when string) {
			if fb.PathTag() >= eff.NumValues {
				t.Fatalf("trial %d (%s): V=%d outside [0,%d)", trial, when, fb.PathTag(), eff.NumValues)
			}
		}
		checkTag("init")

		for step := 0; step < 400; step++ {
			if r.Intn(10) == 0 {
				// An RTO must always reroute, regardless of gaps or N.
				pre := fb.Stats()
				preTag := fb.PathTag()
				fb.OnTimeout()
				post := fb.Stats()
				if post.Reroutes != pre.Reroutes+1 || post.TimeoutReroutes != pre.TimeoutReroutes+1 {
					t.Fatalf("trial %d step %d: OnTimeout did not reroute: %+v -> %+v", trial, step, pre, post)
				}
				if eff.NumValues > 1 && fb.PathTag() == preTag {
					t.Fatalf("trial %d step %d: timeout reroute kept V=%d", trial, step, preTag)
				}
				m.epochsSinceReroute = 0
				m.consecCongested = 0
				m.sawReroute = true
				checkTag("timeout")
				continue
			}

			acks := r.Intn(5) // 0 = an epoch with no ACKs: no information
			marked := 0
			for j := 0; j < acks; j++ {
				mk := r.Intn(3) == 0
				if mk {
					marked++
				}
				fb.OnAck(mk)
			}
			preTag := fb.PathTag()
			pre := fb.Stats()
			rerouted := fb.OnRTTEnd()
			checkTag("epoch")

			if acks == 0 {
				if rerouted {
					t.Fatalf("trial %d step %d: rerouted on an empty epoch", trial, step)
				}
				if fb.Stats().Epochs != pre.Epochs {
					t.Fatalf("trial %d step %d: empty epoch counted", trial, step)
				}
				continue
			}

			f := float64(marked) / float64(acks)
			if g := eff.EWMAGamma; g > 0 {
				m.fSmooth = g*f + (1-g)*m.fSmooth
				f = m.fSmooth
			}
			congested := f > eff.T
			if congested {
				m.consecCongested++
			} else {
				m.consecCongested = 0
			}
			m.epochsSinceReroute++

			if rerouted {
				// Never before the minimum consecutive-congested count.
				if !congested {
					t.Fatalf("trial %d step %d: rerouted on an uncongested epoch (F=%v T=%v)", trial, step, f, eff.T)
				}
				if m.consecCongested < m.minRequiredN() {
					t.Fatalf("trial %d step %d: rerouted after %d consecutive congested epochs; requires >= %d",
						trial, step, m.consecCongested, m.minRequiredN())
				}
				// Never within MinEpochGap of a previous reroute.
				if gap := eff.MinEpochGap; gap > 0 && m.sawReroute && m.epochsSinceReroute < gap {
					t.Fatalf("trial %d step %d: congestion reroute %d epochs after the last one; gap is %d",
						trial, step, m.epochsSinceReroute, gap)
				}
				if fb.Stats().Reroutes != pre.Reroutes+1 {
					t.Fatalf("trial %d step %d: OnRTTEnd=true but Reroutes did not advance", trial, step)
				}
				if eff.NumValues > 1 && fb.PathTag() == preTag {
					t.Fatalf("trial %d step %d: reroute kept V=%d", trial, step, preTag)
				}
				m.epochsSinceReroute = 0
				m.consecCongested = 0
				m.sawReroute = true
			} else if fb.Stats().Reroutes != pre.Reroutes {
				t.Fatalf("trial %d step %d: OnRTTEnd=false but Reroutes advanced", trial, step)
			}
		}
	}
}

// TestFlowBenderDeterministicModel is a differential test: without DesyncN
// the controller's reroute decisions are a pure function of the mark
// stream, so an independent reimplementation of the §3.4.1 pseudocode
// (plus the §5.1 gap limiter) must agree with it exactly.
func TestFlowBenderDeterministicModel(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		cfg := randomConfig(r, trial)
		cfg.DesyncN = false
		fb := New(cfg)
		eff := cfg.withDefaults()

		var fSmooth float64
		congested := 0
		sinceReroute := 1 << 30
		for step := 0; step < 500; step++ {
			acks := r.Intn(5)
			marked := 0
			for j := 0; j < acks; j++ {
				mk := r.Intn(3) == 0
				if mk {
					marked++
				}
				fb.OnAck(mk)
			}
			got := fb.OnRTTEnd()

			want := false
			if acks > 0 {
				f := float64(marked) / float64(acks)
				if g := eff.EWMAGamma; g > 0 {
					fSmooth = g*f + (1-g)*fSmooth
					f = fSmooth
				}
				sinceReroute++
				if f > eff.T {
					congested++
					if congested >= eff.N {
						congested = 0
						if gap := eff.MinEpochGap; gap <= 0 || sinceReroute >= gap {
							want = true
							sinceReroute = 0
						}
					}
				} else {
					congested = 0
				}
			}
			if got != want {
				t.Fatalf("trial %d step %d (cfg %+v): OnRTTEnd=%v, model says %v", trial, step, eff, got, want)
			}
		}
	}
}
