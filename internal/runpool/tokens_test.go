package runpool

import "testing"

func TestTryAcquireRespectsBudget(t *testing.T) {
	p := New(4)
	if got := p.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) on empty pool = %d; want 2", got)
	}
	if got := p.TryAcquire(10); got != 2 {
		t.Fatalf("TryAcquire(10) with 2 free = %d; want 2", got)
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire(1) on full pool = %d; want 0", got)
	}
	p.Release(4)
	if got := p.TryAcquire(4); got != 4 {
		t.Fatalf("TryAcquire(4) after release = %d; want 4", got)
	}
	p.Release(4)
}

// Tokens borrowed by a running task come out of the same budget that admits
// sibling tasks: with the pool saturated by tasks, TryAcquire gets nothing,
// and tokens grabbed up front keep tasks queued.
func TestTryAcquireSharesBudgetWithTasks(t *testing.T) {
	p := New(2)
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	f1 := Submit(p, func() int { started <- struct{}{}; <-block; return 1 })
	f2 := Submit(p, func() int { started <- struct{}{}; <-block; return 2 })
	<-started
	<-started
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire with pool saturated by tasks = %d; want 0", got)
	}
	close(block)
	if f1.Wait() != 1 || f2.Wait() != 2 {
		t.Fatal("tasks returned wrong values")
	}
	if got := p.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire after tasks drained = %d; want 2", got)
	}
	p.Release(2)
}
