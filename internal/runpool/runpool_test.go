package runpool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	p := New(8)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	// Earlier items sleep longer, so completion order is roughly reversed;
	// the results must still come back in submission order.
	out := Map(p, items, func(i int) int {
		time.Sleep(time.Duration(len(items)-i) * 10 * time.Microsecond)
		return i * i
	})
	if len(out) != len(items) {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelismBound(t *testing.T) {
	const bound = 3
	p := New(bound)
	if p.Parallelism() != bound {
		t.Fatalf("Parallelism() = %d", p.Parallelism())
	}
	var running, peak, violations int64
	MapN(p, 50, func(int) struct{} {
		n := atomic.AddInt64(&running, 1)
		if n > bound {
			atomic.AddInt64(&violations, 1)
		}
		for {
			old := atomic.LoadInt64(&peak)
			if n <= old || atomic.CompareAndSwapInt64(&peak, old, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		atomic.AddInt64(&running, -1)
		return struct{}{}
	})
	if violations > 0 {
		t.Fatalf("%d tasks observed more than %d running", violations, bound)
	}
	if runtime.GOMAXPROCS(0) > 1 && peak < 2 {
		t.Logf("peak concurrency %d on %d procs (scheduling-dependent)", peak, runtime.GOMAXPROCS(0))
	}
}

func TestSequentialPoolRunsOneAtATime(t *testing.T) {
	p := New(1)
	var running int64
	MapN(p, 20, func(int) struct{} {
		if n := atomic.AddInt64(&running, 1); n != 1 {
			t.Errorf("%d tasks running in a parallelism-1 pool", n)
		}
		time.Sleep(50 * time.Microsecond)
		atomic.AddInt64(&running, -1)
		return struct{}{}
	})
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Parallelism() = %d, want %d", got, want)
	}
	if got, want := New(-5).Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(-5).Parallelism() = %d, want %d", got, want)
	}
}

func TestWaitIsIdempotent(t *testing.T) {
	p := New(2)
	f := Submit(p, func() int { return 42 })
	if f.Wait() != 42 || f.Wait() != 42 {
		t.Fatal("repeated Wait changed the result")
	}
}

func TestResultRecoversPanicIntoError(t *testing.T) {
	p := New(2)
	f := Submit(p, func() int { panic("boom") })
	v, err := f.Result()
	if v != 0 {
		t.Fatalf("value = %d, want zero", v)
	}
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	// Result is idempotent and never panics.
	if _, err2 := f.Result(); err2 != err {
		t.Fatal("second Result returned a different error")
	}
}

// TestMapResultsSweepSurvivesPanics pins the crash-proof harness contract:
// one deliberately panicking point must not abort the sweep — every other
// point completes and reports, in submission order.
func TestMapResultsSweepSurvivesPanics(t *testing.T) {
	p := New(4)
	items := make([]int, 20)
	for i := range items {
		items[i] = i
	}
	out := MapResults(p, items, func(i int) int {
		if i == 7 {
			panic("point 7 exploded")
		}
		return i * i
	})
	if len(out) != len(items) {
		t.Fatalf("len = %d", len(out))
	}
	for i, r := range out {
		if i == 7 {
			if r.Err == nil {
				t.Fatal("panicking point reported no error")
			}
			continue
		}
		if r.Err != nil || r.Val != i*i {
			t.Fatalf("out[%d] = %+v, want %d", i, r, i*i)
		}
	}
	// The pool is still fully usable afterwards.
	if got := Submit(p, func() int { return 7 }).Wait(); got != 7 {
		t.Fatalf("pool unusable after recovered panics: %d", got)
	}
}

func TestWatchdogResolvesStuckPoint(t *testing.T) {
	p := New(4)
	p.SetWatchdog(20 * time.Millisecond)
	release := make(chan struct{})
	stuck := Submit(p, func() int { <-release; return 1 })
	_, err := stuck.Result()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("err = %v (%T), want *WatchdogError", err, err)
	}
	if we.Limit != 20*time.Millisecond {
		t.Fatalf("Limit = %v", we.Limit)
	}
	// Healthy points on the same pool still complete.
	if v, err := Submit(p, func() int { return 9 }).Result(); err != nil || v != 9 {
		t.Fatalf("healthy point after timeout: v=%d err=%v", v, err)
	}
	close(release) // let the stuck goroutine finish and release its slot
}

func TestWatchdogOffByDefault(t *testing.T) {
	p := New(1)
	if v, err := Submit(p, func() int {
		time.Sleep(5 * time.Millisecond)
		return 3
	}).Result(); err != nil || v != 3 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestPanicPropagates(t *testing.T) {
	p := New(2)
	f := Submit(p, func() int { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The slot must have been released despite the panic.
		if got := Submit(p, func() int { return 7 }).Wait(); got != 7 {
			t.Fatalf("pool unusable after panic: %d", got)
		}
	}()
	f.Wait()
}
