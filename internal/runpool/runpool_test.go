package runpool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	p := New(8)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	// Earlier items sleep longer, so completion order is roughly reversed;
	// the results must still come back in submission order.
	out := Map(p, items, func(i int) int {
		time.Sleep(time.Duration(len(items)-i) * 10 * time.Microsecond)
		return i * i
	})
	if len(out) != len(items) {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelismBound(t *testing.T) {
	const bound = 3
	p := New(bound)
	if p.Parallelism() != bound {
		t.Fatalf("Parallelism() = %d", p.Parallelism())
	}
	var running, peak, violations int64
	MapN(p, 50, func(int) struct{} {
		n := atomic.AddInt64(&running, 1)
		if n > bound {
			atomic.AddInt64(&violations, 1)
		}
		for {
			old := atomic.LoadInt64(&peak)
			if n <= old || atomic.CompareAndSwapInt64(&peak, old, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		atomic.AddInt64(&running, -1)
		return struct{}{}
	})
	if violations > 0 {
		t.Fatalf("%d tasks observed more than %d running", violations, bound)
	}
	if runtime.GOMAXPROCS(0) > 1 && peak < 2 {
		t.Logf("peak concurrency %d on %d procs (scheduling-dependent)", peak, runtime.GOMAXPROCS(0))
	}
}

func TestSequentialPoolRunsOneAtATime(t *testing.T) {
	p := New(1)
	var running int64
	MapN(p, 20, func(int) struct{} {
		if n := atomic.AddInt64(&running, 1); n != 1 {
			t.Errorf("%d tasks running in a parallelism-1 pool", n)
		}
		time.Sleep(50 * time.Microsecond)
		atomic.AddInt64(&running, -1)
		return struct{}{}
	})
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Parallelism() = %d, want %d", got, want)
	}
	if got, want := New(-5).Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(-5).Parallelism() = %d, want %d", got, want)
	}
}

func TestWaitIsIdempotent(t *testing.T) {
	p := New(2)
	f := Submit(p, func() int { return 42 })
	if f.Wait() != 42 || f.Wait() != 42 {
		t.Fatal("repeated Wait changed the result")
	}
}

func TestPanicPropagates(t *testing.T) {
	p := New(2)
	f := Submit(p, func() int { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The slot must have been released despite the panic.
		if got := Submit(p, func() int { return 7 }).Wait(); got != 7 {
			t.Fatalf("pool unusable after panic: %d", got)
		}
	}()
	f.Wait()
}
