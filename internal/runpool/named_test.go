package runpool

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestNamedErrorsCarryPoint pins the failure-identification contract: a
// panic or watchdog timeout crossing the pool reports the submitted point
// label, so a FAILED log line alone reproduces the point.
func TestNamedErrorsCarryPoint(t *testing.T) {
	p := New(2)
	_, err := SubmitNamed(p, "alltoall/load=0.4/ECMP/seed=7", func() int { panic("boom") }).Result()
	pe, ok := err.(*PanicError)
	if !ok || pe.Point != "alltoall/load=0.4/ECMP/seed=7" {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if !strings.Contains(pe.Error(), "point alltoall/load=0.4/ECMP/seed=7 panicked: boom") {
		t.Fatalf("Error() = %q", pe.Error())
	}

	p.SetWatchdog(20 * time.Millisecond)
	release := make(chan struct{})
	defer close(release)
	_, err = SubmitNamed(p, "faults/cut/DeTail/seed=3", func() int { <-release; return 1 }).Result()
	we, ok := err.(*WatchdogError)
	if !ok || we.Point != "faults/cut/DeTail/seed=3" {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if !strings.Contains(we.Error(), "point faults/cut/DeTail/seed=3 exceeded") {
		t.Fatalf("Error() = %q", we.Error())
	}
}

// TestMapNamedRetriesWatchdogOnce: a point whose first attempt trips the
// watchdog is resubmitted exactly once with the same closure; a fast second
// attempt turns the sweep healthy.
func TestMapNamedRetriesWatchdogOnce(t *testing.T) {
	p := New(4)
	p.SetWatchdog(30 * time.Millisecond)
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	out := MapNamed(p, []int{1, 2, 3},
		func(i int) string { return fmt.Sprintf("pt%d", i) },
		func(i int) int {
			if i == 2 && calls.Add(1) == 1 {
				<-release // first attempt of point 2 wedges
			}
			return i * 10
		})
	if out[0] != 10 || out[1] != 20 || out[2] != 30 {
		t.Fatalf("out = %v", out)
	}
	if calls.Load() != 2 {
		t.Fatalf("point 2 ran %d times, want 2 (original + one retry)", calls.Load())
	}
}

// TestMapResultsNamedReportsAfterSecondTimeout: the retry is bounded at
// one; a point that times out twice reports a WatchdogError flagged
// Retried, and the rest of the sweep still completes.
func TestMapResultsNamedReportsAfterSecondTimeout(t *testing.T) {
	p := New(4)
	p.SetWatchdog(20 * time.Millisecond)
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	out := MapResultsNamed(p, []int{0, 1},
		func(i int) string { return fmt.Sprintf("pt%d", i) },
		func(i int) int {
			if i == 1 {
				calls.Add(1)
				<-release // wedged on every attempt
			}
			return i + 100
		})
	if out[0].Err != nil || out[0].Val != 100 {
		t.Fatalf("healthy point: %+v", out[0])
	}
	we, ok := out[1].Err.(*WatchdogError)
	if !ok || !we.Retried || we.Point != "pt1" {
		t.Fatalf("wedged point err = %v (%T)", out[1].Err, out[1].Err)
	}
	if !strings.Contains(we.Error(), "twice") {
		t.Fatalf("Error() = %q", we.Error())
	}
	if calls.Load() != 2 {
		t.Fatalf("wedged point attempted %d times, want exactly 2", calls.Load())
	}
}

// TestMapNamedPanicsWithLabeledError: Map-style consumers fail the whole
// experiment on a lost point, and the panic value itself must identify it.
func TestMapNamedPanicsWithLabeledError(t *testing.T) {
	p := New(2)
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok || pe.Point != "pt1" {
			t.Fatalf("recovered %v (%T), want labeled *PanicError", r, r)
		}
	}()
	MapNamed(p, []int{0, 1},
		func(i int) string { return fmt.Sprintf("pt%d", i) },
		func(i int) int {
			if i == 1 {
				panic("unlucky point")
			}
			return i
		})
	t.Fatal("MapNamed did not panic")
}
