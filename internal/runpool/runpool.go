// Package runpool fans independent tasks out across a bounded set of
// goroutines and hands their results back in submission order.
//
// The experiment harness uses it to run simulation points — each an
// isolated sim.Engine with its own forked RNG — in parallel without
// perturbing output: because results are collected in the order tasks were
// submitted, anything built from them (tables, normalizations, logs) is
// byte-identical to a sequential run of the same points.
//
// Tasks submitted to a pool must not block waiting on other tasks in the
// same pool: a task holds one of the pool's slots for its whole run, so
// parent tasks waiting on children can exhaust the slots and deadlock.
// Orchestration code that only submits and waits (like Map callers) runs
// outside the pool and is safe.
package runpool

import (
	"runtime"
	"sync"
)

// Pool bounds how many submitted tasks run concurrently. Create one with
// New; the zero value is not usable.
type Pool struct {
	sem chan struct{}
}

// New returns a pool that runs at most parallelism tasks at once.
// parallelism <= 0 selects runtime.GOMAXPROCS(0); parallelism == 1 gives
// fully sequential execution (tasks still run on their own goroutines, but
// one at a time, in submission order).
func New(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, parallelism)}
}

// Parallelism returns the pool's concurrency bound.
func (p *Pool) Parallelism() int { return cap(p.sem) }

// result carries a task's return value or the value it panicked with.
type result[T any] struct {
	val     T
	panicMsg any
}

// Future is the pending result of one submitted task.
type Future[T any] struct {
	once sync.Once
	ch   chan result[T]
	res  result[T]
}

// Submit schedules fn on the pool and returns a Future for its result. The
// task starts as soon as a slot frees up; Submit itself never blocks.
func Submit[T any](p *Pool, fn func() T) *Future[T] {
	f := &Future[T]{ch: make(chan result[T], 1)}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		defer func() {
			if r := recover(); r != nil {
				f.ch <- result[T]{panicMsg: r}
			}
		}()
		f.ch <- result[T]{val: fn()}
	}()
	return f
}

// Wait blocks until the task finishes and returns its result. If the task
// panicked, Wait re-panics with the same value in the caller's goroutine,
// so a crashing simulation point fails the run just as it would have
// sequentially. Wait may be called more than once.
func (f *Future[T]) Wait() T {
	f.once.Do(func() { f.res = <-f.ch })
	if f.res.panicMsg != nil {
		panic(f.res.panicMsg)
	}
	return f.res.val
}

// Map runs fn over every item concurrently (bounded by the pool) and
// returns the results in item order, independent of scheduling.
func Map[In, Out any](p *Pool, items []In, fn func(In) Out) []Out {
	futs := make([]*Future[Out], len(items))
	for i := range items {
		it := items[i]
		futs[i] = Submit(p, func() Out { return fn(it) })
	}
	out := make([]Out, len(items))
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// MapN runs fn(0..n-1) concurrently and returns the results in index order.
func MapN[Out any](p *Pool, n int, fn func(int) Out) []Out {
	futs := make([]*Future[Out], n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = Submit(p, func() Out { return fn(i) })
	}
	out := make([]Out, n)
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}
