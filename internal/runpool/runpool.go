// Package runpool fans independent tasks out across a bounded set of
// goroutines and hands their results back in submission order.
//
// The experiment harness uses it to run simulation points — each an
// isolated sim.Engine with its own forked RNG — in parallel without
// perturbing output: because results are collected in the order tasks were
// submitted, anything built from them (tables, normalizations, logs) is
// byte-identical to a sequential run of the same points.
//
// Tasks submitted to a pool must not block waiting on other tasks in the
// same pool: a task holds one of the pool's slots for its whole run, so
// parent tasks waiting on children can exhaust the slots and deadlock.
// Orchestration code that only submits and waits (like Map callers) runs
// outside the pool and is safe.
package runpool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// PanicError is the per-point error a recovered task panic is converted to
// by Result/MapResults: the sweep keeps going and the failed point carries
// the panic value and stack instead of crashing the process.
type PanicError struct {
	// Value is what the task panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
	// Point identifies the task when it was submitted through a named API
	// (experiment/scheme/seed/shard), so a FAILED line alone is enough to
	// reproduce the crashing simulation point.
	Point string
}

func (e *PanicError) Error() string {
	if e.Point != "" {
		return fmt.Sprintf("point %s panicked: %v", e.Point, e.Value)
	}
	return fmt.Sprintf("task panicked: %v", e.Value)
}

// WatchdogError reports a task that exceeded the pool's wall-clock watchdog.
// The runaway goroutine cannot be killed: it keeps running (and keeps
// holding its pool slot) until it finishes on its own; only the Future is
// resolved early so the sweep can report the point as failed and move on.
type WatchdogError struct {
	// Limit is the watchdog duration that was exceeded.
	Limit time.Duration
	// Point identifies the task when it was submitted through a named API.
	Point string
	// Retried reports that this was already the point's second attempt
	// (see the named Map variants' bounded single retry).
	Retried bool
}

func (e *WatchdogError) Error() string {
	msg := fmt.Sprintf("task exceeded the %v wall-clock watchdog", e.Limit)
	if e.Point != "" {
		msg = fmt.Sprintf("point %s exceeded the %v wall-clock watchdog", e.Point, e.Limit)
	}
	if e.Retried {
		msg += " (twice: original attempt and one checkpoint retry)"
	}
	return msg
}

// Pool bounds how many submitted tasks run concurrently. Create one with
// New; the zero value is not usable.
type Pool struct {
	sem      chan struct{}
	watchdog time.Duration
}

// New returns a pool that runs at most parallelism tasks at once.
// parallelism <= 0 selects runtime.GOMAXPROCS(0); parallelism == 1 gives
// fully sequential execution (tasks still run on their own goroutines, but
// one at a time, in submission order).
func New(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, parallelism)}
}

// Parallelism returns the pool's concurrency bound.
func (p *Pool) Parallelism() int { return cap(p.sem) }

// TryAcquire grabs up to n of the pool's CPU tokens without blocking and
// returns how many it got (possibly zero). A running task that wants to go
// multi-threaded internally — the sharded simulation engine spreading one
// point over several worker goroutines — borrows the extra workers' tokens
// from the same budget that bounds sibling tasks, so `-parallel N` times
// `-shards M` can never oversubscribe the pool's bound: the point already
// holds one token for itself and only parallelizes as far as idle capacity
// allows. Every acquired token must be returned with Release.
func (p *Pool) TryAcquire(n int) int {
	got := 0
	for got < n {
		select {
		case p.sem <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

// Release returns n tokens previously obtained with TryAcquire.
func (p *Pool) Release(n int) {
	for i := 0; i < n; i++ {
		<-p.sem
	}
}

// SetWatchdog arms a wall-clock watchdog on every subsequently submitted
// task: a task running longer than d resolves its Future with a
// WatchdogError so the sweep can report the point as failed and keep going
// (the runaway goroutine itself cannot be stopped and keeps holding its pool
// slot until it returns). d <= 0 (the default) disables the watchdog.
//
// The watchdog trades determinism for liveness: whether a borderline point
// trips it depends on machine speed, so leave it off when byte-identical
// output matters and a hang is not a concern.
func (p *Pool) SetWatchdog(d time.Duration) { p.watchdog = d }

// result carries a task's return value or its failure.
type result[T any] struct {
	val T
	err error // *PanicError or *WatchdogError
}

// Future is the pending result of one submitted task.
type Future[T any] struct {
	once sync.Once
	ch   chan result[T]
	res  result[T]
}

// Submit schedules fn on the pool and returns a Future for its result. The
// task starts as soon as a slot frees up; Submit itself never blocks.
func Submit[T any](p *Pool, fn func() T) *Future[T] {
	return SubmitNamed(p, "", fn)
}

// SubmitNamed is Submit with a point label: any PanicError or
// WatchdogError the task resolves with carries the label, so failures are
// identifiable (and reproducible) from the error alone.
func SubmitNamed[T any](p *Pool, point string, fn func() T) *Future[T] {
	// Capacity 2: with a watchdog armed, both the timeout and the (late)
	// task result may be sent; the Future keeps whichever arrives first and
	// neither sender ever blocks.
	f := &Future[T]{ch: make(chan result[T], 2)}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		if wd := p.watchdog; wd > 0 {
			timer := time.AfterFunc(wd, func() {
				f.ch <- result[T]{err: &WatchdogError{Limit: wd, Point: point}}
			})
			defer timer.Stop()
		}
		defer func() {
			if r := recover(); r != nil {
				f.ch <- result[T]{err: &PanicError{Value: r, Stack: debug.Stack(), Point: point}}
			}
		}()
		f.ch <- result[T]{val: fn()}
	}()
	return f
}

// Wait blocks until the task finishes and returns its result. If the task
// panicked, Wait re-panics with the same value in the caller's goroutine,
// so a crashing simulation point fails the run just as it would have
// sequentially; a watchdog timeout panics with the WatchdogError. Use
// Result to degrade gracefully instead. Wait may be called more than once.
func (f *Future[T]) Wait() T {
	v, err := f.Result()
	if pe, ok := err.(*PanicError); ok {
		panic(pe.Value)
	}
	if err != nil {
		panic(err)
	}
	return v
}

// Result blocks until the task finishes and returns its value, or a non-nil
// error (*PanicError, *WatchdogError) describing why the point failed. It
// never panics, making it the crash-proof counterpart of Wait. Result may be
// called more than once and mixed with Wait.
func (f *Future[T]) Result() (T, error) {
	f.once.Do(func() { f.res = <-f.ch })
	return f.res.val, f.res.err
}

// Map runs fn over every item concurrently (bounded by the pool) and
// returns the results in item order, independent of scheduling.
func Map[In, Out any](p *Pool, items []In, fn func(In) Out) []Out {
	futs := make([]*Future[Out], len(items))
	for i := range items {
		it := items[i]
		futs[i] = Submit(p, func() Out { return fn(it) })
	}
	out := make([]Out, len(items))
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// MapN runs fn(0..n-1) concurrently and returns the results in index order.
func MapN[Out any](p *Pool, n int, fn func(int) Out) []Out {
	futs := make([]*Future[Out], n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = Submit(p, func() Out { return fn(i) })
	}
	out := make([]Out, n)
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// TaskResult is one MapResults outcome: the task's value, or the error it
// failed with (Err non-nil means Val is the zero value).
type TaskResult[T any] struct {
	Val T
	Err error
}

// MapResults runs fn over every item concurrently (bounded by the pool) and
// returns per-item results in item order. Unlike Map, a panicking or
// watchdog-timed-out item does not abort the sweep: its slot carries the
// error and every other item still completes and reports.
func MapResults[In, Out any](p *Pool, items []In, fn func(In) Out) []TaskResult[Out] {
	futs := make([]*Future[Out], len(items))
	for i := range items {
		it := items[i]
		futs[i] = Submit(p, func() Out { return fn(it) })
	}
	out := make([]TaskResult[Out], len(items))
	for i, f := range futs {
		out[i].Val, out[i].Err = f.Result()
	}
	return out
}

// resultRetryWatchdog collects a named task's result, retrying a
// watchdog-timed-out point exactly once. The retry is deliberately a plain
// resubmission of the same deterministic closure — same seed, same
// options; with checkpointing active the rerun replays through (and
// verifies) the point's last recorded watermark — and there is exactly one,
// with no backoff loop: a point that times out twice is genuinely wedged
// (or the watchdog genuinely too tight) and anything more would mask a
// determinism or livelock bug behind unbounded retries. The first
// attempt's runaway goroutine cannot be killed and keeps running; its
// duplicate is harmless because points are isolated pure functions.
func resultRetryWatchdog[T any](p *Pool, point string, fn func() T, f *Future[T]) (T, error) {
	v, err := f.Result()
	if _, ok := err.(*WatchdogError); !ok {
		return v, err
	}
	v2, err2 := SubmitNamed(p, point, fn).Result()
	if we2, ok := err2.(*WatchdogError); ok {
		we2.Retried = true
	}
	return v2, err2
}

// MapNamed is Map with a per-item point label (used for failure
// identification and checkpoint keys) and a bounded single retry of
// watchdog-timed-out points. Like Map it panics on the first failed item —
// with the labeled *PanicError or *WatchdogError itself, so the caller's
// FAILED report identifies the point — and returns results in item order.
func MapNamed[In, Out any](p *Pool, items []In, name func(In) string, fn func(In) Out) []Out {
	futs := make([]*Future[Out], len(items))
	for i := range items {
		it := items[i]
		futs[i] = SubmitNamed(p, name(it), func() Out { return fn(it) })
	}
	out := make([]Out, len(items))
	for i, f := range futs {
		it := items[i]
		v, err := resultRetryWatchdog(p, name(it), func() Out { return fn(it) }, f)
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

// MapResultsNamed is MapResults with per-item point labels and the same
// bounded single watchdog retry as MapNamed: errors carry the point
// identification, and a point is reported failed only after its one retry
// also failed.
func MapResultsNamed[In, Out any](p *Pool, items []In, name func(In) string, fn func(In) Out) []TaskResult[Out] {
	futs := make([]*Future[Out], len(items))
	for i := range items {
		it := items[i]
		futs[i] = SubmitNamed(p, name(it), func() Out { return fn(it) })
	}
	out := make([]TaskResult[Out], len(items))
	for i, f := range futs {
		it := items[i]
		out[i].Val, out[i].Err = resultRetryWatchdog(p, name(it), func() Out { return fn(it) }, f)
	}
	return out
}
