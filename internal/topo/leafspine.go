package topo

import (
	"fmt"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// LeafSpineParams describes the two-tier topology of the paper's testbed
// (§4.3): ToR switches each connected by one link to every spine
// (aggregation) switch, so any ToR pair has exactly Spines distinct paths.
type LeafSpineParams struct {
	Tors          int
	Spines        int
	ServersPerTor int

	LinkRateBps int64
	LinkDelay   sim.Time
	HostDelay   sim.Time
	SwitchDelay sim.Time

	QueueCap     int
	SharedBuffer int // switch-wide shared pool (testbed: 2 MB)
	MarkK        int
	PFC          *netsim.PFCConfig
}

// TestbedScale reproduces the paper's testbed: 15 ToRs with 12–16 servers
// each (we use a uniform 12), 4 spine switches, 10 Gbps links, CE threshold
// 90 KB, so each server has 4 distinct paths to servers on other ToRs.
func TestbedScale() LeafSpineParams {
	return LeafSpineParams{
		Tors:          15,
		Spines:        4,
		ServersPerTor: 12,
		LinkRateBps:   10 * Gbps,
		HostDelay:     20 * sim.Microsecond,
		SwitchDelay:   1 * sim.Microsecond,
		QueueCap:      1000 * KB,
		SharedBuffer:  2000 * KB, // per §4.3: 2 MB shared buffer space
		MarkK:         90 * KB,
	}
}

// SmallTestbed is a reduced leaf–spine for quick runs: 4 ToRs x 4 spines.
func SmallTestbed() LeafSpineParams {
	p := TestbedScale()
	p.Tors = 4
	p.ServersPerTor = 8
	return p
}

// NumHosts returns the total number of servers.
func (p LeafSpineParams) NumHosts() int { return p.Tors * p.ServersPerTor }

// LeafSpine is a built two-tier topology.
type LeafSpine struct {
	P   LeafSpineParams
	Eng *sim.Engine

	// Pool is the fabric-wide packet free list (see FatTree.Pool).
	Pool *netsim.PacketPool

	Hosts  []*netsim.Host
	Tors   []*netsim.Switch
	Spines []*netsim.Switch

	HostLinks []*netsim.Duplex
	// UpLinks[t][s] is the cable between ToR t and spine s.
	UpLinks [][]*netsim.Duplex
}

// NewLeafSpine builds and wires the topology and installs routing tables.
func NewLeafSpine(eng *sim.Engine, p LeafSpineParams) *LeafSpine {
	if p.Tors < 2 || p.Spines < 1 || p.ServersPerTor < 1 {
		panic(fmt.Sprintf("topo: invalid leaf-spine params %+v", p))
	}
	ls := &LeafSpine{P: p, Eng: eng}
	n := p.NumHosts()

	ls.Hosts = make([]*netsim.Host, n)
	for i := range ls.Hosts {
		ls.Hosts[i] = netsim.NewHost(eng, netsim.NodeID(i), p.LinkRateBps, p.HostDelay)
	}
	cfg := netsim.SwitchConfig{QueueCap: p.QueueCap, SharedBuffer: p.SharedBuffer, MarkK: p.MarkK, FwdDelay: p.SwitchDelay, PFC: p.PFC}
	nextID := netsim.NodeID(n)
	ls.Tors = make([]*netsim.Switch, p.Tors)
	for t := range ls.Tors {
		ls.Tors[t] = netsim.NewSwitch(eng, nextID, p.ServersPerTor+p.Spines, p.LinkRateBps, cfg)
		nextID++
	}
	ls.Spines = make([]*netsim.Switch, p.Spines)
	for s := range ls.Spines {
		ls.Spines[s] = netsim.NewSwitch(eng, nextID, p.Tors, p.LinkRateBps, cfg)
		nextID++
	}

	// Wiring. ToR ports: [0,S) servers, [S, S+Spines) up. Spine port t -> ToR t.
	ls.HostLinks = make([]*netsim.Duplex, n)
	ls.UpLinks = make([][]*netsim.Duplex, p.Tors)
	for t := 0; t < p.Tors; t++ {
		for s := 0; s < p.ServersPerTor; s++ {
			h := t*p.ServersPerTor + s
			ls.HostLinks[h] = netsim.WireHost(ls.Hosts[h], ls.Tors[t], s, p.LinkDelay)
		}
		ls.UpLinks[t] = make([]*netsim.Duplex, p.Spines)
		for s := 0; s < p.Spines; s++ {
			ls.UpLinks[t][s] = netsim.WireSwitches(ls.Tors[t], p.ServersPerTor+s, ls.Spines[s], t, p.LinkDelay)
		}
	}

	// Routes.
	up := make([]int32, p.Spines)
	for s := range up {
		up[s] = int32(p.ServersPerTor + s)
	}
	for t, tor := range ls.Tors {
		routes := make([][]int32, n)
		for dst := 0; dst < n; dst++ {
			if dst/p.ServersPerTor == t {
				routes[dst] = []int32{int32(dst % p.ServersPerTor)}
			} else {
				routes[dst] = up
			}
		}
		tor.SetRoutes(routes)
	}
	for _, spine := range ls.Spines {
		routes := make([][]int32, n)
		for dst := 0; dst < n; dst++ {
			routes[dst] = []int32{int32(dst / p.ServersPerTor)}
		}
		spine.SetRoutes(routes)
	}

	ls.Pool = netsim.NewPacketPool()
	for _, h := range ls.Hosts {
		h.UsePool(ls.Pool)
	}
	for _, sw := range ls.Tors {
		sw.UsePool(ls.Pool)
	}
	for _, sw := range ls.Spines {
		sw.UsePool(ls.Pool)
	}
	return ls
}

// SetSelector installs the same multipath selector on every switch.
func (ls *LeafSpine) SetSelector(sel netsim.Selector) {
	for _, s := range ls.Tors {
		s.SetSelector(sel)
	}
	for _, s := range ls.Spines {
		s.SetSelector(sel)
	}
}

// TorOf returns the ToR index a host is attached to.
func (ls *LeafSpine) TorOf(h int) int { return h / ls.P.ServersPerTor }

// TorHosts returns the host indices attached to ToR t.
func (ls *LeafSpine) TorHosts(t int) []int {
	out := make([]int, ls.P.ServersPerTor)
	for s := range out {
		out[s] = t*ls.P.ServersPerTor + s
	}
	return out
}
