package topo

import (
	"fmt"

	"flowbender/internal/netsim"
)

// FailAgg cuts every cable of an aggregation switch (a whole-switch
// failure): its ToR downlinks and core uplinks in both directions. Routing
// tables stay stale, as with Duplex.Fail.
func (ft *FatTree) FailAgg(pod, agg int) {
	for t := 0; t < ft.P.TorsPerPod; t++ {
		ft.TorAggLinks[pod][t][agg].Fail()
	}
	for k := 0; k < ft.P.CoreUplinksPerAgg; k++ {
		ft.AggCoreLinks[pod][agg][k].Fail()
	}
}

// RestoreAgg brings a previously failed aggregation switch back.
func (ft *FatTree) RestoreAgg(pod, agg int) {
	for t := 0; t < ft.P.TorsPerPod; t++ {
		ft.TorAggLinks[pod][t][agg].Restore()
	}
	for k := 0; k < ft.P.CoreUplinksPerAgg; k++ {
		ft.AggCoreLinks[pod][agg][k].Restore()
	}
}

// checkCore validates a core switch index. The integer division below would
// otherwise map some out-of-range indices onto existing cables (or panic
// with an opaque bounds error), so reject them explicitly, matching the
// constructors' style.
func (ft *FatTree) checkCore(core int) {
	if core < 0 || core >= ft.P.NumCores() {
		panic(fmt.Sprintf("topo: core index %d out of range [0, %d)", core, ft.P.NumCores()))
	}
}

// FailCore cuts every cable of a core switch (its one link per pod).
func (ft *FatTree) FailCore(core int) {
	ft.checkCore(core)
	a := core / ft.P.CoreUplinksPerAgg
	k := core % ft.P.CoreUplinksPerAgg
	for pod := 0; pod < ft.P.Pods; pod++ {
		ft.AggCoreLinks[pod][a][k].Fail()
	}
}

// RestoreCore brings a previously failed core switch back.
func (ft *FatTree) RestoreCore(core int) {
	ft.checkCore(core)
	a := core / ft.P.CoreUplinksPerAgg
	k := core % ft.P.CoreUplinksPerAgg
	for pod := 0; pod < ft.P.Pods; pod++ {
		ft.AggCoreLinks[pod][a][k].Restore()
	}
}

// FailSpine cuts every cable of a leaf-spine spine switch.
func (ls *LeafSpine) FailSpine(spine int) {
	for t := 0; t < ls.P.Tors; t++ {
		ls.UpLinks[t][spine].Fail()
	}
}

// RestoreSpine brings a previously failed spine switch back.
func (ls *LeafSpine) RestoreSpine(spine int) {
	for t := 0; t < ls.P.Tors; t++ {
		ls.UpLinks[t][spine].Restore()
	}
}

// DownLinks reports how many cables of the leaf-spine are currently fully
// failed (both directions; half-open cables do not count).
func (ls *LeafSpine) DownLinks() int {
	count := 0
	for _, d := range ls.HostLinks {
		if d.Failed() {
			count++
		}
	}
	for t := range ls.UpLinks {
		for _, d := range ls.UpLinks[t] {
			if d.Failed() {
				count++
			}
		}
	}
	return count
}

// DownLinks reports how many cables of the fat-tree are currently failed
// (for assertions and tooling).
func (ft *FatTree) DownLinks() int {
	count := 0
	visit := func(d *netsim.Duplex) {
		if d.Failed() {
			count++
		}
	}
	for _, d := range ft.HostLinks {
		visit(d)
	}
	for pod := range ft.TorAggLinks {
		for _, tors := range ft.TorAggLinks[pod] {
			for _, d := range tors {
				visit(d)
			}
		}
		for _, aggs := range ft.AggCoreLinks[pod] {
			for _, d := range aggs {
				visit(d)
			}
		}
	}
	return count
}
