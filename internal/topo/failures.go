package topo

import "flowbender/internal/netsim"

// FailAgg cuts every cable of an aggregation switch (a whole-switch
// failure): its ToR downlinks and core uplinks in both directions. Routing
// tables stay stale, as with Duplex.Fail.
func (ft *FatTree) FailAgg(pod, agg int) {
	for t := 0; t < ft.P.TorsPerPod; t++ {
		ft.TorAggLinks[pod][t][agg].Fail()
	}
	for k := 0; k < ft.P.CoreUplinksPerAgg; k++ {
		ft.AggCoreLinks[pod][agg][k].Fail()
	}
}

// RestoreAgg brings a previously failed aggregation switch back.
func (ft *FatTree) RestoreAgg(pod, agg int) {
	for t := 0; t < ft.P.TorsPerPod; t++ {
		ft.TorAggLinks[pod][t][agg].Restore()
	}
	for k := 0; k < ft.P.CoreUplinksPerAgg; k++ {
		ft.AggCoreLinks[pod][agg][k].Restore()
	}
}

// FailCore cuts every cable of a core switch (its one link per pod).
func (ft *FatTree) FailCore(core int) {
	a := core / ft.P.CoreUplinksPerAgg
	k := core % ft.P.CoreUplinksPerAgg
	for pod := 0; pod < ft.P.Pods; pod++ {
		ft.AggCoreLinks[pod][a][k].Fail()
	}
}

// RestoreCore brings a previously failed core switch back.
func (ft *FatTree) RestoreCore(core int) {
	a := core / ft.P.CoreUplinksPerAgg
	k := core % ft.P.CoreUplinksPerAgg
	for pod := 0; pod < ft.P.Pods; pod++ {
		ft.AggCoreLinks[pod][a][k].Restore()
	}
}

// FailSpine cuts every cable of a leaf-spine spine switch.
func (ls *LeafSpine) FailSpine(spine int) {
	for t := 0; t < ls.P.Tors; t++ {
		ls.UpLinks[t][spine].Fail()
	}
}

// RestoreSpine brings a previously failed spine switch back.
func (ls *LeafSpine) RestoreSpine(spine int) {
	for t := 0; t < ls.P.Tors; t++ {
		ls.UpLinks[t][spine].Restore()
	}
}

// DownLinks reports how many cables of the fat-tree are currently failed
// (for assertions and tooling).
func (ft *FatTree) DownLinks() int {
	count := 0
	visit := func(d *netsim.Duplex) {
		if d.Failed() {
			count++
		}
	}
	for _, d := range ft.HostLinks {
		visit(d)
	}
	for pod := range ft.TorAggLinks {
		for _, tors := range ft.TorAggLinks[pod] {
			for _, d := range tors {
				visit(d)
			}
		}
		for _, aggs := range ft.AggCoreLinks[pod] {
			for _, d := range aggs {
				visit(d)
			}
		}
	}
	return count
}
