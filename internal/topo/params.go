// Package topo builds the datacenter topologies the paper evaluates on: the
// three-tier fat-tree of §4.2 (pods of ToR + aggregation switches joined by a
// core layer, Figures 1/2) and the two-tier leaf–spine of the §4.3 testbed
// (15 ToRs interconnected by 4 aggregation switches). It also computes the
// standard up/down ECMP routing tables and exposes handles for link-failure
// injection.
package topo

import (
	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// Gbps converts gigabits per second to bits per second.
const Gbps = int64(1_000_000_000)

// KB is 1000 bytes, the unit the paper uses for queue thresholds.
const KB = 1000

// Params describes a fat-tree instance and its link/queue characteristics.
type Params struct {
	Pods              int // number of pods
	TorsPerPod        int // ToR switches per pod
	AggsPerPod        int // aggregation switches per pod
	ServersPerTor     int // hosts per ToR
	CoreUplinksPerAgg int // core uplinks per aggregation switch

	// LinkRateBps is the line rate of server access links and
	// aggregation-core links. Each ToR connects to each aggregation switch
	// with ONE link (as in the paper's Figures 1/2) whose rate is scaled so
	// ToRs are non-oversubscribed (see TorAggRateBps) — the paper's Table 1
	// arithmetic (k equal flows on P = AggsPerPod*CoreUplinksPerAgg paths
	// finish in k/P * size/rate) requires the full 4x oversubscription to
	// sit at the aggregation-to-core stage.
	LinkRateBps int64
	LinkDelay   sim.Time // propagation delay per hop
	HostDelay   sim.Time // per-direction host processing delay
	SwitchDelay sim.Time // per-packet switch forwarding delay

	QueueCap int               // per-egress-port drop-tail capacity (bytes)
	MarkK    int               // DCTCP ECN threshold (bytes)
	PFC      *netsim.PFCConfig // non-nil for DeTail's lossless fabric
}

// PaperScale returns the exact configuration of §4.2: 128 servers in four
// pods (4 ToR + 4 agg each), 8 core switches, 10 Gbps links, 20 µs host and
// 1 µs switch delay (90 µs inter-pod RTT), K = 90 KB.
func PaperScale() Params {
	return Params{
		Pods:              4,
		TorsPerPod:        4,
		AggsPerPod:        4,
		ServersPerTor:     8,
		CoreUplinksPerAgg: 2,
		LinkRateBps:       10 * Gbps,
		LinkDelay:         0,
		HostDelay:         20 * sim.Microsecond,
		SwitchDelay:       1 * sim.Microsecond,
		QueueCap:          1000 * KB,
		MarkK:             90 * KB,
	}
}

// SmallScale returns a reduced instance (64 servers, 4 inter-pod paths) that
// preserves the paper's structure — non-oversubscribed ToRs, 4x total
// oversubscription at the aggregation-core stage — so normalized results
// keep their shape while running quickly on one core.
func SmallScale() Params {
	p := PaperScale()
	p.AggsPerPod = 2
	p.ServersPerTor = 4
	return p
}

// HyperScale returns a 10,240-host fabric: 16 pods of 16 ToRs x 40 servers,
// with 8 aggregation switches per pod and 32 cores (32 inter-pod paths).
// This is the ROADMAP's "tens of thousands of hosts" shape — far beyond
// what per-packet simulation finishes in useful wall time, so only the
// fluid engine runs it. The 20x server-to-core oversubscription is
// deliberate: hyperscale fabrics oversubscribe far more aggressively than
// the paper's 4x testbed, and the fluid fidelity story is about structure
// (non-oversubscribed ToRs, contention at the agg-core stage), not the
// paper's exact ratio.
func HyperScale() Params {
	p := PaperScale()
	p.Pods = 16
	p.TorsPerPod = 16
	p.AggsPerPod = 8
	p.ServersPerTor = 40
	p.CoreUplinksPerAgg = 4
	return p
}

// MegaScale returns a 102,400-host fabric: 32 pods of 32 ToRs x 100
// servers, with 8 aggregation switches per pod and 32 cores. This is the
// ROADMAP's production-scale rung — the scale where RepFlow's replication
// economics and FlowBender's reroute dynamics actually diverge — and it is
// strictly fluid-only: at ~100k hosts the per-packet engine would need
// billions of events per second of simulated time. The oversubscription
// (100:1 server-to-core per pod) mirrors aggressive production fabrics;
// as with HyperScale the fidelity story is structural, not ratio-exact.
func MegaScale() Params {
	p := PaperScale()
	p.Pods = 32
	p.TorsPerPod = 32
	p.AggsPerPod = 8
	p.ServersPerTor = 100
	p.CoreUplinksPerAgg = 4
	return p
}

// TinyScale is for unit tests: 16 servers, 2 pods, 2 paths, 4x oversub.
func TinyScale() Params {
	p := PaperScale()
	p.Pods = 2
	p.TorsPerPod = 2
	p.AggsPerPod = 2
	p.ServersPerTor = 4
	p.CoreUplinksPerAgg = 1
	return p
}

// NumHosts returns the total number of servers.
func (p Params) NumHosts() int { return p.Pods * p.TorsPerPod * p.ServersPerTor }

// TorUplinks returns the number of uplinks each ToR has (one per agg).
func (p Params) TorUplinks() int { return p.AggsPerPod }

// TorAggRateBps returns the rate of each ToR-to-aggregation link, scaled so
// the ToR is non-oversubscribed: ServersPerTor/AggsPerPod times the access
// rate (20 Gbps in the paper-scale instance).
func (p Params) TorAggRateBps() int64 {
	return p.LinkRateBps * int64(p.ServersPerTor) / int64(p.AggsPerPod)
}

// NumCores returns the number of core switches.
func (p Params) NumCores() int { return p.AggsPerPod * p.CoreUplinksPerAgg }

// PathsBetweenPods returns the number of distinct inter-pod paths (the
// paper's P).
func (p Params) PathsBetweenPods() int { return p.AggsPerPod * p.CoreUplinksPerAgg }

// BisectionBps returns the fabric's bisection bandwidth: half the total
// core-layer capacity (the paper reports workload load relative to this).
func (p Params) BisectionBps() int64 {
	return int64(p.NumCores()) * int64(p.Pods) * p.LinkRateBps / 2
}

// InterPodFraction returns the fraction of uniform random traffic that
// crosses the bisection.
func (p Params) InterPodFraction() float64 {
	return float64(p.Pods-1) / float64(p.Pods)
}

// Oversubscription returns the server-to-core oversubscription factor.
func (p Params) Oversubscription() float64 {
	serverBW := float64(p.TorsPerPod * p.ServersPerTor) // per pod, in links
	coreBW := float64(p.AggsPerPod * p.CoreUplinksPerAgg)
	return serverBW / coreBW
}

func (p Params) switchConfig() netsim.SwitchConfig {
	return netsim.SwitchConfig{
		QueueCap: p.QueueCap,
		MarkK:    p.MarkK,
		FwdDelay: p.SwitchDelay,
		PFC:      p.PFC,
	}
}
