package topo

import (
	"testing"

	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
)

// A full TCP transfer across the pooled fat-tree must recycle every packet:
// the pool's live count returns to zero when the fabric idles, and the
// steady-state working set (roughly one window of packets) is far smaller
// than the packet count, so almost every allocation is served from the free
// list.
func TestFatTreePoolAccounting(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, TinyScale())
	ft.SetSelector(routing.ECMP{})

	const size = 1 << 20 // 1 MB, ~720 data packets + as many ACKs
	f := tcp.StartFlow(eng, tcp.DefaultConfig(), 1, ft.Hosts[0], ft.Hosts[12], size)
	eng.RunUntilIdle()

	if !f.Done() {
		t.Fatal("transfer did not complete")
	}
	if live := ft.Pool.Live(); live != 0 {
		t.Fatalf("pool leaked: %d packets live after idle (gets=%d puts=%d)",
			live, ft.Pool.Gets, ft.Pool.Puts)
	}
	if ft.Pool.Gets < 1000 {
		t.Fatalf("gets = %d; transfer should have drawn >1000 packets", ft.Pool.Gets)
	}
	// Misses equal the peak live working set (one congestion window of data
	// plus ACKs in flight); the bulk of the transfer must recycle.
	if ft.Pool.Misses*4 > ft.Pool.Gets {
		t.Fatalf("recycling ineffective: %d misses of %d gets", ft.Pool.Misses, ft.Pool.Gets)
	}
}
