package topo

import (
	"fmt"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// FatTree is a built three-tier topology with its hosts, switches, and
// cable handles.
type FatTree struct {
	P   Params
	Eng *sim.Engine

	// Pool is the fabric-wide packet free list every host and switch
	// recycles through; transports sending between this topology's hosts
	// allocate packets from it via Host.NewPacket.
	Pool *netsim.PacketPool

	Hosts []*netsim.Host
	// Tors[pod][t], Aggs[pod][a], Cores[c].
	Tors  [][]*netsim.Switch
	Aggs  [][]*netsim.Switch
	Cores []*netsim.Switch

	// HostLinks[h] is the server-to-ToR cable of host h.
	HostLinks []*netsim.Duplex
	// TorAggLinks[pod][t][a] is the (single, TorAggRateBps) cable between
	// ToR t and agg a in pod.
	TorAggLinks [][][]*netsim.Duplex
	// AggCoreLinks[pod][a][k] is agg a's k-th core uplink in pod.
	AggCoreLinks [][][]*netsim.Duplex
}

// NewFatTree builds the topology, wires every cable, and installs up/down
// ECMP routing tables. Selectors must be installed afterwards with
// SetSelector.
//
// Port layout:
//
//	ToR:  [0, S) servers; [S, S+A) uplinks, port S + a -> agg a
//	Agg:  [0, T) downlinks, port t -> ToR t; [T, T+K) core uplinks
//	Core: [0, Pods) one port per pod
//
// Core c attaches to agg c/K via that agg's uplink c%K, in every pod.
// ToR-agg links run at TorAggRateBps; everything else at LinkRateBps.
func NewFatTree(eng *sim.Engine, p Params) *FatTree {
	ft := newFatTree(p, engineMap{
		host: func(int) *sim.Engine { return eng },
		tor:  func(int, int) *sim.Engine { return eng },
		agg:  func(int, int) *sim.Engine { return eng },
		core: func(int) *sim.Engine { return eng },
	})
	ft.Eng = eng
	ft.Pool = netsim.NewPacketPool()
	for _, h := range ft.Hosts {
		h.UsePool(ft.Pool)
	}
	for _, s := range ft.AllSwitches() {
		s.UsePool(ft.Pool)
	}
	return ft
}

// engineMap assigns an engine (execution shard) to every device of a
// fat-tree under construction. Serial builds map everything to one engine;
// sharded builds map each device to its partition's engine.
type engineMap struct {
	host func(h int) *sim.Engine
	tor  func(pod, t int) *sim.Engine
	agg  func(pod, a int) *sim.Engine
	core func(c int) *sim.Engine
}

// newFatTree is the engine-agnostic builder shared by the serial and sharded
// constructors. Construction schedules no events, so device creation order —
// and with it every NodeID — is identical regardless of the engine mapping.
// Pools are left for the caller to install.
func newFatTree(p Params, em engineMap) *FatTree {
	validate(p)
	ft := &FatTree{P: p}
	n := p.NumHosts()

	// Hosts.
	ft.Hosts = make([]*netsim.Host, n)
	for i := range ft.Hosts {
		ft.Hosts[i] = netsim.NewHost(em.host(i), netsim.NodeID(i), p.LinkRateBps, p.HostDelay)
	}

	// Switches. Switch NodeIDs live above the host ID space.
	nextID := netsim.NodeID(n)
	newSwitch := func(eng *sim.Engine, ports int) *netsim.Switch {
		s := netsim.NewSwitch(eng, nextID, ports, p.LinkRateBps, p.switchConfig())
		nextID++
		return s
	}
	fat := p.TorAggRateBps()
	for pod := 0; pod < p.Pods; pod++ {
		ft.Tors = append(ft.Tors, nil)
		ft.Aggs = append(ft.Aggs, nil)
		for t := 0; t < p.TorsPerPod; t++ {
			tor := newSwitch(em.tor(pod, t), p.ServersPerTor+p.AggsPerPod)
			for a := 0; a < p.AggsPerPod; a++ {
				tor.Ports[p.ServersPerTor+a].RateBps = fat
			}
			ft.Tors[pod] = append(ft.Tors[pod], tor)
		}
		for a := 0; a < p.AggsPerPod; a++ {
			agg := newSwitch(em.agg(pod, a), p.TorsPerPod+p.CoreUplinksPerAgg)
			for t := 0; t < p.TorsPerPod; t++ {
				agg.Ports[t].RateBps = fat
			}
			ft.Aggs[pod] = append(ft.Aggs[pod], agg)
		}
	}
	ft.Cores = make([]*netsim.Switch, p.NumCores())
	for c := range ft.Cores {
		ft.Cores[c] = newSwitch(em.core(c), p.Pods)
	}

	ft.wire()
	ft.installRoutes()
	return ft
}

func validate(p Params) {
	if p.Pods < 2 || p.TorsPerPod < 1 || p.AggsPerPod < 1 || p.ServersPerTor < 1 ||
		p.CoreUplinksPerAgg < 1 {
		panic(fmt.Sprintf("topo: invalid fat-tree params %+v", p))
	}
	if p.ServersPerTor%p.AggsPerPod != 0 {
		panic(fmt.Sprintf("topo: ServersPerTor (%d) must be a multiple of AggsPerPod (%d) for non-oversubscribed ToRs",
			p.ServersPerTor, p.AggsPerPod))
	}
}

func (ft *FatTree) wire() {
	p := ft.P
	ft.HostLinks = make([]*netsim.Duplex, len(ft.Hosts))
	ft.TorAggLinks = make([][][]*netsim.Duplex, p.Pods)
	ft.AggCoreLinks = make([][][]*netsim.Duplex, p.Pods)
	for pod := 0; pod < p.Pods; pod++ {
		ft.TorAggLinks[pod] = make([][]*netsim.Duplex, p.TorsPerPod)
		for t := 0; t < p.TorsPerPod; t++ {
			tor := ft.Tors[pod][t]
			ft.TorAggLinks[pod][t] = make([]*netsim.Duplex, p.AggsPerPod)
			for s := 0; s < p.ServersPerTor; s++ {
				h := ft.HostIndex(pod, t, s)
				ft.HostLinks[h] = netsim.WireHost(ft.Hosts[h], tor, s, p.LinkDelay)
			}
			for a := 0; a < p.AggsPerPod; a++ {
				ft.TorAggLinks[pod][t][a] = netsim.WireSwitches(
					tor, p.ServersPerTor+a, ft.Aggs[pod][a], t, p.LinkDelay)
			}
		}
		ft.AggCoreLinks[pod] = make([][]*netsim.Duplex, p.AggsPerPod)
		for a := 0; a < p.AggsPerPod; a++ {
			agg := ft.Aggs[pod][a]
			ft.AggCoreLinks[pod][a] = make([]*netsim.Duplex, p.CoreUplinksPerAgg)
			for k := 0; k < p.CoreUplinksPerAgg; k++ {
				core := ft.Cores[a*p.CoreUplinksPerAgg+k]
				ft.AggCoreLinks[pod][a][k] = netsim.WireSwitches(
					agg, p.TorsPerPod+k, core, pod, p.LinkDelay)
			}
		}
	}
}

func (ft *FatTree) installRoutes() {
	p := ft.P
	n := p.NumHosts()

	upTor := make([]int32, p.AggsPerPod)
	for a := range upTor {
		upTor[a] = int32(p.ServersPerTor + a)
	}
	upAgg := make([]int32, p.CoreUplinksPerAgg)
	for k := range upAgg {
		upAgg[k] = int32(p.TorsPerPod + k)
	}

	for pod := 0; pod < p.Pods; pod++ {
		for t, tor := range ft.Tors[pod] {
			routes := make([][]int32, n)
			for dst := 0; dst < n; dst++ {
				dp, dt, ds := ft.HostLoc(dst)
				if dp == pod && dt == t {
					routes[dst] = []int32{int32(ds)}
				} else {
					routes[dst] = upTor
				}
			}
			tor.SetRoutes(routes)
		}
		for _, agg := range ft.Aggs[pod] {
			routes := make([][]int32, n)
			for dst := 0; dst < n; dst++ {
				dp, dt, _ := ft.HostLoc(dst)
				if dp == pod {
					routes[dst] = []int32{int32(dt)}
				} else {
					routes[dst] = upAgg
				}
			}
			agg.SetRoutes(routes)
		}
	}
	for _, core := range ft.Cores {
		routes := make([][]int32, n)
		for dst := 0; dst < n; dst++ {
			dp, _, _ := ft.HostLoc(dst)
			routes[dst] = []int32{int32(dp)}
		}
		core.SetRoutes(routes)
	}
}

// SetSelector installs the same multipath selector on every switch.
func (ft *FatTree) SetSelector(sel netsim.Selector) {
	for _, s := range ft.AllSwitches() {
		s.SetSelector(sel)
	}
}

// AllSwitches returns every switch in the fabric.
func (ft *FatTree) AllSwitches() []*netsim.Switch {
	var out []*netsim.Switch
	for pod := range ft.Tors {
		out = append(out, ft.Tors[pod]...)
		out = append(out, ft.Aggs[pod]...)
	}
	return append(out, ft.Cores...)
}

// HostIndex maps (pod, tor, server) to a host index.
func (ft *FatTree) HostIndex(pod, tor, server int) int {
	p := ft.P
	return (pod*p.TorsPerPod+tor)*p.ServersPerTor + server
}

// HostLoc maps a host index to (pod, tor, server).
func (ft *FatTree) HostLoc(h int) (pod, tor, server int) {
	p := ft.P
	server = h % p.ServersPerTor
	tor = (h / p.ServersPerTor) % p.TorsPerPod
	pod = h / (p.ServersPerTor * p.TorsPerPod)
	return
}

// PodOf returns the pod a host belongs to.
func (ft *FatTree) PodOf(h int) int { pod, _, _ := ft.HostLoc(h); return pod }

// TorHosts returns the host indices attached to (pod, tor).
func (ft *FatTree) TorHosts(pod, tor int) []int {
	out := make([]int, ft.P.ServersPerTor)
	for s := range out {
		out[s] = ft.HostIndex(pod, tor, s)
	}
	return out
}
