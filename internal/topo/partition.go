package topo

import (
	"fmt"
	"math"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// Partition assigns every device of a fat-tree to an execution shard. The
// unit of locality is a ToR together with all of its servers: host-to-ToR
// traffic is the fabric's densest and (with zero-delay links) least
// deferrable, so it must never cross a shard boundary. Aggs are placed on
// the shard owning their pod's ToRs (spread round-robin when a pod's ToRs
// span shards) and cores are dealt round-robin across all shards.
type Partition struct {
	Shards    int
	TorShard  [][]int // [pod][t]
	AggShard  [][]int // [pod][a]
	CoreShard []int   // [c]
	HostShard []int   // [h], always the host's ToR's shard
}

// PartitionFatTree splits a fat-tree into at most `shards` shards. The
// effective shard count is clamped to the number of ToRs — the smallest
// unit of locality — so tiny fabrics never produce empty shards.
func PartitionFatTree(p Params, shards int) Partition {
	validate(p)
	totalTors := p.Pods * p.TorsPerPod
	if shards > totalTors {
		shards = totalTors
	}
	if shards < 1 {
		shards = 1
	}
	pt := Partition{
		Shards:    shards,
		TorShard:  make([][]int, p.Pods),
		AggShard:  make([][]int, p.Pods),
		CoreShard: make([]int, p.NumCores()),
		HostShard: make([]int, p.NumHosts()),
	}
	for pod := 0; pod < p.Pods; pod++ {
		pt.TorShard[pod] = make([]int, p.TorsPerPod)
		for t := 0; t < p.TorsPerPod; t++ {
			// Contiguous balanced blocks: ToR group g of G lands on shard
			// g*S/G, keeping each shard's ToR count within one of the rest.
			g := pod*p.TorsPerPod + t
			pt.TorShard[pod][t] = g * shards / totalTors
		}
		pt.AggShard[pod] = make([]int, p.AggsPerPod)
		for a := 0; a < p.AggsPerPod; a++ {
			// Pod-aligned: co-locate each agg with one of its pod's ToRs so
			// intra-pod hops cross shards only when the pod itself does.
			pt.AggShard[pod][a] = pt.TorShard[pod][a%p.TorsPerPod]
		}
	}
	for c := range pt.CoreShard {
		pt.CoreShard[c] = c % shards
	}
	for h := range pt.HostShard {
		server := h / p.ServersPerTor
		pt.HostShard[h] = pt.TorShard[server/p.TorsPerPod][server%p.TorsPerPod]
	}
	return pt
}

// Lookahead returns the bounded-lag window width for this partition: the
// minimum, over every directed cross-shard cable, of the cable's propagation
// delay plus the receiving device's first scheduling delay (switch
// forwarding or host ingress). Any event one shard produces for another is
// therefore at least this far in the receiver's future, which is exactly the
// slack conservative synchronization needs. ok is false when the partition
// has no cross-shard cable (single shard) or when some cross-shard path has
// zero total slack, in which case sharded execution is not safe.
func (pt Partition) Lookahead(p Params) (w sim.Time, ok bool) {
	const inf = sim.Time(math.MaxInt64)
	min := inf
	edge := func(sa, sb int, d sim.Time) {
		if sa != sb && d < min {
			min = d
		}
	}
	toSwitch := p.LinkDelay + p.SwitchDelay
	toHost := p.LinkDelay + p.HostDelay
	for pod := 0; pod < p.Pods; pod++ {
		for t := 0; t < p.TorsPerPod; t++ {
			ts := pt.TorShard[pod][t]
			for s := 0; s < p.ServersPerTor; s++ {
				h := (pod*p.TorsPerPod+t)*p.ServersPerTor + s
				edge(pt.HostShard[h], ts, toSwitch) // host -> ToR
				edge(ts, pt.HostShard[h], toHost)   // ToR -> host
			}
			for a := 0; a < p.AggsPerPod; a++ {
				edge(ts, pt.AggShard[pod][a], toSwitch)
				edge(pt.AggShard[pod][a], ts, toSwitch)
			}
		}
		for a := 0; a < p.AggsPerPod; a++ {
			as := pt.AggShard[pod][a]
			for k := 0; k < p.CoreUplinksPerAgg; k++ {
				cs := pt.CoreShard[a*p.CoreUplinksPerAgg+k]
				edge(as, cs, toSwitch)
				edge(cs, as, toSwitch)
			}
		}
	}
	if min == inf {
		return 0, false
	}
	return min, min > 0
}

// ShardedFatTree is a fat-tree whose devices are spread over several engine
// instances, with every cross-shard cable interposed by a mailbox proxy.
// The embedded FatTree is structurally identical to a serial build (same
// NodeIDs, wiring, and routes); only execution placement differs.
type ShardedFatTree struct {
	*FatTree
	Part    Partition
	Engines []*sim.Engine
	// Pools holds each shard's private packet free list. Packets that cross
	// a shard boundary are recycled by the consuming shard's pool; the
	// aggregate stays balanced, per-pool Gets/Puts drift by design.
	Pools []*netsim.PacketPool
	// Boxes[from][to] is the SPSC mailbox for cross-shard arrivals; nil on
	// the diagonal.
	Boxes [][]*netsim.CrossBox
	// Window is the bounded-lag width computed from the partition.
	Window sim.Time
}

// NewShardedFatTree builds the fat-tree with each device on its partition's
// engine and interposes cross-shard proxies. len(engines) must equal
// part.Shards, and the partition must have positive lookahead.
func NewShardedFatTree(engines []*sim.Engine, p Params, part Partition) *ShardedFatTree {
	if len(engines) != part.Shards {
		panic(fmt.Sprintf("topo: %d engines for %d shards", len(engines), part.Shards))
	}
	w, ok := part.Lookahead(p)
	if !ok || w <= 0 {
		panic("topo: partition has no positive cross-shard lookahead; use the serial builder")
	}
	ft := newFatTree(p, engineMap{
		host: func(h int) *sim.Engine { return engines[part.HostShard[h]] },
		tor:  func(pod, t int) *sim.Engine { return engines[part.TorShard[pod][t]] },
		agg:  func(pod, a int) *sim.Engine { return engines[part.AggShard[pod][a]] },
		core: func(c int) *sim.Engine { return engines[part.CoreShard[c]] },
	})
	ft.Eng = engines[0]
	sft := &ShardedFatTree{FatTree: ft, Part: part, Engines: engines, Window: w}

	sft.Pools = make([]*netsim.PacketPool, part.Shards)
	for i := range sft.Pools {
		sft.Pools[i] = netsim.NewPacketPool()
	}
	ft.Pool = sft.Pools[0]
	for h, host := range ft.Hosts {
		host.UsePool(sft.Pools[part.HostShard[h]])
	}
	for pod := range ft.Tors {
		for t, tor := range ft.Tors[pod] {
			tor.UsePool(sft.Pools[part.TorShard[pod][t]])
		}
		for a, agg := range ft.Aggs[pod] {
			agg.UsePool(sft.Pools[part.AggShard[pod][a]])
		}
	}
	for c, core := range ft.Cores {
		core.UsePool(sft.Pools[part.CoreShard[c]])
	}

	sft.Boxes = make([][]*netsim.CrossBox, part.Shards)
	for i := range sft.Boxes {
		sft.Boxes[i] = make([]*netsim.CrossBox, part.Shards)
		for j := range sft.Boxes[i] {
			if i != j {
				sft.Boxes[i][j] = &netsim.CrossBox{}
			}
		}
	}

	// Interpose a proxy on each direction of every cross-shard cable. Host
	// cables never cross (hosts are pinned to their ToR's shard).
	for pod := range ft.Tors {
		for t := range ft.Tors[pod] {
			ts := part.TorShard[pod][t]
			for a := range ft.Aggs[pod] {
				sft.interpose(ft.TorAggLinks[pod][t][a], ts, part.AggShard[pod][a])
			}
		}
		for a := range ft.Aggs[pod] {
			as := part.AggShard[pod][a]
			for k := range ft.AggCoreLinks[pod][a] {
				cs := part.CoreShard[a*p.CoreUplinksPerAgg+k]
				sft.interpose(ft.AggCoreLinks[pod][a][k], as, cs)
			}
		}
	}
	return sft
}

// interpose wraps both directions of a cable whose A side runs on shard sa
// and B side on shard sb.
func (sft *ShardedFatTree) interpose(d *netsim.Duplex, sa, sb int) {
	if sa == sb {
		return
	}
	d.AtoB.Link.To = netsim.NewCrossLink(sft.Engines[sa], sft.Boxes[sa][sb], d.AtoB.Link.To)
	d.BtoA.Link.To = netsim.NewCrossLink(sft.Engines[sb], sft.Boxes[sb][sa], d.BtoA.Link.To)
}

// DrainInbox appends every message addressed to shard into buf and returns
// it; callers hand the result to netsim.MergeCross at the window barrier.
func (sft *ShardedFatTree) DrainInbox(shard int, buf []netsim.CrossMsg) []netsim.CrossMsg {
	for from := range sft.Boxes {
		if b := sft.Boxes[from][shard]; b != nil {
			buf = b.Drain(buf)
		}
	}
	return buf
}
