package topo

import (
	"testing"

	"flowbender/internal/sim"
)

func TestTorAggRate(t *testing.T) {
	p := PaperScale()
	if got := p.TorAggRateBps(); got != 20*Gbps {
		t.Fatalf("paper ToR-agg rate = %d, want 20G", got)
	}
	if got := SmallScale().TorAggRateBps(); got != 20*Gbps {
		t.Fatalf("small ToR-agg rate = %d, want 20G", got)
	}
}

func TestBisection(t *testing.T) {
	p := PaperScale()
	if got := p.BisectionBps(); got != 160*Gbps {
		t.Fatalf("paper bisection = %d, want 160G", got)
	}
	if got := p.InterPodFraction(); got != 0.75 {
		t.Fatalf("inter-pod fraction = %v", got)
	}
	tiny := TinyScale()
	if got := tiny.InterPodFraction(); got != 0.5 {
		t.Fatalf("tiny inter-pod fraction = %v", got)
	}
}

func TestFatTreePortRates(t *testing.T) {
	eng := sim.NewEngine()
	p := SmallScale()
	ft := NewFatTree(eng, p)
	fat := p.TorAggRateBps()

	tor := ft.Tors[0][0]
	for s := 0; s < p.ServersPerTor; s++ {
		if tor.Ports[s].RateBps != p.LinkRateBps {
			t.Fatalf("ToR server port %d at %d", s, tor.Ports[s].RateBps)
		}
	}
	for a := 0; a < p.AggsPerPod; a++ {
		if tor.Ports[p.ServersPerTor+a].RateBps != fat {
			t.Fatalf("ToR uplink %d not at fat rate", a)
		}
	}
	agg := ft.Aggs[0][0]
	for tt := 0; tt < p.TorsPerPod; tt++ {
		if agg.Ports[tt].RateBps != fat {
			t.Fatalf("agg downlink %d not at fat rate", tt)
		}
	}
	for k := 0; k < p.CoreUplinksPerAgg; k++ {
		if agg.Ports[p.TorsPerPod+k].RateBps != p.LinkRateBps {
			t.Fatalf("agg core uplink %d not at base rate", k)
		}
	}
	for _, core := range ft.Cores {
		for _, port := range core.Ports {
			if port.RateBps != p.LinkRateBps {
				t.Fatal("core port not at base rate")
			}
		}
	}
}

func TestCoreWiring(t *testing.T) {
	// Core c must attach to agg c/K of every pod, on that agg's uplink c%K.
	eng := sim.NewEngine()
	p := PaperScale()
	ft := NewFatTree(eng, p)
	for c, core := range ft.Cores {
		a := c / p.CoreUplinksPerAgg
		for pod := 0; pod < p.Pods; pod++ {
			if core.Ports[pod].Link.To != ft.Aggs[pod][a] {
				t.Fatalf("core %d pod %d attached to the wrong agg", c, pod)
			}
		}
	}
}

func TestValidatePanicsOnRaggedTor(t *testing.T) {
	p := PaperScale()
	p.ServersPerTor = 5 // not a multiple of AggsPerPod=4
	defer func() {
		if recover() == nil {
			t.Fatal("ragged ToR accepted")
		}
	}()
	NewFatTree(sim.NewEngine(), p)
}
