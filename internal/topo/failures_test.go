package topo

import (
	"testing"

	"flowbender/internal/sim"
)

func TestFailAggCutsAllItsCables(t *testing.T) {
	eng := sim.NewEngine()
	p := TinyScale()
	ft := NewFatTree(eng, p)
	if ft.DownLinks() != 0 {
		t.Fatal("fresh fabric has failed links")
	}
	ft.FailAgg(0, 1)
	want := p.TorsPerPod + p.CoreUplinksPerAgg
	if got := ft.DownLinks(); got != want {
		t.Fatalf("down links = %d, want %d", got, want)
	}
	ft.RestoreAgg(0, 1)
	if ft.DownLinks() != 0 {
		t.Fatal("restore incomplete")
	}
}

func TestFailCoreCutsOnePerPod(t *testing.T) {
	eng := sim.NewEngine()
	p := PaperScale()
	ft := NewFatTree(eng, p)
	ft.FailCore(5)
	if got := ft.DownLinks(); got != p.Pods {
		t.Fatalf("down links = %d, want %d", got, p.Pods)
	}
	// The right agg's uplink in each pod: core 5 = agg 2, uplink 1.
	for pod := 0; pod < p.Pods; pod++ {
		if !ft.AggCoreLinks[pod][2][1].Failed() {
			t.Fatalf("pod %d wrong link cut", pod)
		}
	}
	ft.RestoreCore(5)
	if ft.DownLinks() != 0 {
		t.Fatal("restore incomplete")
	}
}

func TestFailCoreRejectsOutOfRangeIndex(t *testing.T) {
	eng := sim.NewEngine()
	p := TinyScale() // 2 cores
	ft := NewFatTree(eng, p)
	for _, core := range []int{-1, p.NumCores(), p.NumCores() + 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FailCore(%d) did not panic", core)
				}
			}()
			ft.FailCore(core)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RestoreCore(%d) did not panic", core)
				}
			}()
			ft.RestoreCore(core)
		}()
	}
	if ft.DownLinks() != 0 {
		t.Fatal("rejected FailCore still cut cables")
	}
}

func TestLeafSpineFailRestoreRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	lp := SmallTestbed()
	ls := NewLeafSpine(eng, lp)
	if ls.DownLinks() != 0 {
		t.Fatal("fresh leaf-spine has failed links")
	}
	ls.FailSpine(1)
	if got := ls.DownLinks(); got != lp.Tors {
		t.Fatalf("down links = %d, want %d", got, lp.Tors)
	}
	// A half-open cable elsewhere must not count as fully down.
	ls.UpLinks[0][3].FailAtoB()
	if got := ls.DownLinks(); got != lp.Tors {
		t.Fatalf("half-open cable counted as down: %d", got)
	}
	if !ls.UpLinks[0][3].HalfOpen() {
		t.Fatal("half-open state lost")
	}
	ls.UpLinks[0][3].Restore()
	ls.RestoreSpine(1)
	if ls.DownLinks() != 0 {
		t.Fatal("restore incomplete")
	}
	// Round-trip again to catch state leakage between cycles.
	ls.FailSpine(0)
	ls.RestoreSpine(0)
	if ls.DownLinks() != 0 {
		t.Fatal("second round-trip left links down")
	}
}

func TestFailSpine(t *testing.T) {
	eng := sim.NewEngine()
	lp := SmallTestbed()
	ls := NewLeafSpine(eng, lp)
	ls.FailSpine(2)
	for tor := 0; tor < lp.Tors; tor++ {
		if !ls.UpLinks[tor][2].Failed() {
			t.Fatalf("tor %d spine-2 cable not cut", tor)
		}
		if ls.UpLinks[tor][1].Failed() {
			t.Fatal("unrelated cable cut")
		}
	}
	ls.RestoreSpine(2)
	if ls.UpLinks[0][2].Failed() {
		t.Fatal("restore incomplete")
	}
}
