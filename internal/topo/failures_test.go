package topo

import (
	"testing"

	"flowbender/internal/sim"
)

func TestFailAggCutsAllItsCables(t *testing.T) {
	eng := sim.NewEngine()
	p := TinyScale()
	ft := NewFatTree(eng, p)
	if ft.DownLinks() != 0 {
		t.Fatal("fresh fabric has failed links")
	}
	ft.FailAgg(0, 1)
	want := p.TorsPerPod + p.CoreUplinksPerAgg
	if got := ft.DownLinks(); got != want {
		t.Fatalf("down links = %d, want %d", got, want)
	}
	ft.RestoreAgg(0, 1)
	if ft.DownLinks() != 0 {
		t.Fatal("restore incomplete")
	}
}

func TestFailCoreCutsOnePerPod(t *testing.T) {
	eng := sim.NewEngine()
	p := PaperScale()
	ft := NewFatTree(eng, p)
	ft.FailCore(5)
	if got := ft.DownLinks(); got != p.Pods {
		t.Fatalf("down links = %d, want %d", got, p.Pods)
	}
	// The right agg's uplink in each pod: core 5 = agg 2, uplink 1.
	for pod := 0; pod < p.Pods; pod++ {
		if !ft.AggCoreLinks[pod][2][1].Failed() {
			t.Fatalf("pod %d wrong link cut", pod)
		}
	}
	ft.RestoreCore(5)
	if ft.DownLinks() != 0 {
		t.Fatal("restore incomplete")
	}
}

func TestFailSpine(t *testing.T) {
	eng := sim.NewEngine()
	lp := SmallTestbed()
	ls := NewLeafSpine(eng, lp)
	ls.FailSpine(2)
	for tor := 0; tor < lp.Tors; tor++ {
		if !ls.UpLinks[tor][2].Failed() {
			t.Fatalf("tor %d spine-2 cable not cut", tor)
		}
		if ls.UpLinks[tor][1].Failed() {
			t.Fatal("unrelated cable cut")
		}
	}
	ls.RestoreSpine(2)
	if ls.UpLinks[0][2].Failed() {
		t.Fatal("restore incomplete")
	}
}
