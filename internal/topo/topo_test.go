package topo

import (
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

func TestPaperScaleShape(t *testing.T) {
	p := PaperScale()
	if got := p.NumHosts(); got != 128 {
		t.Fatalf("hosts = %d, want 128", got)
	}
	if got := p.NumCores(); got != 8 {
		t.Fatalf("cores = %d, want 8", got)
	}
	if got := p.PathsBetweenPods(); got != 8 {
		t.Fatalf("paths = %d, want 8", got)
	}
	if got := p.Oversubscription(); got != 4 {
		t.Fatalf("oversub = %v, want 4", got)
	}
	// Non-oversubscribed ToRs: uplink capacity equals server capacity.
	if int64(p.TorUplinks())*p.TorAggRateBps() != int64(p.ServersPerTor)*p.LinkRateBps {
		t.Fatalf("ToR oversubscribed: %d x %d up vs %d x %d down",
			p.TorUplinks(), p.TorAggRateBps(), p.ServersPerTor, p.LinkRateBps)
	}
}

func TestScalesKeepOversubscription(t *testing.T) {
	for name, p := range map[string]Params{"small": SmallScale(), "tiny": TinyScale()} {
		if got := p.Oversubscription(); got != 4 {
			t.Errorf("%s: oversub = %v, want 4", name, got)
		}
		if int64(p.TorUplinks())*p.TorAggRateBps() != int64(p.ServersPerTor)*p.LinkRateBps {
			t.Errorf("%s: ToR oversubscribed", name)
		}
	}
}

func TestFatTreeWiring(t *testing.T) {
	eng := sim.NewEngine()
	p := TinyScale()
	ft := NewFatTree(eng, p)

	if len(ft.Hosts) != p.NumHosts() {
		t.Fatalf("hosts built = %d", len(ft.Hosts))
	}
	if len(ft.Cores) != p.NumCores() {
		t.Fatalf("cores built = %d", len(ft.Cores))
	}
	// Every cable handle must be populated and reciprocal.
	for h, d := range ft.HostLinks {
		if d == nil || d.AtoB.Link.To == nil || d.BtoA.Link.To == nil {
			t.Fatalf("host link %d incomplete", h)
		}
	}
	// HostIndex/HostLoc round-trip.
	for h := 0; h < p.NumHosts(); h++ {
		pod, tor, srv := ft.HostLoc(h)
		if ft.HostIndex(pod, tor, srv) != h {
			t.Fatalf("HostLoc/HostIndex mismatch at %d", h)
		}
	}
}

func TestFatTreeRoutesReachability(t *testing.T) {
	eng := sim.NewEngine()
	p := TinyScale()
	ft := NewFatTree(eng, p)
	n := p.NumHosts()
	for _, sw := range ft.AllSwitches() {
		routes := sw.Routes()
		if len(routes) != n {
			t.Fatalf("switch %d has %d route entries, want %d", sw.ID(), len(routes), n)
		}
		for dst, ports := range routes {
			if len(ports) == 0 {
				t.Fatalf("switch %d has no route to host %d", sw.ID(), dst)
			}
			for _, port := range ports {
				if int(port) >= len(sw.Ports) {
					t.Fatalf("switch %d route to %d uses invalid port %d", sw.ID(), dst, port)
				}
			}
		}
	}
}

func TestFatTreeDelivery(t *testing.T) {
	// Send one packet between every host pair through static port-0 ECMP and
	// check delivery (validates wiring + routing end to end).
	eng := sim.NewEngine()
	p := TinyScale()
	ft := NewFatTree(eng, p)
	ft.SetSelector(firstPort{})

	n := p.NumHosts()
	got := make(map[int]int)
	for i := 0; i < n; i++ {
		i := i
		ft.Hosts[i].Register(netsim.FlowID(1000+i), handlerFunc(func(pkt *netsim.Packet) { got[i]++ }))
	}
	sent := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			ft.Hosts[src].Send(&netsim.Packet{
				Flow: netsim.FlowID(1000 + dst),
				Src:  netsim.NodeID(src), Dst: netsim.NodeID(dst), Size: 100,
			})
			sent++
		}
	}
	eng.RunUntilIdle()
	total := 0
	for _, c := range got {
		total += c
	}
	if total != sent {
		t.Fatalf("delivered %d of %d", total, sent)
	}
}

func TestLeafSpineShape(t *testing.T) {
	p := TestbedScale()
	if p.Tors != 15 || p.Spines != 4 {
		t.Fatalf("testbed shape wrong: %+v", p)
	}
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, p)
	if len(ls.Hosts) != 15*12 {
		t.Fatalf("hosts = %d", len(ls.Hosts))
	}
	if ls.TorOf(13) != 1 {
		t.Fatalf("TorOf(13) = %d", ls.TorOf(13))
	}
	if h := ls.TorHosts(2); len(h) != 12 || h[0] != 24 {
		t.Fatalf("TorHosts(2) = %v", h)
	}
}

func TestLeafSpineDelivery(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, SmallTestbed())
	ls.SetSelector(firstPort{})
	dst := len(ls.Hosts) - 1
	var got int
	ls.Hosts[dst].Register(5, handlerFunc(func(*netsim.Packet) { got++ }))
	ls.Hosts[0].Send(&netsim.Packet{Flow: 5, Src: 0, Dst: netsim.NodeID(dst), Size: 64})
	eng.RunUntilIdle()
	if got != 1 {
		t.Fatal("cross-ToR packet not delivered")
	}
}

func TestDuplexFailRestore(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, TinyScale())
	d := ft.AggCoreLinks[0][0][0]
	if d.Failed() {
		t.Fatal("new link reports failed")
	}
	d.Fail()
	if !d.Failed() || !d.AtoB.Link.Down || !d.BtoA.Link.Down {
		t.Fatal("Fail did not cut both directions")
	}
	d.Restore()
	if d.Failed() {
		t.Fatal("Restore did not bring the link back")
	}
}

type firstPort struct{}

func (firstPort) Select(_ *netsim.Switch, _ *netsim.Packet, eligible []int32) int32 {
	return eligible[0]
}

type handlerFunc func(*netsim.Packet)

func (f handlerFunc) Deliver(pkt *netsim.Packet) { f(pkt) }
