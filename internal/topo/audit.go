package topo

import (
	"fmt"
	"sort"

	"flowbender/internal/netsim"
)

// AuditReport summarizes the static health of a built fabric: every host
// pair reachable, no routing loops, and the expected path diversity.
type AuditReport struct {
	Hosts          int
	Switches       int
	PairsChecked   int
	Unreachable    int
	Errors         []string
	MaxHops        int
	InterPodPaths  int // distinct paths observed between one inter-pod host pair across tags
	IntraTorPaths  int // for a same-ToR pair (always 1)
	TagDistinctMin int // min distinct paths over sampled pairs
}

// Audit verifies reachability between every host pair under the installed
// selector and measures the per-pair path diversity FlowBender can exploit
// (distinct TracePath results across the tag range). The fabric must have a
// deterministic selector installed (ECMP or WCMP).
func (ft *FatTree) Audit(tagRange uint32) AuditReport {
	rep := AuditReport{
		Hosts:    len(ft.Hosts),
		Switches: len(ft.AllSwitches()),
	}
	if tagRange == 0 {
		tagRange = 8
	}
	n := len(ft.Hosts)
	rep.TagDistinctMin = 1 << 30
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			rep.PairsChecked++
			pkt := &netsim.Packet{
				Src: netsim.NodeID(src), Dst: netsim.NodeID(dst),
				SrcPort: uint16(10000 + src*13 + dst), DstPort: 5001,
			}
			path, err := netsim.TracePath(ft.Hosts[src], pkt, 16)
			if err != nil {
				rep.Unreachable++
				if len(rep.Errors) < 10 {
					rep.Errors = append(rep.Errors, fmt.Sprintf("%d->%d: %v", src, dst, err))
				}
				continue
			}
			if len(path)-2 > rep.MaxHops { // switch hops
				rep.MaxHops = len(path) - 2
			}
		}
	}

	// Path diversity for a representative inter-pod pair and same-ToR pair.
	inter := ft.distinctPaths(0, ft.HostIndex(1, 0, 0), tagRange)
	rep.InterPodPaths = inter
	rep.IntraTorPaths = ft.distinctPaths(0, 1, tagRange)
	// Sample a handful of inter-pod pairs for the minimum diversity.
	for s := 0; s < 4 && s < ft.P.ServersPerTor; s++ {
		d := ft.distinctPaths(s, ft.HostIndex(ft.P.Pods-1, 0, s), tagRange)
		if d < rep.TagDistinctMin {
			rep.TagDistinctMin = d
		}
	}
	return rep
}

// distinctPaths counts the distinct forwarding paths between two hosts
// across the path-tag range.
func (ft *FatTree) distinctPaths(src, dst int, tagRange uint32) int {
	seen := map[string]bool{}
	for tag := uint32(0); tag < tagRange; tag++ {
		pkt := &netsim.Packet{
			Src: netsim.NodeID(src), Dst: netsim.NodeID(dst),
			SrcPort: 12345, DstPort: 5001, PathTag: tag,
		}
		path, err := netsim.TracePath(ft.Hosts[src], pkt, 16)
		if err != nil {
			continue
		}
		seen[fmt.Sprint(path)] = true
	}
	return len(seen)
}

// PathsByTag returns, for each tag in [0, tagRange), the node path a packet
// between the two hosts would take — the tool view of FlowBender's "V
// selects a path" mechanism.
func (ft *FatTree) PathsByTag(src, dst int, tagRange uint32) map[uint32][]netsim.NodeID {
	out := make(map[uint32][]netsim.NodeID, tagRange)
	for tag := uint32(0); tag < tagRange; tag++ {
		pkt := &netsim.Packet{
			Src: netsim.NodeID(src), Dst: netsim.NodeID(dst),
			SrcPort: 12345, DstPort: 5001, PathTag: tag,
		}
		if path, err := netsim.TracePath(ft.Hosts[src], pkt, 16); err == nil {
			out[tag] = path
		}
	}
	return out
}

// Format renders the report as text.
func (r AuditReport) Format() string {
	s := fmt.Sprintf("hosts=%d switches=%d pairs=%d unreachable=%d maxSwitchHops=%d\n",
		r.Hosts, r.Switches, r.PairsChecked, r.Unreachable, r.MaxHops)
	s += fmt.Sprintf("path diversity: inter-pod=%d same-tor=%d minSampled=%d\n",
		r.InterPodPaths, r.IntraTorPaths, r.TagDistinctMin)
	errs := append([]string(nil), r.Errors...)
	sort.Strings(errs)
	for _, e := range errs {
		s += "  error: " + e + "\n"
	}
	return s
}
