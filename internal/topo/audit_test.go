package topo

import (
	"fmt"
	"strings"
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
)

func TestAuditCleanFabric(t *testing.T) {
	eng := sim.NewEngine()
	p := SmallScale()
	ft := NewFatTree(eng, p)
	ft.SetSelector(routing.ECMP{})
	rep := ft.Audit(8)

	if rep.Unreachable != 0 {
		t.Fatalf("unreachable pairs: %d (%v)", rep.Unreachable, rep.Errors)
	}
	if rep.PairsChecked != p.NumHosts()*(p.NumHosts()-1) {
		t.Fatalf("pairs checked = %d", rep.PairsChecked)
	}
	// Inter-pod: host -> ToR -> agg -> core -> agg -> ToR -> host = 5 switch hops.
	if rep.MaxHops != 5 {
		t.Fatalf("max switch hops = %d, want 5", rep.MaxHops)
	}
	// Same-ToR pairs always take the single ToR path.
	if rep.IntraTorPaths != 1 {
		t.Fatalf("same-ToR paths = %d", rep.IntraTorPaths)
	}
	// With 8 tags over P=4 physical core paths, an inter-pod pair must see
	// several distinct paths (FlowBender's raw material).
	if rep.InterPodPaths < 2 || rep.TagDistinctMin < 2 {
		t.Fatalf("insufficient path diversity: %+v", rep)
	}
	if !strings.Contains(rep.Format(), "path diversity") {
		t.Fatal("Format missing content")
	}
}

func TestAuditDetectsFailure(t *testing.T) {
	eng := sim.NewEngine()
	p := TinyScale()
	ft := NewFatTree(eng, p)
	ft.SetSelector(routing.ECMP{})
	// Cut a host's access link: every pair involving it becomes unreachable.
	ft.HostLinks[3].Fail()
	rep := ft.Audit(4)
	if rep.Unreachable == 0 {
		t.Fatal("audit missed the failed access link")
	}
	if len(rep.Errors) == 0 {
		t.Fatal("no error samples recorded")
	}
}

func TestPathsByTagChangeWithTag(t *testing.T) {
	eng := sim.NewEngine()
	p := SmallScale()
	ft := NewFatTree(eng, p)
	ft.SetSelector(routing.ECMP{})
	src := 0
	dst := ft.HostIndex(2, 1, 3)
	paths := ft.PathsByTag(src, dst, 8)
	if len(paths) != 8 {
		t.Fatalf("paths for %d tags, want 8", len(paths))
	}
	distinct := map[string]bool{}
	for tag, path := range paths {
		if path[0] != netsim.NodeID(src) || path[len(path)-1] != netsim.NodeID(dst) {
			t.Fatalf("tag %d: endpoints wrong: %v", tag, path)
		}
		distinct[fmt.Sprint(path)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("tag change never changed the path")
	}
}
