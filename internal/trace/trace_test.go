package trace

import (
	"strings"
	"testing"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

func TestSamplerTicks(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	x := 0.0
	series := s.Track("x", func() float64 { x++; return x })
	s.Start()
	eng.Run(10 * sim.Millisecond)
	if series.Len() != 10 {
		t.Fatalf("samples = %d, want 10", series.Len())
	}
	if series.T[0] != sim.Millisecond || series.V[0] != 1 {
		t.Fatalf("first sample (%v, %v)", series.T[0], series.V[0])
	}
	if series.Last() != 10 || series.Max() != 10 || series.Mean() != 5.5 {
		t.Fatalf("stats wrong: last=%v max=%v mean=%v", series.Last(), series.Max(), series.Mean())
	}
}

func TestSamplerStop(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	series := s.Track("x", func() float64 { return 1 })
	s.Start()
	eng.Run(3 * sim.Millisecond)
	s.Stop()
	eng.Run(10 * sim.Millisecond)
	if series.Len() > 4 {
		t.Fatalf("sampler kept running after Stop: %d samples", series.Len())
	}
}

func TestSamplerDoubleStartHarmless(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	series := s.Track("x", func() float64 { return 1 })
	s.Start()
	s.Start()
	eng.Run(5 * sim.Millisecond)
	if series.Len() != 5 {
		t.Fatalf("double Start duplicated sampling: %d", series.Len())
	}
}

func TestWriteCSV(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	a := s.Track("a", func() float64 { return 1.5 })
	b := s.Track("b", func() float64 { return 2 })
	s.Start()
	eng.Run(2 * sim.Millisecond)

	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), out)
	}
	if lines[0] != "time_us,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1000.0,1.5,2") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVMismatch(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(1, 1)
	if err := WriteCSV(&strings.Builder{}, a, b); err == nil {
		t.Fatal("mismatched series accepted")
	}
	if err := WriteCSV(&strings.Builder{}); err == nil {
		t.Fatal("empty series list accepted")
	}
}

func TestQueueBytesProbe(t *testing.T) {
	eng := sim.NewEngine()
	p := netsim.NewPort(eng, 1_000_000) // slow: packets stay queued
	p.Link = netsim.Link{To: devNull{}}
	probe := QueueBytes(p)
	p.Enqueue(&netsim.Packet{Size: 500})
	p.Enqueue(&netsim.Packet{Size: 300})
	// First packet is serializing (left the queue); the second waits.
	if got := probe(); got != 300 {
		t.Fatalf("queue probe = %v, want 300", got)
	}
}

func TestThroughputProbe(t *testing.T) {
	eng := sim.NewEngine()
	p := netsim.NewPort(eng, 8_000_000) // 1 byte/us
	p.Link = netsim.Link{To: devNull{}}
	probe := ThroughputBps(eng, p)
	for i := 0; i < 10; i++ {
		p.Enqueue(&netsim.Packet{Size: 1000})
	}
	eng.Run(10 * sim.Millisecond) // all 10 KB transmitted in 10 ms
	got := probe()
	want := 8_000_000.0 // line rate for the busy period... averaged over 10 ms
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("throughput probe = %v, want ~%v", got, want)
	}
	// A second probe over an idle period reads ~0.
	eng.Run(20 * sim.Millisecond)
	if got := probe(); got != 0 {
		t.Fatalf("idle throughput = %v", got)
	}
}

type devNull struct{}

func (devNull) ID() netsim.NodeID           { return 0 }
func (devNull) Receive(*netsim.Packet, int) {}
