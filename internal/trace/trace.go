// Package trace provides lightweight time-series instrumentation for
// simulation runs: a Sampler periodically evaluates registered probes
// (congestion windows, queue depths, link throughput, FlowBender path tags,
// ...) and the recorded series can be exported as CSV for plotting — the
// raw material for reproducing the paper's figures as actual graphs.
package trace

import (
	"fmt"
	"io"
	"strconv"

	"flowbender/internal/netsim"
	"flowbender/internal/sim"
)

// Series is one named, time-stamped sequence of samples.
type Series struct {
	Name string
	T    []sim.Time
	V    []float64
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.V) }

// Last returns the most recent sample (NaN semantics avoided: 0 when empty).
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Max returns the largest sample (0 when empty).
func (s *Series) Max() float64 {
	var m float64
	for i, v := range s.V {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average sample (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// Sampler drives a set of probes at a fixed virtual-time interval.
type Sampler struct {
	eng      *sim.Engine
	interval sim.Time
	probes   []func() float64
	series   []*Series
	stopped  bool
	started  bool
	tickFn   func() // prebuilt so periodic sampling does not allocate
}

// NewSampler creates a sampler ticking every interval.
func NewSampler(eng *sim.Engine, interval sim.Time) *Sampler {
	if interval <= 0 {
		interval = 100 * sim.Microsecond
	}
	s := &Sampler{eng: eng, interval: interval}
	s.tickFn = s.tick
	return s
}

// Track registers a probe and returns its series. Must be called before
// Start.
func (s *Sampler) Track(name string, probe func() float64) *Series {
	se := &Series{Name: name}
	s.probes = append(s.probes, probe)
	s.series = append(s.series, se)
	return se
}

// Start schedules the periodic sampling (the first tick is one interval in).
func (s *Sampler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.stopped = false
	s.eng.Schedule(s.interval, s.tickFn)
}

// Stop halts sampling after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

// Series returns the recorded series in registration order.
func (s *Sampler) Series() []*Series { return s.series }

func (s *Sampler) tick() {
	if s.stopped {
		s.started = false
		return
	}
	now := s.eng.Now()
	for i, probe := range s.probes {
		s.series[i].Add(now, probe())
	}
	s.eng.Schedule(s.interval, s.tickFn)
}

// WriteCSV emits the series as CSV: a time_us column followed by one column
// per series. The series must have identical timestamps (i.e. come from one
// sampler).
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: no series")
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return fmt.Errorf("trace: series %q has %d samples, want %d", s.Name, s.Len(), n)
		}
	}
	if _, err := io.WriteString(w, "time_us"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := io.WriteString(w, ","+s.Name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := strconv.FormatFloat(float64(series[0].T[i])/1000, 'f', 1, 64)
		for _, s := range series {
			row += "," + strconv.FormatFloat(s.V[i], 'g', 6, 64)
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// QueueBytes probes an egress port's queue occupancy.
func QueueBytes(p *netsim.Port) func() float64 {
	return func() float64 { return float64(p.QueuedBytes()) }
}

// ThroughputBps probes a port's transmit rate, averaged since the previous
// sample (stateful: create one probe per port per sampler).
func ThroughputBps(eng *sim.Engine, p *netsim.Port) func() float64 {
	var lastBytes int64
	var lastT sim.Time
	for _, b := range p.TxBytes {
		lastBytes += b
	}
	lastT = eng.Now()
	return func() float64 {
		var cur int64
		for _, b := range p.TxBytes {
			cur += b
		}
		now := eng.Now()
		dt := now - lastT
		if dt <= 0 {
			return 0
		}
		bps := float64(cur-lastBytes) * 8 / dt.Seconds()
		lastBytes, lastT = cur, now
		return bps
	}
}
