package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// timeMax is the "no pending event" sentinel used by the shard scheduler.
const timeMax = Time(math.MaxInt64)

// barrier is a reusable sense-reversing spin barrier. Workers synchronize
// tens of thousands of times per simulated second, so parking on a channel
// or sync.Cond per window would dominate; a generation-counter spin with
// Gosched keeps the rendezvous in the tens of nanoseconds when all workers
// are running and stays live (if slow) when they are preempted.
type barrier struct {
	n     int64
	count atomic.Int64
	gen   atomic.Int64
}

// await blocks until all n workers have called it, then releases them
// together. The atomic generation bump publishes every write made before any
// worker's await to every worker after it (seq-cst happens-before).
func (b *barrier) await() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}

// ShardSet drives several engine instances — one fabric shard each — through
// conservatively synchronized bounded-lag windows.
//
// The contract: within a window [k·W, (k+1)·W) every shard executes only its
// own events; anything destined for another shard is deposited in a mailbox
// instead of being scheduled directly. W is the fabric's minimum positive
// cross-shard lookahead, i.e. no event executed inside a window can schedule
// an effect on another shard earlier than the window's end. At the barrier
// the mailboxes are drained by the Merge callback, which must insert the
// deferred work in a deterministic order, making the whole run bit-identical
// to serial execution at any shard and worker count.
type ShardSet struct {
	Engines []*Engine
	// Window is the bounded-lag width W. Must be positive and no larger
	// than the fabric's true minimum cross-shard delay (the simdebug build
	// verifies the latter at every merge).
	Window Time
	// Merge drains the cross-shard mailboxes addressed to `shard` and
	// schedules their contents on Engines[shard]. windowEnd is the first
	// instant of the next window; every injected event must land at or
	// after it. Merge for different shards may run concurrently, but each
	// shard's Merge runs on the worker that owns the shard, strictly
	// between the window barrier and the planning barrier.
	Merge func(shard int, windowEnd Time)
	// Tick, when non-nil, runs on worker 0 at every chunk boundary of Run,
	// with every shard quiescent and exactly the events at or before the
	// boundary executed — the same prefix a serial engine stopped there
	// would have run. Checkpointing hooks in here: the boundary is the
	// sharded runtime's quiescent barrier, so per-shard Snapshot states
	// taken inside Tick are reproducible across runs. Tick fires only when
	// Run was given a done callback (chunked execution).
	Tick func(boundary Time)
}

// Run advances every shard in lockstep windows until all engines drain, the
// virtual deadline passes, or done() reports true. done is evaluated with
// all shards quiescent at every `chunk` of virtual time, with exactly the
// events at or before the boundary executed — the same prefix a serial
// engine stopped at that boundary would have run — so a harness that stops
// on done() sees bit-identical state either way. Pass nil to run to the
// deadline. workers is the number of OS-schedulable goroutines to spread
// the shards over; each worker owns a fixed stripe of shards, so the
// simulation result is independent of the worker count — only wall time
// changes.
func (ss *ShardSet) Run(deadline, chunk Time, done func() bool, workers int) {
	n := len(ss.Engines)
	w := ss.Window
	if n == 0 || w <= 0 {
		panic("sim: ShardSet needs engines and a positive window")
	}
	if chunk <= 0 {
		chunk = deadline + 1
	}
	// Keep chunk boundaries on the window grid so `start` lands on them
	// exactly rather than stepping over.
	if r := chunk % w; r != 0 {
		chunk += w - r
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	bar := &barrier{n: int64(workers)}
	nexts := make([]atomic.Int64, n)
	var halt atomic.Bool

	worker := func(id int) {
		start := Time(0)
		chunkEnd := chunk
		for {
			if done != nil && start == chunkEnd {
				// Chunk boundary: execute the boundary instant itself, then
				// evaluate done. Windows end exclusively (events at `start`
				// belong to the next window), but a serial engine stopping
				// here would have run them — and their cross-shard effects
				// land at or after start+w by the lookahead bound, so they
				// wait in the mailboxes for the next merge just like any
				// other window-k output.
				for sh := id; sh < n; sh += workers {
					ss.Engines[sh].Run(start)
				}
				bar.await()
				if id == 0 {
					if ss.Tick != nil {
						ss.Tick(start)
					}
					if done() {
						halt.Store(true)
					}
				}
				bar.await()
				if halt.Load() {
					return
				}
				chunkEnd += chunk
			}

			end := start + w
			if end > deadline+1 {
				end = deadline + 1 // final window: execute events at the deadline itself
			}

			// Phase A: run each owned shard to the end of the window.
			for sh := id; sh < n; sh += workers {
				ss.Engines[sh].Run(end - 1)
			}
			bar.await()

			// Phase B: with every shard quiescent, merge inbound
			// cross-shard traffic and publish each shard's next due time.
			for sh := id; sh < n; sh += workers {
				ss.Merge(sh, end)
				if at, ok := ss.Engines[sh].NextAt(); ok {
					nexts[sh].Store(int64(at))
				} else {
					nexts[sh].Store(int64(timeMax))
				}
			}
			bar.await()

			// Phase C: every worker computes the identical continuation
			// decision from the shared next-event times.
			gnext := timeMax
			for sh := 0; sh < n; sh++ {
				if t := Time(nexts[sh].Load()); t < gnext {
					gnext = t
				}
			}
			if gnext == timeMax {
				return // all engines drained; mailboxes were emptied in Phase B
			}
			start = end
			// Skip straight to the window holding the globally next event;
			// low-load tails would otherwise burn barriers on empty windows.
			// Never skip past a pending chunk boundary, though: its done()
			// checkpoint must still fire (cheap — the boundary run is a
			// no-op when no events are due there).
			if g := gnext / w * w; g > start {
				start = g
			}
			if done != nil && start > chunkEnd {
				start = chunkEnd
			}
			if start > deadline {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for id := 1; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(id)
		}(id)
	}
	worker(0)
	wg.Wait()
}
