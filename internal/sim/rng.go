package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random-number source with named sub-streams.
//
// Each component of a simulation (workload generator, RPS selector, TCP
// jitter, ...) forks its own stream so that adding randomness consumption in
// one component does not perturb the draws seen by another. This keeps
// cross-scheme comparisons on the same workload sample.
type RNG struct {
	seed int64
	*rand.Rand
}

// NewRNG returns a root stream for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, Rand: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream identified by name. Forking the
// same (seed, name) pair always yields the same stream.
func (r *RNG) Fork(name string) *RNG {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(r.seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(name))
	child := int64(h.Sum64())
	return NewRNG(child)
}

// Seed returns the seed this stream was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Exp draws an exponentially distributed duration with the given mean.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	d := Time(r.ExpFloat64() * float64(mean))
	if d < 0 {
		return 0
	}
	return d
}

// IntnExcept draws uniformly from [0, n) excluding `except`. n must be >= 2
// when except is in range.
func (r *RNG) IntnExcept(n, except int) int {
	if except < 0 || except >= n {
		return r.Intn(n)
	}
	v := r.Intn(n - 1)
	if v >= except {
		v++
	}
	return v
}
