package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func TestNextAtPeeksWithoutRunning(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty engine reported an event")
	}
	e.Schedule(30, func() {})
	h := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	if at, ok := e.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt = %v,%v; want 10,true", at, ok)
	}
	if e.Now() != 0 || e.Executed != 0 {
		t.Fatalf("NextAt advanced the engine: now=%v executed=%d", e.Now(), e.Executed)
	}
	// Cancelling the root must make NextAt discard it and report the next
	// live event, exactly as Run would.
	e.Cancel(h)
	if at, ok := e.NextAt(); !ok || at != 20 {
		t.Fatalf("NextAt after cancel = %v,%v; want 20,true", at, ok)
	}
	e.RunUntilIdle()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on drained engine reported an event")
	}
}

// shardHarness is a two-shard ping-pong fixture: each bounce records a log
// entry and mails the next bounce to the other shard one window ahead.
type shardHarness struct {
	engines []*Engine
	boxes   [2][2][]pingMsg // [from][to], drained at merge
	logs    [2][]string
	window  Time
	limit   Time
}

type pingMsg struct {
	at Time
	id int
}

func newShardHarness(window, limit Time) *shardHarness {
	h := &shardHarness{
		engines: []*Engine{NewEngine(), NewEngine()},
		window:  window,
		limit:   limit,
	}
	return h
}

func (h *shardHarness) bounce(shard, id int) func() {
	var fn func()
	fn = func() {
		e := h.engines[shard]
		h.logs[shard] = append(h.logs[shard], fmt.Sprintf("t=%d shard=%d id=%d", e.Now(), shard, id))
		if e.Now() < h.limit {
			h.boxes[shard][1-shard] = append(h.boxes[shard][1-shard], pingMsg{at: e.Now() + h.window, id: id})
		}
	}
	return fn
}

func (h *shardHarness) merge(shard int, windowEnd Time) {
	var msgs []pingMsg
	for from := 0; from < 2; from++ {
		msgs = append(msgs, h.boxes[from][shard]...)
		h.boxes[from][shard] = h.boxes[from][shard][:0]
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].at != msgs[j].at {
			return msgs[i].at < msgs[j].at
		}
		return msgs[i].id < msgs[j].id
	})
	for _, m := range msgs {
		if m.at < windowEnd {
			panic(fmt.Sprintf("merge: message at %d precedes window end %d", m.at, windowEnd))
		}
		h.engines[shard].At(m.at, h.bounce(shard, m.id))
	}
}

func (h *shardHarness) run(workers int) [2][]string {
	// Three independent ping-pong chains, interleaved across both shards.
	for id := 0; id < 3; id++ {
		h.engines[0].At(Time(id), h.bounce(0, id))
	}
	ss := &ShardSet{Engines: h.engines, Window: h.window, Merge: h.merge}
	ss.Run(h.limit*4, 0, nil, workers)
	return h.logs
}

func TestShardSetPingPongWorkerInvariant(t *testing.T) {
	const window, limit = 100, 2000
	want := newShardHarness(window, limit).run(1)
	if len(want[0]) == 0 || len(want[1]) == 0 {
		t.Fatal("ping-pong produced no traffic")
	}
	for workers := 2; workers <= 3; workers++ {
		got := newShardHarness(window, limit).run(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d log diverges from workers=1", workers)
		}
	}
}

func TestShardSetStopsAtDoneChunk(t *testing.T) {
	// Each shard ticks every 10 time units forever; done() fires once shard
	// 0 has executed 50 events, and must stop the run at the next chunk
	// boundary — with the clock past the trigger but well short of deadline.
	engines := []*Engine{NewEngine(), NewEngine()}
	for i, e := range engines {
		e := e
		var tick func()
		tick = func() { e.Schedule(10, tick) }
		engines[i].Schedule(10, tick)
	}
	ss := &ShardSet{Engines: engines, Window: 25, Merge: func(int, Time) {}}
	const chunk = 1000
	ss.Run(1_000_000, chunk, func() bool { return engines[0].Executed >= 50 }, 2)
	if engines[0].Executed < 50 {
		t.Fatalf("stopped before done() could be true: executed=%d", engines[0].Executed)
	}
	if now := engines[0].Now(); now > 3*chunk {
		t.Fatalf("ran far past the done chunk boundary: now=%v", now)
	}
	// Both shards stop at the same window; clocks agree to within one window.
	if d := engines[0].Now() - engines[1].Now(); d > 25 || d < -25 {
		t.Fatalf("shard clocks diverged at stop: %v vs %v", engines[0].Now(), engines[1].Now())
	}
}

func TestShardSetDeadline(t *testing.T) {
	e0, e1 := NewEngine(), NewEngine()
	var last Time
	var tick func()
	tick = func() { last = e0.Now(); e0.Schedule(7, tick) }
	e0.Schedule(7, tick)
	ss := &ShardSet{Engines: []*Engine{e0, e1}, Window: 50, Merge: func(int, Time) {}}
	ss.Run(500, 0, nil, 1)
	if last > 500 {
		t.Fatalf("event executed past deadline: %v", last)
	}
	if last < 450 {
		t.Fatalf("stopped early: last event at %v, deadline 500", last)
	}
}
