package sim

import (
	"strings"
	"testing"
)

// buildWorkload schedules a deterministic mix of near (wheel), far
// (overflow), tagged, and cancelled events and returns the engine.
func buildWorkload(cancel bool) *Engine {
	e := NewEngine()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < 50 {
			e.Schedule(3*Microsecond, chain)
		}
	}
	e.Schedule(0, chain)
	e.At(2*Millisecond, func() {})       // overflow path
	e.AtTagged(5*Microsecond, 0, 7, func() {}) // explicit ordering tag
	ev := e.Schedule(90*Microsecond, func() {})
	if cancel {
		e.Cancel(ev)
	}
	return e
}

// TestSnapshotDeterministic pins the core checkpoint property: two engines
// driven through the identical schedule report identical snapshots at every
// step, and any extra event flips the queue digest.
func TestSnapshotDeterministic(t *testing.T) {
	a, b := buildWorkload(false), buildWorkload(false)
	for i := 0; i < 30; i++ {
		sa, sb := a.Snapshot(), b.Snapshot()
		if sa != sb {
			t.Fatalf("step %d: snapshots diverge:\n a=%+v\n b=%+v", i, sa, sb)
		}
		a.Step()
		b.Step()
	}
	b.Schedule(time50us, func() {})
	if a.Snapshot().QueueDigest == b.Snapshot().QueueDigest {
		t.Fatal("extra scheduled event did not change the queue digest")
	}
}

const time50us = 50 * Microsecond

// TestSnapshotExcludesCancelled: a cancelled event must not appear in the
// digest — cancellation is part of the deterministic schedule, so both the
// original and the replayed engine will have cancelled it, but the lazily
// deleted queue slot (an engine-internal artifact) must not leak in.
func TestSnapshotExcludesCancelled(t *testing.T) {
	a, b := buildWorkload(false), buildWorkload(true)
	// Same schedule except b cancelled one event: digests must differ
	// (the event is truly gone from b's future)...
	if a.Snapshot().QueueDigest == b.Snapshot().QueueDigest {
		t.Fatal("cancelled event still present in digest")
	}
	// ...and b must match an engine that never scheduled it. Pending
	// counts agree too: Snapshot counts only live events.
	c := buildWorkload(true)
	sb, sc := b.Snapshot(), c.Snapshot()
	if sb.QueueDigest != sc.QueueDigest || sb.Pending != sc.Pending {
		t.Fatalf("cancel-path snapshots diverge: %+v vs %+v", sb, sc)
	}
}

func TestRunUntilExecuted(t *testing.T) {
	e := buildWorkload(false)
	if !e.RunUntilExecuted(10) {
		t.Fatal("queue drained before 10 events")
	}
	if e.Executed != 10 {
		t.Fatalf("Executed = %d, want exactly 10", e.Executed)
	}
	if e.RunUntilExecuted(1 << 30) {
		t.Fatal("RunUntilExecuted reported success past queue drain")
	}
}

// TestVerifyRestoreReplay is the restore contract end to end: record a
// snapshot mid-run, rebuild the engine from scratch, replay to the same
// event count, and VerifyRestore must accept; one extra event must panic
// with the divergence diagnostic.
func TestVerifyRestoreReplay(t *testing.T) {
	orig := buildWorkload(true)
	orig.RunUntilExecuted(17)
	want := orig.Snapshot()

	replay := buildWorkload(true)
	replay.RunUntilExecuted(17)
	replay.VerifyRestore(want) // must not panic

	replay.Step()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("VerifyRestore accepted a diverged engine")
		}
		if !strings.Contains(r.(string), "diverged from checkpoint") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	replay.VerifyRestore(want)
}
