//go:build !simdebug

package sim

// Debug reports whether the simdebug build tag is active. Tests use it to
// assert poisoning semantics only in debug builds.
const Debug = false

// debugAccess, debugAlloc, and debugRelease are no-ops in release builds;
// they compile to nothing, so the pooling tripwires cost zero on the hot
// path. Build with `-tags simdebug` for the checked versions.
func (e *Event) debugAccess(string) {}

func (e *Engine) debugAlloc(*Event)   {}
func (e *Engine) debugRelease(*Event) {}

// debugQueueDump adds nothing to VerifyRestore diagnostics in release
// builds; `-tags simdebug` dumps the head of the live event queue.
func (e *Engine) debugQueueDump(int) string { return "" }
