//go:build simdebug

package sim

import (
	"fmt"
	"sort"
)

// Debug reports whether the simdebug build tag is active.
const Debug = true

// poisonTime is written into recycled events so any code that reads a stale
// handle's time sees an absurd value even if it bypasses the panic below.
const poisonTime Time = -0x5151515151515151

// debugAccess panics when a public Event method touches a handle that the
// engine has recycled into its free list — the use-after-free window that
// silently corrupts determinism in release builds if a caller violates the
// handle-lifetime contract. The generation counter in the message tells you
// how many times the object has been reused.
func (e *Event) debugAccess(method string) {
	if e.pooled {
		panic(fmt.Sprintf("sim: %s on recycled event handle (gen %d, poisoned at=%d): handle retained after the event fired or was reclaimed",
			method, e.gen, e.at))
	}
}

// debugAlloc validates an event coming off the free list.
func (e *Engine) debugAlloc(ev *Event) {
	if !ev.pooled {
		panic(fmt.Sprintf("sim: free list returned a live event (gen %d)", ev.gen))
	}
	if ev.at != poisonTime {
		panic(fmt.Sprintf("sim: free-list event not poisoned (at=%d, gen %d): double release or external write", ev.at, ev.gen))
	}
}

// debugRelease poisons an event as it enters the free list.
func (e *Engine) debugRelease(ev *Event) {
	ev.at = poisonTime
}

// debugQueueDump renders the first n live pending-event keys in pop order,
// for the VerifyRestore divergence diagnostic: comparing the recorded and
// restored heads shows exactly which scheduled instant first went wrong.
func (e *Engine) debugQueueDump(n int) string {
	live := e.liveEntries(nil)
	sort.Slice(live, func(i, j int) bool { return live[i].less(live[j]) })
	if len(live) > n {
		live = live[:n]
	}
	s := "\n  restored queue head:"
	for _, en := range live {
		s += fmt.Sprintf("\n    at=%d ins=%d tag=%#x ctr=%d",
			en.at, en.ins, en.seq>>seqCounterBits, en.seq&(1<<seqCounterBits-1))
	}
	return s
}
