// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and executes scheduled
// events in (time, insertion-order) order, so two runs with the same seed and
// the same schedule of calls produce bit-identical results. All of the fabric,
// transport, and workload packages in this repository are driven by a single
// Engine instance per simulation run.
//
// # Hot-path design
//
// Schedule/Step are the innermost loop of every experiment, so the engine
// avoids allocation, interface dispatch, and pointer chasing there. Pending
// events live in a calendar queue: a timing wheel of power-of-two-width time
// buckets for the near future, backed by a single overflow heap for events
// beyond the wheel's horizon (retransmission timers, teardown). Fabric
// events — switch pipeline delays, serialization, host processing — are all
// microsecond-scale, so the hot path degenerates to "append to a nearly
// empty bucket, pop it a few ticks later": O(1) amortized, instead of the
// O(log n) sift of a global heap whose comparisons dominated profiles.
//
// Each bucket (and the overflow) is itself a tiny 4-ary min-heap of entries
// carrying the (time, insertion-order) sort key inline next to the *Event
// pointer, so ordering within a tick never dereferences the events
// themselves, and a pathological workload that piles thousands of events
// into one bucket degrades to exactly the global-heap behavior rather than
// anything quadratic. Fired or reclaimed-cancelled events are recycled
// through a per-engine free list, making steady-state scheduling
// allocation-free.
//
// # Event handle lifetime
//
// Because fired events are recycled, an *Event handle is only meaningful
// until its callback has run (or, for cancelled events, until the engine
// reclaims them). Holding a handle past that point is safe — Fired,
// Cancelled, and Cancel never panic or corrupt the engine, and a handle in
// the free list still reports its final Fired/Cancelled state — but once the
// engine reuses the object for a new event the handle observes the new
// incarnation. Callers that retain handles (e.g. retransmission timers) must
// therefore drop them when the callback runs, as every transport in this
// repository does. Build with `-tags simdebug` to turn any access to a
// recycled handle into a panic with generation diagnostics.
package sim

import (
	"fmt"
	"math/bits"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Common durations in nanoseconds, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled event is a no-op.
// See the package comment for the handle-lifetime contract under event
// recycling.
type Event struct {
	at     Time
	fn     func()
	fired  bool
	cancel bool
	pooled bool   // in the engine's free list awaiting reuse
	gen    uint32 // incremented each time the object is recycled (simdebug)
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { e.debugAccess("Cancelled"); return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { e.debugAccess("Fired"); return e.fired }

// Time returns the virtual time at which the event fires or fired.
func (e *Event) Time() Time { e.debugAccess("Time"); return e.at }

// heapEntry is one pending-event slot: the (at, ins, seq) sort key stored
// inline so ordering comparisons touch only the containing array, plus the
// event it schedules.
//
// `ins` is the virtual instant the event was inserted at. For events
// scheduled through At/Schedule, seq order already implies ins order (the
// clock never moves backwards between insertions), so the middle field
// changes nothing for them; it exists so AtTagged can file an event as if
// it had been inserted at an earlier instant, which is how the sharded
// runtime makes deferred cross-shard deliveries land in the same relative
// position they would have occupied serially.
//
// `seq` packs a 16-bit ordering tag above a 48-bit insertion counter (see
// AtTagged), so the effective total order is (at, ins, tag, counter).
// Untagged events carry tag 0xFFFF and therefore keep today's pure
// insertion order among themselves while sorting after any tagged event
// that shares their (at, ins).
type heapEntry struct {
	at  Time
	ins Time
	seq uint64
	ev  *Event
}

func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.ins != b.ins {
		return a.ins < b.ins
	}
	return a.seq < b.seq
}

// Timing-wheel geometry. A bucket spans 2^wheelLogW ns (~2 µs), and the
// wheel covers wheelBuckets of them (~524 µs) ahead of the cursor — wide
// enough that switch pipeline (1 µs), serialization (µs-scale), host
// processing (20 µs), and paper-scale RTTs (~90 µs) all schedule within the
// wheel, while RTO and teardown timers (≥10 ms) take the overflow path.
const (
	wheelLogW    = 11
	wheelBuckets = 256
	wheelMask    = wheelBuckets - 1
)

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now Time
	seq uint64

	// The calendar queue. curTick is the wheel cursor: no pending wheel
	// entry has a tick (at >> wheelLogW) below it. An entry whose tick is
	// within wheelBuckets of the cursor lives in buckets[tick & wheelMask];
	// anything further out waits in overflow (a 4-ary min-heap) and is
	// migrated onto the wheel when the cursor approaches (see findMin).
	curTick  int64
	nWheel   int // entries across all buckets, including cancelled ones
	buckets  [wheelBuckets][]heapEntry
	occ      [wheelBuckets / 64]uint64 // bit b set <=> buckets[b] nonempty
	overflow []heapEntry

	free    []*Event // recycled Event objects
	nCancel int      // cancelled events still occupying queue slots
	stopped bool
	// Executed counts events that have run, for diagnostics and tests.
	Executed uint64
}

// compactMin is the pending-event count below which lazy-deleted (cancelled)
// events are never compacted — popping drains small queues quickly anyway.
const compactMin = 64

// bucketCap is each wheel bucket's pre-allocated capacity, sized to hold a
// busy tick's event burst (TCP windows serialize ~2 packets per tick but
// cluster several fabric steps each). The cursor rotates through all buckets
// every lap, so every touched bucket's backing array is long-lived: carving
// them all from one arena up front (256 × 32 × 24 B ≈ 200 KB per engine)
// makes steady-state scheduling allocation-free instead of re-growing cold
// buckets from nil each lap. A bucket that outgrows its slice falls back to
// append's normal reallocation and keeps the larger array.
const bucketCap = 32

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{overflow: make([]heapEntry, 0, 64)}
	arena := make([]heapEntry, wheelBuckets*bucketCap)
	for i := range e.buckets {
		e.buckets[i] = arena[i*bucketCap : i*bucketCap : (i+1)*bucketCap][:0]
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (>= 0) of virtual time.
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.AtTagged(t, e.now, TagNone, fn)
}

// TagNone is the ordering tag of events scheduled through At/Schedule: it
// sorts after every explicit tag, and events carrying it order among
// themselves purely by insertion sequence.
const TagNone uint16 = 0xFFFF

// seqCounterBits is how much of heapEntry.seq holds the insertion counter;
// the 16 bits above it hold the ordering tag.
const seqCounterBits = 48

// AtTagged runs fn at absolute virtual time t, ordered against other events
// due at t by (stamp, tag, insertion sequence): stamp (<= t) is the virtual
// instant the event should be treated as inserted at, and tag is a caller-
// chosen intrinsic priority within that instant. At(t, fn) is
// AtTagged(t, Now(), TagNone, fn).
//
// The tagged form exists for conservative-parallel execution. Events that
// can cross shard boundaries (fabric packet hops) are keyed by stable
// identity — arrival instant, receiving device, input port — instead of by
// the engine-local insertion counter, so their position among same-instant
// rivals is a property of the simulated network, not of which shard
// inserted them first. Serial runs use the identical keys and therefore
// execute in the identical order, which is what makes sharded execution
// bit-identical to serial.
func (e *Engine) AtTagged(t, stamp Time, tag uint16, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule into the past: %d < %d", t, e.now))
	}
	if stamp > t {
		panic(fmt.Sprintf("sim: insertion stamp after due time: %d > %d", stamp, t))
	}
	ev := e.alloc()
	ev.at = t
	ev.fn = fn
	e.push(heapEntry{at: t, ins: stamp, seq: uint64(tag)<<seqCounterBits | e.seq, ev: ev})
	e.seq++
	return ev
}

// push files an entry into its wheel bucket, or into the overflow heap when
// its tick lies beyond the wheel horizon. The cursor moves back when the new
// entry precedes it (possible after Run jumped the clock past pending
// events), preserving the invariant that no wheel entry's tick is below
// curTick.
func (e *Engine) push(en heapEntry) {
	tick := int64(en.at) >> wheelLogW
	if tick < e.curTick {
		e.curTick = tick
	} else if e.nWheel == 0 && len(e.overflow) == 0 {
		// Empty engine: snap the cursor forward so an idle gap does not
		// banish near-future work to the overflow heap.
		e.curTick = tick
	}
	if tick-e.curTick < wheelBuckets {
		i := tick & wheelMask
		entryHeapPush(&e.buckets[i], en)
		e.occ[i>>6] |= 1 << uint(i&63)
		e.nWheel++
	} else {
		entryHeapPush(&e.overflow, en)
	}
}

// nextOcc returns the smallest offset k in [from, wheelBuckets) such that
// bucket (start+k)&wheelMask is nonempty, or -1. The occupancy bitmap makes
// the circular scan O(words) instead of O(buckets) — the difference between
// packet workloads (every bucket busy, scan finds a hit immediately) and
// fluid workloads (a handful of events spread over milliseconds, where the
// old per-bucket lap scan dominated profiles).
func (e *Engine) nextOcc(start, from int64) int64 {
	for from < wheelBuckets {
		j := (start + from) & wheelMask
		w := e.occ[j>>6] >> uint(j&63)
		if w != 0 {
			if k := from + int64(bits.TrailingZeros64(w)); k < wheelBuckets {
				return k
			}
			return -1
		}
		from += 64 - (j & 63) // next bitmap word boundary
	}
	return -1
}

// findMin locates the earliest pending entry and returns the bucket whose
// root it is, positioning the cursor on that bucket's tick. It returns nil
// when nothing is pending. Overflow entries whose tick has come within the
// wheel window are migrated onto the wheel first, so the earliest entry is
// always a bucket root and same-time entries always meet in one bucket,
// where their mini-heap orders them by insertion seq.
func (e *Engine) findMin() *[]heapEntry {
	for {
		if len(e.overflow) > 0 {
			rt := int64(e.overflow[0].at) >> wheelLogW
			if rt < e.curTick || e.nWheel == 0 {
				e.curTick = rt
			}
			for rt-e.curTick < wheelBuckets {
				i := rt & wheelMask
				entryHeapPush(&e.buckets[i], entryHeapPop(&e.overflow))
				e.occ[i>>6] |= 1 << uint(i&63)
				e.nWheel++
				if len(e.overflow) == 0 {
					break
				}
				rt = int64(e.overflow[0].at) >> wheelLogW
			}
		}
		if e.nWheel == 0 {
			return nil
		}
		// Scan one lap from the cursor for a bucket whose root belongs to
		// the scanned position, visiting only occupied buckets via the
		// bitmap. A nonempty bucket whose root tick differs holds only later
		// laps' entries; anything in this lap would sort before such a root,
		// so skipping it cannot lose order.
		start := e.curTick & wheelMask
		for k := e.nextOcc(start, 0); k >= 0; k = e.nextOcc(start, k+1) {
			pos := e.curTick + k
			b := &e.buckets[pos&wheelMask]
			if int64((*b)[0].at)>>wheelLogW == pos {
				e.curTick = pos
				return b
			}
		}
		// No root within one lap: every wheel entry sits beyond the horizon
		// (possible after the cursor moved back). Jump to the earliest root
		// tick — distinct buckets always hold distinct ticks, so comparing
		// ticks alone is unambiguous — unless the overflow root now ties or
		// precedes it, in which case the jump lets the migration loop pull
		// it in first; then rescan.
		best := int64(-1)
		for w := range e.occ {
			for m := e.occ[w]; m != 0; m &= m - 1 {
				i := w<<6 + bits.TrailingZeros64(m)
				if t := int64(e.buckets[i][0].at) >> wheelLogW; best < 0 || t < best {
					best = t
				}
			}
		}
		if len(e.overflow) > 0 {
			if t := int64(e.overflow[0].at) >> wheelLogW; t <= best {
				best = t
			}
		}
		e.curTick = best
	}
}

// popBucket removes and returns b's root entry. b must be the cursor's wheel
// bucket — the one minBucket/findMin returned, with curTick positioned on it
// (findMin never returns the overflow heap: due overflow entries are migrated
// onto the wheel before being popped) — so emptying it clears its bitmap bit.
func (e *Engine) popBucket(b *[]heapEntry) heapEntry {
	e.nWheel--
	en := entryHeapPop(b)
	if len(*b) == 0 {
		i := e.curTick & wheelMask
		e.occ[i>>6] &^= 1 << uint(i&63)
	}
	return en
}

// alloc takes an Event from the free list, or heap-allocates the first time.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.debugAlloc(ev)
		ev.fired = false
		ev.cancel = false
		ev.pooled = false
		return ev
	}
	return &Event{}
}

// release returns a dead event (fired, or cancelled and reclaimed) to the
// free list. The fired/cancel flags are left intact so a stale handle keeps
// reporting its final state until the object is reused.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.pooled = true
	ev.gen++
	e.debugRelease(ev)
	e.free = append(e.free, ev)
}

// Cancel prevents a pending event from firing.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.debugAccess("Cancel")
	if ev.fired || ev.cancel {
		return
	}
	ev.cancel = true
	// The event stays in its queue slot and is skipped when popped: Cancel
	// is O(1). When cancelled events outnumber live ones the queue is
	// compacted in one pass, so cancel-heavy workloads (retransmission
	// timers are re-armed on every ACK) cannot grow it without bound.
	e.nCancel++
	if p := e.Pending(); e.nCancel*2 > p && p >= compactMin {
		e.compact()
	}
}

// compact removes every cancelled event from the wheel and overflow in one
// pass and re-establishes each mini-heap's property. Relative order of live
// events is irrelevant for correctness: the (at, seq) key is a total order,
// so the rebuilt queue pops in exactly the same sequence.
func (e *Engine) compact() {
	e.overflow = e.compactHeap(e.overflow)
	n := 0
	for i := range e.buckets {
		if len(e.buckets[i]) > 0 {
			e.buckets[i] = e.compactHeap(e.buckets[i])
			n += len(e.buckets[i])
		}
		if len(e.buckets[i]) == 0 {
			e.occ[i>>6] &^= 1 << uint(i&63)
		}
	}
	e.nWheel = n
	e.nCancel = 0
}

// compactHeap filters cancelled entries out of one mini-heap in place,
// releasing their events, and re-heapifies the survivors.
func (e *Engine) compactHeap(h []heapEntry) []heapEntry {
	keep := h[:0]
	for _, en := range h {
		if en.ev.cancel {
			e.release(en.ev)
		} else {
			keep = append(keep, en)
		}
	}
	for i := len(keep); i < len(h); i++ {
		h[i] = heapEntry{}
	}
	for i := (len(keep) - 2) >> 2; i >= 0; i-- {
		entrySiftDown(keep, i)
	}
	return keep
}

// minBucket is findMin with its fast path peeled for inlining into the
// Run/Step loops: when the cursor bucket's root is due at the cursor tick
// and the overflow heap holds nothing inside the wheel window, that root is
// the global minimum by the cursor invariant — no scan needed.
func (e *Engine) minBucket() *[]heapEntry {
	b := &e.buckets[e.curTick&wheelMask]
	if len(*b) > 0 && int64((*b)[0].at)>>wheelLogW == e.curTick &&
		(len(e.overflow) == 0 || int64(e.overflow[0].at)>>wheelLogW-e.curTick >= wheelBuckets) {
		return b
	}
	return e.findMin()
}

// Step executes the single next event. It returns false when no runnable
// events remain.
func (e *Engine) Step() bool {
	for {
		b := e.minBucket()
		if b == nil {
			return false
		}
		en := e.popBucket(b)
		ev := en.ev
		if ev.cancel {
			e.nCancel--
			e.release(ev)
			continue
		}
		e.now = en.at
		ev.fired = true
		fn := ev.fn
		fn()
		e.Executed++
		e.release(ev)
		return true
	}
}

// Run executes events until the queue is empty or the virtual clock would
// pass `until`. The clock is left at min(until, time of last event). Events
// scheduled exactly at `until` are executed.
//
// The body is Step with the root peeked before popping (findMin leaves the
// cursor on the due bucket, so the peek is one bucket access), since this
// loop moves every packet of every experiment.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		b := e.minBucket()
		if b == nil {
			break
		}
		ev := (*b)[0].ev
		if ev.cancel {
			e.popBucket(b)
			e.nCancel--
			e.release(ev)
			continue
		}
		if (*b)[0].at > until {
			break
		}
		e.now = (*b)[0].at
		e.popBucket(b)
		ev.fired = true
		fn := ev.fn
		fn()
		e.Executed++
		e.release(ev)
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes every pending event regardless of time.
func (e *Engine) RunUntilIdle() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run/RunUntilIdle call return after the event that is
// currently executing.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return e.nWheel + len(e.overflow) }

// NextAt peeks at the due time of the next runnable event without executing
// it or advancing the clock. Cancelled roots are popped and recycled on the
// way — exactly the events Run would discard next — so the peek stays O(1)
// amortized. The second result is false when no runnable event remains.
func (e *Engine) NextAt() (Time, bool) {
	for {
		b := e.minBucket()
		if b == nil {
			return 0, false
		}
		ev := (*b)[0].ev
		if ev.cancel {
			e.popBucket(b)
			e.nCancel--
			e.release(ev)
			continue
		}
		return (*b)[0].at, true
	}
}

// --- 4-ary min-heap over []heapEntry, ordered by (at, ins, seq) ---
//
// Shared by the overflow heap and every wheel bucket. The sort key is
// duplicated into each entry so sifting never dereferences an *Event: all
// comparisons and moves stay within the containing backing array (four
// words per entry, two entries per 64-byte cache line).

func entryHeapPush(hp *[]heapEntry, en heapEntry) {
	h := append(*hp, en)
	*hp = h
	// Sift up without writing en into each visited slot.
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !en.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = en
}

func entryHeapPop(hp *[]heapEntry) heapEntry {
	h := *hp
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = heapEntry{} // drop the *Event reference for GC
	h = h[:n]
	*hp = h
	if n > 0 {
		h[0] = last
		entrySiftDown(h, 0)
	}
	return root
}

func entrySiftDown(h []heapEntry, i int) {
	n := len(h)
	en := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Minimum of up to four children. The running minimum's index is
		// tracked so the scan compares in place and never re-copies entries.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if h[k].less(h[m]) {
				m = k
			}
		}
		if en.less(h[m]) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = en
}
