// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and executes scheduled
// events in (time, insertion-order) order, so two runs with the same seed and
// the same schedule of calls produce bit-identical results. All of the fabric,
// transport, and workload packages in this repository are driven by a single
// Engine instance per simulation run.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Common durations in nanoseconds, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled event is a no-op.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 when not in the heap
	fired  bool
	cancel bool
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// Time returns the virtual time at which the event fires or fired.
func (e *Event) Time() Time { return e.at }

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	stopped bool
	// Executed counts events that have run, for diagnostics and tests.
	Executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{pq: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (>= 0) of virtual time.
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule into the past: %d < %d", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// Cancel prevents a pending event from firing.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fired || ev.cancel {
		return
	}
	ev.cancel = true
	// The event stays in the heap and is skipped when popped. This keeps
	// Cancel O(1); cancelled events are reclaimed lazily.
}

// Step executes the single next event. It returns false when no runnable
// events remain.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		ev.fired = true
		ev.fn()
		e.Executed++
		return true
	}
	return false
}

// Run executes events until the queue is empty or the virtual clock would
// pass `until`. The clock is left at min(until, time of last event). Events
// scheduled exactly at `until` are executed.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil {
			break
		}
		if ev.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes every pending event regardless of time.
func (e *Engine) RunUntilIdle() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run/RunUntilIdle call return after the event that is
// currently executing.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.pq) }

func (e *Engine) peek() *Event {
	for len(e.pq) > 0 {
		if e.pq[0].cancel {
			heap.Pop(&e.pq)
			continue
		}
		return e.pq[0]
	}
	return nil
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
