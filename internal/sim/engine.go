// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and executes scheduled
// events in (time, insertion-order) order, so two runs with the same seed and
// the same schedule of calls produce bit-identical results. All of the fabric,
// transport, and workload packages in this repository are driven by a single
// Engine instance per simulation run.
//
// # Hot-path design
//
// Schedule/Step are the innermost loop of every experiment, so the engine
// avoids both allocation and interface dispatch there: the priority queue is
// a monomorphic 4-ary index min-heap over *Event (shallower than a binary
// heap, with all four children on one cache line of pointers, and no
// container/heap `any` boxing), and fired or reclaimed-cancelled events are
// recycled through a per-engine free list, making steady-state scheduling
// allocation-free.
//
// # Event handle lifetime
//
// Because fired events are recycled, an *Event handle is only meaningful
// until its callback has run (or, for cancelled events, until the engine
// reclaims them). Holding a handle past that point is safe — Fired,
// Cancelled, and Cancel never panic or corrupt the engine, and a handle in
// the free list still reports its final Fired/Cancelled state — but once the
// engine reuses the object for a new event the handle observes the new
// incarnation. Callers that retain handles (e.g. retransmission timers) must
// therefore drop them when the callback runs, as every transport in this
// repository does. Build with `-tags simdebug` to turn any access to a
// recycled handle into a panic with generation diagnostics.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Common durations in nanoseconds, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled event is a no-op.
// See the package comment for the handle-lifetime contract under event
// recycling.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int32 // heap index, -1 when not in the heap
	fired  bool
	cancel bool
	pooled bool   // in the engine's free list awaiting reuse
	gen    uint32 // incremented each time the object is recycled (simdebug)
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { e.debugAccess("Cancelled"); return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { e.debugAccess("Fired"); return e.fired }

// Time returns the virtual time at which the event fires or fired.
func (e *Event) Time() Time { e.debugAccess("Time"); return e.at }

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    []*Event // 4-ary min-heap ordered by (at, seq)
	free    []*Event // recycled Event objects
	nCancel int      // cancelled events still occupying heap slots
	stopped bool
	// Executed counts events that have run, for diagnostics and tests.
	Executed uint64
}

// compactMin is the heap size below which lazy-deleted (cancelled) events
// are never compacted — popping drains small heaps quickly anyway.
const compactMin = 64

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{heap: make([]*Event, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (>= 0) of virtual time.
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule into the past: %d < %d", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	return ev
}

// alloc takes an Event from the free list, or heap-allocates the first time.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.debugAlloc(ev)
		ev.fired = false
		ev.cancel = false
		ev.pooled = false
		return ev
	}
	return &Event{}
}

// release returns a dead event (fired, or cancelled and reclaimed) to the
// free list. The fired/cancel flags are left intact so a stale handle keeps
// reporting its final state until the object is reused.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.pooled = true
	ev.gen++
	e.debugRelease(ev)
	e.free = append(e.free, ev)
}

// Cancel prevents a pending event from firing.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.debugAccess("Cancel")
	if ev.fired || ev.cancel {
		return
	}
	ev.cancel = true
	// The event stays in the heap and is skipped when popped: Cancel is
	// O(1). When cancelled events outnumber live ones the heap is compacted
	// in one pass, so cancel-heavy workloads (retransmission timers are
	// re-armed on every ACK) cannot grow the heap without bound.
	e.nCancel++
	if e.nCancel*2 > len(e.heap) && len(e.heap) >= compactMin {
		e.compact()
	}
}

// compact removes every cancelled event from the heap in one pass and
// re-establishes the heap property. Relative order of live events is
// irrelevant for correctness: the (at, seq) key is a total order, so the
// rebuilt heap pops in exactly the same sequence.
func (e *Engine) compact() {
	h := e.heap
	keep := h[:0]
	for _, ev := range h {
		if ev.cancel {
			ev.index = -1
			e.release(ev)
		} else {
			ev.index = int32(len(keep))
			keep = append(keep, ev)
		}
	}
	for i := len(keep); i < len(h); i++ {
		h[i] = nil
	}
	e.heap = keep
	e.nCancel = 0
	for i := (len(keep) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Step executes the single next event. It returns false when no runnable
// events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.popRoot()
		if ev.cancel {
			e.nCancel--
			e.release(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		fn := ev.fn
		fn()
		e.Executed++
		e.release(ev)
		return true
	}
	return false
}

// Run executes events until the queue is empty or the virtual clock would
// pass `until`. The clock is left at min(until, time of last event). Events
// scheduled exactly at `until` are executed.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil {
			break
		}
		if ev.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes every pending event regardless of time.
func (e *Engine) RunUntilIdle() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run/RunUntilIdle call return after the event that is
// currently executing.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.heap) }

func (e *Engine) peek() *Event {
	for len(e.heap) > 0 {
		if top := e.heap[0]; !top.cancel {
			return top
		}
		ev := e.popRoot()
		e.nCancel--
		e.release(ev)
	}
	return nil
}

// --- 4-ary index min-heap over *Event, ordered by (at, seq) ---

func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	i := len(e.heap)
	e.heap = append(e.heap, ev)
	// Sift up without writing ev into each visited slot.
	for i > 0 {
		p := (i - 1) >> 2
		par := e.heap[p]
		if !less(ev, par) {
			break
		}
		e.heap[i] = par
		par.index = int32(i)
		i = p
	}
	e.heap[i] = ev
	ev.index = int32(i)
}

func (e *Engine) popRoot() *Event {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	root.index = -1
	if n > 0 {
		e.heap[0] = last
		last.index = 0
		e.siftDown(0)
	}
	return root
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Minimum of up to four children.
		m, mc := c, h[c]
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if less(h[k], mc) {
				m, mc = k, h[k]
			}
		}
		if !less(mc, ev) {
			break
		}
		h[i] = mc
		mc.index = int32(i)
		i = m
	}
	h[i] = ev
	ev.index = int32(i)
}
