package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.Schedule(30, func() { got = append(got, 3) })
	eng.Schedule(10, func() { got = append(got, 1) })
	eng.Schedule(20, func() { got = append(got, 2) })
	eng.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if eng.Now() != 30 {
		t.Fatalf("clock = %d, want 30", eng.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		eng.Schedule(5, func() { got = append(got, i) })
	}
	eng.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of insertion order at %d: %v", i, v)
		}
	}
}

func TestRunUntilBoundary(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.At(10, func() { fired++ })
	eng.At(11, func() { fired++ })
	eng.Run(10)
	if fired != 1 {
		t.Fatalf("events at exactly `until` must fire: fired = %d", fired)
	}
	if eng.Now() != 10 {
		t.Fatalf("clock = %d", eng.Now())
	}
	eng.Run(20)
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
	// Clock advances to `until` even with no events.
	if eng.Now() != 20 {
		t.Fatalf("clock = %d, want 20", eng.Now())
	}
}

func TestCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.Schedule(10, func() { fired = true })
	eng.Cancel(ev)
	if !ev.Cancelled() || ev.Fired() {
		t.Fatalf("event state wrong: %+v", ev)
	}
	// Cancelling again (and cancelling nil) is a no-op.
	eng.Cancel(ev)
	eng.Cancel(nil)
	eng.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !Debug {
		// After the drain the object sits in the free list; a stale handle
		// keeps reporting its final state in release builds (under simdebug
		// any access panics — covered in pool_test.go).
		if !ev.Cancelled() || ev.Fired() {
			t.Fatalf("stale handle state wrong: %+v", ev)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	eng := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			eng.Schedule(1, rec)
		}
	}
	eng.Schedule(0, rec)
	eng.RunUntilIdle()
	if depth != 50 {
		t.Fatalf("depth = %d", depth)
	}
	if eng.Now() != 49 {
		t.Fatalf("clock = %d", eng.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(100, func() {})
	eng.Run(100)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	eng.At(50, func() {})
}

func TestStop(t *testing.T) {
	eng := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		eng.Schedule(Time(i), func() {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	eng.RunUntilIdle()
	if count != 3 {
		t.Fatalf("Stop did not halt the loop: count = %d", count)
	}
}

// Property: any batch of events executes in nondecreasing time order.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		var times []Time
		for _, d := range delays {
			eng.Schedule(Time(d), func() { times = append(times, eng.Now()) })
		}
		eng.RunUntilIdle()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatal("time constants wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion wrong")
	}
	if (1500 * Microsecond).String() != "1.5ms" {
		t.Fatalf("String = %q", (1500 * Microsecond).String())
	}
}

func TestRNGForkDeterminism(t *testing.T) {
	a := NewRNG(42).Fork("workload")
	b := NewRNG(42).Fork("workload")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) fork diverged")
		}
	}
	c := NewRNG(42).Fork("other")
	d := NewRNG(42).Fork("workload")
	same := true
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different fork names produced identical streams")
	}
}

func TestIntnExcept(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 10_000; i++ {
		v := rng.IntnExcept(8, 3)
		if v == 3 || v < 0 || v >= 8 {
			t.Fatalf("IntnExcept returned %d", v)
		}
	}
	// Out-of-range except degrades to plain Intn.
	if v := rng.IntnExcept(4, 9); v < 0 || v >= 4 {
		t.Fatalf("IntnExcept with oob except returned %d", v)
	}
}

func TestExp(t *testing.T) {
	rng := NewRNG(2)
	var sum float64
	const n = 50_000
	for i := 0; i < n; i++ {
		d := rng.Exp(1000)
		if d < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += float64(d)
	}
	mean := sum / n
	if mean < 950 || mean > 1050 {
		t.Fatalf("exponential mean = %v, want ~1000", mean)
	}
	if rng.Exp(0) != 0 {
		t.Fatal("Exp(0) should be 0")
	}
}

func TestCancelledEventsReclaimed(t *testing.T) {
	// Cancelled events are skipped (not executed) and the heap drains.
	eng := NewEngine()
	var evs []*Event
	for i := 0; i < 1000; i++ {
		evs = append(evs, eng.Schedule(Time(i), func() { t.Fatal("cancelled event ran") }))
	}
	for _, ev := range evs {
		eng.Cancel(ev)
	}
	eng.Run(2000)
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after draining cancelled events", eng.Pending())
	}
	if eng.Executed != 0 {
		t.Fatalf("executed = %d, want 0", eng.Executed)
	}
}

func TestEventAccessors(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.Schedule(42, func() { fired = true })
	if ev.Time() != 42 || ev.Fired() || ev.Cancelled() {
		t.Fatalf("fresh event state wrong: %+v", ev)
	}
	eng.RunUntilIdle()
	if !fired {
		t.Fatal("event did not run")
	}
	if !Debug {
		// The recycled handle still reports its final state until reuse.
		if !ev.Fired() {
			t.Fatal("event not marked fired")
		}
	}
}
