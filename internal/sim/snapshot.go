package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// EngineState is a compact, serializable fingerprint of an engine at a safe
// point (between events). It is the unit of checkpoint/resume: pending
// events are closures over live simulation objects and have no direct
// serialized form, but every run in this repository is a pure function of
// its configuration and seed, so a checkpoint records *where* the engine
// was — virtual time, the insertion-sequence counter, the executed-event
// count — plus an order-exact digest of every pending event's
// (at, ins, seq) sort key. A restore re-executes the run deterministically
// and calls VerifyRestore as it passes the recorded state; because the
// queue keys are downstream of every RNG draw and every scheduling
// decision made so far, a single diverging draw or reordered event flips
// the digest and trips verification instead of silently corrupting
// results.
//
// Free-list contents, cancelled-event bookkeeping (nCancel), and wheel
// cursor position are deliberately excluded: they are engine-internal
// caches that regenerate and never influence the pop order of live events.
type EngineState struct {
	// Now is the engine clock at the snapshot instant.
	Now Time `json:"now"`
	// Seq is the insertion-sequence counter (total events ever scheduled).
	Seq uint64 `json:"seq"`
	// Executed counts events whose callbacks have run.
	Executed uint64 `json:"executed"`
	// Pending counts live (non-cancelled) scheduled events.
	Pending int `json:"pending"`
	// QueueDigest hashes every live pending event's (at, ins, seq) key in
	// pop order, fingerprinting the entire future event schedule.
	QueueDigest uint64 `json:"queue_digest"`
}

// Snapshot captures the engine's progress state. It must be taken at a safe
// point — between events, never from inside a callback — which every caller
// in this repository guarantees by snapshotting only at drain-chunk or
// shard-window boundaries where the engine is quiescent.
func (e *Engine) Snapshot() EngineState {
	live := e.liveEntries(nil)
	sort.Slice(live, func(i, j int) bool { return live[i].less(live[j]) })
	h := fnv.New64a()
	var b [24]byte
	for _, en := range live {
		binary.LittleEndian.PutUint64(b[0:], uint64(en.at))
		binary.LittleEndian.PutUint64(b[8:], uint64(en.ins))
		binary.LittleEndian.PutUint64(b[16:], en.seq)
		h.Write(b[:])
	}
	return EngineState{
		Now:         e.now,
		Seq:         e.seq,
		Executed:    e.Executed,
		Pending:     len(live),
		QueueDigest: h.Sum64(),
	}
}

// liveEntries appends every non-cancelled pending entry to dst.
func (e *Engine) liveEntries(dst []heapEntry) []heapEntry {
	for i := range e.buckets {
		for _, en := range e.buckets[i] {
			if !en.ev.cancel {
				dst = append(dst, en)
			}
		}
	}
	for _, en := range e.overflow {
		if !en.ev.cancel {
			dst = append(dst, en)
		}
	}
	return dst
}

// RunUntilExecuted steps the engine until n events (total, counted from the
// engine's creation) have executed. It reports false when the queue drains
// first. Checkpoint tooling uses it to park a replayed engine at an exact
// event count, independent of how virtual time maps onto events.
func (e *Engine) RunUntilExecuted(n uint64) bool {
	for e.Executed < n {
		if !e.Step() {
			return false
		}
	}
	return true
}

// VerifyRestore cross-checks a replayed engine against the state recorded
// at the original checkpoint instant and panics with a diagnostic on any
// divergence. A resumed run that is not byte-identical to the uninterrupted
// one must fail loudly at the earliest detectable point — continuing would
// publish silently wrong results — so the panic is unconditional, not
// simdebug-gated; the simdebug build additionally dumps the head of the
// live event queue for forensics.
func (e *Engine) VerifyRestore(want EngineState) {
	got := e.Snapshot()
	if got == want {
		return
	}
	panic(fmt.Sprintf(
		"sim: restored engine diverged from checkpoint\n  recorded: %+v\n  restored: %+v%s",
		want, got, e.debugQueueDump(16)))
}
