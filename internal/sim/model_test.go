package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

// This file model-checks the production engine (4-ary index heap, lazy
// cancellation, free-list recycling) against an obviously-correct reference:
// an unsorted slice scanned for the (time, seq) minimum, with Cancel as
// immediate removal. Random operation sequences — Schedule, Cancel, Run,
// Step — must produce identical firing order, identical clocks, and
// identical executed counts. testing/quick drives short random sequences on
// every `go test`; FuzzEngine (fuzz_test.go) reuses the same interpreter for
// coverage-guided exploration with a checked-in corpus.

// refEvent is one pending event in the reference model.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

// refModel is the executable specification: (time, insertion-order) total
// order, cancel-by-removal, clock advanced to each fired event.
type refModel struct {
	now   Time
	seq   uint64
	evs   []refEvent
	order []int
}

func (m *refModel) schedule(d Time, id int) {
	m.evs = append(m.evs, refEvent{at: m.now + d, seq: m.seq, id: id})
	m.seq++
}

func (m *refModel) cancel(id int) {
	for i := range m.evs {
		if m.evs[i].id == id {
			m.evs = append(m.evs[:i], m.evs[i+1:]...)
			return
		}
	}
}

func (m *refModel) min() int {
	best := 0
	for i := 1; i < len(m.evs); i++ {
		e, b := m.evs[i], m.evs[best]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			best = i
		}
	}
	return best
}

func (m *refModel) step() bool {
	if len(m.evs) == 0 {
		return false
	}
	i := m.min()
	ev := m.evs[i]
	m.evs = append(m.evs[:i], m.evs[i+1:]...)
	m.now = ev.at
	m.order = append(m.order, ev.id)
	return true
}

func (m *refModel) run(until Time) {
	for len(m.evs) > 0 && m.evs[m.min()].at <= until {
		m.step()
	}
	if m.now < until {
		m.now = until
	}
}

// runEngineModel interprets data as an operation sequence over both the real
// engine and the reference model and returns an error on any divergence.
// The interpreter respects the handle-lifetime contract: a handle is only
// cancelled while its callback has not run (the `done` flag is set by the
// callback itself, exactly how transports drop their timer handles).
func runEngineModel(data []byte) error {
	eng := NewEngine()
	ref := &refModel{}
	var got []int

	type handle struct {
		ev   *Event
		id   int
		done bool
	}
	var live []*handle
	nextID := 0

	i := 0
	nextByte := func() (byte, bool) {
		if i >= len(data) {
			return 0, false
		}
		b := data[i]
		i++
		return b, true
	}

	for {
		op, ok := nextByte()
		if !ok {
			break
		}
		switch op % 8 {
		case 0, 1, 2, 3: // schedule (half of all ops)
			db, _ := nextByte()
			// Three delay regimes so the calendar queue's paths are all
			// exercised: tiny delays force same-time ties inside one wheel
			// bucket, mid delays spread across buckets, and case-3 delays
			// reach past the wheel horizon (~524 µs) into the overflow
			// heap, covering migration and cursor wrap.
			var d Time
			switch {
			case op%8 == 3:
				d = Time(db) * 8191 // 0 .. ~2.1 ms, up to 4 laps out
			case op%8 == 2:
				d = Time(db) * 257 // 0 .. ~65 µs, tens of buckets
			default:
				d = Time(db % 32)
			}
			id := nextID
			nextID++
			h := &handle{id: id}
			h.ev = eng.Schedule(d, func() {
				got = append(got, id)
				h.done = true
			})
			ref.schedule(d, id)
			live = append(live, h)
		case 4, 5: // cancel one contract-live handle
			jb, _ := nextByte()
			var cands []*handle
			for _, h := range live {
				if !h.done {
					cands = append(cands, h)
				}
			}
			if len(cands) == 0 {
				continue
			}
			h := cands[int(jb)%len(cands)]
			// Note: after Cancel the handle must be treated as dropped — the
			// engine may compact immediately and recycle the object, so even
			// reading h.ev.Cancelled() here would violate the lifetime
			// contract (and panic under simdebug).
			eng.Cancel(h.ev)
			h.done = true
			ref.cancel(h.id)
		case 6: // run a bounded window (alternating near and multi-lap far)
			db, _ := nextByte()
			w := Time(db % 64)
			if db >= 128 {
				w = Time(db) * 16384 // up to ~4 ms: jump the clock across laps
			}
			until := eng.Now() + w
			eng.Run(until)
			ref.run(until)
			if eng.Now() != ref.now {
				return fmt.Errorf("op %d: Run(%d): clock %d, reference %d", i, until, eng.Now(), ref.now)
			}
		case 7: // single steps
			nb, _ := nextByte()
			for k := 0; k <= int(nb%4); k++ {
				a := eng.Step()
				b := ref.step()
				if a != b {
					return fmt.Errorf("op %d: Step() = %v, reference %v", i, a, b)
				}
				if a && eng.Now() != ref.now {
					return fmt.Errorf("op %d: Step clock %d, reference %d", i, eng.Now(), ref.now)
				}
			}
		}
	}

	eng.RunUntilIdle()
	for ref.step() {
	}

	if len(got) != len(ref.order) {
		return fmt.Errorf("fired %d events, reference fired %d", len(got), len(ref.order))
	}
	for k := range got {
		if got[k] != ref.order[k] {
			return fmt.Errorf("firing order diverges at %d: got id %d, reference id %d (got %v, want %v)",
				k, got[k], ref.order[k], got, ref.order)
		}
	}
	if eng.Now() != ref.now {
		return fmt.Errorf("final clock %d, reference %d", eng.Now(), ref.now)
	}
	if eng.Executed != uint64(len(got)) {
		return fmt.Errorf("Executed = %d, fired %d", eng.Executed, len(got))
	}
	if eng.Pending() != 0 {
		return fmt.Errorf("Pending = %d after drain", eng.Pending())
	}
	return nil
}

func TestEngineModelQuick(t *testing.T) {
	f := func(data []byte) bool {
		if err := runEngineModel(data); err != nil {
			t.Logf("sequence %q: %v", data, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// A few directed sequences that previously had no coverage: cancel storms,
// interleaved run/step, heavy same-time ties, and calendar-queue edges —
// overflow migration, the cursor jumping forward past idle gaps, and the
// cursor moving backward when a short delay is scheduled after Run left the
// clock short of a far-future event (the lap-collision path).
func TestEngineModelDirected(t *testing.T) {
	seqs := [][]byte{
		{},
		{0, 0, 0, 0, 0, 0, 7, 3},
		{0, 5, 1, 5, 2, 5, 3, 5, 4, 0, 4, 1, 6, 63},
		{0, 0, 4, 0, 0, 0, 4, 0, 6, 10, 0, 0, 4, 1, 7, 2},
		{3, 31, 2, 31, 1, 31, 0, 31, 5, 2, 5, 1, 5, 0, 6, 63, 6, 63},
		// Far event beyond the horizon, then drain: overflow migration.
		{3, 255, 7, 3},
		// Far event; bounded run leaves it pending with the cursor advanced;
		// then near events land behind the cursor and must still fire first.
		{3, 255, 6, 150, 0, 5, 0, 5, 7, 3},
		// Mixed laps: near, one lap out, four laps out, interleaved with
		// cancels and a multi-lap run window.
		{0, 9, 3, 70, 3, 255, 2, 200, 4, 1, 6, 255, 7, 3},
		// Idle gap then reschedule: cursor snaps forward on an empty engine.
		{0, 5, 7, 0, 3, 130, 7, 0, 0, 5, 7, 3},
	}
	for _, s := range seqs {
		if err := runEngineModel(s); err != nil {
			t.Errorf("sequence %v: %v", s, err)
		}
	}
}
