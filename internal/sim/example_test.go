package sim_test

import (
	"fmt"

	"flowbender/internal/sim"
)

// The engine executes scheduled callbacks in virtual-time order; ties run
// in scheduling order.
func ExampleEngine() {
	eng := sim.NewEngine()
	eng.Schedule(2*sim.Millisecond, func() { fmt.Println("second at", eng.Now()) })
	eng.Schedule(1*sim.Millisecond, func() {
		fmt.Println("first at", eng.Now())
		eng.Schedule(500*sim.Microsecond, func() { fmt.Println("nested at", eng.Now()) })
	})
	eng.Run(10 * sim.Millisecond)
	// Output:
	// first at 1ms
	// nested at 1.5ms
	// second at 2ms
}

// Forked RNG streams are independent and reproducible by (seed, name).
func ExampleRNG_Fork() {
	a := sim.NewRNG(7).Fork("workload")
	b := sim.NewRNG(7).Fork("workload")
	fmt.Println(a.Intn(1000) == b.Intn(1000))
	// Output:
	// true
}
