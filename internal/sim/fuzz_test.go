package sim

import "testing"

// FuzzEngine feeds coverage-guided operation sequences through the
// differential interpreter in model_test.go. Run locally with
//
//	go test -fuzz=FuzzEngine ./internal/sim
//
// to explore beyond the checked-in corpus (testdata/fuzz/FuzzEngine); in CI
// the corpus and these seeds run as ordinary tests.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 7, 3})
	f.Add([]byte{0, 5, 4, 0, 6, 63})
	f.Add([]byte{3, 31, 2, 31, 1, 31, 0, 31, 5, 2, 5, 1, 5, 0, 6, 63, 6, 63})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 4, 0, 4, 0, 4, 0, 7, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("bounded sequence length")
		}
		if err := runEngineModel(data); err != nil {
			t.Fatalf("engine diverged from reference: %v (sequence %v)", err, data)
		}
	})
}
