package sim

import "testing"

// Tests for the event free list: recycled-handle semantics in release
// builds, panic tripwires under -tags simdebug, the compaction bound on
// cancel-heavy workloads, and allocation-freedom of the steady state.

// mustPanic asserts fn panics (simdebug tripwires).
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// In release builds a handle retained past its callback is harmless: it
// reports its final state until the engine reuses the object, Cancel on it
// is a no-op, and the engine stays consistent throughout.
func TestRecycledHandleSafety(t *testing.T) {
	if Debug {
		t.Skip("release-mode semantics; simdebug panics instead (TestSimdebugTripwires)")
	}
	eng := NewEngine()
	ev := eng.Schedule(1, func() {})
	eng.RunUntilIdle()

	// Stale reads are safe and sticky.
	if !ev.Fired() || ev.Cancelled() {
		t.Fatalf("stale handle state: fired=%v cancelled=%v", ev.Fired(), ev.Cancelled())
	}
	// Cancel on a fired (recycled) handle is a no-op.
	eng.Cancel(ev)

	// The free list is LIFO, so the next Schedule reuses the same object —
	// this is the documented hazard: the stale handle now observes the new
	// incarnation.
	fired := false
	ev2 := eng.Schedule(5, func() { fired = true })
	if ev2 != ev {
		t.Fatalf("free list did not recycle the fired event object")
	}
	if ev.Fired() || ev.Time() != eng.Now()+5 {
		t.Fatalf("recycled object not reset: fired=%v at=%d", ev.Fired(), ev.Time())
	}
	eng.RunUntilIdle()
	if !fired || eng.Executed != 2 {
		t.Fatalf("engine inconsistent after recycling: fired=%v executed=%d", fired, eng.Executed)
	}
}

// Under -tags simdebug any access to a recycled handle panics with
// generation diagnostics instead of silently reading pooled state.
func TestSimdebugTripwires(t *testing.T) {
	if !Debug {
		t.Skip("requires -tags simdebug")
	}
	eng := NewEngine()
	ev := eng.Schedule(1, func() {})
	eng.RunUntilIdle()
	mustPanic(t, "Fired on recycled handle", func() { ev.Fired() })
	mustPanic(t, "Cancelled on recycled handle", func() { ev.Cancelled() })
	mustPanic(t, "Time on recycled handle", func() { ev.Time() })
	mustPanic(t, "Cancel on recycled handle", func() { eng.Cancel(ev) })
}

// Cancel/reschedule churn — the retransmission-timer pattern, where every
// ACK cancels and re-arms an RTO — must not grow the heap without bound:
// compaction reclaims lazily-deleted events once they outnumber live ones.
func TestCancelChurnBounded(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// A population of live far-future events keeps the heap non-trivial.
	const liveN = 40
	for i := 0; i < liveN; i++ {
		eng.Schedule(1_000_000+Time(i), fn)
	}
	maxPending := 0
	for i := 0; i < 200_000; i++ {
		ev := eng.Schedule(500_000+Time(i%97), fn)
		eng.Cancel(ev)
		if p := eng.Pending(); p > maxPending {
			maxPending = p
		}
	}
	// Bound: live events + at most ~one compaction's worth of cancelled
	// slack (cancelled may reach the live count plus the compactMin floor
	// before a compaction triggers).
	if limit := 2*(liveN+compactMin) + 2; maxPending > limit {
		t.Fatalf("heap grew to %d entries under cancel churn (limit %d)", maxPending, limit)
	}
	eng.RunUntilIdle()
	if eng.Executed != liveN {
		t.Fatalf("executed %d, want %d (cancelled event ran or live event lost)", eng.Executed, liveN)
	}
}

// Compaction must preserve the exact (time, seq) pop order of the surviving
// events.
func TestCompactionPreservesOrder(t *testing.T) {
	eng := NewEngine()
	var got []int
	var cancels []*Event
	for i := 0; i < 300; i++ {
		i := i
		if i%3 == 0 {
			// Live events at descending times, so heap order is nontrivial.
			eng.At(Time(1000-i), func() { got = append(got, 1000-i) })
		} else {
			cancels = append(cancels, eng.At(Time(2000+i), func() { t.Error("cancelled event ran") }))
		}
	}
	for _, ev := range cancels {
		eng.Cancel(ev) // triggers at least one compaction along the way
	}
	eng.RunUntilIdle()
	if len(got) != 100 {
		t.Fatalf("fired %d live events, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order after compaction: %v", got)
		}
	}
}

// Steady-state scheduling must be allocation-free: after warm-up every
// Schedule is served from the free list and firing releases back into it.
func TestScheduleSteadyStateAllocFree(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ { // warm the free list
		eng.Schedule(Time(i%7), fn)
	}
	eng.RunUntilIdle()
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 256; i++ {
			eng.Schedule(Time(i%11), fn)
		}
		eng.RunUntilIdle()
	})
	if allocs > 0 {
		t.Fatalf("steady-state scheduling allocates %.1f times per batch", allocs)
	}
}
