package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMaxMin(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Min()) {
		t.Fatal("empty sample should be NaN")
	}
	for _, x := range []float64{3, 1, 4, 1, 5} {
		s.Add(x)
	}
	if s.Mean() != 2.8 || s.Max() != 5 || s.Min() != 1 || s.N() != 5 {
		t.Fatalf("mean=%v max=%v min=%v n=%d", s.Mean(), s.Max(), s.Min(), s.N())
	}
}

func TestPercentileExact(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 100: 100, 50: 50.5, 99: 99.01}
	for p, want := range cases {
		if got := s.Percentile(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	var s Sample
	s.Add(7)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Fatalf("P%v = %v", p, got)
		}
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Percentile(50)
	s.Add(0.5)
	if got := s.Percentile(0); got != 0.5 {
		t.Fatalf("min after re-add = %v", got)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := s.Percentile(p1), s.Percentile(p2)
		return v1 <= v2 && v1 >= s.Min() && v2 <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile agrees with a direct order-statistic at the exact
// rank points p = i/(n-1)*100.
func TestPercentileRankPointsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var s Sample
		for _, x := range clean {
			s.Add(x)
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		n := len(sorted)
		for i := 0; i < n; i++ {
			p := float64(i) / float64(n-1) * 100
			if math.Abs(s.Percentile(p)-sorted[i]) > 1e-6*math.Max(1, math.Abs(sorted[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinOf(t *testing.T) {
	cases := map[int64]SizeBin{
		1_000:      BinTiny,
		10_000:     BinTiny,
		10_001:     BinSmall,
		128_000:    BinSmall,
		128_001:    BinMedium,
		1_000_000:  BinMedium,
		1_000_001:  BinLarge,
		50_000_000: BinLarge,
	}
	for size, want := range cases {
		if got := BinOf(size); got != want {
			t.Errorf("BinOf(%d) = %v, want %v", size, got, want)
		}
	}
}

func TestBinnedSample(t *testing.T) {
	var b BinnedSample
	b.Add(5_000, 1)
	b.Add(50_000, 2)
	b.Add(500_000, 3)
	b.Add(5_000_000, 4)
	for i := 0; i < int(NumBins); i++ {
		if b.Bins[i].N() != 1 {
			t.Fatalf("bin %d has %d samples", i, b.Bins[i].N())
		}
	}
	if got := b.All().Mean(); got != 2.5 {
		t.Fatalf("All().Mean() = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Fatal("Ratio(4,2)")
	}
	if !math.IsNaN(Ratio(1, 0)) || !math.IsNaN(Ratio(math.NaN(), 1)) {
		t.Fatal("Ratio should be NaN for degenerate inputs")
	}
}

func TestBinStrings(t *testing.T) {
	for i := 0; i < int(NumBins); i++ {
		if SizeBin(i).String() == "" {
			t.Fatalf("bin %d has empty label", i)
		}
	}
}
