package stats

import (
	"fmt"
	"math"
)

// Summary is the mean ± stddev reduction of a set of replicate
// measurements — one value per seed of a multi-seed experiment run.
type Summary struct {
	Mean float64
	Std  float64 // population standard deviation across replicates
	N    int     // number of finite replicates
}

// Summarize reduces replicate values to a Summary. Non-finite replicates
// (NaN from empty bins or failed points, ±Inf from overflowed upstream
// arithmetic) are skipped — a single +Inf would otherwise make Mean
// infinite and Std NaN, silently poisoning a multi-seed row. With no finite
// values both Mean and Std are NaN.
func Summarize(xs []float64) Summary {
	var s Sample
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			s.Add(x)
		}
	}
	if s.N() == 0 {
		return Summary{Mean: math.NaN(), Std: math.NaN()}
	}
	return Summary{Mean: s.Mean(), Std: s.Stddev(), N: s.N()}
}

// String renders "mean ± std" with three significant digits.
func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.3g", s.Mean, s.Std)
}
