package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference implementation: Sample.Percentile on a
// private copy.
func exactQuantile(xs []float64, q float64) float64 {
	var s Sample
	for _, x := range xs {
		s.Add(x)
	}
	return s.Percentile(q * 100)
}

// bits compares float64s for bit identity, distinguishing NaN payloads from
// values and 0 from -0 — "identical rendered output" demands nothing less.
func bits(v float64) uint64 { return math.Float64bits(v) }

// adversarialInputs are the distributions the issue calls out plus the
// shapes that historically break log-bucket sketches.
func adversarialInputs(rng *rand.Rand, n int) map[string][]float64 {
	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i+1) * 1e-3
	}
	reverse := append([]float64(nil), sorted...)
	for i, j := 0, len(reverse)-1; i < j; i, j = i+1, j-1 {
		reverse[i], reverse[j] = reverse[j], reverse[i]
	}
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 0.042
	}
	bimodal := make([]float64, n)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 1e-4 * (1 + rng.Float64())
		} else {
			bimodal[i] = 10 * (1 + rng.Float64())
		}
	}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 5
	}
	lognormal := make([]float64, n)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.NormFloat64() * 3)
	}
	huge := make([]float64, n)
	for i := range huge {
		// Extreme durations near 2^53 ns expressed in seconds, the regime
		// where PR 1 found CDF.Mean overflowing.
		huge[i] = (1 << 53) * 1e-9 * (0.5 + rng.Float64())
	}
	return map[string][]float64{
		"sorted":    sorted,
		"reverse":   reverse,
		"constant":  constant,
		"bimodal":   bimodal,
		"uniform":   uniform,
		"lognormal": lognormal,
		"huge":      huge,
	}
}

var quantileProbes = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}

// TestSketchExactBitIdentical: below the cap, every query must be
// bit-identical to Sample, including across interleaved Mean/Percentile
// calls (Percentile sorts in place, changing Mean's summation order — the
// sketch must reproduce even that).
func TestSketchExactBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, xs := range adversarialInputs(rng, 500) {
		t.Run(name, func(t *testing.T) {
			var sm Sample
			sk := NewSketch()
			for _, x := range xs {
				sm.Add(x)
				sk.Add(x)
			}
			if sk.Collapsed() {
				t.Fatalf("collapsed below cap (n=%d)", len(xs))
			}
			// Pre-sort Mean (insertion order), then quantiles (sorting), then
			// post-sort Mean (ascending order) — all three must match.
			if g, w := sk.Mean(), sm.Mean(); bits(g) != bits(w) {
				t.Errorf("pre-sort Mean: sketch %v sample %v", g, w)
			}
			for _, q := range quantileProbes {
				if g, w := sk.Percentile(q*100), sm.Percentile(q*100); bits(g) != bits(w) {
					t.Errorf("P%v: sketch %v sample %v", q*100, g, w)
				}
			}
			if g, w := sk.Mean(), sm.Mean(); bits(g) != bits(w) {
				t.Errorf("post-sort Mean: sketch %v sample %v", g, w)
			}
			if g, w := sk.Min(), sm.Min(); bits(g) != bits(w) {
				t.Errorf("Min: sketch %v sample %v", g, w)
			}
			if g, w := sk.Max(), sm.Max(); bits(g) != bits(w) {
				t.Errorf("Max: sketch %v sample %v", g, w)
			}
			if sk.N() != int64(sm.N()) {
				t.Errorf("N: sketch %d sample %d", sk.N(), sm.N())
			}
		})
	}
}

// TestSketchEmpty mirrors Sample's NaN-when-empty contract.
func TestSketchEmpty(t *testing.T) {
	var sk Sketch
	for _, v := range []float64{sk.Mean(), sk.Min(), sk.Max(), sk.Percentile(50)} {
		if !math.IsNaN(v) {
			t.Fatalf("empty sketch returned %v, want NaN", v)
		}
	}
	if sk.N() != 0 || sk.Buckets() != 0 {
		t.Fatalf("empty sketch N=%d buckets=%d", sk.N(), sk.Buckets())
	}
}

// TestSketchCollapsedErrorBound: above the cap every quantile must stay
// within the documented relative error of the exact quantile.
func TestSketchCollapsedErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, xs := range adversarialInputs(rng, 20000) {
		t.Run(name, func(t *testing.T) {
			sk := NewSketch()
			for _, x := range xs {
				sk.Add(x)
			}
			if !sk.Collapsed() {
				t.Fatalf("not collapsed at n=%d", len(xs))
			}
			checkErrorBound(t, sk, xs)
			t.Logf("%d observations in %d buckets", sk.N(), sk.Buckets())
		})
	}
}

func checkErrorBound(t *testing.T, sk *Sketch, xs []float64) {
	t.Helper()
	alpha := sk.Accuracy()
	for _, q := range quantileProbes {
		got := sk.Quantile(q)
		want := exactQuantile(xs, q)
		// Positive-value bound: |got-want| <= alpha * want. Interpolation
		// between two alpha-accurate order statistics stays alpha-accurate
		// relative to the interpolated exact value (convex combination), and
		// min/max clamping only ever moves the estimate toward the truth.
		tol := alpha * math.Abs(want)
		if math.Abs(want) < SketchMinValue {
			tol = SketchMinValue
		}
		if math.Abs(got-want) > tol*(1+1e-9) {
			t.Errorf("q=%v: got %v want %v (rel err %.4g > %v)",
				q, got, want, math.Abs(got-want)/math.Abs(want), alpha)
		}
	}
	if g, w := sk.Min(), exactQuantile(xs, 0); bits(g) != bits(w) {
		t.Errorf("collapsed Min %v want exact %v", g, w)
	}
	if g, w := sk.Max(), exactQuantile(xs, 1); bits(g) != bits(w) {
		t.Errorf("collapsed Max %v want exact %v", g, w)
	}
}

// TestSketchNegativeAndZero: the bucket walk must order negatives before
// the zero bucket before positives.
func TestSketchNegativeAndZero(t *testing.T) {
	sk := NewSketchAccuracy(0.01, 8)
	xs := []float64{-5, -1, -0.25, 0, 1e-13, 0.25, 1, 5, 25, 125, 625}
	for _, x := range xs {
		sk.Add(x)
	}
	if !sk.Collapsed() {
		t.Fatal("want collapsed")
	}
	alpha := sk.Accuracy()
	for _, q := range quantileProbes {
		got := sk.Quantile(q)
		want := exactQuantile(xs, q)
		tol := alpha*math.Abs(want) + SketchMinValue
		if math.Abs(got-want) > tol*(1+1e-9) {
			t.Errorf("q=%v: got %v want %v", q, got, want)
		}
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := sk.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

// TestSketchNonFinite: NaN/±Inf are dropped and counted, never recorded.
func TestSketchNonFinite(t *testing.T) {
	sk := NewSketch()
	sk.Add(math.NaN())
	sk.Add(math.Inf(1))
	sk.Add(math.Inf(-1))
	sk.Add(1)
	if sk.N() != 1 || sk.Dropped() != 3 {
		t.Fatalf("N=%d dropped=%d, want 1/3", sk.N(), sk.Dropped())
	}
	if got := sk.Percentile(99); got != 1 {
		t.Fatalf("P99=%v, want 1", got)
	}
}

// splitMerge partitions xs into k contiguous chunks, sketches each, and
// merges left to right.
func splitMerge(xs []float64, k int, exactCap int) *Sketch {
	parts := make([]*Sketch, k)
	for i := range parts {
		parts[i] = NewSketchAccuracy(0, exactCap)
	}
	for i, x := range xs {
		parts[i*k/len(xs)].Add(x)
	}
	out := NewSketchAccuracy(0, exactCap)
	for _, p := range parts {
		out.Merge(p)
	}
	return out
}

// TestSketchMergeDeterministic: any shard count and any merge grouping must
// render bit-identical quantiles — the property the sharded runners lean on.
func TestSketchMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{50, 5000, 30000} {
		for name, xs := range adversarialInputs(rng, n) {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				whole := NewSketch()
				for _, x := range xs {
					whole.Add(x)
				}
				for _, k := range []int{1, 2, 4, 8} {
					m := splitMerge(xs, k, 0)
					if m.N() != whole.N() {
						t.Fatalf("k=%d: N %d != %d", k, m.N(), whole.N())
					}
					for _, q := range quantileProbes {
						if g, w := m.Quantile(q), whole.Quantile(q); bits(g) != bits(w) {
							t.Errorf("k=%d q=%v: merged %v whole %v", k, q, g, w)
						}
					}
					if g, w := m.Min(), whole.Min(); bits(g) != bits(w) {
						t.Errorf("k=%d Min: %v != %v", k, g, w)
					}
					if g, w := m.Max(), whole.Max(); bits(g) != bits(w) {
						t.Errorf("k=%d Max: %v != %v", k, g, w)
					}
				}
			})
		}
	}
}

// TestSketchMergeAssociative: ((a·b)·c) and (a·(b·c)) must agree on every
// quantile bit for bit, in collapsed and exact regimes.
func TestSketchMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, exactCap := range []int{4, DefaultSketchCap} {
		for trial := 0; trial < 20; trial++ {
			var chunks [3][]float64
			for i := range chunks {
				n := 1 + rng.Intn(40)
				for j := 0; j < n; j++ {
					chunks[i] = append(chunks[i], math.Exp(rng.NormFloat64()*2))
				}
			}
			mk := func(xs []float64) *Sketch {
				s := NewSketchAccuracy(0, exactCap)
				for _, x := range xs {
					s.Add(x)
				}
				return s
			}
			left := mk(chunks[0])
			left.Merge(mk(chunks[1]))
			left.Merge(mk(chunks[2]))
			bc := mk(chunks[1])
			bc.Merge(mk(chunks[2]))
			right := mk(chunks[0])
			right.Merge(bc)
			if left.N() != right.N() {
				t.Fatalf("cap=%d: N %d != %d", exactCap, left.N(), right.N())
			}
			for _, q := range quantileProbes {
				if g, w := left.Quantile(q), right.Quantile(q); bits(g) != bits(w) {
					t.Fatalf("cap=%d trial=%d q=%v: %v != %v", exactCap, trial, q, g, w)
				}
			}
		}
	}
}

// TestSketchMergeExactStaysExact: merging small exact sketches below the cap
// must remain bit-identical to one flat Sample.
func TestSketchMergeExactStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	m := splitMerge(xs, 4, 0)
	if m.Collapsed() {
		t.Fatal("collapsed below cap")
	}
	var sm Sample
	for _, x := range xs {
		sm.Add(x)
	}
	for _, q := range quantileProbes {
		if g, w := m.Percentile(q*100), sm.Percentile(q*100); bits(g) != bits(w) {
			t.Errorf("q=%v: merged %v sample %v", q, g, w)
		}
	}
}

// TestSketchMergeMixedAccuracy: folding a coarser sketch into a finer one
// re-buckets representatives instead of mixing incompatible keys.
func TestSketchMergeMixedAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fine := NewSketchAccuracy(0.005, 16)
	coarse := NewSketchAccuracy(0.05, 16)
	var all []float64
	for i := 0; i < 500; i++ {
		v := math.Exp(rng.NormFloat64())
		all = append(all, v)
		if i%2 == 0 {
			fine.Add(v)
		} else {
			coarse.Add(v)
		}
	}
	fine.Merge(coarse)
	if fine.N() != int64(len(all)) {
		t.Fatalf("N=%d want %d", fine.N(), len(all))
	}
	// Error bounds add when re-bucketing coarse representatives.
	tolerance := 0.005 + 0.05 + 0.005*0.05
	for _, q := range quantileProbes {
		got := fine.Quantile(q)
		want := exactQuantile(all, q)
		if math.Abs(got-want) > tolerance*want*(1+1e-9)+SketchMinValue {
			t.Errorf("q=%v: got %v want %v", q, got, want)
		}
	}
}

// TestSketchFlatMemory: bucket count must not grow with observation count.
func TestSketchFlatMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sk := NewSketchAccuracy(0.01, 128)
	var at100k int
	for i := 0; i < 1_000_000; i++ {
		// FCT-like range: 100 µs .. 10 s.
		sk.Add(1e-4 * math.Exp(rng.Float64()*math.Log(1e5)))
		if i == 100_000 {
			at100k = sk.Buckets()
		}
	}
	if sk.Buckets() > at100k+32 {
		t.Fatalf("buckets grew with n: %d at 100k, %d at 1M", at100k, sk.Buckets())
	}
	// 5 decades at 1% accuracy is ~ log(1e5)/log(gamma) ≈ 575 buckets.
	if sk.Buckets() > 1200 {
		t.Fatalf("bucket count %d implausibly large for 5 decades", sk.Buckets())
	}
}

// TestBinnedSketchMatchesBinnedSample: the binned wrapper must agree with
// BinnedSample bin for bin below the cap, including the All() reduction.
func TestBinnedSketchMatchesBinnedSample(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var bs BinnedSample
	var bk BinnedSketch
	for i := 0; i < 2000; i++ {
		size := int64(math.Exp(rng.Float64() * math.Log(5e7)))
		fct := rng.Float64()
		bs.Add(size, fct)
		bk.Add(size, fct)
	}
	for b := 0; b < int(NumBins); b++ {
		sm, sk := &bs.Bins[b], &bk.Bins[b]
		if int64(sm.N()) != sk.N() {
			t.Fatalf("bin %d: N %d != %d", b, sm.N(), sk.N())
		}
		for _, q := range quantileProbes {
			if g, w := sk.Percentile(q*100), sm.Percentile(q*100); bits(g) != bits(w) {
				t.Errorf("bin %d q=%v: %v != %v", b, q, g, w)
			}
		}
	}
	allS, allK := bs.All(), bk.All()
	for _, q := range quantileProbes {
		if g, w := allK.Percentile(q*100), allS.Percentile(q*100); bits(g) != bits(w) {
			t.Errorf("All q=%v: %v != %v", q, g, w)
		}
	}
	if g, w := allK.Mean(), allS.Mean(); bits(g) != bits(w) {
		t.Errorf("All Mean: %v != %v", g, w)
	}
}

// --- regression tests for the Histogram/Summarize audit (satellite 4) ---

// TestHistogramNonFinite: +Inf used to compute an infinite bucket index
// (unbounded allocation); NaN landed silently in bucket 0.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(1e-6, 2)
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(math.NaN())
	if h.Total() != 0 || h.Dropped() != 3 {
		t.Fatalf("total=%d dropped=%d, want 0/3", h.Total(), h.Dropped())
	}
	h.Add(1)
	if h.Total() != 1 {
		t.Fatalf("total=%d after finite add", h.Total())
	}
	if q := h.Quantile(0.5); math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("Quantile=%v after non-finite adds", q)
	}
}

// TestHistogramHugeValueBounded: a finite-but-astronomical value (or a
// Factor barely above 1) must not allocate billions of buckets.
func TestHistogramHugeValueBounded(t *testing.T) {
	h := NewHistogram(1e-6, 2)
	h.Add(math.MaxFloat64)
	if len(h.counts) > maxHistogramBuckets {
		t.Fatalf("bucket slice grew to %d", len(h.counts))
	}
	pathological := &Histogram{Base: 1, Factor: 1 + 1e-12}
	pathological.Add(1e30) // index would be ~7e13 without the clamp
	if len(pathological.counts) > maxHistogramBuckets {
		t.Fatalf("pathological factor grew %d buckets", len(pathological.counts))
	}
	if pathological.Total() != 1 {
		t.Fatalf("observation lost: total=%d", pathological.Total())
	}
}

// TestHistogramZeroValueUsable: the zero value must behave like
// NewHistogram's defaults instead of dividing by log(0).
func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Add(0.5)
	h.Add(2)
	if h.Total() != 2 {
		t.Fatalf("total=%d", h.Total())
	}
	if q := h.Quantile(1); math.IsNaN(q) || q < 2 {
		t.Fatalf("Quantile(1)=%v, want >= 2", q)
	}
}

// TestHistogramExtremeDurations: samples near 2^53 ns (the float64 integer
// precision edge PR 1's CDF fixes centred on) must bucket and quantile
// sanely.
func TestHistogramExtremeDurations(t *testing.T) {
	h := NewHistogram(1, 2) // nanosecond buckets
	base := math.Exp2(53)
	for i := -4; i <= 4; i++ {
		h.Add(base + float64(i)*1024)
	}
	if h.Total() != 9 {
		t.Fatalf("total=%d", h.Total())
	}
	q := h.Quantile(0.99)
	if q < base/2 || q > base*4 {
		t.Fatalf("P99=%v not within a bucket of 2^53", q)
	}
	var prev float64
	for _, qq := range []float64{0, 0.5, 0.9, 1} {
		v := h.Quantile(qq)
		if v < prev {
			t.Fatalf("quantile not monotone at %v", qq)
		}
		prev = v
	}
}

// TestHistogramQuantileClamps: out-of-range and NaN q values.
func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Add(1)
	h.Add(100)
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Fatal("Quantile(NaN) not NaN")
	}
	if g, w := h.Quantile(-3), h.Quantile(0); g != w {
		t.Fatalf("Quantile(-3)=%v != Quantile(0)=%v", g, w)
	}
	if g, w := h.Quantile(7), h.Quantile(1); g != w {
		t.Fatalf("Quantile(7)=%v != Quantile(1)=%v", g, w)
	}
}

// TestSummarizeNonFinite: an Inf replicate used to make Mean=Inf, Std=NaN.
func TestSummarizeNonFinite(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, math.Inf(1), math.NaN(), math.Inf(-1)})
	if s.N != 3 {
		t.Fatalf("N=%d, want 3", s.N)
	}
	if s.Mean != 2 {
		t.Fatalf("Mean=%v, want 2", s.Mean)
	}
	if math.IsNaN(s.Std) || math.IsInf(s.Std, 0) {
		t.Fatalf("Std=%v", s.Std)
	}
}

// TestSketchExtremeDurations: sketch error bound must hold at the 2^53 ns
// scale in both regimes.
func TestSketchExtremeDurations(t *testing.T) {
	base := math.Exp2(53) // ns
	var xs []float64
	for i := 0; i < 10000; i++ {
		xs = append(xs, base*(0.5+float64(i%1000)/1000))
	}
	sk := NewSketchAccuracy(0.01, 128)
	for _, x := range xs {
		sk.Add(x)
	}
	if !sk.Collapsed() {
		t.Fatal("want collapsed")
	}
	checkErrorBound(t, sk, xs)
}

// TestSketchQuantileMatchesSortedRank cross-checks the collapsed bucket
// walk against a brute-force rank computation on the representatives.
func TestSketchQuantileMatchesSortedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sk := NewSketchAccuracy(0.02, 4)
	var reps []float64
	// Build the expected multiset of representatives independently.
	var mirror *Sketch
	mirror = NewSketchAccuracy(0.02, 4)
	for i := 0; i < 3000; i++ {
		v := math.Exp(rng.NormFloat64() * 2)
		sk.Add(v)
		mirror.Add(v)
	}
	_ = mirror
	for _, q := range quantileProbes {
		got := sk.Quantile(q)
		var want float64
		switch {
		case q <= 0:
			want = sk.min // boundaries report the exactly tracked extremes
		case q >= 1:
			want = sk.max
		default:
			// Reference: expand buckets into a sorted slice of
			// representatives, interpolate at rank q*(n-1) as the walk
			// does, then clamp to the exact extremes.
			reps = reps[:0]
			for k, c := range sk.pos {
				for j := int64(0); j < c; j++ {
					reps = append(reps, sk.rep(k))
				}
			}
			sort.Float64s(reps)
			rank := q * float64(len(reps)-1)
			lo, hi := int(math.Floor(rank)), int(math.Ceil(rank))
			want = reps[lo]
			if hi != lo {
				frac := rank - float64(lo)
				want = reps[lo]*(1-frac) + reps[hi]*frac
			}
			if want < sk.min {
				want = sk.min
			}
			if want > sk.max {
				want = sk.max
			}
		}
		if bits(got) != bits(want) {
			t.Errorf("q=%v: walk %v brute-force %v", q, got, want)
		}
	}
}
