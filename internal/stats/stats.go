// Package stats provides the summary statistics the paper reports: means,
// maxima, and high percentiles of flow completion times, grouped into the
// paper's flow-size bins, plus normalization helpers for the
// "normalized to ECMP" presentation of Figures 3–8.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is an accumulating collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest observation (NaN when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest observation (NaN when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics (NaN when empty).
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Stddev returns the population standard deviation (NaN when empty).
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	mean := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Values returns the underlying observations (sorted if a percentile was
// computed). Callers must not modify the slice.
func (s *Sample) Values() []float64 { return s.xs }

// SizeBin is one of the paper's flow-size buckets (Figures 3 and 4).
type SizeBin int

// The paper's four bins.
const (
	BinTiny   SizeBin = iota // (0, 10 KB]
	BinSmall                 // (10 KB, 128 KB]
	BinMedium                // (128 KB, 1 MB]
	BinLarge                 // > 1 MB
	NumBins
)

// BinOf buckets a flow size in bytes. The paper's bin edges use decimal
// KB/MB.
func BinOf(size int64) SizeBin {
	switch {
	case size <= 10_000:
		return BinTiny
	case size <= 128_000:
		return BinSmall
	case size <= 1_000_000:
		return BinMedium
	default:
		return BinLarge
	}
}

func (b SizeBin) String() string {
	switch b {
	case BinTiny:
		return "[1KB,10KB]"
	case BinSmall:
		return "(10KB,128KB]"
	case BinMedium:
		return "(128KB,1MB]"
	case BinLarge:
		return ">1MB"
	}
	return fmt.Sprintf("bin(%d)", int(b))
}

// BinnedSample groups observations by flow-size bin.
type BinnedSample struct {
	Bins [NumBins]Sample
}

// Add records an observation for a flow of the given size.
func (b *BinnedSample) Add(size int64, x float64) { b.Bins[BinOf(size)].Add(x) }

// All returns a sample merging every bin.
func (b *BinnedSample) All() *Sample {
	var out Sample
	for i := range b.Bins {
		for _, x := range b.Bins[i].Values() {
			out.Add(x)
		}
	}
	return &out
}

// Ratio returns a/b, or NaN when b is 0 or either is NaN.
func Ratio(a, b float64) float64 {
	if b == 0 || math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	return a / b
}
