package stats

import (
	"math"
	"sort"
)

// DefaultSketchAccuracy is the relative quantile error a collapsed Sketch
// guarantees: every reported quantile is within 1% of the exact quantile of
// the recorded multiset (for values >= SketchMinValue).
const DefaultSketchAccuracy = 0.01

// DefaultSketchCap is the number of observations a Sketch holds exactly
// before collapsing to logarithmic buckets. Below the cap the sketch is
// bit-for-bit identical to a Sample; above it memory stays flat no matter
// how many observations arrive.
const DefaultSketchCap = 8192

// SketchMinValue is the smallest magnitude the bucketed representation
// distinguishes from zero: observations in (-SketchMinValue, SketchMinValue)
// land in a dedicated zero bucket and are reported as exactly 0. Flow
// completion times are ≥ 1 ns = 1e-9 s, three decades above it.
const SketchMinValue = 1e-12

// SketchMaxValue bounds the magnitude range the relative-error guarantee
// covers: above it the bucket index is clamped so representatives cannot
// overflow to +Inf, and accuracy degrades to "somewhere in the top bucket"
// (min/max stay exact). 1e300 is 292 decades above any plausible duration.
const SketchMaxValue = 1e300

// Sketch is a mergeable streaming quantile summary for float64
// observations (flow completion times, latencies).
//
// It has two regimes:
//
//   - Exact: up to its cap (DefaultSketchCap by default) it stores raw
//     observations and reproduces Sample's behavior bit for bit — the same
//     in-place sort, the same linear interpolation between order statistics,
//     the same summation order for Mean. Experiments that fit in memory
//     render byte-identical output whether they aggregate through a Sample
//     or a Sketch.
//
//   - Collapsed: past the cap it folds every observation into DDSketch-style
//     logarithmic buckets (integer counts keyed by ceil(log_gamma|v|), where
//     gamma = (1+alpha)/(1-alpha)) plus exact min/max. Memory is bounded by
//     the number of distinct buckets — a few hundred for realistic FCT
//     ranges — independent of the observation count, and every reported
//     quantile is within relative error alpha of the exact quantile.
//
// Merge determinism is pinned the same way byteident pins events: the
// collapsed state is a pure function of the recorded multiset (integer
// bucket counts admit no floating-point reassociation), so merging
// shard-local sketches in any grouping or order yields bit-identical
// quantiles. In the exact regime the stored slice follows merge order, so
// order-sensitive last-ulp effects are confined to Mean/Stddev; quantiles
// sort first and are order-independent there too. Shard runners merge in
// shard-index order regardless, mirroring how they merge event streams.
//
// The zero value is ready to use (default accuracy and cap), matching
// Sample. NaN and ±Inf observations are dropped and counted in Dropped —
// they would otherwise poison the sort order or the bucket index.
type Sketch struct {
	alpha    float64 // relative accuracy; 0 = DefaultSketchAccuracy
	capN     int     // exact-mode capacity; 0 = DefaultSketchCap
	gamma    float64
	logGamma float64
	maxIdx   int // index clamp keeping representatives finite

	// Exact regime.
	xs     []float64
	sorted bool

	// Collapsed regime.
	collapsed bool
	zero      int64         // |v| < SketchMinValue
	pos       map[int]int64 // v >= SketchMinValue, keyed by bucket index
	neg       map[int]int64 // v <= -SketchMinValue, keyed by index of -v

	count    int64
	dropped  int64
	min, max float64
}

// NewSketch returns a sketch with the default accuracy (1%) and exact-mode
// cap (DefaultSketchCap).
func NewSketch() *Sketch { return &Sketch{} }

// NewSketchAccuracy returns a sketch with relative accuracy alpha (clamped
// to [1e-4, 0.25]) and the given exact-mode capacity (<= 0 keeps every
// sketch exact up to DefaultSketchCap; 1 collapses immediately).
func NewSketchAccuracy(alpha float64, exactCap int) *Sketch {
	s := &Sketch{}
	if alpha > 0 {
		s.alpha = clampAlpha(alpha)
	}
	if exactCap > 0 {
		s.capN = exactCap
	}
	return s
}

func clampAlpha(alpha float64) float64 {
	if alpha < 1e-4 {
		return 1e-4
	}
	if alpha > 0.25 {
		return 0.25
	}
	return alpha
}

// Accuracy returns the relative quantile error bound of the collapsed
// regime.
func (s *Sketch) Accuracy() float64 {
	if s.alpha == 0 {
		return DefaultSketchAccuracy
	}
	return s.alpha
}

func (s *Sketch) capacity() int {
	if s.capN == 0 {
		return DefaultSketchCap
	}
	return s.capN
}

// ensureGamma computes the bucket base lazily so the zero value works.
func (s *Sketch) ensureGamma() {
	if s.gamma == 0 {
		a := s.Accuracy()
		s.gamma = (1 + a) / (1 - a)
		s.logGamma = math.Log(s.gamma)
		// Largest index whose representative stays finite: gamma^maxIdx a
		// comfortable factor below MaxFloat64 (and above SketchMaxValue).
		s.maxIdx = int(math.Floor(math.Log(math.MaxFloat64/16) / s.logGamma))
	}
}

// Add records one observation. Non-finite values are dropped (see Dropped).
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		s.dropped++
		return
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	if !s.collapsed {
		s.xs = append(s.xs, v)
		s.sorted = false
		if len(s.xs) > s.capacity() {
			s.collapse()
		}
		return
	}
	s.bucketAdd(v, 1)
}

// collapse folds the exact observations into buckets and enters the
// flat-memory regime. The resulting bucket state depends only on the
// recorded multiset, never on insertion order.
func (s *Sketch) collapse() {
	s.ensureGamma()
	s.collapsed = true
	if s.pos == nil {
		s.pos = make(map[int]int64)
		s.neg = make(map[int]int64)
	}
	for _, v := range s.xs {
		s.bucketAdd(v, 1)
	}
	s.xs = nil
	s.sorted = false
}

func (s *Sketch) bucketAdd(v float64, n int64) {
	switch {
	case v >= SketchMinValue:
		s.pos[s.index(v)] += n
	case v <= -SketchMinValue:
		s.neg[s.index(-v)] += n
	default:
		s.zero += n
	}
}

// index returns the bucket key of a positive magnitude: the smallest k with
// gamma^k >= v, clamped so the bucket's representative is a finite float64
// (magnitudes past SketchMaxValue share the top bucket).
func (s *Sketch) index(v float64) int {
	k := int(math.Ceil(math.Log(v) / s.logGamma))
	if k > s.maxIdx {
		k = s.maxIdx
	}
	return k
}

// rep returns the representative value of bucket k, the harmonic midpoint
// 2*gamma^k/(gamma+1): within relative error alpha of every value in the
// bucket's range (gamma^(k-1), gamma^k].
func (s *Sketch) rep(k int) float64 {
	return 2 * math.Exp(float64(k)*s.logGamma) / (s.gamma + 1)
}

// N returns the number of recorded observations.
func (s *Sketch) N() int64 { return s.count }

// Dropped returns the number of non-finite observations rejected by Add.
func (s *Sketch) Dropped() int64 { return s.dropped }

// Collapsed reports whether the sketch left the exact regime.
func (s *Sketch) Collapsed() bool { return s.collapsed }

// Buckets returns the number of live logarithmic buckets (0 while exact) —
// the collapsed regime's memory footprint in units of one map entry.
func (s *Sketch) Buckets() int {
	if !s.collapsed {
		return 0
	}
	n := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		n++
	}
	return n
}

// Min returns the smallest observation (NaN when empty). Exact in both
// regimes.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (NaN when empty). Exact in both
// regimes.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Mean returns the arithmetic mean (NaN when empty). In the exact regime it
// sums the stored slice in its current order, mirroring Sample.Mean; in the
// collapsed regime it is computed from bucket representatives in ascending
// bucket order (deterministic, within alpha of the exact mean for
// same-signed data).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if !s.collapsed {
		sum := 0.0
		for _, x := range s.xs {
			sum += x
		}
		return sum / float64(len(s.xs))
	}
	sum := 0.0
	for _, k := range s.sortedKeys(s.neg, true) {
		sum += -s.rep(k) * float64(s.neg[k])
	}
	for _, k := range s.sortedKeys(s.pos, false) {
		sum += s.rep(k) * float64(s.pos[k])
	}
	return sum / float64(s.count)
}

// sortedKeys returns the map's keys ascending (desc reverses) — the pinned
// iteration order every collapsed-regime reduction uses.
func (s *Sketch) sortedKeys(m map[int]int64, desc bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if desc {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	return keys
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics (NaN when empty). In the exact
// regime this is bit-identical to Sample.Percentile — including the rank
// arithmetic p/100*(n-1), which differs in the last ulp from q*(n-1) when
// p/100 doesn't round to q (99.9/100 != 0.999); collapsed, the order
// statistics are bucket representatives, so the result is within relative
// error Accuracy() of the exact interpolated percentile (for positive
// data), clamped to the exactly tracked [Min, Max].
func (s *Sketch) Percentile(p float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.atRank(0)
	}
	if p >= 100 {
		return s.atRank(float64(s.count - 1))
	}
	return s.atRank(p / 100 * float64(s.count-1))
}

// Quantile is Percentile with q in [0,1] and rank computed as q*(n-1).
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.atRank(0)
	}
	if q >= 1 {
		return s.atRank(float64(s.count - 1))
	}
	return s.atRank(q * float64(s.count-1))
}

// atRank interpolates at a fractional 0-based order-statistic rank in
// [0, n-1].
func (s *Sketch) atRank(rank float64) float64 {
	if !s.collapsed {
		if !s.sorted {
			sort.Float64s(s.xs)
			s.sorted = true
		}
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			return s.xs[lo]
		}
		frac := rank - float64(lo)
		return s.xs[lo]*(1-frac) + s.xs[hi]*frac
	}
	if rank <= 0 {
		return s.min
	}
	if rank >= float64(s.count-1) {
		return s.max
	}
	lo := int64(math.Floor(rank))
	hi := int64(math.Ceil(rank))
	vlo, vhi := s.orderStats(lo, hi)
	v := vlo
	if hi != lo {
		frac := rank - float64(lo)
		v = vlo*(1-frac) + vhi*frac
	}
	// The representatives can poke past the true extremes by up to alpha;
	// the tracked min/max are exact, so clamp.
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// orderStats walks the buckets in value order — negative indexes descending,
// the zero bucket, positive ascending — and returns the representatives at
// 0-based order-statistic indexes lo and hi (lo <= hi).
func (s *Sketch) orderStats(lo, hi int64) (vlo, vhi float64) {
	found := 0
	var cum int64
	take := func(v float64, c int64) bool {
		cum += c
		if found == 0 && cum > lo {
			vlo = v
			found++
		}
		if found == 1 && cum > hi {
			vhi = v
			found++
		}
		return found == 2
	}
	for _, k := range s.sortedKeys(s.neg, true) {
		if take(-s.rep(k), s.neg[k]) {
			return
		}
	}
	if s.zero > 0 && take(0, s.zero) {
		return
	}
	for _, k := range s.sortedKeys(s.pos, false) {
		if take(s.rep(k), s.pos[k]) {
			return
		}
	}
	// Ranks past the end (can only happen via float rounding at q→1).
	if found == 0 {
		vlo = s.max
	}
	vhi = s.max
	return
}

// Merge folds o's observations into s without modifying o. Merging is
// associative, and on everything except exact-regime Mean/Stddev ulps it is
// commutative too: the combined sketch stays exact when the total count
// fits the cap, and otherwise collapses to the bucket state of the combined
// multiset — identical for every merge grouping and order.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	s.dropped += o.dropped
	if o.count == 0 {
		return
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	if !s.collapsed && !o.collapsed && len(s.xs)+len(o.xs) <= s.capacity() {
		s.xs = append(s.xs, o.xs...)
		s.sorted = false
		return
	}
	if !s.collapsed {
		s.collapse()
	}
	if !o.collapsed {
		for _, v := range o.xs {
			s.bucketAdd(v, 1)
		}
		return
	}
	s.foldBuckets(o)
}

// foldBuckets adds a collapsed o's buckets into s. With equal bucket bases
// the keys transfer directly; with different accuracies each representative
// is re-bucketed under s's base (the error bounds add).
func (s *Sketch) foldBuckets(o *Sketch) {
	s.zero += o.zero
	if o.gamma == s.gamma {
		for k, c := range o.pos {
			s.pos[k] += c
		}
		for k, c := range o.neg {
			s.neg[k] += c
		}
		return
	}
	for k, c := range o.pos {
		s.pos[s.index(o.rep(k))] += c
	}
	for k, c := range o.neg {
		s.neg[s.index(o.rep(k))] += c
	}
}

// BinnedSketch groups observations by the paper's flow-size bins, exactly
// like BinnedSample but with flat memory past each bin's cap.
type BinnedSketch struct {
	Bins [NumBins]Sketch
}

// Add records an observation for a flow of the given size.
func (b *BinnedSketch) Add(size int64, x float64) { b.Bins[BinOf(size)].Add(x) }

// All returns a sketch merging every bin, in bin order.
func (b *BinnedSketch) All() *Sketch {
	out := &Sketch{}
	for i := range b.Bins {
		out.Merge(&b.Bins[i])
	}
	return out
}
