package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.Mean != 4 || s.N != 3 {
		t.Fatalf("mean=%v n=%d", s.Mean, s.N)
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std=%v want %v", s.Std, want)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.Std != 0 || s.N != 1 {
		t.Fatalf("got %+v", s)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	s := Summarize([]float64{math.NaN(), 1, 3, math.NaN()})
	if s.Mean != 2 || s.N != 2 {
		t.Fatalf("got %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	for _, xs := range [][]float64{nil, {math.NaN()}} {
		s := Summarize(xs)
		if !math.IsNaN(s.Mean) || !math.IsNaN(s.Std) || s.N != 0 {
			t.Fatalf("Summarize(%v) = %+v", xs, s)
		}
	}
}

func TestSummaryString(t *testing.T) {
	got := Summary{Mean: 1.2345, Std: 0.0678}.String()
	if got != "1.23 ± 0.0678" {
		t.Fatalf("String() = %q", got)
	}
}
