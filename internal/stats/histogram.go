package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a logarithmically bucketed histogram for positive values
// (latencies, sizes): each bucket spans a fixed multiplicative factor.
type Histogram struct {
	// Base is the lower bound of the first bucket and Factor the growth
	// per bucket; values below Base land in bucket 0, values above the last
	// bucket extend the histogram.
	Base   float64
	Factor float64

	counts  []int64
	total   int64
	dropped int64
}

// maxHistogramBuckets bounds the bucket array: a finite-but-huge value (or a
// Factor set barely above 1) would otherwise compute an index in the
// billions and allocate until OOM. Observations past the bound land in the
// last bucket. 2^16 buckets at Factor 2 cover base·2^65536 — far beyond any
// finite float64 under sane factors, so the clamp only ever fires on
// degenerate configurations.
const maxHistogramBuckets = 1 << 16

// NewHistogram creates a histogram with the given first-bucket lower bound
// and per-bucket growth factor (> 1).
func NewHistogram(base, factor float64) *Histogram {
	if base <= 0 {
		base = 1e-6
	}
	if factor <= 1 {
		factor = 2
	}
	return &Histogram{Base: base, Factor: factor}
}

// base and factor apply NewHistogram's clamps lazily, so a zero-value or
// hand-initialized Histogram cannot divide by log(1)=0 or log(0).
func (h *Histogram) base() float64 {
	if h.Base <= 0 || math.IsNaN(h.Base) || math.IsInf(h.Base, 0) {
		return 1e-6
	}
	return h.Base
}

func (h *Histogram) factor() float64 {
	if !(h.Factor > 1) || math.IsInf(h.Factor, 0) {
		return 2
	}
	return h.Factor
}

// Add records one observation. NaN and ±Inf are dropped (see Dropped): NaN
// previously landed silently in bucket 0 and +Inf computed an infinite
// bucket index.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped++
		return
	}
	idx := 0
	if base := h.base(); v > base {
		idx = int(math.Ceil(math.Log(v/base) / math.Log(h.factor())))
		if idx < 0 {
			idx = 0
		}
		if idx >= maxHistogramBuckets {
			idx = maxHistogramBuckets - 1
		}
	}
	for idx >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Dropped returns the number of non-finite observations rejected by Add.
func (h *Histogram) Dropped() int64 { return h.dropped }

// Buckets returns (upper bound, count) pairs for non-empty tail-trimmed
// buckets.
func (h *Histogram) Buckets() ([]float64, []int64) {
	ups := make([]float64, len(h.counts))
	for i := range h.counts {
		ups[i] = h.base() * math.Pow(h.factor(), float64(i))
	}
	return ups, append([]int64(nil), h.counts...)
}

// Quantile returns an upper bound for the q-quantile (q clamped to [0,1];
// NaN q returns NaN) from the bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return h.base() * math.Pow(h.factor(), float64(i))
		}
	}
	return h.base() * math.Pow(h.factor(), float64(len(h.counts)-1))
}

// Render writes an ASCII bar chart of the histogram, scaled to width.
func (h *Histogram) Render(w io.Writer, unit string, width int) {
	if width <= 0 {
		width = 40
	}
	ups, counts := h.Buckets()
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		fmt.Fprintln(w, "(empty histogram)")
		return
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(float64(c)/float64(max)*float64(width))+1)
		fmt.Fprintf(w, "%12.3g %-4s %6d %s\n", ups[i], unit, c, bar)
	}
}
