package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a logarithmically bucketed histogram for positive values
// (latencies, sizes): each bucket spans a fixed multiplicative factor.
type Histogram struct {
	// Base is the lower bound of the first bucket and Factor the growth
	// per bucket; values below Base land in bucket 0, values above the last
	// bucket extend the histogram.
	Base   float64
	Factor float64

	counts []int64
	total  int64
}

// NewHistogram creates a histogram with the given first-bucket lower bound
// and per-bucket growth factor (> 1).
func NewHistogram(base, factor float64) *Histogram {
	if base <= 0 {
		base = 1e-6
	}
	if factor <= 1 {
		factor = 2
	}
	return &Histogram{Base: base, Factor: factor}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := 0
	if v > h.Base {
		idx = int(math.Ceil(math.Log(v/h.Base) / math.Log(h.Factor)))
	}
	for idx >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns (upper bound, count) pairs for non-empty tail-trimmed
// buckets.
func (h *Histogram) Buckets() ([]float64, []int64) {
	ups := make([]float64, len(h.counts))
	for i := range h.counts {
		ups[i] = h.Base * math.Pow(h.Factor, float64(i))
	}
	return ups, append([]int64(nil), h.counts...)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from the
// bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return h.Base * math.Pow(h.Factor, float64(i))
		}
	}
	return h.Base * math.Pow(h.Factor, float64(len(h.counts)-1))
}

// Render writes an ASCII bar chart of the histogram, scaled to width.
func (h *Histogram) Render(w io.Writer, unit string, width int) {
	if width <= 0 {
		width = 40
	}
	ups, counts := h.Buckets()
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		fmt.Fprintln(w, "(empty histogram)")
		return
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(float64(c)/float64(max)*float64(width))+1)
		fmt.Fprintf(w, "%12.3g %-4s %6d %s\n", ups[i], unit, c, bar)
	}
}
