package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSketchMerge decodes arbitrary bytes into float64 observations, splits
// them three ways at fuzzer-chosen points, and checks the sketch's
// contracts on whatever multiset falls out: merge is associative with
// bit-identical quantiles, observation and dropped counts are conserved,
// quantiles are monotone and clamped to [Min, Max], the collapsed error
// bound holds for positive finite data, and nothing panics — including on
// NaN/Inf payloads, denormals, negative zero, and values near 2^53.
func FuzzSketchMerge(f *testing.F) {
	enc := func(vs ...float64) []byte {
		b := make([]byte, 8*len(vs))
		for i, v := range vs {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(enc(1, 2, 3, 4, 5), uint8(2), uint8(4), uint8(0))
	f.Add(enc(0.042, 0.042, 0.042, 0.042), uint8(1), uint8(2), uint8(1))
	f.Add(enc(math.NaN(), math.Inf(1), math.Inf(-1), 1), uint8(1), uint8(3), uint8(0))
	f.Add(enc(1e-4, 10, 1e-4, 10, 1e-4, 10), uint8(3), uint8(3), uint8(2))
	f.Add(enc(-5, -1, 0, math.Copysign(0, -1), 5e-13, 1), uint8(2), uint8(4), uint8(1))
	f.Add(enc(math.Exp2(53), math.Exp2(53)+1024, math.Exp2(53)-1024), uint8(1), uint8(2), uint8(1))
	f.Add(enc(5e-324, math.MaxFloat64, 1), uint8(1), uint8(2), uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, split1, split2, capSel uint8) {
		var xs []float64
		for i := 0; i+8 <= len(data) && len(xs) < 4096; i += 8 {
			xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		}
		if len(xs) == 0 {
			return
		}
		exactCap := []int{0, 1, 4, 64}[int(capSel)%4]
		a := int(split1) % (len(xs) + 1)
		b := a + int(split2)%(len(xs)-a+1)
		chunks := [][]float64{xs[:a], xs[a:b], xs[b:]}

		mk := func(vals []float64) *Sketch {
			s := NewSketchAccuracy(0, exactCap)
			for _, v := range vals {
				s.Add(v)
			}
			return s
		}

		whole := mk(xs)

		// Associativity: ((c0·c1)·c2) vs (c0·(c1·c2)).
		left := mk(chunks[0])
		left.Merge(mk(chunks[1]))
		left.Merge(mk(chunks[2]))
		bc := mk(chunks[1])
		bc.Merge(mk(chunks[2]))
		right := mk(chunks[0])
		right.Merge(bc)

		var finite, dropped int64
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				dropped++
			} else {
				finite++
			}
		}
		for _, s := range []*Sketch{whole, left, right} {
			if s.N() != finite || s.Dropped() != dropped {
				t.Fatalf("count drift: N=%d dropped=%d want %d/%d", s.N(), s.Dropped(), finite, dropped)
			}
		}

		probes := []float64{0, 0.01, 0.5, 0.99, 1}
		for _, q := range probes {
			l, r := left.Quantile(q), right.Quantile(q)
			if math.Float64bits(l) != math.Float64bits(r) {
				t.Fatalf("merge not associative at q=%v: %v != %v", q, l, r)
			}
		}

		if finite == 0 {
			return
		}
		// Monotone and inside [Min, Max] up to interpolation rounding: the
		// exact regime reproduces Sample's a*(1-f)+a*f arithmetic, which can
		// land an ulp below a, so the invariants hold to ~1e-12 relative,
		// not bit-exactly.
		ulps := func(v float64) float64 { return math.Abs(v) * 1e-12 }
		for _, s := range []*Sketch{whole, left} {
			prev := math.Inf(-1)
			for _, q := range probes {
				v := s.Quantile(q)
				if math.IsNaN(v) {
					t.Fatalf("NaN quantile with %d finite observations", finite)
				}
				if v < prev-ulps(prev) {
					t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
				}
				if v < s.Min()-ulps(s.Min()) || v > s.Max()+ulps(s.Max()) {
					t.Fatalf("quantile %v outside [%v, %v]", v, s.Min(), s.Max())
				}
				prev = v
			}
		}
		// Error bound on positive data inside [SketchMinValue,
		// SketchMaxValue], the range the documented guarantee covers.
		allPositive := true
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && (v < SketchMinValue || v > SketchMaxValue) {
				allPositive = false
				break
			}
		}
		if allPositive {
			var fs []float64
			for _, v := range xs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					fs = append(fs, v)
				}
			}
			alpha := whole.Accuracy()
			for _, q := range probes {
				got := whole.Quantile(q)
				want := exactQuantile(fs, q)
				if math.Abs(got-want) > alpha*want*(1+1e-9) {
					t.Fatalf("q=%v: got %v want %v (bound %v)", q, got, want, alpha)
				}
			}
		}
	})
}
