package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Add(v)
	}
	ups, counts := h.Buckets()
	// Buckets: <=1, <=10, <=100, <=1000.
	if len(counts) < 4 {
		t.Fatalf("buckets = %d", len(counts))
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("counts = %v (ups %v)", counts, ups)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2)
	for i := 0; i < 100; i++ {
		h.Add(float64(i + 1))
	}
	// The 100th value (100) lands in the bucket with upper bound 128.
	if q := h.Quantile(1.0); q != 128 {
		t.Fatalf("p100 = %v", q)
	}
	if q := h.Quantile(0.5); q > 64 || q < 32 {
		t.Fatalf("p50 = %v", q)
	}
	var empty Histogram
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0.001, 10)
	for i := 0; i < 10; i++ {
		h.Add(0.01)
	}
	h.Add(1)
	var sb strings.Builder
	h.Render(&sb, "ms", 20)
	out := sb.String()
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("render output:\n%s", out)
	}
	var e Histogram
	sb.Reset()
	e.Render(&sb, "ms", 0)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty render missing placeholder")
	}
}

func TestHistogramDegenerateParams(t *testing.T) {
	h := NewHistogram(-1, 0.5)
	h.Add(1)
	if h.Base <= 0 || h.Factor <= 1 {
		t.Fatal("degenerate params not corrected")
	}
}

// Property: quantile bound is conservative — at least q of the mass lies at
// or below it — and total matches the adds.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint32, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1, 2)
		for _, r := range raw {
			h.Add(float64(r%100_000) + 0.5)
		}
		q := float64(qRaw%101) / 100
		bound := h.Quantile(q)
		var below int64
		for _, r := range raw {
			if float64(r%100_000)+0.5 <= bound {
				below++
			}
		}
		return float64(below) >= q*float64(len(raw))-1e-9 && h.Total() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
