package fluid

import (
	"fmt"

	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/topo"
)

// maxPathLinks is the longest path in a three-tier fat-tree: host uplink,
// ToR uplink, agg uplink, core downlink, agg downlink, host downlink.
const maxPathLinks = 6

// pathRef is one directed path through the fabric, as the ordered list of
// link IDs it traverses.
type pathRef struct {
	links [maxPathLinks]int32
	n     int8
}

// Net is the fluid engine's view of a fat-tree: every directed link's
// capacity, addressed by a dense link ID, plus the arithmetic to reproduce
// the packet engine's ECMP path draws without building switches.
//
// Link ID layout (H hosts, P pods, T ToRs/pod, A aggs/pod, K core
// uplinks/agg):
//
//	hostUp[h]   = h                     host NIC egress (unbounded, unmarked)
//	hostDown[h] = H + h                 ToR egress port toward host h
//	torUp[t,a]  = 2H + (pod*T+t)*A + a  ToR t's uplink to agg a
//	aggDown     = torUp base + P*T*A    agg a's downlink to ToR t (same index)
//	aggUp[a,k]  = aggDown base + P*T*A indexed (pod*A+a)*K + k
//	coreDown    = aggUp base + P*A*K    core's downlink to (pod, a, k)
//
// Every link except a host's own NIC egress is a switch egress port: it has
// the DCTCP marking threshold and contributes to FlowBender's congestion
// signal. The host NIC queue is unbounded and never marks (see netsim.Host),
// so hostUp links are excluded from the marking estimate.
type Net struct {
	p topo.Params

	hosts   int
	nLinks  int
	caps    []float64 // bits/sec per link
	marking []bool    // link is a marking (switch-egress) queue

	// Per-switch ECMP hash salts, derived from the same node IDs the live
	// fat-tree assigns (hosts first, then per-pod ToRs and aggs, then cores),
	// so PathKeyHash draws land on the identical ports.
	torSalt []uint64 // indexed pod*T + t
	aggSalt []uint64 // indexed pod*A + a
}

// NewNet builds the fluid link model for one fat-tree parameterization.
func NewNet(p topo.Params) *Net {
	if p.Pods < 2 || p.TorsPerPod < 1 || p.AggsPerPod < 1 || p.ServersPerTor < 1 || p.CoreUplinksPerAgg < 1 {
		panic(fmt.Sprintf("fluid: degenerate topology %+v", p))
	}
	h := p.NumHosts()
	pods, t, a, k := p.Pods, p.TorsPerPod, p.AggsPerPod, p.CoreUplinksPerAgg
	n := &Net{p: p, hosts: h}
	n.nLinks = 2*h + 2*pods*t*a + 2*pods*a*k
	n.caps = make([]float64, n.nLinks)
	n.marking = make([]bool, n.nLinks)

	access := float64(p.LinkRateBps)
	torAgg := float64(p.TorAggRateBps())
	for i := 0; i < h; i++ {
		n.caps[i] = access   // hostUp: NIC egress, never marks
		n.caps[h+i] = access // hostDown: ToR egress port
		n.marking[h+i] = true
	}
	base := 2 * h
	for i := 0; i < pods*t*a; i++ {
		n.caps[base+i] = torAgg // torUp
		n.marking[base+i] = true
		n.caps[base+pods*t*a+i] = torAgg // aggDown
		n.marking[base+pods*t*a+i] = true
	}
	base += 2 * pods * t * a
	for i := 0; i < pods*a*k; i++ {
		n.caps[base+i] = access // aggUp
		n.marking[base+i] = true
		n.caps[base+pods*a*k+i] = access // coreDown
		n.marking[base+pods*a*k+i] = true
	}

	// Node IDs replicate topo.NewFatTree's assignment: hosts 0..H-1, then
	// per pod T ToRs followed by A aggs, then the cores.
	n.torSalt = make([]uint64, pods*t)
	n.aggSalt = make([]uint64, pods*a)
	for pod := 0; pod < pods; pod++ {
		for ti := 0; ti < t; ti++ {
			id := netsim.NodeID(h + pod*(t+a) + ti)
			n.torSalt[pod*t+ti] = routing.NodeSalt(id)
		}
		for ai := 0; ai < a; ai++ {
			id := netsim.NodeID(h + pod*(t+a) + t + ai)
			n.aggSalt[pod*a+ai] = routing.NodeSalt(id)
		}
	}
	return n
}

// Params returns the topology the net was built for.
func (n *Net) Params() topo.Params { return n.p }

// Hosts returns the number of servers.
func (n *Net) Hosts() int { return n.hosts }

// Links returns the number of directed links.
func (n *Net) Links() int { return n.nLinks }

func (n *Net) hostUp(h int32) int32   { return h }
func (n *Net) hostDown(h int32) int32 { return int32(n.hosts) + h }
func (n *Net) torUp(tor, a int32) int32 {
	return int32(2*n.hosts) + tor*int32(n.p.AggsPerPod) + a
}
func (n *Net) aggDown(tor, a int32) int32 {
	return n.torUp(tor, a) + int32(n.p.Pods*n.p.TorsPerPod*n.p.AggsPerPod)
}
func (n *Net) aggUp(pod, a, k int32) int32 {
	return int32(2*n.hosts+2*n.p.Pods*n.p.TorsPerPod*n.p.AggsPerPod) +
		(pod*int32(n.p.AggsPerPod)+a)*int32(n.p.CoreUplinksPerAgg) + k
}
func (n *Net) coreDown(pod, a, k int32) int32 {
	return n.aggUp(pod, a, k) + int32(n.p.Pods*n.p.AggsPerPod*n.p.CoreUplinksPerAgg)
}

// loc decomposes a host index into (pod, tor index within the fabric).
func (n *Net) loc(h int32) (pod, tor int32) {
	tor = h / int32(n.p.ServersPerTor)
	pod = tor / int32(n.p.TorsPerPod)
	return pod, tor
}

// buildPath assembles the directed path for an inter-ToR flow given the
// up-path draws (agg index a; core uplink k, ignored intra-pod).
func (n *Net) buildPath(dst *pathRef, src, dsth, a, k int32) {
	sPod, sTor := n.loc(src)
	dPod, dTor := n.loc(dsth)
	dst.n = 0
	add := func(l int32) { dst.links[dst.n] = l; dst.n++ }
	add(n.hostUp(src))
	if sTor == dTor {
		add(n.hostDown(dsth))
		return
	}
	add(n.torUp(sTor, a))
	if sPod != dPod {
		add(n.aggUp(sPod, a, k))
		add(n.coreDown(dPod, a, k))
	}
	add(n.aggDown(dTor, a))
	add(n.hostDown(dsth))
}

// singlePath computes the ECMP path a flow with the given hash prefix and
// path tag takes from src to dst — the identical draw the packet engine's
// routing.ECMP selector makes at each switch, because the hash, the salts,
// and the eligible-port ordering (uplinks in agg order at the ToR, core
// uplinks in k order at the agg) are replicated exactly.
func (n *Net) singlePath(dst *pathRef, prefix uint64, tag uint32, src, dsth int32) {
	sPod, sTor := n.loc(src)
	dPod, dTor := n.loc(dsth)
	if sTor == dTor {
		n.buildPath(dst, src, dsth, 0, 0)
		return
	}
	a := int32(routing.PathKeyHash(prefix, tag, n.torSalt[sTor]) % uint64(n.p.AggsPerPod))
	var k int32
	if sPod != dPod {
		k = int32(routing.PathKeyHash(prefix, tag, n.aggSalt[sPod*int32(n.p.AggsPerPod)+a]) % uint64(n.p.CoreUplinksPerAgg))
	}
	n.buildPath(dst, src, dsth, a, k)
}

// sprayPaths appends every distinct path from src to dst (one per (agg,
// core-uplink) pair inter-pod, one per agg intra-pod, one for same-ToR
// flows) — the fluid model of per-packet spraying, which spreads a flow's
// load evenly over all of them.
func (n *Net) sprayPaths(dst []pathRef, src, dsth int32) []pathRef {
	sPod, sTor := n.loc(src)
	dPod, dTor := n.loc(dsth)
	switch {
	case sTor == dTor:
		var pr pathRef
		n.buildPath(&pr, src, dsth, 0, 0)
		dst = append(dst, pr)
	case sPod == dPod:
		for a := int32(0); a < int32(n.p.AggsPerPod); a++ {
			var pr pathRef
			n.buildPath(&pr, src, dsth, a, 0)
			dst = append(dst, pr)
		}
	default:
		for a := int32(0); a < int32(n.p.AggsPerPod); a++ {
			for k := int32(0); k < int32(n.p.CoreUplinksPerAgg); k++ {
				var pr pathRef
				n.buildPath(&pr, src, dsth, a, k)
				dst = append(dst, pr)
			}
		}
	}
	return dst
}

// switches returns the number of switches a path of nl links crosses (every
// link lands on a switch except the last, which lands on the host).
func switches(nl int8) int { return int(nl) - 1 }

// owBase returns the constant part of a path's one-way latency: the two
// host processing delays plus per-switch forwarding delay. Serialization
// and queueing terms are added per-packet by the caller.
func (n *Net) owBase(nl int8) sim.Time {
	return 2*n.p.HostDelay + sim.Time(switches(nl))*n.p.SwitchDelay
}
