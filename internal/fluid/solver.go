package fluid

import "math"

// Session is one max-min player for the rate solver: the links it traverses
// and an upper rate cap in bits/sec (non-positive, NaN, or +Inf = uncapped).
type Session struct {
	Links []int32
	Cap   float64
}

// Waterfill computes the progressive-filling max-min fair allocation of the
// given link capacities among the sessions: the common water level rises
// until a link saturates or a session hits its cap; the sessions frozen
// there stop growing and the level keeps rising for the rest. The returned
// rates satisfy (up to float tolerance) the two defining properties the
// property tests pin:
//
//   - feasibility: on every link, the frozen rates sum to at most its
//     capacity;
//   - max-min fairness: every session is bottlenecked — it either runs at
//     its cap or traverses a saturated link on which no other session holds
//     a strictly larger rate.
//
// Capacities that are NaN or negative are treated as zero, +Inf as a very
// large finite capacity. Sessions with no links get their cap (or zero when
// uncapped: nothing constrains them, nothing carries them). The computation
// is deterministic: pure index-order arithmetic, no maps, no randomness.
//
// This convenience wrapper allocates; the engine drives the underlying
// waterfiller with reused arenas on every arrival/finish/reroute event.
func Waterfill(capacity []float64, sessions []Session) []float64 {
	var w waterfiller
	w.begin(capacity)
	for _, s := range sessions {
		w.add(s.Links, s.Cap)
	}
	w.solve()
	out := make([]float64, len(sessions))
	copy(out, w.rate)
	return out
}

// hugeCap stands in for an unbounded capacity or session cap: large enough
// to never bind in any realistic fabric, small enough to stay well inside
// float64 range under arithmetic.
const hugeCap = 1e30

// waterfiller is the reusable progressive-filling solver. Link-indexed
// state is generation-stamped so a solve touches only the links its
// sessions traverse — O(sessions x path length) per solve regardless of
// fabric size.
type waterfiller struct {
	caps []float64 // capacities, set by begin (caller-owned)

	// Link-indexed scratch, lazily sized to len(caps).
	remCap []float64
	nAct   []int32
	seen   []uint32 // generation stamp: link registered this solve
	bneck  []uint64 // iteration stamp: link is a bottleneck this iteration
	gen    uint32
	iter   uint64

	touched []int32

	// Flattened session storage: session s occupies linkOf[off[s]:off[s+1]].
	linkOf []int32
	off    []int32
	cap    []float64
	rate   []float64
	frozen []bool
}

// begin starts a new solve against the given capacities. The slice is read,
// never written.
func (w *waterfiller) begin(capacity []float64) {
	w.caps = capacity
	if len(w.remCap) < len(capacity) {
		w.remCap = make([]float64, len(capacity))
		w.nAct = make([]int32, len(capacity))
		w.seen = make([]uint32, len(capacity))
		w.bneck = make([]uint64, len(capacity))
	}
	w.gen++
	w.touched = w.touched[:0]
	w.linkOf = w.linkOf[:0]
	w.off = append(w.off[:0], 0)
	w.cap = w.cap[:0]
	w.rate = w.rate[:0]
	w.frozen = w.frozen[:0]
}

// add registers one session. Links outside [0, len(capacity)) are ignored
// (defensive: the fuzz target feeds arbitrary indices through sanitation).
func (w *waterfiller) add(links []int32, cap float64) {
	for _, l := range links {
		if l < 0 || int(l) >= len(w.caps) {
			continue
		}
		w.linkOf = append(w.linkOf, l)
	}
	w.off = append(w.off, int32(len(w.linkOf)))
	if cap <= 0 || math.IsNaN(cap) || math.IsInf(cap, 1) {
		cap = hugeCap
	}
	w.cap = append(w.cap, cap)
	w.rate = append(w.rate, 0)
	w.frozen = append(w.frozen, false)
}

func (w *waterfiller) links(s int) []int32 { return w.linkOf[w.off[s]:w.off[s+1]] }

// solve runs the water level up until every session is frozen.
func (w *waterfiller) solve() {
	ns := len(w.cap)
	unfrozen := 0
	for s := 0; s < ns; s++ {
		ls := w.links(s)
		if len(ls) == 0 {
			// Nothing constrains a linkless session; give it its cap (or
			// zero when it asked for "unbounded" — there is no meaningful
			// answer, and zero keeps feasibility trivially true).
			w.frozen[s] = true
			if w.cap[s] >= hugeCap {
				w.rate[s] = 0
			} else {
				w.rate[s] = w.cap[s]
			}
			continue
		}
		unfrozen++
		for _, l := range ls {
			if w.seen[l] != w.gen {
				w.seen[l] = w.gen
				c := w.caps[l]
				if c < 0 || math.IsNaN(c) {
					c = 0
				} else if math.IsInf(c, 1) || c > hugeCap {
					c = hugeCap
				}
				w.remCap[l] = c
				w.nAct[l] = 0
				w.touched = append(w.touched, l)
			}
			w.nAct[l]++
		}
	}

	for unfrozen > 0 {
		w.iter++
		// The next freezing level: the tightest link's equal share, or the
		// smallest unfrozen cap, whichever is lower.
		level := math.Inf(1)
		for _, l := range w.touched {
			if w.nAct[l] > 0 {
				if v := w.remCap[l] / float64(w.nAct[l]); v < level {
					level = v
				}
			}
		}
		for s := 0; s < ns; s++ {
			if !w.frozen[s] && w.cap[s] < level {
				level = w.cap[s]
			}
		}
		if level < 0 {
			level = 0
		}
		eps := level*1e-9 + 1e-15
		for _, l := range w.touched {
			if w.nAct[l] > 0 && w.remCap[l]/float64(w.nAct[l]) <= level+eps {
				w.bneck[l] = w.iter
			}
		}
		froze := false
		for s := 0; s < ns; s++ {
			if w.frozen[s] {
				continue
			}
			freezeAt := -1.0
			if w.cap[s] <= level+eps {
				freezeAt = w.cap[s]
			} else {
				for _, l := range w.links(s) {
					if w.bneck[l] == w.iter {
						freezeAt = level
						break
					}
				}
			}
			if freezeAt < 0 {
				continue
			}
			w.frozen[s] = true
			w.rate[s] = freezeAt
			unfrozen--
			froze = true
			for _, l := range w.links(s) {
				w.remCap[l] -= freezeAt
				if w.remCap[l] < 0 {
					w.remCap[l] = 0
				}
				w.nAct[l]--
			}
		}
		if !froze {
			// Numerical backstop: freeze everything left at the level. The
			// level construction always selects at least one session in
			// exact arithmetic, so this only guards float pathologies.
			for s := 0; s < ns; s++ {
				if !w.frozen[s] {
					w.frozen[s] = true
					w.rate[s] = level
				}
			}
			return
		}
	}
}

// util returns link l's utilization under the last solve: allocated rate
// over capacity, in [0, 1]. Links no session touched are idle.
func (w *waterfiller) util(l int32) float64 {
	if l < 0 || int(l) >= len(w.caps) || w.seen[l] != w.gen {
		return 0
	}
	c := w.caps[l]
	if c <= 0 {
		return 1
	}
	u := 1 - w.remCap[l]/c
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
