package fluid

import "flowbender/internal/sim"

// etaEntry is one heap slot: the crossing instant and the transfer it
// belongs to, packed together so a sift chain moves one 16-byte struct
// instead of touching parallel arrays.
type etaEntry struct {
	eta sim.Time
	id  int32
}

// etaHeap is an indexed binary min-heap over the running transfers' next
// threshold-crossing instants. It replaces the full active-set scan the
// engine used to pay on every event: re-aiming the single wake event is
// O(1) (peek) and an individual transfer's update is O(log n). Ties are
// broken by transfer index so the processing order — and with it the whole
// simulation — stays deterministic.
type etaHeap struct {
	es  []etaEntry
	pos []int32 // xfer index -> heap slot, -1 when absent
}

// ensure extends the index so xfer slots < n are addressable.
func (h *etaHeap) ensure(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
}

func (h *etaHeap) Len() int { return len(h.es) }

// Min returns the transfer with the earliest crossing. Caller checks Len.
func (h *etaHeap) Min() (int32, sim.Time) { return h.es[0].id, h.es[0].eta }

// Set inserts xi or updates its crossing instant.
func (h *etaHeap) Set(xi int32, t sim.Time) {
	if p := h.pos[xi]; p >= 0 {
		old := h.es[p].eta
		h.es[p].eta = t
		if t < old {
			h.up(p)
		} else if t > old {
			h.down(p)
		}
		return
	}
	p := int32(len(h.es))
	h.es = append(h.es, etaEntry{eta: t, id: xi})
	h.pos[xi] = p
	h.up(p)
}

// Remove drops xi if present.
func (h *etaHeap) Remove(xi int32) {
	p := h.pos[xi]
	if p < 0 {
		return
	}
	last := int32(len(h.es) - 1)
	h.pos[xi] = -1
	if p != last {
		h.es[p] = h.es[last]
		h.pos[h.es[p].id] = p
	}
	h.es = h.es[:last]
	if p < last {
		h.down(p)
		h.up(p)
	}
}

func (h *etaHeap) less(a, b etaEntry) bool {
	if a.eta != b.eta {
		return a.eta < b.eta
	}
	return a.id < b.id
}

func (h *etaHeap) up(p int32) {
	en := h.es[p]
	for p > 0 {
		parent := (p - 1) / 2
		if !h.less(en, h.es[parent]) {
			break
		}
		h.es[p] = h.es[parent]
		h.pos[h.es[p].id] = p
		p = parent
	}
	h.es[p] = en
	h.pos[en.id] = p
}

func (h *etaHeap) down(p int32) {
	n := int32(len(h.es))
	en := h.es[p]
	for {
		c := 2*p + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.less(h.es[r], h.es[c]) {
			c = r
		}
		if !h.less(h.es[c], en) {
			break
		}
		h.es[p] = h.es[c]
		h.pos[h.es[p].id] = p
		p = c
	}
	h.es[p] = en
	h.pos[en.id] = p
}
