package fluid

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"flowbender/internal/core"
	"flowbender/internal/netsim"
	"flowbender/internal/routing"
	"flowbender/internal/sim"
	"flowbender/internal/tcp"
	"flowbender/internal/topo"
)

// TestSinglePathMatchesPacketECMP drives the real fat-tree's ECMP selector
// with synthetic packets and checks that the fluid engine's arithmetic
// path draw lands on the identical (agg, core-uplink) pair for every
// (src, dst, flow, tag) probed — hash collisions and all. This is the
// contract that makes cross-engine comparisons meaningful: both engines
// put a given flow on the same path.
func TestSinglePathMatchesPacketECMP(t *testing.T) {
	for _, p := range []topo.Params{topo.TinyScale(), topo.SmallScale(), topo.PaperScale()} {
		p := p
		t.Run(fmt.Sprintf("hosts=%d", p.NumHosts()), func(t *testing.T) {
			eng := sim.NewEngine()
			ft := topo.NewFatTree(eng, p)
			net := NewNet(p)
			sel := routing.ECMP{}

			upTor := make([]int32, p.AggsPerPod)
			for a := range upTor {
				upTor[a] = int32(p.ServersPerTor + a)
			}
			upAgg := make([]int32, p.CoreUplinksPerAgg)
			for k := range upAgg {
				upAgg[k] = int32(p.TorsPerPod + k)
			}

			n := p.NumHosts()
			probes := 0
			for id := netsim.FlowID(1); id <= 50; id++ {
				src := int32((int(id) * 37) % n)
				dst := int32((int(id)*61 + 13) % n)
				if src == dst {
					continue
				}
				for _, tag := range []uint32{0, 1, 5} {
					srcPort, dstPort := tcp.PortsFor(id)
					prefix := FlowPrefix(src, dst, srcPort, dstPort)
					var got pathRef
					net.singlePath(&got, prefix, tag, src, dst)

					sPod, sTor, _ := ft.HostLoc(int(src))
					dPod, dTor, _ := ft.HostLoc(int(dst))
					var want pathRef
					if sPod == dPod && sTor == dTor {
						net.buildPath(&want, src, dst, 0, 0)
					} else {
						pkt := &netsim.Packet{
							Src: netsim.NodeID(src), Dst: netsim.NodeID(dst),
							SrcPort: srcPort, DstPort: dstPort,
							Proto: netsim.ProtoTCP, PathTag: tag,
						}
						tor := ft.Tors[sPod][sTor%p.TorsPerPod]
						aPort := sel.Select(tor, pkt, upTor)
						a := int32(aPort) - int32(p.ServersPerTor)
						var k int32
						if sPod != dPod {
							agg := ft.Aggs[sPod][a]
							kPort := sel.Select(agg, pkt, upAgg)
							k = int32(kPort) - int32(p.TorsPerPod)
						}
						net.buildPath(&want, src, dst, a, k)
					}
					if got != want {
						t.Fatalf("flow %d %d->%d tag %d: fluid path %v != packet path %v",
							id, src, dst, tag, got, want)
					}
					probes++
				}
			}
			if probes < 100 {
				t.Fatalf("only %d probes exercised", probes)
			}
		})
	}
}

// collectRuns runs a fixed flow set through a fluid Sim and returns the
// completions in order.
func runFluid(t *testing.T, cfg Config, arrivals func(s *Sim)) []Done {
	t.Helper()
	eng := sim.NewEngine()
	s := NewSim(eng, cfg)
	var out []Done
	s.OnDone = func(d Done) { out = append(out, d) }
	arrivals(s)
	eng.Run(10 * sim.Second)
	if s.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active at drain deadline", s.ActiveFlows())
	}
	return out
}

// TestSingleFlowFCT pins the FCT of one uncontended inter-pod flow against
// the hand-computed value: drain at access rate plus base latency plus
// per-hop store-and-forward of the final packet, no queueing anywhere.
func TestSingleFlowFCT(t *testing.T) {
	p := topo.TinyScale()
	done := runFluid(t, Config{Params: p}, func(s *Sim) {
		// Host 0 (pod 0) -> host 8 (pod 1): a 6-link inter-pod path.
		s.Arrive(1, 0, 8, 10000, 0)
	})
	if len(done) != 1 {
		t.Fatalf("got %d completions, want 1", len(done))
	}
	// 10000 B = 7 segments; wire = (10000 + 7*40)*8 = 82240 bits at 10G
	// -> 8224 ns drain. Base one-way: 2*20us + 5*1us = 45000 ns. Final
	// packet (1240+40)*8 = 10240 bits store-and-forwarded across torUp
	// (20G), aggUp, coreDown (10G), aggDown (20G), hostDown (10G) = 512 +
	// 1024 + 1024 + 512 + 1024 = 4096 ns. Total 57320 ns.
	want := sim.Time(57320)
	if d := done[0].FCT - want; d < -5 || d > 5 {
		t.Fatalf("solo FCT = %v, want %v (+-5ns)", done[0].FCT, want)
	}
	if done[0].ID != 1 || done[0].Size != 10000 {
		t.Fatalf("completion record %+v", done[0])
	}
}

// TestSlowStartRounds pins the slow-start budget machine: a 1 MB solo flow
// pauses through four doubling rounds before streaming, so its FCT is far
// above pure drain time but below two times it.
func TestSlowStartRounds(t *testing.T) {
	p := topo.TinyScale()
	done := runFluid(t, Config{Params: p}, func(s *Sim) {
		s.Arrive(1, 0, 8, 1_000_000, 0)
	})
	// Wire: (1e6 + 686*40)*8 = 8219520 bits -> 821.952 us pure drain.
	// Slow-start rounds 0..3 transmit 120k+240k+480k+960k bits gated on a
	// ~97.4 us RTT, then the window covers the bandwidth-delay product and
	// the remaining ~6.42 Mbit stream at line rate: about 1032 us before
	// the delivery tail.
	fct := done[0].FCT
	if fct < 1000*sim.Microsecond || fct > 1150*sim.Microsecond {
		t.Fatalf("1MB solo FCT = %v, want ~1.08ms (slow-start gated)", fct)
	}
}

// TestFairShareContention pins the solver wiring end to end: three
// same-ToR-pair elephants squeezed by one 20G ToR uplink... but ToR
// uplinks are chosen per flow by hash, so instead use many flows from the
// same source host, which serializes them at the 10G NIC: n flows of equal
// size started together finish in ~n times the solo drain.
func TestFairShareContention(t *testing.T) {
	p := topo.TinyScale()
	const nf = 4
	done := runFluid(t, Config{Params: p}, func(s *Sim) {
		for i := 0; i < nf; i++ {
			s.Arrive(netsim.FlowID(i+1), 0, 8, 100_000, 0)
		}
	})
	if len(done) != nf {
		t.Fatalf("got %d completions, want %d", len(done), nf)
	}
	// All four share host 0's NIC: aggregate 4*(100000+69*40)*8 =
	// 3288320 bits at 10G = 328.8 us, plus slow-start gating early on.
	last := done[len(done)-1].FCT
	if last < 320*sim.Microsecond || last > 450*sim.Microsecond {
		t.Fatalf("last of %d shared-NIC flows FCT = %v, want ~340-400us", nf, last)
	}
}

// TestReplicateFirstCopyWins checks RepFlow semantics: a replicated flow
// produces one completion, with the FCT of whichever copy finishes first,
// and both copies release their sessions.
func TestReplicateFirstCopyWins(t *testing.T) {
	p := topo.TinyScale()
	cfg := Config{Params: p, Replicate: true, ShortCutoff: math.MaxInt64}
	done := runFluid(t, cfg, func(s *Sim) {
		s.Arrive(1, 0, 8, 10000, 0)
	})
	if len(done) != 1 {
		t.Fatalf("got %d completions, want 1 (first copy wins)", len(done))
	}
	// The two copies share the source NIC at 5G each, so the winner drains
	// in twice the solo time: 16448 ns + the 49096 ns delivery tail — the
	// replication tax RepFlow pays on an idle fabric, in both engines.
	if d := done[0].FCT - 65544; d < -5 || d > 5 {
		t.Fatalf("replicated solo FCT = %v, want 65544ns", done[0].FCT)
	}
}

// TestSprayAggregatesPaths checks that a sprayed flow uses every inter-pod
// path: with the whole fabric to itself it still drains at access rate
// (the NIC binds), and with its source NIC shared against another flow it
// beats the single-path flow's completion.
func TestSpray(t *testing.T) {
	p := topo.TinyScale()
	cfg := Config{Params: p, Spray: true, ShortCutoff: math.MaxInt64}
	done := runFluid(t, cfg, func(s *Sim) {
		s.Arrive(1, 0, 8, 10000, 0)
	})
	if d := done[0].FCT - 57320; d < -5 || d > 5 {
		t.Fatalf("sprayed solo FCT = %v, want 57320ns (NIC-bound)", done[0].FCT)
	}
}

// TestFlowBenderReroutesUnderCongestion wires the full congestion loop:
// elephants colliding on a core uplink must see the marking signal and
// reroute, and solo flows must never reroute (no false congestion from
// access-limited full links).
func TestFlowBenderReroutesUnderCongestion(t *testing.T) {
	p := topo.TinyScale() // K=1: inter-pod collisions on an agg uplink are likely
	fb := &core.Config{T: 0.05, N: 1, RNG: sim.NewRNG(99)}

	solo := runFluid(t, Config{Params: p, FlowBender: fb}, func(s *Sim) {
		s.Arrive(1, 0, 8, 1_000_000, 0)
	})
	if solo[0].Reroutes != 0 {
		t.Fatalf("solo flow rerouted %d times; the marking model sees phantom congestion", solo[0].Reroutes)
	}

	// Everyone in pod 0 sends an elephant to pod 1: with 2 aggs and 1 core
	// uplink each, collisions are guaranteed and rerouting cannot fully
	// escape (TinyScale has only 2 inter-pod paths), so reroutes must
	// happen.
	fb2 := &core.Config{T: 0.05, N: 1, RNG: sim.NewRNG(99)}
	var total int64
	runs := runFluid(t, Config{Params: p, FlowBender: fb2}, func(s *Sim) {
		for i := 0; i < 8; i++ {
			s.Arrive(netsim.FlowID(i+1), int32(i), int32(8+i), 2_000_000, 0)
		}
	})
	for _, d := range runs {
		total += d.Reroutes
	}
	if total == 0 {
		t.Fatal("8 colliding elephants produced zero FlowBender reroutes")
	}
}

// digestDones folds a completion list into a stable hash.
func digestDones(dones []Done) uint64 {
	h := fnv.New64a()
	for _, d := range dones {
		fmt.Fprintf(h, "%d %d %d %d %d\n", d.ID, d.Size, d.FCT, d.Reroutes, d.UserTag)
	}
	return h.Sum64()
}

// fluidScenario runs a deterministic mixed workload and returns its digest.
func fluidScenario(t *testing.T) uint64 { return fluidScenarioShards(t, 0) }

// fluidScenarioShards is fluidScenario with the rate solver's
// component-parallel path engaged at the given worker count (dispatch
// threshold forced to 1 so even the steady state's small rounds go through
// the worker pool).
func fluidScenarioShards(t *testing.T, shards int) uint64 {
	p := topo.SmallScale()
	fb := &core.Config{T: 0.05, N: 1, RNG: sim.NewRNG(7)}
	rng := sim.NewRNG(1234).Fork("arrivals")
	eng := sim.NewEngine()
	s := NewSim(eng, Config{Params: p, FlowBender: fb, SolverShards: shards})
	if shards > 1 {
		s.inc.parThresh = 1
	}
	var dones []Done
	s.OnDone = func(d Done) { dones = append(dones, d) }
	at := sim.Time(0)
	for i := 0; i < 200; i++ {
		at += rng.Exp(20 * sim.Microsecond)
		id := netsim.FlowID(i + 1)
		src := int32(rng.Intn(p.NumHosts()))
		dst := int32(rng.IntnExcept(p.NumHosts(), int(src)))
		size := int64(1000 + rng.Intn(500_000))
		at, src, dst, size := at, src, dst, size
		eng.At(at, func() { s.Arrive(id, src, dst, size, int32(i%3)) })
	}
	eng.Run(10 * sim.Second)
	if len(dones) != 200 {
		t.Fatalf("completed %d of 200 flows", len(dones))
	}
	return digestDones(dones)
}

// fluidScenarioDigest is the pinned output of fluidScenario: the fluid
// engine is bit-deterministic, so any drift here is a regression. Refreshed
// intentionally only when the model itself changes.
//
// The same digest must come out at -parallel 1, 4, and 8 and under -race;
// TestFluidDeterminism runs the scenario concurrently with itself to prove
// runs don't share hidden state.
// Refreshed for the incremental solver (lazy per-transfer settling changes
// the float-rounding interleaving at the nanosecond level; the analytical
// bracket and fidelity tests bound the physical drift).
const fluidScenarioDigest uint64 = 0x97236d71fc3247cb

func TestFluidDeterminism(t *testing.T) {
	for i := 0; i < 3; i++ {
		t.Run(fmt.Sprintf("run%d", i), func(t *testing.T) {
			t.Parallel()
			if got := fluidScenario(t); got != fluidScenarioDigest {
				t.Fatalf("scenario digest %#x != pinned %#x", got, fluidScenarioDigest)
			}
		})
	}
}

// TestFluidDeterminismSolverShards pins the whole-simulation half of the
// parallel-solver contract: the scenario digest must come out identical
// with the component solve forced through 2, 4, and 8 workers. Together
// with TestSolverShardsBitIdentical (per-commit rate vectors) this is the
// "bit-identical at any shard count" guarantee, proven under -race in CI.
func TestFluidDeterminismSolverShards(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			t.Parallel()
			if got := fluidScenarioShards(t, shards); got != fluidScenarioDigest {
				t.Fatalf("shards=%d digest %#x != pinned %#x", shards, got, fluidScenarioDigest)
			}
		})
	}
}

// TestAnalyticalBrackets sanity-checks the M/G/1 twin: its lower bound sits
// below the fluid mean FCT of a light uniform workload, and its estimate
// stays finite and ordered in load.
func TestAnalyticalBrackets(t *testing.T) {
	p := topo.SmallScale()
	mean, m2 := 100_000.0, 100_000.0*100_000.0*2 // exp-ish second moment
	a1 := NewAnalytical(p, 0.1, mean, m2)
	a2 := NewAnalytical(p, 0.8, mean, m2)
	if a1.MeanFCTLower() <= 0 || a1.MeanFCT() < a1.MeanFCTLower() {
		t.Fatalf("lower bound broken: %v / %v", a1.MeanFCTLower(), a1.MeanFCT())
	}
	if a2.MeanFCT() <= a1.MeanFCT() {
		t.Fatalf("P-K wait not increasing in load: %v at 0.8 <= %v at 0.1", a2.MeanFCT(), a1.MeanFCT())
	}

	// Light fluid run vs the bound.
	rng := sim.NewRNG(5).Fork("arrivals")
	eng := sim.NewEngine()
	s := NewSim(eng, Config{Params: p})
	var sum float64
	var n int
	s.OnDone = func(d Done) { sum += float64(d.FCT); n++ }
	at := sim.Time(0)
	for i := 0; i < 100; i++ {
		at += rng.Exp(200 * sim.Microsecond)
		id := netsim.FlowID(i + 1)
		src := int32(rng.Intn(p.NumHosts()))
		dst := int32(rng.IntnExcept(p.NumHosts(), int(src)))
		at, src, dst := at, src, dst
		eng.At(at, func() { s.Arrive(id, src, dst, 100_000, 0) })
	}
	eng.Run(10 * sim.Second)
	fluidMean := sim.Time(sum / float64(n))
	bound := NewAnalytical(p, 0.05, 100_000, 100_000*100_000).MeanFCTLower()
	if fluidMean < bound {
		t.Fatalf("fluid mean FCT %v below the no-queueing analytical bound %v", fluidMean, bound)
	}
}
