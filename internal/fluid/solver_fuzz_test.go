package fluid

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFluidSolver decodes an arbitrary byte string into a fabric and a
// session set and checks that the solver terminates with a feasible
// max-min allocation. The decoding deliberately passes through hostile
// values — zero, negative, NaN, and infinite capacities, out-of-range link
// indices, empty sessions — because the solver's contract is to sanitize
// rather than crash.
//
// Encoding: [nLinks u8][nSessions u8] then per link a float32 capacity
// scale, then per session [nPaths u8][cap float32][links ...u8]. Truncated
// input pads with zeros.
func FuzzFluidSolver(f *testing.F) {
	f.Add([]byte{1, 3, 0x40, 0x40, 0x40, 0x40, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0})
	f.Add([]byte{4, 2, 0, 0, 0x80, 0x7f, 0, 0, 0xc0, 0x7f, 1, 1, 1, 1, 2, 0, 0, 0, 0, 0, 1, 3})
	f.Add([]byte{0, 5})
	f.Add([]byte{8, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := fuzzReader{data: data}
		nl := int(rd.u8()%16) + 1
		ns := int(rd.u8() % 16)
		caps := make([]float64, nl)
		for i := range caps {
			caps[i] = float64(rd.f32()) * 1e6
		}
		sessions := make([]Session, ns)
		for i := range sessions {
			np := int(rd.u8() % 6)
			cap := float64(rd.f32())
			links := make([]int32, np)
			for j := range links {
				// Unsanitized on purpose: indices may land outside [0, nl).
				links[j] = int32(rd.u8()) - 8
			}
			sessions[i] = Session{Links: links, Cap: cap}
		}
		rates := Waterfill(caps, sessions)
		for si, r := range rates {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("session %d: invalid rate %v", si, r)
			}
		}
		// Feasibility on in-range links (the certificate check's core).
		used := make([]float64, nl)
		for si, s := range sessions {
			for _, l := range s.Links {
				if l >= 0 && int(l) < nl {
					used[l] += rates[si]
				}
			}
		}
		for l, u := range used {
			c := caps[l]
			if c < 0 || math.IsNaN(c) {
				c = 0
			} else if math.IsInf(c, 1) || c > hugeCap {
				c = hugeCap
			}
			if u > c*(1+1e-6)+1e-9 {
				t.Fatalf("link %d over capacity: used %v > cap %v", l, u, c)
			}
		}
	})
}

// fuzzReader pulls fixed-width values off a byte string, padding with
// zeros past the end.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) u8() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) f32() float32 {
	var buf [4]byte
	for i := range buf {
		buf[i] = r.u8()
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
}
