package fluid

import (
	"math"
	"sync"
	"sync/atomic"
)

// sessBlock is the fixed number of link-entry slots reserved per session —
// the longest fat-tree path. Session s owns entries
// [s*sessBlock, s*sessBlock+sN[s]); the entry index doubles as the node id
// in each link's intrusive session list, so adding or removing a session
// never allocates.
const sessBlock = maxPathLinks

// markSatThresh is the utilization at which a link counts as saturated for
// the standing-queue model (identical to the packet-fidelity rule the full
// re-solve engine used: solver freezing levels put bottlenecked links
// numerically at 1, so this only rejects genuinely-below-capacity links).
const markSatThresh = 0.999

// parThreshDefault is the affected-set size below which the sharded solver
// stays serial: goroutine dispatch costs more than a small component solve.
// The threshold is a pure function of the affected set — never of the shard
// count — so the serial and parallel solvers make identical decisions and
// stay bit-identical.
const parThreshDefault = 256

// IncSolver is the incremental max-min rate solver: the same progressive
// waterfilling as Waterfill, but maintained as persistent state so that a
// flow add/remove/reroute only re-solves the bottleneck-connected component
// reachable from the touched links instead of the whole fabric.
//
// Sessions are slot-allocated structure-of-arrays records; each link keeps
// an intrusive doubly-linked list of the session entries crossing it.
// Mutations (Add/Remove/SetCap/SetLinks) are staged: they seed a dirty set
// and record, per touched link, whether it was saturated before the event.
// Commit then runs the dirty-set propagation:
//
//  1. re-waterfill the affected set A against the residual capacity left by
//     untouched outsiders (whose rates, by max-min uniqueness, cannot
//     change unless a rule below fires);
//  2. scan the touched links for outsiders that must join A —
//     J1 (shrink): the link is saturated and the outsider holds a rate
//     strictly above the largest new A-rate on it, so fairness entitles an
//     A-session to part of the outsider's share;
//     J2 (grow): the link was saturated before the event and the outsider
//     is below its cap, and the link either fell below saturation (freed
//     capacity) or now carries a strictly larger A-rate (headroom to equal
//     shares);
//  3. repeat until no outsider joins. Outsiders never scanned keep their
//     rates untouched — the bottleneck certificate that froze them is
//     undisturbed, which is exactly why the incremental answer equals a
//     from-scratch Waterfill (the property and fuzz tests pin this).
//
// Within a Commit, A splits into connected components (sessions joined by
// shared links); components are solved independently in first-appearance
// order. Because components are link-disjoint, solving them on parallel
// workers performs the identical floating-point arithmetic as solving them
// in sequence — results are bit-identical at any shard count, which the
// solver-shards digest test pins the way byteident pins the packet engine.
//
// The steady-state Commit path performs zero heap allocations: all
// link/session/scratch state lives in reusable arenas that only grow on
// first use. (The parallel dispatch path, when a large multi-component
// affected set engages it, spends a few allocations on goroutine bring-up.)
type IncSolver struct {
	// Link state.
	caps    []float64 // sanitized capacities: 0 <= c <= hugeCap
	rawCaps []float64 // caller capacities (serialization math wants them raw)
	marking []bool    // link can hold a visible standing queue; nil = none
	load    []float64 // sum of session rates crossing the link
	nOn     []int32   // entry count on the link (occurrences)
	head    []int32   // first intrusive-list entry, -1 when empty
	qCnt    []int32   // sessions whose standing-queue mark is this link

	// Per-commit link stamps.
	tStamp []uint32 // link touched (considered) this commit
	satB   []bool   // strictly saturated at first touch, before any mutation
	qSatB  []bool   // standing-queue-saturated (satMark) at first touch

	// Per-round link scratch, stamped by roundGen.
	wSeen  []uint32
	wRem   []float64
	wAct   []int32
	wBneck []uint64
	lmaxS  []uint32
	lmaxV  []float64
	compS  []uint32
	compOf []int32

	// Session state (slot-allocated; sLink holds sessBlock entries each).
	sCap   []float64
	sRate  []float64
	sN     []int8
	sAlive []bool
	sMark  []int32  // current standing-queue link, -1 when none
	sStamp []uint32 // session staged into A this commit
	mStamp []uint32 // mark-pass dedup this commit
	lStamp []uint32 // session's link set changed this commit
	sLink  []int32
	eNext  []int32
	ePrev  []int32
	freeS  []int32

	// Commit workspace.
	gen        uint32
	roundGen   uint32
	pending    bool
	considered []int32
	inA        []int32 // affected sessions, in staging/join order
	aRate      []float64
	aFrozen    []bool

	// Component-split scratch (per solve round).
	ufParent []int32
	posComp  []int32
	rootComp []int32
	compCnt  []int32
	compSess []int32
	compOffs []int32
	compLOff []int32
	compLink []int32

	iterCtr atomic.Uint64 // globally unique bottleneck-iteration tags

	shards    int // max parallel workers for the component solve; <=1 serial
	parThresh int // test override for parThreshDefault; 0 = default

}

// Reset initializes the solver for the given link capacities, dropping any
// previous sessions. marking flags the links that can hold a visible
// standing queue (nil for none). Arenas are retained across Resets.
func (is *IncSolver) Reset(capacity []float64, marking []bool) {
	n := len(capacity)
	is.rawCaps = capacity
	is.marking = marking
	is.caps = grown(is.caps, n)
	for i, c := range capacity {
		if c < 0 || math.IsNaN(c) {
			c = 0
		} else if math.IsInf(c, 1) || c > hugeCap {
			c = hugeCap
		}
		is.caps[i] = c
	}
	is.load = grown(is.load, n)
	is.nOn = grown(is.nOn, n)
	is.head = grown(is.head, n)
	is.qCnt = grown(is.qCnt, n)
	is.tStamp = grown(is.tStamp, n)
	is.satB = grown(is.satB, n)
	is.qSatB = grown(is.qSatB, n)
	is.wSeen = grown(is.wSeen, n)
	is.wRem = grown(is.wRem, n)
	is.wAct = grown(is.wAct, n)
	is.wBneck = grown(is.wBneck, n)
	is.lmaxS = grown(is.lmaxS, n)
	is.lmaxV = grown(is.lmaxV, n)
	is.compS = grown(is.compS, n)
	is.compOf = grown(is.compOf, n)
	for i := 0; i < n; i++ {
		is.load[i] = 0
		is.nOn[i] = 0
		is.head[i] = -1
		is.qCnt[i] = 0
		is.tStamp[i] = 0
		is.wSeen[i] = 0
		is.lmaxS[i] = 0
		is.compS[i] = 0
	}
	is.sCap = is.sCap[:0]
	is.sRate = is.sRate[:0]
	is.sN = is.sN[:0]
	is.sAlive = is.sAlive[:0]
	is.sMark = is.sMark[:0]
	is.sStamp = is.sStamp[:0]
	is.mStamp = is.mStamp[:0]
	is.lStamp = is.lStamp[:0]
	is.sLink = is.sLink[:0]
	is.eNext = is.eNext[:0]
	is.ePrev = is.ePrev[:0]
	is.freeS = is.freeS[:0]
	is.gen = 0
	is.roundGen = 0
	is.pending = false
	is.considered = is.considered[:0]
	is.inA = is.inA[:0]
	if is.shards == 0 {
		is.shards = 1
	}
}

// SetShards sets the maximum number of parallel workers the component solve
// may use. 0 or 1 keeps every solve serial. Results are bit-identical at
// any value.
func (is *IncSolver) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	is.shards = n
}

// Links returns the number of links the solver was Reset with.
func (is *IncSolver) Links() int { return len(is.caps) }

// Sessions returns the session slot count (high-water, including free slots).
func (is *IncSolver) Sessions() int { return len(is.sCap) }

// Pending reports whether staged mutations await a Commit.
func (is *IncSolver) Pending() bool { return is.pending }

// Rate returns session s's rate as of the last Commit.
func (is *IncSolver) Rate(s int32) float64 { return is.sRate[s] }

// Queued reports whether link l holds a standing queue as of the last
// Commit: at least one session's first saturated link is l and l is a
// marking (switch-egress) queue.
func (is *IncSolver) Queued(l int32) bool { return is.qCnt[l] > 0 }

// Load returns the total allocated rate crossing link l.
func (is *IncSolver) Load(l int32) float64 { return is.load[l] }

// Affected returns the sessions whose rates the last Commit re-solved, in
// deterministic staging/join order. Valid until the next staged mutation.
func (is *IncSolver) Affected() []int32 { return is.inA }

// stage opens a staging window: the first mutation after a Commit advances
// the commit generation and clears the workspaces.
func (is *IncSolver) stage() {
	if is.pending {
		return
	}
	is.pending = true
	is.gen++
	if is.gen == 0 { // uint32 wrap: invalidate every stamped array
		for i := range is.tStamp {
			is.tStamp[i] = 0
		}
		for i := range is.sStamp {
			is.sStamp[i] = 0
			is.mStamp[i] = 0
			is.lStamp[i] = 0
		}
		is.gen = 1
	}
	is.considered = is.considered[:0]
	is.inA = is.inA[:0]
}

// touchLink marks l considered this commit, capturing its pre-event
// saturation state the first time. Loads only ever change on touched links,
// so a first touch always observes the pre-commit load.
func (is *IncSolver) touchLink(l int32) {
	if is.tStamp[l] == is.gen {
		return
	}
	is.tStamp[l] = is.gen
	c := is.caps[l]
	ld := is.load[l]
	is.satB[l] = ld >= c-(c*1e-9+1e-6)
	is.qSatB[l] = c <= 0 || ld >= markSatThresh*c
	is.considered = append(is.considered, l)
}

// stageSession puts session s into the affected set (once per commit).
func (is *IncSolver) stageSession(s int32) {
	if is.sStamp[s] == is.gen {
		return
	}
	is.sStamp[s] = is.gen
	is.inA = append(is.inA, s)
}

// strictSat is the solver-tolerance saturation test driving the join rules.
func (is *IncSolver) strictSat(l int32) bool {
	c := is.caps[l]
	return is.load[l] >= c-(c*1e-9+1e-6)
}

// satMark is the looser standing-queue saturation test (same threshold the
// full re-solve engine used for its first-saturated-link rule).
func (is *IncSolver) satMark(l int32) bool {
	c := is.caps[l]
	if c <= 0 {
		return true
	}
	return is.load[l] >= markSatThresh*c
}

// rateEps is the join-rule comparison slack: strict inequalities on rates
// are taken up to relative 1e-9 (plus an absolute floor far below 1 bit/s).
func rateEps(v float64) float64 { return v*1e-9 + 1e-6 }

// Add registers a session over the given links (entries beyond sessBlock
// in-range links are ignored; out-of-range links are skipped, matching
// Waterfill) with the given rate cap (non-positive, NaN or +Inf =
// uncapped). The session's rate is 0 until the next Commit.
func (is *IncSolver) Add(links []int32, cap float64) int32 {
	is.stage()
	s := is.allocSession()
	if cap <= 0 || math.IsNaN(cap) || math.IsInf(cap, 1) {
		cap = hugeCap
	}
	is.sCap[s] = cap
	is.sRate[s] = 0
	is.sAlive[s] = true
	is.sMark[s] = -1
	is.sN[s] = 0
	is.linkAll(s, links)
	is.stageSession(s)
	return s
}

// linkAll inserts session s's entries into its links' intrusive lists and
// touches each link.
func (is *IncSolver) linkAll(s int32, links []int32) {
	is.lStamp[s] = is.gen
	base := int32(s) * sessBlock
	for _, l := range links {
		if l < 0 || int(l) >= len(is.caps) {
			continue
		}
		if is.sN[s] == sessBlock {
			break
		}
		e := base + int32(is.sN[s])
		is.sLink[e] = l
		is.eNext[e] = is.head[l]
		is.ePrev[e] = -1
		if is.head[l] >= 0 {
			is.ePrev[is.head[l]] = e
		}
		is.head[l] = e
		is.nOn[l]++
		is.sN[s]++
		is.touchLink(l)
	}
}

// unlinkAll removes session s's entries from their links, touching each and
// returning its allocated rate to the links' residual capacity.
func (is *IncSolver) unlinkAll(s int32) {
	is.lStamp[s] = is.gen
	base := int32(s) * sessBlock
	r := is.sRate[s]
	for j := int8(0); j < is.sN[s]; j++ {
		e := base + int32(j)
		l := is.sLink[e]
		is.touchLink(l)
		if is.ePrev[e] >= 0 {
			is.eNext[is.ePrev[e]] = is.eNext[e]
		} else {
			is.head[l] = is.eNext[e]
		}
		if is.eNext[e] >= 0 {
			is.ePrev[is.eNext[e]] = is.ePrev[e]
		}
		is.nOn[l]--
		if is.nOn[l] == 0 {
			is.load[l] = 0 // empty link: kill accumulated float drift exactly
		} else if is.load[l] -= r; is.load[l] < 0 {
			is.load[l] = 0
		}
	}
	is.sN[s] = 0
}

// Remove retires a session, freeing its capacity for outsiders at the next
// Commit. The slot is recycled.
func (is *IncSolver) Remove(s int32) {
	is.stage()
	is.unlinkAll(s)
	if is.sMark[s] >= 0 {
		is.qCnt[is.sMark[s]]--
		is.sMark[s] = -1
	}
	is.sAlive[s] = false
	is.sRate[s] = 0
	is.freeS = append(is.freeS, s)
}

// SetCap restages session s with a new rate cap.
func (is *IncSolver) SetCap(s int32, cap float64) {
	if cap <= 0 || math.IsNaN(cap) || math.IsInf(cap, 1) {
		cap = hugeCap
	}
	if cap == is.sCap[s] {
		return
	}
	is.stage()
	is.sCap[s] = cap
	base := int32(s) * sessBlock
	for j := int8(0); j < is.sN[s]; j++ {
		is.touchLink(is.sLink[base+int32(j)])
	}
	is.stageSession(s)
}

// SetLinks moves session s onto a new path (a reroute): its rate is
// returned to the old links and the session re-enters the solve from zero
// on the new ones.
func (is *IncSolver) SetLinks(s int32, links []int32) {
	is.stage()
	is.unlinkAll(s)
	is.sRate[s] = 0
	is.linkAll(s, links)
	if is.sN[s] == 0 && is.sMark[s] >= 0 {
		// No surviving in-range links: the mark pass will never visit the
		// session again, so clear its standing-queue mark now.
		is.qCnt[is.sMark[s]]--
		is.sMark[s] = -1
	}
	is.stageSession(s)
}

// Commit solves the staged mutations: dirty-set propagation, the component
// solve, and the standing-queue mark pass. No-op when nothing is staged.
func (is *IncSolver) Commit() {
	if !is.pending {
		return
	}
	// Drop sessions that were staged and then removed within this window.
	w := 0
	for _, s := range is.inA {
		if is.sAlive[s] {
			is.inA[w] = s
			w++
		}
	}
	is.inA = is.inA[:w]

	for {
		is.bumpRound()
		if len(is.inA) > 0 {
			is.solveRound()
		}
		if !is.joinScan() {
			break
		}
	}
	is.markPass()
	is.pending = false
}

// bumpRound advances the per-round link-scratch generation.
func (is *IncSolver) bumpRound() {
	is.roundGen++
	if is.roundGen == 0 {
		for i := range is.wSeen {
			is.wSeen[i] = 0
			is.lmaxS[i] = 0
			is.compS[i] = 0
		}
		is.roundGen = 1
	}
}

// solveRound re-waterfills the current affected set: split into connected
// components, solve each against the outsiders' residual capacity, then
// apply the new rates to the shared load/lmax state.
func (is *IncSolver) solveRound() {
	n := len(is.inA)
	rg := is.roundGen

	// Fast path for the steady state's dominant case: a single affected
	// session is trivially one component, so the whole union-find, component
	// numbering, and per-link scratch machinery reduces to "take the minimum
	// residual over the session's links". The arithmetic below replays the
	// general path's exactly — wRem[l] = (caps-load)+sRate built in the same
	// association, wRem/1 skipped as IEEE-exact, the same eps policy, the
	// same apply — so every digest is bit-identical to the scaffolded route.
	// A duplicated link on the path (raw Add API only) needs wAct and falls
	// through to the general machinery.
	if n == 1 {
		s := is.inA[0]
		nl := int32(is.sN[s])
		base := int32(s) * sessBlock
		dup := false
		for a := int32(1); a < nl; a++ {
			for b := int32(0); b < a; b++ {
				if is.sLink[base+a] == is.sLink[base+b] {
					dup = true
				}
			}
		}
		if !dup {
			r0 := is.sRate[s]
			cp := is.sCap[s]
			var nr float64
			if nl == 0 {
				if cp < hugeCap {
					nr = cp
				}
			} else {
				level := math.Inf(1)
				for j := int32(0); j < nl; j++ {
					l := is.sLink[base+j]
					if rem := is.caps[l] - is.load[l] + r0; rem < level {
						level = rem
					}
				}
				if cp < level {
					level = cp
				}
				if level < 0 {
					level = 0
				}
				eps := level*1e-9 + 1e-15
				if cp <= level+eps {
					nr = cp
				} else {
					nr = level
				}
			}
			for j := int32(0); j < nl; j++ {
				l := is.sLink[base+j]
				if is.load[l] += nr - r0; is.load[l] < 0 {
					is.load[l] = 0
				}
				is.lmaxS[l] = rg
				is.lmaxV[l] = nr
			}
			is.sRate[s] = nr
			return
		}
	}

	// Union-find the affected sessions into link-connected components.
	is.ufParent = grown(is.ufParent, n)
	for i := 0; i < n; i++ {
		is.ufParent[i] = int32(i)
	}
	for i := 0; i < n; i++ {
		s := is.inA[i]
		base := int32(s) * sessBlock
		for j := int8(0); j < is.sN[s]; j++ {
			l := is.sLink[base+int32(j)]
			if is.compS[l] != rg {
				is.compS[l] = rg
				is.compOf[l] = int32(i)
				continue
			}
			ra, rb := ufFind(is.ufParent, int32(i)), ufFind(is.ufParent, is.compOf[l])
			if ra != rb {
				if ra < rb {
					is.ufParent[rb] = ra
				} else {
					is.ufParent[ra] = rb
				}
			}
		}
	}

	// Number components by first appearance in A order; group A positions.
	is.posComp = grown(is.posComp, n)
	is.rootComp = grown(is.rootComp, n)
	for i := 0; i < n; i++ {
		is.rootComp[i] = -1
	}
	ncomp := 0
	for i := 0; i < n; i++ {
		r := ufFind(is.ufParent, int32(i))
		if is.rootComp[r] < 0 {
			is.rootComp[r] = int32(ncomp)
			ncomp++
		}
		is.posComp[i] = is.rootComp[r]
	}
	is.compCnt = grown(is.compCnt, ncomp)
	for c := 0; c < ncomp; c++ {
		is.compCnt[c] = 0
	}
	for i := 0; i < n; i++ {
		is.compCnt[is.posComp[i]]++
	}
	is.compOffs = grown(is.compOffs, ncomp+1)
	is.compLOff = grown(is.compLOff, ncomp+1)
	is.compOffs[0], is.compLOff[0] = 0, 0
	for c := 0; c < ncomp; c++ {
		is.compOffs[c+1] = is.compOffs[c] + is.compCnt[c]
		is.compLOff[c+1] = is.compLOff[c] + is.compCnt[c]*sessBlock
	}
	is.compSess = grown(is.compSess, n)
	is.compLink = grown(is.compLink, n*sessBlock)
	for c := 0; c < ncomp; c++ {
		is.compCnt[c] = is.compOffs[c] // reuse as fill cursor
	}
	for i := 0; i < n; i++ {
		c := is.posComp[i]
		is.compSess[is.compCnt[c]] = int32(i)
		is.compCnt[c]++
	}

	is.aRate = grown(is.aRate, n)
	is.aFrozen = grown(is.aFrozen, n)

	// Solve the components — serial, or on a small worker pool when the
	// affected set is large. Components are link-disjoint, so both paths
	// perform the identical arithmetic and produce bit-identical rates.
	thresh := is.parThresh
	if thresh == 0 {
		thresh = parThreshDefault
	}
	if is.shards > 1 && ncomp > 1 && n >= thresh {
		is.solveCompsParallel(ncomp)
	} else {
		for c := 0; c < ncomp; c++ {
			is.solveComp(c)
		}
	}

	is.applyRates(rg)
}

// applyRates folds the round's new rates into the shared link loads and
// records the per-link maximum new A-rate for the join scan.
func (is *IncSolver) applyRates(rg uint32) {
	n := len(is.inA)
	for i := 0; i < n; i++ {
		s := is.inA[i]
		nr := is.aRate[i]
		or := is.sRate[s]
		base := int32(s) * sessBlock
		for j := int8(0); j < is.sN[s]; j++ {
			l := is.sLink[base+int32(j)]
			is.load[l] += nr - or
			if is.load[l] < 0 {
				is.load[l] = 0
			}
			if is.lmaxS[l] != rg {
				is.lmaxS[l] = rg
				is.lmaxV[l] = nr
			} else if nr > is.lmaxV[l] {
				is.lmaxV[l] = nr
			}
		}
		is.sRate[s] = nr
	}
}

// solveCompsParallel fans the round's components out over a small worker
// pool. It lives in its own (noinline-by-closure) function so the goroutine
// captures never force the serial path's locals onto the heap: the
// steady-state serial solve stays allocation-free.
func (is *IncSolver) solveCompsParallel(ncomp int) {
	workers := is.shards
	if workers > ncomp {
		workers = ncomp
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= ncomp {
					return
				}
				is.solveComp(c)
			}
		}()
	}
	wg.Wait()
}

// ufFind is find-with-path-halving over the round's union-find forest.
func ufFind(p []int32, x int32) int32 {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// solveComp progressive-fills one affected component against the residual
// capacity its links have left after the untouched outsiders. The loop body
// mirrors waterfiller.solve exactly — same level construction, same epsilon
// policy, same numerical backstop — so the incremental solver inherits the
// reference solver's arithmetic.
func (is *IncSolver) solveComp(c int) {
	rg := is.roundGen
	sess := is.compSess[is.compOffs[c]:is.compOffs[c+1]]
	// Three-index slice: the append below must stay inside this component's
	// region of the shared arena — components solve concurrently.
	links := is.compLink[is.compLOff[c]:is.compLOff[c]:is.compLOff[c+1]]

	unfrozen := 0
	for _, ai := range sess {
		s := is.inA[ai]
		if is.sN[s] == 0 {
			is.aFrozen[ai] = true
			if is.sCap[s] >= hugeCap {
				is.aRate[ai] = 0
			} else {
				is.aRate[ai] = is.sCap[s]
			}
			continue
		}
		is.aFrozen[ai] = false
		is.aRate[ai] = 0
		unfrozen++
		base := int32(is.inA[ai]) * sessBlock
		for j := int8(0); j < is.sN[s]; j++ {
			l := is.sLink[base+int32(j)]
			if is.wSeen[l] != rg {
				is.wSeen[l] = rg
				is.wRem[l] = is.caps[l] - is.load[l]
				is.wAct[l] = 0
				links = append(links, l)
			}
			// Give this member's current holding back: the component solves
			// against capacity net of outsiders only.
			is.wRem[l] += is.sRate[s]
			is.wAct[l]++
		}
	}

	// Single-session shortcut for the dominant steady-state component. With
	// one member, every member link has wAct == 1 (wRem/1 is IEEE-exact), the
	// minimum link always satisfies the bottleneck test, and the freeze rule
	// collapses to "cap if within eps of the level, else the level" — the
	// identical arithmetic as one iteration of the general loop below, minus
	// the tagging scaffolding (the skipped iterCtr draw is value-independent).
	// A path that crosses the same link twice (possible through the raw Add
	// API, never from the path builder) would need the wAct bookkeeping, so
	// it takes the general loop; len(links) < sN detects exactly that.
	if unfrozen == 1 && len(sess) == 1 && len(links) == int(is.sN[is.inA[sess[0]]]) {
		ai := sess[0]
		cp := is.sCap[is.inA[ai]]
		level := math.Inf(1)
		for _, l := range links {
			if is.wRem[l] < level {
				level = is.wRem[l]
			}
		}
		if cp < level {
			level = cp
		}
		if level < 0 {
			level = 0
		}
		eps := level*1e-9 + 1e-15
		if cp <= level+eps {
			is.aRate[ai] = cp
		} else {
			is.aRate[ai] = level
		}
		is.aFrozen[ai] = true
		return
	}

	for unfrozen > 0 {
		tag := is.iterCtr.Add(1)
		level := math.Inf(1)
		for _, l := range links {
			if is.wAct[l] > 0 {
				if v := is.wRem[l] / float64(is.wAct[l]); v < level {
					level = v
				}
			}
		}
		for _, ai := range sess {
			if !is.aFrozen[ai] && is.sCap[is.inA[ai]] < level {
				level = is.sCap[is.inA[ai]]
			}
		}
		if level < 0 {
			level = 0
		}
		eps := level*1e-9 + 1e-15
		for _, l := range links {
			if is.wAct[l] > 0 && is.wRem[l]/float64(is.wAct[l]) <= level+eps {
				is.wBneck[l] = tag
			}
		}
		froze := false
		for _, ai := range sess {
			if is.aFrozen[ai] {
				continue
			}
			s := is.inA[ai]
			base := int32(s) * sessBlock
			freezeAt := -1.0
			if is.sCap[s] <= level+eps {
				freezeAt = is.sCap[s]
			} else {
				for j := int8(0); j < is.sN[s]; j++ {
					if is.wBneck[is.sLink[base+int32(j)]] == tag {
						freezeAt = level
						break
					}
				}
			}
			if freezeAt < 0 {
				continue
			}
			is.aFrozen[ai] = true
			is.aRate[ai] = freezeAt
			unfrozen--
			froze = true
			for j := int8(0); j < is.sN[s]; j++ {
				l := is.sLink[base+int32(j)]
				is.wRem[l] -= freezeAt
				if is.wRem[l] < 0 {
					is.wRem[l] = 0
				}
				is.wAct[l]--
			}
		}
		if !froze {
			// Numerical backstop, as in the reference solver.
			for _, ai := range sess {
				if !is.aFrozen[ai] {
					is.aFrozen[ai] = true
					is.aRate[ai] = level
				}
			}
			return
		}
	}
}

// joinScan applies the J1/J2 rules over every considered link, pulling
// outsiders whose bottleneck certificate the round disturbed into the
// affected set. Returns whether anything joined (another round is needed).
func (is *IncSolver) joinScan() bool {
	rg := is.roundGen
	joined := false
	for _, l := range is.considered {
		satA := is.strictSat(l)
		hasA := is.lmaxS[l] == rg
		lm := is.lmaxV[l]
		if !satA && !is.satB[l] {
			continue // link constrains nobody, before or after
		}
		for e := is.head[l]; e >= 0; e = is.eNext[e] {
			s := e / sessBlock
			if is.sStamp[s] == is.gen {
				continue // already affected
			}
			r := is.sRate[s]
			join := false
			if hasA && satA && r > lm+rateEps(r) {
				join = true // J1: outsider holds more than the new fair share
			} else if is.satB[l] && r < is.sCap[s]-rateEps(is.sCap[s]) &&
				(!satA || (hasA && lm > r+rateEps(r))) {
				join = true // J2: capacity freed (or share grew) under the outsider
			}
			if !join {
				continue
			}
			is.stageSession(s)
			base := int32(s) * sessBlock
			for j := int8(0); j < is.sN[s]; j++ {
				is.touchLink(is.sLink[base+int32(j)])
			}
			joined = true
		}
	}
	return joined
}

// markPass refreshes the standing-queue marks for every session whose state
// this commit could have changed. A session's mark depends solely on its own
// links' satMark bits, and loads only moved on considered links — so the
// only candidates are the re-solved sessions themselves (their link sets may
// have changed) and the sessions listed on a considered link whose satMark
// state actually flipped across the commit. Most commits flip nothing and
// the pass degenerates to a handful of stamp checks.
func (is *IncSolver) markPass() {
	for _, s := range is.inA {
		// A re-solved session whose link set is unchanged can only change
		// its mark through a satMark flip on one of its links, and every
		// such link is caught by the considered-link sweep below.
		if is.lStamp[s] == is.gen {
			is.remark(s)
		}
	}
	for _, l := range is.considered {
		if is.satMark(l) == is.qSatB[l] {
			continue
		}
		for e := is.head[l]; e >= 0; e = is.eNext[e] {
			is.remark(e / sessBlock)
		}
	}
}

// remark recomputes one session's standing-queue mark (once per commit).
func (is *IncSolver) remark(s int32) {
	if is.mStamp[s] == is.gen {
		return
	}
	is.mStamp[s] = is.gen
	m := is.firstSatMark(s)
	if m != is.sMark[s] {
		if is.sMark[s] >= 0 {
			is.qCnt[is.sMark[s]]--
		}
		if m >= 0 {
			is.qCnt[m]++
		}
		is.sMark[s] = m
	}
}

// firstSatMark finds session s's standing queue: a windowed sender's
// congestion control builds a persistent queue at the flow's first
// saturated link — upstream links pace the flow below their capacity, so
// queues cannot stand anywhere else. When that link is not a marking queue
// (the sender's own NIC), the queue is invisible to the fabric.
func (is *IncSolver) firstSatMark(s int32) int32 {
	base := int32(s) * sessBlock
	for j := int8(0); j < is.sN[s]; j++ {
		l := is.sLink[base+int32(j)]
		if is.satMark(l) {
			if is.marking != nil && is.marking[l] {
				return l
			}
			return -1
		}
	}
	return -1
}

// allocSession returns a free session slot, growing the arenas on demand.
func (is *IncSolver) allocSession() int32 {
	if n := len(is.freeS); n > 0 {
		s := is.freeS[n-1]
		is.freeS = is.freeS[:n-1]
		return s
	}
	s := int32(len(is.sCap))
	is.sCap = append(is.sCap, 0)
	is.sRate = append(is.sRate, 0)
	is.sN = append(is.sN, 0)
	is.sAlive = append(is.sAlive, false)
	is.sMark = append(is.sMark, -1)
	is.sStamp = append(is.sStamp, 0)
	is.mStamp = append(is.mStamp, 0)
	is.lStamp = append(is.lStamp, 0)
	for i := 0; i < sessBlock; i++ {
		is.sLink = append(is.sLink, -1)
		is.eNext = append(is.eNext, -1)
		is.ePrev = append(is.ePrev, -1)
	}
	return s
}

// grown returns s extended to length n, reusing capacity.
func grown[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	var zero T
	s = s[:cap(s)]
	for len(s) < n {
		s = append(s, zero)
	}
	return s
}
