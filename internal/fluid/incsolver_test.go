package fluid

import (
	"math"
	"testing"

	"flowbender/internal/sim"
)

// effectiveLinks mirrors the solver's path sanitization (linkAll): links
// outside [0, nLinks) are skipped and at most sessBlock in-range links are
// kept, in order. The oracle must see exactly the links the solver kept.
func effectiveLinks(nLinks int, links []int32) []int32 {
	var out []int32
	for _, l := range links {
		if l < 0 || int(l) >= nLinks {
			continue
		}
		if len(out) == sessBlock {
			break
		}
		out = append(out, l)
	}
	return out
}

// modelSess is the reference bookkeeping for one live incremental session.
type modelSess struct {
	id    int32
	links []int32 // raw, as handed to Add/SetLinks
	cap   float64
}

// checkAgainstWaterfill rebuilds the live session set from scratch through
// the Waterfill oracle and requires the incremental rates to match within
// float tolerance. The max-min allocation is unique, so agreement here is
// the full correctness certificate for whatever mutation history produced
// the solver's current state. It also cross-checks the solver's link loads
// against the rate sums (accumulated drift would break the join rules long
// before it breaks a single solve).
func checkAgainstWaterfill(t *testing.T, is *IncSolver, caps []float64, live []modelSess) {
	t.Helper()
	sessions := make([]Session, len(live))
	for i, m := range live {
		sessions[i] = Session{Links: effectiveLinks(len(caps), m.links), Cap: m.cap}
	}
	want := Waterfill(caps, sessions)
	for i, m := range live {
		got := is.Rate(m.id)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("session %d (slot %d): invalid incremental rate %v", i, m.id, got)
		}
		tol := 1e-6 * math.Max(1, math.Max(got, want[i]))
		if math.Abs(got-want[i]) > tol {
			t.Fatalf("session %d (slot %d): incremental rate %v, waterfill %v (links %v cap %v)",
				i, m.id, got, want[i], sessions[i].Links, m.cap)
		}
	}
	// Load consistency: the solver's per-link loads must equal the rate
	// sums (duplicate traversals counted per entry, exactly as the oracle
	// counts them).
	sum := make([]float64, len(caps))
	for i, m := range live {
		for _, l := range effectiveLinks(len(caps), m.links) {
			sum[l] += is.Rate(m.id)
		}
		_ = i
	}
	for l := range caps {
		tol := 1e-6 * math.Max(1, math.Max(sum[l], is.Load(int32(l))))
		if math.Abs(sum[l]-is.Load(int32(l))) > tol {
			t.Fatalf("link %d: load %v, rate sum %v", l, is.Load(int32(l)), sum[l])
		}
	}
}

// randomCaps draws link capacities with deliberate ties (a small value
// palette) so the eps-grouped freezing logic gets exercised, plus the
// occasional dead link.
func randomCaps(rng *sim.RNG, n int) []float64 {
	palette := []float64{1e6, 1e6, 5e6, 1e7, 4e7, 1e9}
	caps := make([]float64, n)
	for i := range caps {
		if rng.Intn(20) == 0 {
			caps[i] = 0
			continue
		}
		caps[i] = palette[rng.Intn(len(palette))]
	}
	return caps
}

// randomPath draws a path of 0..8 links from [-2, nLinks+2), with
// replacement: out-of-range entries exercise the sanitizer, repeats
// exercise the duplicate-link guards on the fast paths, and lengths beyond
// sessBlock exercise the truncation the oracle mirror must reproduce.
func randomPath(rng *sim.RNG, nLinks int) []int32 {
	np := rng.Intn(9)
	links := make([]int32, np)
	for j := range links {
		links[j] = int32(rng.Intn(nLinks+4)) - 2
	}
	return links
}

// randomCap draws a session rate cap: often uncapped, otherwise spanning
// well below to well above the link palette.
func randomCap(rng *sim.RNG) float64 {
	if rng.Intn(3) == 0 {
		return 0 // uncapped
	}
	return math.Pow(10, 3+7*rng.Float64())
}

// TestIncrementalMatchesWaterfill is the solver's central property test:
// random mutation histories — adds, removes, cap changes, reroutes, in
// batches of several per commit — must leave the incremental state equal to
// a from-scratch waterfill of the surviving sessions, every time. The
// dirty-set propagation (join rules J1/J2) is only correct if no
// undisturbed session ever needed a new rate; comparing against the unique
// max-min solution after every commit is exactly that claim.
func TestIncrementalMatchesWaterfill(t *testing.T) {
	root := sim.NewRNG(20260808)
	var is IncSolver
	for trial := 0; trial < 40; trial++ {
		rng := root.Fork(string(rune('A' + trial)))
		nLinks := 3 + rng.Intn(30)
		caps := randomCaps(rng, nLinks)
		is.Reset(caps, nil)
		var live []modelSess
		for step := 0; step < 12; step++ {
			batch := 1 + rng.Intn(4)
			for b := 0; b < batch; b++ {
				switch op := rng.Intn(10); {
				case op < 4 || len(live) == 0: // add
					links := randomPath(rng, nLinks)
					cap := randomCap(rng)
					id := is.Add(links, cap)
					live = append(live, modelSess{id: id, links: links, cap: cap})
				case op < 6: // remove
					k := rng.Intn(len(live))
					is.Remove(live[k].id)
					live = append(live[:k], live[k+1:]...)
				case op < 8: // set cap
					k := rng.Intn(len(live))
					live[k].cap = randomCap(rng)
					is.SetCap(live[k].id, live[k].cap)
				default: // reroute
					k := rng.Intn(len(live))
					live[k].links = randomPath(rng, nLinks)
					is.SetLinks(live[k].id, live[k].links)
				}
			}
			is.Commit()
			checkAgainstWaterfill(t, &is, caps, live)
		}
	}
}

// TestIncrementalDuplicateLinks pins the duplicate-traversal semantics
// explicitly: a session crossing the same link twice consumes double rate
// on it, and the single-session fast paths must detect the repeat and fall
// through to the general machinery rather than miscount. The shared link
// makes the dup session's allocation visible to a bystander.
func TestIncrementalDuplicateLinks(t *testing.T) {
	caps := []float64{10e9, 10e9, 10e9}
	var is IncSolver
	is.Reset(caps, nil)
	live := []modelSess{
		{links: []int32{0, 1, 0}}, // crosses link 0 twice
		{links: []int32{0, 2}},
	}
	for i := range live {
		live[i].id = is.Add(live[i].links, live[i].cap)
	}
	is.Commit()
	checkAgainstWaterfill(t, &is, caps, live)

	// The dup session alone on the fabric: the n==1 round fast path must
	// reject it (pairwise check) and still produce cap/2 on the dup link.
	is.Remove(live[1].id)
	is.Commit()
	live = live[:1]
	checkAgainstWaterfill(t, &is, caps, live)
	if r := is.Rate(live[0].id); math.Abs(r-5e9) > 1 {
		t.Fatalf("dup-link session rate %v, want 5e9 (half the twice-crossed link)", r)
	}
}

// shardScenario replays one deterministic mutation history — sessions
// clustered into link-disjoint groups so every round has many independent
// components — and returns the full rate vector after each commit.
func shardScenario(t *testing.T, shards int) [][]float64 {
	t.Helper()
	const (
		groups    = 12
		linksPer  = 5
		nLinks    = groups * linksPer
		nSessions = 150
	)
	rng := sim.NewRNG(4242)
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1e9 * float64(1+rng.Intn(8))
	}
	var is IncSolver
	is.SetShards(shards)
	is.parThresh = 1 // force the parallel dispatch even for small rounds
	is.Reset(caps, nil)

	path := func() []int32 {
		g := int32(rng.Intn(groups)) * linksPer
		n := 1 + rng.Intn(4)
		links := make([]int32, n)
		for j := range links {
			links[j] = g + int32(rng.Intn(linksPer))
		}
		return links
	}
	var ids []int32
	var out [][]float64
	snap := func() {
		rates := make([]float64, len(ids))
		for i, id := range ids {
			rates[i] = is.Rate(id)
		}
		out = append(out, rates)
	}
	for i := 0; i < nSessions; i++ {
		ids = append(ids, is.Add(path(), 0))
	}
	is.Commit()
	snap()
	for round := 0; round < 6; round++ {
		for i := 0; i < 40; i++ {
			is.SetLinks(ids[rng.Intn(len(ids))], path())
		}
		is.Commit()
		snap()
	}
	return out
}

// TestSolverShardsBitIdentical is the parallel-solver determinism
// contract: with the dispatch threshold forced to 1, the same mutation
// history solved serially and at 2, 4, and 8 workers must produce
// bit-identical rates after every commit — not merely close. Components
// are link-disjoint, each is solved by exactly one worker with the same
// serial arithmetic, and the apply pass runs in deterministic A-order on
// the caller; this test (run under -race in CI) is the proof.
func TestSolverShardsBitIdentical(t *testing.T) {
	serial := shardScenario(t, 1)
	for _, shards := range []int{2, 4, 8} {
		got := shardScenario(t, shards)
		if len(got) != len(serial) {
			t.Fatalf("shards=%d: %d snapshots, serial took %d", shards, len(got), len(serial))
		}
		for c := range serial {
			for i := range serial[c] {
				if math.Float64bits(got[c][i]) != math.Float64bits(serial[c][i]) {
					t.Fatalf("shards=%d commit %d session %d: rate %v != serial %v (bitwise)",
						shards, c, i, got[c][i], serial[c][i])
				}
			}
		}
	}
}

// TestIncrementalZeroAllocSteadyState is the allocation-regression gate's
// solver half: once the arenas are warm, a full churn cycle — add, cap
// change, reroute, remove, with a commit after each — performs zero heap
// allocations. CI fails on any nonzero count; "almost zero" is how arena
// disciplines rot.
func TestIncrementalZeroAllocSteadyState(t *testing.T) {
	caps := []float64{10e9, 10e9, 10e9, 10e9, 40e9, 40e9}
	var is IncSolver
	is.Reset(caps, nil)
	pathA := []int32{0, 4, 2}
	pathB := []int32{1, 5, 3}
	a := is.Add(pathA, 0)
	is.Commit()
	cycle := func() {
		b := is.Add(pathB, 0)
		is.Commit()
		is.SetCap(b, 3e9)
		is.Commit()
		is.SetLinks(b, pathA)
		is.Commit()
		is.Remove(b)
		is.Commit()
	}
	cycle() // warm the free list and staging arenas
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("steady-state churn cycle allocates %v times per run, want 0", n)
	}
	is.Remove(a)
	is.Commit()
}

// FuzzIncrementalSolver decodes a byte string into a fabric plus a mutation
// script and replays it against the from-scratch oracle at every commit.
// Hostile values pass through on purpose — NaN and infinite capacities,
// out-of-range and duplicated links, over-length paths, zero-link sessions
// — because the solver's contract is to sanitize rather than crash, and
// the sanitized state must still be the unique max-min allocation.
//
// Encoding: [nLinks u8] then nLinks f32 capacity scales, then op codes:
// u8 % 6 selects add/add/remove/setcap/setlinks/commit, each consuming its
// operands from the stream (truncated input pads with zeros). The seed
// corpus in testdata/fuzz covers every op, hostile capacities, and the
// duplicate-link fast-path guards.
func FuzzIncrementalSolver(f *testing.F) {
	f.Add([]byte{3, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40,
		0, 2, 0, 0, 0, 0, 1, 2, 5})
	f.Add([]byte{1, 0, 0, 0x80, 0x7f, 0, 3, 0, 0, 0xc0, 0x7f, 0, 0, 0, 5, 2, 0})
	f.Add([]byte{12, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		0, 8, 0, 0, 0, 0, 1, 1, 9, 9, 200, 3, 3, 5, 4, 0, 2, 7, 7, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := fuzzReader{data: data}
		nLinks := int(rd.u8()%12) + 1
		caps := make([]float64, nLinks)
		for i := range caps {
			caps[i] = float64(rd.f32()) * 1e6
		}
		var is IncSolver
		is.Reset(caps, nil)
		var live []modelSess
		verify := func() {
			sessions := make([]Session, len(live))
			for i, m := range live {
				sessions[i] = Session{Links: effectiveLinks(nLinks, m.links), Cap: m.cap}
			}
			want := Waterfill(caps, sessions)
			for i, m := range live {
				got := is.Rate(m.id)
				if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
					t.Fatalf("session %d: invalid rate %v", i, got)
				}
				tol := 1e-6 * math.Max(1, math.Max(got, want[i]))
				if math.Abs(got-want[i]) > tol {
					t.Fatalf("session %d: incremental %v, waterfill %v", i, got, want[i])
				}
			}
		}
		steps := int(rd.u8()%28) + 2
		for i := 0; i < steps; i++ {
			switch rd.u8() % 6 {
			case 0, 1: // add
				np := int(rd.u8() % 9)
				cap := float64(rd.f32())
				links := make([]int32, np)
				for j := range links {
					links[j] = int32(rd.u8()) - 4
				}
				id := is.Add(links, cap)
				live = append(live, modelSess{id: id, links: links, cap: cap})
			case 2: // remove
				if len(live) > 0 {
					k := int(rd.u8()) % len(live)
					is.Remove(live[k].id)
					live = append(live[:k], live[k+1:]...)
				}
			case 3: // set cap
				if len(live) > 0 {
					k := int(rd.u8()) % len(live)
					live[k].cap = float64(rd.f32())
					is.SetCap(live[k].id, live[k].cap)
				}
			case 4: // reroute
				if len(live) > 0 {
					k := int(rd.u8()) % len(live)
					np := int(rd.u8() % 9)
					links := make([]int32, np)
					for j := range links {
						links[j] = int32(rd.u8()) - 4
					}
					live[k].links = links
					is.SetLinks(live[k].id, links)
				}
			case 5: // commit + oracle check
				is.Commit()
				verify()
			}
		}
		is.Commit()
		verify()
	})
}
